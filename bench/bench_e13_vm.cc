// E13 — "compile the tick" (src/vm/): the register bytecode VM with fused
// filter→project→effect pipelines vs the tree-walking expression
// interpreter, on the *same* compiled set-at-a-time plans.
//
// Series: ms/tick for identical workloads under eval_mode = interpret vs
// bytecode —
//   dense      nested-loop join plans (E1 RTS battle, E8 traffic): every
//              pair runs the composed filter, so expression evaluation
//              dominates the tick and the fused compare-and-compact
//              conjuncts shine (the tree walker evaluates every conjunct
//              over the full span and materializes boolean columns; the
//              VM compacts survivors after each one). Target: >= 2x.
//   indexed    the production access paths (grid / cost-based), swept over
//              probe_mode single vs batched: the index prunes most pairs,
//              so the tick is probe- and fold-bound — exactly where PR 8's
//              QueryBatch (one call per morsel, SIMD range filter, pooled
//              CSR output) and the kernel layer buy their speedup.
//
// Every series reports allocs_per_tick (steady state must stay
// allocation-free), vm_programs, simd_lanes (per tick, 0 under forced
// scalar), probe_us, and the CPU/dispatch context (cpu_avx2, kernel_avx2)
// so recorded numbers are interpretable across machines.

#include <algorithm>
#include <memory>

#include "bench/bench_util.h"
#include "src/common/cpu_features.h"

namespace {

std::unique_ptr<sgl::Engine> BuildWorkload(bool traffic, int n,
                                           sgl::PlanMode mode,
                                           sgl::EvalMode eval,
                                           sgl::ProbeMode probe) {
  sgl::EngineOptions options;
  options.exec.planner.mode = mode;
  options.exec.eval_mode = eval;
  options.exec.probe_mode = probe;
  if (traffic) {
    sgl::TrafficConfig config;
    config.num_vehicles = n;
    auto engine = sgl::TrafficWorkload::Build(config, options);
    if (!engine.ok()) std::abort();
    return std::move(engine).value();
  }
  sgl::RtsConfig config;
  config.num_units = n;
  config.clustered = true;  // battle mode: dense join fan-out from tick 0
  auto engine = sgl::RtsWorkload::Build(config, options);
  if (!engine.ok()) std::abort();
  return std::move(engine).value();
}

void RunTicks(benchmark::State& state, sgl::Engine* engine) {
  sgl_bench::WarmupSteadyState(engine);
  int64_t allocs = 0, simd_lanes = 0, probe_us = 0;
  for (auto _ : state) {
    if (!engine->Tick().ok()) state.SkipWithError("tick failed");
    allocs += engine->last_stats().allocs_per_tick;
    simd_lanes += engine->last_stats().simd_lanes_used;
    probe_us += engine->last_stats().probe_micros;
  }
  const double iters =
      static_cast<double>(std::max<int64_t>(1, state.iterations()));
  state.counters["n"] = static_cast<double>(state.range(2));
  state.counters["allocs_per_tick"] = static_cast<double>(allocs) / iters;
  state.counters["vm_programs"] =
      static_cast<double>(engine->last_stats().vm_programs);
  state.counters["simd_lanes"] = static_cast<double>(simd_lanes) / iters;
  state.counters["probe_us"] = static_cast<double>(probe_us) / iters;
  state.counters["cpu_avx2"] = sgl::CpuHasAvx2() ? 1 : 0;
  state.counters["kernel_avx2"] =
      sgl::ActiveKernelDispatch() == sgl::KernelDispatch::kAvx2 ? 1 : 0;
}

// Dense ticks: forced nested-loop plans, expression-evaluation bound.
void BM_BytecodeVsInterpret(benchmark::State& state) {
  const sgl::EvalMode eval = state.range(0) != 0 ? sgl::EvalMode::kBytecode
                                                 : sgl::EvalMode::kInterpret;
  auto engine = BuildWorkload(state.range(1) != 0,
                              static_cast<int>(state.range(2)),
                              sgl::PlanMode::kStaticNL, eval,
                              sgl::ProbeMode::kBatched);
  RunTicks(state, engine.get());
}

// Indexed steady state under both probe paths: the production plans (grid
// RTS, cost-based traffic), probe_mode = single (one virtual Query per
// outer row, PR 7 behavior) vs batched (one QueryBatch per morsel).
void BM_BytecodeVsInterpretIndexed(benchmark::State& state) {
  const sgl::EvalMode eval = state.range(0) != 0 ? sgl::EvalMode::kBytecode
                                                 : sgl::EvalMode::kInterpret;
  const bool traffic = state.range(1) != 0;
  const sgl::ProbeMode probe = state.range(3) != 0 ? sgl::ProbeMode::kBatched
                                                   : sgl::ProbeMode::kSingle;
  auto engine = BuildWorkload(
      traffic, static_cast<int>(state.range(2)),
      traffic ? sgl::PlanMode::kCostBased : sgl::PlanMode::kStaticGrid, eval,
      probe);
  RunTicks(state, engine.get());
}

}  // namespace

BENCHMARK(BM_BytecodeVsInterpret)
    ->ArgNames({"bytecode", "traffic", "n"})
    ->Args({0, 0, 600})
    ->Args({1, 0, 600})
    ->Args({0, 1, 2000})
    ->Args({1, 1, 2000})
    ->Unit(benchmark::kMillisecond);

BENCHMARK(BM_BytecodeVsInterpretIndexed)
    ->ArgNames({"bytecode", "traffic", "n", "batched"})
    ->Args({0, 0, 1000, 0})
    ->Args({0, 0, 1000, 1})
    ->Args({1, 0, 1000, 0})
    ->Args({1, 0, 1000, 1})
    ->Args({0, 1, 4000, 0})
    ->Args({0, 1, 4000, 1})
    ->Args({1, 1, 4000, 0})
    ->Args({1, 1, 4000, 1})
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
