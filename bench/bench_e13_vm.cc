// E13 — "compile the tick" (src/vm/): the register bytecode VM with fused
// filter→project→effect pipelines vs the tree-walking expression
// interpreter, on the *same* compiled set-at-a-time plans.
//
// Series: ms/tick for identical workloads under eval_mode = interpret vs
// bytecode —
//   dense      nested-loop join plans (E1 RTS battle, E8 traffic): every
//              pair runs the composed filter, so expression evaluation
//              dominates the tick and the fused compare-and-compact
//              conjuncts shine (the tree walker evaluates every conjunct
//              over the full span and materializes boolean columns; the
//              VM compacts survivors after each one). Target: >= 2x.
//   indexed    the production access paths (grid / cost-based): the index
//              prunes most pairs, so the tick is probe- and fold-bound and
//              Amdahl caps the VM's win — recorded to show the backend
//              never regresses the indexed paths.
//
// Both series report allocs_per_tick (the bytecode steady state must stay
// allocation-free, register files live in per-worker scratch) and
// vm_programs (0 in interpret mode).

#include <algorithm>
#include <memory>

#include "bench/bench_util.h"

namespace {

std::unique_ptr<sgl::Engine> BuildWorkload(bool traffic, int n,
                                           sgl::PlanMode mode,
                                           sgl::EvalMode eval) {
  sgl::EngineOptions options;
  options.exec.planner.mode = mode;
  options.exec.eval_mode = eval;
  if (traffic) {
    sgl::TrafficConfig config;
    config.num_vehicles = n;
    auto engine = sgl::TrafficWorkload::Build(config, options);
    if (!engine.ok()) std::abort();
    return std::move(engine).value();
  }
  sgl::RtsConfig config;
  config.num_units = n;
  config.clustered = true;  // battle mode: dense join fan-out from tick 0
  auto engine = sgl::RtsWorkload::Build(config, options);
  if (!engine.ok()) std::abort();
  return std::move(engine).value();
}

void RunTicks(benchmark::State& state, sgl::Engine* engine) {
  sgl_bench::WarmupSteadyState(engine);
  int64_t allocs = 0;
  for (auto _ : state) {
    if (!engine->Tick().ok()) state.SkipWithError("tick failed");
    allocs += engine->last_stats().allocs_per_tick;
  }
  state.counters["n"] = static_cast<double>(state.range(2));
  state.counters["allocs_per_tick"] =
      static_cast<double>(allocs) /
      static_cast<double>(std::max<int64_t>(1, state.iterations()));
  state.counters["vm_programs"] =
      static_cast<double>(engine->last_stats().vm_programs);
}

// Dense ticks: forced nested-loop plans, expression-evaluation bound.
void BM_BytecodeVsInterpret(benchmark::State& state) {
  const sgl::EvalMode eval = state.range(0) != 0 ? sgl::EvalMode::kBytecode
                                                 : sgl::EvalMode::kInterpret;
  auto engine = BuildWorkload(state.range(1) != 0,
                              static_cast<int>(state.range(2)),
                              sgl::PlanMode::kStaticNL, eval);
  RunTicks(state, engine.get());
}

// Indexed steady state: the production plans (grid RTS, cost-based
// traffic). The VM's share of the tick is smaller here; the series pins
// "no regression + still allocation-free".
void BM_BytecodeVsInterpretIndexed(benchmark::State& state) {
  const sgl::EvalMode eval = state.range(0) != 0 ? sgl::EvalMode::kBytecode
                                                 : sgl::EvalMode::kInterpret;
  const bool traffic = state.range(1) != 0;
  auto engine = BuildWorkload(
      traffic, static_cast<int>(state.range(2)),
      traffic ? sgl::PlanMode::kCostBased : sgl::PlanMode::kStaticGrid, eval);
  RunTicks(state, engine.get());
}

}  // namespace

BENCHMARK(BM_BytecodeVsInterpret)
    ->ArgNames({"bytecode", "traffic", "n"})
    ->Args({0, 0, 600})
    ->Args({1, 0, 600})
    ->Args({0, 1, 2000})
    ->Args({1, 1, 2000})
    ->Unit(benchmark::kMillisecond);

BENCHMARK(BM_BytecodeVsInterpretIndexed)
    ->ArgNames({"bytecode", "traffic", "n"})
    ->Args({0, 0, 1000})
    ->Args({1, 0, 1000})
    ->Args({0, 1, 4000})
    ->Args({1, 1, 4000})
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
