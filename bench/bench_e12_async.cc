// E12 — asynchronous out-of-band pathfinding (src/async/): tick latency
// with sync vs async A* on the large-map armies workload, repathing under
// goal churn.
//
// Series: ms/tick for N soldiers marching across a walled grid while their
// orders rotate every kChurnPeriod ticks.
//
//   * sync      — the blocking PathfinderComponent: every unique
//                 (start, goal) pair is searched inside the update phase,
//                 every tick (its memo is per-tick).
//   * async/W   — AsyncPathfindComponent over a JobService with W workers:
//                 searches run off the tick across `latency_ticks`
//                 boundaries, results install deterministically, and the
//                 cross-tick request cache means a pair is searched once
//                 per churn, not once per tick. W = 0 is the inline
//                 reference mode (same install schedule, search cost paid
//                 at the barrier) — the async-vs-sync win that remains at
//                 W = 0 is the cache; the rest is the workers.
//
// Counters: phase breakdown, allocs/tick, jobs submitted/installed/in
// flight, barrier wait. The determinism side (bit-identical state across
// worker counts) is pinned by tests/async_test.cc, not measured here.

#include <thread>

#include "bench/bench_util.h"
#include "src/sim/armies.h"

namespace {

constexpr int kChurnPeriod = 16;

sgl::ArmiesConfig E12Config(int units, bool async) {
  sgl::ArmiesConfig config;
  config.num_units = units;
  config.map_w = 128;
  config.map_h = 128;
  config.num_armies = 32;
  config.num_rally = 12;
  config.wall_density = 0.08;
  config.async_pathfind = async;
  config.async.latency_ticks = 2;
  config.async.result_ttl_ticks = 24;
  config.async.crowd_penalty = 0.25;  // jobs read the position snapshot
  config.async.cache_reserve = 1u << 15;
  return config;
}

void RunTicks(sgl::Engine* engine, const sgl::ArmiesConfig& config,
              benchmark::State& state) {
  int64_t query_us = 0, update_us = 0, allocs = 0;
  int64_t submitted = 0, installed = 0, in_flight = 0, wait_us = 0;
  int64_t ticks = 0, round = 1;
  for (auto _ : state) {
    if (!engine->Tick().ok()) state.SkipWithError("tick failed");
    const sgl::TickStats& stats = engine->last_stats();
    query_us += stats.query_effect_micros;
    update_us += stats.update_micros;
    allocs += stats.allocs_per_tick;
    submitted += stats.jobs_submitted;
    installed += stats.jobs_installed;
    in_flight += stats.jobs_in_flight;
    wait_us += stats.job_wait_micros;
    if (++ticks % kChurnPeriod == 0) {
      sgl::ArmiesWorkload::Retarget(engine, config,
                                    static_cast<int>(round++));
    }
  }
  const double n = static_cast<double>(state.iterations());
  state.counters["units"] = config.num_units;
  state.counters["query_ms"] = static_cast<double>(query_us) / n / 1000.0;
  state.counters["update_ms"] = static_cast<double>(update_us) / n / 1000.0;
  state.counters["allocs_per_tick"] = static_cast<double>(allocs) / n;
  state.counters["jobs_submitted"] = static_cast<double>(submitted) / n;
  state.counters["jobs_installed"] = static_cast<double>(installed) / n;
  state.counters["jobs_in_flight"] = static_cast<double>(in_flight) / n;
  state.counters["job_wait_ms"] = static_cast<double>(wait_us) / n / 1000.0;
  state.counters["hw_cores"] =
      static_cast<double>(std::thread::hardware_concurrency());
}

// The blocking baseline. Short warmup on purpose: its per-tick cost is the
// searches themselves, which do not pool away (the memo is per-tick), and
// at 16k units a single steady-state tick costs what the async path pays
// per churn across all workers.
void BM_E12_SyncTick(benchmark::State& state) {
  const int units = static_cast<int>(state.range(0));
  const sgl::ArmiesConfig config = E12Config(units, /*async=*/false);
  auto engine = sgl::ArmiesWorkload::Build(
      config, sgl_bench::Options(sgl::PlanMode::kCostBased));
  if (!engine.ok()) std::abort();
  sgl_bench::WarmupSteadyState(engine->get(), 4);
  RunTicks(engine->get(), config, state);
}

BENCHMARK(BM_E12_SyncTick)
    ->Arg(4096)
    ->Arg(16384)
    ->Unit(benchmark::kMillisecond)
    ->MinTime(0.2);

void BM_E12_AsyncTick(benchmark::State& state) {
  const int units = static_cast<int>(state.range(0));
  const int workers = static_cast<int>(state.range(1));
  const sgl::ArmiesConfig config = E12Config(units, /*async=*/true);
  sgl::EngineOptions options = sgl_bench::Options(sgl::PlanMode::kCostBased);
  options.exec.jobs.num_workers = workers;
  auto engine = sgl::ArmiesWorkload::Build(config, options);
  if (!engine.ok()) std::abort();
  sgl_bench::WarmupSteadyState(engine->get());
  RunTicks(engine->get(), config, state);
  state.counters["workers"] = workers;
}

BENCHMARK(BM_E12_AsyncTick)
    ->Args({4096, 0})
    ->Args({4096, 4})
    ->Args({16384, 0})
    ->Args({16384, 1})
    ->Args({16384, 4})
    ->Unit(benchmark::kMillisecond)
    ->MinTime(0.2);

// The full stack: async pathfinding over a 4-shard world ticking with 4
// threads — completions ride the shard barrier.
void BM_E12_AsyncShardedTick(benchmark::State& state) {
  const int units = static_cast<int>(state.range(0));
  const sgl::ArmiesConfig config = E12Config(units, /*async=*/true);
  sgl::EngineOptions options =
      sgl_bench::Options(sgl::PlanMode::kCostBased, false, /*threads=*/4);
  options.exec.num_shards = 4;
  options.exec.jobs.num_workers = 4;
  auto engine = sgl::ArmiesWorkload::Build(config, options);
  if (!engine.ok()) std::abort();
  sgl_bench::WarmupSteadyState(engine->get());
  RunTicks(engine->get(), config, state);
  state.counters["workers"] = 4;
  state.counters["shards"] = 4;
}

BENCHMARK(BM_E12_AsyncShardedTick)
    ->Arg(16384)
    ->Unit(benchmark::kMillisecond)
    ->MinTime(0.2);

}  // namespace

BENCHMARK_MAIN();
