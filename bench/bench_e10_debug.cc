// E10 — debugging overhead (§3.3).
//
// Series: ms/tick for the 4k-unit RTS battle with each debug facility
// enabled — none / effect tracer (one watched NPC) / per-tick checksum
// replay log / per-tick full checkpoint. Expected shape: tracer ≈ baseline
// (pay-as-you-go pointer check), checksum a small linear add-on, full
// checkpointing the most expensive (state-size-proportional copy) — which
// is why the replay log only snapshots periodically.

#include "bench/bench_util.h"
#include "src/debug/checkpoint.h"
#include "src/debug/tracer.h"

namespace {

constexpr int kUnits = 4096;

void BM_DebugOff(benchmark::State& state) {
  auto engine = sgl_bench::BuildRts(kUnits, sgl::PlanMode::kStaticRangeTree);
  sgl_bench::Warmup(engine.get());
  for (auto _ : state) {
    if (!engine->Tick().ok()) state.SkipWithError("tick failed");
  }
}

void BM_TracerOneEntity(benchmark::State& state) {
  auto engine = sgl_bench::BuildRts(kUnits, sgl::PlanMode::kStaticRangeTree);
  sgl::EffectTracer tracer;
  tracer.Watch(engine->world().table(0).id_at(0));
  engine->SetTracer(&tracer);
  sgl_bench::Warmup(engine.get());
  for (auto _ : state) {
    if (!engine->Tick().ok()) state.SkipWithError("tick failed");
  }
  state.counters["records"] = static_cast<double>(tracer.size());
}

void BM_ReplayChecksum(benchmark::State& state) {
  auto engine = sgl_bench::BuildRts(kUnits, sgl::PlanMode::kStaticRangeTree);
  sgl::ReplayLog log;
  sgl_bench::Warmup(engine.get());
  sgl::Tick t = 0;
  for (auto _ : state) {
    if (!engine->Tick().ok()) state.SkipWithError("tick failed");
    log.Record(engine->world(), t++);
  }
}

void BM_CheckpointEveryTick(benchmark::State& state) {
  auto engine = sgl_bench::BuildRts(kUnits, sgl::PlanMode::kStaticRangeTree);
  sgl_bench::Warmup(engine.get());
  size_t bytes = 0;
  for (auto _ : state) {
    if (!engine->Tick().ok()) state.SkipWithError("tick failed");
    sgl::Checkpoint cp = engine->TakeCheckpoint();
    bytes = cp.state.size();
    benchmark::DoNotOptimize(cp);
  }
  state.counters["checkpoint_bytes"] = static_cast<double>(bytes);
}

void BM_CheckpointRestoreRoundTrip(benchmark::State& state) {
  auto engine = sgl_bench::BuildRts(kUnits, sgl::PlanMode::kStaticRangeTree);
  sgl_bench::Warmup(engine.get());
  sgl::Checkpoint cp = engine->TakeCheckpoint();
  for (auto _ : state) {
    if (!engine->Restore(cp).ok()) state.SkipWithError("restore failed");
    if (!engine->Tick().ok()) state.SkipWithError("tick failed");
  }
}

BENCHMARK(BM_DebugOff)->Unit(benchmark::kMillisecond)->MinTime(0.1);
BENCHMARK(BM_TracerOneEntity)->Unit(benchmark::kMillisecond)->MinTime(0.1);
BENCHMARK(BM_ReplayChecksum)->Unit(benchmark::kMillisecond)->MinTime(0.1);
BENCHMARK(BM_CheckpointEveryTick)
    ->Unit(benchmark::kMillisecond)
    ->MinTime(0.1);
BENCHMARK(BM_CheckpointRestoreRoundTrip)
    ->Unit(benchmark::kMillisecond)
    ->MinTime(0.1);

}  // namespace

BENCHMARK_MAIN();
