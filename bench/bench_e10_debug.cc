// E10 — debugging overhead (§3.3).
//
// Series: ms/tick for the 4k-unit RTS battle with each debug facility
// enabled — none / effect tracer (one watched NPC) / per-tick checksum
// replay log / per-tick full checkpoint. Expected shape: tracer ≈ baseline
// (pay-as-you-go pointer check), checksum a small linear add-on, full
// checkpointing the most expensive (state-size-proportional copy) — which
// is why the replay log only snapshots periodically. The telemetry (PR 9)
// and flight-recorder (PR 10) series extend the ladder: disarmed attached
// sinks must sit within noise of detached, armed shows the full capture
// cost. Armed phases Reset() the metrics registry at the warmup boundary
// so reported percentiles cover the measured window only.

#include "bench/bench_util.h"
#include "src/debug/checkpoint.h"
#include "src/debug/tracer.h"
#include "src/telemetry/flight_recorder.h"
#include "src/telemetry/telemetry.h"

namespace {

constexpr int kUnits = 4096;

void BM_DebugOff(benchmark::State& state) {
  auto engine = sgl_bench::BuildRts(kUnits, sgl::PlanMode::kStaticRangeTree);
  sgl_bench::Warmup(engine.get());
  for (auto _ : state) {
    if (!engine->Tick().ok()) state.SkipWithError("tick failed");
  }
}

void BM_TracerOneEntity(benchmark::State& state) {
  auto engine = sgl_bench::BuildRts(kUnits, sgl::PlanMode::kStaticRangeTree);
  sgl::EffectTracer tracer;
  tracer.Watch(engine->world().table(0).id_at(0));
  engine->SetTracer(&tracer);
  sgl_bench::Warmup(engine.get());
  for (auto _ : state) {
    if (!engine->Tick().ok()) state.SkipWithError("tick failed");
  }
  state.counters["records"] = static_cast<double>(tracer.size());
}

void BM_ReplayChecksum(benchmark::State& state) {
  auto engine = sgl_bench::BuildRts(kUnits, sgl::PlanMode::kStaticRangeTree);
  sgl::ReplayLog log;
  sgl_bench::Warmup(engine.get());
  sgl::Tick t = 0;
  for (auto _ : state) {
    if (!engine->Tick().ok()) state.SkipWithError("tick failed");
    log.Record(engine->world(), t++);
  }
}

void BM_CheckpointEveryTick(benchmark::State& state) {
  auto engine = sgl_bench::BuildRts(kUnits, sgl::PlanMode::kStaticRangeTree);
  sgl_bench::Warmup(engine.get());
  size_t bytes = 0;
  for (auto _ : state) {
    if (!engine->Tick().ok()) state.SkipWithError("tick failed");
    sgl::Checkpoint cp = engine->TakeCheckpoint();
    bytes = cp.state.size();
    benchmark::DoNotOptimize(cp);
  }
  state.counters["checkpoint_bytes"] = static_cast<double>(bytes);
}

void BM_CheckpointRestoreRoundTrip(benchmark::State& state) {
  auto engine = sgl_bench::BuildRts(kUnits, sgl::PlanMode::kStaticRangeTree);
  sgl_bench::Warmup(engine.get());
  sgl::Checkpoint cp = engine->TakeCheckpoint();
  for (auto _ : state) {
    if (!engine->Restore(cp).ok()) state.SkipWithError("restore failed");
    if (!engine->Tick().ok()) state.SkipWithError("tick failed");
  }
}

// --- Telemetry overhead (PR 9) -------------------------------------------
// Armed-vs-disarmed series at 16k units: a disarmed attached Telemetry must
// sit within noise of no telemetry at all (one branch per span site), and
// the armed delta is the full span+histogram record path. Counters report
// spans/tick and the tick-time percentiles the armed registry accumulated.

constexpr int kTelemetryUnits = 16384;

std::unique_ptr<sgl::Engine> BuildTelemetryRts(int units,
                                               sgl::Telemetry* tel) {
  sgl::RtsConfig config;
  config.num_units = units;
  sgl::EngineOptions options;
  options.exec.planner.mode = sgl::PlanMode::kStaticRangeTree;
  options.exec.telemetry = tel;
  auto engine = sgl::RtsWorkload::Build(config, options);
  if (!engine.ok()) {
    std::fprintf(stderr, "build failed: %s\n",
                 engine.status().ToString().c_str());
    std::abort();
  }
  return std::move(engine).value();
}

void BM_TelemetryDetached(benchmark::State& state) {
  auto engine = BuildTelemetryRts(kTelemetryUnits, nullptr);
  sgl_bench::Warmup(engine.get());
  for (auto _ : state) {
    if (!engine->Tick().ok()) state.SkipWithError("tick failed");
  }
}

void BM_TelemetryDisarmed(benchmark::State& state) {
  sgl::Telemetry tel;
  auto engine = BuildTelemetryRts(kTelemetryUnits, &tel);
  sgl_bench::Warmup(engine.get());
  for (auto _ : state) {
    if (!engine->Tick().ok()) state.SkipWithError("tick failed");
  }
  state.counters["spans_per_tick"] = 0;  // disarmed records nothing
}

void BM_TelemetryArmed(benchmark::State& state) {
  sgl::Telemetry tel;
  tel.set_armed(true);
  auto engine = BuildTelemetryRts(kTelemetryUnits, &tel);
  sgl_bench::Warmup(engine.get());
  // Phase boundary: drop the warmup's samples so the reported percentiles
  // describe the measured window only.
  tel.metrics().Reset();
  const int64_t spans_before = tel.total_spans();
  int64_t ticks = 0;
  for (auto _ : state) {
    if (!engine->Tick().ok()) state.SkipWithError("tick failed");
    ++ticks;
  }
  state.counters["spans_per_tick"] =
      ticks > 0 ? static_cast<double>(tel.total_spans() - spans_before) /
                      static_cast<double>(ticks)
                : 0;
  const sgl::MetricsSnapshot snap = tel.metrics().Snapshot();
  if (const sgl::HistogramSnapshot* h = snap.Find("tick.total_us")) {
    state.counters["tick_p50_us"] = h->Percentile(50);
    state.counters["tick_p95_us"] = h->Percentile(95);
    state.counters["tick_p99_us"] = h->Percentile(99);
  }
}

// Flight-recorder overhead (PR 10): the armed capture path — watch-all
// effect fan-out, per-tick pooled drain + canonical sort + after-value
// resolution — against the same workload with the recorder disarmed.
// Counters report the per-frame record volume the armed ring sustained.
void BM_FlightRecorderDisarmed(benchmark::State& state) {
  sgl::FlightRecorder rec;  // attached, never armed: one branch per tick
  sgl::RtsConfig config;
  config.num_units = kTelemetryUnits;
  sgl::EngineOptions options;
  options.exec.planner.mode = sgl::PlanMode::kStaticRangeTree;
  options.exec.recorder = &rec;
  auto engine = sgl::RtsWorkload::Build(config, options);
  if (!engine.ok()) std::abort();
  sgl_bench::Warmup(engine->get());
  for (auto _ : state) {
    if (!(*engine)->Tick().ok()) state.SkipWithError("tick failed");
  }
}

void BM_FlightRecorderArmed(benchmark::State& state) {
  sgl::Telemetry tel;
  tel.set_armed(true);
  sgl::FlightRecorder rec;
  rec.set_armed(true);
  rec.set_telemetry(&tel);
  sgl::RtsConfig config;
  config.num_units = kTelemetryUnits;
  sgl::EngineOptions options;
  options.exec.planner.mode = sgl::PlanMode::kStaticRangeTree;
  options.exec.telemetry = &tel;
  options.exec.recorder = &rec;
  auto engine = sgl::RtsWorkload::Build(config, options);
  if (!engine.ok()) std::abort();
  sgl_bench::Warmup(engine->get());
  tel.metrics().Reset();  // phase boundary: measured window only
  for (auto _ : state) {
    if (!(*engine)->Tick().ok()) state.SkipWithError("tick failed");
  }
  const sgl::TickFrame* newest = rec.frame(rec.newest_tick());
  state.counters["records_per_frame"] =
      newest != nullptr ? static_cast<double>(newest->num_records) : 0;
  state.counters["frames_captured"] =
      static_cast<double>(rec.frames_captured());
  const sgl::MetricsSnapshot snap = tel.metrics().Snapshot();
  if (const sgl::HistogramSnapshot* h = snap.Find("tick.total_us")) {
    state.counters["tick_p50_us"] = h->Percentile(50);
  }
}

// Isolated span-record cost: an armed ScopedSpan begin/end pair with
// nothing else on the loop body. real_time/iteration is ns per span.
void BM_SpanRecordArmed(benchmark::State& state) {
  sgl::Telemetry tel;
  tel.set_armed(true);
  uint16_t arg = 0;
  for (auto _ : state) {
    SGL_TRACE_SPAN(&tel, sgl::kSpanTickQuery, 1, 0, arg++);
  }
  // kIsRate divides by elapsed seconds, kInvert flips to seconds per
  // iteration; pre-dividing by 1e9 makes the reported value nanoseconds.
  state.counters["ns_per_span"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * 1e-9,
      benchmark::Counter::kIsRate | benchmark::Counter::kInvert);
}

BENCHMARK(BM_DebugOff)->Unit(benchmark::kMillisecond)->MinTime(0.1);
BENCHMARK(BM_TracerOneEntity)->Unit(benchmark::kMillisecond)->MinTime(0.1);
BENCHMARK(BM_ReplayChecksum)->Unit(benchmark::kMillisecond)->MinTime(0.1);
BENCHMARK(BM_CheckpointEveryTick)
    ->Unit(benchmark::kMillisecond)
    ->MinTime(0.1);
BENCHMARK(BM_CheckpointRestoreRoundTrip)
    ->Unit(benchmark::kMillisecond)
    ->MinTime(0.1);
BENCHMARK(BM_TelemetryDetached)->Unit(benchmark::kMillisecond)->MinTime(0.1);
BENCHMARK(BM_TelemetryDisarmed)->Unit(benchmark::kMillisecond)->MinTime(0.1);
BENCHMARK(BM_TelemetryArmed)->Unit(benchmark::kMillisecond)->MinTime(0.1);
BENCHMARK(BM_FlightRecorderDisarmed)
    ->Unit(benchmark::kMillisecond)
    ->MinTime(0.1);
BENCHMARK(BM_FlightRecorderArmed)
    ->Unit(benchmark::kMillisecond)
    ->MinTime(0.1);
BENCHMARK(BM_SpanRecordArmed)->MinTime(0.1);

}  // namespace

BENCHMARK_MAIN();
