// E9 — the physics engine as an update component (§2.2).
//
// Series 1: physics update cost vs entity count at fixed density (expected
// ~O(n + collisions) thanks to the grid broad phase).
// Series 2: intention-override rate vs crowd density — the paper's point
// that "the output of the physics engine often does not correspond exactly
// to the effect assignments of any individual script" made measurable.

#include <cmath>

#include "bench/bench_util.h"
#include "src/update/physics.h"

namespace {

const char* kSwarm = R"sgl(
class Body {
  state:
    number x = 0;
    number y = 0;
    number vx = 0;
    number vy = 0;
  effects:
    number fx : sum;
    number fy : sum;
}
script Seek for Body {
  // Everyone pushes toward the arena centre: guaranteed crowding.
  if (x < 500) { fx <- 0.3; } else { fx <- -0.3; }
  if (y < 500) { fy <- 0.3; } else { fy <- -0.3; }
}
)sgl";

std::unique_ptr<sgl::Engine> BuildSwarm(int n, double arena,
                                        sgl::PhysicsComponent** physics_out) {
  auto engine = sgl::Engine::Create(kSwarm);
  if (!engine.ok()) std::abort();
  sgl::PhysicsConfig config;
  config.cls = "Body";
  config.default_radius = 1.0;
  config.max_x = arena;
  config.max_y = arena;
  config.max_speed = 3;
  auto comp = sgl::PhysicsComponent::Create((*engine)->catalog(), config);
  if (!comp.ok()) std::abort();
  *physics_out = comp->get();
  if (!(*engine)->AddComponent(std::move(*comp)).ok()) std::abort();
  sgl::Rng rng(77);
  for (int i = 0; i < n; ++i) {
    auto id = (*engine)->Spawn(
        "Body", {{"x", sgl::Value::Number(rng.Uniform(0, arena))},
                 {"y", sgl::Value::Number(rng.Uniform(0, arena))}});
    if (!id.ok()) std::abort();
  }
  return std::move(engine).value();
}

void BM_PhysicsScaling(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  // Fixed density: arena area grows with n.
  const double arena = std::sqrt(static_cast<double>(n)) * 12.0;
  sgl::PhysicsComponent* physics = nullptr;
  auto engine = BuildSwarm(n, arena, &physics);
  sgl_bench::Warmup(engine.get());
  int64_t collisions = 0;
  for (auto _ : state) {
    if (!engine->Tick().ok()) state.SkipWithError("tick failed");
    collisions += physics->last_tick().collision_pairs;
  }
  state.counters["collisions/tick"] =
      static_cast<double>(collisions) /
      static_cast<double>(state.iterations());
}

void BM_PhysicsOverrideRate(benchmark::State& state) {
  // Density sweep at fixed n: smaller arena -> more crowding -> more of the
  // scripts' intentions overridden by the solver.
  const int n = 4096;
  const double arena = static_cast<double>(state.range(0));
  sgl::PhysicsComponent* physics = nullptr;
  auto engine = BuildSwarm(n, arena, &physics);
  sgl_bench::Warmup(engine.get());
  int64_t overrides = 0;
  for (auto _ : state) {
    if (!engine->Tick().ok()) state.SkipWithError("tick failed");
    overrides += physics->last_tick().position_overrides;
  }
  state.counters["override_rate"] =
      static_cast<double>(overrides) /
      (static_cast<double>(state.iterations()) * n);
  state.counters["arena"] = arena;
}

BENCHMARK(BM_PhysicsScaling)
    ->Arg(1024)
    ->Arg(4096)
    ->Arg(16384)
    ->Arg(65536)
    ->Unit(benchmark::kMillisecond)
    ->MinTime(0.1);
BENCHMARK(BM_PhysicsOverrideRate)
    ->Arg(1600)   // dense
    ->Arg(800)    // denser
    ->Arg(400)    // crush
    ->Unit(benchmark::kMillisecond)
    ->MinTime(0.1);

}  // namespace

BENCHMARK_MAIN();
