#!/usr/bin/env python3
"""Diff two merged benchmark files (BENCH_<tag>.json) from run_benchmarks.sh.

Prints a per-benchmark table of real_time deltas and flags regressions that
exceed the noise threshold. The default threshold is deliberately generous
(45%): these benches run on shared CI-grade machines where PR 8 measured
~45% run-to-run noise on the mean — which is exactly why the telemetry
registry records percentiles. When both files carry percentile counters
(tick_p50_us etc., emitted by the telemetry-aware benches), the comparison
prefers p50 over the mean: the median is stable under the long-tail noise
that inflates means.

Usage:
  bench/compare_bench.py BASE.json NEW.json [--threshold PCT]

Exit status: 0 when no benchmark regressed beyond the threshold, 1 when at
least one did. Missing/extra benchmarks are reported but never fail the
comparison (suites grow between PRs).
"""

import argparse
import json
import sys

# Counters worth echoing when they moved — throughput and health numbers,
# not timings (timings are covered by the headline delta).
INTERESTING_COUNTERS = (
    "allocs_per_tick",
    "allocs_per_build",
    "spans_per_tick",
    "cross_records",
    "jobs_in_flight",
    "abort_rate",
    "vm_programs",
)

PERCENTILE_KEY = "tick_p50_us"


def load(path):
    with open(path) as fh:
        data = json.load(fh)
    out = {}
    for suite, payload in data.items():
        for bench in payload.get("benchmarks", []):
            out[f"{suite}/{bench['name']}"] = bench
    return out


def headline(bench):
    """(value, label) used for the delta: p50 when recorded, else mean."""
    if PERCENTILE_KEY in bench:
        return float(bench[PERCENTILE_KEY]), "p50_us"
    return float(bench.get("real_time", 0.0)), bench.get("time_unit", "?")


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("base", help="baseline BENCH_<tag>.json")
    parser.add_argument("new", help="candidate BENCH_<tag>.json")
    parser.add_argument(
        "--threshold",
        type=float,
        default=45.0,
        help="regression threshold in percent (default: %(default)s)",
    )
    args = parser.parse_args()

    base = load(args.base)
    new = load(args.new)

    regressions = []
    rows = []
    for name in sorted(base.keys() & new.keys()):
        b_val, b_label = headline(base[name])
        n_val, _ = headline(new[name])
        if b_val <= 0:
            continue
        delta = (n_val - b_val) / b_val * 100.0
        flag = ""
        if delta > args.threshold:
            flag = "REGRESSED"
            regressions.append(name)
        elif delta < -args.threshold:
            flag = "improved"
        rows.append((name, b_val, n_val, b_label, delta, flag))

    width = max((len(r[0]) for r in rows), default=20)
    print(f"{'benchmark':<{width}}  {'base':>12}  {'new':>12}  "
          f"{'delta':>8}  note")
    for name, b_val, n_val, label, delta, flag in rows:
        print(f"{name:<{width}}  {b_val:>12.1f}  {n_val:>12.1f}  "
              f"{delta:>+7.1f}%  {flag}  [{label}]".rstrip())

    for name in sorted(base.keys() & new.keys()):
        for key in INTERESTING_COUNTERS:
            if key in base[name] or key in new[name]:
                b_c = base[name].get(key)
                n_c = new[name].get(key)
                if b_c != n_c:
                    print(f"  counter {name}:{key} {b_c} -> {n_c}")

    only_base = sorted(base.keys() - new.keys())
    only_new = sorted(new.keys() - base.keys())
    if only_base:
        print(f"only in {args.base}: {', '.join(only_base)}")
    if only_new:
        print(f"only in {args.new}: {', '.join(only_new)}")

    if regressions:
        print(f"\n{len(regressions)} regression(s) beyond "
              f"{args.threshold:.0f}%: {', '.join(regressions)}")
        return 1
    print(f"\nno regressions beyond {args.threshold:.0f}% "
          f"({len(rows)} benchmarks compared)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
