// Shared helpers for the experiment harnesses (E1–E10). Every bench binary
// prints the series the experiment's table/figure plots; absolute numbers
// are machine-dependent, the *shape* is what EXPERIMENTS.md records.

#ifndef SGL_BENCH_BENCH_UTIL_H_
#define SGL_BENCH_BENCH_UTIL_H_

#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>

#include "src/sim/market.h"
#include "src/sim/rts.h"
#include "src/sim/traffic.h"

namespace sgl_bench {

inline sgl::EngineOptions Options(sgl::PlanMode mode,
                                  bool interpreted = false,
                                  int threads = 1) {
  sgl::EngineOptions options;
  options.exec.planner.mode = mode;
  options.exec.interpreted = interpreted;
  options.exec.num_threads = threads;
  return options;
}

inline std::unique_ptr<sgl::Engine> BuildRts(int units, sgl::PlanMode mode,
                                             bool interpreted = false,
                                             int threads = 1,
                                             bool clustered = false) {
  sgl::RtsConfig config;
  config.num_units = units;
  config.clustered = clustered;
  auto engine =
      sgl::RtsWorkload::Build(config, Options(mode, interpreted, threads));
  if (!engine.ok()) {
    std::fprintf(stderr, "build failed: %s\n",
                 engine.status().ToString().c_str());
    std::abort();
  }
  return std::move(engine).value();
}

/// One warm-up tick (builds indexes, seeds stats) before timing.
inline void Warmup(sgl::Engine* engine) {
  if (!engine->Tick().ok()) std::abort();
}

/// Multi-tick warmup that also brings the executor's scratch pools and
/// index buffers to their high-water sizes, so the timed window measures
/// the zero-allocation steady state rather than pool growth. 24 ticks
/// covers the RTS workload's structural transitions (the flee handler only
/// starts selecting rows once units drop below 25 health, ~tick 10).
inline void WarmupSteadyState(sgl::Engine* engine, int ticks = 24) {
  for (int t = 0; t < ticks; ++t) {
    if (!engine->Tick().ok()) std::abort();
  }
}

}  // namespace sgl_bench

#endif  // SGL_BENCH_BENCH_UTIL_H_
