// E3 — transaction throughput and abort behaviour under contention (§3.1).
//
// Series: ticks/s, committed txns per tick, and abort rate as the number of
// buyers contesting each item grows. Expected shape: issued txns grow with
// contention, commits per contested item stay at ~1, so the abort rate
// climbs toward (contention-1)/contention; consistency (checked in tests,
// re-asserted here via counters) never breaks.

#include "bench/bench_util.h"

namespace {

void BM_MarketContention(benchmark::State& state) {
  sgl::MarketConfig config;
  config.num_traders = 256;
  config.num_items = 512;
  config.contention = static_cast<int>(state.range(0));
  config.active_fraction = 0.25;
  auto engine =
      sgl::MarketWorkload::Build(config, sgl_bench::Options(
                                             sgl::PlanMode::kCostBased));
  if (!engine.ok()) {
    state.SkipWithError("build failed");
    return;
  }
  // Bring the flat intent logs, overlay columns, and set-slice pools to
  // their steady-state high-water marks before timing (matches the
  // alloc_steady_state_test warmup for the market).
  sgl::Rng rng(1234);
  for (int t = 0; t < 40; ++t) {
    sgl::MarketWorkload::AssignWants(engine->get(), config, &rng);
    if (!(*engine)->Tick().ok()) state.SkipWithError("warmup failed");
  }
  int64_t issued = 0, committed = 0, aborted = 0, allocs = 0;
  bool consistent = true;
  for (auto _ : state) {
    state.PauseTiming();
    sgl::MarketWorkload::AssignWants(engine->get(), config, &rng);
    state.ResumeTiming();
    if (!(*engine)->Tick().ok()) state.SkipWithError("tick failed");
    const sgl::TxnStats& txn = (*engine)->last_stats().txn;
    issued += txn.issued;
    committed += txn.committed;
    aborted += txn.aborted;
    allocs += (*engine)->last_stats().allocs_per_tick;
    state.PauseTiming();
    consistent =
        consistent && sgl::MarketWorkload::OwnershipConsistent(engine->get());
    state.ResumeTiming();
  }
  const double n = static_cast<double>(state.iterations());
  state.counters["issued/tick"] = static_cast<double>(issued) / n;
  state.counters["committed/tick"] = static_cast<double>(committed) / n;
  state.counters["abort_rate"] =
      issued > 0 ? static_cast<double>(aborted) / static_cast<double>(issued)
                 : 0.0;
  state.counters["consistent"] = consistent ? 1.0 : 0.0;
  state.counters["allocs_per_tick"] = static_cast<double>(allocs) / n;
}

BENCHMARK(BM_MarketContention)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Arg(16)
    ->Arg(32)
    ->Unit(benchmark::kMillisecond)
    ->MinTime(0.05);

// Admission-engine microbenchmark: cost of the greedy feasible-subset pass
// itself as the intent count grows (bank-style single-field deltas).
void BM_AdmissionThroughput(benchmark::State& state) {
  const char* bank = R"sgl(
class Account {
  state:
    number balance = 100;
    number amount = 1;
}
script W for Account {
  atomic "wd" require(balance >= 0) { balance <- -amount; }
}
)sgl";
  auto engine = sgl::Engine::Create(bank);
  if (!engine.ok()) {
    state.SkipWithError("build failed");
    return;
  }
  const int n = static_cast<int>(state.range(0));
  for (int i = 0; i < n; ++i) {
    if (!(*engine)->Spawn("Account", {}).ok()) {
      state.SkipWithError("spawn failed");
    }
  }
  sgl_bench::WarmupSteadyState(engine->get(), 8);
  int64_t allocs = 0;
  for (auto _ : state) {
    if (!(*engine)->Tick().ok()) state.SkipWithError("tick failed");
    allocs += (*engine)->last_stats().allocs_per_tick;
  }
  state.counters["txns/s"] = benchmark::Counter(
      static_cast<double>(n), benchmark::Counter::kIsIterationInvariantRate);
  state.counters["allocs_per_tick"] =
      static_cast<double>(allocs) / static_cast<double>(state.iterations());
}

BENCHMARK(BM_AdmissionThroughput)
    ->Arg(1000)
    ->Arg(10000)
    ->Arg(50000)
    ->Unit(benchmark::kMillisecond)
    ->MinTime(0.05);

}  // namespace

BENCHMARK_MAIN();
