#!/usr/bin/env bash
# Runs the headline experiments and merges their google-benchmark JSON into
# a single BENCH_<tag>.json at the repo root — one file per PR, recording
# the performance trajectory (tick times, phase breakdown, allocs/tick).
#
#   E1  set-at-a-time vs object-at-a-time (tick ms + allocs_per_tick on the
#       zero-allocation grid and range-tree paths)
#   E3  transaction throughput / abort behaviour under contention, plus
#       admission-engine scaling (allocs_per_tick on the flat write path)
#   E6  multicore scaling (phase breakdown + allocs_per_tick)
#   E7  index build / steady-state rebuild cost (allocs_per_build) / memory
#   E8  traffic scaling under the cost-based planner (vehicle_ticks/s +
#       allocs_per_tick)
#   E11 sharded world partitioning (tick latency + phase breakdown +
#       cross-shard records + allocs_per_tick vs shard count; columnar
#       migration / bulk-spawn throughput)
#   E12 asynchronous out-of-band pathfinding (sync vs async tick latency
#       on the large-map armies workload, jobs in flight, barrier wait,
#       allocs_per_tick vs job-worker count)
#   E13 register bytecode VM vs tree-walking expression interpreter
#       (dense nested-loop ticks where fused filter pipelines dominate,
#       plus the indexed steady state under single vs batched probes;
#       allocs_per_tick + vm_programs + simd_lanes + probe_us + the
#       CPU/dispatch context the numbers were recorded under)
#   E10 debugging + observability overhead (tracer / checksum / checkpoint
#       cost, plus the telemetry and flight-recorder armed-vs-disarmed
#       series: spans/tick, ns/span, records/frame, and tick p50/p95/p99
#       from the histogram registry)
#
# Usage: bench/run_benchmarks.sh [build_dir] [tag] [baseline.json]
#   build_dir  cmake build directory holding the bench_* binaries (default:
#              build)
#   tag        suffix for the output file (default: pr5)
#   baseline   optional earlier BENCH_<tag>.json; when given, the run ends
#              with bench/compare_bench.py baseline BENCH_<tag>.json
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
TAG="${2:-pr5}"
BASELINE="${3:-}"
OUT="BENCH_${TAG}.json"
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

for exp in e1_set_at_a_time e3_transactions e6_parallel e7_index_memory \
           e8_traffic e10_debug e11_sharded e12_async e13_vm; do
  bin="$BUILD_DIR/bench_${exp}"
  if [[ ! -x "$bin" ]]; then
    echo "missing $bin — build first: cmake -B $BUILD_DIR -S . && cmake --build $BUILD_DIR -j" >&2
    exit 1
  fi
  echo "== bench_${exp}" >&2
  "$bin" --benchmark_out="$TMP/${exp}.json" --benchmark_out_format=json \
    >/dev/null
done

python3 - "$TMP" "$OUT" <<'EOF'
import json, os, sys

tmp, out = sys.argv[1], sys.argv[2]
keep = ("name", "real_time", "cpu_time", "time_unit", "iterations",
        "allocs_per_tick", "allocs_per_build", "units", "threads",
        "query_ms", "merge_ms", "update_ms", "hw_cores", "bytes",
        "formula_bytes", "issued/tick", "committed/tick", "abort_rate",
        "consistent", "txns/s", "vehicle_ticks/s", "mean_speed",
        "shards", "cross_records", "moved_per_batch", "rows_per_batch",
        "workers", "jobs_submitted", "jobs_installed", "jobs_in_flight",
        "job_wait_ms", "n", "vm_programs", "simd_lanes", "probe_us",
        "cpu_avx2", "kernel_avx2", "spans_per_tick", "ns_per_span",
        "tick_p50_us", "tick_p95_us", "tick_p99_us", "records",
        "checkpoint_bytes", "records_per_frame", "frames_captured")
merged = {}
for f in sorted(os.listdir(tmp)):
    with open(os.path.join(tmp, f)) as fh:
        data = json.load(fh)
    ctx = data.get("context", {})
    merged[f[:-len(".json")]] = {
        "date": ctx.get("date"),
        "num_cpus": ctx.get("num_cpus"),
        "build_type": ctx.get("library_build_type"),
        "benchmarks": [
            {k: b[k] for k in keep if k in b}
            for b in data.get("benchmarks", [])
        ],
    }
with open(out, "w") as fh:
    json.dump(merged, fh, indent=1)
    fh.write("\n")
print(f"wrote {out}")
EOF

if [[ -n "$BASELINE" ]]; then
  python3 bench/compare_bench.py "$BASELINE" "$OUT"
fi
