// E6 — multicore scaling of the read-only query+effect phases (§4.2).
//
// "Since all tables are read-only until the update phase, effect
// computation can occur without synchronization." Series: ms/tick for the
// 16k-unit RTS battle at 1/2/4/8 threads, plus the per-phase breakdown
// (query+effect parallelizes; merge and update are the serial residue).
// Expected shape: near-linear speedup of the query phase up to physical
// cores, Amdahl-limited total speedup.

#include <thread>

#include "bench/bench_util.h"

namespace {

void BM_ParallelTick(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  auto engine = sgl_bench::BuildRts(16384, sgl::PlanMode::kStaticRangeTree,
                                    /*interpreted=*/false, threads,
                                    /*clustered=*/false);
  sgl_bench::WarmupSteadyState(engine.get());
  int64_t query_us = 0, merge_us = 0, update_us = 0, allocs = 0;
  for (auto _ : state) {
    if (!engine->Tick().ok()) state.SkipWithError("tick failed");
    query_us += engine->last_stats().query_effect_micros;
    merge_us += engine->last_stats().merge_micros;
    update_us += engine->last_stats().update_micros;
    allocs += engine->last_stats().allocs_per_tick;
  }
  const double n = static_cast<double>(state.iterations());
  state.counters["threads"] = threads;
  state.counters["query_ms"] = static_cast<double>(query_us) / n / 1000.0;
  state.counters["merge_ms"] = static_cast<double>(merge_us) / n / 1000.0;
  state.counters["update_ms"] = static_cast<double>(update_us) / n / 1000.0;
  state.counters["allocs_per_tick"] = static_cast<double>(allocs) / n;
  state.counters["hw_cores"] =
      static_cast<double>(std::thread::hardware_concurrency());
}

BENCHMARK(BM_ParallelTick)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->MinTime(0.1);

// The same sweep on the clustered (battle) workload, whose heavier join
// output stresses the sharded effect merge.
void BM_ParallelTickClustered(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  auto engine = sgl_bench::BuildRts(8192, sgl::PlanMode::kStaticRangeTree,
                                    false, threads, /*clustered=*/true);
  sgl_bench::Warmup(engine.get());
  for (auto _ : state) {
    if (!engine->Tick().ok()) state.SkipWithError("tick failed");
  }
  state.counters["threads"] = threads;
}

BENCHMARK(BM_ParallelTickClustered)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->MinTime(0.1);

}  // namespace

BENCHMARK_MAIN();
