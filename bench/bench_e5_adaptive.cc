// E5 — adaptive plan selection across workload modes (§4.1).
//
// The workload alternates every 25 ticks between "exploration" (units
// spread over the whole arena: tiny query boxes relative to the world, few
// matches) and "battle" (everyone clumped into hotspots: dense joins).
// Series: mean ms/tick for each planning policy over the alternating run.
// Expected shape: each static plan wins one mode and loses the other; the
// cost-based and adaptive policies track the per-mode winner, landing at or
// near the per-phase minimum overall. Switch/drift counters show the
// adaptive controller actually reacting.

#include "bench/bench_util.h"

namespace {

void RunPolicy(benchmark::State& state, sgl::PlanMode mode) {
  sgl::RtsConfig config;
  config.num_units = 2048;
  config.attack_range = 25;
  auto engine = sgl::RtsWorkload::Build(config, sgl_bench::Options(mode));
  if (!engine.ok()) {
    state.SkipWithError("build failed");
    return;
  }
  sgl_bench::Warmup(engine->get());
  int64_t tick_in_run = 0;
  for (auto _ : state) {
    if (tick_in_run % 15 == 0) {
      state.PauseTiming();
      bool battle = (tick_in_run / 15) % 2 == 1;
      sgl::RtsWorkload::RepositionMode(engine->get(), config, battle,
                                       static_cast<uint64_t>(tick_in_run));
      state.ResumeTiming();
    }
    if (!(*engine)->Tick().ok()) state.SkipWithError("tick failed");
    ++tick_in_run;
  }
  state.counters["plan_switches"] =
      static_cast<double>((*engine)->executor().controller().switches());
  state.counters["drift_resets"] =
      static_cast<double>((*engine)->executor().controller().drift_resets());
}

void BM_PolicyStaticNl(benchmark::State& state) {
  RunPolicy(state, sgl::PlanMode::kStaticNL);
}
void BM_PolicyStaticTree(benchmark::State& state) {
  RunPolicy(state, sgl::PlanMode::kStaticRangeTree);
}
void BM_PolicyStaticGrid(benchmark::State& state) {
  RunPolicy(state, sgl::PlanMode::kStaticGrid);
}
void BM_PolicyCostBased(benchmark::State& state) {
  RunPolicy(state, sgl::PlanMode::kCostBased);
}
void BM_PolicyAdaptive(benchmark::State& state) {
  RunPolicy(state, sgl::PlanMode::kAdaptive);
}

BENCHMARK(BM_PolicyStaticNl)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(60);
BENCHMARK(BM_PolicyStaticTree)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(60);
BENCHMARK(BM_PolicyStaticGrid)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(60);
BENCHMARK(BM_PolicyCostBased)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(60);
BENCHMARK(BM_PolicyAdaptive)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(60);

}  // namespace

BENCHMARK_MAIN();
