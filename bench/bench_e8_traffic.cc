// E8 — large-scale traffic simulation (§4.2): "we are currently working on
// a project to simulate traffic networks with millions of vehicles."
//
// Series: ms/tick and vehicle-ticks/s for the car-following workload as the
// fleet grows, under the cost-based planner (which can pick the 1-D range
// tree, the grid, or the lane-hash join) vs the nested-loop floor. Expected
// shape: cost-based scales near-linearly; NL blows up quadratically — the
// gap is what makes "millions of vehicles" thinkable at all.

#include "bench/bench_util.h"

namespace {

std::unique_ptr<sgl::Engine> BuildTraffic(int vehicles, sgl::PlanMode mode,
                                          int threads = 1) {
  sgl::TrafficConfig config;
  config.num_vehicles = vehicles;
  config.num_lanes = 32;
  auto engine = sgl::TrafficWorkload::Build(
      config, sgl_bench::Options(mode, false, threads));
  if (!engine.ok()) std::abort();
  return std::move(engine).value();
}

void BM_TrafficCostBased(benchmark::State& state) {
  auto engine = BuildTraffic(static_cast<int>(state.range(0)),
                             sgl::PlanMode::kCostBased);
  sgl_bench::WarmupSteadyState(engine.get());
  int64_t allocs = 0;
  for (auto _ : state) {
    if (!engine->Tick().ok()) state.SkipWithError("tick failed");
    allocs += engine->last_stats().allocs_per_tick;
  }
  state.counters["vehicle_ticks/s"] = benchmark::Counter(
      static_cast<double>(state.range(0)),
      benchmark::Counter::kIsIterationInvariantRate);
  state.counters["mean_speed"] =
      sgl::TrafficWorkload::MeanSpeed(engine.get());
  state.counters["allocs_per_tick"] =
      static_cast<double>(allocs) / static_cast<double>(state.iterations());
}

void BM_TrafficNestedLoop(benchmark::State& state) {
  auto engine = BuildTraffic(static_cast<int>(state.range(0)),
                             sgl::PlanMode::kStaticNL);
  sgl_bench::WarmupSteadyState(engine.get());
  for (auto _ : state) {
    if (!engine->Tick().ok()) state.SkipWithError("tick failed");
  }
  state.counters["vehicle_ticks/s"] = benchmark::Counter(
      static_cast<double>(state.range(0)),
      benchmark::Counter::kIsIterationInvariantRate);
}

void BM_TrafficParallel(benchmark::State& state) {
  auto engine = BuildTraffic(100000, sgl::PlanMode::kCostBased,
                             static_cast<int>(state.range(0)));
  sgl_bench::WarmupSteadyState(engine.get());
  int64_t allocs = 0;
  for (auto _ : state) {
    if (!engine->Tick().ok()) state.SkipWithError("tick failed");
    allocs += engine->last_stats().allocs_per_tick;
  }
  state.counters["threads"] = static_cast<double>(state.range(0));
  state.counters["vehicle_ticks/s"] = benchmark::Counter(
      100000.0, benchmark::Counter::kIsIterationInvariantRate);
  state.counters["allocs_per_tick"] =
      static_cast<double>(allocs) / static_cast<double>(state.iterations());
}

BENCHMARK(BM_TrafficCostBased)
    ->Arg(10000)
    ->Arg(30000)
    ->Arg(100000)
    ->Unit(benchmark::kMillisecond)
    ->MinTime(0.2);
BENCHMARK(BM_TrafficNestedLoop)
    ->Arg(2000)
    ->Arg(8000)
    ->Unit(benchmark::kMillisecond)
    ->MinTime(0.1);
BENCHMARK(BM_TrafficParallel)
    ->Arg(1)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->MinTime(0.2);

}  // namespace

BENCHMARK_MAIN();
