// E7 — range-tree space: the paper's Θ(n·log^(d−1) n) analysis (§4.2).
//
// "Each of these trees takes Θ(n·log^(d−1) n) space ... a tree with 100,000
// entries of 16 bytes each takes about 2 GB to store. As the dimensionality
// and number of characters increase, this will quickly exhaust the main
// memory of a single machine."
//
// Output 1 (table): measured bytes vs. the formula for n × d, plus
// bytes/entry — the series that motivates index partitioning.
// Output 2 (table): k-way partitioned tree — max-per-shard memory drops
// ~1/k (each machine of the simulated shared-nothing cluster holds 1/k).
// Output 3 (benchmarks): cold build, steady-state rebuild (the per-tick
// cost, with allocs_per_build asserting the flat layouts' zero-allocation
// rebuild), and query time for tree vs. grid.

#include <algorithm>
#include <cinttypes>

#include "bench/bench_util.h"
#include "src/common/alloc_hook.h"
#include "src/index/grid_index.h"
#include "src/index/partitioned_index.h"
#include "src/index/range_tree.h"

namespace {

std::vector<std::vector<double>> RandomPoints(size_t n, int d,
                                              uint64_t seed) {
  sgl::Rng rng(seed);
  std::vector<std::vector<double>> coords(
      static_cast<size_t>(d), std::vector<double>(n));
  for (auto& dim : coords) {
    for (double& v : dim) v = rng.Uniform(0, 1000);
  }
  return coords;
}

void PrintMemoryTables() {
  std::printf(
      "\n== E7a: range-tree memory vs n, d "
      "(paper: Theta(n log^(d-1) n)) ==\n");
  std::printf("%10s %4s %16s %16s %12s\n", "n", "d", "measured_bytes",
              "formula_bytes", "bytes/entry");
  for (int d : {1, 2, 3}) {
    for (size_t n : {size_t{1024}, size_t{8192}, size_t{32768},
                     size_t{131072}}) {
      if (d == 3 && n > 32768) continue;  // keep the harness fast
      sgl::RangeTree tree(d);
      tree.Build(RandomPoints(n, d, 7 * n + static_cast<size_t>(d)));
      size_t measured = tree.MemoryBytes();
      size_t formula = sgl::RangeTree::TheoreticalBytes(n, d, 16);
      std::printf("%10zu %4d %16zu %16zu %12.1f\n", n, d, measured, formula,
                  static_cast<double>(measured) / static_cast<double>(n));
    }
  }
  std::printf(
      "\n== E7b: k-way partitioned tree (shared-nothing simulation) ==\n");
  std::printf("%8s %16s %16s\n", "shards", "max_shard_bytes", "total_bytes");
  for (int shards : {1, 2, 4, 8, 16}) {
    sgl::PartitionedIndex index(2, shards);
    index.Build(RandomPoints(65536, 2, 99));
    std::printf("%8d %16zu %16zu\n", shards, index.MaxShardMemoryBytes(),
                index.TotalMemoryBytes());
  }
  std::printf("\n");
}

void BM_TreeBuild(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const int d = static_cast<int>(state.range(1));
  auto coords = RandomPoints(n, d, 5);
  for (auto _ : state) {
    sgl::RangeTree tree(d);
    auto copy = coords;
    tree.Build(std::move(copy));
    benchmark::DoNotOptimize(tree.MemoryBytes());
  }
}

void BM_GridBuild(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const int d = static_cast<int>(state.range(1));
  auto coords = RandomPoints(n, d, 5);
  for (auto _ : state) {
    sgl::GridIndex grid(d);
    auto copy = coords;
    grid.Build(std::move(copy));
    benchmark::DoNotOptimize(grid.MemoryBytes());
  }
}

// Steady-state rebuild: one persistent index cycling its column buffer
// through the move-in Build, exactly the per-tick path IndexManager drives.
// allocs_per_build measures heap traffic per rebuild (0 for the flat
// layouts once past high water).
template <typename Index>
void RebuildLoop(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const int d = static_cast<int>(state.range(1));
  const auto coords = RandomPoints(n, d, 5);
  Index index(d);
  auto buf = coords;
  for (int warm = 0; warm < 3; ++warm) {
    for (int k = 0; k < d; ++k) {
      buf[static_cast<size_t>(k)].assign(coords[static_cast<size_t>(k)].begin(),
                                         coords[static_cast<size_t>(k)].end());
    }
    index.Build(std::move(buf));
  }
  const sgl::AllocCounts before = sgl::AllocCountersNow();
  for (auto _ : state) {
    for (int k = 0; k < d; ++k) {
      buf[static_cast<size_t>(k)].assign(coords[static_cast<size_t>(k)].begin(),
                                         coords[static_cast<size_t>(k)].end());
    }
    index.Build(std::move(buf));
    benchmark::DoNotOptimize(index.MemoryBytes());
  }
  const sgl::AllocCounts after = sgl::AllocCountersNow();
  state.counters["allocs_per_build"] =
      static_cast<double>(after.count - before.count) /
      static_cast<double>(std::max<int64_t>(1, state.iterations()));
}

void BM_TreeRebuild(benchmark::State& state) {
  RebuildLoop<sgl::RangeTree>(state);
}

void BM_GridRebuild(benchmark::State& state) {
  RebuildLoop<sgl::GridIndex>(state);
}

void BM_TreeQuery(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const int d = static_cast<int>(state.range(1));
  sgl::RangeTree tree(d);
  tree.Build(RandomPoints(n, d, 5));
  sgl::Rng rng(6);
  std::vector<sgl::RowIdx> out;
  for (auto _ : state) {
    std::vector<double> lo(static_cast<size_t>(d)), hi(static_cast<size_t>(d));
    for (int k = 0; k < d; ++k) {
      double c = rng.Uniform(0, 1000);
      lo[static_cast<size_t>(k)] = c - 20;
      hi[static_cast<size_t>(k)] = c + 20;
    }
    out.clear();
    tree.Query(lo.data(), hi.data(), &out);
    benchmark::DoNotOptimize(out.size());
  }
}

void BM_GridQuery(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const int d = static_cast<int>(state.range(1));
  sgl::GridIndex grid(d);
  grid.Build(RandomPoints(n, d, 5));
  sgl::Rng rng(6);
  std::vector<sgl::RowIdx> out;
  for (auto _ : state) {
    std::vector<double> lo(static_cast<size_t>(d)), hi(static_cast<size_t>(d));
    for (int k = 0; k < d; ++k) {
      double c = rng.Uniform(0, 1000);
      lo[static_cast<size_t>(k)] = c - 20;
      hi[static_cast<size_t>(k)] = c + 20;
    }
    out.clear();
    grid.Query(lo.data(), hi.data(), &out);
    benchmark::DoNotOptimize(out.size());
  }
}

BENCHMARK(BM_TreeBuild)
    ->Args({16384, 2})
    ->Args({65536, 2})
    ->Args({16384, 3})
    ->Unit(benchmark::kMillisecond)
    ->MinTime(0.05);
BENCHMARK(BM_GridBuild)
    ->Args({16384, 2})
    ->Args({65536, 2})
    ->Args({16384, 3})
    ->Unit(benchmark::kMillisecond)
    ->MinTime(0.05);
BENCHMARK(BM_TreeRebuild)
    ->Args({16384, 2})
    ->Args({65536, 2})
    ->Args({16384, 3})
    ->Unit(benchmark::kMillisecond)
    ->MinTime(0.05);
BENCHMARK(BM_GridRebuild)
    ->Args({16384, 2})
    ->Args({65536, 2})
    ->Args({16384, 3})
    ->Unit(benchmark::kMillisecond)
    ->MinTime(0.05);
BENCHMARK(BM_TreeQuery)
    ->Args({65536, 2})
    ->Args({16384, 3})
    ->Unit(benchmark::kMicrosecond)
    ->MinTime(0.05);
BENCHMARK(BM_GridQuery)
    ->Args({65536, 2})
    ->Args({16384, 3})
    ->Unit(benchmark::kMicrosecond)
    ->MinTime(0.05);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  PrintMemoryTables();
  return 0;
}
