// E11 — sharded world partitioning (src/shard/): tick latency, phase
// breakdown, cross-shard routing volume, and allocs_per_tick vs shard
// count at 16k and 64k entities.
//
// Series: ms/tick for the RTS battle under {1, 2, 4, 8} shards, each
// shard a self-contained QUERY pipeline fanned out across 4 threads, with
// effects routed through per-(src,dst) mailboxes and merged at the tick
// barrier; the single-shard row is the no-partition baseline the
// checksum-parity tests pin the others to. Also: the columnar
// EntityMigrator's bulk-move throughput (entities moved per rebuilt
// arena), the contrast with one-at-a-time spawns, and the traffic
// workload at 16k vehicles where the 1-D road makes cross-shard writes
// rare (the near-ideal partitioning case).

#include <thread>

#include "bench/bench_util.h"
#include "src/debug/checkpoint.h"
#include "src/shard/shard_executor.h"

namespace {

std::unique_ptr<sgl::Engine> BuildShardedRts(int units, int shards,
                                             int threads,
                                             bool clustered = true) {
  sgl::RtsConfig config;
  config.num_units = units;
  config.clustered = clustered;
  sgl::EngineOptions options =
      sgl_bench::Options(sgl::PlanMode::kStaticGrid, false, threads);
  options.exec.num_shards = shards;
  auto engine = sgl::RtsWorkload::Build(config, options);
  if (!engine.ok()) {
    std::fprintf(stderr, "build failed: %s\n",
                 engine.status().ToString().c_str());
    std::abort();
  }
  // Zero attack so nobody dies: the measured regime keeps every matching
  // pair emitting its (frequently cross-shard) damage write each tick —
  // a stationary peak load instead of a battle that decays to an empty
  // world during warmup.
  for (sgl::EntityId id = 1; id <= units; ++id) {
    if (!(*engine)->Set(id, "attack", sgl::Value::Number(0)).ok()) {
      std::abort();
    }
  }
  return std::move(engine).value();
}

// Threads stay at 1 so the series isolates the partition layer's own cost
// (routing + mailbox merge vs direct dense writes); on a multicore box the
// shard fan-out additionally parallelizes the query phase (E6's scaling
// shape), which `hw_cores` lets readers of the JSON calibrate for. The
// 16k rows are the dense clustered battle (heavy cross-shard traffic);
// 64k runs uniform, or the join fan-out would swamp the measurement.
void BM_ShardedRtsTick(benchmark::State& state) {
  const int units = static_cast<int>(state.range(0));
  const int shards = static_cast<int>(state.range(1));
  auto engine = BuildShardedRts(units, shards, /*threads=*/1,
                                /*clustered=*/units <= 16384);
  sgl_bench::WarmupSteadyState(engine.get());
  int64_t query_us = 0, merge_us = 0, update_us = 0, allocs = 0;
  int64_t cross = 0;
  for (auto _ : state) {
    if (!engine->Tick().ok()) state.SkipWithError("tick failed");
    query_us += engine->last_stats().query_effect_micros;
    merge_us += engine->last_stats().merge_micros;
    update_us += engine->last_stats().update_micros;
    allocs += engine->last_stats().allocs_per_tick;
    if (engine->sharded()) {
      cross += static_cast<int64_t>(
          engine->shard_executor().last_cross_shard_records());
    }
  }
  const double n = static_cast<double>(state.iterations());
  state.counters["units"] = units;
  state.counters["shards"] = shards;
  state.counters["query_ms"] = static_cast<double>(query_us) / n / 1000.0;
  state.counters["merge_ms"] = static_cast<double>(merge_us) / n / 1000.0;
  state.counters["update_ms"] = static_cast<double>(update_us) / n / 1000.0;
  state.counters["allocs_per_tick"] = static_cast<double>(allocs) / n;
  state.counters["cross_records"] = static_cast<double>(cross) / n;
  state.counters["hw_cores"] =
      static_cast<double>(std::thread::hardware_concurrency());
}

BENCHMARK(BM_ShardedRtsTick)
    ->Args({16384, 1})
    ->Args({16384, 2})
    ->Args({16384, 4})
    ->Args({16384, 8})
    ->Args({65536, 1})
    ->Args({65536, 4})
    ->Unit(benchmark::kMillisecond)
    ->MinTime(0.2);

// Traffic at 16k vehicles: lane-local interactions under a block
// partition mean almost no cross-shard records — the workload sharding is
// supposed to love.
void BM_ShardedTrafficTick(benchmark::State& state) {
  const int shards = static_cast<int>(state.range(0));
  sgl::TrafficConfig config;
  config.num_vehicles = 16384;
  config.num_lanes = 32;
  sgl::EngineOptions options =
      sgl_bench::Options(sgl::PlanMode::kCostBased, false, /*threads=*/1);
  options.exec.num_shards = shards;
  auto engine = sgl::TrafficWorkload::Build(config, options);
  if (!engine.ok()) std::abort();
  sgl_bench::WarmupSteadyState(engine->get());
  int64_t allocs = 0;
  for (auto _ : state) {
    if (!(*engine)->Tick().ok()) state.SkipWithError("tick failed");
    allocs += (*engine)->last_stats().allocs_per_tick;
  }
  state.counters["shards"] = shards;
  state.counters["allocs_per_tick"] =
      static_cast<double>(allocs) / static_cast<double>(state.iterations());
}

BENCHMARK(BM_ShardedTrafficTick)
    ->Arg(1)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->MinTime(0.2);

// Columnar bulk migration: move a random 25% of 16k units to new shards
// in one batch (one slice rebuild per class) and undo it, vs what the
// boxed path would do row-at-a-time.
void BM_MigrateBatch(benchmark::State& state) {
  const int units = 16384;
  auto engine = BuildShardedRts(units, /*shards=*/4, /*threads=*/1);
  if (!engine->Tick().ok()) std::abort();  // builds the partition
  sgl::Rng rng(17);
  std::vector<sgl::ShardMove> there, back;
  for (sgl::EntityId id = 1; id <= units; ++id) {
    if (rng.Next() % 4 != 0) continue;
    there.push_back(
        sgl::ShardMove{id, static_cast<int>(rng.Next() % 4)});
    back.push_back(sgl::ShardMove{
        id, engine->sharded_world().ShardOfEntity(id)});
  }
  for (auto _ : state) {
    if (!engine->sharded_world().MigrateNow(there).ok()) {
      state.SkipWithError("migrate failed");
    }
    if (!engine->sharded_world().MigrateNow(back).ok()) {
      state.SkipWithError("migrate failed");
    }
  }
  state.counters["moved_per_batch"] = static_cast<double>(there.size());
}

BENCHMARK(BM_MigrateBatch)->Unit(benchmark::kMillisecond)->MinTime(0.2);

// Columnar bulk spawn vs one-at-a-time boxed spawns, 4k rows into a
// 16k-unit 4-shard world.
void BM_SpawnBatchColumnar(benchmark::State& state) {
  auto engine = BuildShardedRts(16384, 4, 1);
  if (!engine->Tick().ok()) std::abort();
  const sgl::ClassId unit = engine->catalog().Find("Unit");
  std::vector<sgl::EntityId> ids;
  for (auto _ : state) {
    ids.clear();
    if (!engine->sharded_world().SpawnBatch(unit, 4096, 1, &ids).ok()) {
      state.SkipWithError("spawn failed");
    }
    state.PauseTiming();
    if (!engine->sharded_world().DespawnBatch(ids).ok()) {
      state.SkipWithError("despawn failed");
    }
    state.ResumeTiming();
  }
  state.counters["rows_per_batch"] = 4096;
}

BENCHMARK(BM_SpawnBatchColumnar)->Unit(benchmark::kMillisecond)->MinTime(0.2);

// The boxed comparison: one-at-a-time spawns into the *same* target shard
// (each pays a per-row default round-trip plus its own slide-into-range
// move), vs the batch's single columnar rebuild above.
void BM_SpawnSingles(benchmark::State& state) {
  auto engine = BuildShardedRts(16384, 4, 1);
  if (!engine->Tick().ok()) std::abort();
  std::vector<sgl::EntityId> ids;
  for (auto _ : state) {
    ids.clear();
    for (int i = 0; i < 4096; ++i) {
      auto id = engine->sharded_world().Spawn("Unit", {}, /*shard=*/1);
      if (!id.ok()) state.SkipWithError("spawn failed");
      ids.push_back(*id);
    }
    state.PauseTiming();
    if (!engine->sharded_world().DespawnBatch(ids).ok()) {
      state.SkipWithError("despawn failed");
    }
    state.ResumeTiming();
  }
  state.counters["rows_per_batch"] = 4096;
}

BENCHMARK(BM_SpawnSingles)->Unit(benchmark::kMillisecond)->MinTime(0.2);

}  // namespace

BENCHMARK_MAIN();
