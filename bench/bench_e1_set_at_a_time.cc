// E1 — the headline claim (§1–2): "we can dramatically improve the
// performance of computer games ... by using database query processing and
// indexing technology to process these behaviors set-at-a-time."
//
// Series: ms/tick for the RTS battle at n units under three engines —
//   interpreted     object-at-a-time (per-NPC scalar eval, full scans):
//                   what a traditional scripting engine does
//   compiled-nl     set-at-a-time, but nested-loop joins (vectorization
//                   alone, no indexing)
//   compiled-tree   set-at-a-time + range-tree index joins (full SGL)
//
// Expected shape: interpreted and compiled-nl grow ~O(n^2); compiled-tree
// ~O(n log n). The compiled/interpreted gap widens with n.

#include <algorithm>

#include "bench/bench_util.h"

namespace {

using sgl_bench::BuildRts;
using sgl_bench::Warmup;

void BM_Interpreted(benchmark::State& state) {
  auto engine = BuildRts(static_cast<int>(state.range(0)),
                         sgl::PlanMode::kStaticNL, /*interpreted=*/true);
  Warmup(engine.get());
  for (auto _ : state) {
    if (!engine->Tick().ok()) state.SkipWithError("tick failed");
  }
  state.counters["units"] = static_cast<double>(state.range(0));
}

void BM_CompiledNl(benchmark::State& state) {
  auto engine =
      BuildRts(static_cast<int>(state.range(0)), sgl::PlanMode::kStaticNL);
  Warmup(engine.get());
  for (auto _ : state) {
    if (!engine->Tick().ok()) state.SkipWithError("tick failed");
  }
  state.counters["units"] = static_cast<double>(state.range(0));
}

void BM_CompiledTree(benchmark::State& state) {
  auto engine = BuildRts(static_cast<int>(state.range(0)),
                         sgl::PlanMode::kStaticRangeTree);
  Warmup(engine.get());
  for (auto _ : state) {
    if (!engine->Tick().ok()) state.SkipWithError("tick failed");
  }
  state.counters["units"] = static_cast<double>(state.range(0));
}

// Full SGL on the grid access path — the zero-allocation steady state.
// allocs_per_tick is the per-tick average over the timed window; after the
// scratch pools reach high water it should report ~0.
void BM_CompiledGrid(benchmark::State& state) {
  auto engine = BuildRts(static_cast<int>(state.range(0)),
                         sgl::PlanMode::kStaticGrid);
  sgl_bench::WarmupSteadyState(engine.get());
  int64_t allocs = 0;
  for (auto _ : state) {
    if (!engine->Tick().ok()) state.SkipWithError("tick failed");
    allocs += engine->last_stats().allocs_per_tick;
  }
  state.counters["units"] = static_cast<double>(state.range(0));
  state.counters["allocs_per_tick"] =
      static_cast<double>(allocs) /
      static_cast<double>(std::max<int64_t>(1, state.iterations()));
}

BENCHMARK(BM_Interpreted)
    ->Arg(256)
    ->Arg(1024)
    ->Arg(2048)
    ->Unit(benchmark::kMillisecond)
    ->MinTime(0.05);
BENCHMARK(BM_CompiledNl)
    ->Arg(256)
    ->Arg(1024)
    ->Arg(2048)
    ->Arg(4096)
    ->Unit(benchmark::kMillisecond)
    ->MinTime(0.05);
BENCHMARK(BM_CompiledTree)
    ->Arg(256)
    ->Arg(1024)
    ->Arg(2048)
    ->Arg(4096)
    ->Arg(8192)
    ->Arg(16384)
    ->Unit(benchmark::kMillisecond)
    ->MinTime(0.05);
BENCHMARK(BM_CompiledGrid)
    ->Arg(256)
    ->Arg(1024)
    ->Arg(2048)
    ->Arg(4096)
    ->Arg(8192)
    ->Arg(16384)
    ->Unit(benchmark::kMillisecond)
    ->MinTime(0.05);

}  // namespace

BENCHMARK_MAIN();
