// E4 — waitNextTick desugaring overhead (§3.2).
//
// The paper: "there is a direct translation between multi-tick programs
// using waitNextTick and standard single-tick SGL programs. We can simply
// reintroduce state variables and conditions." This bench compares the
// compiler's PC desugaring against exactly that hand-written translation —
// an explicit `phase` state variable with if-chains. Expected shape: the
// two are within a few percent (the desugared form IS the state machine).

#include "bench/bench_util.h"

namespace {

// Three-phase move / collect / strike loop, written with waitNextTick.
const char* kSugar = R"sgl(
class Bot {
  state:
    number x = 0;
    number work = 0;
  effects:
    number vx : avg;
    number dw : sum;
  update:
    x = x + vx;
    work = work + dw;
}
script Cycle for Bot {
  vx <- 1;
  waitNextTick;
  dw <- 2;
  waitNextTick;
  vx <- -1;
  dw <- 1;
}
)sgl";

// The same behaviour hand-desugared: explicit phase variable + dispatch.
const char* kManual = R"sgl(
class Bot {
  state:
    number x = 0;
    number work = 0;
    number phase = 0;
  effects:
    number vx : avg;
    number dw : sum;
    number next_phase : last;
  update:
    x = x + vx;
    work = work + dw;
    phase = next_phase;
}
script Cycle for Bot {
  if (phase == 0) {
    vx <- 1;
    next_phase <- 1;
  }
  if (phase == 1) {
    dw <- 2;
    next_phase <- 2;
  }
  if (phase == 2) {
    vx <- -1;
    dw <- 1;
    next_phase <- 0;
  }
}
)sgl";

std::unique_ptr<sgl::Engine> Build(const char* src, int n) {
  auto engine = sgl::Engine::Create(src);
  if (!engine.ok()) {
    std::fprintf(stderr, "%s\n", engine.status().ToString().c_str());
    std::abort();
  }
  for (int i = 0; i < n; ++i) {
    if (!(*engine)->Spawn("Bot", {}).ok()) std::abort();
  }
  return std::move(engine).value();
}

void BM_WaitNextTick(benchmark::State& state) {
  auto engine = Build(kSugar, static_cast<int>(state.range(0)));
  sgl_bench::Warmup(engine.get());
  for (auto _ : state) {
    if (!engine->Tick().ok()) state.SkipWithError("tick failed");
  }
}

void BM_HandWrittenStateMachine(benchmark::State& state) {
  auto engine = Build(kManual, static_cast<int>(state.range(0)));
  sgl_bench::Warmup(engine.get());
  for (auto _ : state) {
    if (!engine->Tick().ok()) state.SkipWithError("tick failed");
  }
}

BENCHMARK(BM_WaitNextTick)
    ->Arg(1024)
    ->Arg(16384)
    ->Arg(131072)
    ->Unit(benchmark::kMicrosecond)
    ->MinTime(0.05);
BENCHMARK(BM_HandWrittenStateMachine)
    ->Arg(1024)
    ->Arg(16384)
    ->Arg(131072)
    ->Unit(benchmark::kMicrosecond)
    ->MinTime(0.05);

}  // namespace

BENCHMARK_MAIN();
