// E2 — Figure 2's accum-loop as a relational plan (§2.1): join-strategy
// sweep for the range-count query, plus a storage-layout ablation.
//
// Series 1: ms/tick at n units for NL / grid / range-tree joins on the
// literal Figure-2 query. Expected: NL quadratic; grid ≈ tree, both
// near-linear; tree ahead when boxes are small relative to world size.
// Series 2: same query under unified / per-field / affinity column layouts
// (design decision 3 in DESIGN.md). Expected: modest but consistent gaps.

#include "bench/bench_util.h"

namespace {

const char* kFigure2 = R"sgl(
class Unit {
  state:
    number x = 0;
    number y = 0;
    number range = 12;
    number pad0 = 0;
    number pad1 = 0;
    number pad2 = 0;
    number pad3 = 0;
    number neighbours = 0;
  effects:
    number cnt_out : last;
  update:
    neighbours = cnt_out;
}
script Count for Unit {
  accum number cnt with sum over Unit u from Unit {
    if (u.x >= x - range && u.x <= x + range &&
        u.y >= y - range && u.y <= y + range) {
      cnt <- 1;
    }
  } in {
    cnt_out <- cnt;
  }
}
)sgl";

std::unique_ptr<sgl::Engine> BuildFigure2(int n, sgl::PlanMode mode,
                                          sgl::LayoutStrategy layout) {
  sgl::EngineOptions options = sgl_bench::Options(mode);
  options.layout = layout;
  auto engine = sgl::Engine::Create(kFigure2, options);
  if (!engine.ok()) std::abort();
  sgl::Rng rng(4242);
  for (int i = 0; i < n; ++i) {
    auto id = (*engine)->Spawn(
        "Unit", {{"x", sgl::Value::Number(rng.Uniform(0, 1000))},
                 {"y", sgl::Value::Number(rng.Uniform(0, 1000))}});
    if (!id.ok()) std::abort();
  }
  return std::move(engine).value();
}

void RunStrategy(benchmark::State& state, sgl::PlanMode mode) {
  auto engine = BuildFigure2(static_cast<int>(state.range(0)), mode,
                             sgl::LayoutStrategy::kUnified);
  sgl_bench::Warmup(engine.get());
  int64_t matches = 0;
  for (auto _ : state) {
    if (!engine->Tick().ok()) state.SkipWithError("tick failed");
    matches = engine->last_stats().sites[0].matches;
  }
  state.counters["matches"] = static_cast<double>(matches);
}

void BM_JoinNl(benchmark::State& state) {
  RunStrategy(state, sgl::PlanMode::kStaticNL);
}
void BM_JoinGrid(benchmark::State& state) {
  RunStrategy(state, sgl::PlanMode::kStaticGrid);
}
void BM_JoinTree(benchmark::State& state) {
  RunStrategy(state, sgl::PlanMode::kStaticRangeTree);
}

BENCHMARK(BM_JoinNl)
    ->Arg(512)
    ->Arg(2048)
    ->Arg(8192)
    ->Unit(benchmark::kMillisecond)
    ->MinTime(0.05);
BENCHMARK(BM_JoinGrid)
    ->Arg(512)
    ->Arg(2048)
    ->Arg(8192)
    ->Arg(32768)
    ->Unit(benchmark::kMillisecond)
    ->MinTime(0.05);
BENCHMARK(BM_JoinTree)
    ->Arg(512)
    ->Arg(2048)
    ->Arg(8192)
    ->Arg(32768)
    ->Unit(benchmark::kMillisecond)
    ->MinTime(0.05);

// --- Layout ablation ----------------------------------------------------

void RunLayout(benchmark::State& state, sgl::LayoutStrategy layout) {
  auto engine =
      BuildFigure2(8192, sgl::PlanMode::kStaticRangeTree, layout);
  sgl_bench::Warmup(engine.get());
  for (auto _ : state) {
    if (!engine->Tick().ok()) state.SkipWithError("tick failed");
  }
}

void BM_LayoutUnified(benchmark::State& state) {
  RunLayout(state, sgl::LayoutStrategy::kUnified);
}
void BM_LayoutPerField(benchmark::State& state) {
  RunLayout(state, sgl::LayoutStrategy::kPerField);
}
void BM_LayoutAffinity(benchmark::State& state) {
  RunLayout(state, sgl::LayoutStrategy::kAffinity);
}

BENCHMARK(BM_LayoutUnified)->Unit(benchmark::kMillisecond)->MinTime(0.05);
BENCHMARK(BM_LayoutPerField)->Unit(benchmark::kMillisecond)->MinTime(0.05);
BENCHMARK(BM_LayoutAffinity)->Unit(benchmark::kMillisecond)->MinTime(0.05);

}  // namespace

BENCHMARK_MAIN();
