// RTS battle: the paper's motivating workload (Figs. 1–2 writ large).
// Two factions fight with range-indexed combat scripts and a reactive
// retreat handler; physics-free, pure SGL. Demonstrates: accum-loop range
// joins, cross-entity damage effects, handlers, the adaptive optimizer, and
// the inspector/EXPLAIN debugging surface.
//
// Run: ./build/examples/rts_battle [units] [ticks]

#include <cstdio>
#include <cstdlib>

#include "src/sim/rts.h"

int main(int argc, char** argv) {
  int units = argc > 1 ? std::atoi(argv[1]) : 2048;
  int ticks = argc > 2 ? std::atoi(argv[2]) : 120;

  sgl::RtsConfig config;
  config.num_units = units;
  config.clustered = true;  // start mid-battle
  sgl::EngineOptions options;
  options.exec.planner.mode = sgl::PlanMode::kAdaptive;

  auto engine_or = sgl::RtsWorkload::Build(config, options);
  if (!engine_or.ok()) {
    std::fprintf(stderr, "%s\n", engine_or.status().ToString().c_str());
    return 1;
  }
  auto engine = std::move(engine_or).value();

  std::printf("== compiled plans ==\n%s\n", engine->ExplainPlans().c_str());
  std::printf("%6s %8s %8s %12s %10s %s\n", "tick", "alive", "health",
              "tick_ms", "pairs", "strategy");

  for (int t = 0; t < ticks; ++t) {
    if (!engine->Tick().ok()) return 1;
    if (t % 10 == 0) {
      const sgl::TickStats& stats = engine->last_stats();
      const char* strategy =
          stats.sites.empty()
              ? "-"
              : sgl::JoinStrategyName(stats.sites[0].strategy);
      std::printf("%6d %8d %8.0f %12.2f %10lld %s\n", t,
                  sgl::RtsWorkload::AliveUnits(engine.get()),
                  sgl::RtsWorkload::TotalHealth(engine.get()),
                  static_cast<double>(stats.total_micros) / 1000.0,
                  stats.sites.empty()
                      ? 0LL
                      : static_cast<long long>(stats.sites[0].matches),
                  strategy);
    }
  }

  std::printf("\n== survivors by faction ==\n");
  sgl::World& world = engine->world();
  sgl::ClassId cls = engine->catalog().Find("Unit");
  const sgl::EntityTable& table = world.table(cls);
  const sgl::ClassDef& def = engine->catalog().Get(cls);
  sgl::ConstNumberColumn player = table.Num(def.FindState("player"));
  sgl::ConstNumberColumn health = table.Num(def.FindState("health"));
  int alive[2] = {0, 0};
  for (size_t i = 0; i < table.size(); ++i) {
    if (health[i] > 0) ++alive[player[i] > 0.5 ? 1 : 0];
  }
  std::printf("faction 0: %d alive, faction 1: %d alive\n", alive[0],
              alive[1]);
  std::printf("plan switches: %lld\n",
              static_cast<long long>(
                  engine->executor().controller().switches()));
  return 0;
}
