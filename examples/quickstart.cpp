// Quickstart: the paper's Figure 1 class and Figure 2 accum-loop, running
// end to end — write SGL, spawn entities, tick, inspect.
//
// Build & run:   cmake -B build -G Ninja && cmake --build build
//                ./build/examples/quickstart

#include <cstdio>

#include "src/engine/engine.h"

namespace {

// A Unit class in the style of the paper's Figure 1, a behavior script with
// the Figure 2 range-count accum loop, and expression update rules (§2.2).
const char* kProgram = R"sgl(
class Unit {
  state:
    number player = 0;
    number x = 0;
    number y = 0;
    number health = 100;
    number range = 12;
  effects:
    number vx : avg;
    number vy : avg;
    number damage : sum;
  update:
    x = x + vx;
    y = y + vy;
    health = health - damage;
}

script Wander for Unit {
  // March to the right...
  vx <- 1;
  vy <- 0;
  // ...but count the neighbours within `range` (Figure 2)...
  accum number cnt with sum over Unit u from Unit {
    if (u.x >= x - range && u.x <= x + range &&
        u.y >= y - range && u.y <= y + range) {
      cnt <- 1;
    }
  } in {
    // ...and back off when it gets crowded.
    if (cnt > 4) {
      vx <- -1;
    }
  }
}
)sgl";

}  // namespace

int main() {
  sgl::EngineOptions options;
  auto engine_or = sgl::Engine::Create(kProgram, options);
  if (!engine_or.ok()) {
    std::fprintf(stderr, "compile failed: %s\n",
                 engine_or.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<sgl::Engine> engine = std::move(engine_or).value();

  std::printf("== compiled plans ==\n%s\n", engine->ExplainPlans().c_str());

  // Two squads: a tight cluster and a sparse line.
  std::vector<sgl::EntityId> units;
  for (int i = 0; i < 8; ++i) {
    auto id = engine->Spawn(
        "Unit", {{"x", sgl::Value::Number(10 + (i % 3))},
                 {"y", sgl::Value::Number(10 + (i / 3))}});
    units.push_back(id.value());
  }
  for (int i = 0; i < 4; ++i) {
    auto id = engine->Spawn("Unit", {{"x", sgl::Value::Number(100 + 40 * i)},
                                     {"y", sgl::Value::Number(50)}});
    units.push_back(id.value());
  }

  sgl::Status st = engine->RunTicks(10);
  if (!st.ok()) {
    std::fprintf(stderr, "tick failed: %s\n", st.ToString().c_str());
    return 1;
  }

  sgl::Inspector inspector = engine->inspector();
  std::printf("== after 10 ticks ==\n");
  std::printf("%s\n", inspector.DescribeClass("Unit").c_str());
  for (size_t i = 0; i < units.size(); i += 4) {
    std::printf("%s\n", inspector.DescribeEntity(units[i]).c_str());
  }

  // Clustered units should have oscillated (avg of +1 and -1 pulls them
  // back); the sparse line should have marched right ~1 per tick.
  double clustered_x = engine->Get(units[0], "x")->AsNumber();
  double sparse_x = engine->Get(units[8], "x")->AsNumber();
  std::printf("clustered unit x: %.1f (started 10)\n", clustered_x);
  std::printf("sparse    unit x: %.1f (started 100)\n", sparse_x);
  return 0;
}
