// Marketplace: the §3.1 financial-exchange scenario. Traders buy contested
// items through atomic regions; the transaction engine admits a consistent
// subset per tick. Demonstrates: atomic blocks with require() constraints,
// ref/set transactional writes, commit/abort status reads, and the
// conservation invariants that make "duping" impossible.
//
// Run: ./build/examples/marketplace [ticks]

#include <cstdio>
#include <cstdlib>

#include "src/sim/market.h"

int main(int argc, char** argv) {
  int ticks = argc > 1 ? std::atoi(argv[1]) : 40;

  sgl::MarketConfig config;
  config.num_traders = 64;
  config.num_items = 128;
  config.contention = 6;  // six buyers per contested item
  sgl::EngineOptions options;

  auto engine_or = sgl::MarketWorkload::Build(config, options);
  if (!engine_or.ok()) {
    std::fprintf(stderr, "%s\n", engine_or.status().ToString().c_str());
    return 1;
  }
  auto engine = std::move(engine_or).value();
  sgl::Rng rng(2024);

  double gold0 = sgl::MarketWorkload::TotalGold(engine.get());
  std::printf("initial total gold: %.0f\n\n", gold0);
  std::printf("%6s %8s %10s %8s %12s %10s\n", "tick", "issued", "committed",
              "aborted", "total_gold", "consistent");

  long long committed = 0, aborted = 0;
  for (int t = 0; t < ticks; ++t) {
    sgl::MarketWorkload::AssignWants(engine.get(), config, &rng);
    if (!engine->Tick().ok()) return 1;
    const sgl::TxnStats& txn = engine->last_stats().txn;
    committed += txn.committed;
    aborted += txn.aborted;
    bool ok = sgl::MarketWorkload::OwnershipConsistent(engine.get()) &&
              sgl::MarketWorkload::NoNegativeGold(engine.get());
    if (t % 5 == 0) {
      std::printf("%6d %8lld %10lld %8lld %12.0f %10s\n", t,
                  static_cast<long long>(txn.issued),
                  static_cast<long long>(txn.committed),
                  static_cast<long long>(txn.aborted),
                  sgl::MarketWorkload::TotalGold(engine.get()),
                  ok ? "yes" : "NO!");
    }
    if (!ok) {
      std::fprintf(stderr, "INVARIANT VIOLATION at tick %d\n", t);
      return 1;
    }
  }

  std::printf("\n%lld trades committed, %lld aborted over %d ticks\n",
              committed, aborted, ticks);
  std::printf("gold conserved: %s (%.0f -> %.0f)\n",
              gold0 == sgl::MarketWorkload::TotalGold(engine.get()) ? "yes"
                                                                    : "NO",
              gold0, sgl::MarketWorkload::TotalGold(engine.get()));
  return 0;
}
