// Traffic simulation: the §4.2 "simulate traffic networks with millions of
// vehicles" motivation, scaled to one machine. Car-following scripts whose
// neighbour search is a 1-D range join with a lane equality key — the
// cost-based optimizer gets to choose among range tree, grid, and hash.
//
// Run: ./build/examples/traffic [vehicles] [ticks]

#include <cstdio>
#include <cstdlib>

#include "src/sim/traffic.h"

int main(int argc, char** argv) {
  int vehicles = argc > 1 ? std::atoi(argv[1]) : 20000;
  int ticks = argc > 2 ? std::atoi(argv[2]) : 60;

  sgl::TrafficConfig config;
  config.num_vehicles = vehicles;
  config.num_lanes = 32;
  sgl::EngineOptions options;
  options.exec.planner.mode = sgl::PlanMode::kCostBased;

  auto engine_or = sgl::TrafficWorkload::Build(config, options);
  if (!engine_or.ok()) {
    std::fprintf(stderr, "%s\n", engine_or.status().ToString().c_str());
    return 1;
  }
  auto engine = std::move(engine_or).value();

  std::printf("%d vehicles on %d lanes of a %.0f-unit ring road\n\n",
              vehicles, config.num_lanes, config.road_length);
  std::printf("%6s %12s %12s %10s %s\n", "tick", "mean_speed", "tick_ms",
              "pairs", "strategy");

  double total_ms = 0;
  for (int t = 0; t < ticks; ++t) {
    if (!engine->Tick().ok()) return 1;
    const sgl::TickStats& stats = engine->last_stats();
    total_ms += static_cast<double>(stats.total_micros) / 1000.0;
    if (t % 10 == 0) {
      std::printf("%6d %12.2f %12.2f %10lld %s\n", t,
                  sgl::TrafficWorkload::MeanSpeed(engine.get()),
                  static_cast<double>(stats.total_micros) / 1000.0,
                  stats.sites.empty()
                      ? 0LL
                      : static_cast<long long>(stats.sites[0].matches),
                  stats.sites.empty()
                      ? "-"
                      : sgl::JoinStrategyName(stats.sites[0].strategy));
    }
    if (!sgl::TrafficWorkload::PositionsInBounds(engine.get(),
                                                 config.road_length)) {
      std::fprintf(stderr, "vehicle left the road at tick %d!\n", t);
      return 1;
    }
  }
  std::printf("\n%.0f vehicle-ticks/second\n",
              static_cast<double>(vehicles) * ticks / (total_ms / 1000.0));
  return 0;
}
