// Reactive guards: the §3.2 multi-tick + reactive-programming showcase.
// Guards walk a four-leg patrol written with waitNextTick (the compiler
// desugars it into a PC state machine); a `when` handler interrupts the
// patrol (restart) whenever an intruder comes close, and physics carries
// the actual movement. Demonstrates: multi-tick scripts, interruptible
// intentions, handlers, physics integration, and the effect tracer.
//
// Run: ./build/examples/reactive_patrol [ticks]

#include <cstdio>
#include <cstdlib>

#include "src/debug/tracer.h"
#include "src/engine/engine.h"

namespace {

const char* kProgram = R"sgl(
class Guard {
  state:
    number x = 0;
    number y = 0;
    number vx = 0;
    number vy = 0;
    number alert_count = 0;
  effects:
    number fx : sum;
    number fy : sum;
    number alerted : sum;
  update:
    alert_count = alert_count + alerted;
}

class Intruder {
  state:
    number x = 0;
    number y = 0;
}

// Four-leg box patrol: each leg lasts one tick of acceleration; the guard
// coasts between (physics owns the motion).
script Patrol for Guard {
  fx <- 2; fy <- 0;
  waitNextTick;
  fx <- 0; fy <- 2;
  waitNextTick;
  fx <- -2; fy <- 0;
  waitNextTick;
  fx <- 0; fy <- -2;
}

// Intruder nearby? Sound the alarm, brake hard, and restart the patrol
// (the interrupted intention resumes from its first leg, §3.2).
when Guard Spot (alert_count == 0) {
  accum number near with sum over Intruder i from Intruder {
    if (i.x >= x - 15 && i.x <= x + 15 && i.y >= y - 15 && i.y <= y + 15) {
      near <- 1;
    }
  } in {
    if (near > 0) {
      alerted <- 1;
      fx <- -vx;
      fy <- -vy;
      restart Patrol;
    }
  }
}
)sgl";

}  // namespace

int main(int argc, char** argv) {
  int ticks = argc > 1 ? std::atoi(argv[1]) : 30;
  auto engine_or = sgl::Engine::Create(kProgram);
  if (!engine_or.ok()) {
    std::fprintf(stderr, "%s\n", engine_or.status().ToString().c_str());
    return 1;
  }
  auto engine = std::move(engine_or).value();

  sgl::PhysicsConfig physics;
  physics.cls = "Guard";
  physics.max_speed = 4;
  physics.damping = 0.9;
  physics.min_x = 0;
  physics.min_y = 0;
  physics.max_x = 200;
  physics.max_y = 200;
  physics.resolve_collisions = false;
  if (!engine->AddPhysics(physics).ok()) return 1;

  auto guard = engine->Spawn("Guard", {{"x", sgl::Value::Number(50)},
                                       {"y", sgl::Value::Number(50)}});
  engine->Spawn("Intruder", {{"x", sgl::Value::Number(68)},
                             {"y", sgl::Value::Number(58)}})
      .value();

  sgl::EffectTracer tracer;
  tracer.Watch(*guard);
  engine->SetTracer(&tracer);

  std::printf("%6s %8s %8s %8s %8s %8s\n", "tick", "x", "y", "pc", "alerts",
              "effects");
  for (int t = 0; t < ticks; ++t) {
    size_t before = tracer.size();
    if (!engine->Tick().ok()) return 1;
    std::printf("%6d %8.1f %8.1f %8.0f %8.0f %8zu\n", t,
                engine->Get(*guard, "x")->AsNumber(),
                engine->Get(*guard, "y")->AsNumber(),
                engine->Get(*guard, "__pc_Patrol")->AsNumber(),
                engine->Get(*guard, "alert_count")->AsNumber(),
                tracer.size() - before);
  }

  std::printf("\n== effects assigned to the guard in tick 0 (tracer) ==\n");
  for (const sgl::TraceRecord& rec : tracer.RecordsFor(*guard, 0)) {
    const sgl::ClassDef& def = engine->catalog().Get(rec.target_cls);
    std::printf("  %s <- %s\n",
                def.effect_field(rec.field).name.c_str(),
                rec.value.ToString().c_str());
  }
  return 0;
}
