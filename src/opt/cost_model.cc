#include "src/opt/cost_model.h"

#include <cmath>

namespace sgl {

double EstimateJoinCost(JoinStrategy strategy, const JoinCostInputs& in,
                        const CostConstants& c) {
  const double n = std::max(1.0, in.outer_rows);
  const double m = std::max(1.0, in.inner_rows);
  const double logm = std::max(1.0, std::log2(m));
  const double box_matches = m * in.box_selectivity;
  switch (strategy) {
    case JoinStrategy::kNestedLoop:
      return n * m * c.pair_eval + n * box_matches * c.emit;
    case JoinStrategy::kRangeTree: {
      double levels = 1;
      for (int k = 1; k < in.range_dims; ++k) levels *= logm;
      const double build = c.tree_build_factor * m * logm * levels;
      double probe_logs = 1;
      for (int k = 0; k < std::max(1, in.range_dims); ++k) probe_logs *= logm;
      const double probe = n * (c.tree_probe * probe_logs +
                                box_matches * (c.pair_eval + c.emit));
      return build + probe;
    }
    case JoinStrategy::kGrid: {
      const double build = c.grid_build * m;
      const double candidates = box_matches * c.grid_slack;
      const double probe =
          n * (c.grid_probe + candidates * c.pair_eval + box_matches * c.emit);
      return build + probe;
    }
    case JoinStrategy::kHash: {
      const double build = c.hash_build * m;
      const double bucket = m * in.hash_selectivity;
      const double probe =
          n * (c.hash_probe + bucket * c.pair_eval + bucket * c.emit);
      return build + probe;
    }
  }
  return 1e18;
}

namespace {

// Recognizes lo/hi expressions of the form `outer_field ± literal` (the
// dominant pattern: x - range, x + range) and returns the literal width
// contribution; nullopt otherwise.
std::optional<double> BoundOffset(const Expr* e) {
  if (e == nullptr) return std::nullopt;
  if (e->kind == ExprKind::kArith &&
      (e->arith == ArithOp::kAdd || e->arith == ArithOp::kSub)) {
    const Expr* rhs = e->kids[1].get();
    if (rhs->kind == ExprKind::kNumLit) {
      return e->arith == ArithOp::kAdd ? rhs->num : -rhs->num;
    }
  }
  if (e->kind == ExprKind::kStateRead || e->kind == ExprKind::kLocal) {
    return 0.0;
  }
  if (e->kind == ExprKind::kNumLit) return std::nullopt;  // absolute bound
  return std::nullopt;
}

}  // namespace

double EstimateBoxSelectivity(const AccumOp& op, const TableStats& inner,
                              double fallback_frac) {
  double sel = 1.0;
  for (const RangeDim& d : op.range_dims) {
    const ColumnStats* cs = nullptr;
    if (static_cast<size_t>(d.inner_field) < inner.columns.size()) {
      cs = &inner.columns[static_cast<size_t>(d.inner_field)];
    }
    double dim_sel = fallback_frac;
    if (cs != nullptr && cs->samples > 0 && cs->max > cs->min) {
      auto lo_off = BoundOffset(d.lo.get());
      auto hi_off = BoundOffset(d.hi.get());
      if (lo_off.has_value() && hi_off.has_value()) {
        // Box width is (hi - lo); anchored at a moving outer value, so the
        // average selectivity is width / column extent.
        double width = *hi_off - *lo_off;
        dim_sel = std::clamp(width / (cs->max - cs->min), 0.0, 1.0);
      } else if (d.lo != nullptr && d.lo->kind == ExprKind::kNumLit &&
                 d.hi != nullptr && d.hi->kind == ExprKind::kNumLit) {
        dim_sel = cs->RangeSelectivity(d.lo->num, d.hi->num);
      }
    }
    sel *= dim_sel;
  }
  return sel;
}

}  // namespace sgl
