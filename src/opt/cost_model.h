// Analytical cost model for AccumOp join strategies (§4.1).
//
// Costs are in abstract "work units" (roughly: inner-tuple touches plus
// per-probe overheads); only the *ranking* matters. Estimates combine the
// sampled column statistics (selectivity of the average query box) with the
// structural costs of each access path, including the per-tick index
// rebuild — the workload's defining feature is that O(n) rows move per tick,
// so build cost is charged to every tick.

#ifndef SGL_OPT_COST_MODEL_H_
#define SGL_OPT_COST_MODEL_H_

#include "src/opt/stats.h"
#include "src/ra/plan.h"

namespace sgl {

/// Tunable constants of the cost model (work units per operation).
struct CostConstants {
  double pair_eval = 1.0;       ///< evaluate predicates on one candidate
  double emit = 0.5;            ///< materialize one match
  double tree_build_factor = 4.0;   ///< per point per log-level
  double tree_probe = 8.0;      ///< per-probe descend overhead factor
  double grid_build = 1.5;      ///< per point
  double grid_probe = 4.0;      ///< per-probe cell setup
  double grid_slack = 2.0;      ///< candidate inflation from cell granularity
  double hash_build = 1.2;      ///< per point
  double hash_probe = 2.0;      ///< per probe
};

/// Inputs describing one potential execution of an AccumOp this tick.
struct JoinCostInputs {
  double outer_rows = 0;     ///< rows surviving the outer guard
  double inner_rows = 0;     ///< size of the iteration domain
  double box_selectivity = 1.0;  ///< est. fraction of inner in the range box
  int range_dims = 0;        ///< number of extracted range dimensions
  bool has_hash = false;     ///< an equality key was extracted
  double hash_selectivity = 1.0;  ///< est. fraction matching the hash key
};

/// Estimated total work units for `strategy` under `in`.
double EstimateJoinCost(JoinStrategy strategy, const JoinCostInputs& in,
                        const CostConstants& c = CostConstants());

/// Estimates the average box selectivity of an AccumOp's range predicate
/// using column stats: the average query box side is derived from the lo/hi
/// expressions when they are `field ± literal` forms, else falls back to
/// `fallback_frac` of the column's range per dimension.
double EstimateBoxSelectivity(const AccumOp& op, const TableStats& inner,
                              double fallback_frac = 0.1);

}  // namespace sgl

#endif  // SGL_OPT_COST_MODEL_H_
