#include "src/opt/stats.h"

#include <algorithm>

#include "src/common/rng.h"

namespace sgl {

double ColumnStats::RangeSelectivity(double lo, double hi) const {
  if (samples == 0 || histogram.empty()) return 1.0;
  if (hi < min || lo > max) return 0.0;
  if (max <= min) return 1.0;  // constant column inside the range
  const double width = (max - min) / static_cast<double>(histogram.size());
  double covered = 0;
  for (size_t b = 0; b < histogram.size(); ++b) {
    double b_lo = min + width * static_cast<double>(b);
    double b_hi = b_lo + width;
    double overlap =
        std::max(0.0, std::min(hi, b_hi) - std::max(lo, b_lo));
    if (overlap <= 0) continue;
    covered += static_cast<double>(histogram[b]) * (overlap / width);
  }
  return std::clamp(covered / static_cast<double>(samples), 0.0, 1.0);
}

StatsManager::StatsManager(int sample_size, int buckets, int refresh_every)
    : sample_size_(sample_size),
      buckets_(buckets),
      refresh_every_(refresh_every) {}

void StatsManager::MaybeRefresh(const World& world, Tick tick) {
  if (last_refresh_ >= 0 && tick - last_refresh_ < refresh_every_) return;
  Refresh(world, tick);
}

void StatsManager::Refresh(const World& world, Tick tick) {
  last_refresh_ = tick;
  const Catalog& catalog = world.catalog();
  stats_.resize(static_cast<size_t>(catalog.num_classes()));
  Rng rng(0x57a75ULL ^ static_cast<uint64_t>(tick));
  for (ClassId c = 0; c < catalog.num_classes(); ++c) {
    const EntityTable& table = world.table(c);
    TableStats& ts = stats_[static_cast<size_t>(c)];
    ts.row_count = table.size();
    // resize (not assign) keeps each column's histogram buffer alive, so
    // the periodic refresh stops allocating after the first pass.
    ts.columns.resize(catalog.Get(c).state_fields().size());
    if (table.empty()) {
      for (ColumnStats& cs : ts.columns) cs.samples = 0;
      continue;
    }
    const size_t n = table.size();
    const size_t take = std::min<size_t>(n, static_cast<size_t>(sample_size_));
    for (const FieldDef& f : catalog.Get(c).state_fields()) {
      if (!f.type.is_number()) continue;
      ConstNumberColumn col = table.Num(f.index);
      ColumnStats& cs = ts.columns[static_cast<size_t>(f.index)];
      sample_.resize(take);
      for (size_t i = 0; i < take; ++i) {
        size_t row = take == n ? i : rng.NextBelow(n);
        sample_[i] = col[row];
      }
      auto [mn, mx] = std::minmax_element(sample_.begin(), sample_.end());
      cs.min = *mn;
      cs.max = *mx;
      cs.samples = static_cast<uint32_t>(take);
      cs.histogram.assign(static_cast<size_t>(buckets_), 0);
      const double width =
          cs.max > cs.min
              ? (cs.max - cs.min) / static_cast<double>(buckets_)
              : 1.0;
      for (double v : sample_) {
        size_t b = static_cast<size_t>((v - cs.min) / width);
        if (b >= cs.histogram.size()) b = cs.histogram.size() - 1;
        ++cs.histogram[b];
      }
    }
  }
}

}  // namespace sgl
