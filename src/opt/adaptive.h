// Adaptive plan selection (§4.1).
//
// "We are currently exploring the idea of compiling several query plans
// optimized for different workloads and switching between them as the game
// progresses." Every AccumOp is a *site* with a set of candidate physical
// strategies (the compiled plan set). The controller picks one per tick:
//
//   kStatic*    — always the same strategy (the baselines of bench E5)
//   kCostBased  — rank candidates with the cost model on current stats
//   kAdaptive   — cost-based seeding + runtime feedback: keeps an EWMA of
//                 measured time per strategy, re-probes non-best strategies
//                 periodically, and resets its beliefs when the observed
//                 join fan-out drifts (workload-mode switches such as
//                 "exploring" -> "fighting")
//
// All decisions are made between ticks, so switching costs nothing during
// the tick itself.

#ifndef SGL_OPT_ADAPTIVE_H_
#define SGL_OPT_ADAPTIVE_H_

#include <vector>

#include "src/opt/cost_model.h"
#include "src/opt/stats.h"
#include "src/ra/plan.h"

namespace sgl {

/// Plan-selection policy for the whole engine.
enum class PlanMode : uint8_t {
  kStaticNL,
  kStaticRangeTree,
  kStaticGrid,
  kStaticHash,
  kCostBased,
  kAdaptive,
};

const char* PlanModeName(PlanMode mode);

/// How plan expressions are evaluated — the second optimizer axis,
/// orthogonal to PlanMode ("compile the tick", ROADMAP): tree-walking
/// interpretation, register bytecode with fused filter pipelines
/// (src/vm/), or a per-site choice between the two priced from measured
/// micros (kAuto). All produce bit-identical world state.
enum class EvalMode : uint8_t {
  kInterpret,
  kBytecode,
  kAuto,
};

const char* EvalModeName(EvalMode mode);

/// How indexed accum sites probe their index — the third orthogonal axis:
/// one virtual Query per outer row, one QueryBatch per morsel chunk, or a
/// per-site measured choice. All produce bit-identical world state.
enum class ProbeMode : uint8_t {
  kSingle,
  kBatched,
  kAuto,
};

const char* ProbeModeName(ProbeMode mode);

/// What the executor reports after running one AccumOp.
struct SiteFeedback {
  int site = -1;
  JoinStrategy strategy = JoinStrategy::kNestedLoop;
  int64_t outer_rows = 0;
  int64_t candidates = 0;    ///< pairs inspected
  int64_t matches = 0;       ///< pairs surviving all predicates
  int64_t micros = 0;
  int64_t probe_micros = 0;  ///< time inside batched QueryBatch calls
  int64_t effects = 0;       ///< effect writes applied (pair writes)
};

/// Picks an AccumOp strategy each tick and learns from feedback.
class AdaptiveController {
 public:
  struct Options {
    PlanMode mode = PlanMode::kCostBased;
    int probe_interval = 32;     ///< ticks between exploration probes
    double drift_ratio = 3.0;    ///< fan-out change triggering re-probe
    double ewma_alpha = 0.3;
  };

  AdaptiveController(const Options& options, int num_sites);

  PlanMode mode() const { return options_.mode; }

  /// Chooses the strategy for `op` this tick. `inner_stats` may be null
  /// (falls back to structural defaults).
  JoinStrategy Choose(const AccumOp& op, Tick tick,
                      const TableStats* inner_stats, size_t outer_rows);

  /// Reports measured behaviour of a site's execution.
  void Feedback(const SiteFeedback& fb);

  /// Per-site backend pricing (EvalMode::kAuto): true = run the site's
  /// expressions on the bytecode VM this tick, false = tree-walk. Learned
  /// from measured per-outer-row micros under every PlanMode, since the
  /// backend axis is orthogonal to join-strategy selection.
  bool ChooseEvalBytecode(int site, Tick tick);
  /// Per-site probe pricing (ProbeMode::kAuto): true = batched QueryBatch.
  bool ChooseProbeBatched(int site, Tick tick);

  /// Latest bandit beliefs for one site (telemetry attribution): µs per
  /// outer row per arm; 0 until the arm has observed a measurement.
  struct BackendBeliefs {
    double eval_us_per_outer[2] = {0.0, 0.0};   ///< interpret / bytecode
    double probe_us_per_outer[2] = {0.0, 0.0};  ///< per-row / batched
  };
  BackendBeliefs Beliefs(int site) const;

  /// Times this controller switched a site's strategy (for E5 reporting).
  int64_t switches() const { return switches_; }
  /// Times drift detection reset a site's beliefs.
  int64_t drift_resets() const { return drift_resets_; }

  /// Strategies legal for an op (NL always; tree/grid need range dims;
  /// hash needs a hash dim; set-domain iteration forces NL).
  static std::vector<JoinStrategy> Candidates(const AccumOp& op);
  /// Allocation-free variant: fills `out[0..3]`, returns the count. The
  /// per-tick cost-based pick uses this on the hot path.
  static int CandidateList(const AccumOp& op, JoinStrategy out[4]);

 private:
  struct SiteState {
    std::vector<JoinStrategy> candidates;
    std::vector<Ewma> time_per_outer;  ///< per candidate
    Ewma fanout_fast{0.5};
    Ewma fanout_slow{0.05};
    JoinStrategy last = JoinStrategy::kNestedLoop;
    bool initialized = false;
    int probe_cursor = 0;
    Tick last_probe = -1;
  };

  JoinStrategy CostBasedPick(const AccumOp& op, const TableStats* inner_stats,
                             size_t outer_rows) const;

  /// Two-armed per-site bandit over one orthogonal backend axis. The first
  /// `warmup_left` decisions alternate arms (stride-staggered so the eval
  /// and probe axes decorrelate and all four combinations run), seeding
  /// both EWMAs with real measurements and pushing both code paths'
  /// pooled buffers to their high-water marks during engine warmup; after
  /// that the cheaper arm wins, with a periodic re-probe of the loser.
  struct TwoArm {
    Ewma arm[2] = {Ewma(), Ewma()};  ///< micros/outer for arm 0 / arm 1
    int8_t last = -1;    ///< arm of the most recent decision
    int8_t warmup_left = 8;
    int8_t stride = 1;   ///< warmup alternation stride (decorrelation)
    Tick last_probe = -1;

    int Choose(Tick tick, int probe_interval);
    void Observe(double per_outer);
  };
  struct BackendState {
    TwoArm eval;
    TwoArm probe;
    BackendState() { probe.stride = 2; }
  };

  Options options_;
  std::vector<SiteState> sites_;
  std::vector<BackendState> backends_;  ///< parallel to sites_
  int64_t switches_ = 0;
  int64_t drift_resets_ = 0;
};

}  // namespace sgl

#endif  // SGL_OPT_ADAPTIVE_H_
