// Lightweight runtime statistics (§4.1).
//
// The paper: "Ideally we would like to keep some sort of statistics about
// the distribution of our data, but this is difficult to do efficiently."
// We keep two cheap kinds: (1) periodic sampled per-column summaries
// (min/max + equi-width histogram) used by the cost model's selectivity
// estimates, and (2) per-site runtime feedback (EWMA of observed join
// fan-outs and timings) used by the adaptive controller for drift detection.

#ifndef SGL_OPT_STATS_H_
#define SGL_OPT_STATS_H_

#include <vector>

#include "src/storage/world.h"

namespace sgl {

/// Sampled summary of one numeric column.
struct ColumnStats {
  double min = 0.0;
  double max = 0.0;
  std::vector<uint32_t> histogram;  ///< equi-width buckets over [min, max]
  uint32_t samples = 0;

  /// Estimated fraction of values in [lo, hi] (clamped to [0, 1]).
  double RangeSelectivity(double lo, double hi) const;
};

/// Per-class statistics snapshot.
struct TableStats {
  size_t row_count = 0;
  std::vector<ColumnStats> columns;  ///< indexed by state FieldIdx
                                     ///< (non-numeric entries empty)
};

/// Periodically re-sampled statistics over every class.
class StatsManager {
 public:
  /// `sample_size`: rows sampled per class per refresh; `buckets`:
  /// histogram resolution; `refresh_every`: ticks between refreshes.
  StatsManager(int sample_size = 512, int buckets = 32,
               int refresh_every = 8);

  /// Refreshes snapshots if due at `tick` (or if never built).
  void MaybeRefresh(const World& world, Tick tick);

  /// Forces a refresh now.
  void Refresh(const World& world, Tick tick);

  const TableStats& Get(ClassId cls) const {
    return stats_[static_cast<size_t>(cls)];
  }
  bool has_stats() const { return !stats_.empty(); }
  Tick last_refresh() const { return last_refresh_; }

 private:
  int sample_size_;
  int buckets_;
  int refresh_every_;
  Tick last_refresh_ = -1;
  std::vector<TableStats> stats_;
  std::vector<double> sample_;  ///< reused sampling buffer
};

/// Exponentially weighted moving average.
class Ewma {
 public:
  explicit Ewma(double alpha = 0.3) : alpha_(alpha) {}
  void Add(double v) {
    value_ = initialized_ ? alpha_ * v + (1 - alpha_) * value_ : v;
    initialized_ = true;
  }
  bool initialized() const { return initialized_; }
  double value() const { return value_; }
  void Reset() { initialized_ = false; value_ = 0; }

 private:
  double alpha_;
  double value_ = 0;
  bool initialized_ = false;
};

}  // namespace sgl

#endif  // SGL_OPT_STATS_H_
