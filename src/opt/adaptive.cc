#include "src/opt/adaptive.h"

namespace sgl {

const char* PlanModeName(PlanMode mode) {
  switch (mode) {
    case PlanMode::kStaticNL: return "static-nested-loop";
    case PlanMode::kStaticRangeTree: return "static-range-tree";
    case PlanMode::kStaticGrid: return "static-grid";
    case PlanMode::kStaticHash: return "static-hash";
    case PlanMode::kCostBased: return "cost-based";
    case PlanMode::kAdaptive: return "adaptive";
  }
  return "?";
}

const char* EvalModeName(EvalMode mode) {
  switch (mode) {
    case EvalMode::kInterpret: return "interpret";
    case EvalMode::kBytecode: return "bytecode";
    case EvalMode::kAuto: return "auto";
  }
  return "?";
}

const char* ProbeModeName(ProbeMode mode) {
  switch (mode) {
    case ProbeMode::kSingle: return "single";
    case ProbeMode::kBatched: return "batched";
    case ProbeMode::kAuto: return "auto";
  }
  return "?";
}

AdaptiveController::AdaptiveController(const Options& options, int num_sites)
    : options_(options),
      sites_(static_cast<size_t>(num_sites)),
      backends_(static_cast<size_t>(num_sites)) {}

int AdaptiveController::TwoArm::Choose(Tick tick, int probe_interval) {
  int pick;
  if (warmup_left > 0) {
    pick = (warmup_left / stride) % 2;
    --warmup_left;
  } else if (!arm[0].initialized()) {
    pick = 0;
  } else if (!arm[1].initialized()) {
    pick = 1;
  } else {
    const int best = arm[1].value() < arm[0].value() ? 1 : 0;
    if (last_probe < 0 || tick - last_probe >= probe_interval) {
      // Re-probe the losing arm so a workload shift can flip the choice.
      last_probe = tick;
      pick = 1 - best;
    } else {
      pick = best;
    }
  }
  last = static_cast<int8_t>(pick);
  return pick;
}

void AdaptiveController::TwoArm::Observe(double per_outer) {
  if (last >= 0) arm[last].Add(per_outer);
}

bool AdaptiveController::ChooseEvalBytecode(int site, Tick tick) {
  if (site < 0 || static_cast<size_t>(site) >= backends_.size()) return true;
  return backends_[static_cast<size_t>(site)].eval.Choose(
             tick, options_.probe_interval) == 1;
}

bool AdaptiveController::ChooseProbeBatched(int site, Tick tick) {
  if (site < 0 || static_cast<size_t>(site) >= backends_.size()) return true;
  return backends_[static_cast<size_t>(site)].probe.Choose(
             tick, options_.probe_interval) == 1;
}

AdaptiveController::BackendBeliefs AdaptiveController::Beliefs(
    int site) const {
  BackendBeliefs out;
  if (site < 0 || static_cast<size_t>(site) >= backends_.size()) return out;
  const BackendState& b = backends_[static_cast<size_t>(site)];
  for (int i = 0; i < 2; ++i) {
    out.eval_us_per_outer[i] =
        b.eval.arm[i].initialized() ? b.eval.arm[i].value() : 0.0;
    out.probe_us_per_outer[i] =
        b.probe.arm[i].initialized() ? b.probe.arm[i].value() : 0.0;
  }
  return out;
}

namespace {

// Tree/grid access paths are legal only up to the executor's stack-array
// dimensionality bound (kMaxIndexDims).
bool RangeIndexable(const AccumOp& op) {
  return !op.range_dims.empty() &&
         op.range_dims.size() <= static_cast<size_t>(kMaxIndexDims);
}

}  // namespace

int AdaptiveController::CandidateList(const AccumOp& op,
                                      JoinStrategy out[4]) {
  int n = 0;
  out[n++] = JoinStrategy::kNestedLoop;
  if (op.inner_set_field != kInvalidField) return n;  // set domain: NL only
  if (RangeIndexable(op)) {
    out[n++] = JoinStrategy::kRangeTree;
    out[n++] = JoinStrategy::kGrid;
  }
  if (!op.hash_dims.empty()) out[n++] = JoinStrategy::kHash;
  return n;
}

std::vector<JoinStrategy> AdaptiveController::Candidates(const AccumOp& op) {
  JoinStrategy buf[4];
  const int n = CandidateList(op, buf);
  return std::vector<JoinStrategy>(buf, buf + n);
}

JoinStrategy AdaptiveController::CostBasedPick(const AccumOp& op,
                                               const TableStats* inner_stats,
                                               size_t outer_rows) const {
  JoinCostInputs in;
  in.outer_rows = static_cast<double>(outer_rows);
  in.inner_rows =
      inner_stats != nullptr ? static_cast<double>(inner_stats->row_count) : 0;
  in.range_dims = static_cast<int>(op.range_dims.size());
  in.has_hash = !op.hash_dims.empty();
  in.box_selectivity =
      inner_stats != nullptr ? EstimateBoxSelectivity(op, *inner_stats) : 0.1;
  // Entity-id hash keys match at most one row.
  in.hash_selectivity =
      (!op.hash_dims.empty() && op.hash_dims[0].inner_field == kInvalidField)
          ? (in.inner_rows > 0 ? 1.0 / in.inner_rows : 0.0)
          : 0.05;
  JoinStrategy best = JoinStrategy::kNestedLoop;
  double best_cost = EstimateJoinCost(best, in);
  JoinStrategy candidates[4];
  const int count = CandidateList(op, candidates);
  for (int i = 0; i < count; ++i) {
    double cost = EstimateJoinCost(candidates[i], in);
    if (cost < best_cost) {
      best = candidates[i];
      best_cost = cost;
    }
  }
  return best;
}

JoinStrategy AdaptiveController::Choose(const AccumOp& op, Tick tick,
                                        const TableStats* inner_stats,
                                        size_t outer_rows) {
  switch (options_.mode) {
    case PlanMode::kStaticNL:
      return JoinStrategy::kNestedLoop;
    case PlanMode::kStaticRangeTree:
      return !RangeIndexable(op) || op.inner_set_field != kInvalidField
                 ? JoinStrategy::kNestedLoop
                 : JoinStrategy::kRangeTree;
    case PlanMode::kStaticGrid:
      return !RangeIndexable(op) || op.inner_set_field != kInvalidField
                 ? JoinStrategy::kNestedLoop
                 : JoinStrategy::kGrid;
    case PlanMode::kStaticHash:
      return op.hash_dims.empty() ? JoinStrategy::kNestedLoop
                                  : JoinStrategy::kHash;
    case PlanMode::kCostBased:
      return CostBasedPick(op, inner_stats, outer_rows);
    case PlanMode::kAdaptive:
      break;
  }

  SiteState& site = sites_[static_cast<size_t>(op.site_id)];
  if (!site.initialized) {
    site.candidates = Candidates(op);
    site.time_per_outer.assign(site.candidates.size(),
                               Ewma(options_.ewma_alpha));
    site.last = CostBasedPick(op, inner_stats, outer_rows);
    site.initialized = true;
    return site.last;
  }
  if (site.candidates.size() == 1) return site.candidates[0];

  // Periodic exploration: probe the next unexplored/stale candidate.
  bool probing = site.last_probe < 0 ||
                 tick - site.last_probe >= options_.probe_interval;
  if (probing) {
    site.last_probe = tick;
    site.probe_cursor =
        (site.probe_cursor + 1) % static_cast<int>(site.candidates.size());
    JoinStrategy probe =
        site.candidates[static_cast<size_t>(site.probe_cursor)];
    if (probe != site.last) {
      ++switches_;
      site.last = probe;
    }
    return site.last;
  }

  // Exploit: lowest measured time-per-outer-row; unmeasured candidates are
  // considered infinitely attractive only during probes.
  JoinStrategy best = site.last;
  double best_time = 1e300;
  for (size_t i = 0; i < site.candidates.size(); ++i) {
    const Ewma& e = site.time_per_outer[i];
    if (!e.initialized()) continue;
    if (e.value() < best_time) {
      best_time = e.value();
      best = site.candidates[i];
    }
  }
  if (best != site.last) {
    ++switches_;
    site.last = best;
  }
  return site.last;
}

void AdaptiveController::Feedback(const SiteFeedback& fb) {
  if (fb.site < 0 || static_cast<size_t>(fb.site) >= sites_.size()) return;
  if (fb.outer_rows > 0) {
    // Backend arms learn under every PlanMode (the eval/probe axes are
    // orthogonal to strategy selection below, which stays kAdaptive-only).
    const double per_outer = static_cast<double>(fb.micros) /
                             static_cast<double>(fb.outer_rows);
    BackendState& b = backends_[static_cast<size_t>(fb.site)];
    b.eval.Observe(per_outer);
    b.probe.Observe(per_outer);
  }
  if (options_.mode != PlanMode::kAdaptive) return;
  SiteState& site = sites_[static_cast<size_t>(fb.site)];
  if (!site.initialized || fb.outer_rows == 0) return;
  double per_outer = static_cast<double>(fb.micros) /
                     static_cast<double>(fb.outer_rows);
  for (size_t i = 0; i < site.candidates.size(); ++i) {
    if (site.candidates[i] == fb.strategy) {
      site.time_per_outer[i].Add(per_outer);
    }
  }
  // Drift detection on join fan-out: when the short-horizon average departs
  // from the long-horizon one, the workload changed mode — forget timings.
  double fanout = static_cast<double>(fb.matches) /
                  static_cast<double>(fb.outer_rows);
  site.fanout_fast.Add(fanout);
  site.fanout_slow.Add(fanout);
  if (site.fanout_slow.initialized() && site.fanout_fast.initialized()) {
    double slow = site.fanout_slow.value() + 1e-9;
    double fast = site.fanout_fast.value() + 1e-9;
    double ratio = fast > slow ? fast / slow : slow / fast;
    if (ratio > options_.drift_ratio) {
      for (Ewma& e : site.time_per_outer) e.Reset();
      site.fanout_slow = site.fanout_fast;
      site.last_probe = -1;  // probe immediately next tick
      ++drift_resets_;
    }
  }
}

}  // namespace sgl
