// Guarded numeric kernels shared by every expression-evaluation backend.
//
// The engine evaluates the same Expr IR three ways — scalar
// (object-at-a-time / txn admission), vectorized tree-walking, and compiled
// register bytecode (src/vm/) — and the differential oracle demands
// bit-identical results across all of them. Centralizing the arithmetic
// semantics here makes three-way parity hold by construction instead of by
// vigilance.
//
// Pinned semantics (deliberate deviations from raw IEEE, so that scripted
// game math can never inject inf/NaN into world state or checksums):
//   * x / 0  == 0   (division by zero yields 0, not ±inf/NaN)
//   * fmod(x, 0) == 0  (same guard for modulus)
//   * sqrt(x < 0) == 0 (negative operands clamp to 0, not NaN)
//   * clamp(v, lo, hi) applies lo first, then hi — so lo > hi pins the
//     result to hi (min(max(v, lo), hi)), on every backend.
// All guards are written as branchless selects so the autovectorizer can
// if-convert them; IEEE division/fmod never traps, so speculatively
// computing the unguarded value is safe.

#ifndef SGL_RA_NUMERIC_H_
#define SGL_RA_NUMERIC_H_

#include <cmath>

#include "src/ra/expr.h"

namespace sgl {

/// x / y with division-by-zero yielding 0.
inline double GuardedDiv(double a, double b) {
  return b == 0.0 ? 0.0 : a / b;
}

/// fmod(x, y) with zero modulus yielding 0.
inline double GuardedMod(double a, double b) {
  return b == 0.0 ? 0.0 : std::fmod(a, b);
}

/// sqrt with negative operands clamped to 0 (never NaN).
inline double GuardedSqrt(double a) {
  return a <= 0.0 ? 0.0 : std::sqrt(a);
}

/// clamp with pinned ordering: lo applies first, then hi, so a degenerate
/// lo > hi interval resolves to hi on every backend.
inline double ApplyClamp(double v, double lo, double hi) {
  return std::min(std::max(v, lo), hi);
}

inline double ApplyArith(ArithOp op, double a, double b) {
  switch (op) {
    case ArithOp::kAdd: return a + b;
    case ArithOp::kSub: return a - b;
    case ArithOp::kMul: return a * b;
    case ArithOp::kDiv: return GuardedDiv(a, b);
    case ArithOp::kMod: return GuardedMod(a, b);
    case ArithOp::kMin: return a < b ? a : b;
    case ArithOp::kMax: return a > b ? a : b;
    case ArithOp::kPow: return std::pow(a, b);
  }
  return 0;
}

inline double ApplyCall1(Call1Op op, double a) {
  switch (op) {
    case Call1Op::kAbs: return std::fabs(a);
    case Call1Op::kSqrt: return GuardedSqrt(a);
    case Call1Op::kFloor: return std::floor(a);
    case Call1Op::kCeil: return std::ceil(a);
  }
  return 0;
}

inline bool ApplyCmp(CmpOp op, double a, double b) {
  switch (op) {
    case CmpOp::kLt: return a < b;
    case CmpOp::kLe: return a <= b;
    case CmpOp::kGt: return a > b;
    case CmpOp::kGe: return a >= b;
    case CmpOp::kEq: return a == b;
    case CmpOp::kNe: return a != b;
  }
  return false;
}

}  // namespace sgl

#endif  // SGL_RA_NUMERIC_H_
