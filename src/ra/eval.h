// Expression evaluation: vectorized (set-at-a-time) and scalar
// (object-at-a-time / transaction admission).
//
// Vectorized evaluation produces one output element per selected row (or per
// join pair); this is the engine the paper's declarative-processing claim
// rests on. Scalar evaluation of the *same* IR powers the baseline
// interpreter (E1's comparator) and the transaction engine's tentative-state
// constraint checks, guaranteeing both paths share one semantics.

#ifndef SGL_RA_EVAL_H_
#define SGL_RA_EVAL_H_

#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "src/common/vec_util.h"
#include "src/ra/expr.h"
#include "src/storage/world.h"

namespace sgl {

/// A stack-disciplined pool of reusable vectors. Acquire/Release must nest
/// like scopes (use ScopedVec); vectors keep their high-water capacity, so a
/// steady-state workload stops allocating after warmup. Single-threaded —
/// the executor owns one pool set per worker.
template <typename T>
class VecPool {
 public:
  std::vector<T>* Acquire() {
    if (in_use_ == pool_.size()) {
      pool_.push_back(std::make_unique<std::vector<T>>());
    }
    std::vector<T>* v = pool_[in_use_++].get();
    v->clear();
    return v;
  }
  /// Releases the most recently acquired vector (strict LIFO).
  void Release() {
    SGL_DCHECK(in_use_ > 0);
    --in_use_;
  }

 private:
  std::vector<std::unique_ptr<std::vector<T>>> pool_;  // stable addresses
  size_t in_use_ = 0;
};

/// Per-worker pools for every element type the vectorized engine uses as
/// evaluation or operator scratch (§4's "work done by something else" —
/// allocator traffic — engineered away).
struct EvalScratch {
  VecPool<double> num;
  VecPool<uint8_t> bools;
  VecPool<EntityId> refs;
  VecPool<RowIdx> rows;
};

namespace internal {
template <typename T>
struct PoolSelector;
template <>
struct PoolSelector<double> {
  static VecPool<double>* Get(EvalScratch* s) {
    return s != nullptr ? &s->num : nullptr;
  }
};
template <>
struct PoolSelector<uint8_t> {
  static VecPool<uint8_t>* Get(EvalScratch* s) {
    return s != nullptr ? &s->bools : nullptr;
  }
};
template <>
struct PoolSelector<EntityId> {
  static VecPool<EntityId>* Get(EvalScratch* s) {
    return s != nullptr ? &s->refs : nullptr;
  }
};
template <>
struct PoolSelector<RowIdx> {
  static VecPool<RowIdx>* Get(EvalScratch* s) {
    return s != nullptr ? &s->rows : nullptr;
  }
};
}  // namespace internal

/// RAII handle on a pooled vector; falls back to an owned vector when no
/// scratch is available (cold paths, standalone eval calls).
template <typename T>
class ScopedVec {
 public:
  explicit ScopedVec(EvalScratch* scratch)
      : pool_(internal::PoolSelector<T>::Get(scratch)),
        v_(pool_ != nullptr ? pool_->Acquire() : &own_) {}
  ~ScopedVec() {
    if (pool_ != nullptr) pool_->Release();
  }
  ScopedVec(const ScopedVec&) = delete;
  ScopedVec& operator=(const ScopedVec&) = delete;

  std::vector<T>* get() { return v_; }
  std::vector<T>& operator*() { return *v_; }
  std::vector<T>* operator->() { return v_; }

 private:
  VecPool<T>* pool_;
  std::vector<T> own_;  // fallback storage; must precede v_
  std::vector<T>* v_;
};

/// Storage for let-bound locals and accum results: full columns aligned to
/// the outer class's table rows (slot-indexed; only the vector matching the
/// slot's type is populated).
struct LocalColumns {
  std::vector<std::vector<double>> num;
  std::vector<std::vector<uint8_t>> bools;
  std::vector<std::vector<EntityId>> refs;

  void EnsureSlots(size_t n) {
    if (num.size() < n) {
      num.resize(n);
      bools.resize(n);
      refs.resize(n);
    }
  }
};

/// Zero-fills `locals` for `rows` rows of every slot in `types` (capacity
/// kept). Shared by the single-world and sharded executors so their local
/// column semantics cannot drift.
void AllocateLocalColumns(const std::vector<SglType>& types, size_t rows,
                          LocalColumns* locals);

/// Tentative state deltas used during transaction admission (§3.1): reads of
/// overlaid fields see the would-be-committed value instead of the table.
///
/// Layout: one dense column per (class, txn-owned field), parallel to the
/// class's table rows, with a per-row epoch stamp — a row's overlay entry is
/// live iff its stamp equals the current epoch, so Clear() is a counter
/// bump, not a scan or free. Set values live in a pool of reusable
/// EntitySets (stable addresses, capacity kept across ticks); the column
/// stores the pool slot. A touched-list records live entries in write order
/// for write-back. All buffers are high-water: after warmup, a tick of
/// admission performs zero heap allocations.
class StateOverlay {
 public:
  /// Sizes the per-field columns against the current table sizes. Call once
  /// per tick before writing; reuses buffers across ticks. `txn_owned`
  /// lists, per class, every state field atomic blocks may write.
  void BeginTick(const World& world,
                 const std::vector<std::vector<FieldIdx>>& txn_owned);

  /// Drops every overlaid value (epoch bump; buffers retained).
  void Clear() {
    touched_.clear();
    set_pool_used_ = 0;
    if (++epoch_ == 0) {  // wrapped: old stamps would alias the new epoch
      for (FieldOverlay& f : fields_) {
        std::fill(f.epoch.begin(), f.epoch.end(), 0u);
      }
      epoch_ = 1;
    }
  }

  // --- Reads (scalar evaluation during admission) ---------------------
  // Return nullptr when (cls, row, field) has no live overlay entry —
  // including fields no atomic block writes (no column exists for them).

  const double* GetNum(ClassId cls, RowIdx row, FieldIdx field) const {
    const FieldOverlay* f = FindField(cls, field);
    return f != nullptr && f->epoch[row] == epoch_ ? &f->num[row] : nullptr;
  }
  const EntityId* GetRef(ClassId cls, RowIdx row, FieldIdx field) const {
    const FieldOverlay* f = FindField(cls, field);
    return f != nullptr && f->epoch[row] == epoch_ ? &f->ref[row] : nullptr;
  }
  const EntitySet* GetSet(ClassId cls, RowIdx row, FieldIdx field) const {
    const FieldOverlay* f = FindField(cls, field);
    return f != nullptr && f->epoch[row] == epoch_
               ? set_pool_[f->set_slot[row]].get()
               : nullptr;
  }

  // --- Writes (transaction engine only) -------------------------------
  // Mutable* returns the entry's value slot; *fresh reports whether the
  // entry was just created (caller seeds it from the table and records the
  // undo). A fresh set entry's EntitySet is a cleared pooled slot.

  double* MutableNum(ClassId cls, RowIdx row, FieldIdx field, bool* fresh);
  EntityId* MutableRef(ClassId cls, RowIdx row, FieldIdx field, bool* fresh);
  EntitySet* MutableSet(ClassId cls, RowIdx row, FieldIdx field, bool* fresh);

  /// Removes an overlaid value (used to undo tentative transaction writes).
  void Erase(ClassId cls, RowIdx row, FieldIdx field) {
    FieldOverlay* f = FindField(cls, field);
    SGL_DCHECK(f != nullptr);
    f->epoch[row] = 0;
  }

  /// Visits every live entry in touch order (write-back after admission).
  /// Entries erased after their first touch are skipped; a re-touched entry
  /// may be visited twice with the same final value (write-back is
  /// idempotent per key).
  template <typename NumFn, typename SetFn, typename RefFn>
  void ForEachTouched(NumFn num_fn, SetFn set_fn, RefFn ref_fn) const {
    for (const Touched& t : touched_) {
      const FieldOverlay& f = fields_[t.field_index];
      if (f.epoch[t.row] != epoch_) continue;  // undone
      switch (f.kind) {
        case TypeKind::kNumber:
          num_fn(f.cls, t.row, f.field, f.num[t.row]);
          break;
        case TypeKind::kSet:
          set_fn(f.cls, t.row, f.field, *set_pool_[f.set_slot[t.row]]);
          break;
        case TypeKind::kRef:
          ref_fn(f.cls, t.row, f.field, f.ref[t.row]);
          break;
        case TypeKind::kBool:
          break;  // bools are never txn-owned
      }
    }
  }

 private:
  /// Dense overlay columns for one (class, field).
  struct FieldOverlay {
    ClassId cls = kInvalidClass;
    FieldIdx field = kInvalidField;
    TypeKind kind = TypeKind::kNumber;
    std::vector<uint32_t> epoch;     ///< live iff == current epoch
    std::vector<double> num;         ///< kNumber only
    std::vector<EntityId> ref;       ///< kRef only
    std::vector<uint32_t> set_slot;  ///< kSet only: index into set_pool_
  };
  struct Touched {
    uint32_t field_index;  ///< into fields_
    RowIdx row;
  };

  const FieldOverlay* FindField(ClassId cls, FieldIdx field) const {
    const auto& per_class = field_map_[static_cast<size_t>(cls)];
    if (static_cast<size_t>(field) >= per_class.size()) return nullptr;
    const int32_t idx = per_class[static_cast<size_t>(field)];
    return idx < 0 ? nullptr : &fields_[static_cast<size_t>(idx)];
  }
  FieldOverlay* FindField(ClassId cls, FieldIdx field) {
    return const_cast<FieldOverlay*>(
        static_cast<const StateOverlay*>(this)->FindField(cls, field));
  }
  /// Stamps (field, row) live; returns true if it was not live before.
  bool Touch(FieldOverlay* f, RowIdx row);

  std::vector<std::vector<int32_t>> field_map_;  ///< [cls][field] -> fields_
  std::vector<FieldOverlay> fields_;
  std::vector<Touched> touched_;
  std::vector<std::unique_ptr<EntitySet>> set_pool_;
  size_t set_pool_used_ = 0;
  uint32_t epoch_ = 1;
};

/// Context for vectorized evaluation. Output element i corresponds to
/// outer row (*outer_rows)[i] (and inner row (*inner_rows)[i] in join
/// contexts).
struct VecContext {
  const World* world = nullptr;
  const EntityTable* outer = nullptr;
  const std::vector<RowIdx>* outer_rows = nullptr;
  const EntityTable* inner = nullptr;
  const std::vector<RowIdx>* inner_rows = nullptr;
  const LocalColumns* locals = nullptr;
  const EffectBuffer* effects = nullptr;  // update-phase reads
  /// Pools for evaluation temporaries; null falls back to per-call vectors.
  EvalScratch* scratch = nullptr;

  size_t count() const { return outer_rows->size(); }
};

/// Context for one-row evaluation.
struct ScalarContext {
  const World* world = nullptr;
  ClassId outer_cls = kInvalidClass;
  RowIdx outer_row = kInvalidRow;
  ClassId inner_cls = kInvalidClass;
  RowIdx inner_row = kInvalidRow;
  const LocalColumns* locals = nullptr;   // read at outer_row
  const EffectBuffer* effects = nullptr;  // outer class's buffer
  const StateOverlay* overlay = nullptr;  // txn tentative state
};

// Vectorized evaluation. `expr.type` must match the function's result type.
void EvalNum(const Expr& expr, const VecContext& ctx,
             std::vector<double>* out);
void EvalBool(const Expr& expr, const VecContext& ctx,
              std::vector<uint8_t>* out);
void EvalRef(const Expr& expr, const VecContext& ctx,
             std::vector<EntityId>* out);

// Scalar evaluation.
double EvalScalarNum(const Expr& expr, const ScalarContext& ctx);
bool EvalScalarBool(const Expr& expr, const ScalarContext& ctx);
EntityId EvalScalarRef(const Expr& expr, const ScalarContext& ctx);
/// Set-valued scalar evaluation (state/effect/gathered/if expressions over
/// sets — used by set-typed update rules).
const EntitySet& EvalScalarSet(const Expr& expr, const ScalarContext& ctx);

}  // namespace sgl

#endif  // SGL_RA_EVAL_H_
