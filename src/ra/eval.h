// Expression evaluation: vectorized (set-at-a-time) and scalar
// (object-at-a-time / transaction admission).
//
// Vectorized evaluation produces one output element per selected row (or per
// join pair); this is the engine the paper's declarative-processing claim
// rests on. Scalar evaluation of the *same* IR powers the baseline
// interpreter (E1's comparator) and the transaction engine's tentative-state
// constraint checks, guaranteeing both paths share one semantics.

#ifndef SGL_RA_EVAL_H_
#define SGL_RA_EVAL_H_

#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "src/common/vec_util.h"
#include "src/ra/expr.h"
#include "src/storage/world.h"

namespace sgl {

/// A stack-disciplined pool of reusable vectors. Acquire/Release must nest
/// like scopes (use ScopedVec); vectors keep their high-water capacity, so a
/// steady-state workload stops allocating after warmup. Single-threaded —
/// the executor owns one pool set per worker.
template <typename T>
class VecPool {
 public:
  std::vector<T>* Acquire() {
    if (in_use_ == pool_.size()) {
      pool_.push_back(std::make_unique<std::vector<T>>());
    }
    std::vector<T>* v = pool_[in_use_++].get();
    v->clear();
    return v;
  }
  /// Releases the most recently acquired vector (strict LIFO).
  void Release() {
    SGL_DCHECK(in_use_ > 0);
    --in_use_;
  }

 private:
  std::vector<std::unique_ptr<std::vector<T>>> pool_;  // stable addresses
  size_t in_use_ = 0;
};

/// Per-worker pools for every element type the vectorized engine uses as
/// evaluation or operator scratch (§4's "work done by something else" —
/// allocator traffic — engineered away).
struct EvalScratch {
  VecPool<double> num;
  VecPool<uint8_t> bools;
  VecPool<EntityId> refs;
  VecPool<RowIdx> rows;
};

namespace internal {
template <typename T>
struct PoolSelector;
template <>
struct PoolSelector<double> {
  static VecPool<double>* Get(EvalScratch* s) {
    return s != nullptr ? &s->num : nullptr;
  }
};
template <>
struct PoolSelector<uint8_t> {
  static VecPool<uint8_t>* Get(EvalScratch* s) {
    return s != nullptr ? &s->bools : nullptr;
  }
};
template <>
struct PoolSelector<EntityId> {
  static VecPool<EntityId>* Get(EvalScratch* s) {
    return s != nullptr ? &s->refs : nullptr;
  }
};
template <>
struct PoolSelector<RowIdx> {
  static VecPool<RowIdx>* Get(EvalScratch* s) {
    return s != nullptr ? &s->rows : nullptr;
  }
};
}  // namespace internal

/// RAII handle on a pooled vector; falls back to an owned vector when no
/// scratch is available (cold paths, standalone eval calls).
template <typename T>
class ScopedVec {
 public:
  explicit ScopedVec(EvalScratch* scratch)
      : pool_(internal::PoolSelector<T>::Get(scratch)),
        v_(pool_ != nullptr ? pool_->Acquire() : &own_) {}
  ~ScopedVec() {
    if (pool_ != nullptr) pool_->Release();
  }
  ScopedVec(const ScopedVec&) = delete;
  ScopedVec& operator=(const ScopedVec&) = delete;

  std::vector<T>* get() { return v_; }
  std::vector<T>& operator*() { return *v_; }
  std::vector<T>* operator->() { return v_; }

 private:
  VecPool<T>* pool_;
  std::vector<T> own_;  // fallback storage; must precede v_
  std::vector<T>* v_;
};

/// Storage for let-bound locals and accum results: full columns aligned to
/// the outer class's table rows (slot-indexed; only the vector matching the
/// slot's type is populated).
struct LocalColumns {
  std::vector<std::vector<double>> num;
  std::vector<std::vector<uint8_t>> bools;
  std::vector<std::vector<EntityId>> refs;

  void EnsureSlots(size_t n) {
    if (num.size() < n) {
      num.resize(n);
      bools.resize(n);
      refs.resize(n);
    }
  }
};

/// Tentative state deltas used during transaction admission (§3.1): reads of
/// overlaid fields see the would-be-committed value instead of the table.
class StateOverlay {
 public:
  void SetNum(EntityId id, FieldIdx field, double v) {
    nums_[Key(id, field)] = v;
  }
  std::optional<double> GetNum(EntityId id, FieldIdx field) const {
    auto it = nums_.find(Key(id, field));
    if (it == nums_.end()) return std::nullopt;
    return it->second;
  }
  void SetSet(EntityId id, FieldIdx field, EntitySet v) {
    sets_[Key(id, field)] = std::move(v);
  }
  const EntitySet* GetSet(EntityId id, FieldIdx field) const {
    auto it = sets_.find(Key(id, field));
    return it == sets_.end() ? nullptr : &it->second;
  }
  void SetRef(EntityId id, FieldIdx field, EntityId v) {
    refs_[Key(id, field)] = v;
  }
  std::optional<EntityId> GetRef(EntityId id, FieldIdx field) const {
    auto it = refs_.find(Key(id, field));
    if (it == refs_.end()) return std::nullopt;
    return it->second;
  }
  /// Removes an overlaid value (used to undo tentative transaction writes).
  void EraseNum(EntityId id, FieldIdx field) { nums_.erase(Key(id, field)); }
  void EraseSet(EntityId id, FieldIdx field) { sets_.erase(Key(id, field)); }
  void EraseRef(EntityId id, FieldIdx field) { refs_.erase(Key(id, field)); }
  void Clear() {
    nums_.clear();
    sets_.clear();
    refs_.clear();
  }
  bool empty() const {
    return nums_.empty() && sets_.empty() && refs_.empty();
  }

  /// Visits every overlaid value (write-back after admission).
  template <typename NumFn, typename SetFn, typename RefFn>
  void ForEach(NumFn num_fn, SetFn set_fn, RefFn ref_fn) const {
    for (const auto& [key, v] : nums_) {
      num_fn(static_cast<EntityId>(key >> 16),
             static_cast<FieldIdx>(key & 0xffff), v);
    }
    for (const auto& [key, v] : sets_) {
      set_fn(static_cast<EntityId>(key >> 16),
             static_cast<FieldIdx>(key & 0xffff), v);
    }
    for (const auto& [key, v] : refs_) {
      ref_fn(static_cast<EntityId>(key >> 16),
             static_cast<FieldIdx>(key & 0xffff), v);
    }
  }

 private:
  static uint64_t Key(EntityId id, FieldIdx field) {
    return (static_cast<uint64_t>(id) << 16) ^ static_cast<uint16_t>(field);
  }
  std::unordered_map<uint64_t, double> nums_;
  std::unordered_map<uint64_t, EntitySet> sets_;
  std::unordered_map<uint64_t, EntityId> refs_;
};

/// Context for vectorized evaluation. Output element i corresponds to
/// outer row (*outer_rows)[i] (and inner row (*inner_rows)[i] in join
/// contexts).
struct VecContext {
  const World* world = nullptr;
  const EntityTable* outer = nullptr;
  const std::vector<RowIdx>* outer_rows = nullptr;
  const EntityTable* inner = nullptr;
  const std::vector<RowIdx>* inner_rows = nullptr;
  const LocalColumns* locals = nullptr;
  const EffectBuffer* effects = nullptr;  // update-phase reads
  /// Pools for evaluation temporaries; null falls back to per-call vectors.
  EvalScratch* scratch = nullptr;

  size_t count() const { return outer_rows->size(); }
};

/// Context for one-row evaluation.
struct ScalarContext {
  const World* world = nullptr;
  ClassId outer_cls = kInvalidClass;
  RowIdx outer_row = kInvalidRow;
  ClassId inner_cls = kInvalidClass;
  RowIdx inner_row = kInvalidRow;
  const LocalColumns* locals = nullptr;   // read at outer_row
  const EffectBuffer* effects = nullptr;  // outer class's buffer
  const StateOverlay* overlay = nullptr;  // txn tentative state
};

// Vectorized evaluation. `expr.type` must match the function's result type.
void EvalNum(const Expr& expr, const VecContext& ctx,
             std::vector<double>* out);
void EvalBool(const Expr& expr, const VecContext& ctx,
              std::vector<uint8_t>* out);
void EvalRef(const Expr& expr, const VecContext& ctx,
             std::vector<EntityId>* out);

// Scalar evaluation.
double EvalScalarNum(const Expr& expr, const ScalarContext& ctx);
bool EvalScalarBool(const Expr& expr, const ScalarContext& ctx);
EntityId EvalScalarRef(const Expr& expr, const ScalarContext& ctx);
/// Set-valued scalar evaluation (state/effect/gathered/if expressions over
/// sets — used by set-typed update rules).
const EntitySet& EvalScalarSet(const Expr& expr, const ScalarContext& ctx);

}  // namespace sgl

#endif  // SGL_RA_EVAL_H_
