// Typed scalar-expression IR — the leaves of compiled relational plans.
//
// SGL scripts compile into plan operators whose guards, join predicates,
// effect values, and update rules are all Expr trees. The same IR is
// evaluated two ways:
//   * vectorized over RowIdx selections (the set-at-a-time engine, §2), and
//   * one row at a time (the object-at-a-time baseline interpreter and the
//     transaction engine's tentative-state constraint checks, §3.1).
//
// Expressions may reference two tuple "sides": side 0 is the script's own
// entity (outer), side 1 is the accum-loop iteration entity (inner). An
// expression that references no inner fields is an outer expression; the
// compiler uses UsesInner() to extract join predicates (§2.1).

#ifndef SGL_RA_EXPR_H_
#define SGL_RA_EXPR_H_

#include <memory>
#include <string>
#include <vector>

#include "src/common/types.h"
#include "src/schema/type.h"

namespace sgl {

/// Node discriminator.
enum class ExprKind : uint8_t {
  kNumLit,      ///< numeric literal
  kBoolLit,     ///< boolean literal
  kNullRef,     ///< the null entity reference
  kStateRead,   ///< state field of side 0/1 (cls, field)
  kEffectRead,  ///< merged effect value (update phase only; cls, field)
  kAssigned,    ///< bool: effect field received >= 1 assignment (update only)
  kLocal,       ///< local slot (let-binding or accum result column)
  kRowId,       ///< ref: the entity id of side 0/1
  kRefState,    ///< gather: kids[0] is a ref expr; read (cls, field) of target
  kUnaryMinus,  ///< -x
  kNot,         ///< !b
  kArith,       ///< binary numeric op (arith payload)
  kCall1,       ///< unary numeric builtin (call1 payload)
  kCmpNum,      ///< numeric comparison (cmp payload) -> bool
  kCmpRef,      ///< ref equality comparison (cmp kEq/kNe) -> bool
  kCmpBool,     ///< bool equality comparison (cmp kEq/kNe) -> bool
  kAndB,        ///< b && b
  kOrB,         ///< b || b
  kIf,          ///< if(cond, a, b) — result type = type of a/b
  kClamp,       ///< clamp(x, lo, hi)
  kSetContains, ///< contains(set-expr, ref-expr) -> bool
  kSetSize,     ///< size(set-expr) -> number
};

enum class ArithOp : uint8_t { kAdd, kSub, kMul, kDiv, kMod, kMin, kMax, kPow };
enum class Call1Op : uint8_t { kAbs, kSqrt, kFloor, kCeil };
enum class CmpOp : uint8_t { kLt, kLe, kGt, kGe, kEq, kNe };

/// One IR node. Trees are owned top-down via unique_ptr.
struct Expr {
  ExprKind kind;
  SglType type;               ///< result type (assigned by sema)
  uint8_t side = 0;           ///< kStateRead/kRowId: 0 outer, 1 inner
  ClassId cls = kInvalidClass;///< reads: class whose field is read
  FieldIdx field = kInvalidField;  ///< reads: field index
  int slot = -1;              ///< kLocal: slot index
  double num = 0.0;           ///< kNumLit payload
  bool b = false;             ///< kBoolLit payload
  ArithOp arith = ArithOp::kAdd;
  Call1Op call1 = Call1Op::kAbs;
  CmpOp cmp = CmpOp::kLt;
  std::vector<std::unique_ptr<Expr>> kids;

  /// Deep structural equality (used for join-predicate extraction).
  bool Equals(const Expr& other) const;
  /// Deep copy.
  std::unique_ptr<Expr> Clone() const;
  /// Readable rendering for EXPLAIN output and error messages.
  std::string ToString() const;
  /// True if any descendant reads side 1 (the accum iteration tuple).
  bool UsesInner() const;
  /// True if any descendant is a kEffectRead/kAssigned node.
  bool ReadsEffects() const;
};

using ExprPtr = std::unique_ptr<Expr>;

// --- Construction helpers (used by sema, update components, tests) -----

ExprPtr NumLit(double v);
ExprPtr BoolLit(bool v);
ExprPtr NullRef();
ExprPtr StateRead(uint8_t side, ClassId cls, FieldIdx field,
                  const SglType& type);
ExprPtr EffectRead(ClassId cls, FieldIdx field, const SglType& type);
ExprPtr AssignedRead(ClassId cls, FieldIdx field);
ExprPtr LocalRead(int slot, const SglType& type);
ExprPtr RowIdRead(uint8_t side, ClassId cls);
ExprPtr Arith(ArithOp op, ExprPtr a, ExprPtr b);
ExprPtr Call1(Call1Op op, ExprPtr a);
ExprPtr CmpNum(CmpOp op, ExprPtr a, ExprPtr b);
ExprPtr AndB(ExprPtr a, ExprPtr b);
ExprPtr OrB(ExprPtr a, ExprPtr b);
ExprPtr NotB(ExprPtr a);
ExprPtr IfExpr(ExprPtr cond, ExprPtr t, ExprPtr e);

}  // namespace sgl

#endif  // SGL_RA_EXPR_H_
