#include "src/ra/plan.h"

namespace sgl {

const char* JoinStrategyName(JoinStrategy s) {
  switch (s) {
    case JoinStrategy::kNestedLoop: return "nested-loop";
    case JoinStrategy::kRangeTree: return "range-tree";
    case JoinStrategy::kGrid: return "grid";
    case JoinStrategy::kHash: return "hash";
  }
  return "?";
}

namespace {
std::string WriteString(const EffectWrite& w) {
  std::string out;
  if (w.guard != nullptr) out += "if " + w.guard->ToString() + " then ";
  switch (w.target_kind) {
    case TargetKind::kSelf: out += "self"; break;
    case TargetKind::kIter: out += "it"; break;
    case TargetKind::kRef: out += "(" + w.target_ref->ToString() + ")"; break;
  }
  out += ".eff" + std::to_string(w.field);
  out += w.set_insert ? " <+ " : " <- ";
  out += w.value->ToString();
  return out;
}
}  // namespace

std::string ComputeLocalsOp::DebugString() const {
  std::string out = "Extend[";
  for (size_t i = 0; i < defs.size(); ++i) {
    if (i > 0) out += ", ";
    out += "$" + std::to_string(defs[i].slot) + "=" +
           defs[i].value->ToString();
  }
  out += "]";
  return out;
}

std::string EffectsOp::DebugString() const {
  std::string out = "Effects[";
  for (size_t i = 0; i < writes.size(); ++i) {
    if (i > 0) out += "; ";
    out += WriteString(writes[i]);
  }
  out += "]";
  return out;
}

std::string AccumOp::DebugString() const {
  std::string out = "AccumJoin[";
  out += JoinStrategyName(strategy);
  if (outer_guard != nullptr) out += ", outer: " + outer_guard->ToString();
  out += ", inner: class" + std::to_string(inner_cls);
  if (inner_set_field != kInvalidField) {
    out += " via set s" + std::to_string(inner_set_field);
  }
  for (const RangeDim& r : range_dims) {
    out += ", range(s" + std::to_string(r.inner_field) + " in [" +
           (r.lo != nullptr ? r.lo->ToString() : "-inf") + "," +
           (r.hi != nullptr ? r.hi->ToString() : "+inf") + "])";
  }
  for (const HashDim& h : hash_dims) {
    out += ", eq(s" + std::to_string(h.inner_field) + "=" +
           h.key->ToString() + ")";
  }
  if (residual != nullptr) out += ", residual: " + residual->ToString();
  if (exclude_self) out += ", it!=self";
  if (accum_slot >= 0) {
    out += ", gamma($" + std::to_string(accum_slot) + " " +
           CombinatorName(accum_comb) + " over " +
           std::to_string(accum_assigns.size()) + " assigns)";
  }
  if (!pair_writes.empty()) {
    out += ", pair-writes: " + std::to_string(pair_writes.size());
  }
  out += "]";
  return out;
}

std::string TxnEmitOp::DebugString() const {
  std::string out = "TxnEmit[" + label;
  if (guard != nullptr) out += ", guard: " + guard->ToString();
  out += ", constraints: " + std::to_string(constraints.size());
  out += ", writes: " + std::to_string(writes.size());
  out += "]";
  return out;
}

std::string ExplainOps(const std::vector<std::unique_ptr<PlanOp>>& ops) {
  std::string out;
  for (const auto& op : ops) {
    out += "  ";
    out += op->DebugString();
    out += "\n";
  }
  return out;
}

}  // namespace sgl
