#include "src/ra/expr.h"

#include <cstdio>

namespace sgl {

bool Expr::Equals(const Expr& other) const {
  if (kind != other.kind || side != other.side || cls != other.cls ||
      field != other.field || slot != other.slot || num != other.num ||
      b != other.b || arith != other.arith || call1 != other.call1 ||
      cmp != other.cmp || kids.size() != other.kids.size()) {
    return false;
  }
  for (size_t i = 0; i < kids.size(); ++i) {
    if (!kids[i]->Equals(*other.kids[i])) return false;
  }
  return true;
}

std::unique_ptr<Expr> Expr::Clone() const {
  auto out = std::make_unique<Expr>();
  out->kind = kind;
  out->type = type;
  out->side = side;
  out->cls = cls;
  out->field = field;
  out->slot = slot;
  out->num = num;
  out->b = b;
  out->arith = arith;
  out->call1 = call1;
  out->cmp = cmp;
  out->kids.reserve(kids.size());
  for (const auto& k : kids) out->kids.push_back(k->Clone());
  return out;
}

bool Expr::UsesInner() const {
  if ((kind == ExprKind::kStateRead || kind == ExprKind::kRowId) &&
      side == 1) {
    return true;
  }
  for (const auto& k : kids) {
    if (k->UsesInner()) return true;
  }
  return false;
}

bool Expr::ReadsEffects() const {
  if (kind == ExprKind::kEffectRead || kind == ExprKind::kAssigned) {
    return true;
  }
  for (const auto& k : kids) {
    if (k->ReadsEffects()) return true;
  }
  return false;
}

namespace {
const char* ArithOpName(ArithOp op) {
  switch (op) {
    case ArithOp::kAdd: return "+";
    case ArithOp::kSub: return "-";
    case ArithOp::kMul: return "*";
    case ArithOp::kDiv: return "/";
    case ArithOp::kMod: return "%";
    case ArithOp::kMin: return "min";
    case ArithOp::kMax: return "max";
    case ArithOp::kPow: return "pow";
  }
  return "?";
}
const char* CmpOpName(CmpOp op) {
  switch (op) {
    case CmpOp::kLt: return "<";
    case CmpOp::kLe: return "<=";
    case CmpOp::kGt: return ">";
    case CmpOp::kGe: return ">=";
    case CmpOp::kEq: return "==";
    case CmpOp::kNe: return "!=";
  }
  return "?";
}
const char* Call1Name(Call1Op op) {
  switch (op) {
    case Call1Op::kAbs: return "abs";
    case Call1Op::kSqrt: return "sqrt";
    case Call1Op::kFloor: return "floor";
    case Call1Op::kCeil: return "ceil";
  }
  return "?";
}
}  // namespace

std::string Expr::ToString() const {
  char buf[64];
  switch (kind) {
    case ExprKind::kNumLit:
      std::snprintf(buf, sizeof(buf), "%g", num);
      return buf;
    case ExprKind::kBoolLit:
      return b ? "true" : "false";
    case ExprKind::kNullRef:
      return "null";
    case ExprKind::kStateRead:
      std::snprintf(buf, sizeof(buf), "%s.s%d", side == 0 ? "self" : "it",
                    field);
      return buf;
    case ExprKind::kEffectRead:
      std::snprintf(buf, sizeof(buf), "eff%d", field);
      return buf;
    case ExprKind::kAssigned:
      std::snprintf(buf, sizeof(buf), "assigned(eff%d)", field);
      return buf;
    case ExprKind::kLocal:
      std::snprintf(buf, sizeof(buf), "$%d", slot);
      return buf;
    case ExprKind::kRowId:
      return side == 0 ? "self" : "it";
    case ExprKind::kRefState:
      std::snprintf(buf, sizeof(buf), "(%s).s%d", kids[0]->ToString().c_str(),
                    field);
      return buf;
    case ExprKind::kUnaryMinus:
      return "-(" + kids[0]->ToString() + ")";
    case ExprKind::kNot:
      return "!(" + kids[0]->ToString() + ")";
    case ExprKind::kArith:
      if (arith == ArithOp::kMin || arith == ArithOp::kMax ||
          arith == ArithOp::kPow) {
        return std::string(ArithOpName(arith)) + "(" + kids[0]->ToString() +
               "," + kids[1]->ToString() + ")";
      }
      return "(" + kids[0]->ToString() + ArithOpName(arith) +
             kids[1]->ToString() + ")";
    case ExprKind::kCall1:
      return std::string(Call1Name(call1)) + "(" + kids[0]->ToString() + ")";
    case ExprKind::kCmpNum:
    case ExprKind::kCmpRef:
    case ExprKind::kCmpBool:
      return "(" + kids[0]->ToString() + CmpOpName(cmp) + kids[1]->ToString() +
             ")";
    case ExprKind::kAndB:
      return "(" + kids[0]->ToString() + "&&" + kids[1]->ToString() + ")";
    case ExprKind::kOrB:
      return "(" + kids[0]->ToString() + "||" + kids[1]->ToString() + ")";
    case ExprKind::kIf:
      return "if(" + kids[0]->ToString() + "," + kids[1]->ToString() + "," +
             kids[2]->ToString() + ")";
    case ExprKind::kClamp:
      return "clamp(" + kids[0]->ToString() + "," + kids[1]->ToString() + "," +
             kids[2]->ToString() + ")";
    case ExprKind::kSetContains:
      return "contains(" + kids[0]->ToString() + "," + kids[1]->ToString() +
             ")";
    case ExprKind::kSetSize:
      return "size(" + kids[0]->ToString() + ")";
  }
  return "?";
}

ExprPtr NumLit(double v) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kNumLit;
  e->type = SglType::Number();
  e->num = v;
  return e;
}

ExprPtr BoolLit(bool v) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kBoolLit;
  e->type = SglType::Bool();
  e->b = v;
  return e;
}

ExprPtr NullRef() {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kNullRef;
  e->type = SglType::Ref("");
  return e;
}

ExprPtr StateRead(uint8_t side, ClassId cls, FieldIdx field,
                  const SglType& type) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kStateRead;
  e->type = type;
  e->side = side;
  e->cls = cls;
  e->field = field;
  return e;
}

ExprPtr EffectRead(ClassId cls, FieldIdx field, const SglType& type) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kEffectRead;
  e->type = type;
  e->cls = cls;
  e->field = field;
  return e;
}

ExprPtr AssignedRead(ClassId cls, FieldIdx field) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kAssigned;
  e->type = SglType::Bool();
  e->cls = cls;
  e->field = field;
  return e;
}

ExprPtr LocalRead(int slot, const SglType& type) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kLocal;
  e->type = type;
  e->slot = slot;
  return e;
}

ExprPtr RowIdRead(uint8_t side, ClassId cls) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kRowId;
  e->type = SglType::Ref("");
  e->side = side;
  e->cls = cls;
  return e;
}

ExprPtr Arith(ArithOp op, ExprPtr a, ExprPtr b) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kArith;
  e->type = SglType::Number();
  e->arith = op;
  e->kids.push_back(std::move(a));
  e->kids.push_back(std::move(b));
  return e;
}

ExprPtr Call1(Call1Op op, ExprPtr a) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kCall1;
  e->type = SglType::Number();
  e->call1 = op;
  e->kids.push_back(std::move(a));
  return e;
}

ExprPtr CmpNum(CmpOp op, ExprPtr a, ExprPtr b) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kCmpNum;
  e->type = SglType::Bool();
  e->cmp = op;
  e->kids.push_back(std::move(a));
  e->kids.push_back(std::move(b));
  return e;
}

ExprPtr AndB(ExprPtr a, ExprPtr b) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kAndB;
  e->type = SglType::Bool();
  e->kids.push_back(std::move(a));
  e->kids.push_back(std::move(b));
  return e;
}

ExprPtr OrB(ExprPtr a, ExprPtr b) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kOrB;
  e->type = SglType::Bool();
  e->kids.push_back(std::move(a));
  e->kids.push_back(std::move(b));
  return e;
}

ExprPtr NotB(ExprPtr a) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kNot;
  e->type = SglType::Bool();
  e->kids.push_back(std::move(a));
  return e;
}

ExprPtr IfExpr(ExprPtr cond, ExprPtr t, ExprPtr e2) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kIf;
  e->type = t->type;
  e->kids.push_back(std::move(cond));
  e->kids.push_back(std::move(t));
  e->kids.push_back(std::move(e2));
  return e;
}

}  // namespace sgl
