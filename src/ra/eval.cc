#include "src/ra/eval.h"

#include <cmath>

#include "src/ra/numeric.h"

namespace sgl {

void AllocateLocalColumns(const std::vector<SglType>& types, size_t rows,
                          LocalColumns* locals) {
  locals->EnsureSlots(types.size());
  for (size_t slot = 0; slot < types.size(); ++slot) {
    if (types[slot].is_number()) {
      locals->num[slot].assign(rows, 0.0);
    } else if (types[slot].is_bool()) {
      locals->bools[slot].assign(rows, 0);
    } else {
      locals->refs[slot].assign(rows, kNullEntity);
    }
  }
}

namespace {

// Resolves the (table, row) a side refers to, per output element.
inline const EntityTable* SideTable(const VecContext& ctx, uint8_t side) {
  return side == 0 ? ctx.outer : ctx.inner;
}
inline RowIdx SideRow(const VecContext& ctx, uint8_t side, size_t i) {
  return side == 0 ? (*ctx.outer_rows)[i] : (*ctx.inner_rows)[i];
}

// Fetches the set a kSetContains/kSetSize operand denotes, for one output
// element. Supports state set fields (either side) and ref-gathered sets.
const EntitySet* ResolveSetVec(const Expr& e, const VecContext& ctx,
                               size_t i) {
  static const EntitySet kEmpty;
  if (e.kind == ExprKind::kStateRead) {
    const EntityTable* t = SideTable(ctx, e.side);
    return &t->SetCol(e.field)[SideRow(ctx, e.side, i)];
  }
  if (e.kind == ExprKind::kRefState) {
    // Per-element gather: evaluate the ref for just this element by
    // delegating to scalar path (sets through refs are rare).
    ScalarContext sc;
    sc.world = ctx.world;
    sc.outer_cls = ctx.outer->cls().id();
    sc.outer_row = (*ctx.outer_rows)[i];
    if (ctx.inner != nullptr) {
      sc.inner_cls = ctx.inner->cls().id();
      sc.inner_row = (*ctx.inner_rows)[i];
    }
    sc.locals = ctx.locals;
    sc.effects = ctx.effects;
    EntityId target = EvalScalarRef(*e.kids[0], sc);
    const World::Locator* loc = ctx.world->Find(target);
    if (loc == nullptr) return &kEmpty;
    return &ctx.world->table(loc->cls).SetCol(e.field)[loc->row];
  }
  SGL_CHECK(false && "unsupported set operand");
  return &kEmpty;
}

const EntitySet* ResolveSetScalar(const Expr& e, const ScalarContext& ctx) {
  static const EntitySet kEmpty;
  if (e.kind == ExprKind::kEffectRead) {
    SGL_CHECK(ctx.effects != nullptr);
    return &ctx.effects->FinalSet(e.field, ctx.outer_row);
  }
  if (e.kind == ExprKind::kStateRead) {
    ClassId cls = e.side == 0 ? ctx.outer_cls : ctx.inner_cls;
    RowIdx row = e.side == 0 ? ctx.outer_row : ctx.inner_row;
    if (ctx.overlay != nullptr) {
      const EntitySet* tentative = ctx.overlay->GetSet(cls, row, e.field);
      if (tentative != nullptr) return tentative;
    }
    return &ctx.world->table(cls).SetCol(e.field)[row];
  }
  if (e.kind == ExprKind::kRefState) {
    EntityId target = EvalScalarRef(*e.kids[0], ctx);
    const World::Locator* loc = ctx.world->Find(target);
    if (loc == nullptr) return &kEmpty;
    if (ctx.overlay != nullptr) {
      const EntitySet* tentative =
          ctx.overlay->GetSet(loc->cls, loc->row, e.field);
      if (tentative != nullptr) return tentative;
    }
    return &ctx.world->table(loc->cls).SetCol(e.field)[loc->row];
  }
  if (e.kind == ExprKind::kIf) {
    return ResolveSetScalar(
        EvalScalarBool(*e.kids[0], ctx) ? *e.kids[1] : *e.kids[2], ctx);
  }
  SGL_CHECK(false && "unsupported set operand");
  return &kEmpty;
}

// ApplyArith / ApplyCall1 / ApplyCmp / ApplyClamp live in src/ra/numeric.h —
// the guarded semantics (div/mod by zero -> 0, sqrt of negatives -> 0,
// clamp's pinned lo-then-hi order) are shared with the bytecode VM so the
// three backends cannot drift.

}  // namespace

// --------------------------- Vectorized -------------------------------

void EvalNum(const Expr& expr, const VecContext& ctx,
             std::vector<double>* out) {
  const size_t n = ctx.count();
  ResizeAmortized(out, n);
  switch (expr.kind) {
    case ExprKind::kNumLit:
      std::fill(out->begin(), out->end(), expr.num);
      return;
    case ExprKind::kStateRead: {
      const EntityTable* t = SideTable(ctx, expr.side);
      ConstNumberColumn col = t->Num(expr.field);
      const std::vector<RowIdx>& rows =
          expr.side == 0 ? *ctx.outer_rows : *ctx.inner_rows;
      for (size_t i = 0; i < n; ++i) (*out)[i] = col[rows[i]];
      return;
    }
    case ExprKind::kEffectRead: {
      SGL_CHECK(ctx.effects != nullptr);
      for (size_t i = 0; i < n; ++i) {
        RowIdx r = (*ctx.outer_rows)[i];
        (*out)[i] =
            ctx.effects->Assigned(expr.field, r)
                ? ctx.effects->FinalNumber(expr.field, r)
                : 0.0;
      }
      return;
    }
    case ExprKind::kLocal: {
      const std::vector<double>& col =
          ctx.locals->num[static_cast<size_t>(expr.slot)];
      for (size_t i = 0; i < n; ++i) (*out)[i] = col[(*ctx.outer_rows)[i]];
      return;
    }
    case ExprKind::kRefState: {
      ScopedVec<EntityId> ids(ctx.scratch);
      EvalRef(*expr.kids[0], ctx, ids.get());
      for (size_t i = 0; i < n; ++i) {
        const World::Locator* loc = ctx.world->Find((*ids)[i]);
        (*out)[i] =
            loc == nullptr
                ? 0.0
                : ctx.world->table(loc->cls).Num(expr.field)[loc->row];
      }
      return;
    }
    case ExprKind::kUnaryMinus: {
      EvalNum(*expr.kids[0], ctx, out);
      for (double& v : *out) v = -v;
      return;
    }
    case ExprKind::kArith: {
      ScopedVec<double> rhs(ctx.scratch);
      EvalNum(*expr.kids[0], ctx, out);
      EvalNum(*expr.kids[1], ctx, rhs.get());
      const ArithOp op = expr.arith;
      for (size_t i = 0; i < n; ++i) {
        (*out)[i] = ApplyArith(op, (*out)[i], (*rhs)[i]);
      }
      return;
    }
    case ExprKind::kCall1: {
      EvalNum(*expr.kids[0], ctx, out);
      const Call1Op op = expr.call1;
      for (double& v : *out) v = ApplyCall1(op, v);
      return;
    }
    case ExprKind::kIf: {
      ScopedVec<uint8_t> cond(ctx.scratch);
      ScopedVec<double> els(ctx.scratch);
      EvalBool(*expr.kids[0], ctx, cond.get());
      EvalNum(*expr.kids[1], ctx, out);
      EvalNum(*expr.kids[2], ctx, els.get());
      for (size_t i = 0; i < n; ++i) {
        if (!(*cond)[i]) (*out)[i] = (*els)[i];
      }
      return;
    }
    case ExprKind::kClamp: {
      ScopedVec<double> lo(ctx.scratch);
      ScopedVec<double> hi(ctx.scratch);
      EvalNum(*expr.kids[0], ctx, out);
      EvalNum(*expr.kids[1], ctx, lo.get());
      EvalNum(*expr.kids[2], ctx, hi.get());
      for (size_t i = 0; i < n; ++i) {
        (*out)[i] = ApplyClamp((*out)[i], (*lo)[i], (*hi)[i]);
      }
      return;
    }
    case ExprKind::kSetSize: {
      for (size_t i = 0; i < n; ++i) {
        (*out)[i] =
            static_cast<double>(ResolveSetVec(*expr.kids[0], ctx, i)->size());
      }
      return;
    }
    default:
      SGL_CHECK(false && "expression is not numeric");
  }
}

void EvalBool(const Expr& expr, const VecContext& ctx,
              std::vector<uint8_t>* out) {
  const size_t n = ctx.count();
  ResizeAmortized(out, n);
  switch (expr.kind) {
    case ExprKind::kBoolLit:
      std::fill(out->begin(), out->end(), expr.b ? 1 : 0);
      return;
    case ExprKind::kStateRead: {
      const EntityTable* t = SideTable(ctx, expr.side);
      const uint8_t* col = t->BoolCol(expr.field);
      const std::vector<RowIdx>& rows =
          expr.side == 0 ? *ctx.outer_rows : *ctx.inner_rows;
      for (size_t i = 0; i < n; ++i) (*out)[i] = col[rows[i]];
      return;
    }
    case ExprKind::kEffectRead: {
      SGL_CHECK(ctx.effects != nullptr);
      for (size_t i = 0; i < n; ++i) {
        RowIdx r = (*ctx.outer_rows)[i];
        (*out)[i] = ctx.effects->Assigned(expr.field, r)
                        ? (ctx.effects->FinalBool(expr.field, r) ? 1 : 0)
                        : 0;
      }
      return;
    }
    case ExprKind::kAssigned: {
      SGL_CHECK(ctx.effects != nullptr);
      for (size_t i = 0; i < n; ++i) {
        (*out)[i] = ctx.effects->Assigned(expr.field, (*ctx.outer_rows)[i]);
      }
      return;
    }
    case ExprKind::kLocal: {
      const std::vector<uint8_t>& col =
          ctx.locals->bools[static_cast<size_t>(expr.slot)];
      for (size_t i = 0; i < n; ++i) (*out)[i] = col[(*ctx.outer_rows)[i]];
      return;
    }
    case ExprKind::kRefState: {
      ScopedVec<EntityId> ids(ctx.scratch);
      EvalRef(*expr.kids[0], ctx, ids.get());
      for (size_t i = 0; i < n; ++i) {
        const World::Locator* loc = ctx.world->Find((*ids)[i]);
        (*out)[i] =
            loc == nullptr
                ? 0
                : ctx.world->table(loc->cls).BoolCol(expr.field)[loc->row];
      }
      return;
    }
    case ExprKind::kNot: {
      EvalBool(*expr.kids[0], ctx, out);
      for (uint8_t& v : *out) v = v ? 0 : 1;
      return;
    }
    case ExprKind::kCmpNum: {
      ScopedVec<double> a(ctx.scratch);
      ScopedVec<double> b(ctx.scratch);
      EvalNum(*expr.kids[0], ctx, a.get());
      EvalNum(*expr.kids[1], ctx, b.get());
      const CmpOp op = expr.cmp;
      for (size_t i = 0; i < n; ++i) {
        (*out)[i] = ApplyCmp(op, (*a)[i], (*b)[i]) ? 1 : 0;
      }
      return;
    }
    case ExprKind::kCmpRef: {
      ScopedVec<EntityId> a(ctx.scratch);
      ScopedVec<EntityId> b(ctx.scratch);
      EvalRef(*expr.kids[0], ctx, a.get());
      EvalRef(*expr.kids[1], ctx, b.get());
      for (size_t i = 0; i < n; ++i) {
        bool eq = (*a)[i] == (*b)[i];
        (*out)[i] = (expr.cmp == CmpOp::kEq ? eq : !eq) ? 1 : 0;
      }
      return;
    }
    case ExprKind::kCmpBool: {
      ScopedVec<uint8_t> a(ctx.scratch);
      ScopedVec<uint8_t> b(ctx.scratch);
      EvalBool(*expr.kids[0], ctx, a.get());
      EvalBool(*expr.kids[1], ctx, b.get());
      for (size_t i = 0; i < n; ++i) {
        bool eq = ((*a)[i] != 0) == ((*b)[i] != 0);
        (*out)[i] = (expr.cmp == CmpOp::kEq ? eq : !eq) ? 1 : 0;
      }
      return;
    }
    case ExprKind::kAndB: {
      ScopedVec<uint8_t> rhs(ctx.scratch);
      EvalBool(*expr.kids[0], ctx, out);
      EvalBool(*expr.kids[1], ctx, rhs.get());
      for (size_t i = 0; i < n; ++i) (*out)[i] &= (*rhs)[i];
      return;
    }
    case ExprKind::kOrB: {
      ScopedVec<uint8_t> rhs(ctx.scratch);
      EvalBool(*expr.kids[0], ctx, out);
      EvalBool(*expr.kids[1], ctx, rhs.get());
      for (size_t i = 0; i < n; ++i) (*out)[i] |= (*rhs)[i];
      return;
    }
    case ExprKind::kIf: {
      ScopedVec<uint8_t> cond(ctx.scratch);
      ScopedVec<uint8_t> els(ctx.scratch);
      EvalBool(*expr.kids[0], ctx, cond.get());
      EvalBool(*expr.kids[1], ctx, out);
      EvalBool(*expr.kids[2], ctx, els.get());
      for (size_t i = 0; i < n; ++i) {
        if (!(*cond)[i]) (*out)[i] = (*els)[i];
      }
      return;
    }
    case ExprKind::kSetContains: {
      ScopedVec<EntityId> ids(ctx.scratch);
      EvalRef(*expr.kids[1], ctx, ids.get());
      for (size_t i = 0; i < n; ++i) {
        (*out)[i] = ResolveSetVec(*expr.kids[0], ctx, i)
                            ->Contains((*ids)[i])
                        ? 1
                        : 0;
      }
      return;
    }
    default:
      SGL_CHECK(false && "expression is not boolean");
  }
}

void EvalRef(const Expr& expr, const VecContext& ctx,
             std::vector<EntityId>* out) {
  const size_t n = ctx.count();
  ResizeAmortized(out, n);
  switch (expr.kind) {
    case ExprKind::kNullRef:
      std::fill(out->begin(), out->end(), kNullEntity);
      return;
    case ExprKind::kStateRead: {
      const EntityTable* t = SideTable(ctx, expr.side);
      const EntityId* col = t->RefCol(expr.field);
      const std::vector<RowIdx>& rows =
          expr.side == 0 ? *ctx.outer_rows : *ctx.inner_rows;
      for (size_t i = 0; i < n; ++i) (*out)[i] = col[rows[i]];
      return;
    }
    case ExprKind::kEffectRead: {
      SGL_CHECK(ctx.effects != nullptr);
      for (size_t i = 0; i < n; ++i) {
        RowIdx r = (*ctx.outer_rows)[i];
        (*out)[i] = ctx.effects->Assigned(expr.field, r)
                        ? ctx.effects->FinalRef(expr.field, r)
                        : kNullEntity;
      }
      return;
    }
    case ExprKind::kLocal: {
      const std::vector<EntityId>& col =
          ctx.locals->refs[static_cast<size_t>(expr.slot)];
      for (size_t i = 0; i < n; ++i) (*out)[i] = col[(*ctx.outer_rows)[i]];
      return;
    }
    case ExprKind::kRowId: {
      const EntityTable* t = SideTable(ctx, expr.side);
      const std::vector<RowIdx>& rows =
          expr.side == 0 ? *ctx.outer_rows : *ctx.inner_rows;
      for (size_t i = 0; i < n; ++i) (*out)[i] = t->id_at(rows[i]);
      return;
    }
    case ExprKind::kRefState: {
      ScopedVec<EntityId> ids(ctx.scratch);
      EvalRef(*expr.kids[0], ctx, ids.get());
      for (size_t i = 0; i < n; ++i) {
        const World::Locator* loc = ctx.world->Find((*ids)[i]);
        (*out)[i] =
            loc == nullptr
                ? kNullEntity
                : ctx.world->table(loc->cls).RefCol(expr.field)[loc->row];
      }
      return;
    }
    case ExprKind::kIf: {
      ScopedVec<uint8_t> cond(ctx.scratch);
      ScopedVec<EntityId> els(ctx.scratch);
      EvalBool(*expr.kids[0], ctx, cond.get());
      EvalRef(*expr.kids[1], ctx, out);
      EvalRef(*expr.kids[2], ctx, els.get());
      for (size_t i = 0; i < n; ++i) {
        if (!(*cond)[i]) (*out)[i] = (*els)[i];
      }
      return;
    }
    default:
      SGL_CHECK(false && "expression is not a reference");
  }
}

// ----------------------------- Scalar ---------------------------------

const EntitySet& EvalScalarSet(const Expr& expr, const ScalarContext& ctx) {
  return *ResolveSetScalar(expr, ctx);
}

double EvalScalarNum(const Expr& expr, const ScalarContext& ctx) {
  switch (expr.kind) {
    case ExprKind::kNumLit:
      return expr.num;
    case ExprKind::kStateRead: {
      ClassId cls = expr.side == 0 ? ctx.outer_cls : ctx.inner_cls;
      RowIdx row = expr.side == 0 ? ctx.outer_row : ctx.inner_row;
      if (ctx.overlay != nullptr) {
        const double* v = ctx.overlay->GetNum(cls, row, expr.field);
        if (v != nullptr) return *v;
      }
      return ctx.world->table(cls).Num(expr.field)[row];
    }
    case ExprKind::kEffectRead: {
      SGL_CHECK(ctx.effects != nullptr);
      return ctx.effects->Assigned(expr.field, ctx.outer_row)
                 ? ctx.effects->FinalNumber(expr.field, ctx.outer_row)
                 : 0.0;
    }
    case ExprKind::kLocal:
      return ctx.locals->num[static_cast<size_t>(expr.slot)][ctx.outer_row];
    case ExprKind::kRefState: {
      EntityId target = EvalScalarRef(*expr.kids[0], ctx);
      const World::Locator* loc = ctx.world->Find(target);
      if (loc == nullptr) return 0.0;
      if (ctx.overlay != nullptr) {
        const double* v = ctx.overlay->GetNum(loc->cls, loc->row, expr.field);
        if (v != nullptr) return *v;
      }
      return ctx.world->table(loc->cls).Num(expr.field)[loc->row];
    }
    case ExprKind::kUnaryMinus:
      return -EvalScalarNum(*expr.kids[0], ctx);
    case ExprKind::kArith:
      return ApplyArith(expr.arith, EvalScalarNum(*expr.kids[0], ctx),
                        EvalScalarNum(*expr.kids[1], ctx));
    case ExprKind::kCall1:
      return ApplyCall1(expr.call1, EvalScalarNum(*expr.kids[0], ctx));
    case ExprKind::kIf:
      return EvalScalarBool(*expr.kids[0], ctx)
                 ? EvalScalarNum(*expr.kids[1], ctx)
                 : EvalScalarNum(*expr.kids[2], ctx);
    case ExprKind::kClamp: {
      double v = EvalScalarNum(*expr.kids[0], ctx);
      double lo = EvalScalarNum(*expr.kids[1], ctx);
      double hi = EvalScalarNum(*expr.kids[2], ctx);
      return ApplyClamp(v, lo, hi);
    }
    case ExprKind::kSetSize:
      return static_cast<double>(ResolveSetScalar(*expr.kids[0], ctx)->size());
    default:
      SGL_CHECK(false && "expression is not numeric");
  }
  return 0;
}

bool EvalScalarBool(const Expr& expr, const ScalarContext& ctx) {
  switch (expr.kind) {
    case ExprKind::kBoolLit:
      return expr.b;
    case ExprKind::kStateRead: {
      ClassId cls = expr.side == 0 ? ctx.outer_cls : ctx.inner_cls;
      RowIdx row = expr.side == 0 ? ctx.outer_row : ctx.inner_row;
      return ctx.world->table(cls).BoolCol(expr.field)[row] != 0;
    }
    case ExprKind::kEffectRead:
      SGL_CHECK(ctx.effects != nullptr);
      return ctx.effects->Assigned(expr.field, ctx.outer_row) &&
             ctx.effects->FinalBool(expr.field, ctx.outer_row);
    case ExprKind::kAssigned:
      SGL_CHECK(ctx.effects != nullptr);
      return ctx.effects->Assigned(expr.field, ctx.outer_row);
    case ExprKind::kLocal:
      return ctx.locals->bools[static_cast<size_t>(expr.slot)]
                              [ctx.outer_row] != 0;
    case ExprKind::kRefState: {
      EntityId target = EvalScalarRef(*expr.kids[0], ctx);
      const World::Locator* loc = ctx.world->Find(target);
      if (loc == nullptr) return false;
      return ctx.world->table(loc->cls).BoolCol(expr.field)[loc->row] != 0;
    }
    case ExprKind::kNot:
      return !EvalScalarBool(*expr.kids[0], ctx);
    case ExprKind::kCmpNum:
      return ApplyCmp(expr.cmp, EvalScalarNum(*expr.kids[0], ctx),
                      EvalScalarNum(*expr.kids[1], ctx));
    case ExprKind::kCmpRef: {
      bool eq = EvalScalarRef(*expr.kids[0], ctx) ==
                EvalScalarRef(*expr.kids[1], ctx);
      return expr.cmp == CmpOp::kEq ? eq : !eq;
    }
    case ExprKind::kCmpBool: {
      bool eq = EvalScalarBool(*expr.kids[0], ctx) ==
                EvalScalarBool(*expr.kids[1], ctx);
      return expr.cmp == CmpOp::kEq ? eq : !eq;
    }
    case ExprKind::kAndB:
      return EvalScalarBool(*expr.kids[0], ctx) &&
             EvalScalarBool(*expr.kids[1], ctx);
    case ExprKind::kOrB:
      return EvalScalarBool(*expr.kids[0], ctx) ||
             EvalScalarBool(*expr.kids[1], ctx);
    case ExprKind::kIf:
      return EvalScalarBool(*expr.kids[0], ctx)
                 ? EvalScalarBool(*expr.kids[1], ctx)
                 : EvalScalarBool(*expr.kids[2], ctx);
    case ExprKind::kSetContains:
      return ResolveSetScalar(*expr.kids[0], ctx)
          ->Contains(EvalScalarRef(*expr.kids[1], ctx));
    default:
      SGL_CHECK(false && "expression is not boolean");
  }
  return false;
}

EntityId EvalScalarRef(const Expr& expr, const ScalarContext& ctx) {
  switch (expr.kind) {
    case ExprKind::kNullRef:
      return kNullEntity;
    case ExprKind::kStateRead: {
      ClassId cls = expr.side == 0 ? ctx.outer_cls : ctx.inner_cls;
      RowIdx row = expr.side == 0 ? ctx.outer_row : ctx.inner_row;
      if (ctx.overlay != nullptr) {
        const EntityId* v = ctx.overlay->GetRef(cls, row, expr.field);
        if (v != nullptr) return *v;
      }
      return ctx.world->table(cls).RefCol(expr.field)[row];
    }
    case ExprKind::kEffectRead:
      SGL_CHECK(ctx.effects != nullptr);
      return ctx.effects->Assigned(expr.field, ctx.outer_row)
                 ? ctx.effects->FinalRef(expr.field, ctx.outer_row)
                 : kNullEntity;
    case ExprKind::kLocal:
      return ctx.locals->refs[static_cast<size_t>(expr.slot)][ctx.outer_row];
    case ExprKind::kRowId: {
      ClassId cls = expr.side == 0 ? ctx.outer_cls : ctx.inner_cls;
      RowIdx row = expr.side == 0 ? ctx.outer_row : ctx.inner_row;
      return ctx.world->table(cls).id_at(row);
    }
    case ExprKind::kRefState: {
      EntityId target = EvalScalarRef(*expr.kids[0], ctx);
      const World::Locator* loc = ctx.world->Find(target);
      if (loc == nullptr) return kNullEntity;
      if (ctx.overlay != nullptr) {
        const EntityId* v =
            ctx.overlay->GetRef(loc->cls, loc->row, expr.field);
        if (v != nullptr) return *v;
      }
      return ctx.world->table(loc->cls).RefCol(expr.field)[loc->row];
    }
    case ExprKind::kIf:
      return EvalScalarBool(*expr.kids[0], ctx)
                 ? EvalScalarRef(*expr.kids[1], ctx)
                 : EvalScalarRef(*expr.kids[2], ctx);
    default:
      SGL_CHECK(false && "expression is not a reference");
  }
  return kNullEntity;
}

// --------------------------- StateOverlay ------------------------------

void StateOverlay::BeginTick(
    const World& world, const std::vector<std::vector<FieldIdx>>& txn_owned) {
  const Catalog& catalog = world.catalog();
  if (field_map_.empty()) {
    // First tick: lay out one FieldOverlay per (class, txn-owned field).
    // The txn-owned partition is fixed at compile time, so this runs once.
    field_map_.resize(static_cast<size_t>(catalog.num_classes()));
    for (ClassId c = 0; c < catalog.num_classes(); ++c) {
      const ClassDef& def = catalog.Get(c);
      auto& per_class = field_map_[static_cast<size_t>(c)];
      per_class.assign(def.state_fields().size(), -1);
      if (static_cast<size_t>(c) >= txn_owned.size()) continue;
      for (FieldIdx fi : txn_owned[static_cast<size_t>(c)]) {
        per_class[static_cast<size_t>(fi)] =
            static_cast<int32_t>(fields_.size());
        FieldOverlay ov;
        ov.cls = c;
        ov.field = fi;
        ov.kind = def.state_field(fi).type.kind;
        fields_.push_back(std::move(ov));
      }
    }
  }
  for (FieldOverlay& f : fields_) {
    const size_t rows = world.table(f.cls).size();
    if (f.epoch.size() < rows) {
      // Growth only; new rows get epoch 0 (= absent). Shrunk tables keep
      // their larger buffers (rows past size() are simply never addressed).
      f.epoch.resize(rows, 0u);
      switch (f.kind) {
        case TypeKind::kNumber: f.num.resize(rows); break;
        case TypeKind::kRef: f.ref.resize(rows); break;
        case TypeKind::kSet: f.set_slot.resize(rows); break;
        case TypeKind::kBool: break;
      }
    }
  }
}

bool StateOverlay::Touch(FieldOverlay* f, RowIdx row) {
  if (f->epoch[row] == epoch_) return false;
  f->epoch[row] = epoch_;
  touched_.push_back(
      Touched{static_cast<uint32_t>(f - fields_.data()), row});
  return true;
}

double* StateOverlay::MutableNum(ClassId cls, RowIdx row, FieldIdx field,
                                 bool* fresh) {
  FieldOverlay* f = FindField(cls, field);
  SGL_DCHECK(f != nullptr && f->kind == TypeKind::kNumber &&
             row < f->epoch.size());
  *fresh = Touch(f, row);
  return &f->num[row];
}

EntityId* StateOverlay::MutableRef(ClassId cls, RowIdx row, FieldIdx field,
                                   bool* fresh) {
  FieldOverlay* f = FindField(cls, field);
  SGL_DCHECK(f != nullptr && f->kind == TypeKind::kRef &&
             row < f->epoch.size());
  *fresh = Touch(f, row);
  return &f->ref[row];
}

EntitySet* StateOverlay::MutableSet(ClassId cls, RowIdx row, FieldIdx field,
                                    bool* fresh) {
  FieldOverlay* f = FindField(cls, field);
  SGL_DCHECK(f != nullptr && f->kind == TypeKind::kSet &&
             row < f->epoch.size());
  *fresh = Touch(f, row);
  if (*fresh) {
    if (set_pool_used_ == set_pool_.size()) {
      set_pool_.push_back(std::make_unique<EntitySet>());
    }
    EntitySet* s = set_pool_[set_pool_used_].get();
    s->clear();  // pooled slot keeps its high-water capacity
    f->set_slot[row] = static_cast<uint32_t>(set_pool_used_);
    ++set_pool_used_;
    return s;
  }
  return set_pool_[f->set_slot[row]].get();
}

}  // namespace sgl
