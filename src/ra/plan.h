// Physical plan operators — what SGL scripts compile into (§2.1, §4).
//
// A script is a sequence of ops per phase (phases come from waitNextTick
// desugaring, §3.2). The mapping to relational algebra:
//   ComputeLocalsOp      π (extend with computed columns)
//   EffectsOp            σ_guard → π_(target,value) → ⊕-aggregate into effects
//   AccumOp              σ_guard(E) ⋈_pred Inner → γ_(outer;⊕) plus pair
//                        effect writes; the join predicate is decomposed into
//                        d-dim range conjuncts (index-joinable), equality
//                        conjuncts (hash-joinable), and a residual filter
//   TxnEmitOp            σ_guard → transaction-intent emission (§3.1)
//
// AccumOp's physical strategy is the optimizer's main decision knob (§4.1);
// it can be switched between ticks without recompiling anything else.

#ifndef SGL_RA_PLAN_H_
#define SGL_RA_PLAN_H_

#include <memory>
#include <string>
#include <vector>

#include "src/ra/expr.h"
#include "src/schema/combinator.h"

namespace sgl {

/// Physical algorithm for an AccumOp's join.
enum class JoinStrategy : uint8_t {
  kNestedLoop,  ///< scan all inner rows per outer row
  kRangeTree,   ///< orthogonal range tree on the range-predicate dims
  kGrid,        ///< uniform grid on the range-predicate dims
  kHash,        ///< hash the equality-predicate keys
};

const char* JoinStrategyName(JoinStrategy s);

/// Whose effect an EffectWrite targets.
enum class TargetKind : uint8_t {
  kSelf,  ///< the script's own entity
  kIter,  ///< the accum-loop iteration entity (pair context only)
  kRef,   ///< an entity named by a ref expression
};

/// One `target.field <- value` effect assignment with its path condition.
struct EffectWrite {
  ExprPtr guard;  ///< bool; may be null (unconditional)
  TargetKind target_kind = TargetKind::kSelf;
  ExprPtr target_ref;        ///< kRef only: evaluates to the target entity
  ClassId target_cls = kInvalidClass;
  FieldIdx field = kInvalidField;  ///< effect field in target class
  bool set_insert = false;   ///< set-typed: insert the ref `value` (vs union)
  ExprPtr value;             ///< assigned value
  int assign_id = 0;         ///< program-unique; builds first/last order keys
};

/// A let-binding: computes a column for `slot` over the selected rows.
struct LocalDef {
  int slot = -1;
  SglType type;
  ExprPtr value;
};

/// One dimension of an extracted rectangular join predicate:
/// inner.field ∈ [lo(outer), hi(outer)].
struct RangeDim {
  FieldIdx inner_field = kInvalidField;
  ExprPtr lo;  ///< outer-only expr; null means unbounded below
  ExprPtr hi;  ///< outer-only expr; null means unbounded above
};

/// One equality conjunct: inner.field == key(outer).
struct HashDim {
  FieldIdx inner_field = kInvalidField;
  ExprPtr key;  ///< outer-only expr
};

/// An assignment to the accum variable inside BLOCK1 (pair context).
struct AccumAssign {
  ExprPtr guard;  ///< bool over the pair; may be null
  ExprPtr value;
};

/// Base of all plan operators.
struct PlanOp {
  enum class Kind : uint8_t { kComputeLocals, kEffects, kAccum, kTxnEmit };
  explicit PlanOp(Kind k) : kind(k) {}
  virtual ~PlanOp() = default;
  virtual std::string DebugString() const = 0;
  Kind kind;
};

struct ComputeLocalsOp : PlanOp {
  ComputeLocalsOp() : PlanOp(Kind::kComputeLocals) {}
  std::vector<LocalDef> defs;
  std::string DebugString() const override;
};

struct EffectsOp : PlanOp {
  EffectsOp() : PlanOp(Kind::kEffects) {}
  std::vector<EffectWrite> writes;
  std::string DebugString() const override;
};

struct AccumOp : PlanOp {
  AccumOp() : PlanOp(Kind::kAccum) {}

  ExprPtr outer_guard;  ///< narrows the phase selection; may be null

  // Iteration domain: a class extent, or a set-valued state field of self.
  ClassId inner_cls = kInvalidClass;
  FieldIdx inner_set_field = kInvalidField;  ///< kInvalidField = class extent

  // Decomposed join predicate.
  std::vector<RangeDim> range_dims;
  std::vector<HashDim> hash_dims;
  ExprPtr residual;  ///< leftover pair predicate; may be null
  bool exclude_self = false;  ///< predicate implied `it != self`

  // Accumulation into a local slot (read by BLOCK2 ops that follow).
  int accum_slot = -1;
  SglType accum_type;
  Combinator accum_comb = Combinator::kSum;
  std::vector<AccumAssign> accum_assigns;

  // Effect writes inside BLOCK1 (evaluated per matching pair).
  std::vector<EffectWrite> pair_writes;

  // Physical choice — owned by the optimizer, switchable per tick (§4.1).
  JoinStrategy strategy = JoinStrategy::kNestedLoop;
  int site_id = -1;  ///< adaptive-optimizer site identifier

  std::string DebugString() const override;
};

/// What a transaction write does to a txn-owned state field.
enum class TxnWriteOp : uint8_t {
  kAddDelta,   ///< numeric: committed txns add their delta
  kSetInsert,  ///< set: insert an entity
  kSetRemove,  ///< set: remove an entity — the element must be present at
               ///< admission time or the whole transaction aborts (this
               ///< structural rule is what kills duplication bugs, §3.1)
  kSetRef,     ///< ref: overwrite (admission order resolves conflicts)
};

struct TxnWrite {
  TargetKind target_kind = TargetKind::kSelf;
  ExprPtr target_ref;  ///< kRef only
  ClassId target_cls = kInvalidClass;
  FieldIdx state_field = kInvalidField;  ///< txn-owned state field
  TxnWriteOp op = TxnWriteOp::kAddDelta;
  ExprPtr value;  ///< number (delta) or ref (set element)
};

struct TxnEmitOp : PlanOp {
  TxnEmitOp() : PlanOp(Kind::kTxnEmit) {}
  ExprPtr guard;  ///< may be null
  std::string label;
  std::vector<ExprPtr> constraints;  ///< checked on tentative state (§3.1)
  std::vector<TxnWrite> writes;
  /// Numeric state field on the issuing class receiving 1 (committed),
  /// 0 (aborted), or -1 (no transaction issued this tick).
  FieldIdx status_field = kInvalidField;
  int site_id = -1;
  std::string DebugString() const override;
};

/// A fully compiled script: per-phase op lists plus PC bookkeeping.
struct CompiledScript {
  std::string name;
  ClassId cls = kInvalidClass;
  /// Multi-phase only (waitNextTick): the implicit program-counter state
  /// field and its next-value effect field. kInvalidField when one phase.
  FieldIdx pc_state = kInvalidField;
  FieldIdx pc_effect = kInvalidField;
  std::vector<std::vector<std::unique_ptr<PlanOp>>> phases;
  std::vector<SglType> local_types;  ///< slot -> type

  int num_phases() const { return static_cast<int>(phases.size()); }
};

/// A compiled reactive handler (§3.2): condition + ops, run set-at-a-time.
struct CompiledHandler {
  std::string name;
  ClassId cls = kInvalidClass;
  ExprPtr cond;
  std::vector<std::unique_ptr<PlanOp>> ops;
  std::vector<SglType> local_types;
};

/// One update rule: state_field = value(state, effects) (§2.2).
struct UpdateRule {
  ClassId cls = kInvalidClass;
  FieldIdx state_field = kInvalidField;
  ExprPtr value;
};

/// Renders an op list as an indented plan tree (EXPLAIN).
std::string ExplainOps(const std::vector<std::unique_ptr<PlanOp>>& ops);

}  // namespace sgl

#endif  // SGL_RA_PLAN_H_
