#include "src/schema/combinator.h"

#include <limits>

namespace sgl {

const char* CombinatorName(Combinator c) {
  switch (c) {
    case Combinator::kSum: return "sum";
    case Combinator::kAvg: return "avg";
    case Combinator::kMin: return "min";
    case Combinator::kMax: return "max";
    case Combinator::kCount: return "count";
    case Combinator::kOr: return "or";
    case Combinator::kAnd: return "and";
    case Combinator::kFirst: return "first";
    case Combinator::kLast: return "last";
    case Combinator::kUnion: return "union";
  }
  return "?";
}

std::optional<Combinator> CombinatorFromName(const std::string& name) {
  if (name == "sum") return Combinator::kSum;
  if (name == "avg") return Combinator::kAvg;
  if (name == "min") return Combinator::kMin;
  if (name == "max") return Combinator::kMax;
  if (name == "count") return Combinator::kCount;
  if (name == "or") return Combinator::kOr;
  if (name == "and") return Combinator::kAnd;
  if (name == "first") return Combinator::kFirst;
  if (name == "last") return Combinator::kLast;
  if (name == "union") return Combinator::kUnion;
  return std::nullopt;
}

bool CombinatorValidFor(Combinator c, const SglType& type) {
  switch (c) {
    case Combinator::kSum:
    case Combinator::kAvg:
    case Combinator::kMin:
    case Combinator::kMax:
    case Combinator::kCount:
      return type.is_number();
    case Combinator::kOr:
    case Combinator::kAnd:
      return type.is_bool();
    case Combinator::kFirst:
    case Combinator::kLast:
      return !type.is_set();  // any scalar (number, bool, ref)
    case Combinator::kUnion:
      return type.is_set();
  }
  return false;
}

double NumericIdentity(Combinator c) {
  switch (c) {
    case Combinator::kMin:
      return std::numeric_limits<double>::infinity();
    case Combinator::kMax:
      return -std::numeric_limits<double>::infinity();
    default:
      return 0.0;
  }
}

double CombineNumeric(Combinator c, double acc, double value) {
  switch (c) {
    case Combinator::kSum:
    case Combinator::kAvg:
      return acc + value;
    case Combinator::kMin:
      return value < acc ? value : acc;
    case Combinator::kMax:
      return value > acc ? value : acc;
    case Combinator::kCount:
      return acc + 1.0;
    default:
      return value;
  }
}

std::optional<double> FinalizeNumeric(Combinator c, double acc,
                                      uint64_t count) {
  if (count == 0) return std::nullopt;
  if (c == Combinator::kAvg) return acc / static_cast<double>(count);
  return acc;
}

}  // namespace sgl
