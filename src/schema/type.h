// SGL's type system: number, bool, ref<C>, set<C> (§2.1).
//
// Reference and set types name a target class; the name is resolved to a
// ClassId when the catalog is finalized (classes may be declared in any
// order, including mutual references).

#ifndef SGL_SCHEMA_TYPE_H_
#define SGL_SCHEMA_TYPE_H_

#include <string>

#include "src/common/types.h"
#include "src/common/value.h"

namespace sgl {

/// The four SGL value categories.
enum class TypeKind : uint8_t { kNumber, kBool, kRef, kSet };

/// Name of a TypeKind ("number", "bool", "ref", "set").
const char* TypeKindName(TypeKind kind);

/// A (possibly parameterized) SGL type. For kRef/kSet, `target_name` holds
/// the referenced class's name and `target` its resolved id (kInvalidClass
/// until Catalog::Finalize runs).
struct SglType {
  TypeKind kind = TypeKind::kNumber;
  std::string target_name;          ///< Class name for ref<>/set<>.
  ClassId target = kInvalidClass;   ///< Resolved by Catalog::Finalize.

  static SglType Number() { return {TypeKind::kNumber, "", kInvalidClass}; }
  static SglType Bool() { return {TypeKind::kBool, "", kInvalidClass}; }
  static SglType Ref(std::string cls) {
    return {TypeKind::kRef, std::move(cls), kInvalidClass};
  }
  static SglType Set(std::string cls) {
    return {TypeKind::kSet, std::move(cls), kInvalidClass};
  }

  bool is_number() const { return kind == TypeKind::kNumber; }
  bool is_bool() const { return kind == TypeKind::kBool; }
  bool is_ref() const { return kind == TypeKind::kRef; }
  bool is_set() const { return kind == TypeKind::kSet; }

  /// True if two types are interchangeable (same kind; same target for
  /// ref/set, compared by name before resolution).
  bool Same(const SglType& other) const {
    if (kind != other.kind) return false;
    if (kind == TypeKind::kRef || kind == TypeKind::kSet) {
      return target_name == other.target_name;
    }
    return true;
  }

  /// "number", "ref<Unit>", ...
  std::string ToString() const;

  /// The zero/default Value of this type (0, false, null, {}).
  Value DefaultValue() const;
};

}  // namespace sgl

#endif  // SGL_SCHEMA_TYPE_H_
