#include "src/schema/layout.h"

#include <algorithm>

namespace sgl {

const char* LayoutStrategyName(LayoutStrategy s) {
  switch (s) {
    case LayoutStrategy::kUnified: return "unified";
    case LayoutStrategy::kPerField: return "per-field";
    case LayoutStrategy::kAffinity: return "affinity";
  }
  return "?";
}

ColumnGrouping ComputeGrouping(const ClassDef& cls, LayoutStrategy strategy,
                               const AffinityMatrix* affinity,
                               int max_group_size) {
  std::vector<FieldIdx> numeric;
  for (const FieldDef& f : cls.state_fields()) {
    if (f.type.is_number()) numeric.push_back(f.index);
  }
  ColumnGrouping out;
  if (numeric.empty()) return out;

  switch (strategy) {
    case LayoutStrategy::kUnified:
      out.groups.push_back(numeric);
      return out;
    case LayoutStrategy::kPerField:
      for (FieldIdx f : numeric) out.groups.push_back({f});
      return out;
    case LayoutStrategy::kAffinity:
      break;
  }

  // Affinity: start with singletons, greedily merge the highest-affinity
  // pair whose merged size fits, until no positive-affinity pair remains.
  if (affinity == nullptr ||
      affinity->counts.size() < cls.state_fields().size()) {
    out.groups.push_back(numeric);  // No data: behave like kUnified.
    return out;
  }
  std::vector<std::vector<FieldIdx>> groups;
  for (FieldIdx f : numeric) groups.push_back({f});

  auto cross_affinity = [&](const std::vector<FieldIdx>& a,
                            const std::vector<FieldIdx>& b) {
    double total = 0;
    for (FieldIdx i : a) {
      for (FieldIdx j : b) {
        total += affinity->counts[static_cast<size_t>(i)]
                                 [static_cast<size_t>(j)];
      }
    }
    return total;
  };

  for (;;) {
    double best = 0;
    int bi = -1, bj = -1;
    for (size_t i = 0; i < groups.size(); ++i) {
      for (size_t j = i + 1; j < groups.size(); ++j) {
        if (static_cast<int>(groups[i].size() + groups[j].size()) >
            max_group_size) {
          continue;
        }
        double a = cross_affinity(groups[i], groups[j]);
        if (a > best) {
          best = a;
          bi = static_cast<int>(i);
          bj = static_cast<int>(j);
        }
      }
    }
    if (bi < 0) break;
    auto& gi = groups[static_cast<size_t>(bi)];
    auto& gj = groups[static_cast<size_t>(bj)];
    gi.insert(gi.end(), gj.begin(), gj.end());
    std::sort(gi.begin(), gi.end());
    groups.erase(groups.begin() + bj);
  }
  out.groups = std::move(groups);
  return out;
}

}  // namespace sgl
