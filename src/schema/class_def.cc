#include "src/schema/class_def.h"

namespace sgl {

namespace {
bool ValueMatchesType(const Value& v, const SglType& t) {
  switch (t.kind) {
    case TypeKind::kNumber: return v.is_number();
    case TypeKind::kBool: return v.is_bool();
    case TypeKind::kRef: return v.is_ref();
    case TypeKind::kSet: return v.is_set();
  }
  return false;
}
}  // namespace

Status ClassDef::AddState(const std::string& name, SglType type,
                          Value default_value) {
  if (state_by_name_.count(name) || effect_by_name_.count(name)) {
    return Status::AlreadyExists("field '" + name + "' already declared in '" +
                                 name_ + "'");
  }
  if (!ValueMatchesType(default_value, type)) {
    return Status::InvalidArgument("default for '" + name +
                                   "' does not match type " + type.ToString());
  }
  FieldDef f;
  f.name = name;
  f.type = std::move(type);
  f.is_state = true;
  f.default_value = std::move(default_value);
  f.index = static_cast<FieldIdx>(state_.size());
  state_by_name_[name] = f.index;
  state_.push_back(std::move(f));
  return Status::OK();
}

Status ClassDef::AddState(const std::string& name, SglType type) {
  Value def = type.DefaultValue();
  return AddState(name, std::move(type), std::move(def));
}

Status ClassDef::AddEffect(const std::string& name, SglType type,
                           Combinator comb) {
  if (state_by_name_.count(name) || effect_by_name_.count(name)) {
    return Status::AlreadyExists("field '" + name + "' already declared in '" +
                                 name_ + "'");
  }
  if (!CombinatorValidFor(comb, type)) {
    return Status::SemanticError("combinator '" +
                                 std::string(CombinatorName(comb)) +
                                 "' is invalid for type " + type.ToString());
  }
  FieldDef f;
  f.name = name;
  f.type = std::move(type);
  f.is_state = false;
  f.combinator = comb;
  f.index = static_cast<FieldIdx>(effects_.size());
  effect_by_name_[name] = f.index;
  effects_.push_back(std::move(f));
  return Status::OK();
}

FieldIdx ClassDef::FindState(const std::string& name) const {
  auto it = state_by_name_.find(name);
  return it == state_by_name_.end() ? kInvalidField : it->second;
}

FieldIdx ClassDef::FindEffect(const std::string& name) const {
  auto it = effect_by_name_.find(name);
  return it == effect_by_name_.end() ? kInvalidField : it->second;
}

}  // namespace sgl
