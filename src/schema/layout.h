// Physical layout strategies for generated schemas (§2.1).
//
// The paper observes that because the compiler owns the schema, it can pick
// the representation: "it is often best to break a class up into multiple
// tables containing those attributes that commonly appear in expressions
// together. In other cases it is preferable to construct a single table."
// We realize this as column *groups* inside one entity table: a group's
// numeric columns are interleaved (array-of-structs within the group), so
// attributes read together share cache lines.

#ifndef SGL_SCHEMA_LAYOUT_H_
#define SGL_SCHEMA_LAYOUT_H_

#include <vector>

#include "src/schema/class_def.h"

namespace sgl {

/// How numeric state columns are grouped in storage.
enum class LayoutStrategy {
  kUnified,    ///< One interleaved group with every numeric state field.
  kPerField,   ///< Pure columnar: each field its own contiguous array.
  kAffinity,   ///< Greedy grouping by attribute co-occurrence in scripts.
};

const char* LayoutStrategyName(LayoutStrategy s);

/// Symmetric attribute-affinity matrix over a class's numeric *state* fields:
/// affinity[i][j] counts how often state fields i and j appear in the same
/// compiled expression. Produced by the compiler, consumed here.
struct AffinityMatrix {
  /// counts[i][j] == counts[j][i]; diagonal = field's total appearances.
  std::vector<std::vector<double>> counts;
};

/// Partition of a class's numeric state-field indices into storage groups.
struct ColumnGrouping {
  /// Each inner vector lists state FieldIdx values stored interleaved.
  /// Every numeric state field appears in exactly one group. Non-numeric
  /// fields (bool/ref/set) are always stored per-field.
  std::vector<std::vector<FieldIdx>> groups;
};

/// Computes the grouping for `cls` under `strategy`. `affinity` is required
/// for kAffinity (greedy agglomeration: repeatedly merge the pair of groups
/// with the highest cross-affinity until no pair exceeds zero or groups
/// would exceed `max_group_size` fields).
ColumnGrouping ComputeGrouping(const ClassDef& cls, LayoutStrategy strategy,
                               const AffinityMatrix* affinity = nullptr,
                               int max_group_size = 8);

}  // namespace sgl

#endif  // SGL_SCHEMA_LAYOUT_H_
