#include "src/schema/type.h"

namespace sgl {

const char* TypeKindName(TypeKind kind) {
  switch (kind) {
    case TypeKind::kNumber: return "number";
    case TypeKind::kBool: return "bool";
    case TypeKind::kRef: return "ref";
    case TypeKind::kSet: return "set";
  }
  return "?";
}

std::string SglType::ToString() const {
  switch (kind) {
    case TypeKind::kNumber: return "number";
    case TypeKind::kBool: return "bool";
    case TypeKind::kRef: return "ref<" + target_name + ">";
    case TypeKind::kSet: return "set<" + target_name + ">";
  }
  return "?";
}

Value SglType::DefaultValue() const {
  switch (kind) {
    case TypeKind::kNumber: return Value::Number(0.0);
    case TypeKind::kBool: return Value::Bool(false);
    case TypeKind::kRef: return Value::Ref(kNullEntity);
    case TypeKind::kSet: return Value::Set(EntitySet());
  }
  return Value::Number(0.0);
}

}  // namespace sgl
