// Class definitions: the SGL replacement for SQL schemas (§2.1, Fig. 1).
//
// A class declares state variables (read-only during a tick, updated by
// exactly one update component) and effect variables (write-only during a
// tick, each with a ⊕ combinator). The relational schema is *generated*
// from these definitions — the programmer never sees tables.

#ifndef SGL_SCHEMA_CLASS_DEF_H_
#define SGL_SCHEMA_CLASS_DEF_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/status.h"
#include "src/common/value.h"
#include "src/schema/combinator.h"
#include "src/schema/type.h"

namespace sgl {

/// One state or effect variable of a class.
struct FieldDef {
  std::string name;
  SglType type;
  bool is_state = true;
  /// Effects only: how concurrent writes combine.
  Combinator combinator = Combinator::kSum;
  /// State only: initial value for newly spawned entities.
  Value default_value;
  /// Position within the class's state (or effect) field list.
  FieldIdx index = kInvalidField;
  /// State only: name of the update component that owns this field.
  /// Empty means the default expression updater. Assigned during engine
  /// component registration; disjointness is enforced there (§2.2).
  std::string owner;
};

/// A complete class definition. Build with AddState/AddEffect, then register
/// with a Catalog, which resolves ref/set targets and assigns the ClassId.
class ClassDef {
 public:
  explicit ClassDef(std::string name) : name_(std::move(name)) {}

  /// Declares a state variable with a default value. Fails on duplicate
  /// names (across both sections) or a default of the wrong kind.
  Status AddState(const std::string& name, SglType type, Value default_value);

  /// Declares a state variable defaulting to the type's zero value.
  Status AddState(const std::string& name, SglType type);

  /// Declares an effect variable. Fails on duplicate names or a combinator
  /// that is invalid for the type.
  Status AddEffect(const std::string& name, SglType type, Combinator comb);

  const std::string& name() const { return name_; }
  ClassId id() const { return id_; }

  const std::vector<FieldDef>& state_fields() const { return state_; }
  const std::vector<FieldDef>& effect_fields() const { return effects_; }

  /// Index of a state field, or kInvalidField.
  FieldIdx FindState(const std::string& name) const;
  /// Index of an effect field, or kInvalidField.
  FieldIdx FindEffect(const std::string& name) const;

  const FieldDef& state_field(FieldIdx i) const {
    return state_[static_cast<size_t>(i)];
  }
  const FieldDef& effect_field(FieldIdx i) const {
    return effects_[static_cast<size_t>(i)];
  }

  FieldDef* mutable_state_field(FieldIdx i) {
    return &state_[static_cast<size_t>(i)];
  }

 private:
  friend class Catalog;

  std::string name_;
  ClassId id_ = kInvalidClass;
  std::vector<FieldDef> state_;
  std::vector<FieldDef> effects_;
  std::unordered_map<std::string, FieldIdx> state_by_name_;
  std::unordered_map<std::string, FieldIdx> effect_by_name_;
};

}  // namespace sgl

#endif  // SGL_SCHEMA_CLASS_DEF_H_
