// Catalog: the registry of all class definitions in a game.
//
// Compiling SGL class declarations into this catalog is the schema-generation
// step of §2.1 — the programmer writes classes, the system derives tables.

#ifndef SGL_SCHEMA_CATALOG_H_
#define SGL_SCHEMA_CATALOG_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/status.h"
#include "src/schema/class_def.h"

namespace sgl {

/// Owns every ClassDef, assigns ClassIds, and resolves ref<>/set<> targets.
class Catalog {
 public:
  Catalog() = default;
  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;
  Catalog(Catalog&&) = default;
  Catalog& operator=(Catalog&&) = default;

  /// Registers a class. Fails on duplicate name.
  StatusOr<ClassId> Register(ClassDef def);

  /// Resolves every ref<C>/set<C> target name to a ClassId. Fails if a
  /// target class does not exist. Idempotent; call after all Register()s.
  Status Finalize();

  bool finalized() const { return finalized_; }

  /// ClassId for a name, or kInvalidClass.
  ClassId Find(const std::string& name) const;

  const ClassDef& Get(ClassId id) const {
    SGL_CHECK(id >= 0 && static_cast<size_t>(id) < classes_.size());
    return *classes_[static_cast<size_t>(id)];
  }
  ClassDef* GetMutable(ClassId id) {
    SGL_CHECK(id >= 0 && static_cast<size_t>(id) < classes_.size());
    return classes_[static_cast<size_t>(id)].get();
  }

  int num_classes() const { return static_cast<int>(classes_.size()); }

 private:
  std::vector<std::unique_ptr<ClassDef>> classes_;
  std::unordered_map<std::string, ClassId> by_name_;
  bool finalized_ = false;
};

}  // namespace sgl

#endif  // SGL_SCHEMA_CATALOG_H_
