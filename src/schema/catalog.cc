#include "src/schema/catalog.h"

namespace sgl {

StatusOr<ClassId> Catalog::Register(ClassDef def) {
  if (by_name_.count(def.name())) {
    return Status::AlreadyExists("class '" + def.name() +
                                 "' already registered");
  }
  ClassId id = static_cast<ClassId>(classes_.size());
  def.id_ = id;
  by_name_[def.name()] = id;
  classes_.push_back(std::make_unique<ClassDef>(std::move(def)));
  finalized_ = false;
  return id;
}

Status Catalog::Finalize() {
  for (auto& cls : classes_) {
    auto resolve = [&](std::vector<FieldDef>& fields) -> Status {
      for (FieldDef& f : fields) {
        if (f.type.kind != TypeKind::kRef && f.type.kind != TypeKind::kSet) {
          continue;
        }
        ClassId target = Find(f.type.target_name);
        if (target == kInvalidClass) {
          return Status::NotFound("class '" + f.type.target_name +
                                  "' referenced by field '" + cls->name() +
                                  "." + f.name + "' does not exist");
        }
        f.type.target = target;
      }
      return Status::OK();
    };
    SGL_RETURN_IF_ERROR(resolve(cls->state_));
    SGL_RETURN_IF_ERROR(resolve(cls->effects_));
  }
  finalized_ = true;
  return Status::OK();
}

ClassId Catalog::Find(const std::string& name) const {
  auto it = by_name_.find(name);
  return it == by_name_.end() ? kInvalidClass : it->second;
}

}  // namespace sgl
