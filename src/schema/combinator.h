// Effect combinators — the ⊕ operators of the state-effect pattern (§2).
//
// Every effect variable declares how concurrent writes within a tick are
// combined. Combination must be order-insensitive, which is what licenses
// the engine to reorder and parallelize effect computation. `first`/`last`
// are made order-insensitive by attaching an explicit deterministic order
// key (script row, statement sequence) to every assignment.

#ifndef SGL_SCHEMA_COMBINATOR_H_
#define SGL_SCHEMA_COMBINATOR_H_

#include <optional>
#include <string>

#include "src/common/status.h"
#include "src/schema/type.h"

namespace sgl {

/// The built-in ⊕ combinators.
enum class Combinator : uint8_t {
  kSum,    ///< number: arithmetic sum
  kAvg,    ///< number: arithmetic mean of all assignments
  kMin,    ///< number: minimum
  kMax,    ///< number: maximum
  kCount,  ///< number: number of assignments (value ignored)
  kOr,     ///< bool: logical or
  kAnd,    ///< bool: logical and
  kFirst,  ///< any scalar: value with smallest deterministic order key
  kLast,   ///< any scalar: value with largest deterministic order key
  kUnion,  ///< set: set union (single-element inserts or whole sets)
};

/// Lowercase keyword for the combinator ("sum", "avg", ...).
const char* CombinatorName(Combinator c);

/// Parses a combinator keyword; nullopt if unknown.
std::optional<Combinator> CombinatorFromName(const std::string& name);

/// Whether combinator `c` is legal for an effect variable of type `type`.
bool CombinatorValidFor(Combinator c, const SglType& type);

/// Identity element for numeric combinators (what an unassigned accumulator
/// holds): 0 for sum/count/avg-sum, +inf for min, -inf for max.
double NumericIdentity(Combinator c);

/// Folds one numeric assignment into an accumulator.
/// For kAvg the caller tracks counts separately and finalizes with
/// FinalizeNumeric. For kCount the value is ignored.
double CombineNumeric(Combinator c, double acc, double value);

/// Finalizes a numeric accumulator given the number of assignments.
/// Returns the field's post-merge value, or nullopt when count == 0
/// (meaning "no assignment this tick" — the update rule sees `assigned`
/// = false and typically keeps the old state).
std::optional<double> FinalizeNumeric(Combinator c, double acc,
                                      uint64_t count);

}  // namespace sgl

#endif  // SGL_SCHEMA_COMBINATOR_H_
