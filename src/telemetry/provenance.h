// Provenance queries over the flight recorder's ring: "why did this value
// change?" (§3.3 — the state-effect pattern makes every write an explicit,
// ordered record, so causality is a query, not a debugging session).
//
// WhyDidChange(entity, field, tick) returns the causal chain for one
// (entity, field) in one tick: every recorded write targeting it — site id,
// ⊕/intent order key, transaction id, writing source rows — in canonical
// order, plus the field's value before (the latest earlier in-ring
// after-value) and after the tick. ExplainTick(t) returns the tick's
// per-phase / per-site breakdown with per-site record counts.
//
// Both answer from flat per-frame indexes: a sorted permutation of the
// frame's records keyed by (target, field) — CSR-style, one contiguous run
// per written field — built lazily per frame *off the hot path* and cached
// by frame sequence number, so repeated queries over one frame binary-search
// instead of rescanning. Correctness is verified differentially against a
// brute-force scan of the full effect stream (tests/telemetry_flight_test).
//
// Eviction is honest: a tick that fell off the ring reports kEvicted, never
// a wrong or partial chain; a frame that truncated records reports
// kTruncated.

#ifndef SGL_TELEMETRY_PROVENANCE_H_
#define SGL_TELEMETRY_PROVENANCE_H_

#include <cstdint>
#include <vector>

#include "src/telemetry/flight_recorder.h"

namespace sgl {

/// Query outcome.
enum class ProvStatus : uint8_t {
  kOk = 0,
  kEvicted,      ///< tick older than the ring window (wrap or restore)
  kNotRecorded,  ///< tick never captured (future, disarmed, or gap)
  kTruncated,    ///< frame dropped records; the chain may be incomplete
  kNoWrites,     ///< frame present, nothing wrote this (entity, field)
};

const char* ProvStatusName(ProvStatus s);

/// One writing record in a causal chain.
struct ProvStep {
  Tick tick = -1;
  int32_t site = -1;          ///< accum site id; -1 = plan-level / txn write
  int assign_id = 0;          ///< rule/assign id within the site (or intent
                              ///< write index for txn steps)
  uint64_t order_key = 0;     ///< deterministic ⊕ key / txn intent key
  bool is_txn = false;        ///< true: transaction write-back (state field)
  int64_t txn = -1;           ///< intent order key when is_txn
  int32_t src_shard = 0;      ///< topology attribution, NOT causal content
  EntityId src_outer = kNullEntity;  ///< issuing/outer source row
  EntityId src_inner = kNullEntity;  ///< inner join row (kNullEntity = none)
  /// The contribution (the ⊕ operand / intent delta), not the final value.
  ValueKind contrib_kind = ValueKind::kNumber;
  double contrib_num = 0.0;
  bool contrib_bool = false;
  EntityId contrib_ref = kNullEntity;
  int64_t contrib_set_size = -1;  ///< only for set-typed contributions
};

/// A resolved field value (before/after snapshots in query results).
struct ProvValue {
  bool known = false;
  TypeKind kind = TypeKind::kNumber;
  double num = 0.0;
  bool b = false;
  EntityId ref = kNullEntity;
  int64_t set_size = -1;
};

/// WhyDidChange result: the canonical chain plus before/after.
struct WhyResult {
  ProvStatus status = ProvStatus::kNotRecorded;
  Tick tick = -1;
  EntityId entity = kNullEntity;
  FieldIdx field = kInvalidField;
  /// Value before the tick: the latest earlier in-ring after-value for the
  /// same (entity, field); unknown when no earlier frame wrote it.
  ProvValue before;
  /// Value after the tick (the last chain step's resolved after-value).
  ProvValue after;
  std::vector<ProvStep> steps;  ///< canonical order
};

/// Per-site row of an ExplainTick breakdown.
struct ExplainSiteRow {
  int site = -1;  ///< -1 aggregates plan-level / txn records
  int64_t records = 0;        ///< effect records attributed to the site
  int64_t micros = 0;         ///< from the site's feedback row (if any)
  int64_t outer_rows = 0;
  int64_t matches = 0;
  int64_t effects = 0;
};

/// ExplainTick result: the frame's phase timings and per-site breakdown.
struct ExplainResult {
  ProvStatus status = ProvStatus::kNotRecorded;
  Tick tick = -1;
  int64_t total_micros = 0;
  int64_t query_effect_micros = 0;
  int64_t merge_micros = 0;
  int64_t update_micros = 0;
  int64_t probe_micros = 0;
  int64_t barrier_stall_us = -1;
  int64_t imbalance_bp = 0;
  int64_t cross_shard_records = 0;
  int64_t txn_issued = 0;
  int64_t txn_committed = 0;
  int64_t txn_aborted = 0;
  int64_t num_records = 0;
  int64_t dropped_records = 0;
  std::vector<ExplainSiteRow> sites;  ///< ascending by site id, -1 first
};

/// Query front-end over one FlightRecorder. Owns the lazy per-frame
/// indexes; the recorder must outlive it. Queries run off the hot path
/// (between ticks) and may allocate.
class ProvenanceIndex {
 public:
  explicit ProvenanceIndex(const FlightRecorder* recorder);

  /// The causal chain for (entity, field) in `tick`. `field` matches both
  /// namespaces (effect fields for query-phase ⊕ writes, state fields for
  /// transaction write-backs); steps carry `is_txn` to discriminate.
  WhyResult WhyDidChange(EntityId entity, FieldIdx field, Tick tick) const;

  /// Per-phase and per-site breakdown of `tick`.
  ExplainResult ExplainTick(Tick tick) const;

 private:
  /// Sorted-permutation index of one frame: record positions ordered by
  /// (target, field); one contiguous run per written field (flat CSR).
  struct FrameIndex {
    uint64_t seq = ~uint64_t{0};
    Tick tick = -1;
    std::vector<uint32_t> perm;
  };

  /// Index for the frame holding `tick` (built on first touch, cached by
  /// frame seq); nullptr with `*status` set when the frame is unavailable.
  const FrameIndex* IndexFor(const TickFrame** frame_out, Tick tick,
                             ProvStatus* status) const;
  /// Classifies an absent tick as evicted vs never recorded.
  ProvStatus ClassifyMiss(Tick tick) const;

  const FlightRecorder* rec_;
  mutable std::vector<FrameIndex> cache_;  ///< one slot per ring slot
};

}  // namespace sgl

#endif  // SGL_TELEMETRY_PROVENANCE_H_
