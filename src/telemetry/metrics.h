// MetricsRegistry: named counters, gauges, and log2-bucketed histograms
// with an allocation-free record path (src/telemetry/).
//
// The registry replaces TickStats' flat bag of per-tick micros as the
// *primary* store of latency series (TickStats stays as a compatibility
// view): histograms keep full distributions, so the p50/p95/p99 the
// ROADMAP's scaling items need — tick, probe, job-wait, barrier-stall —
// are one Snapshot() away instead of being averaged out of existence
// (PR 8's ~45% run-to-run noise went undiagnosed for exactly this
// reason).
//
// Contracts:
//   * Registration (Register*) happens at setup time, single-threaded —
//     the executors register their standard series in the Telemetry
//     constructor. The record path indexes a stable cell by MetricId and
//     never takes a lock or allocates.
//   * Count / Set / Record are safe from any thread (relaxed atomics; a
//     histogram cell is 64 bucket counters + count/sum/min/max).
//   * Snapshot() is off the hot path: it copies every cell into plain
//     structs (allocating freely) and computes percentiles there. Under
//     concurrent recording the copy is approximate (per-cell torn reads
//     across fields), which is the standard trade for a lock-free
//     recorder.
//
// Histogram buckets are powers of two: bucket 0 holds v <= 0, bucket b
// (1..62) holds [2^(b-1), 2^b), bucket 63 is the overflow tail. A
// percentile query therefore has bucket-granularity accuracy;
// PercentileBounds() exposes the exact bucket range so tests can assert a
// sorted-reference percentile falls inside it.

#ifndef SGL_TELEMETRY_METRICS_H_
#define SGL_TELEMETRY_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <vector>

namespace sgl {

/// Index into one kind's cell table (counters, gauges, and histograms
/// each have their own id space).
using MetricId = int;

inline constexpr int kHistogramBuckets = 64;

/// Bucket index for a recorded value: 0 for v <= 0, else 1 + floor(log2 v)
/// capped at the overflow tail.
inline int HistogramBucketIndex(int64_t v) {
  if (v <= 0) return 0;
  const int b = 64 - __builtin_clzll(static_cast<uint64_t>(v));
  return b < kHistogramBuckets ? b : kHistogramBuckets - 1;
}

/// Inclusive value range covered by bucket `b`.
inline int64_t HistogramBucketLo(int b) {
  return b == 0 ? 0 : int64_t{1} << (b - 1);
}
inline int64_t HistogramBucketHi(int b) {
  if (b == 0) return 0;
  if (b >= kHistogramBuckets - 1) return std::numeric_limits<int64_t>::max();
  return (int64_t{1} << b) - 1;
}

/// Plain-struct copy of one histogram, with percentile queries.
struct HistogramSnapshot {
  std::string name;
  int64_t count = 0;
  int64_t sum = 0;
  int64_t min = 0;
  int64_t max = 0;
  std::array<int64_t, kHistogramBuckets> buckets{};

  /// Nearest-rank percentile (p in [0, 100]), linearly interpolated
  /// inside the landing bucket and clamped to [min, max]. 0 when empty.
  double Percentile(double p) const;
  /// The inclusive bucket range containing the nearest-rank element —
  /// the registry's accuracy contract. False when empty.
  bool PercentileBounds(double p, int64_t* lo, int64_t* hi) const;
  double mean() const { return count > 0 ? static_cast<double>(sum) /
                                               static_cast<double>(count)
                                         : 0.0; }
};

/// Off-hot-path copy of the whole registry.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, int64_t>> counters;
  std::vector<std::pair<std::string, int64_t>> gauges;
  std::vector<HistogramSnapshot> histograms;

  /// Histogram by name; nullptr when absent.
  const HistogramSnapshot* Find(const std::string& name) const;
  /// Counter/gauge by name; `fallback` when absent.
  int64_t Counter(const std::string& name, int64_t fallback = 0) const;
  int64_t Gauge(const std::string& name, int64_t fallback = 0) const;
  /// Human-readable table: one line per series, histograms with
  /// n/mean/p50/p95/p99/max.
  std::string Describe() const;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Find-or-create by name. Setup-time only (see header comment): the
  /// cell tables must not grow while another thread records.
  MetricId RegisterCounter(const std::string& name);
  MetricId RegisterGauge(const std::string& name);
  MetricId RegisterHistogram(const std::string& name);

  /// Record paths: lock-free, allocation-free, any thread.
  void Count(MetricId id, int64_t delta) {
    counters_[static_cast<size_t>(id)]->value.fetch_add(
        delta, std::memory_order_relaxed);
  }
  void Set(MetricId id, int64_t value) {
    gauges_[static_cast<size_t>(id)]->value.store(value,
                                                  std::memory_order_relaxed);
  }
  void Record(MetricId id, int64_t value);

  MetricsSnapshot Snapshot() const;

  /// Zeroes every registered cell (counters/gauges to 0, histograms to
  /// empty) while keeping registrations and MetricIds valid — phase
  /// boundaries in benchmarks reset between phases instead of rebuilding
  /// the registry. Quiescent-point API: no concurrent recording.
  void Reset();

 private:
  struct CounterCell {
    std::string name;
    std::atomic<int64_t> value{0};
  };
  struct HistogramCell {
    std::string name;
    std::atomic<int64_t> count{0};
    std::atomic<int64_t> sum{0};
    std::atomic<int64_t> min{std::numeric_limits<int64_t>::max()};
    std::atomic<int64_t> max{std::numeric_limits<int64_t>::min()};
    std::array<std::atomic<int64_t>, kHistogramBuckets> buckets{};
  };

  std::vector<std::unique_ptr<CounterCell>> counters_;
  std::vector<std::unique_ptr<CounterCell>> gauges_;
  std::vector<std::unique_ptr<HistogramCell>> histograms_;
};

}  // namespace sgl

#endif  // SGL_TELEMETRY_METRICS_H_
