#include "src/telemetry/metrics.h"

#include <algorithm>
#include <cstdio>

namespace sgl {

double HistogramSnapshot::Percentile(double p) const {
  if (count <= 0) return 0.0;
  p = std::min(100.0, std::max(0.0, p));
  // Nearest rank, 1-based: the smallest r with cumulative(r) >= p% of n.
  int64_t rank = static_cast<int64_t>(p / 100.0 * static_cast<double>(count));
  if (rank < 1) rank = 1;
  if (rank > count) rank = count;
  int64_t cum = 0;
  for (int b = 0; b < kHistogramBuckets; ++b) {
    const int64_t n = buckets[static_cast<size_t>(b)];
    if (n == 0) continue;
    if (cum + n >= rank) {
      const double lo = static_cast<double>(HistogramBucketLo(b));
      double hi = static_cast<double>(HistogramBucketHi(b));
      // The overflow tail has no real upper edge; max is the honest one.
      if (b >= kHistogramBuckets - 1) hi = static_cast<double>(max);
      const double frac =
          (static_cast<double>(rank - cum) - 0.5) / static_cast<double>(n);
      double v = lo + (hi - lo) * std::min(1.0, std::max(0.0, frac));
      v = std::min(v, static_cast<double>(max));
      v = std::max(v, static_cast<double>(min));
      return v;
    }
    cum += n;
  }
  return static_cast<double>(max);
}

bool HistogramSnapshot::PercentileBounds(double p, int64_t* lo,
                                         int64_t* hi) const {
  if (count <= 0) return false;
  p = std::min(100.0, std::max(0.0, p));
  int64_t rank = static_cast<int64_t>(p / 100.0 * static_cast<double>(count));
  if (rank < 1) rank = 1;
  if (rank > count) rank = count;
  int64_t cum = 0;
  for (int b = 0; b < kHistogramBuckets; ++b) {
    const int64_t n = buckets[static_cast<size_t>(b)];
    if (n == 0) continue;
    if (cum + n >= rank) {
      *lo = std::max(HistogramBucketLo(b), min);
      *hi = std::min(HistogramBucketHi(b), max);
      return true;
    }
    cum += n;
  }
  *lo = min;
  *hi = max;
  return true;
}

const HistogramSnapshot* MetricsSnapshot::Find(const std::string& name) const {
  for (const HistogramSnapshot& h : histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

int64_t MetricsSnapshot::Counter(const std::string& name,
                                 int64_t fallback) const {
  for (const auto& c : counters) {
    if (c.first == name) return c.second;
  }
  return fallback;
}

int64_t MetricsSnapshot::Gauge(const std::string& name,
                               int64_t fallback) const {
  for (const auto& g : gauges) {
    if (g.first == name) return g.second;
  }
  return fallback;
}

std::string MetricsSnapshot::Describe() const {
  std::string out;
  char line[256];
  for (const auto& c : counters) {
    std::snprintf(line, sizeof(line), "counter %-28s %lld\n", c.first.c_str(),
                  static_cast<long long>(c.second));
    out += line;
  }
  for (const auto& g : gauges) {
    std::snprintf(line, sizeof(line), "gauge   %-28s %lld\n", g.first.c_str(),
                  static_cast<long long>(g.second));
    out += line;
  }
  for (const HistogramSnapshot& h : histograms) {
    if (h.count == 0) continue;
    std::snprintf(line, sizeof(line),
                  "hist    %-28s n=%lld mean=%.1f p50=%.0f p95=%.0f "
                  "p99=%.0f max=%lld\n",
                  h.name.c_str(), static_cast<long long>(h.count), h.mean(),
                  h.Percentile(50), h.Percentile(95), h.Percentile(99),
                  static_cast<long long>(h.max));
    out += line;
  }
  return out;
}

MetricId MetricsRegistry::RegisterCounter(const std::string& name) {
  for (size_t i = 0; i < counters_.size(); ++i) {
    if (counters_[i]->name == name) return static_cast<MetricId>(i);
  }
  auto cell = std::make_unique<CounterCell>();
  cell->name = name;
  counters_.push_back(std::move(cell));
  return static_cast<MetricId>(counters_.size() - 1);
}

MetricId MetricsRegistry::RegisterGauge(const std::string& name) {
  for (size_t i = 0; i < gauges_.size(); ++i) {
    if (gauges_[i]->name == name) return static_cast<MetricId>(i);
  }
  auto cell = std::make_unique<CounterCell>();
  cell->name = name;
  gauges_.push_back(std::move(cell));
  return static_cast<MetricId>(gauges_.size() - 1);
}

MetricId MetricsRegistry::RegisterHistogram(const std::string& name) {
  for (size_t i = 0; i < histograms_.size(); ++i) {
    if (histograms_[i]->name == name) return static_cast<MetricId>(i);
  }
  auto cell = std::make_unique<HistogramCell>();
  cell->name = name;
  histograms_.push_back(std::move(cell));
  return static_cast<MetricId>(histograms_.size() - 1);
}

void MetricsRegistry::Record(MetricId id, int64_t value) {
  HistogramCell& h = *histograms_[static_cast<size_t>(id)];
  h.count.fetch_add(1, std::memory_order_relaxed);
  h.sum.fetch_add(value, std::memory_order_relaxed);
  h.buckets[static_cast<size_t>(HistogramBucketIndex(value))].fetch_add(
      1, std::memory_order_relaxed);
  int64_t cur = h.min.load(std::memory_order_relaxed);
  while (value < cur && !h.min.compare_exchange_weak(
                            cur, value, std::memory_order_relaxed)) {
  }
  cur = h.max.load(std::memory_order_relaxed);
  while (value > cur && !h.max.compare_exchange_weak(
                            cur, value, std::memory_order_relaxed)) {
  }
}

void MetricsRegistry::Reset() {
  for (const auto& c : counters_) {
    c->value.store(0, std::memory_order_relaxed);
  }
  for (const auto& g : gauges_) {
    g->value.store(0, std::memory_order_relaxed);
  }
  for (const auto& h : histograms_) {
    h->count.store(0, std::memory_order_relaxed);
    h->sum.store(0, std::memory_order_relaxed);
    h->min.store(std::numeric_limits<int64_t>::max(),
                 std::memory_order_relaxed);
    h->max.store(std::numeric_limits<int64_t>::min(),
                 std::memory_order_relaxed);
    for (auto& b : h->buckets) b.store(0, std::memory_order_relaxed);
  }
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot out;
  out.counters.reserve(counters_.size());
  for (const auto& c : counters_) {
    out.counters.emplace_back(c->name,
                              c->value.load(std::memory_order_relaxed));
  }
  out.gauges.reserve(gauges_.size());
  for (const auto& g : gauges_) {
    out.gauges.emplace_back(g->name,
                            g->value.load(std::memory_order_relaxed));
  }
  out.histograms.reserve(histograms_.size());
  for (const auto& h : histograms_) {
    HistogramSnapshot s;
    s.name = h->name;
    s.count = h->count.load(std::memory_order_relaxed);
    s.sum = h->sum.load(std::memory_order_relaxed);
    for (int b = 0; b < kHistogramBuckets; ++b) {
      s.buckets[static_cast<size_t>(b)] =
          h->buckets[static_cast<size_t>(b)].load(std::memory_order_relaxed);
    }
    s.min = s.count > 0 ? h->min.load(std::memory_order_relaxed) : 0;
    s.max = s.count > 0 ? h->max.load(std::memory_order_relaxed) : 0;
    out.histograms.push_back(std::move(s));
  }
  return out;
}

}  // namespace sgl
