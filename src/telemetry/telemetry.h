// Telemetry: span tracing, the standard metric series, and per-site
// attribution (src/telemetry/) — the engine's observability layer (§3.3:
// developers must see what the engine decided and why).
//
// Span tracer
// -----------
// Named sites (`layer.object.effect`, constexpr FNV-1a ids — the
// src/fault/ naming scheme) mark every phase of the tick pipeline. The
// `SGL_TRACE_SPAN` RAII macro opens a span; at scope exit one flat
// 32-byte record lands in the calling thread's lock-free ring (a
// "complete" span: begin/end captured together, so a span costs exactly
// one slot). Rings are per-lane single-writer: a thread binds a
// preallocated lane on first use (thread-local cache, no lock) and only
// that thread writes it, so recording needs no CAS — just a release
// publish of the lane count. Slot fields are relaxed atomics purely so
// the exporter may read concurrently; the tolerable cost is that a
// wrapped ring's oldest slot may be mid-overwrite, which CollectSpans
// sidesteps by discarding the oldest slot of wrapped lanes.
//
// Cost contract:
//   * Disarmed (`Telemetry* == nullptr`, the default in ExecOptions): one
//     branch per span — identical shape to the fault injector's disarmed
//     sites. An attached-but-unarmed Telemetry adds one relaxed load.
//   * Armed steady state: allocation-free. Lanes and rings are sized at
//     construction (TelemetryOptions); overflow *wraps* — newest spans
//     win, dropped_spans() counts what the exporter lost; threads beyond
//     max_lanes record nothing (dropped_threads()).
//
// Export: DumpChromeTrace() renders the rings as Chrome trace-event JSON
// — pid = track (0 = world/barrier, s+1 = shard s), tid = lane — so one
// tick reads as a real timeline in Perfetto (see README.md). Export and
// Snapshot() are off the hot path and may allocate.
//
// Per-site attribution surfaces what src/opt/ already measures instead
// of discarding it: cumulative µs / outer rows / candidates / matches /
// effects emitted per prepared accum site, the backend each tick chose
// (eval VM? probe batched?), the bandit's µs-per-outer beliefs, and a
// ring of strategy-decision changes. Recorded from the barrier thread
// only (site preparation + the merge phase), so the cells are plain
// fields.

#ifndef SGL_TELEMETRY_TELEMETRY_H_
#define SGL_TELEMETRY_TELEMETRY_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/common/types.h"
#include "src/telemetry/metrics.h"

namespace sgl {

/// Compile-time FNV-1a 64 over a span-site name (the src/fault/ scheme).
constexpr uint64_t SpanSiteHash(const char* s,
                                uint64_t h = 0xcbf29ce484222325ULL) {
  return *s == '\0'
             ? h
             : SpanSiteHash(s + 1,
                            (h ^ static_cast<uint64_t>(
                                     static_cast<unsigned char>(*s))) *
                                0x100000001b3ULL);
}

/// A named span site: the id is what the 32-byte record carries, the name
/// is kept for the exporter.
struct SpanSite {
  uint64_t id;
  const char* name;
};

constexpr SpanSite MakeSpanSite(const char* name) {
  return SpanSite{SpanSiteHash(name), name};
}

// --- The span sites wired into the engine -------------------------------
// tick: phases shared by TickExecutor and ShardExecutor (track 0 = the
// barrier thread's view; per-shard work carries track = shard + 1).
inline constexpr SpanSite kSpanTickTotal = MakeSpanSite("tick.total");
inline constexpr SpanSite kSpanTickSelect = MakeSpanSite("tick.select");
inline constexpr SpanSite kSpanTickSitePrep = MakeSpanSite("tick.siteprep");
inline constexpr SpanSite kSpanTickQuery = MakeSpanSite("tick.query");
inline constexpr SpanSite kSpanTickMerge = MakeSpanSite("tick.merge");
inline constexpr SpanSite kSpanTickFinalize =
    MakeSpanSite("tick.finalize_sets");
inline constexpr SpanSite kSpanTickInstall = MakeSpanSite("tick.install");
inline constexpr SpanSite kSpanTickUpdate = MakeSpanSite("tick.update");
inline constexpr SpanSite kSpanTickMigrate = MakeSpanSite("tick.migrate");
// shard: the sharded pipeline's B phase and barrier internals
// (src/shard/shard_executor.cc).
inline constexpr SpanSite kSpanShardRun = MakeSpanSite("shard.run");
inline constexpr SpanSite kSpanTickBarrier = MakeSpanSite("tick.barrier");
inline constexpr SpanSite kSpanMailboxFlip =
    MakeSpanSite("shard.mailbox.flip");
inline constexpr SpanSite kSpanMailboxReplay =
    MakeSpanSite("shard.mailbox.replay");
// exec: per-site work inside the query phase (src/exec/op_exec.cc);
// arg = site id.
inline constexpr SpanSite kSpanSiteQuery = MakeSpanSite("exec.site.query");
inline constexpr SpanSite kSpanSiteProbe = MakeSpanSite("exec.site.probe");
// async: background job execution (src/async/job_service.cc); arg =
// client id, tick = submit tick.
inline constexpr SpanSite kSpanJobRun = MakeSpanSite("async.worker.run");
// vm: one-time program lowering (src/vm/compile.cc).
inline constexpr SpanSite kSpanVmCompile = MakeSpanSite("vm.compile");

/// Exporter-facing name lookup over the declared sites ("?" for unknown
/// ids — a site someone forgot to add here still exports, just unnamed).
const char* SpanSiteName(uint64_t id);

/// One flat span record. All fields are relaxed atomics so the exporter
/// may read while the owning thread writes; the lane count's release
/// publish orders complete records, and CollectSpans discards the one
/// possibly-torn slot of wrapped rings.
struct SpanSlot {
  std::atomic<uint64_t> site{0};
  std::atomic<int64_t> begin_ns{0};
  std::atomic<int64_t> end_ns{0};
  std::atomic<uint32_t> tick{0};
  std::atomic<uint16_t> arg{0};
  std::atomic<uint8_t> depth{0};
  std::atomic<uint8_t> track{0};
};
static_assert(sizeof(SpanSlot) == 32, "span records are flat 32-byte slots");

/// Plain-struct copy of one span (CollectSpans output).
struct SpanView {
  uint64_t site = 0;
  const char* name = nullptr;
  int64_t begin_ns = 0;
  int64_t end_ns = 0;
  Tick tick = 0;
  uint16_t arg = 0;
  uint8_t depth = 0;
  uint8_t track = 0;
  int lane = 0;
};

/// One thread's ring. Single-writer (the bound thread); `depth` is the
/// writer's private nesting counter, `count` the release-published total
/// of records ever written (ring position = count % capacity).
class SpanLane {
 public:
  void Write(uint64_t site, int64_t begin_ns, int64_t end_ns, Tick tick,
             uint16_t arg, uint8_t depth, uint8_t track) {
    const uint64_t i = count_.load(std::memory_order_relaxed);
    SpanSlot& s = slots_[static_cast<size_t>(i) & mask_];
    s.site.store(site, std::memory_order_relaxed);
    s.begin_ns.store(begin_ns, std::memory_order_relaxed);
    s.end_ns.store(end_ns, std::memory_order_relaxed);
    s.tick.store(static_cast<uint32_t>(tick), std::memory_order_relaxed);
    s.arg.store(arg, std::memory_order_relaxed);
    s.depth.store(depth, std::memory_order_relaxed);
    s.track.store(track, std::memory_order_relaxed);
    count_.store(i + 1, std::memory_order_release);
  }

  uint32_t depth = 0;  ///< owner-thread span nesting (not atomic: 1 writer)

 private:
  friend class Telemetry;
  std::vector<SpanSlot> slots_;  ///< sized once at construction, never grown
  size_t mask_ = 0;
  std::atomic<uint64_t> count_{0};
};

/// Sizing knobs; everything is allocated up front in the constructor.
struct TelemetryOptions {
  /// Distinct recording threads (barrier + workers + job workers). Threads
  /// beyond this record nothing (counted in dropped_threads()).
  int max_lanes = 32;
  /// Ring capacity per lane, rounded up to a power of two. Overflow wraps
  /// (newest spans win); size for the window you intend to export.
  size_t ring_spans = 4096;
  /// Decision-history ring length per site (recorded on change).
  int site_history = 16;
  /// Per-tick counter-sample ring length (the "ph":"C" counter lanes in
  /// DumpChromeTrace). Overflow wraps, newest samples win.
  int counter_samples = 256;
};

/// One strategy/backend decision (recorded when it differs from the
/// previous one, so the ring holds the switch history, not every tick).
struct SiteDecision {
  Tick tick = 0;
  const char* strategy = nullptr;  ///< static string (JoinStrategyName)
  bool eval_vm = false;
  bool probe_batched = false;
};

/// Cumulative attribution for one prepared accum site.
struct SiteSeries {
  int site = -1;
  const char* strategy = nullptr;  ///< most recent decision
  int64_t ticks = 0;               ///< ticks this site executed
  int64_t micros = 0;
  int64_t probe_micros = 0;
  int64_t outer_rows = 0;
  int64_t candidates = 0;
  int64_t matches = 0;
  int64_t effects = 0;  ///< effect writes applied on behalf of this site
  int64_t eval_vm_ticks = 0;
  int64_t probe_batched_ticks = 0;
  /// Backend chosen by the most recent decision.
  bool last_eval_vm = false;
  bool last_probe_batched = false;
  /// Bandit beliefs (µs per outer row): eval arm 0 = interpret, arm 1 =
  /// bytecode; probe arm 0 = per-row, arm 1 = batched. 0 = no data yet.
  double eval_us_per_outer[2] = {0.0, 0.0};
  double probe_us_per_outer[2] = {0.0, 0.0};
  /// Ring of decision *changes*; `decisions` counts all recorded entries
  /// (ring keeps the newest `history.size()`).
  std::vector<SiteDecision> history;
  int64_t decisions = 0;
};

/// The pre-registered series every executor records (ids into metrics()).
struct StdMetrics {
  // Histograms (µs), one sample per tick unless noted.
  MetricId tick_total_us;
  MetricId tick_query_us;
  MetricId tick_merge_us;
  MetricId tick_update_us;
  MetricId probe_us;          ///< per tick, only when a site probed batched
  MetricId job_wait_us;       ///< barrier time blocked on unfinished jobs
  MetricId barrier_stall_us;  ///< shard imbalance: max-min per-shard query µs
  MetricId shard_query_us;    ///< one sample per shard per tick
  // Counters.
  MetricId cross_shard_records_total;
  MetricId jobs_submitted;
  MetricId jobs_installed;
  // Gauges (latest tick).
  MetricId jobs_in_flight;
  MetricId shard_imbalance_bp;   ///< (max-mean)/mean in basis points
  MetricId cross_shard_records;  ///< routed last tick
  MetricId vm_programs;
};

class Telemetry {
 public:
  explicit Telemetry(const TelemetryOptions& options = TelemetryOptions());
  Telemetry(const Telemetry&) = delete;
  Telemetry& operator=(const Telemetry&) = delete;

  /// Armed = spans + metrics record; disarmed = every instrumented point
  /// is a branch or two. Flip between ticks (not during one).
  bool armed() const { return armed_.load(std::memory_order_relaxed); }
  void set_armed(bool on) { armed_.store(on, std::memory_order_relaxed); }

  MetricsRegistry& metrics() { return metrics_; }
  const StdMetrics& series() const { return std_; }

  /// Monotonic nanoseconds since this process's telemetry epoch.
  static int64_t NowNs();

  /// The calling thread's lane (bound on first use; nullptr once
  /// max_lanes threads have bound — those threads record nothing).
  SpanLane* Lane();

  /// Spans recorded / lost to ring wrap / threads beyond max_lanes.
  int64_t total_spans() const;
  int64_t dropped_spans() const;
  int64_t dropped_threads() const {
    return dropped_threads_.load(std::memory_order_relaxed);
  }

  /// Off-hot-path: copies every lane's readable window (oldest slot of
  /// wrapped lanes discarded), ordered by lane then ring position.
  std::vector<SpanView> CollectSpans() const;
  /// Chrome trace-event JSON ("X" complete events, pid = track, tid =
  /// lane; metadata names both). Load in Perfetto / chrome://tracing.
  std::string DumpChromeTrace() const;
  Status WriteChromeTrace(const std::string& path) const;

  // --- Standard per-tick recording (executors, barrier thread) ----------
  struct TickSample {
    int64_t total_us = 0;
    int64_t query_us = 0;
    int64_t merge_us = 0;
    int64_t update_us = 0;
    int64_t probe_us = 0;
    int64_t job_wait_us = -1;       ///< -1 = no JobService this tick
    int64_t barrier_stall_us = -1;  ///< -1 = unsharded (no stall series)
    int64_t shard_imbalance_bp = 0;
    int64_t cross_shard_records = 0;
    int64_t jobs_submitted = 0;
    int64_t jobs_installed = 0;
    int64_t jobs_in_flight = 0;
    int64_t vm_programs = 0;
  };
  void RecordTick(const TickSample& s);

  /// One timestamped TickSample of the counter ring (exporter reads).
  struct CounterSample {
    int64_t ts_ns = 0;
    TickSample sample;
  };

  // --- Per-site attribution (barrier thread only) -----------------------
  /// Pre-sizes the site table (executor constructors; allocates).
  void EnsureSites(int num_sites);
  /// Appends to the site's decision ring iff different from its last.
  void RecordSiteDecision(int site, Tick tick, const char* strategy,
                          bool eval_vm, bool probe_batched);
  /// Accumulates one tick's aggregated feedback for the site.
  void RecordSiteTick(int site, int64_t micros, int64_t probe_micros,
                      int64_t outer_rows, int64_t candidates,
                      int64_t matches, int64_t effects);
  /// Latest bandit beliefs (µs/outer; pass 0 for arms with no data).
  void RecordSiteBeliefs(int site, double eval_interp, double eval_vm,
                         double probe_single, double probe_batched);
  const std::vector<SiteSeries>& sites() const { return sites_; }
  /// Human-readable per-site table (off hot path).
  std::string DescribeSites() const;
  /// Machine-readable variant: a JSON array, one object per site, same
  /// fields as the text table (off hot path).
  std::string DescribeSitesJson() const;

 private:
  SpanLane* BindLane();

  TelemetryOptions options_;
  uint64_t instance_id_ = 0;  ///< process-unique; keys the TLS lane cache
  std::atomic<bool> armed_{false};
  MetricsRegistry metrics_;
  StdMetrics std_{};
  std::vector<SpanLane> lanes_;  ///< sized once; SpanSlot is not movable
  std::atomic<int> next_lane_{0};
  std::atomic<int64_t> dropped_threads_{0};
  std::vector<SiteSeries> sites_;
  /// Counter-sample ring: single-writer (the barrier thread, via
  /// RecordTick) with a release-published count, SpanLane-style; the
  /// exporter reads the published window. Sized at construction.
  std::vector<CounterSample> counter_ring_;
  std::atomic<uint64_t> counter_count_{0};
};

/// RAII span. Constructing against a null Telemetry* costs one branch;
/// against a disarmed one, a branch and a relaxed load. Armed, it stamps
/// NowNs() at both ends and writes one ring slot at scope exit.
class ScopedSpan {
 public:
  ScopedSpan(Telemetry* tel, const SpanSite& site, Tick tick,
             uint8_t track = 0, uint16_t arg = 0) {
    if (tel == nullptr || !tel->armed()) return;
    lane_ = tel->Lane();
    if (lane_ == nullptr) return;
    site_ = site.id;
    tick_ = tick;
    track_ = track;
    arg_ = arg;
    depth_ = static_cast<uint8_t>(lane_->depth < 255 ? lane_->depth : 255);
    ++lane_->depth;
    begin_ns_ = Telemetry::NowNs();
  }
  ~ScopedSpan() {
    if (lane_ == nullptr) return;
    --lane_->depth;
    lane_->Write(site_, begin_ns_, Telemetry::NowNs(), tick_, arg_, depth_,
                 track_);
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  SpanLane* lane_ = nullptr;
  uint64_t site_ = 0;
  int64_t begin_ns_ = 0;
  Tick tick_ = 0;
  uint16_t arg_ = 0;
  uint8_t depth_ = 0;
  uint8_t track_ = 0;
};

#define SGL_TRACE_CONCAT_INNER(a, b) a##b
#define SGL_TRACE_CONCAT(a, b) SGL_TRACE_CONCAT_INNER(a, b)
/// Opens a span over the rest of the enclosing scope.
///   SGL_TRACE_SPAN(tel, kSpanTickQuery, tick_, /*track=*/0, /*arg=*/0);
#define SGL_TRACE_SPAN(tel, site, tick, track, arg)            \
  ::sgl::ScopedSpan SGL_TRACE_CONCAT(sgl_trace_span_, __LINE__)( \
      (tel), (site), (tick), (track), (arg))

}  // namespace sgl

#endif  // SGL_TELEMETRY_TELEMETRY_H_
