// FlightRecorder: a pooled ring of the last K ticks — "what just happened"
// as data, not printf (§3.3: the engine must be able to explain its own
// decisions and effects after the fact).
//
// Each ring frame holds one tick's
//   * scalar stats (phase micros, job counters, txn stats — a TickStats
//     subset, plus the sharded pipeline's stall/imbalance gauges),
//   * per-site attribution rows (the SiteFeedback vector, pooled copy),
//   * canonical effect records with provenance tags (site id, ⊕/intent
//     order key, txn id, source rows, source shard) and each record's
//     *resolved after-value* — the post-merge effect value or the
//     post-write-back state value of the written field,
//   * a wall-clock window (for span extraction into dumps).
//
// Capture path (armed): the executors fan every effect write into the
// recorder's internal watch-all EffectTracer (pooled per-worker lanes);
// at tick bookkeeping — before the executor reads the allocation counters,
// so frame assembly is held to the allocs_per_tick == 0 contract — the
// records drain into the current frame's pooled vector, sort with
// TraceRecordCanonicalLess, and after-values resolve from the world.
// Frames wrap-overwrite (newest wins) with eviction accounting; record
// overflow within a frame truncates with drop accounting. Disarmed: one
// branch per tick in the executor plus one null check per effect write.
//
// Black-box triggers: after each capture the trigger engine checks
//   * tick time > anomaly_p95_factor × rolling p95 over the ring,
//   * shard.imbalance_bp / barrier.stall_us thresholds,
//   * any FaultInjector fire since the previous capture,
//   * crash detected on restore (Engine::Restore → NotifyRestore),
// and writes a self-contained dump (reason, Chrome trace of the ring
// window, metrics snapshot, site table JSON, serialized provenance tail,
// world checksum) through the fsync'd black-box writer with
// CheckpointStore-style rotation (checkpoint_file.h). Dump writing is off
// the steady-state contract — it allocates freely; a cooldown keeps a
// sustained anomaly from flooding the store.
//
// The provenance tail and world checksum serialize only deterministic
// content (no wall-clock), so a never-crashed run and a crash/recover run
// over the same program produce byte-identical provenance sections — the
// recovery differential the tests compare.
//
// Queries over the ring (WhyDidChange / ExplainTick) live in
// src/telemetry/provenance.h; this class owns the data they read.

#ifndef SGL_TELEMETRY_FLIGHT_RECORDER_H_
#define SGL_TELEMETRY_FLIGHT_RECORDER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/common/types.h"
#include "src/debug/tracer.h"
#include "src/exec/tick_executor.h"
#include "src/schema/type.h"

namespace sgl {

class BlackBoxStore;
class FaultInjector;
class Telemetry;
class World;

/// Sizing and trigger knobs. Everything that can preallocate does so at
/// construction; triggers default off (0 / false = disabled).
struct FlightRecorderOptions {
  /// Ring depth in ticks. Older frames are overwritten (evicted_frames()).
  int ring_ticks = 16;
  /// Per-frame record budget; beyond it records drop (dropped_records()).
  size_t max_records_per_frame = 1 << 16;
  /// Worker lanes of the internal capture tracer (threads beyond this drop).
  int max_lanes = 64;

  // --- Black-box triggers (0 / false = disabled) -------------------------
  /// Fire when tick total µs exceeds `factor × p95` of the in-ring frames.
  double anomaly_p95_factor = 0.0;
  /// Frames required in the ring before the p95 trigger can fire.
  int min_frames_for_anomaly = 8;
  /// Fire when the sharded pipeline's imbalance gauge reaches this (bp).
  int64_t imbalance_bp_threshold = 0;
  /// Fire when the barrier stall gauge reaches this (µs).
  int64_t barrier_stall_us_threshold = 0;
  /// Fire when the attached FaultInjector's total_fires() advanced since
  /// the previous capture.
  bool dump_on_fault = false;
  /// Fire from NotifyRestore (crash detected on restore).
  bool dump_on_restore = false;
  /// Minimum ticks between automatic dumps (suppressed_dumps() counts).
  Tick dump_cooldown_ticks = 16;
};

/// One captured effect record plus its resolved after-value. `rec.value`
/// is the *contribution* (the assigned/⊕-combined operand); `after_*` is
/// the field's final value at end of tick — the merged effect value for
/// query-phase records, the post-write-back state value for txn records.
/// Set-typed after-values record the set's size, never a boxed EntitySet
/// (the one Value variant whose copy can allocate).
struct FrameRecord {
  TraceRecord rec;
  bool after_known = false;  ///< false: target despawned / row unresolvable
  TypeKind after_kind = TypeKind::kNumber;
  double after_num = 0.0;
  EntityId after_ref = kNullEntity;
  bool after_bool = false;
  int64_t after_set_size = -1;
};

/// One ring slot: everything the recorder kept about one tick.
struct TickFrame {
  Tick tick = -1;      ///< -1: slot never written
  uint64_t seq = 0;    ///< capture sequence (wrap generation)
  int64_t begin_ns = 0, end_ns = 0;  ///< wall-clock window (Telemetry epoch)

  // Scalar stats copied from TickStats (alloc counters excluded: they are
  // read *after* capture, by design).
  int64_t total_micros = 0;
  int64_t query_effect_micros = 0;
  int64_t merge_micros = 0;
  int64_t update_micros = 0;
  int64_t probe_micros = 0;
  int64_t jobs_submitted = 0;
  int64_t jobs_installed = 0;
  int64_t jobs_in_flight = 0;
  int64_t txn_issued = 0;
  int64_t txn_committed = 0;
  int64_t txn_aborted = 0;
  /// Sharded-pipeline gauges (-1 / 0 under TickExecutor).
  int64_t barrier_stall_us = -1;
  int64_t imbalance_bp = 0;
  int64_t cross_shard_records = 0;

  /// Per-site attribution rows (pooled copy of TickStats::sites).
  std::vector<SiteFeedback> sites;
  size_t num_sites = 0;  ///< used prefix of `sites`

  /// Canonically sorted records; `num_records` is the used prefix (the
  /// vector is pooled and never shrinks).
  std::vector<FrameRecord> records;
  size_t num_records = 0;
  int64_t dropped_records = 0;  ///< truncated past max_records_per_frame
};

class FlightRecorder {
 public:
  explicit FlightRecorder(
      const FlightRecorderOptions& options = FlightRecorderOptions());
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Armed = capture; disarmed = executors see a null sink. Flip between
  /// ticks. World checksums are bit-identical armed vs disarmed — capture
  /// only observes.
  bool armed() const { return armed_; }
  void set_armed(bool on) { armed_ = on; }

  /// Optional attachments (borrowed; must outlive the recorder).
  /// Telemetry feeds the dump's Chrome trace / metrics / site sections;
  /// the fault injector feeds the dump_on_fault trigger; the store
  /// receives the dumps (no store = triggers evaluate but write nothing,
  /// still counted in dumps_suppressed()).
  void set_telemetry(Telemetry* tel) { tel_ = tel; }
  void set_fault(FaultInjector* fault);
  void AttachStore(BlackBoxStore* store) { store_ = store; }

  /// The effect-write sink the executors fan into this tick (null when
  /// disarmed — the executors re-read this every tick).
  EffectTraceSink* capture_sink() {
    return armed_ ? static_cast<EffectTraceSink*>(&tracer_) : nullptr;
  }

  /// One tick's capture input, filled by the executor at bookkeeping time.
  struct FrameInput {
    Tick tick = 0;
    const TickStats* stats = nullptr;
    const World* world = nullptr;
    /// Sharded pipeline only; TickExecutor leaves the defaults.
    int64_t barrier_stall_us = -1;
    int64_t imbalance_bp = 0;
    int64_t cross_shard_records = 0;
  };

  /// Seals the current tick into a ring frame (drain + canonical sort +
  /// after-value resolution), then evaluates the dump triggers.
  /// Allocation-free at the high-water mark. No-op when disarmed.
  void CaptureTick(const FrameInput& in);

  /// Crash-recovery notification (Engine::Restore). Records the restore
  /// tick and, with dump_on_restore set, writes a "crash.restore" dump.
  void NotifyRestore(Tick tick, const World* world);

  /// Writes a dump now, regardless of triggers and cooldown (tests,
  /// operator request). Allocates freely. Fails when no store is attached.
  Status DumpNow(const std::string& reason, Tick tick, const World* world);

  // --- Ring access (provenance queries, tests) ---------------------------
  /// Frame holding tick `t`; nullptr when evicted or never captured.
  const TickFrame* frame(Tick t) const;
  /// Oldest / newest captured tick still in the ring (-1 when empty).
  Tick oldest_tick() const;
  Tick newest_tick() const;
  int ring_ticks() const { return static_cast<int>(ring_.size()); }
  const FlightRecorderOptions& options() const { return options_; }

  /// Deterministic serialization of every in-ring frame's records
  /// (oldest → newest): the dump's provenance section. binio format, no
  /// wall-clock content.
  void SerializeProvenanceTail(std::string* out) const;

  // --- Accounting --------------------------------------------------------
  int64_t frames_captured() const { return frames_captured_; }
  int64_t evicted_frames() const {
    const int64_t n = frames_captured_ - static_cast<int64_t>(ring_.size());
    return n > 0 ? n : 0;
  }
  int64_t dropped_records() const { return dropped_records_total_; }
  int64_t dumps_written() const { return dumps_written_; }
  int64_t dumps_suppressed() const { return dumps_suppressed_; }
  /// Reason string of the most recent trigger ("" when none fired yet).
  const std::string& last_trigger() const { return last_trigger_; }

 private:
  void ResolveAfterValues(TickFrame* frame, const World& world);
  /// Evaluates triggers for the just-captured frame; returns the reason
  /// ("" = none).
  const char* EvaluateTriggers(const TickFrame& frame);
  void TriggerDump(const char* reason, Tick tick, const World* world);

  FlightRecorderOptions options_;
  bool armed_ = false;
  Telemetry* tel_ = nullptr;
  FaultInjector* fault_ = nullptr;
  BlackBoxStore* store_ = nullptr;

  EffectTracer tracer_;  ///< watch-all capture sink (pooled worker lanes)
  std::vector<TickFrame> ring_;
  int64_t frames_captured_ = 0;
  int64_t dropped_records_total_ = 0;
  int64_t dumps_written_ = 0;
  int64_t dumps_suppressed_ = 0;
  Tick last_dump_tick_ = -1;
  int64_t last_fault_fires_ = 0;
  std::string last_trigger_;
  std::vector<int64_t> p95_scratch_;  ///< pre-reserved rolling-p95 buffer
  Tick restored_at_ = -1;  ///< last NotifyRestore tick (-1 = never)
};

}  // namespace sgl

#endif  // SGL_TELEMETRY_FLIGHT_RECORDER_H_
