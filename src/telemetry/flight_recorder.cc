#include "src/telemetry/flight_recorder.h"

#include <algorithm>
#include <cstdint>

#include "src/common/bin_io.h"
#include "src/debug/checkpoint.h"
#include "src/debug/checkpoint_file.h"
#include "src/fault/fault_injector.h"
#include "src/schema/class_def.h"
#include "src/storage/world.h"
#include "src/telemetry/telemetry.h"

namespace sgl {

namespace {

/// Provenance-section format tag ("SGLPROV1", little-endian).
constexpr uint64_t kProvMagic = 0x31564f52504c4753ULL;

/// Resets a frame slot to "never written", keeping every pooled capacity.
void ClearFrame(TickFrame* f) {
  f->tick = -1;
  f->seq = 0;
  f->num_sites = 0;
  f->num_records = 0;
  f->dropped_records = 0;
}

}  // namespace

FlightRecorder::FlightRecorder(const FlightRecorderOptions& options)
    : options_(options), tracer_(options.max_lanes) {
  if (options_.ring_ticks < 1) options_.ring_ticks = 1;
  ring_.resize(static_cast<size_t>(options_.ring_ticks));
  for (TickFrame& f : ring_) ClearFrame(&f);
  p95_scratch_.reserve(ring_.size());
  tracer_.set_watch_all(true);
}

void FlightRecorder::set_fault(FaultInjector* fault) {
  fault_ = fault;
  // Baseline the fire counter so pre-attachment fires never trigger.
  last_fault_fires_ = fault != nullptr ? fault->total_fires() : 0;
}

void FlightRecorder::CaptureTick(const FrameInput& in) {
  if (!armed_ || in.stats == nullptr || in.world == nullptr) return;
  TickFrame& f = ring_[static_cast<size_t>(frames_captured_) % ring_.size()];
  f.tick = in.tick;
  f.seq = static_cast<uint64_t>(frames_captured_);
  f.end_ns = Telemetry::NowNs();
  f.begin_ns = f.end_ns - in.stats->total_micros * 1000;

  const TickStats& st = *in.stats;
  f.total_micros = st.total_micros;
  f.query_effect_micros = st.query_effect_micros;
  f.merge_micros = st.merge_micros;
  f.update_micros = st.update_micros;
  f.probe_micros = st.probe_micros;
  f.jobs_submitted = st.jobs_submitted;
  f.jobs_installed = st.jobs_installed;
  f.jobs_in_flight = st.jobs_in_flight;
  f.txn_issued = st.txn.issued;
  f.txn_committed = st.txn.committed;
  f.txn_aborted = st.txn.aborted;
  f.barrier_stall_us = in.barrier_stall_us;
  f.imbalance_bp = in.imbalance_bp;
  f.cross_shard_records = in.cross_shard_records;

  // Per-site rows: pooled copy (slot assignment past the high-water mark).
  const size_t ns = st.sites.size();
  if (f.sites.size() < ns) f.sites.resize(ns);
  for (size_t i = 0; i < ns; ++i) f.sites[i] = st.sites[i];
  f.num_sites = ns;

  // Drain the capture tracer into the frame's pooled record vector.
  size_t n = 0;
  int64_t dropped = 0;
  const size_t cap = options_.max_records_per_frame;
  tracer_.ForEachRecord([&](const TraceRecord& r) {
    if (n >= cap) {
      ++dropped;
      return;
    }
    if (n == f.records.size()) {
      f.records.emplace_back();
    }
    FrameRecord& fr = f.records[n];
    fr.rec = r;  // Value copy-assign reuses the slot's set capacity
    fr.after_known = false;
    fr.after_set_size = -1;
    ++n;
  });
  tracer_.Clear();
  f.num_records = n;
  f.dropped_records = dropped;
  dropped_records_total_ += dropped;
  std::sort(f.records.begin(),
            f.records.begin() + static_cast<ptrdiff_t>(n),
            [](const FrameRecord& a, const FrameRecord& b) {
              return TraceRecordCanonicalLess(a.rec, b.rec);
            });
  ResolveAfterValues(&f, *in.world);

  ++frames_captured_;
  const char* reason = EvaluateTriggers(f);
  if (reason[0] != '\0') TriggerDump(reason, in.tick, in.world);
}

void FlightRecorder::ResolveAfterValues(TickFrame* frame,
                                        const World& world) {
  for (size_t i = 0; i < frame->num_records; ++i) {
    FrameRecord& fr = frame->records[i];
    const TraceRecord& r = fr.rec;
    fr.after_known = false;
    const World::Locator* loc = world.Find(r.target);
    if (loc == nullptr) continue;  // despawned before capture
    const EntityTable& table = world.table(loc->cls);
    if (loc->row >= static_cast<RowIdx>(table.size())) continue;
    const ClassDef& cls = table.cls();
    if (r.prov.txn >= 0) {
      // Transaction write: the field lives in state space and the admitted
      // value was written back during UPDATE — read the state column.
      if (r.field < 0 ||
          static_cast<size_t>(r.field) >= cls.state_fields().size()) {
        continue;
      }
      const FieldDef& fd = cls.state_field(r.field);
      fr.after_kind = fd.type.kind;
      switch (fd.type.kind) {
        case TypeKind::kNumber:
          fr.after_num = table.Num(r.field)[loc->row];
          break;
        case TypeKind::kBool:
          fr.after_bool = table.BoolCol(r.field)[loc->row] != 0;
          break;
        case TypeKind::kRef:
          fr.after_ref = table.RefCol(r.field)[loc->row];
          break;
        case TypeKind::kSet:
          fr.after_set_size =
              static_cast<int64_t>(table.SetCol(r.field)[loc->row].size());
          break;
      }
      fr.after_known = true;
    } else {
      // Query-phase effect: the merged (post-⊕, finalized) value is still
      // in the effect buffer — ResetEffects runs at the *next* tick start.
      if (r.field < 0 ||
          static_cast<size_t>(r.field) >= cls.effect_fields().size()) {
        continue;
      }
      const EffectBuffer& eb = world.effects(loc->cls);
      if (!eb.Assigned(r.field, loc->row)) continue;
      const FieldDef& fd = cls.effect_field(r.field);
      fr.after_kind = fd.type.kind;
      switch (fd.type.kind) {
        case TypeKind::kNumber:
          fr.after_num = eb.FinalNumber(r.field, loc->row);
          break;
        case TypeKind::kBool:
          fr.after_bool = eb.FinalBool(r.field, loc->row);
          break;
        case TypeKind::kRef:
          fr.after_ref = eb.FinalRef(r.field, loc->row);
          break;
        case TypeKind::kSet:
          fr.after_set_size =
              static_cast<int64_t>(eb.FinalSet(r.field, loc->row).size());
          break;
      }
      fr.after_known = true;
    }
  }
}

const char* FlightRecorder::EvaluateTriggers(const TickFrame& frame) {
  const char* reason = "";
  if (fault_ != nullptr) {
    const int64_t fires = fault_->total_fires();
    if (options_.dump_on_fault && fires > last_fault_fires_) {
      reason = "fault.fired";
    }
    last_fault_fires_ = fires;
  }
  if (reason[0] == '\0' && options_.anomaly_p95_factor > 0.0) {
    p95_scratch_.clear();
    for (const TickFrame& g : ring_) {
      if (g.tick < 0 || g.seq == frame.seq) continue;
      p95_scratch_.push_back(g.total_micros);
    }
    if (static_cast<int>(p95_scratch_.size()) >=
        options_.min_frames_for_anomaly) {
      size_t k = p95_scratch_.size() * 95 / 100;
      if (k >= p95_scratch_.size()) k = p95_scratch_.size() - 1;
      std::nth_element(p95_scratch_.begin(),
                       p95_scratch_.begin() + static_cast<ptrdiff_t>(k),
                       p95_scratch_.end());
      const int64_t p95 = p95_scratch_[k];
      if (p95 > 0 && static_cast<double>(frame.total_micros) >
                         options_.anomaly_p95_factor *
                             static_cast<double>(p95)) {
        reason = "anomaly.tick_time";
      }
    }
  }
  if (reason[0] == '\0' && options_.imbalance_bp_threshold > 0 &&
      frame.imbalance_bp >= options_.imbalance_bp_threshold) {
    reason = "anomaly.shard_imbalance";
  }
  if (reason[0] == '\0' && options_.barrier_stall_us_threshold > 0 &&
      frame.barrier_stall_us >= options_.barrier_stall_us_threshold) {
    reason = "anomaly.barrier_stall";
  }
  return reason;
}

void FlightRecorder::TriggerDump(const char* reason, Tick tick,
                                 const World* world) {
  if (options_.dump_cooldown_ticks > 0 && last_dump_tick_ >= 0 &&
      tick - last_dump_tick_ < options_.dump_cooldown_ticks) {
    ++dumps_suppressed_;
    return;
  }
  if (store_ == nullptr) {
    last_trigger_ = reason;
    ++dumps_suppressed_;
    return;
  }
  (void)DumpNow(reason, tick, world);
}

void FlightRecorder::NotifyRestore(Tick tick, const World* world) {
  restored_at_ = tick;
  if (options_.dump_on_restore && store_ != nullptr) {
    // The ring still holds the pre-crash window — that *is* the black box.
    (void)DumpNow("crash.restore", tick, world);
  }
  // The abandoned timeline's frames must not mix with the recovered run:
  // re-executed ticks would collide with stale pre-crash frames. Keep every
  // pooled capacity, drop the contents.
  tracer_.Clear();
  for (TickFrame& f : ring_) ClearFrame(&f);
  frames_captured_ = 0;
}

Status FlightRecorder::DumpNow(const std::string& reason, Tick tick,
                               const World* world) {
  if (store_ == nullptr) {
    return Status::InvalidArgument("flight recorder: no black-box store");
  }
  last_trigger_ = reason;
  BlackBoxDump dump;
  dump.tick = tick;
  dump.world_checksum = world != nullptr ? WorldChecksum(*world) : 0;
  dump.reason = reason;
  if (tel_ != nullptr) {
    dump.chrome_trace = tel_->DumpChromeTrace();
    dump.metrics = tel_->metrics().Snapshot().Describe();
    dump.sites = tel_->DescribeSitesJson();
  } else {
    dump.chrome_trace = "{\"traceEvents\":[]}\n";
    dump.sites = "[]\n";
  }
  SerializeProvenanceTail(&dump.provenance);
  const Status s = store_->Save(dump);
  if (s.ok()) {
    ++dumps_written_;
    last_dump_tick_ = tick;
  }
  return s;
}

const TickFrame* FlightRecorder::frame(Tick t) const {
  for (const TickFrame& f : ring_) {
    if (f.tick >= 0 && f.tick == t) return &f;
  }
  return nullptr;
}

Tick FlightRecorder::oldest_tick() const {
  Tick best = -1;
  for (const TickFrame& f : ring_) {
    if (f.tick >= 0 && (best < 0 || f.tick < best)) best = f.tick;
  }
  return best;
}

Tick FlightRecorder::newest_tick() const {
  Tick best = -1;
  for (const TickFrame& f : ring_) {
    if (f.tick > best) best = f.tick;
  }
  return best;
}

void FlightRecorder::SerializeProvenanceTail(std::string* out) const {
  const int64_t size = static_cast<int64_t>(ring_.size());
  const int64_t first =
      frames_captured_ > size ? frames_captured_ - size : 0;
  binio::Append<uint64_t>(out, kProvMagic);
  binio::Append<int64_t>(out, frames_captured_ - first);
  for (int64_t s = first; s < frames_captured_; ++s) {
    const TickFrame& f = ring_[static_cast<size_t>(s) % ring_.size()];
    binio::Append<int64_t>(out, f.tick);
    binio::Append<int64_t>(out, f.dropped_records);
    binio::Append<uint64_t>(out, static_cast<uint64_t>(f.num_records));
    for (size_t i = 0; i < f.num_records; ++i) {
      const FrameRecord& fr = f.records[i];
      const TraceRecord& r = fr.rec;
      binio::Append<int64_t>(out, r.tick);
      binio::Append<EntityId>(out, r.target);
      binio::Append<int32_t>(out, static_cast<int32_t>(r.target_cls));
      binio::Append<int32_t>(out, static_cast<int32_t>(r.field));
      binio::Append<int32_t>(out, static_cast<int32_t>(r.assign_id));
      binio::Append<uint64_t>(out, r.order_key);
      binio::Append<int32_t>(out, r.prov.site);
      binio::Append<int32_t>(out, r.prov.src_shard);
      binio::Append<EntityId>(out, r.prov.src_outer);
      binio::Append<EntityId>(out, r.prov.src_inner);
      binio::Append<int64_t>(out, r.prov.txn);
      // Contribution value: kind tag + canonical payload (set contributions
      // serialize their cardinality; elements live in the effect stream as
      // individual ref contributions already).
      binio::Append<uint8_t>(out, static_cast<uint8_t>(r.value.kind()));
      switch (r.value.kind()) {
        case ValueKind::kNumber:
          binio::Append<double>(out, r.value.AsNumber());
          break;
        case ValueKind::kBool:
          binio::Append<uint8_t>(out, r.value.AsBool() ? 1 : 0);
          break;
        case ValueKind::kRef:
          binio::Append<EntityId>(out, r.value.AsRef());
          break;
        case ValueKind::kSet:
          binio::Append<int64_t>(out,
                                 static_cast<int64_t>(r.value.AsSet().size()));
          break;
      }
      binio::Append<uint8_t>(out, fr.after_known ? 1 : 0);
      binio::Append<uint8_t>(out, static_cast<uint8_t>(fr.after_kind));
      binio::Append<double>(out, fr.after_num);
      binio::Append<uint8_t>(out, fr.after_bool ? 1 : 0);
      binio::Append<EntityId>(out, fr.after_ref);
      binio::Append<int64_t>(out, fr.after_set_size);
    }
  }
}

}  // namespace sgl
