#include "src/telemetry/telemetry.h"

#include <chrono>
#include <cstdio>

namespace sgl {

namespace {

/// Per-thread lane cache. Keyed by a process-unique instance id (not the
/// Telemetry address: an address can be recycled across instances, and a
/// stale binding must never alias a new instance's lanes).
struct LaneBinding {
  uint64_t owner = 0;
  SpanLane* lane = nullptr;
};
thread_local LaneBinding g_lane_binding;

std::atomic<uint64_t> g_next_instance{1};

}  // namespace

const char* SpanSiteName(uint64_t id) {
  static constexpr SpanSite kSites[] = {
      kSpanTickTotal,     kSpanTickSelect,  kSpanTickSitePrep,
      kSpanTickQuery,     kSpanTickMerge,   kSpanTickFinalize,
      kSpanTickInstall,   kSpanTickUpdate,  kSpanTickMigrate,
      kSpanShardRun,      kSpanTickBarrier, kSpanMailboxFlip,
      kSpanMailboxReplay, kSpanSiteQuery,   kSpanSiteProbe,
      kSpanJobRun,        kSpanVmCompile,
  };
  for (const SpanSite& s : kSites) {
    if (s.id == id) return s.name;
  }
  return "?";
}

Telemetry::Telemetry(const TelemetryOptions& options) : options_(options) {
  instance_id_ = g_next_instance.fetch_add(1, std::memory_order_relaxed);
  size_t ring = 1;
  while (ring < options_.ring_spans) ring <<= 1;
  const int n = options_.max_lanes > 0 ? options_.max_lanes : 1;
  lanes_ = std::vector<SpanLane>(static_cast<size_t>(n));
  for (SpanLane& lane : lanes_) {
    lane.slots_ = std::vector<SpanSlot>(ring);
    lane.mask_ = ring - 1;
  }
  NowNs();  // pin the process epoch before any worker races the init
  counter_ring_.resize(static_cast<size_t>(
      options_.counter_samples > 0 ? options_.counter_samples : 1));

  std_.tick_total_us = metrics_.RegisterHistogram("tick.total_us");
  std_.tick_query_us = metrics_.RegisterHistogram("tick.query_us");
  std_.tick_merge_us = metrics_.RegisterHistogram("tick.merge_us");
  std_.tick_update_us = metrics_.RegisterHistogram("tick.update_us");
  std_.probe_us = metrics_.RegisterHistogram("probe.us");
  std_.job_wait_us = metrics_.RegisterHistogram("job.wait_us");
  std_.barrier_stall_us = metrics_.RegisterHistogram("barrier.stall_us");
  std_.shard_query_us = metrics_.RegisterHistogram("shard.query_us");
  std_.cross_shard_records_total =
      metrics_.RegisterCounter("shard.cross_records_total");
  std_.jobs_submitted = metrics_.RegisterCounter("jobs.submitted");
  std_.jobs_installed = metrics_.RegisterCounter("jobs.installed");
  std_.jobs_in_flight = metrics_.RegisterGauge("jobs.in_flight");
  std_.shard_imbalance_bp = metrics_.RegisterGauge("shard.imbalance_bp");
  std_.cross_shard_records = metrics_.RegisterGauge("shard.cross_records");
  std_.vm_programs = metrics_.RegisterGauge("vm.programs");
}

int64_t Telemetry::NowNs() {
  static const std::chrono::steady_clock::time_point kEpoch =
      std::chrono::steady_clock::now();
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - kEpoch)
      .count();
}

SpanLane* Telemetry::Lane() {
  LaneBinding& b = g_lane_binding;
  if (b.owner == instance_id_) return b.lane;
  return BindLane();
}

SpanLane* Telemetry::BindLane() {
  const int idx = next_lane_.fetch_add(1, std::memory_order_relaxed);
  LaneBinding& b = g_lane_binding;
  b.owner = instance_id_;
  if (idx < static_cast<int>(lanes_.size())) {
    b.lane = &lanes_[static_cast<size_t>(idx)];
  } else {
    b.lane = nullptr;
    dropped_threads_.fetch_add(1, std::memory_order_relaxed);
  }
  return b.lane;
}

int64_t Telemetry::total_spans() const {
  int64_t n = 0;
  for (const SpanLane& lane : lanes_) {
    n += static_cast<int64_t>(lane.count_.load(std::memory_order_acquire));
  }
  return n;
}

int64_t Telemetry::dropped_spans() const {
  int64_t n = 0;
  for (const SpanLane& lane : lanes_) {
    const uint64_t c = lane.count_.load(std::memory_order_acquire);
    const uint64_t cap = lane.slots_.size();
    if (c > cap) n += static_cast<int64_t>(c - cap);
  }
  return n;
}

std::vector<SpanView> Telemetry::CollectSpans() const {
  std::vector<SpanView> out;
  for (size_t l = 0; l < lanes_.size(); ++l) {
    const SpanLane& lane = lanes_[l];
    const uint64_t c = lane.count_.load(std::memory_order_acquire);
    if (c == 0) continue;
    const uint64_t cap = lane.slots_.size();
    // Wrapped lanes: the oldest surviving slot may be mid-overwrite by the
    // owner thread — discard it and keep the provably complete window.
    const uint64_t start = c > cap ? c - cap + 1 : 0;
    for (uint64_t i = start; i < c; ++i) {
      const SpanSlot& s = lane.slots_[static_cast<size_t>(i) & lane.mask_];
      SpanView v;
      v.site = s.site.load(std::memory_order_relaxed);
      v.name = SpanSiteName(v.site);
      v.begin_ns = s.begin_ns.load(std::memory_order_relaxed);
      v.end_ns = s.end_ns.load(std::memory_order_relaxed);
      v.tick = static_cast<Tick>(s.tick.load(std::memory_order_relaxed));
      v.arg = s.arg.load(std::memory_order_relaxed);
      v.depth = s.depth.load(std::memory_order_relaxed);
      v.track = s.track.load(std::memory_order_relaxed);
      v.lane = static_cast<int>(l);
      out.push_back(v);
    }
  }
  return out;
}

void Telemetry::RecordTick(const TickSample& s) {
  metrics_.Record(std_.tick_total_us, s.total_us);
  metrics_.Record(std_.tick_query_us, s.query_us);
  metrics_.Record(std_.tick_merge_us, s.merge_us);
  metrics_.Record(std_.tick_update_us, s.update_us);
  if (s.probe_us > 0) metrics_.Record(std_.probe_us, s.probe_us);
  if (s.job_wait_us >= 0) metrics_.Record(std_.job_wait_us, s.job_wait_us);
  if (s.barrier_stall_us >= 0) {
    metrics_.Record(std_.barrier_stall_us, s.barrier_stall_us);
    metrics_.Set(std_.shard_imbalance_bp, s.shard_imbalance_bp);
  }
  if (s.cross_shard_records > 0) {
    metrics_.Count(std_.cross_shard_records_total, s.cross_shard_records);
  }
  metrics_.Set(std_.cross_shard_records, s.cross_shard_records);
  if (s.jobs_submitted > 0) {
    metrics_.Count(std_.jobs_submitted, s.jobs_submitted);
  }
  if (s.jobs_installed > 0) {
    metrics_.Count(std_.jobs_installed, s.jobs_installed);
  }
  metrics_.Set(std_.jobs_in_flight, s.jobs_in_flight);
  metrics_.Set(std_.vm_programs, s.vm_programs);
  // Counter-sample ring (single writer: the barrier thread). Slot write,
  // then a release publish of the count — the exporter's read protocol
  // mirrors the span lanes.
  const uint64_t i = counter_count_.load(std::memory_order_relaxed);
  CounterSample& slot = counter_ring_[static_cast<size_t>(
      i % counter_ring_.size())];
  slot.ts_ns = NowNs();
  slot.sample = s;
  counter_count_.store(i + 1, std::memory_order_release);
}

void Telemetry::EnsureSites(int num_sites) {
  if (static_cast<int>(sites_.size()) >= num_sites) return;
  const size_t old = sites_.size();
  sites_.resize(static_cast<size_t>(num_sites));
  for (size_t i = old; i < sites_.size(); ++i) {
    sites_[i].history.resize(
        static_cast<size_t>(options_.site_history > 0 ? options_.site_history
                                                      : 1));
  }
}

void Telemetry::RecordSiteDecision(int site, Tick tick, const char* strategy,
                                   bool eval_vm, bool probe_batched) {
  if (site < 0 || site >= static_cast<int>(sites_.size())) return;
  SiteSeries& s = sites_[static_cast<size_t>(site)];
  s.site = site;
  const bool changed = s.decisions == 0 || s.strategy != strategy ||
                       s.last_eval_vm != eval_vm ||
                       s.last_probe_batched != probe_batched;
  s.strategy = strategy;
  s.last_eval_vm = eval_vm;
  s.last_probe_batched = probe_batched;
  if (eval_vm) ++s.eval_vm_ticks;
  if (probe_batched) ++s.probe_batched_ticks;
  if (!changed) return;
  SiteDecision& d =
      s.history[static_cast<size_t>(s.decisions) % s.history.size()];
  d.tick = tick;
  d.strategy = strategy;
  d.eval_vm = eval_vm;
  d.probe_batched = probe_batched;
  ++s.decisions;
}

void Telemetry::RecordSiteTick(int site, int64_t micros, int64_t probe_micros,
                               int64_t outer_rows, int64_t candidates,
                               int64_t matches, int64_t effects) {
  if (site < 0 || site >= static_cast<int>(sites_.size())) return;
  SiteSeries& s = sites_[static_cast<size_t>(site)];
  s.site = site;
  ++s.ticks;
  s.micros += micros;
  s.probe_micros += probe_micros;
  s.outer_rows += outer_rows;
  s.candidates += candidates;
  s.matches += matches;
  s.effects += effects;
}

void Telemetry::RecordSiteBeliefs(int site, double eval_interp,
                                  double eval_vm, double probe_single,
                                  double probe_batched) {
  if (site < 0 || site >= static_cast<int>(sites_.size())) return;
  SiteSeries& s = sites_[static_cast<size_t>(site)];
  s.eval_us_per_outer[0] = eval_interp;
  s.eval_us_per_outer[1] = eval_vm;
  s.probe_us_per_outer[0] = probe_single;
  s.probe_us_per_outer[1] = probe_batched;
}

std::string Telemetry::DescribeSites() const {
  std::string out;
  char line[320];
  for (const SiteSeries& s : sites_) {
    if (s.site < 0) continue;
    std::snprintf(
        line, sizeof(line),
        "site %-3d %-12s ticks=%lld us=%lld probe_us=%lld outer=%lld "
        "cand=%lld match=%lld effects=%lld eval=%s probe=%s "
        "beliefs(eval %.3f/%.3f probe %.3f/%.3f) switches=%lld\n",
        s.site, s.strategy != nullptr ? s.strategy : "?",
        static_cast<long long>(s.ticks), static_cast<long long>(s.micros),
        static_cast<long long>(s.probe_micros),
        static_cast<long long>(s.outer_rows),
        static_cast<long long>(s.candidates),
        static_cast<long long>(s.matches),
        static_cast<long long>(s.effects), s.last_eval_vm ? "vm" : "interp",
        s.last_probe_batched ? "batched" : "single", s.eval_us_per_outer[0],
        s.eval_us_per_outer[1], s.probe_us_per_outer[0],
        s.probe_us_per_outer[1], static_cast<long long>(s.decisions));
    out += line;
  }
  return out;
}

std::string Telemetry::DescribeSitesJson() const {
  std::string out = "[";
  char line[512];
  bool first = true;
  for (const SiteSeries& s : sites_) {
    if (s.site < 0) continue;
    std::snprintf(
        line, sizeof(line),
        "{\"site\":%d,\"strategy\":\"%s\",\"ticks\":%lld,\"us\":%lld,"
        "\"probe_us\":%lld,\"outer\":%lld,\"cand\":%lld,\"match\":%lld,"
        "\"effects\":%lld,\"eval\":\"%s\",\"probe\":\"%s\","
        "\"beliefs\":{\"eval\":[%.3f,%.3f],\"probe\":[%.3f,%.3f]},"
        "\"switches\":%lld}",
        s.site, s.strategy != nullptr ? s.strategy : "?",
        static_cast<long long>(s.ticks), static_cast<long long>(s.micros),
        static_cast<long long>(s.probe_micros),
        static_cast<long long>(s.outer_rows),
        static_cast<long long>(s.candidates),
        static_cast<long long>(s.matches),
        static_cast<long long>(s.effects), s.last_eval_vm ? "vm" : "interp",
        s.last_probe_batched ? "batched" : "single", s.eval_us_per_outer[0],
        s.eval_us_per_outer[1], s.probe_us_per_outer[0],
        s.probe_us_per_outer[1], static_cast<long long>(s.decisions));
    if (!first) out += ',';
    first = false;
    out += line;
  }
  out += "]";
  return out;
}

}  // namespace sgl
