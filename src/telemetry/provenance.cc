#include "src/telemetry/provenance.h"

#include <algorithm>
#include <numeric>

namespace sgl {

namespace {

/// (target, field) key of a frame record — the index's sort key.
struct RecKey {
  EntityId target;
  FieldIdx field;
};

bool KeyLess(const RecKey& a, const RecKey& b) {
  if (a.target != b.target) return a.target < b.target;
  return a.field < b.field;
}

RecKey KeyOf(const FrameRecord& fr) {
  return RecKey{fr.rec.target, fr.rec.field};
}

ProvValue AfterOf(const FrameRecord& fr) {
  ProvValue v;
  v.known = fr.after_known;
  v.kind = fr.after_kind;
  v.num = fr.after_num;
  v.b = fr.after_bool;
  v.ref = fr.after_ref;
  v.set_size = fr.after_set_size;
  return v;
}

ProvStep StepOf(const FrameRecord& fr) {
  const TraceRecord& r = fr.rec;
  ProvStep s;
  s.tick = r.tick;
  s.site = r.prov.site;
  s.assign_id = r.assign_id;
  s.order_key = r.order_key;
  s.is_txn = r.prov.txn >= 0;
  s.txn = r.prov.txn;
  s.src_shard = r.prov.src_shard;
  s.src_outer = r.prov.src_outer;
  s.src_inner = r.prov.src_inner;
  s.contrib_kind = r.value.kind();
  switch (s.contrib_kind) {
    case ValueKind::kNumber:
      s.contrib_num = r.value.AsNumber();
      break;
    case ValueKind::kBool:
      s.contrib_bool = r.value.AsBool();
      break;
    case ValueKind::kRef:
      s.contrib_ref = r.value.AsRef();
      break;
    case ValueKind::kSet:
      s.contrib_set_size = static_cast<int64_t>(r.value.AsSet().size());
      break;
  }
  return s;
}

/// [lo, hi) positions of `perm` whose records match (entity, field).
std::pair<size_t, size_t> EqualRun(const TickFrame& f,
                                   const std::vector<uint32_t>& perm,
                                   EntityId entity, FieldIdx field) {
  const RecKey want{entity, field};
  const auto lo = std::lower_bound(
      perm.begin(), perm.end(), want,
      [&](uint32_t pos, const RecKey& k) {
        return KeyLess(KeyOf(f.records[pos]), k);
      });
  const auto hi = std::upper_bound(
      lo, perm.end(), want, [&](const RecKey& k, uint32_t pos) {
        return KeyLess(k, KeyOf(f.records[pos]));
      });
  return {static_cast<size_t>(lo - perm.begin()),
          static_cast<size_t>(hi - perm.begin())};
}

}  // namespace

const char* ProvStatusName(ProvStatus s) {
  switch (s) {
    case ProvStatus::kOk: return "ok";
    case ProvStatus::kEvicted: return "evicted";
    case ProvStatus::kNotRecorded: return "not-recorded";
    case ProvStatus::kTruncated: return "truncated";
    case ProvStatus::kNoWrites: return "no-writes";
  }
  return "?";
}

ProvenanceIndex::ProvenanceIndex(const FlightRecorder* recorder)
    : rec_(recorder) {
  cache_.resize(static_cast<size_t>(rec_->ring_ticks()));
}

ProvStatus ProvenanceIndex::ClassifyMiss(Tick tick) const {
  const Tick oldest = rec_->oldest_tick();
  if (oldest >= 0 && tick < oldest) return ProvStatus::kEvicted;
  return ProvStatus::kNotRecorded;
}

const ProvenanceIndex::FrameIndex* ProvenanceIndex::IndexFor(
    const TickFrame** frame_out, Tick tick, ProvStatus* status) const {
  const TickFrame* f = rec_->frame(tick);
  if (f == nullptr) {
    *status = ClassifyMiss(tick);
    *frame_out = nullptr;
    return nullptr;
  }
  *frame_out = f;
  FrameIndex& slot = cache_[static_cast<size_t>(f->seq) % cache_.size()];
  if (slot.seq != f->seq || slot.tick != f->tick) {
    slot.seq = f->seq;
    slot.tick = f->tick;
    slot.perm.resize(f->num_records);
    std::iota(slot.perm.begin(), slot.perm.end(), 0u);
    // The frame is already canonically sorted, so a stable sort by
    // (target, field) leaves every equal run in canonical chain order.
    std::stable_sort(slot.perm.begin(), slot.perm.end(),
                     [f](uint32_t a, uint32_t b) {
                       return KeyLess(KeyOf(f->records[a]),
                                      KeyOf(f->records[b]));
                     });
  }
  *status = ProvStatus::kOk;
  return &slot;
}

WhyResult ProvenanceIndex::WhyDidChange(EntityId entity, FieldIdx field,
                                        Tick tick) const {
  WhyResult out;
  out.entity = entity;
  out.field = field;
  out.tick = tick;
  const TickFrame* f = nullptr;
  ProvStatus st = ProvStatus::kOk;
  const FrameIndex* idx = IndexFor(&f, tick, &st);
  if (idx == nullptr) {
    out.status = st;
    return out;
  }
  const auto run = EqualRun(*f, idx->perm, entity, field);
  if (run.first == run.second) {
    out.status = f->dropped_records > 0 ? ProvStatus::kTruncated
                                        : ProvStatus::kNoWrites;
    return out;
  }
  out.status = f->dropped_records > 0 ? ProvStatus::kTruncated
                                      : ProvStatus::kOk;
  out.steps.reserve(run.second - run.first);
  for (size_t i = run.first; i < run.second; ++i) {
    out.steps.push_back(StepOf(f->records[idx->perm[i]]));
  }
  out.after = AfterOf(f->records[idx->perm[run.second - 1]]);
  // Before-value: the latest earlier in-ring frame that wrote the same
  // (entity, field). In-ring frames are contiguous in tick, so the walk
  // stops at the first missing frame.
  const Tick oldest = rec_->oldest_tick();
  for (Tick t = tick - 1; t >= oldest && t >= 0; --t) {
    const TickFrame* g = nullptr;
    ProvStatus gst = ProvStatus::kOk;
    const FrameIndex* gidx = IndexFor(&g, t, &gst);
    if (gidx == nullptr) break;
    const auto grun = EqualRun(*g, gidx->perm, entity, field);
    if (grun.first == grun.second) continue;
    out.before = AfterOf(g->records[gidx->perm[grun.second - 1]]);
    break;
  }
  return out;
}

ExplainResult ProvenanceIndex::ExplainTick(Tick tick) const {
  ExplainResult out;
  out.tick = tick;
  const TickFrame* f = rec_->frame(tick);
  if (f == nullptr) {
    out.status = ClassifyMiss(tick);
    return out;
  }
  out.status = f->dropped_records > 0 ? ProvStatus::kTruncated
                                      : ProvStatus::kOk;
  out.total_micros = f->total_micros;
  out.query_effect_micros = f->query_effect_micros;
  out.merge_micros = f->merge_micros;
  out.update_micros = f->update_micros;
  out.probe_micros = f->probe_micros;
  out.barrier_stall_us = f->barrier_stall_us;
  out.imbalance_bp = f->imbalance_bp;
  out.cross_shard_records = f->cross_shard_records;
  out.txn_issued = f->txn_issued;
  out.txn_committed = f->txn_committed;
  out.txn_aborted = f->txn_aborted;
  out.num_records = static_cast<int64_t>(f->num_records);
  out.dropped_records = f->dropped_records;

  auto row_for = [&out](int site) -> ExplainSiteRow& {
    for (ExplainSiteRow& r : out.sites) {
      if (r.site == site) return r;
    }
    out.sites.emplace_back();
    out.sites.back().site = site;
    return out.sites.back();
  };
  for (size_t i = 0; i < f->num_sites; ++i) {
    const SiteFeedback& fb = f->sites[i];
    ExplainSiteRow& r = row_for(fb.site);
    r.micros += fb.micros;
    r.outer_rows += fb.outer_rows;
    r.matches += fb.matches;
    r.effects += fb.effects;
  }
  for (size_t i = 0; i < f->num_records; ++i) {
    ++row_for(f->records[i].rec.prov.site).records;
  }
  std::sort(out.sites.begin(), out.sites.end(),
            [](const ExplainSiteRow& a, const ExplainSiteRow& b) {
              return a.site < b.site;
            });
  return out;
}

}  // namespace sgl
