// Chrome trace-event export (src/telemetry/): renders the span rings as
// the JSON Object Format chrome://tracing and Perfetto load directly.
//
// Mapping: pid = span track (0 = world/barrier thread, s+1 = shard s),
// tid = lane index (one per recording thread), "X" complete events with
// microsecond ts/dur, plus "M" metadata naming every process and thread.
// The per-tick counter ring renders as "C" counter events on pid 0 —
// Perfetto draws each name (tick.total_us, shard.imbalance_bp,
// jobs.in_flight) as its own counter lane over the timeline — and the
// final metrics snapshot contributes one trailing "C" event per gauge and
// per histogram p50. Entirely off the hot path — allocates freely.

#include <algorithm>
#include <cstdio>
#include <set>
#include <utility>

#include "src/telemetry/telemetry.h"

namespace sgl {

std::string Telemetry::DumpChromeTrace() const {
  std::vector<SpanView> spans = CollectSpans();
  // Stable render order: by begin time, ties by lane then depth, so equal
  // traces serialize identically.
  std::sort(spans.begin(), spans.end(),
            [](const SpanView& a, const SpanView& b) {
              if (a.begin_ns != b.begin_ns) return a.begin_ns < b.begin_ns;
              if (a.lane != b.lane) return a.lane < b.lane;
              return a.depth < b.depth;
            });

  std::string out = "{\"traceEvents\":[";
  bool first = true;
  char buf[320];
  auto emit = [&](const char* e) {
    if (!first) out += ',';
    first = false;
    out += e;
  };

  std::set<int> tracks;
  std::set<std::pair<int, int>> threads;  // (track, lane)
  for (const SpanView& s : spans) {
    tracks.insert(static_cast<int>(s.track));
    threads.emplace(static_cast<int>(s.track), s.lane);
  }
  for (int t : tracks) {
    if (t == 0) {
      std::snprintf(buf, sizeof(buf),
                    "{\"ph\":\"M\",\"pid\":0,\"tid\":0,\"name\":"
                    "\"process_name\",\"args\":{\"name\":\"world\"}}");
    } else {
      std::snprintf(buf, sizeof(buf),
                    "{\"ph\":\"M\",\"pid\":%d,\"tid\":0,\"name\":"
                    "\"process_name\",\"args\":{\"name\":\"shard %d\"}}",
                    t, t - 1);
    }
    emit(buf);
  }
  for (const auto& tl : threads) {
    std::snprintf(buf, sizeof(buf),
                  "{\"ph\":\"M\",\"pid\":%d,\"tid\":%d,\"name\":"
                  "\"thread_name\",\"args\":{\"name\":\"lane %d\"}}",
                  tl.first, tl.second, tl.second);
    emit(buf);
  }

  for (const SpanView& s : spans) {
    const double ts_us = static_cast<double>(s.begin_ns) / 1000.0;
    const double dur_us =
        static_cast<double>(s.end_ns - s.begin_ns) / 1000.0;
    std::snprintf(buf, sizeof(buf),
                  "{\"ph\":\"X\",\"pid\":%d,\"tid\":%d,\"ts\":%.3f,"
                  "\"dur\":%.3f,\"name\":\"%s\",\"args\":{\"tick\":%lld,"
                  "\"arg\":%u,\"depth\":%u}}",
                  static_cast<int>(s.track), s.lane, ts_us,
                  dur_us >= 0.0 ? dur_us : 0.0, s.name,
                  static_cast<long long>(s.tick),
                  static_cast<unsigned>(s.arg),
                  static_cast<unsigned>(s.depth));
    emit(buf);
  }

  // --- Counter lanes ("C" events) ---------------------------------------
  auto emit_counter = [&](double ts_us, const char* name, long long value) {
    std::snprintf(buf, sizeof(buf),
                  "{\"ph\":\"C\",\"pid\":0,\"tid\":0,\"ts\":%.3f,"
                  "\"name\":\"%s\",\"args\":{\"value\":%lld}}",
                  ts_us, name, value);
    emit(buf);
  };
  // Per-tick samples from the counter ring (same wrapped-window read
  // protocol as the span lanes: discard the possibly-torn oldest slot).
  const uint64_t cc = counter_count_.load(std::memory_order_acquire);
  const uint64_t ccap = counter_ring_.size();
  const uint64_t cstart = cc > ccap ? cc - ccap + 1 : 0;
  int64_t last_ts_ns = 0;
  for (uint64_t i = cstart; i < cc; ++i) {
    const CounterSample& s =
        counter_ring_[static_cast<size_t>(i % ccap)];
    const double ts_us = static_cast<double>(s.ts_ns) / 1000.0;
    emit_counter(ts_us, "tick.total_us",
                 static_cast<long long>(s.sample.total_us));
    emit_counter(ts_us, "shard.imbalance_bp",
                 static_cast<long long>(s.sample.shard_imbalance_bp));
    emit_counter(ts_us, "jobs.in_flight",
                 static_cast<long long>(s.sample.jobs_in_flight));
    if (s.ts_ns > last_ts_ns) last_ts_ns = s.ts_ns;
  }
  // Final snapshot: every gauge, and every histogram's p50, once at the
  // last sample's timestamp.
  const MetricsSnapshot snap = metrics_.Snapshot();
  const double tail_us = static_cast<double>(last_ts_ns) / 1000.0;
  for (const auto& g : snap.gauges) {
    std::string name = "gauge." + g.first;
    emit_counter(tail_us, name.c_str(), static_cast<long long>(g.second));
  }
  for (const HistogramSnapshot& h : snap.histograms) {
    if (h.count == 0) continue;
    std::string name = h.name + ".p50";
    emit_counter(tail_us, name.c_str(),
                 static_cast<long long>(h.Percentile(50.0)));
  }

  out += "],\"displayTimeUnit\":\"ms\"}";
  return out;
}

Status Telemetry::WriteChromeTrace(const std::string& path) const {
  const std::string json = DumpChromeTrace();
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::Internal("cannot open trace file: " + path);
  }
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  if (written != json.size()) {
    return Status::Internal("short write on trace file: " + path);
  }
  return Status::OK();
}

}  // namespace sgl
