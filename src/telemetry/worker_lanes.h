// WorkerLanes<Record>: per-worker pooled append lanes with a lock-free
// record path (src/telemetry/).
//
// The shape the span rings use, generalized for variable-volume records
// (e.g. EffectTracer's TraceRecords): each recording thread binds one
// preallocated lane on first append (thread-local cache, no lock) and is
// its only writer. A lane is a pooled vector plus a release-published
// count: Append() overwrites slot `count` when capacity allows and
// publishes `count + 1`, so after warmup the hot path touches no lock and
// allocates nothing — growth past the high-water mark is an amortized
// push_back, and Clear() resets counts while keeping every lane's
// capacity.
//
// Contracts:
//   * Single writer per lane (enforced by the thread binding). Readers
//     (ForEach / size) may run concurrently and see only published
//     records; they are expected to run at a quiescent point (the tick
//     barrier) for a complete view.
//   * Clear() must run quiesced (no concurrent appends).
//   * Up to kMaxLiveInstances live WorkerLanes per Record type per thread:
//     the thread-local binding caches that many (instance, lane) pairs, so
//     a user EffectTracer and the flight recorder's internal tracer can
//     both be armed without burning lane indexes on every alternation. A
//     thread alternating among *more* live instances evicts round-robin
//     and burns a fresh lane index per re-bind. Engine usage never does
//     this.
//   * Threads beyond `max_lanes` drop their records (dropped() counts).

#ifndef SGL_TELEMETRY_WORKER_LANES_H_
#define SGL_TELEMETRY_WORKER_LANES_H_

#include <atomic>
#include <cstdint>
#include <vector>

namespace sgl {

template <typename Record>
class WorkerLanes {
 public:
  explicit WorkerLanes(int max_lanes = 64)
      : lanes_(static_cast<size_t>(max_lanes > 0 ? max_lanes : 1)) {
    instance_id_ = NextInstanceId();
  }
  WorkerLanes(const WorkerLanes&) = delete;
  WorkerLanes& operator=(const WorkerLanes&) = delete;

  /// Appends a copy of `r` to the calling thread's lane. Allocation-free
  /// once the lane has reached its high-water capacity.
  void Append(const Record& r) {
    Lane* lane = LaneForThread();
    if (lane == nullptr) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    const size_t n = lane->count.load(std::memory_order_relaxed);
    if (n == lane->records.size()) {
      lane->records.push_back(r);
    } else {
      lane->records[n] = r;
    }
    lane->count.store(n + 1, std::memory_order_release);
  }

  /// Published records across all lanes.
  size_t size() const {
    size_t n = 0;
    for (const Lane& lane : lanes_) {
      n += lane.count.load(std::memory_order_acquire);
    }
    return n;
  }

  /// Visits every published record, lane-major. Quiescent-point API.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (const Lane& lane : lanes_) {
      const size_t c = lane.count.load(std::memory_order_acquire);
      for (size_t i = 0; i < c; ++i) fn(lane.records[i]);
    }
  }

  /// Resets every lane's count, keeping capacity (pooled reuse). Must run
  /// quiesced.
  void Clear() {
    for (Lane& lane : lanes_) {
      lane.count.store(0, std::memory_order_relaxed);
    }
  }

  int64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }

 private:
  struct Lane {
    std::vector<Record> records;
    std::atomic<size_t> count{0};
  };
  /// Live instances one thread can record into without re-binding (see
  /// header contract). 2 covers the engine's worst case (user tracer +
  /// flight-recorder tracer); 4 leaves headroom for tests.
  static constexpr int kMaxLiveInstances = 4;
  struct Binding {
    uint64_t owner = 0;
    Lane* lane = nullptr;
  };
  struct Bindings {
    Binding entries[kMaxLiveInstances];
    int next_evict = 0;
  };

  static uint64_t NextInstanceId() {
    static std::atomic<uint64_t> next{1};
    return next.fetch_add(1, std::memory_order_relaxed);
  }

  Lane* LaneForThread() {
    static thread_local Bindings tls;  // per (Record type, thread)
    for (const Binding& b : tls.entries) {
      if (b.owner == instance_id_) return b.lane;
    }
    const int idx = next_lane_.fetch_add(1, std::memory_order_relaxed);
    Binding* slot = nullptr;
    for (Binding& b : tls.entries) {
      if (b.owner == 0) {
        slot = &b;
        break;
      }
    }
    if (slot == nullptr) {  // all occupied (likely by dead instances): rotate
      slot = &tls.entries[tls.next_evict];
      tls.next_evict = (tls.next_evict + 1) % kMaxLiveInstances;
    }
    slot->owner = instance_id_;
    slot->lane = idx < static_cast<int>(lanes_.size())
                     ? &lanes_[static_cast<size_t>(idx)]
                     : nullptr;
    return slot->lane;
  }

  std::vector<Lane> lanes_;  ///< sized once (atomics are not movable)
  uint64_t instance_id_ = 0;
  std::atomic<int> next_lane_{0};
  std::atomic<int64_t> dropped_{0};
};

}  // namespace sgl

#endif  // SGL_TELEMETRY_WORKER_LANES_H_
