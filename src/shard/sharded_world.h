// ShardedWorld: a World partitioned into N row-range shards.
//
// Shard s of class c owns the contiguous row range
// [shard_begin(c, s), shard_end(c, s)) of the class's column arena — the
// shard's "table" is a row slice, not a separate object, so the QUERY
// phase's cross-shard *reads* (accum joins over the full class extent,
// TargetKind::kRef dereferences) cost nothing: they are ordinary column
// reads of the replicated-by-construction read view, exactly what a
// distributed deployment gets from full-interest replication. Cross-shard
// *writes* are where the partition bites: effects targeting rows outside
// the emitting shard's ranges are routed through ShardRouter mailboxes and
// merged at the tick barrier (shard_router.h), and transaction intents
// carry their shard-of-owner in the per-shard TxnIntentLog dimension.
//
// The block partition keeps each shard's rows contiguous *and* in global
// spawn order, which is what makes the sharded tick bit-comparable to the
// single-shard one (see src/shard/README.md). Entities move between shards
// only through EntityMigrator, which rewrites the class arenas as column
// memcpy slices and refreshes the directory in one pass — the same
// machinery backs bulk spawn/despawn.

#ifndef SGL_SHARD_SHARDED_WORLD_H_
#define SGL_SHARD_SHARDED_WORLD_H_

#include <string>
#include <utility>
#include <vector>

#include "src/shard/entity_migrator.h"
#include "src/storage/world.h"

namespace sgl {

/// One queued shard move, applied at the next tick barrier.
struct ShardMove {
  EntityId id = kNullEntity;
  int dst_shard = 0;
};

class ShardedWorld {
 public:
  /// Partitions `world` (not owned, must outlive this) into `num_shards`
  /// block ranges. May be built before entities exist: the partition is
  /// (re)computed lazily on first use, so workload builders can spawn
  /// through the plain Engine API first.
  ShardedWorld(World* world, int num_shards);

  World& world() { return *world_; }
  const World& world() const { return *world_; }
  int num_shards() const { return num_shards_; }

  /// Tick barriers completed (mailbox double-buffer parity, tests).
  uint64_t epoch() const { return epoch_; }
  void BumpEpoch() { ++epoch_; }

  /// Block-partitions every class's current rows evenly, without moving
  /// any row. Also the fallback recovery path after a checkpoint restore
  /// whose partition cannot be resumed (different shard count).
  void PartitionBlock();

  /// Serializes the current partition (per-class shard boundaries) for a
  /// sharded checkpoint. Builds the partition first if it never was.
  void SerializePartition(std::string* out);
  /// Restores a partition serialized by SerializePartition over the
  /// already-restored world: validates shard/class counts and that the
  /// boundaries cover each class's current row count exactly, then
  /// rebuilds the per-row shard map. On error the existing partition
  /// state is left untouched — callers fall back to PartitionBlock().
  Status RestorePartition(const std::string& data);

  /// Recomputes the partition if it has never been built or table sizes
  /// drifted behind its back (pre-partition spawns). Idempotent.
  void EnsurePartition();

  // --- Partition queries (valid after EnsurePartition) -----------------

  RowIdx shard_begin(ClassId cls, int s) const {
    return parts_[static_cast<size_t>(cls)].base[static_cast<size_t>(s)];
  }
  RowIdx shard_end(ClassId cls, int s) const {
    return parts_[static_cast<size_t>(cls)].base[static_cast<size_t>(s) + 1];
  }
  int ShardOfRow(ClassId cls, RowIdx row) const {
    return parts_[static_cast<size_t>(cls)].shard_of[row];
  }
  /// Shard owning `id`, or -1 if the entity does not exist.
  int ShardOfEntity(EntityId id) const;

  // --- Entity management (tick-boundary only) --------------------------
  // All paths keep ranges contiguous; World::Despawn's swap-remove must
  // not be used on a partitioned world.

  /// Spawns into `shard` (-1 = the last shard: a pure column append, no
  /// row moves).
  StatusOr<EntityId> Spawn(
      const std::string& cls_name,
      const std::vector<std::pair<std::string, Value>>& init,
      int shard = -1);

  /// Columnar bulk spawn of `n` default-initialized entities into `shard`
  /// (the streaming ingest path: one arena rebuild instead of n boxed
  /// spawns). Appends new ids to `out_ids` if non-null.
  Status SpawnBatch(ClassId cls, size_t n, int shard,
                    std::vector<EntityId>* out_ids);

  Status Despawn(EntityId id);
  /// Columnar bulk despawn: one arena rebuild per affected class.
  Status DespawnBatch(const std::vector<EntityId>& ids);

  // --- Migration -------------------------------------------------------

  /// Queues a move; the executor applies all queued moves at the next tick
  /// barrier (ApplyPendingMigrations).
  Status QueueMigration(EntityId id, int dst_shard);
  bool has_pending_migrations() const { return !pending_.empty(); }
  /// Drops queued moves without applying them (checkpoint restore: moves
  /// queued against the pre-restore world must not replay on the restored
  /// one).
  void ClearPendingMigrations() { pending_.clear(); }
  /// Applies queued moves (tick barrier / tests). Clears the queue.
  Status ApplyPendingMigrations();
  /// Immediate batch migration (tick-boundary).
  Status MigrateNow(const std::vector<ShardMove>& moves);

  /// Validates ranges, shard_of, and directory coherence (tests).
  bool PartitionConsistent() const;

 private:
  friend class EntityMigrator;

  /// Row partition of one class: shard s owns [base[s], base[s+1]).
  struct ClassPartition {
    std::vector<RowIdx> base;       ///< size num_shards + 1 (prefix sums)
    std::vector<uint8_t> shard_of;  ///< per row; O(1) effect routing
  };

  /// Rebuilds base/shard_of of `cls` from per-shard row counts (rows are
  /// already grouped by shard in range order).
  void SetPartitionSizes(ClassId cls, const uint32_t* sizes);

  World* world_;
  int num_shards_;
  bool partitioned_ = false;
  std::vector<ClassPartition> parts_;  ///< by class
  EntityMigrator migrator_;
  std::vector<ShardMove> pending_;
  std::vector<ShardMove> single_move_;  ///< reused 1-element buffer
  uint64_t epoch_ = 0;
};

}  // namespace sgl

#endif  // SGL_SHARD_SHARDED_WORLD_H_
