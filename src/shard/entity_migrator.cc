#include "src/shard/entity_migrator.h"

#include "src/common/vec_util.h"
#include "src/shard/sharded_world.h"

namespace sgl {

void EntityMigrator::RebuildClass(ShardedWorld* sharded, ClassId cls) {
  World& world = sharded->world();
  EntityTable& table = world.table(cls);
  const size_t n = table.size();
  const int S = sharded->num_shards();

  // Slices: for each destination shard in order, the maximal runs of rows
  // assigned to it — stable, so within-shard row order (and with it every
  // order key derived from relative position) survives the move. One pass
  // collects the runs in row order; a counting sort by shard then lays
  // them out in (shard, row) order — O(n + S + runs), not O(S * n).
  runs_.clear();
  run_shard_.clear();
  ResizeAmortized(&sizes_, static_cast<size_t>(S));
  std::fill(sizes_.begin(), sizes_.end(), 0u);
  run_starts_.assign(static_cast<size_t>(S) + 1, 0u);
  for (size_t i = 0; i < n;) {
    const uint8_t s = assign_[i];
    size_t run = i + 1;
    while (run < n && assign_[run] == s) ++run;
    if (s < S) {  // dropped rows (bulk despawn) belong to no slice
      runs_.push_back(RowSlice{static_cast<RowIdx>(i),
                               static_cast<uint32_t>(run - i)});
      run_shard_.push_back(s);
      ++run_starts_[static_cast<size_t>(s) + 1];
      sizes_[s] += static_cast<uint32_t>(run - i);
    }
    i = run;
  }
  for (size_t s = 0; s < static_cast<size_t>(S); ++s) {
    run_starts_[s + 1] += run_starts_[s];
  }
  ResizeAmortized(&slices_, runs_.size());
  for (size_t r = 0; r < runs_.size(); ++r) {
    slices_[run_starts_[run_shard_[r]]++] = runs_[r];
  }
  table.RebuildBySlices(slices_.data(), slices_.size(), &table_scratch_);
  sharded->SetPartitionSizes(cls, sizes_.data());
  world.ReindexClass(cls);
}

Status EntityMigrator::Migrate(ShardedWorld* sharded, const ShardMove* moves,
                               size_t n) {
  sharded->EnsurePartition();
  World& world = sharded->world();
  const int S = sharded->num_shards();
  const int num_classes = world.catalog().num_classes();

  // Validate the whole batch before moving anything.
  for (size_t i = 0; i < n; ++i) {
    if (world.Find(moves[i].id) == nullptr) {
      return Status::NotFound("cannot migrate: entity does not exist");
    }
    if (moves[i].dst_shard < 0 || moves[i].dst_shard >= S) {
      return Status::InvalidArgument("destination shard out of range");
    }
  }

  ResizeAmortized(&class_touched_, static_cast<size_t>(num_classes));
  std::fill(class_touched_.begin(), class_touched_.end(), 0u);
  for (size_t i = 0; i < n; ++i) {
    const World::Locator* loc = world.Find(moves[i].id);
    if (sharded->ShardOfRow(loc->cls, loc->row) != moves[i].dst_shard) {
      class_touched_[static_cast<size_t>(loc->cls)] = 1;
    }
  }

  for (ClassId c = 0; c < num_classes; ++c) {
    if (!class_touched_[static_cast<size_t>(c)]) continue;
    const size_t rows = world.table(c).size();
    ResizeAmortized(&assign_, rows);
    const auto& part_shard_of = sharded->parts_[static_cast<size_t>(c)]
                                    .shard_of;
    std::copy(part_shard_of.begin(), part_shard_of.end(), assign_.begin());
    for (size_t i = 0; i < n; ++i) {
      const World::Locator* loc = world.Find(moves[i].id);
      if (loc->cls == c) {
        assign_[loc->row] = static_cast<uint8_t>(moves[i].dst_shard);
      }
    }
    RebuildClass(sharded, c);
  }
  return Status::OK();
}

Status EntityMigrator::SpawnBatch(ShardedWorld* sharded, ClassId cls,
                                  size_t n, int shard,
                                  std::vector<EntityId>* out_ids) {
  sharded->EnsurePartition();
  World& world = sharded->world();
  const int S = sharded->num_shards();
  if (shard < 0 || shard >= S) {
    return Status::InvalidArgument("destination shard out of range");
  }
  spawn_ids_.clear();
  world.SpawnBatch(cls, n, &spawn_ids_);
  auto& part = sharded->parts_[static_cast<size_t>(cls)];
  if (shard == S - 1) {
    // Appended rows already sit at the end of the last shard's range.
    part.shard_of.insert(part.shard_of.end(), n,
                         static_cast<uint8_t>(shard));
    part.base[static_cast<size_t>(S)] += static_cast<RowIdx>(n);
  } else {
    const size_t rows = world.table(cls).size();
    ResizeAmortized(&assign_, rows);
    std::copy(part.shard_of.begin(), part.shard_of.end(), assign_.begin());
    std::fill(assign_.begin() + static_cast<ptrdiff_t>(rows - n),
              assign_.end(), static_cast<uint8_t>(shard));
    RebuildClass(sharded, cls);
  }
  if (out_ids != nullptr) {
    out_ids->insert(out_ids->end(), spawn_ids_.begin(), spawn_ids_.end());
  }
  return Status::OK();
}

Status EntityMigrator::DespawnBatch(ShardedWorld* sharded,
                                    const EntityId* ids, size_t n) {
  sharded->EnsurePartition();
  World& world = sharded->world();
  const int num_classes = world.catalog().num_classes();
  for (size_t i = 0; i < n; ++i) {
    if (world.Find(ids[i]) == nullptr) {
      return Status::NotFound("cannot despawn: entity does not exist");
    }
  }
  ResizeAmortized(&class_touched_, static_cast<size_t>(num_classes));
  std::fill(class_touched_.begin(), class_touched_.end(), 0u);
  for (size_t i = 0; i < n; ++i) {
    class_touched_[static_cast<size_t>(world.Find(ids[i])->cls)] = 1;
  }
  constexpr uint8_t kDropped = 0xff;
  for (ClassId c = 0; c < num_classes; ++c) {
    if (!class_touched_[static_cast<size_t>(c)]) continue;
    const size_t rows = world.table(c).size();
    ResizeAmortized(&assign_, rows);
    const auto& part_shard_of = sharded->parts_[static_cast<size_t>(c)]
                                    .shard_of;
    std::copy(part_shard_of.begin(), part_shard_of.end(), assign_.begin());
    for (size_t i = 0; i < n; ++i) {
      const World::Locator* loc = world.Find(ids[i]);
      if (loc != nullptr && loc->cls == c) {
        assign_[loc->row] = kDropped;  // in no shard's slices: row dropped
        world.DirectoryErase(ids[i]);
      }
    }
    RebuildClass(sharded, c);
  }
  return Status::OK();
}

}  // namespace sgl
