// EntityMigrator: bulk columnar row movement between world shards.
//
// A migration batch is applied per class as one arena rebuild: rows are
// regrouped by destination shard (stable within a shard, so surviving
// relative order is preserved) and moved with EntityTable::RebuildBySlices
// — one memcpy per (column group, contiguous run), no per-row Value
// round-trips — after which the open-addressing directory is refreshed in
// a single pass. The same slice machinery implements bulk spawn (append a
// default-initialized block, then slide it into the target shard's range)
// and bulk despawn (slices that skip the victims).
//
// All scratch (assignment bytes, slice lists, per-class grouping) keeps
// its high-water capacity, so a steady rhythm of migration batches
// allocates nothing once warmed up.

#ifndef SGL_SHARD_ENTITY_MIGRATOR_H_
#define SGL_SHARD_ENTITY_MIGRATOR_H_

#include <vector>

#include "src/common/status.h"
#include "src/storage/entity_table.h"

namespace sgl {

class ShardedWorld;
struct ShardMove;

class EntityMigrator {
 public:
  /// Moves each entity to its destination shard. Unknown ids fail the
  /// whole batch before any row moves. Duplicate ids: the last move wins.
  Status Migrate(ShardedWorld* sharded, const ShardMove* moves, size_t n);

  /// Appends `n` default rows of `cls` and places them at the end of
  /// `shard`'s range. New ids append to `out_ids` if non-null.
  Status SpawnBatch(ShardedWorld* sharded, ClassId cls, size_t n, int shard,
                    std::vector<EntityId>* out_ids);

  /// Removes the given entities (directory + rows) with one rebuild per
  /// affected class.
  Status DespawnBatch(ShardedWorld* sharded, const EntityId* ids, size_t n);

 private:
  /// Regroups `cls`'s rows by assign_[row] (stable) and refreshes the
  /// partition + directory. assign_ must hold a destination shard per row.
  void RebuildClass(ShardedWorld* sharded, ClassId cls);

  TableRebuildScratch table_scratch_;
  std::vector<uint8_t> assign_;      ///< per-row destination shard
  std::vector<RowSlice> runs_;       ///< maximal same-shard runs, row order
  std::vector<uint8_t> run_shard_;   ///< destination of each run
  std::vector<uint32_t> run_starts_; ///< counting-sort offsets by shard
  std::vector<RowSlice> slices_;     ///< runs in (shard, row) order
  std::vector<uint32_t> sizes_;      ///< per-shard row counts
  std::vector<EntityId> spawn_ids_;
  std::vector<uint8_t> class_touched_;
};

}  // namespace sgl

#endif  // SGL_SHARD_ENTITY_MIGRATOR_H_
