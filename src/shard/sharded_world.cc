#include "src/shard/sharded_world.h"

#include <cstring>

namespace sgl {

namespace {
// Partition blob layout: magic, shard count, class count, then per class
// `num_shards + 1` uint32 range boundaries (prefix sums).
constexpr uint32_t kPartitionMagic = 0x53504152u;  // "SPAR"

void AppendU32(std::string* out, uint32_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}

bool ReadU32(const char** cursor, const char* end, uint32_t* v) {
  if (static_cast<size_t>(end - *cursor) < sizeof(*v)) return false;
  std::memcpy(v, *cursor, sizeof(*v));
  *cursor += sizeof(*v);
  return true;
}
}  // namespace

ShardedWorld::ShardedWorld(World* world, int num_shards)
    : world_(world), num_shards_(num_shards) {
  SGL_CHECK(num_shards_ >= 1 && num_shards_ < 255);  // shard ids fit uint8
  parts_.resize(static_cast<size_t>(world_->catalog().num_classes()));
}

void ShardedWorld::PartitionBlock() {
  const int num_classes = world_->catalog().num_classes();
  const size_t S = static_cast<size_t>(num_shards_);
  for (ClassId c = 0; c < num_classes; ++c) {
    ClassPartition& part = parts_[static_cast<size_t>(c)];
    const size_t n = world_->table(c).size();
    part.base.resize(S + 1);
    part.shard_of.resize(n);
    for (size_t s = 0; s <= S; ++s) {
      part.base[s] = static_cast<RowIdx>(n * s / S);
    }
    for (size_t s = 0; s < S; ++s) {
      std::fill(part.shard_of.begin() + part.base[s],
                part.shard_of.begin() + part.base[s + 1],
                static_cast<uint8_t>(s));
    }
  }
  partitioned_ = true;
}

void ShardedWorld::EnsurePartition() {
  if (!partitioned_) {
    PartitionBlock();
    return;
  }
  // Pre-partition spawns through the plain World API leave shard_of short;
  // fold the stragglers into the last shard (a pure append).
  const int num_classes = world_->catalog().num_classes();
  for (ClassId c = 0; c < num_classes; ++c) {
    ClassPartition& part = parts_[static_cast<size_t>(c)];
    const size_t n = world_->table(c).size();
    if (part.shard_of.size() == n) continue;
    SGL_CHECK(part.shard_of.size() < n &&
              "rows were removed behind the partition's back");
    part.shard_of.resize(n, static_cast<uint8_t>(num_shards_ - 1));
    part.base[static_cast<size_t>(num_shards_)] = static_cast<RowIdx>(n);
  }
}

void ShardedWorld::SerializePartition(std::string* out) {
  EnsurePartition();
  AppendU32(out, kPartitionMagic);
  AppendU32(out, static_cast<uint32_t>(num_shards_));
  AppendU32(out, static_cast<uint32_t>(parts_.size()));
  for (const ClassPartition& part : parts_) {
    for (RowIdx base : part.base) AppendU32(out, base);
  }
}

Status ShardedWorld::RestorePartition(const std::string& data) {
  const char* cursor = data.data();
  const char* end = data.data() + data.size();
  uint32_t magic, shards, classes;
  if (!ReadU32(&cursor, end, &magic) || magic != kPartitionMagic) {
    return Status::Internal("shard partition: bad magic");
  }
  if (!ReadU32(&cursor, end, &shards) ||
      shards != static_cast<uint32_t>(num_shards_)) {
    return Status::InvalidArgument(
        "shard partition: checkpoint taken under a different shard count");
  }
  if (!ReadU32(&cursor, end, &classes) || classes != parts_.size()) {
    return Status::Internal("shard partition: class count mismatch");
  }
  const size_t S = static_cast<size_t>(num_shards_);
  // Validate everything before touching any partition state.
  std::vector<std::vector<RowIdx>> bases(parts_.size());
  for (size_t c = 0; c < parts_.size(); ++c) {
    bases[c].resize(S + 1);
    for (size_t s = 0; s <= S; ++s) {
      uint32_t v;
      if (!ReadU32(&cursor, end, &v)) {
        return Status::Internal("shard partition: truncated boundaries");
      }
      bases[c][s] = v;
      if (s > 0 && v < bases[c][s - 1]) {
        return Status::Internal("shard partition: non-monotone boundaries");
      }
    }
    if (bases[c][0] != 0 ||
        bases[c][S] != world_->table(static_cast<ClassId>(c)).size()) {
      return Status::Internal(
          "shard partition: boundaries do not cover the restored rows");
    }
  }
  if (cursor != end) {
    return Status::Internal("shard partition: trailing bytes");
  }
  for (size_t c = 0; c < parts_.size(); ++c) {
    ClassPartition& part = parts_[c];
    part.base = std::move(bases[c]);
    part.shard_of.resize(part.base[S]);
    for (size_t s = 0; s < S; ++s) {
      std::fill(part.shard_of.begin() + part.base[s],
                part.shard_of.begin() + part.base[s + 1],
                static_cast<uint8_t>(s));
    }
  }
  partitioned_ = true;
  return Status::OK();
}

void ShardedWorld::SetPartitionSizes(ClassId cls, const uint32_t* sizes) {
  ClassPartition& part = parts_[static_cast<size_t>(cls)];
  const size_t S = static_cast<size_t>(num_shards_);
  part.base.resize(S + 1);
  part.base[0] = 0;
  for (size_t s = 0; s < S; ++s) {
    part.base[s + 1] = part.base[s] + sizes[s];
  }
  part.shard_of.resize(part.base[S]);
  for (size_t s = 0; s < S; ++s) {
    std::fill(part.shard_of.begin() + part.base[s],
              part.shard_of.begin() + part.base[s + 1],
              static_cast<uint8_t>(s));
  }
}

int ShardedWorld::ShardOfEntity(EntityId id) const {
  const World::Locator* loc = world_->Find(id);
  if (loc == nullptr) return -1;
  return ShardOfRow(loc->cls, loc->row);
}

StatusOr<EntityId> ShardedWorld::Spawn(
    const std::string& cls_name,
    const std::vector<std::pair<std::string, Value>>& init, int shard) {
  if (!partitioned_ && shard < 0) {
    // Build phase: plain append; EnsurePartition slices everything later.
    return world_->Spawn(cls_name, init);
  }
  // An explicit placement request forces the partition into existence so
  // it can be honored rather than silently dropped.
  EnsurePartition();
  SGL_ASSIGN_OR_RETURN(EntityId id, world_->Spawn(cls_name, init));
  const World::Locator* loc = world_->Find(id);
  // The fresh row sits at the end of its table = end of the last shard.
  ClassPartition& part = parts_[static_cast<size_t>(loc->cls)];
  part.shard_of.push_back(static_cast<uint8_t>(num_shards_ - 1));
  ++part.base[static_cast<size_t>(num_shards_)];
  if (shard >= 0 && shard != num_shards_ - 1) {
    single_move_.assign(1, ShardMove{id, shard});
    SGL_RETURN_IF_ERROR(migrator_.Migrate(this, single_move_.data(), 1));
  }
  return id;
}

Status ShardedWorld::SpawnBatch(ClassId cls, size_t n, int shard,
                                std::vector<EntityId>* out_ids) {
  EnsurePartition();
  return migrator_.SpawnBatch(this, cls, n, shard, out_ids);
}

Status ShardedWorld::Despawn(EntityId id) {
  EnsurePartition();
  return migrator_.DespawnBatch(this, &id, 1);
}

Status ShardedWorld::DespawnBatch(const std::vector<EntityId>& ids) {
  EnsurePartition();
  return migrator_.DespawnBatch(this, ids.data(), ids.size());
}

Status ShardedWorld::QueueMigration(EntityId id, int dst_shard) {
  if (world_->Find(id) == nullptr) {
    return Status::NotFound("cannot migrate: entity does not exist");
  }
  if (dst_shard < 0 || dst_shard >= num_shards_) {
    return Status::InvalidArgument("destination shard out of range");
  }
  pending_.push_back(ShardMove{id, dst_shard});
  return Status::OK();
}

Status ShardedWorld::ApplyPendingMigrations() {
  if (pending_.empty()) return Status::OK();
  Status st = migrator_.Migrate(this, pending_.data(), pending_.size());
  pending_.clear();
  return st;
}

Status ShardedWorld::MigrateNow(const std::vector<ShardMove>& moves) {
  return migrator_.Migrate(this, moves.data(), moves.size());
}

bool ShardedWorld::PartitionConsistent() const {
  const int num_classes = world_->catalog().num_classes();
  const size_t S = static_cast<size_t>(num_shards_);
  for (ClassId c = 0; c < num_classes; ++c) {
    const ClassPartition& part = parts_[static_cast<size_t>(c)];
    const EntityTable& table = world_->table(c);
    if (part.base.size() != S + 1 || part.base[0] != 0 ||
        part.base[S] != table.size() ||
        part.shard_of.size() != table.size()) {
      return false;
    }
    for (size_t s = 0; s < S; ++s) {
      if (part.base[s] > part.base[s + 1]) return false;
      for (RowIdx r = part.base[s]; r < part.base[s + 1]; ++r) {
        if (part.shard_of[r] != s) return false;
      }
    }
    for (RowIdx r = 0; r < table.size(); ++r) {
      const World::Locator* loc = world_->Find(table.id_at(r));
      if (loc == nullptr || loc->cls != c || loc->row != r) return false;
    }
  }
  return true;
}

}  // namespace sgl
