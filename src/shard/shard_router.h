// ShardRouter: the cross-shard effect plane.
//
// During the QUERY+EFFECT phase each shard runs single-threadedly over its
// own rows and emits effects through its router (the EffectRouter hook in
// ExecEnv). Writes whose target row lies inside the shard's own partition
// fold into a dense *range-sized* EffectBuffer (rows indexed relative to
// the shard's base — memory is O(rows/shard), not O(rows) per shard as the
// thread-parallel executor pays). Writes targeting another shard's rows
// append one 32-byte EffectRecord to the (src, dst) mailbox lane: a flat
// double-buffered log, the in-process stand-in for a network channel.
//
// At the tick barrier the executor flips every lane and merges in source-
// shard-major order: for s = 0..S-1, shard s's dense local buffer folds in
// at its row offset and its outgoing lanes replay record-by-record into
// the world's full-size effect buffers. Because the block partition keeps
// shards in global row order, source-major merging reproduces the serial
// accumulation order per target row; see README.md for the exact
// determinism contract (which combinators are bit-exact and why).
//
// Buffer-return rules: lanes and local buffers never shrink. A lane's
// write side is cleared when it is flipped *into* writing, not when it is
// drained, so the drained log stays readable (tracing, tests) until the
// next barrier. Everything reaches a high-water mark and steady-state
// ticks allocate nothing.

#ifndef SGL_SHARD_SHARD_ROUTER_H_
#define SGL_SHARD_SHARD_ROUTER_H_

#include <cstring>
#include <memory>
#include <vector>

#include "src/exec/op_exec.h"
#include "src/shard/sharded_world.h"

namespace sgl {

/// One routed cross-shard effect: the Add* call to replay at the barrier.
struct EffectRecord {
  enum Kind : uint8_t { kNum, kBool, kRef, kSetInsert };

  uint64_t order_key = 0;
  uint64_t payload = 0;  ///< bit-cast double / EntityId / bool
  RowIdx row = 0;        ///< global row in the target class
  FieldIdx field = kInvalidField;
  ClassId cls = kInvalidClass;
  Kind kind = kNum;
};

/// A double-buffered flat append log between one (src, dst) shard pair.
class MailboxLane {
 public:
  /// The side the query phase appends to.
  std::vector<EffectRecord>& out() { return bufs_[cur_]; }
  /// Last tick's fully-written side (valid after Flip()).
  const std::vector<EffectRecord>& in() const { return bufs_[cur_ ^ 1]; }

  /// Barrier: retire the written side to in() and clear the other for the
  /// next tick's appends (capacity kept).
  void Flip() {
    cur_ ^= 1;
    bufs_[cur_].clear();
  }

 private:
  std::vector<EffectRecord> bufs_[2];
  int cur_ = 0;
};

/// Per-shard effect routing state (one per WorldShard).
class ShardRouter : public EffectRouter {
 public:
  ShardRouter(ShardedWorld* sharded, int self);

  /// Re-sizes the local dense buffers to the shard's current row ranges.
  /// Call after EnsurePartition, before the query phase.
  void BeginTick();

  EffectBuffer& local(ClassId cls) {
    return *local_[static_cast<size_t>(cls)];
  }
  MailboxLane& lane(int dst) { return lanes_[static_cast<size_t>(dst)]; }

  /// Folds this shard's local buffers and flipped lanes into the world's
  /// effect buffers. Caller iterates shards in ascending order and flips
  /// all lanes first (ShardExecutor's barrier).
  void MergeInto(World* world);

  // --- EffectRouter ----------------------------------------------------

  void AddNumber(ClassId cls, FieldIdx f, RowIdx row, double v,
                 uint64_t order_key) override {
    const int dst = sharded_->ShardOfRow(cls, row);
    if (dst == self_) {
      local(cls).AddNumber(f, row - base_[static_cast<size_t>(cls)], v,
                           order_key);
    } else {
      uint64_t payload;
      std::memcpy(&payload, &v, sizeof(payload));
      Append(dst, cls, f, row, EffectRecord::kNum, payload, order_key);
    }
  }
  void AddBool(ClassId cls, FieldIdx f, RowIdx row, bool v,
               uint64_t order_key) override {
    const int dst = sharded_->ShardOfRow(cls, row);
    if (dst == self_) {
      local(cls).AddBool(f, row - base_[static_cast<size_t>(cls)], v,
                         order_key);
    } else {
      Append(dst, cls, f, row, EffectRecord::kBool, v ? 1 : 0, order_key);
    }
  }
  void AddRef(ClassId cls, FieldIdx f, RowIdx row, EntityId v,
              uint64_t order_key) override {
    const int dst = sharded_->ShardOfRow(cls, row);
    if (dst == self_) {
      local(cls).AddRef(f, row - base_[static_cast<size_t>(cls)], v,
                        order_key);
    } else {
      Append(dst, cls, f, row, EffectRecord::kRef,
             static_cast<uint64_t>(v), order_key);
    }
  }
  void AddSetInsert(ClassId cls, FieldIdx f, RowIdx row,
                    EntityId v) override {
    const int dst = sharded_->ShardOfRow(cls, row);
    if (dst == self_) {
      local(cls).AddSetInsert(f, row - base_[static_cast<size_t>(cls)], v);
    } else {
      Append(dst, cls, f, row, EffectRecord::kSetInsert,
             static_cast<uint64_t>(v), 0);
    }
  }

  /// Records routed to other shards last tick (stats / tests).
  size_t OutboundRecords() const;

 private:
  void Append(int dst, ClassId cls, FieldIdx f, RowIdx row,
              EffectRecord::Kind kind, uint64_t payload,
              uint64_t order_key) {
    EffectRecord rec;
    rec.order_key = order_key;
    rec.payload = payload;
    rec.row = row;
    rec.field = f;
    rec.cls = cls;
    rec.kind = kind;
    lanes_[static_cast<size_t>(dst)].out().push_back(rec);
  }

  ShardedWorld* sharded_;
  int self_;
  std::vector<std::unique_ptr<EffectBuffer>> local_;  ///< per class
  std::vector<RowIdx> base_;                          ///< per class
  std::vector<MailboxLane> lanes_;                    ///< per dst shard
};

}  // namespace sgl

#endif  // SGL_SHARD_SHARD_ROUTER_H_
