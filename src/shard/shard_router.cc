#include "src/shard/shard_router.h"

namespace sgl {

ShardRouter::ShardRouter(ShardedWorld* sharded, int self)
    : sharded_(sharded), self_(self) {
  const Catalog& catalog = sharded_->world().catalog();
  for (ClassId c = 0; c < catalog.num_classes(); ++c) {
    local_.push_back(std::make_unique<EffectBuffer>(&catalog.Get(c)));
  }
  base_.resize(static_cast<size_t>(catalog.num_classes()), 0);
  lanes_.resize(static_cast<size_t>(sharded_->num_shards()));
}

void ShardRouter::BeginTick() {
  const int num_classes = sharded_->world().catalog().num_classes();
  for (ClassId c = 0; c < num_classes; ++c) {
    const RowIdx begin = sharded_->shard_begin(c, self_);
    const RowIdx end = sharded_->shard_end(c, self_);
    base_[static_cast<size_t>(c)] = begin;
    local_[static_cast<size_t>(c)]->Reset(end - begin);
  }
}

void ShardRouter::MergeInto(World* world) {
  const int num_classes = world->catalog().num_classes();
  for (ClassId c = 0; c < num_classes; ++c) {
    world->effects(c).MergeFromOffset(*local_[static_cast<size_t>(c)],
                                      base_[static_cast<size_t>(c)]);
  }
  for (size_t d = 0; d < lanes_.size(); ++d) {
    if (static_cast<int>(d) == self_) continue;
    for (const EffectRecord& rec : lanes_[d].in()) {
      EffectBuffer& sink = world->effects(rec.cls);
      switch (rec.kind) {
        case EffectRecord::kNum: {
          double v;
          std::memcpy(&v, &rec.payload, sizeof(v));
          sink.AddNumber(rec.field, rec.row, v, rec.order_key);
          break;
        }
        case EffectRecord::kBool:
          sink.AddBool(rec.field, rec.row, rec.payload != 0, rec.order_key);
          break;
        case EffectRecord::kRef:
          sink.AddRef(rec.field, rec.row,
                      static_cast<EntityId>(rec.payload), rec.order_key);
          break;
        case EffectRecord::kSetInsert:
          sink.AddSetInsert(rec.field, rec.row,
                            static_cast<EntityId>(rec.payload));
          break;
      }
    }
  }
}

size_t ShardRouter::OutboundRecords() const {
  size_t total = 0;
  for (size_t d = 0; d < lanes_.size(); ++d) {
    if (static_cast<int>(d) == self_) continue;
    total += lanes_[d].in().size();
  }
  return total;
}

}  // namespace sgl
