#include "src/shard/shard_executor.h"

#include <algorithm>

#include "src/common/alloc_hook.h"
#include "src/common/stopwatch.h"
#include "src/fault/fault_injector.h"
#include "src/telemetry/flight_recorder.h"
#include "src/telemetry/telemetry.h"
#include "src/update/expr_updater.h"
#include "src/vm/compile.h"
#include "src/vm/kernels.h"

namespace sgl {

ShardExecutor::ShardExecutor(World* world, ShardedWorld* sharded,
                             const CompiledProgram* program,
                             ExecOptions options)
    : world_(world),
      sharded_(sharded),
      program_(program),
      options_(options),
      controller_(options.planner, program->num_sites),
      txn_(program) {
  txn_.set_fault(options_.fault);
  if (options_.telemetry != nullptr) {
    options_.telemetry->EnsureSites(program_->num_sites);
  }
  if (options_.eval_mode != EvalMode::kInterpret && !options_.interpreted) {
    vm_cache_ = std::make_unique<VmProgramCache>();
    vm_cache_->set_telemetry(options_.telemetry);
    vm_cache_->CompileProgram(*program_);
  }
  SGL_CHECK(options_.num_shards == sharded_->num_shards());
  if (options_.num_threads > 1) {
    pool_ = std::make_unique<ThreadPool>(options_.num_threads);
  }
  site_cache_.resize(static_cast<size_t>(program_->num_sites));
  prepared_.resize(static_cast<size_t>(program_->num_sites));
  script_locals_.resize(program_->scripts.size());
  handler_locals_.resize(program_->handlers.size());
}

ShardExecutor::~ShardExecutor() = default;

Status ShardExecutor::Init() {
  SGL_CHECK(!initialized_);
  Catalog* catalog = program_->catalog.get();
  SGL_RETURN_IF_ERROR(
      components_.Register(catalog, MakeTxnComponent(&txn_, program_)));
  SGL_RETURN_IF_ERROR(components_.Register(
      catalog, std::make_unique<ExprUpdater>(program_)));
  initialized_ = true;
  return Status::OK();
}

Status ShardExecutor::RegisterComponent(
    std::unique_ptr<UpdateComponent> component) {
  SGL_CHECK(initialized_ && "call Init() first");
  return components_.Register(program_->catalog.get(), std::move(component));
}

void ShardExecutor::EnsureShards() {
  const int S = options_.num_shards;
  if (shards_.size() == static_cast<size_t>(S)) return;
  shards_.clear();
  for (int s = 0; s < S; ++s) {
    auto ws = std::make_unique<WorldShard>();
    ws->id = s;
    ws->router = std::make_unique<ShardRouter>(sharded_, s);
    ws->env.world = world_;
    ws->env.router = ws->router.get();
    ws->env.scratch = &ws->scratch;
    ws->env.vm = vm_cache_.get();
    ws->env.telemetry = options_.telemetry;
    // Chrome pid s+1: pid 0 stays the barrier thread's "world" track.
    ws->env.tel_track = static_cast<uint8_t>(s + 1);
    ws->script_selections.resize(program_->scripts.size());
    ws->handler_rows.resize(program_->handlers.size());
    ws->handler_selections.resize(program_->handlers.size());
    shards_.push_back(std::move(ws));
  }
}

void ShardExecutor::ComputeSelections(WorldShard& ws) {
  // Scripts: the shard's slice of every class extent, dispatched on the PC
  // column for multi-phase scripts (§3.2).
  for (size_t si = 0; si < program_->scripts.size(); ++si) {
    const CompiledScript& script = program_->scripts[si];
    const EntityTable& table = world_->table(script.cls);
    auto& selections = ws.script_selections[si];
    if (selections.size() != static_cast<size_t>(script.num_phases())) {
      selections.resize(static_cast<size_t>(script.num_phases()));
    }
    const RowIdx begin = sharded_->shard_begin(script.cls, ws.id);
    const RowIdx end = sharded_->shard_end(script.cls, ws.id);
    if (script.num_phases() == 1) {
      // Range iota: a pure function of [begin, end) — rebuilt only when
      // the partition moved (the same hoist TickExecutor applies).
      auto& all = selections[0];
      if (all.size() != static_cast<size_t>(end - begin) ||
          (!all.empty() && all[0] != begin)) {
        all.resize(end - begin);
        for (RowIdx r = begin; r < end; ++r) {
          all[static_cast<size_t>(r - begin)] = r;
        }
      }
    } else {
      for (auto& sel : selections) sel.clear();
      ConstNumberColumn pc = table.Num(script.pc_state);
      for (RowIdx r = begin; r < end; ++r) {
        int phase = static_cast<int>(pc[r]);
        if (phase < 0 || phase >= script.num_phases()) phase = 0;
        selections[static_cast<size_t>(phase)].push_back(r);
      }
    }
  }

  // Handlers: evaluate the condition over the shard's range. Conditions
  // only read prior state and zeroed locals, both unchanged throughout the
  // query phase, so evaluating them before the scripts run is equivalent
  // to TickExecutor's scripts-then-handlers order.
  for (size_t hi = 0; hi < program_->handlers.size(); ++hi) {
    const CompiledHandler& handler = program_->handlers[hi];
    const EntityTable& table = world_->table(handler.cls);
    const RowIdx begin = sharded_->shard_begin(handler.cls, ws.id);
    const RowIdx end = sharded_->shard_end(handler.cls, ws.id);
    auto& rows = ws.handler_rows[hi];
    if (rows.size() != static_cast<size_t>(end - begin) ||
        (!rows.empty() && rows[0] != begin)) {
      rows.resize(end - begin);
      for (RowIdx r = begin; r < end; ++r) {
        rows[static_cast<size_t>(r - begin)] = r;
      }
    }
    auto& selection = ws.handler_selections[hi];
    selection.clear();
    if (rows.empty()) continue;
    if (options_.interpreted) {
      ScalarContext ctx;
      ctx.world = world_;
      ctx.outer_cls = handler.cls;
      ctx.locals = &handler_locals_[hi];
      for (RowIdx row : rows) {
        ctx.outer_row = row;
        if (EvalScalarBool(*handler.cond, ctx)) selection.push_back(row);
      }
    } else {
      VecContext ctx;
      ctx.world = world_;
      ctx.outer = &table;
      ctx.outer_rows = &rows;
      ctx.locals = &handler_locals_[hi];
      ctx.scratch = &ws.scratch;
      const VmProgram* cond_vm =
          vm_cache_ != nullptr ? vm_cache_->Value(handler.cond.get())
                               : nullptr;
      if (cond_vm != nullptr) {
        VmEvalBool(*cond_vm, ctx, &ws.scratch.vm, nullptr, 0,
                   &ws.handler_keep);
      } else {
        EvalBool(*handler.cond, ctx, &ws.handler_keep);
      }
      for (size_t i = 0; i < rows.size(); ++i) {
        if (ws.handler_keep[i]) selection.push_back(rows[i]);
      }
    }
  }
}

void ShardExecutor::PrepareUnitSites(
    const std::vector<std::unique_ptr<PlanOp>>& ops, size_t outer_rows) {
  for (const auto& op : ops) {
    if (op->kind != PlanOp::Kind::kAccum) continue;
    const auto* accum = static_cast<const AccumOp*>(op.get());
    JoinStrategy strategy;
    if (options_.interpreted) {
      strategy = JoinStrategy::kNestedLoop;
    } else {
      const TableStats* inner_stats =
          stats_mgr_.has_stats() ? &stats_mgr_.Get(accum->inner_cls) : nullptr;
      strategy = controller_.Choose(*accum, tick_, inner_stats, outer_rows);
    }
    // Backend axes, resolved once per tick so every shard sees the same
    // PreparedSite (mirrors TickExecutor::PrepareSites).
    bool use_vm = false;
    bool probe_batched = false;
    if (!options_.interpreted) {
      use_vm = options_.eval_mode == EvalMode::kBytecode ||
               (options_.eval_mode == EvalMode::kAuto &&
                controller_.ChooseEvalBytecode(accum->site_id, tick_));
      probe_batched = options_.probe_mode == ProbeMode::kBatched ||
                      (options_.probe_mode == ProbeMode::kAuto &&
                       controller_.ChooseProbeBatched(accum->site_id, tick_));
    }
    if (use_vm) ++last_.sites_bytecode; else ++last_.sites_interpreted;
    if (probe_batched) {
      ++last_.sites_probe_batched;
    } else {
      ++last_.sites_probe_single;
    }
    if (options_.telemetry != nullptr && options_.telemetry->armed()) {
      options_.telemetry->RecordSiteDecision(accum->site_id, tick_,
                                             JoinStrategyName(strategy),
                                             use_vm, probe_batched);
    }
    PrepareSite(*accum, strategy, *world_, &indexes_, tick_,
                /*compile_vm=*/vm_cache_ != nullptr, use_vm, probe_batched,
                &site_cache_[static_cast<size_t>(accum->site_id)],
                &prepared_[static_cast<size_t>(accum->site_id)]);
  }
}

void ShardExecutor::PrepareAllSites() {
  // Site ids are program-unique, so one pass over every unit prepares each
  // site exactly once; the controller sees the same global outer-row count
  // the single-shard executor feeds it.
  for (size_t si = 0; si < program_->scripts.size(); ++si) {
    const CompiledScript& script = program_->scripts[si];
    for (int k = 0; k < script.num_phases(); ++k) {
      size_t total = 0;
      for (const auto& ws : shards_) {
        total += ws->script_selections[si][static_cast<size_t>(k)].size();
      }
      if (total == 0) continue;
      PrepareUnitSites(script.phases[static_cast<size_t>(k)], total);
    }
  }
  for (size_t hi = 0; hi < program_->handlers.size(); ++hi) {
    size_t total = 0;
    for (const auto& ws : shards_) {
      total += ws->handler_selections[hi].size();
    }
    if (total == 0) continue;
    PrepareUnitSites(program_->handlers[hi].ops, total);
  }
}

void ShardExecutor::RunUnitShard(
    WorldShard& ws, const std::vector<std::unique_ptr<PlanOp>>& ops,
    ClassId cls, const std::vector<RowIdx>& selection,
    LocalColumns* locals) {
  ExecEnv& env = ws.env;
  env.tick = tick_;
  env.outer_cls = cls;
  env.outer = &world_->table(cls);
  env.txn_sink = txn_.shard(ws.id);
  env.locals = locals;
  env.prepared = &prepared_;
  env.feedback = &ws.feedback;
  env.trace = trace_;
  env.recorder_sink = recorder_sink_;
  if (options_.interpreted) {
    RunOpsScalar(ops, selection, env);
    return;
  }
  const size_t morsel = options_.morsel_size;
  if (selection.size() <= morsel) {
    RunOpsVectorized(ops, selection, env);
    return;
  }
  // Sequential morsel chunks bound the per-unit pair scratch exactly like
  // the morsel-parallel executor's per-thread slices.
  for (size_t b = 0; b < selection.size(); b += morsel) {
    const size_t e = std::min(selection.size(), b + morsel);
    ws.slice.assign(selection.begin() + static_cast<ptrdiff_t>(b),
                    selection.begin() + static_cast<ptrdiff_t>(e));
    RunOpsVectorized(ops, ws.slice, env);
  }
}

void ShardExecutor::RunShard(WorldShard& ws) {
  for (size_t si = 0; si < program_->scripts.size(); ++si) {
    const CompiledScript& script = program_->scripts[si];
    for (int k = 0; k < script.num_phases(); ++k) {
      const auto& selection =
          ws.script_selections[si][static_cast<size_t>(k)];
      if (selection.empty()) continue;
      RunUnitShard(ws, script.phases[static_cast<size_t>(k)], script.cls,
                   selection, &script_locals_[si]);
    }
  }
  for (size_t hi = 0; hi < program_->handlers.size(); ++hi) {
    const CompiledHandler& handler = program_->handlers[hi];
    const auto& selection = ws.handler_selections[hi];
    if (selection.empty()) continue;
    RunUnitShard(ws, handler.ops, handler.cls, selection,
                 &handler_locals_[hi]);
  }
}

Status ShardExecutor::RunTick() {
  SGL_CHECK(initialized_ && "call Init() first");
  const AllocCounts alloc_before = AllocCountersNow();
  Stopwatch total;
  Telemetry* const tel = options_.telemetry;
  SGL_TRACE_SPAN(tel, kSpanTickTotal, tick_, 0, 0);
  last_.Reset(tick_);
  const int num_classes = world_->catalog().num_classes();
  const int S = options_.num_shards;
  const int64_t index_micros_before = indexes_.build_micros();
  const int64_t simd_lanes_before = SimdLanesNow();

  // --- Setup -----------------------------------------------------------
  sharded_->EnsurePartition();
  world_->ResetEffects();
  if (!options_.interpreted) stats_mgr_.MaybeRefresh(*world_, tick_);
  recorder_sink_ = options_.recorder != nullptr
                       ? options_.recorder->capture_sink()
                       : nullptr;
  txn_.set_fault_tick(tick_);
  txn_.set_prov_sink(recorder_sink_);
  txn_.BeginTick(S);
  EnsureShards();
  for (auto& ws : shards_) {
    ws->router->BeginTick();
    ws->feedback.assign(static_cast<size_t>(program_->num_sites),
                        SiteFeedback());
  }
  for (size_t si = 0; si < program_->scripts.size(); ++si) {
    AllocateLocalColumns(program_->scripts[si].local_types,
                         world_->table(program_->scripts[si].cls).size(),
                         &script_locals_[si]);
  }
  for (size_t hi = 0; hi < program_->handlers.size(); ++hi) {
    AllocateLocalColumns(program_->handlers[hi].local_types,
                         world_->table(program_->handlers[hi].cls).size(),
                         &handler_locals_[hi]);
  }

  // --- A. Selections + P. site preparation -----------------------------
  Stopwatch query_timer;
  auto for_each_shard = [&](auto&& fn) {
    if (pool_ != nullptr) {
      pool_->ParallelFor(S, [&](int s) { fn(*shards_[static_cast<size_t>(s)]); });
    } else {
      for (int s = 0; s < S; ++s) fn(*shards_[static_cast<size_t>(s)]);
    }
  };
  for_each_shard([&](WorldShard& ws) {
    SGL_TRACE_SPAN(tel, kSpanTickSelect, tick_,
                   static_cast<uint8_t>(ws.id + 1), 0);
    ComputeSelections(ws);
  });
  {
    SGL_TRACE_SPAN(tel, kSpanTickSitePrep, tick_, 0, 0);
    PrepareAllSites();
  }

  // --- B. Query + effect phase (parallel across shards) -----------------
  for_each_shard([&](WorldShard& ws) {
    Stopwatch shard_timer;
    {
      SGL_TRACE_SPAN(tel, kSpanShardRun, tick_,
                     static_cast<uint8_t>(ws.id + 1), 0);
      RunShard(ws);
    }
    ws.query_micros = shard_timer.ElapsedMicros();
  });
  last_.query_effect_micros = query_timer.ElapsedMicros();

  // --- C. Barrier: route, merge, canonicalize ---------------------------
  Stopwatch merge_timer;
  {
    SGL_TRACE_SPAN(tel, kSpanTickBarrier, tick_, 0, 0);
    if (options_.fault != nullptr) {
      // Latency fault at the barrier entrance: every shard's query work is
      // done, nothing has merged. Must be state-neutral — the stall-parity
      // test holds the checksum to the no-fault run's.
      options_.fault->MaybeStall(kFaultShardBarrierStall, tick_);
    }
    {
      SGL_TRACE_SPAN(tel, kSpanMailboxFlip, tick_, 0, 0);
      for (auto& ws : shards_) {
        for (int d = 0; d < S; ++d) ws->router->lane(d).Flip();
      }
    }
    if (options_.fault != nullptr) {
      // Crash after the mailbox flip but before any shard merges: routed
      // records are stranded in flipped lanes and die with the process.
      SGL_RETURN_IF_ERROR(
          options_.fault->MaybeCrash(kFaultShardCrashPremerge, tick_));
    }
    cross_records_ = 0;
    {
      SGL_TRACE_SPAN(tel, kSpanMailboxReplay, tick_, 0, 0);
      for (auto& ws : shards_) {  // source-major: reproduces serial ⊕ order
        ws->router->MergeInto(world_);
        cross_records_ += ws->router->OutboundRecords();
      }
    }
    {
      SGL_TRACE_SPAN(tel, kSpanTickFinalize, tick_, 0, 0);
      for (ClassId c = 0; c < num_classes; ++c) {
        world_->effects(c).FinalizeSets();
      }
    }
    last_.sites.assign(static_cast<size_t>(program_->num_sites),
                       SiteFeedback());
    for (const auto& ws : shards_) {
      for (size_t i = 0; i < ws->feedback.size(); ++i) {
        if (ws->feedback[i].site < 0) continue;
        SiteFeedback& agg = last_.sites[i];
        agg.site = ws->feedback[i].site;
        agg.strategy = ws->feedback[i].strategy;
        agg.outer_rows += ws->feedback[i].outer_rows;
        agg.candidates += ws->feedback[i].candidates;
        agg.matches += ws->feedback[i].matches;
        agg.micros += ws->feedback[i].micros;
        agg.probe_micros += ws->feedback[i].probe_micros;
        agg.effects += ws->feedback[i].effects;
        last_.probe_micros += ws->feedback[i].probe_micros;
      }
    }
    for (const SiteFeedback& fb : last_.sites) {
      if (fb.site >= 0) controller_.Feedback(fb);
    }
  }
  last_.merge_micros = merge_timer.ElapsedMicros();

  // --- D. Update phase --------------------------------------------------
  Stopwatch update_timer;
  // Out-of-band completions ride the barrier (after the mailbox merge,
  // before the update components read them); see src/async/job_service.h.
  if (jobs_ != nullptr) {
    SGL_TRACE_SPAN(tel, kSpanTickInstall, tick_, 0, 0);
    jobs_->InstallDue(tick_);
  }
  {
    SGL_TRACE_SPAN(tel, kSpanTickUpdate, tick_, 0, 0);
    components_.RunAll(world_, tick_);
  }
  last_.update_micros = update_timer.ElapsedMicros();
  if (txn_.ConsumeInjectedCrash()) {
    // Torn update phase (see TickExecutor::RunTick): recovery only.
    return Status::Internal(std::string(kFaultCrashPrefix) +
                            " at txn.admit.crash tick " +
                            std::to_string(tick_));
  }
  if (options_.fault != nullptr) {
    // Crash after updates but before migrations/epoch/tick commit.
    SGL_RETURN_IF_ERROR(
        options_.fault->MaybeCrash(kFaultShardCrashPostUpdate, tick_));
  }

  // --- Barrier tail: migrations + epoch ---------------------------------
  if (sharded_->has_pending_migrations()) {
    SGL_TRACE_SPAN(tel, kSpanTickMigrate, tick_, 0, 0);
    SGL_RETURN_IF_ERROR(sharded_->ApplyPendingMigrations());
  }
  sharded_->BumpEpoch();

  // --- Bookkeeping ------------------------------------------------------
  if (jobs_ != nullptr) {
    JobTickStats js;
    jobs_->SampleTick(&js);
    last_.jobs_submitted = js.submitted;
    last_.jobs_installed = js.installed;
    last_.jobs_in_flight = js.in_flight;
    last_.job_wait_micros = js.wait_micros;
  }
  last_.txn = txn_.last_tick();
  if (vm_cache_ != nullptr) {
    last_.vm_programs = vm_cache_->programs_compiled();
    last_.vm_fallbacks = vm_cache_->fallbacks();
    last_.vm_compile_micros = vm_cache_->compile_micros();
  }
  last_.index_build_micros = indexes_.build_micros() - index_micros_before;
  last_.index_memory_bytes = static_cast<int64_t>(indexes_.MemoryBytes());
  last_.simd_lanes_used = SimdLanesNow() - simd_lanes_before;
  last_.total_micros = total.ElapsedMicros();
  // Shard skew: slowest-minus-fastest B phase approximates the time the
  // barrier sat waiting on the straggler; imbalance is (max/mean − 1) in
  // basis points. Computed outside the armed-telemetry branch because the
  // flight recorder's anomaly triggers consume it too.
  int64_t q_max = 0, q_min = INT64_MAX, q_sum = 0;
  for (const auto& ws : shards_) {
    q_max = std::max(q_max, ws->query_micros);
    q_min = std::min(q_min, ws->query_micros);
    q_sum += ws->query_micros;
  }
  const int64_t barrier_stall_us = q_min == INT64_MAX ? 0 : q_max - q_min;
  const int64_t imbalance_bp =
      q_sum > 0 ? (q_max * S - q_sum) * 10000 / q_sum : 0;
  if (options_.recorder != nullptr) {
    // Before the alloc-count capture below, so frame assembly is held to
    // the same allocs_per_tick == 0 contract as the tick itself.
    FlightRecorder::FrameInput fin;
    fin.tick = tick_;
    fin.stats = &last_;
    fin.world = world_;
    fin.barrier_stall_us = barrier_stall_us;
    fin.imbalance_bp = imbalance_bp;
    fin.cross_shard_records = static_cast<int64_t>(cross_records_);
    options_.recorder->CaptureTick(fin);
  }
  const AllocCounts alloc_after = AllocCountersNow();
  last_.allocs_per_tick = alloc_after.count - alloc_before.count;
  last_.bytes_per_tick = alloc_after.bytes - alloc_before.bytes;
  if (tel != nullptr && tel->armed()) {
    for (const SiteFeedback& fb : last_.sites) {
      if (fb.site < 0) continue;
      tel->RecordSiteTick(fb.site, fb.micros, fb.probe_micros, fb.outer_rows,
                          fb.candidates, fb.matches, fb.effects);
      const AdaptiveController::BackendBeliefs b =
          controller_.Beliefs(fb.site);
      tel->RecordSiteBeliefs(fb.site, b.eval_us_per_outer[0],
                             b.eval_us_per_outer[1], b.probe_us_per_outer[0],
                             b.probe_us_per_outer[1]);
    }
    for (const auto& ws : shards_) {
      tel->metrics().Record(tel->series().shard_query_us, ws->query_micros);
    }
    Telemetry::TickSample s;
    s.total_us = last_.total_micros;
    s.query_us = last_.query_effect_micros;
    s.merge_us = last_.merge_micros;
    s.update_us = last_.update_micros;
    s.probe_us = last_.probe_micros;
    s.job_wait_us = jobs_ != nullptr ? last_.job_wait_micros : -1;
    s.barrier_stall_us = barrier_stall_us;
    s.shard_imbalance_bp = imbalance_bp;
    s.cross_shard_records = static_cast<int64_t>(cross_records_);
    s.jobs_submitted = last_.jobs_submitted;
    s.jobs_installed = last_.jobs_installed;
    s.jobs_in_flight = last_.jobs_in_flight;
    s.vm_programs = last_.vm_programs;
    tel->RecordTick(s);
  }
  ++tick_;
  return Status::OK();
}

void ShardExecutor::ResetStatsAfterRestore() {
  last_.jobs_submitted = 0;
  last_.jobs_installed = 0;
  last_.job_wait_micros = 0;
  last_.jobs_in_flight =
      jobs_ != nullptr ? static_cast<int64_t>(jobs_->in_flight()) : 0;
  if (jobs_ != nullptr) jobs_->ResetStatsWindow();
}

}  // namespace sgl
