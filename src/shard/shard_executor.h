// ShardExecutor: the sharded QUERY → MERGE → UPDATE pipeline (src/shard/).
//
// The per-tick shape mirrors TickExecutor, with the parallel grain moved
// from morsels to world shards:
//
//   A SELECT      each shard computes its phase/handler selections over its
//                 own row ranges (reads only prior state — parallel)
//   P PREPARE     access paths (indexes, hashes, composed filters) are
//                 prepared once, globally: the read view is shared by
//                 construction, so per-shard index builds would be
//                 redundant replicas
//   B QUERY+EFFECT each shard runs every script phase and handler over its
//                 selections, single-threadedly, in morsel-sized chunks;
//                 effects route through its ShardRouter (local dense buffer
//                 or cross-shard mailbox), intents land in its per-shard
//                 TxnIntentLog (parallel across shards)
//   C BARRIER     mailboxes flip; shards merge source-major into the
//                 world's effect buffers; set logs canonicalize
//                 (FinalizeSets); queued migrations apply; epoch bumps
//   D UPDATE      the shared update components run over the whole world:
//                 transaction admission is global on purpose — intents
//                 keep a shard-of-owner dimension, and admission is proven
//                 independent of how intents are partitioned across shards
//
// Because each shard's work is self-contained (own router, scratch, intent
// log, feedback) and the barrier merges in shard order, the result is
// bit-identical for any thread count and any morsel size at a fixed shard
// count; see README.md for the cross-shard-count contract.

#ifndef SGL_SHARD_SHARD_EXECUTOR_H_
#define SGL_SHARD_SHARD_EXECUTOR_H_

#include <memory>
#include <vector>

#include "src/common/thread_pool.h"
#include "src/exec/tick_executor.h"
#include "src/shard/shard_router.h"
#include "src/shard/sharded_world.h"

namespace sgl {

class ShardExecutor {
 public:
  /// `world`, `sharded`, and `program` must outlive the executor.
  /// `options.num_shards` is the shard count; threads/morsels/planner/
  /// interpreted mean what they mean for TickExecutor.
  ShardExecutor(World* world, ShardedWorld* sharded,
                const CompiledProgram* program, ExecOptions options);
  ~ShardExecutor();

  /// Registers the built-in components (transaction engine + expression
  /// updater). Must run before the first tick.
  Status Init();

  /// Registers an engine update component (physics, pathfinding, custom).
  Status RegisterComponent(std::unique_ptr<UpdateComponent> component);

  /// Executes one sharded tick.
  Status RunTick();

  Tick tick() const { return tick_; }
  void set_tick(Tick tick) { tick_ = tick; }
  /// Zeroes the job counters of last_stats() after a checkpoint restore
  /// (jobs_in_flight re-reads the service); see TickExecutor.
  void ResetStatsAfterRestore();
  const TickStats& last_stats() const { return last_; }
  const ExecOptions& options() const { return options_; }

  AdaptiveController& controller() { return controller_; }
  IndexManager& indexes() { return indexes_; }
  TxnEngine& txn() { return txn_; }
  StatsManager& table_stats() { return stats_mgr_; }
  ComponentRegistry& components() { return components_; }
  ShardedWorld& sharded() { return *sharded_; }

  /// The out-of-band JobService (created on first use from
  /// options().jobs). Jobs are submitted shard-tagged by the components;
  /// completions ride the barrier: InstallDue runs after the mailbox merge,
  /// before the update components (src/async/job_service.h).
  JobService& jobs() {
    if (jobs_ == nullptr) {
      JobServiceOptions jo = options_.jobs;
      jo.fault = options_.fault;  // worker stall/death sites share the plan
      jo.telemetry = options_.telemetry;  // worker-run spans, same lifetime
      jobs_ = std::make_unique<JobService>(jo);
    }
    return *jobs_;
  }
  /// Null if no component ever asked for the service.
  JobService* jobs_or_null() { return jobs_.get(); }

  void set_trace(EffectTraceSink* sink) { trace_ = sink; }

  /// Effect records routed across shards last tick (stats / tests).
  size_t last_cross_shard_records() const { return cross_records_; }

 private:
  /// One world shard's pipeline state: its router (local effect buffers +
  /// mailboxes), eval scratch, selections, and feedback. The shard's
  /// *tables* are its row ranges of the world's class arenas.
  struct WorldShard {
    int id = 0;
    ExecEnv env;
    ExecScratch scratch;
    std::unique_ptr<ShardRouter> router;
    /// Per script, per phase: selected rows of this shard's ranges.
    std::vector<std::vector<std::vector<RowIdx>>> script_selections;
    /// Per handler: cached range iota and this tick's selection.
    std::vector<std::vector<RowIdx>> handler_rows;
    std::vector<std::vector<RowIdx>> handler_selections;
    std::vector<uint8_t> handler_keep;
    std::vector<SiteFeedback> feedback;
    std::vector<RowIdx> slice;  ///< morsel chunk buffer
    /// Wall time of this shard's B-phase last tick; the barrier derives
    /// the stall (max−min) and imbalance gauges from these.
    int64_t query_micros = 0;
  };

  void EnsureShards();
  void ComputeSelections(WorldShard& ws);
  void PrepareAllSites();
  void PrepareUnitSites(const std::vector<std::unique_ptr<PlanOp>>& ops,
                        size_t outer_rows);
  void RunShard(WorldShard& ws);
  void RunUnitShard(WorldShard& ws,
                    const std::vector<std::unique_ptr<PlanOp>>& ops,
                    ClassId cls, const std::vector<RowIdx>& selection,
                    LocalColumns* locals);

  World* world_;
  ShardedWorld* sharded_;
  const CompiledProgram* program_;
  ExecOptions options_;
  std::unique_ptr<ThreadPool> pool_;
  IndexManager indexes_;
  StatsManager stats_mgr_;
  AdaptiveController controller_;
  TxnEngine txn_;
  ComponentRegistry components_;
  /// Compiled bytecode programs (eval_mode == kBytecode); null otherwise.
  std::unique_ptr<VmProgramCache> vm_cache_;
  std::unique_ptr<JobService> jobs_;  ///< lazily created, see jobs()
  EffectTraceSink* trace_ = nullptr;
  /// The flight recorder's capture sink for this tick; refreshed at tick
  /// start (null when no recorder is attached or it is disarmed).
  EffectTraceSink* recorder_sink_ = nullptr;
  Tick tick_ = 0;
  TickStats last_;
  bool initialized_ = false;
  size_t cross_records_ = 0;

  std::vector<std::unique_ptr<WorldShard>> shards_;
  std::vector<SiteCache> site_cache_;   ///< by site id
  std::vector<PreparedSite> prepared_;  ///< by site id
  std::vector<LocalColumns> script_locals_;
  std::vector<LocalColumns> handler_locals_;
};

}  // namespace sgl

#endif  // SGL_SHARD_SHARD_EXECUTOR_H_
