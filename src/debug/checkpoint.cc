#include "src/debug/checkpoint.h"

namespace sgl {

Checkpoint TakeCheckpoint(const World& world, Tick tick) {
  Checkpoint cp;
  cp.tick = tick;
  world.Serialize(&cp.state);
  return cp;
}

Status RestoreCheckpoint(const Checkpoint& cp, World* world) {
  return world->Deserialize(cp.state);
}

uint64_t WorldChecksum(const World& world) {
  uint64_t h = 0xcbf29ce484222325ULL;
  auto mix_bytes = [&h](const void* data, size_t len) {
    const unsigned char* p = static_cast<const unsigned char*>(data);
    for (size_t i = 0; i < len; ++i) {
      h ^= p[i];
      h *= 0x100000001b3ULL;
    }
  };
  const Catalog& catalog = world.catalog();
  for (ClassId c = 0; c < catalog.num_classes(); ++c) {
    const EntityTable& table = world.table(c);
    const ClassDef& def = catalog.Get(c);
    for (size_t i = 0; i < table.size(); ++i) {
      EntityId id = table.id_at(static_cast<RowIdx>(i));
      mix_bytes(&id, sizeof(id));
    }
    for (const FieldDef& f : def.state_fields()) {
      for (size_t i = 0; i < table.size(); ++i) {
        RowIdx r = static_cast<RowIdx>(i);
        switch (f.type.kind) {
          case TypeKind::kNumber: {
            double v = table.Num(f.index)[r];
            mix_bytes(&v, sizeof(v));
            break;
          }
          case TypeKind::kBool: {
            uint8_t v = table.BoolCol(f.index)[r];
            mix_bytes(&v, sizeof(v));
            break;
          }
          case TypeKind::kRef: {
            EntityId v = table.RefCol(f.index)[r];
            mix_bytes(&v, sizeof(v));
            break;
          }
          case TypeKind::kSet: {
            const EntitySet& v = table.SetCol(f.index)[r];
            for (EntityId e : v) mix_bytes(&e, sizeof(e));
            size_t n = v.size();
            mix_bytes(&n, sizeof(n));
            break;
          }
        }
      }
    }
  }
  return h;
}

void ReplayLog::Record(const World& world, Tick tick) {
  checksums_.push_back(WorldChecksum(world));
  if (checkpoint_every_ > 0 && tick % checkpoint_every_ == 0) {
    checkpoints_.push_back(TakeCheckpoint(world, tick));
  }
}

int64_t ReplayLog::FirstDivergence(const ReplayLog& other) const {
  size_t n = std::min(checksums_.size(), other.checksums_.size());
  for (size_t i = 0; i < n; ++i) {
    if (checksums_[i] != other.checksums_[i]) {
      return static_cast<int64_t>(i);
    }
  }
  return -1;
}

const Checkpoint* ReplayLog::LatestCheckpointBefore(Tick tick) const {
  const Checkpoint* best = nullptr;
  for (const Checkpoint& cp : checkpoints_) {
    if (cp.tick <= tick && (best == nullptr || cp.tick > best->tick)) {
      best = &cp;
    }
  }
  return best;
}

}  // namespace sgl
