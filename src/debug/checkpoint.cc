#include "src/debug/checkpoint.h"

#include <algorithm>

namespace sgl {

namespace {

struct Fnv {
  uint64_t h = 0xcbf29ce484222325ULL;
  void Mix(const void* data, size_t len) {
    const unsigned char* p = static_cast<const unsigned char*>(data);
    for (size_t i = 0; i < len; ++i) {
      h ^= p[i];
      h *= 0x100000001b3ULL;
    }
  }
};

void MixRowFields(Fnv* fnv, const EntityTable& table, const ClassDef& def,
                  RowIdx r) {
  for (const FieldDef& f : def.state_fields()) {
    switch (f.type.kind) {
      case TypeKind::kNumber: {
        double v = table.Num(f.index)[r];
        fnv->Mix(&v, sizeof(v));
        break;
      }
      case TypeKind::kBool: {
        uint8_t v = table.BoolCol(f.index)[r];
        fnv->Mix(&v, sizeof(v));
        break;
      }
      case TypeKind::kRef: {
        EntityId v = table.RefCol(f.index)[r];
        fnv->Mix(&v, sizeof(v));
        break;
      }
      case TypeKind::kSet: {
        const EntitySet& v = table.SetCol(f.index)[r];
        for (EntityId e : v) fnv->Mix(&e, sizeof(e));
        size_t n = v.size();
        fnv->Mix(&n, sizeof(n));
        break;
      }
    }
  }
}

}  // namespace

uint64_t Fnv1a(const void* data, size_t len, uint64_t h) {
  Fnv fnv;
  fnv.h = h;
  fnv.Mix(data, len);
  return fnv.h;
}

uint64_t CanonicalWorldChecksum(const World& world) {
  Fnv fnv;
  const Catalog& catalog = world.catalog();
  std::vector<std::pair<EntityId, RowIdx>> order;
  for (ClassId c = 0; c < catalog.num_classes(); ++c) {
    const EntityTable& table = world.table(c);
    const ClassDef& def = catalog.Get(c);
    order.clear();
    order.reserve(table.size());
    for (RowIdx r = 0; r < table.size(); ++r) {
      order.emplace_back(table.id_at(r), r);
    }
    std::sort(order.begin(), order.end());
    for (const auto& [id, r] : order) {
      fnv.Mix(&id, sizeof(id));
      MixRowFields(&fnv, table, def, r);
    }
  }
  return fnv.h;
}

Checkpoint TakeCheckpoint(const World& world, Tick tick) {
  Checkpoint cp;
  cp.tick = tick;
  world.Serialize(&cp.state);
  return cp;
}

Status RestoreCheckpoint(const Checkpoint& cp, World* world) {
  return world->Deserialize(cp.state);
}

uint64_t WorldChecksum(const World& world) {
  // Row-major over dense rows: sensitive to row order by design (two runs
  // are bit-identical iff they produced the same rows in the same places).
  Fnv fnv;
  const Catalog& catalog = world.catalog();
  for (ClassId c = 0; c < catalog.num_classes(); ++c) {
    const EntityTable& table = world.table(c);
    const ClassDef& def = catalog.Get(c);
    for (RowIdx r = 0; r < table.size(); ++r) {
      EntityId id = table.id_at(r);
      fnv.Mix(&id, sizeof(id));
      MixRowFields(&fnv, table, def, r);
    }
  }
  return fnv.h;
}

void ReplayLog::Record(const World& world, Tick tick) {
  checksums_.push_back(WorldChecksum(world));
  if (checkpoint_every_ > 0 && tick % checkpoint_every_ == 0) {
    checkpoints_.push_back(TakeCheckpoint(world, tick));
  }
}

int64_t ReplayLog::FirstDivergence(const ReplayLog& other) const {
  size_t n = std::min(checksums_.size(), other.checksums_.size());
  for (size_t i = 0; i < n; ++i) {
    if (checksums_[i] != other.checksums_[i]) {
      return static_cast<int64_t>(i);
    }
  }
  return -1;
}

const Checkpoint* ReplayLog::LatestCheckpointBefore(Tick tick) const {
  const Checkpoint* best = nullptr;
  for (const Checkpoint& cp : checkpoints_) {
    if (cp.tick <= tick && (best == nullptr || cp.tick > best->tick)) {
      best = &cp;
    }
  }
  return best;
}

}  // namespace sgl
