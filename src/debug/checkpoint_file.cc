#include "src/debug/checkpoint_file.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <new>

#if !defined(_WIN32)
#include <unistd.h>
#endif

#include "src/common/alloc_hook.h"
#include "src/common/bin_io.h"
#include "src/fault/fault_injector.h"

namespace sgl {

namespace {

// "SGLCKPT1" little-endian.
constexpr uint64_t kCkptMagic = 0x3154504b434c4753ULL;
constexpr uint32_t kCkptVersion = 1;
// magic + version + reserved + tick + 4 section sizes + payload fnv.
constexpr size_t kHeaderChecksummedBytes = 8 + 4 + 4 + 8 + 4 * 8 + 8;
constexpr size_t kHeaderBytes = kHeaderChecksummedBytes + 8;

const char kFilePrefix[] = "ckpt_";
const char kFileSuffix[] = ".sgl";

// "SGLBBOX1" little-endian.
constexpr uint64_t kBBoxMagic = 0x31584f42424c4753ULL;
constexpr uint32_t kBBoxVersion = 1;
// magic + version + reserved + tick + world checksum + 5 section sizes +
// payload fnv.
constexpr size_t kBBoxChecksummedBytes = 8 + 4 + 4 + 8 + 8 + 5 * 8 + 8;
constexpr size_t kBBoxHeaderBytes = kBBoxChecksummedBytes + 8;

const char kBBoxPrefix[] = "bbox_";
const char kBBoxSuffix[] = ".sbb";

/// Writes `image` to `<path>.tmp`, fflush + fsync, then renames onto
/// `path` — the same atomic-replace protocol SaveCheckpointFile uses.
Status WriteFileAtomic(const std::string& image, const std::string& path,
                       const char* what) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    return Status::Internal(std::string(what) + ": cannot open " + tmp);
  }
  if (!image.empty() &&
      std::fwrite(image.data(), 1, image.size(), f) != image.size()) {
    std::fclose(f);
    return Status::Internal(std::string(what) + ": write failed: " + tmp);
  }
  std::fflush(f);
#if !defined(_WIN32)
  fsync(fileno(f));
#endif
  std::fclose(f);
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    return Status::Internal(std::string(what) +
                            ": rename failed: " + ec.message());
  }
  return Status::OK();
}

/// Builds the complete on-disk image (header + payload). May throw
/// bad_alloc — deliberately, that is the ckpt.serialize.allocfail surface.
void BuildFileImage(const Checkpoint& cp, std::string* out) {
  out->clear();
  out->reserve(kHeaderBytes + cp.state.size() + cp.shard_partition.size() +
               cp.jobs.size() + cp.components.size());
  uint64_t payload_fnv = Fnv1a(cp.state.data(), cp.state.size());
  payload_fnv = Fnv1a(cp.shard_partition.data(), cp.shard_partition.size(),
                      payload_fnv);
  payload_fnv = Fnv1a(cp.jobs.data(), cp.jobs.size(), payload_fnv);
  payload_fnv =
      Fnv1a(cp.components.data(), cp.components.size(), payload_fnv);
  binio::Append<uint64_t>(out, kCkptMagic);
  binio::Append<uint32_t>(out, kCkptVersion);
  binio::Append<uint32_t>(out, 0u);
  binio::Append<int64_t>(out, static_cast<int64_t>(cp.tick));
  binio::Append<uint64_t>(out, static_cast<uint64_t>(cp.state.size()));
  binio::Append<uint64_t>(out,
                          static_cast<uint64_t>(cp.shard_partition.size()));
  binio::Append<uint64_t>(out, static_cast<uint64_t>(cp.jobs.size()));
  binio::Append<uint64_t>(out, static_cast<uint64_t>(cp.components.size()));
  binio::Append<uint64_t>(out, payload_fnv);
  binio::Append<uint64_t>(out, Fnv1a(out->data(), out->size()));
  out->append(cp.state);
  out->append(cp.shard_partition);
  out->append(cp.jobs);
  out->append(cp.components);
}

}  // namespace

Status SaveCheckpointFile(const Checkpoint& cp, const std::string& path,
                          FaultInjector* fault) {
  std::string image;
  uint64_t payload = 0;
  const bool arm_alloc_fail =
      SGL_FAULT_POINT(fault, kFaultCkptSerializeAllocFail, cp.tick, 0,
                      &payload) &&
      AllocFailureSupported();
  if (arm_alloc_fail) ArmAllocFailure(static_cast<int64_t>(payload));
  try {
    BuildFileImage(cp, &image);
  } catch (const std::bad_alloc&) {
    DisarmAllocFailure();
    return Status::Internal(
        "checkpoint: allocation failure during serialization");
  }
  if (arm_alloc_fail) DisarmAllocFailure();

  // Corruption faults apply after the checksums are computed, so the bad
  // bytes reach the disk exactly as silent media corruption would.
  if (SGL_FAULT_POINT(fault, kFaultCkptWriteBitflip, cp.tick, 0, &payload)) {
    image[static_cast<size_t>(payload % image.size())] ^=
        static_cast<char>(0x40);
  }
  size_t write_len = image.size();
  if (SGL_FAULT_POINT(fault, kFaultCkptWriteShort, cp.tick, 0, &payload)) {
    write_len = static_cast<size_t>(payload % image.size());
  }

  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    return Status::Internal("checkpoint: cannot open " + tmp);
  }
  if (write_len > 0 &&
      std::fwrite(image.data(), 1, write_len, f) != write_len) {
    std::fclose(f);
    return Status::Internal("checkpoint: write failed: " + tmp);
  }
  std::fflush(f);
#if !defined(_WIN32)
  fsync(fileno(f));
#endif
  std::fclose(f);

  if (SGL_FAULT_POINT(fault, kFaultCkptWriteTorn, cp.tick, 0, &payload)) {
    // Crash between the tmp write and the rename: the target keeps its old
    // contents (or stays absent) and an orphan .tmp is left behind —
    // exactly what the atomic protocol promises to survive.
    return Status::Internal(std::string(kFaultCrashPrefix) +
                            " at ckpt.write.torn tick " +
                            std::to_string(cp.tick));
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    return Status::Internal("checkpoint: rename failed: " + ec.message());
  }
  return Status::OK();
}

Status LoadCheckpointFile(const std::string& path, Checkpoint* out,
                          FaultInjector* fault) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::NotFound("checkpoint: no file at " + path);
  }
  std::string data;
  {
    std::fseek(f, 0, SEEK_END);
    const long size = std::ftell(f);
    std::fseek(f, 0, SEEK_SET);
    if (size < 0) {
      std::fclose(f);
      return Status::Internal("checkpoint: cannot size " + path);
    }
    data.resize(static_cast<size_t>(size));
    if (!data.empty() &&
        std::fread(&data[0], 1, data.size(), f) != data.size()) {
      std::fclose(f);
      return Status::Internal("checkpoint: read failed: " + path);
    }
    std::fclose(f);
  }
  uint64_t payload = 0;
  if (!data.empty() &&
      SGL_FAULT_POINT(fault, kFaultCkptReadBitflip, 0, data.size(),
                      &payload)) {
    data[static_cast<size_t>(payload % data.size())] ^=
        static_cast<char>(0x40);
  }
  if (data.size() < kHeaderBytes) {
    return Status::InvalidArgument("checkpoint: truncated header: " + path);
  }
  const char* cur = data.data();
  const char* end = cur + data.size();
  uint64_t magic = 0, payload_fnv = 0, header_fnv = 0;
  uint32_t version = 0, reserved = 0;
  int64_t tick = 0;
  uint64_t sizes[4] = {0, 0, 0, 0};
  binio::Read(&cur, end, &magic);
  binio::Read(&cur, end, &version);
  binio::Read(&cur, end, &reserved);
  binio::Read(&cur, end, &tick);
  for (uint64_t& s : sizes) binio::Read(&cur, end, &s);
  binio::Read(&cur, end, &payload_fnv);
  binio::Read(&cur, end, &header_fnv);
  if (header_fnv != Fnv1a(data.data(), kHeaderChecksummedBytes)) {
    return Status::InvalidArgument("checkpoint: header checksum mismatch: " +
                                   path);
  }
  if (magic != kCkptMagic) {
    return Status::InvalidArgument("checkpoint: bad magic: " + path);
  }
  if (version != kCkptVersion) {
    return Status::InvalidArgument("checkpoint: unsupported version " +
                                   std::to_string(version) + ": " + path);
  }
  const uint64_t remaining = static_cast<uint64_t>(end - cur);
  uint64_t total = 0;
  for (uint64_t s : sizes) {
    if (s > remaining) {
      return Status::InvalidArgument("checkpoint: truncated payload: " +
                                     path);
    }
    total += s;
  }
  if (total != remaining) {
    return Status::InvalidArgument("checkpoint: payload size mismatch: " +
                                   path);
  }
  if (payload_fnv != Fnv1a(cur, static_cast<size_t>(remaining))) {
    return Status::InvalidArgument(
        "checkpoint: payload checksum mismatch: " + path);
  }
  out->tick = static_cast<Tick>(tick);
  out->state.assign(cur, static_cast<size_t>(sizes[0]));
  cur += sizes[0];
  out->shard_partition.assign(cur, static_cast<size_t>(sizes[1]));
  cur += sizes[1];
  out->jobs.assign(cur, static_cast<size_t>(sizes[2]));
  cur += sizes[2];
  out->components.assign(cur, static_cast<size_t>(sizes[3]));
  return Status::OK();
}

CheckpointStore::CheckpointStore(std::string dir, int keep,
                                 FaultInjector* fault)
    : dir_(std::move(dir)), keep_(std::max(keep, 2)), fault_(fault) {
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
}

std::vector<std::string> CheckpointStore::ListFiles() const {
  std::vector<std::string> files;
  std::error_code ec;
  for (const auto& entry :
       std::filesystem::directory_iterator(dir_, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.size() > sizeof(kFilePrefix) - 1 + sizeof(kFileSuffix) - 1 &&
        name.compare(0, sizeof(kFilePrefix) - 1, kFilePrefix) == 0 &&
        name.compare(name.size() - (sizeof(kFileSuffix) - 1),
                     sizeof(kFileSuffix) - 1, kFileSuffix) == 0) {
      files.push_back(name);
    }
  }
  // Zero-padded tick in the name makes lexicographic order tick order.
  std::sort(files.begin(), files.end());
  return files;
}

Status CheckpointStore::Save(const Checkpoint& cp) {
  char name[64];
  std::snprintf(name, sizeof(name), "%s%012lld%s", kFilePrefix,
                static_cast<long long>(cp.tick), kFileSuffix);
  SGL_RETURN_IF_ERROR(
      SaveCheckpointFile(cp, dir_ + "/" + name, fault_));
  std::vector<std::string> files = ListFiles();
  std::error_code ec;
  for (size_t i = 0;
       i + static_cast<size_t>(keep_) < files.size(); ++i) {
    std::filesystem::remove(dir_ + "/" + files[i], ec);
  }
  return Status::OK();
}

StatusOr<Checkpoint> CheckpointStore::LoadLatestGood() const {
  std::vector<std::string> files = ListFiles();
  for (auto it = files.rbegin(); it != files.rend(); ++it) {
    Checkpoint cp;
    Status status = LoadCheckpointFile(dir_ + "/" + *it, &cp, fault_);
    if (status.ok()) return cp;
  }
  return Status::NotFound("checkpoint store: no valid checkpoint in " +
                          dir_);
}

// --- Black-box dumps -------------------------------------------------------

Status SaveBlackBoxFile(const BlackBoxDump& dump, const std::string& path) {
  std::string image;
  image.reserve(kBBoxHeaderBytes + dump.reason.size() +
                dump.chrome_trace.size() + dump.metrics.size() +
                dump.sites.size() + dump.provenance.size());
  uint64_t payload_fnv = Fnv1a(dump.reason.data(), dump.reason.size());
  payload_fnv =
      Fnv1a(dump.chrome_trace.data(), dump.chrome_trace.size(), payload_fnv);
  payload_fnv = Fnv1a(dump.metrics.data(), dump.metrics.size(), payload_fnv);
  payload_fnv = Fnv1a(dump.sites.data(), dump.sites.size(), payload_fnv);
  payload_fnv =
      Fnv1a(dump.provenance.data(), dump.provenance.size(), payload_fnv);
  binio::Append<uint64_t>(&image, kBBoxMagic);
  binio::Append<uint32_t>(&image, kBBoxVersion);
  binio::Append<uint32_t>(&image, 0u);
  binio::Append<int64_t>(&image, static_cast<int64_t>(dump.tick));
  binio::Append<uint64_t>(&image, dump.world_checksum);
  binio::Append<uint64_t>(&image, static_cast<uint64_t>(dump.reason.size()));
  binio::Append<uint64_t>(&image,
                          static_cast<uint64_t>(dump.chrome_trace.size()));
  binio::Append<uint64_t>(&image, static_cast<uint64_t>(dump.metrics.size()));
  binio::Append<uint64_t>(&image, static_cast<uint64_t>(dump.sites.size()));
  binio::Append<uint64_t>(&image,
                          static_cast<uint64_t>(dump.provenance.size()));
  binio::Append<uint64_t>(&image, payload_fnv);
  binio::Append<uint64_t>(&image, Fnv1a(image.data(), image.size()));
  image.append(dump.reason);
  image.append(dump.chrome_trace);
  image.append(dump.metrics);
  image.append(dump.sites);
  image.append(dump.provenance);
  return WriteFileAtomic(image, path, "blackbox");
}

Status LoadBlackBoxFile(const std::string& path, BlackBoxDump* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::NotFound("blackbox: no file at " + path);
  }
  std::string data;
  {
    std::fseek(f, 0, SEEK_END);
    const long size = std::ftell(f);
    std::fseek(f, 0, SEEK_SET);
    if (size < 0) {
      std::fclose(f);
      return Status::Internal("blackbox: cannot size " + path);
    }
    data.resize(static_cast<size_t>(size));
    if (!data.empty() &&
        std::fread(&data[0], 1, data.size(), f) != data.size()) {
      std::fclose(f);
      return Status::Internal("blackbox: read failed: " + path);
    }
    std::fclose(f);
  }
  if (data.size() < kBBoxHeaderBytes) {
    return Status::InvalidArgument("blackbox: truncated header: " + path);
  }
  const char* cur = data.data();
  const char* end = cur + data.size();
  uint64_t magic = 0, world_checksum = 0, payload_fnv = 0, header_fnv = 0;
  uint32_t version = 0, reserved = 0;
  int64_t tick = 0;
  uint64_t sizes[5] = {0, 0, 0, 0, 0};
  binio::Read(&cur, end, &magic);
  binio::Read(&cur, end, &version);
  binio::Read(&cur, end, &reserved);
  binio::Read(&cur, end, &tick);
  binio::Read(&cur, end, &world_checksum);
  for (uint64_t& s : sizes) binio::Read(&cur, end, &s);
  binio::Read(&cur, end, &payload_fnv);
  binio::Read(&cur, end, &header_fnv);
  if (header_fnv != Fnv1a(data.data(), kBBoxChecksummedBytes)) {
    return Status::InvalidArgument("blackbox: header checksum mismatch: " +
                                   path);
  }
  if (magic != kBBoxMagic) {
    return Status::InvalidArgument("blackbox: bad magic: " + path);
  }
  if (version != kBBoxVersion) {
    return Status::InvalidArgument("blackbox: unsupported version " +
                                   std::to_string(version) + ": " + path);
  }
  const uint64_t remaining = static_cast<uint64_t>(end - cur);
  uint64_t total = 0;
  for (uint64_t s : sizes) {
    if (s > remaining) {
      return Status::InvalidArgument("blackbox: truncated payload: " + path);
    }
    total += s;
  }
  if (total != remaining) {
    return Status::InvalidArgument("blackbox: payload size mismatch: " +
                                   path);
  }
  if (payload_fnv != Fnv1a(cur, static_cast<size_t>(remaining))) {
    return Status::InvalidArgument("blackbox: payload checksum mismatch: " +
                                   path);
  }
  out->tick = static_cast<Tick>(tick);
  out->world_checksum = world_checksum;
  out->reason.assign(cur, static_cast<size_t>(sizes[0]));
  cur += sizes[0];
  out->chrome_trace.assign(cur, static_cast<size_t>(sizes[1]));
  cur += sizes[1];
  out->metrics.assign(cur, static_cast<size_t>(sizes[2]));
  cur += sizes[2];
  out->sites.assign(cur, static_cast<size_t>(sizes[3]));
  cur += sizes[3];
  out->provenance.assign(cur, static_cast<size_t>(sizes[4]));
  return Status::OK();
}

BlackBoxStore::BlackBoxStore(std::string dir, int keep)
    : dir_(std::move(dir)), keep_(std::max(keep, 2)) {
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
}

std::vector<std::string> BlackBoxStore::ListFiles() const {
  std::vector<std::string> files;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir_, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.size() > sizeof(kBBoxPrefix) - 1 + sizeof(kBBoxSuffix) - 1 &&
        name.compare(0, sizeof(kBBoxPrefix) - 1, kBBoxPrefix) == 0 &&
        name.compare(name.size() - (sizeof(kBBoxSuffix) - 1),
                     sizeof(kBBoxSuffix) - 1, kBBoxSuffix) == 0) {
      files.push_back(name);
    }
  }
  std::sort(files.begin(), files.end());  // zero-padded tick = tick order
  return files;
}

Status BlackBoxStore::Save(const BlackBoxDump& dump) {
  char name[64];
  std::snprintf(name, sizeof(name), "%s%012lld%s", kBBoxPrefix,
                static_cast<long long>(dump.tick), kBBoxSuffix);
  SGL_RETURN_IF_ERROR(SaveBlackBoxFile(dump, dir_ + "/" + name));
  std::vector<std::string> files = ListFiles();
  std::error_code ec;
  for (size_t i = 0; i + static_cast<size_t>(keep_) < files.size(); ++i) {
    std::filesystem::remove(dir_ + "/" + files[i], ec);
  }
  return Status::OK();
}

StatusOr<BlackBoxDump> BlackBoxStore::LoadLatestGood() const {
  std::vector<std::string> files = ListFiles();
  for (auto it = files.rbegin(); it != files.rend(); ++it) {
    BlackBoxDump dump;
    Status status = LoadBlackBoxFile(dir_ + "/" + *it, &dump);
    if (status.ok()) return dump;
  }
  return Status::NotFound("blackbox store: no valid dump in " + dir_);
}

}  // namespace sgl
