// Effect tracing hook (§3.3: "developers should be able to select an
// individual NPC and view the effects assigned to it").
//
// When a sink is attached, every effect assignment (vectorized or scalar
// path) reports (target, field, value, source assignment). The executor
// checks one pointer when no sink is attached, so tracing is pay-as-you-go.

#ifndef SGL_DEBUG_TRACE_H_
#define SGL_DEBUG_TRACE_H_

#include "src/common/types.h"
#include "src/common/value.h"

namespace sgl {

/// Provenance tag attached to every effect-assignment event: which join
/// site emitted the write, from which shard, reading which source rows,
/// and — for transaction-resolved writes — which intent committed it.
///
/// `site` is -1 for plan-level (non-site) effect ops. `txn` is -1 for
/// query-phase effect writes and the intent order key
/// ((site_id << 32) | issuing_row) for writes applied at transaction
/// admission. `src_shard` is attribution of the emitting worker's shard
/// (always 0 in unsharded runs) — topology metadata, not part of the
/// deterministic causal content of a record.
struct EffectProv {
  int32_t site = -1;
  int32_t src_shard = 0;
  EntityId src_outer = kNullEntity;
  EntityId src_inner = kNullEntity;
  int64_t txn = -1;
};

/// Receives effect-assignment events during the query/effect phase.
class EffectTraceSink {
 public:
  virtual ~EffectTraceSink() = default;

  /// Called once per effect assignment. `assign_id` identifies the source
  /// statement in the compiled program; `order_key` is the deterministic
  /// ⊕-resolution key; `prov` attributes the write to its emitting site,
  /// shard, source rows, and (if any) transaction.
  virtual void OnEffectAssign(Tick tick, EntityId target, ClassId target_cls,
                              FieldIdx field, const Value& value,
                              int assign_id, uint64_t order_key,
                              const EffectProv& prov) = 0;
};

}  // namespace sgl

#endif  // SGL_DEBUG_TRACE_H_
