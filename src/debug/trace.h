// Effect tracing hook (§3.3: "developers should be able to select an
// individual NPC and view the effects assigned to it").
//
// When a sink is attached, every effect assignment (vectorized or scalar
// path) reports (target, field, value, source assignment). The executor
// checks one pointer when no sink is attached, so tracing is pay-as-you-go.

#ifndef SGL_DEBUG_TRACE_H_
#define SGL_DEBUG_TRACE_H_

#include "src/common/types.h"
#include "src/common/value.h"

namespace sgl {

/// Receives effect-assignment events during the query/effect phase.
class EffectTraceSink {
 public:
  virtual ~EffectTraceSink() = default;

  /// Called once per effect assignment. `assign_id` identifies the source
  /// statement in the compiled program; `order_key` is the deterministic
  /// ⊕-resolution key.
  virtual void OnEffectAssign(Tick tick, EntityId target, ClassId target_cls,
                              FieldIdx field, const Value& value,
                              int assign_id, uint64_t order_key) = 0;
};

}  // namespace sgl

#endif  // SGL_DEBUG_TRACE_H_
