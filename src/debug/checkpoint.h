// Checkpointing and replay logging (§3.3: "SGL should include support for
// logging, including resumable checkpoints").
//
// Checkpoints are taken at tick boundaries (effect buffers empty by
// construction) and capture the complete World plus the tick counter.
// Restoring and resuming is bit-equivalent to having never stopped — a
// property test (checkpoint_test) asserts it. The replay log captures a
// cheap per-tick state checksum so two runs can be compared tick-by-tick
// without storing full snapshots.

#ifndef SGL_DEBUG_CHECKPOINT_H_
#define SGL_DEBUG_CHECKPOINT_H_

#include <string>
#include <vector>

#include "src/storage/world.h"

namespace sgl {

/// A resumable snapshot.
struct Checkpoint {
  Tick tick = 0;
  std::string state;  ///< serialized World
  /// Sharded engines only: the serialized shard partition (per-class shard
  /// boundaries, see ShardedWorld::SerializePartition), so restore resumes
  /// the exact partition — including migration history — instead of
  /// re-blocking. Empty for single-world checkpoints.
  std::string shard_partition;
  /// In-flight JobService submissions (JobService::SerializeInFlight): a
  /// restore re-creates each job so it installs at its originally
  /// contracted tick, instead of cancelling and re-requesting. Empty when
  /// no jobs were in flight (or on legacy checkpoints).
  std::string jobs;
  /// Private update-component state (ComponentRegistry::SerializeState):
  /// cross-tick caches that are not derivable from world columns. Empty on
  /// legacy checkpoints — restore then falls back to NotifyRestore().
  std::string components;
};

/// Captures `world` at `tick`.
Checkpoint TakeCheckpoint(const World& world, Tick tick);

/// Restores a snapshot into a world built over the same catalog/layout.
Status RestoreCheckpoint(const Checkpoint& cp, World* world);

/// Incremental FNV-1a over raw bytes (chainable: pass the previous return
/// as `h`). The checksum primitive shared by the world checksums below and
/// the checkpoint file format (checkpoint_file.h).
uint64_t Fnv1a(const void* data, size_t len,
               uint64_t h = 0xcbf29ce484222325ULL);

/// FNV-1a checksum over all state columns of all classes — cheap enough to
/// run every tick, strong enough for run-equivalence checks. Sensitive to
/// row order (row-major over dense rows).
uint64_t WorldChecksum(const World& world);

/// Row-order-independent variant: rows are visited in ascending EntityId
/// order (row-major), so any permutation of rows — e.g. a shard migration,
/// which moves state without changing it — leaves the checksum unchanged.
/// Compares worlds that hold the same entities under different partitions.
uint64_t CanonicalWorldChecksum(const World& world);

/// Per-tick checksum log with optional periodic full checkpoints.
class ReplayLog {
 public:
  /// `checkpoint_every` <= 0 disables periodic snapshots.
  explicit ReplayLog(int checkpoint_every = 0)
      : checkpoint_every_(checkpoint_every) {}

  /// Appends this tick's checksum (and snapshot if due).
  void Record(const World& world, Tick tick);

  size_t size() const { return checksums_.size(); }
  uint64_t checksum(size_t i) const { return checksums_[i]; }

  /// First index where this log and `other` diverge, or -1 if the common
  /// prefix matches.
  int64_t FirstDivergence(const ReplayLog& other) const;

  /// Latest stored checkpoint at-or-before `tick`, or nullptr.
  const Checkpoint* LatestCheckpointBefore(Tick tick) const;

 private:
  int checkpoint_every_;
  std::vector<uint64_t> checksums_;
  std::vector<Checkpoint> checkpoints_;
};

}  // namespace sgl

#endif  // SGL_DEBUG_CHECKPOINT_H_
