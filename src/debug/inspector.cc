#include "src/debug/inspector.h"

#include <cmath>
#include <cstdio>

namespace sgl {

std::string DescribeTickStats(const TickStats& stats) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "tick %lld: %lldus (query %lld merge %lld update %lld | "
                "index %lld, %lld B resident) allocs/tick %lld (%lld B)",
                static_cast<long long>(stats.tick),
                static_cast<long long>(stats.total_micros),
                static_cast<long long>(stats.query_effect_micros),
                static_cast<long long>(stats.merge_micros),
                static_cast<long long>(stats.update_micros),
                static_cast<long long>(stats.index_build_micros),
                static_cast<long long>(stats.index_memory_bytes),
                static_cast<long long>(stats.allocs_per_tick),
                static_cast<long long>(stats.bytes_per_tick));
  std::string out(buf);
  if (stats.jobs_submitted != 0 || stats.jobs_installed != 0 ||
      stats.jobs_in_flight != 0) {
    std::snprintf(buf, sizeof(buf),
                  " jobs +%lld/-%lld (%lld in flight, wait %lldus)",
                  static_cast<long long>(stats.jobs_submitted),
                  static_cast<long long>(stats.jobs_installed),
                  static_cast<long long>(stats.jobs_in_flight),
                  static_cast<long long>(stats.job_wait_micros));
    out += buf;
  }
  if (stats.vm_programs != 0) {
    std::snprintf(buf, sizeof(buf),
                  " vm %lld programs (%lld fallbacks, compiled in %lldus)",
                  static_cast<long long>(stats.vm_programs),
                  static_cast<long long>(stats.vm_fallbacks),
                  static_cast<long long>(stats.vm_compile_micros));
    out += buf;
  }
  if (stats.sites_bytecode != 0 || stats.sites_interpreted != 0) {
    std::snprintf(buf, sizeof(buf),
                  " backends %lld vm / %lld interp, probes %lld batched / "
                  "%lld single",
                  static_cast<long long>(stats.sites_bytecode),
                  static_cast<long long>(stats.sites_interpreted),
                  static_cast<long long>(stats.sites_probe_batched),
                  static_cast<long long>(stats.sites_probe_single));
    out += buf;
  }
  if (stats.probe_micros != 0) {
    std::snprintf(buf, sizeof(buf), " probe %lldus",
                  static_cast<long long>(stats.probe_micros));
    out += buf;
  }
  if (stats.simd_lanes_used != 0) {
    std::snprintf(buf, sizeof(buf), " simd %lld lanes",
                  static_cast<long long>(stats.simd_lanes_used));
    out += buf;
  }
  return out;
}

std::string Inspector::DescribeEntity(EntityId id) const {
  const World::Locator* loc = world_->Find(id);
  if (loc == nullptr) {
    return "<no entity @" + std::to_string(id) + ">";
  }
  const ClassDef& def = world_->catalog().Get(loc->cls);
  std::string out = def.name() + "@" + std::to_string(id) + " {";
  bool first = true;
  for (const FieldDef& f : def.state_fields()) {
    if (!first) out += ", ";
    first = false;
    out += f.name + ": " +
           world_->table(loc->cls).GetValue(loc->row, f.index).ToString();
  }
  out += "}";
  return out;
}

std::vector<std::string> Inspector::FieldValues(EntityId id) const {
  std::vector<std::string> out;
  const World::Locator* loc = world_->Find(id);
  if (loc == nullptr) return out;
  const ClassDef& def = world_->catalog().Get(loc->cls);
  for (const FieldDef& f : def.state_fields()) {
    out.push_back(
        f.name + " = " +
        world_->table(loc->cls).GetValue(loc->row, f.index).ToString());
  }
  return out;
}

std::string Inspector::DescribeClass(const std::string& cls_name) const {
  ClassId cls = world_->catalog().Find(cls_name);
  if (cls == kInvalidClass) return "<no class '" + cls_name + "'>";
  const ClassDef& def = world_->catalog().Get(cls);
  const EntityTable& table = world_->table(cls);
  std::string out = cls_name + ": " + std::to_string(table.size()) + " rows";
  for (const FieldDef& f : def.state_fields()) {
    if (!f.type.is_number()) continue;
    ConstNumberColumn col = table.Num(f.index);
    double mn = INFINITY, mx = -INFINITY, sum = 0;
    for (size_t i = 0; i < table.size(); ++i) {
      mn = std::min(mn, col[i]);
      mx = std::max(mx, col[i]);
      sum += col[i];
    }
    char buf[128];
    if (table.empty()) {
      std::snprintf(buf, sizeof(buf), "\n  %s: <empty>", f.name.c_str());
    } else {
      std::snprintf(buf, sizeof(buf), "\n  %s: min=%g mean=%g max=%g",
                    f.name.c_str(), mn,
                    sum / static_cast<double>(table.size()), mx);
    }
    out += buf;
  }
  return out;
}

std::vector<EntityId> Inspector::FindWhere(const std::string& cls_name,
                                           const std::string& field,
                                           double lo, double hi) const {
  std::vector<EntityId> out;
  ClassId cls = world_->catalog().Find(cls_name);
  if (cls == kInvalidClass) return out;
  const ClassDef& def = world_->catalog().Get(cls);
  FieldIdx f = def.FindState(field);
  if (f == kInvalidField || !def.state_field(f).type.is_number()) return out;
  const EntityTable& table = world_->table(cls);
  ConstNumberColumn col = table.Num(f);
  for (size_t i = 0; i < table.size(); ++i) {
    if (col[i] >= lo && col[i] <= hi) {
      out.push_back(table.id_at(static_cast<RowIdx>(i)));
    }
  }
  return out;
}

}  // namespace sgl
