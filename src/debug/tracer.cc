#include "src/debug/tracer.h"

#include <algorithm>

namespace sgl {

void EffectTracer::Watch(EntityId id) {
  auto it = std::lower_bound(watched_.begin(), watched_.end(), id);
  if (it != watched_.end() && *it == id) return;
  watched_.insert(it, id);
}

void EffectTracer::Unwatch(EntityId id) {
  auto it = std::lower_bound(watched_.begin(), watched_.end(), id);
  if (it != watched_.end() && *it == id) watched_.erase(it);
}

bool EffectTracer::IsWatched(EntityId id) const {
  return std::binary_search(watched_.begin(), watched_.end(), id);
}

void EffectTracer::OnEffectAssign(Tick tick, EntityId target,
                                  ClassId target_cls, FieldIdx field,
                                  const Value& value, int assign_id,
                                  uint64_t order_key, const EffectProv& prov) {
  if (!watch_all_ &&
      !std::binary_search(watched_.begin(), watched_.end(), target)) {
    return;
  }
  TraceRecord rec;
  rec.tick = tick;
  rec.target = target;
  rec.target_cls = target_cls;
  rec.field = field;
  rec.value = value;
  rec.assign_id = assign_id;
  rec.order_key = order_key;
  rec.prov = prov;
  lanes_.Append(rec);
}

std::vector<TraceRecord> EffectTracer::Records() const {
  std::vector<TraceRecord> out;
  out.reserve(lanes_.size());
  lanes_.ForEach([&](const TraceRecord& rec) { out.push_back(rec); });
  // Canonical total order: (tick, phase, order_key) with (target, field,
  // assign_id) breaking the astronomically-rare key collision so the
  // result never depends on which lane recorded what. Transaction-phase
  // records (prov.txn >= 0) sort after the tick's query-phase effect
  // writes — their order keys live in a different namespace
  // ((site << 32) | issuing_row) and must not interleave.
  std::sort(out.begin(), out.end(), TraceRecordCanonicalLess);
  return out;
}

std::vector<TraceRecord> EffectTracer::RecordsFor(EntityId id,
                                                  Tick tick) const {
  std::vector<TraceRecord> out;
  for (const TraceRecord& rec : Records()) {
    if (rec.target == id && rec.tick == tick) out.push_back(rec);
  }
  return out;
}

void EffectTracer::Clear() { lanes_.Clear(); }

size_t EffectTracer::size() const { return lanes_.size(); }

}  // namespace sgl
