#include "src/debug/tracer.h"

#include <algorithm>

namespace sgl {

void EffectTracer::Watch(EntityId id) {
  std::lock_guard<std::mutex> lock(mu_);
  watched_.insert(id);
}

void EffectTracer::Unwatch(EntityId id) {
  std::lock_guard<std::mutex> lock(mu_);
  watched_.erase(id);
}

bool EffectTracer::IsWatched(EntityId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  return watched_.count(id) > 0;
}

void EffectTracer::OnEffectAssign(Tick tick, EntityId target,
                                  ClassId target_cls, FieldIdx field,
                                  const Value& value, int assign_id,
                                  uint64_t order_key) {
  std::lock_guard<std::mutex> lock(mu_);
  if (watched_.find(target) == watched_.end()) return;
  TraceRecord rec;
  rec.tick = tick;
  rec.target = target;
  rec.target_cls = target_cls;
  rec.field = field;
  rec.value = value;
  rec.assign_id = assign_id;
  rec.order_key = order_key;
  records_.push_back(std::move(rec));
}

std::vector<TraceRecord> EffectTracer::Records() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TraceRecord> out = records_;
  std::stable_sort(out.begin(), out.end(),
                   [](const TraceRecord& a, const TraceRecord& b) {
                     if (a.tick != b.tick) return a.tick < b.tick;
                     return a.order_key < b.order_key;
                   });
  return out;
}

std::vector<TraceRecord> EffectTracer::RecordsFor(EntityId id,
                                                  Tick tick) const {
  std::vector<TraceRecord> out;
  for (const TraceRecord& rec : Records()) {
    if (rec.target == id && rec.tick == tick) out.push_back(rec);
  }
  return out;
}

void EffectTracer::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  records_.clear();
}

size_t EffectTracer::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return records_.size();
}

}  // namespace sgl
