// Durable checkpoint files: versioned, checksummed, atomically replaced.
//
// The in-memory Checkpoint (checkpoint.h) becomes durable through a single
// flat file:
//
//   header (72 bytes):
//     u64 magic "SGLCKPT1"    u32 version    u32 reserved(0)
//     i64 tick
//     u64 state_size  u64 shard_partition_size  u64 jobs_size
//     u64 components_size
//     u64 payload_fnv         (FNV-1a over the concatenated sections)
//     u64 header_fnv          (FNV-1a over the 64 header bytes above)
//   payload:
//     state || shard_partition || jobs || components
//
// Write protocol (SaveCheckpointFile): build the full image in memory,
// write it to `<path>.tmp`, fflush + fsync, then rename onto `path`. A
// crash at any instant leaves either the complete previous file or the
// complete new one — never a half-written target. Restore-side corruption
// (truncation, bit flips, a stray rename of a short write) is caught by
// the two checksums and the size arithmetic and reported as a clean
// Status, never a crash.
//
// CheckpointStore rotates a directory of such files
// (`ckpt_<zero-padded-tick>.sgl`) and, on load, walks newest → oldest
// until a file validates — the fallback-to-last-good policy the
// crash-recovery harness (tests/fault_test.cc) exercises under injected
// torn writes and flipped bits. All checkpoint fault sites (ckpt.write.*,
// ckpt.read.bitflip, ckpt.serialize.allocfail) are implemented here.

#ifndef SGL_DEBUG_CHECKPOINT_FILE_H_
#define SGL_DEBUG_CHECKPOINT_FILE_H_

#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/debug/checkpoint.h"

namespace sgl {

class FaultInjector;

/// Atomically writes `cp` to `path` (via `<path>.tmp` + fsync + rename).
/// With an armed `fault`, the ckpt.write.* / ckpt.serialize.allocfail sites
/// evaluate at `cp.tick`: a short write or bit flip corrupts the image
/// (renamed anyway — the corruption-detection tests), a torn write stops
/// before the rename and returns an injected-crash Status (the atomicity
/// tests), an alloc failure aborts serialization with a clean Internal.
Status SaveCheckpointFile(const Checkpoint& cp, const std::string& path,
                          FaultInjector* fault = nullptr);

/// Reads and validates `path` into `out`. NotFound when the file does not
/// exist; InvalidArgument (with `out` untouched semantics not guaranteed)
/// on any corruption — bad magic, version, checksum, or size arithmetic.
/// The ckpt.read.bitflip site evaluates at tick 0 with the file size as
/// key.
Status LoadCheckpointFile(const std::string& path, Checkpoint* out,
                          FaultInjector* fault = nullptr);

// --- Black-box dumps (flight recorder) -------------------------------------
//
// Same file discipline as checkpoints — versioned, double-checksummed,
// written to `<path>.tmp` + fsync + rename — but carrying the flight
// recorder's self-contained post-mortem instead of restorable state:
//
//   header (88 bytes):
//     u64 magic "SGLBBOX1"    u32 version    u32 reserved(0)
//     i64 tick                u64 world_checksum
//     u64 reason_size  u64 chrome_trace_size  u64 metrics_size
//     u64 sites_size   u64 provenance_size
//     u64 payload_fnv         u64 header_fnv
//   payload:
//     reason || chrome_trace || metrics || sites || provenance
//
// `chrome_trace` is DumpChromeTrace() JSON of the ring window, `metrics`
// the metrics-snapshot text, `sites` DescribeSitesJson(), `provenance` the
// flat serialized frame records of the ring tail. The trace/metrics
// sections carry wall-clock timings; the provenance section and the world
// checksum are deterministic — those are the bytes the
// never-crashed-vs-recovered differential compares.

/// One self-contained black-box dump.
struct BlackBoxDump {
  Tick tick = 0;
  uint64_t world_checksum = 0;
  std::string reason;        ///< which trigger fired, human-readable
  std::string chrome_trace;  ///< Chrome trace-event JSON of the ring window
  std::string metrics;       ///< metrics snapshot (text)
  std::string sites;         ///< DescribeSitesJson() output
  std::string provenance;    ///< flat serialized ring-tail frame records
};

/// Atomically writes `dump` to `path` (`<path>.tmp` + fsync + rename).
Status SaveBlackBoxFile(const BlackBoxDump& dump, const std::string& path);

/// Reads and validates `path` into `out`. NotFound when absent;
/// InvalidArgument on any corruption (bad magic, version, checksum, or
/// size arithmetic) — same detection surface as checkpoint loads.
Status LoadBlackBoxFile(const std::string& path, BlackBoxDump* out);

/// A rotating directory of black-box dumps (`bbox_<zero-padded-tick>.sbb`),
/// CheckpointStore-style: prune-after-successful-save, newest-wins load
/// with fallback over corrupt files.
class BlackBoxStore {
 public:
  explicit BlackBoxStore(std::string dir, int keep = 4);

  Status Save(const BlackBoxDump& dump);
  /// Newest dump that validates; NotFound when none does.
  StatusOr<BlackBoxDump> LoadLatestGood() const;
  /// Dump file names, ascending by tick.
  std::vector<std::string> ListFiles() const;
  const std::string& dir() const { return dir_; }

 private:
  std::string dir_;
  int keep_;
};

/// A rotating directory of checkpoint files, newest-wins with fallback.
class CheckpointStore {
 public:
  /// Creates `dir` if needed. Keeps the newest `keep` files (clamped to
  /// >= 2: fallback-to-previous-good requires a previous good). `fault`
  /// (may be null) is threaded into every file save/load.
  explicit CheckpointStore(std::string dir, int keep = 3,
                           FaultInjector* fault = nullptr);

  /// Saves `cp` as `ckpt_<zero-padded-tick>.sgl`, then prunes the oldest
  /// files beyond the keep budget. Pruning only runs after a fully
  /// successful save, so a failed save never costs an older good file.
  Status Save(const Checkpoint& cp);

  /// Newest checkpoint that validates, walking backwards over anything
  /// corrupt or torn. NotFound when no file in the directory validates.
  StatusOr<Checkpoint> LoadLatestGood() const;

  /// Checkpoint file names in the store, ascending by tick.
  std::vector<std::string> ListFiles() const;

  const std::string& dir() const { return dir_; }

 private:
  std::string dir_;
  int keep_;
  FaultInjector* fault_;
};

}  // namespace sgl

#endif  // SGL_DEBUG_CHECKPOINT_FILE_H_
