// Tick-boundary state inspection (§3.3: "developers should be able to
// inspect the value of state attributes at tick boundaries ... using a
// mapping between relation table names and SGL attributes"). The inspector
// is that mapping: it renders entities and tables in SGL-attribute terms.

#ifndef SGL_DEBUG_INSPECTOR_H_
#define SGL_DEBUG_INSPECTOR_H_

#include <string>
#include <vector>

#include "src/exec/tick_executor.h"
#include "src/storage/world.h"

namespace sgl {

/// One-line performance summary of a tick, including the allocation
/// counters: "tick 41: 1243us (query 1100 merge 3 update 97 | index 510) "
/// "allocs/tick 0 (0 B)". The developer-facing view of the steady-state
/// zero-allocation contract.
std::string DescribeTickStats(const TickStats& stats);

class Inspector {
 public:
  explicit Inspector(const World* world) : world_(world) {}

  /// "Unit@17 {x: 3, y: 4, health: 92, ...}" or an error note.
  std::string DescribeEntity(EntityId id) const;

  /// One line per state field: "x = 3".
  std::vector<std::string> FieldValues(EntityId id) const;

  /// Class-level summary: row count plus per-numeric-field min/mean/max —
  /// the aggregate view of the generated relation.
  std::string DescribeClass(const std::string& cls_name) const;

  /// Entities of a class whose numeric state field lies in [lo, hi]
  /// (a debugger-side selection query).
  std::vector<EntityId> FindWhere(const std::string& cls_name,
                                  const std::string& field, double lo,
                                  double hi) const;

 private:
  const World* world_;
};

}  // namespace sgl

#endif  // SGL_DEBUG_INSPECTOR_H_
