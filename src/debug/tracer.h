// EffectTracer: records the effect assignments targeting selected entities
// (§3.3: "developers should be able to select an individual NPC and view the
// effects assigned to it"). Works identically under the compiled and the
// object-at-a-time engines and under parallel execution (records are sorted
// by deterministic order key on read).
//
// Record path (hot): a membership test against a sorted flat watch list,
// then an append to the calling worker's pooled lane
// (src/telemetry/worker_lanes.h) — no mutex serializing parallel workers,
// no per-record allocation once lanes reach their high-water capacity, so
// an armed tracer holds the steady-state allocs_per_tick == 0 contract
// when Clear() is called between ticks (capacity is kept).
//
// Read path (off-tick): lanes merge and sort into the canonical
// (tick, order_key) order — the same total order the old single-vector
// implementation exposed, now independent of which worker recorded what.
//
// Watch/Unwatch/Clear configure the tracer and must run between ticks
// (the barrier thread); OnEffectAssign may run from any worker.

#ifndef SGL_DEBUG_TRACER_H_
#define SGL_DEBUG_TRACER_H_

#include <string>
#include <vector>

#include "src/debug/trace.h"
#include "src/telemetry/worker_lanes.h"

namespace sgl {

/// One recorded effect assignment.
struct TraceRecord {
  Tick tick = 0;
  EntityId target = kNullEntity;
  ClassId target_cls = kInvalidClass;
  FieldIdx field = kInvalidField;
  Value value;
  int assign_id = 0;
  uint64_t order_key = 0;
  EffectProv prov;
};

/// Canonical record order: (tick, phase [query < txn], order_key, target,
/// field, assign_id). Query-phase ⊕ keys and transaction intent keys live
/// in different namespaces, so the phase discriminator keeps them from
/// interleaving. Shared by `EffectTracer::Records()` and the flight
/// recorder's per-frame sort.
inline bool TraceRecordCanonicalLess(const TraceRecord& a,
                                     const TraceRecord& b) {
  if (a.tick != b.tick) return a.tick < b.tick;
  const int ap = a.prov.txn >= 0 ? 1 : 0;
  const int bp = b.prov.txn >= 0 ? 1 : 0;
  if (ap != bp) return ap < bp;
  if (a.order_key != b.order_key) return a.order_key < b.order_key;
  if (a.target != b.target) return a.target < b.target;
  if (a.field != b.field) return a.field < b.field;
  return a.assign_id < b.assign_id;
}

class EffectTracer : public EffectTraceSink {
 public:
  /// `max_lanes` bounds the distinct recording threads (WorkerLanes).
  explicit EffectTracer(int max_lanes = 64) : lanes_(max_lanes) {}

  /// Starts watching an entity. No filter set = trace nothing.
  /// Configure between ticks (see header comment).
  void Watch(EntityId id);
  void Unwatch(EntityId id);
  bool IsWatched(EntityId id) const;

  /// Watch-all mode records every assignment regardless of the watch list
  /// (the flight recorder's capture sink). Configure between ticks.
  void set_watch_all(bool on) { watch_all_ = on; }
  bool watch_all() const { return watch_all_; }

  void OnEffectAssign(Tick tick, EntityId target, ClassId target_cls,
                      FieldIdx field, const Value& value, int assign_id,
                      uint64_t order_key, const EffectProv& prov) override;

  /// Records so far, ordered by (tick, deterministic order key).
  std::vector<TraceRecord> Records() const;
  /// Records for one entity in one tick, in canonical order.
  std::vector<TraceRecord> RecordsFor(EntityId id, Tick tick) const;

  /// Drops every record, keeping lane capacity (between ticks).
  void Clear();
  size_t size() const;

  /// Unsorted lane-order visit of every record — allocation-free (the
  /// flight recorder's pooled per-tick drain). Callers needing the
  /// canonical order sort the copies themselves; `Records()` stays the
  /// allocating convenience path.
  template <typename Fn>
  void ForEachRecord(Fn&& fn) const {
    lanes_.ForEach(fn);
  }

 private:
  std::vector<EntityId> watched_;  ///< sorted; binary-searched on record
  bool watch_all_ = false;
  WorkerLanes<TraceRecord> lanes_;
};

}  // namespace sgl

#endif  // SGL_DEBUG_TRACER_H_
