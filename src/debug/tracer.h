// EffectTracer: records the effect assignments targeting selected entities
// (§3.3: "developers should be able to select an individual NPC and view the
// effects assigned to it"). Works identically under the compiled and the
// object-at-a-time engines and under parallel execution (records are sorted
// by deterministic order key on read).

#ifndef SGL_DEBUG_TRACER_H_
#define SGL_DEBUG_TRACER_H_

#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "src/debug/trace.h"

namespace sgl {

/// One recorded effect assignment.
struct TraceRecord {
  Tick tick = 0;
  EntityId target = kNullEntity;
  ClassId target_cls = kInvalidClass;
  FieldIdx field = kInvalidField;
  Value value;
  int assign_id = 0;
  uint64_t order_key = 0;
};

class EffectTracer : public EffectTraceSink {
 public:
  /// Starts watching an entity. No filter set = trace nothing.
  void Watch(EntityId id);
  void Unwatch(EntityId id);
  bool IsWatched(EntityId id) const;

  void OnEffectAssign(Tick tick, EntityId target, ClassId target_cls,
                      FieldIdx field, const Value& value, int assign_id,
                      uint64_t order_key) override;

  /// Records so far, ordered by (tick, deterministic order key).
  std::vector<TraceRecord> Records() const;
  /// Records for one entity in one tick, in canonical order.
  std::vector<TraceRecord> RecordsFor(EntityId id, Tick tick) const;

  void Clear();
  size_t size() const;

 private:
  mutable std::mutex mu_;  // parallel workers may report concurrently
  std::set<EntityId> watched_;
  std::vector<TraceRecord> records_;
};

}  // namespace sgl

#endif  // SGL_DEBUG_TRACER_H_
