// EffectTracer: records the effect assignments targeting selected entities
// (§3.3: "developers should be able to select an individual NPC and view the
// effects assigned to it"). Works identically under the compiled and the
// object-at-a-time engines and under parallel execution (records are sorted
// by deterministic order key on read).
//
// Record path (hot): a membership test against a sorted flat watch list,
// then an append to the calling worker's pooled lane
// (src/telemetry/worker_lanes.h) — no mutex serializing parallel workers,
// no per-record allocation once lanes reach their high-water capacity, so
// an armed tracer holds the steady-state allocs_per_tick == 0 contract
// when Clear() is called between ticks (capacity is kept).
//
// Read path (off-tick): lanes merge and sort into the canonical
// (tick, order_key) order — the same total order the old single-vector
// implementation exposed, now independent of which worker recorded what.
//
// Watch/Unwatch/Clear configure the tracer and must run between ticks
// (the barrier thread); OnEffectAssign may run from any worker.

#ifndef SGL_DEBUG_TRACER_H_
#define SGL_DEBUG_TRACER_H_

#include <string>
#include <vector>

#include "src/debug/trace.h"
#include "src/telemetry/worker_lanes.h"

namespace sgl {

/// One recorded effect assignment.
struct TraceRecord {
  Tick tick = 0;
  EntityId target = kNullEntity;
  ClassId target_cls = kInvalidClass;
  FieldIdx field = kInvalidField;
  Value value;
  int assign_id = 0;
  uint64_t order_key = 0;
};

class EffectTracer : public EffectTraceSink {
 public:
  /// Starts watching an entity. No filter set = trace nothing.
  /// Configure between ticks (see header comment).
  void Watch(EntityId id);
  void Unwatch(EntityId id);
  bool IsWatched(EntityId id) const;

  void OnEffectAssign(Tick tick, EntityId target, ClassId target_cls,
                      FieldIdx field, const Value& value, int assign_id,
                      uint64_t order_key) override;

  /// Records so far, ordered by (tick, deterministic order key).
  std::vector<TraceRecord> Records() const;
  /// Records for one entity in one tick, in canonical order.
  std::vector<TraceRecord> RecordsFor(EntityId id, Tick tick) const;

  /// Drops every record, keeping lane capacity (between ticks).
  void Clear();
  size_t size() const;

 private:
  std::vector<EntityId> watched_;  ///< sorted; binary-searched on record
  WorkerLanes<TraceRecord> lanes_;
};

}  // namespace sgl

#endif  // SGL_DEBUG_TRACER_H_
