// Lexer for SGL source text (§2.1, Figs. 1–2 define the surface syntax).

#ifndef SGL_LANG_LEXER_H_
#define SGL_LANG_LEXER_H_

#include <string>
#include <vector>

#include "src/common/status.h"

namespace sgl {

enum class TokKind : uint8_t {
  kEof,
  kIdent,     ///< identifiers and keywords (parser matches text)
  kNumber,    ///< numeric literal
  kString,    ///< "double-quoted" (atomic-block labels)
  kLParen, kRParen, kLBrace, kRBrace,
  kComma, kSemi, kColon, kDot,
  kPlus, kMinus, kStar, kSlash, kPercent,
  kLt, kLe, kGt, kGe, kEqEq, kNe, kAssign,     // = (update rules, defaults)
  kAndAnd, kOrOr, kBang,
  kArrow,       ///< <-  (effect assignment)
  kArrowPlus,   ///< <+  (set insert)
  kArrowTilde,  ///< <~  (set remove; atomic blocks only)
};

const char* TokKindName(TokKind k);

struct Token {
  TokKind kind = TokKind::kEof;
  std::string text;   ///< kIdent/kString: content; kNumber: raw text
  double num = 0.0;   ///< kNumber value
  int line = 1;
  int col = 1;
};

/// Tokenizes `source`. `//` line comments and `/* */` block comments are
/// skipped. Fails with ParseError on unknown characters or unterminated
/// strings/comments.
StatusOr<std::vector<Token>> Lex(const std::string& source);

}  // namespace sgl

#endif  // SGL_LANG_LEXER_H_
