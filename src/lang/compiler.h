// The SGL compiler: AstProgram -> CompiledProgram.
//
// This is the paper's central translation (§2.1): imperative object-level
// scripts become relational plans executed set-at-a-time. Passes:
//   1. Class declarations -> ClassDefs (schema generation).
//   2. Implicit-field injection: program counters for multi-tick scripts
//      (§3.2) and status fields for atomic blocks (§3.1).
//   3. Catalog registration + ref/set target resolution.
//   4. Script/handler/update-rule lowering:
//        - path-condition propagation turns nested conditionals into
//          guarded effect writes (σ -> π -> ⊕),
//        - accum-loops become joins; their predicates are decomposed into
//          rectangular range dims (index-joinable), equality dims
//          (hash-joinable), and a residual filter,
//        - waitNextTick splits the body into phases dispatched on the
//          implicit PC (the "direct translation to standard single-tick
//          SGL programs" of §3.2),
//        - atomic blocks become transaction-intent emission ops.
//   5. Attribute-affinity mining for layout selection (§2.1).
//
// All access-rule violations (reading effects, writing state, waits inside
// accum/atomic, etc.) are compile-time SemanticErrors with positions.

#ifndef SGL_LANG_COMPILER_H_
#define SGL_LANG_COMPILER_H_

#include <memory>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/lang/ast.h"
#include "src/ra/plan.h"
#include "src/schema/catalog.h"
#include "src/schema/layout.h"

namespace sgl {

/// The executable form of an SGL program.
struct CompiledProgram {
  std::unique_ptr<Catalog> catalog;
  std::vector<CompiledScript> scripts;    ///< program order
  std::vector<CompiledHandler> handlers;  ///< program order
  std::vector<UpdateRule> update_rules;   ///< declared + auto PC rules
  /// Per-class attribute co-occurrence (for LayoutStrategy::kAffinity).
  std::vector<AffinityMatrix> affinity;
  /// Per-class state fields owned by the transaction engine (targets of
  /// atomic-block writes, plus status fields).
  std::vector<std::vector<FieldIdx>> txn_owned;
  int num_sites = 0;  ///< accum/txn site count (adaptive optimizer slots)

  /// Human-readable plan dump (EXPLAIN) for every script and handler.
  std::string Explain() const;

  /// Index of the script with `name`, or -1.
  int FindScript(const std::string& name) const;
};

/// Compiles a parsed program.
StatusOr<std::unique_ptr<CompiledProgram>> Compile(const AstProgram& ast);

/// Parses + compiles SGL source text.
StatusOr<std::unique_ptr<CompiledProgram>> CompileSource(
    const std::string& source);

}  // namespace sgl

#endif  // SGL_LANG_COMPILER_H_
