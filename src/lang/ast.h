// Untyped parse tree for SGL programs. The parser builds this; the compiler
// (sema + desugar + plan generation) lowers it to CompiledProgram.

#ifndef SGL_LANG_AST_H_
#define SGL_LANG_AST_H_

#include <memory>
#include <string>
#include <vector>

namespace sgl {

/// Source position carried through for error messages.
struct SrcPos {
  int line = 0;
  int col = 0;
  std::string ToString() const {
    return std::to_string(line) + ":" + std::to_string(col);
  }
};

/// A surface type mention: "number", "bool", "ref<Unit>", "set<Item>".
struct AstType {
  std::string base;   ///< number | bool | ref | set
  std::string param;  ///< class name for ref/set
};

enum class AstExprKind : uint8_t {
  kNum,     ///< numeric literal
  kBool,    ///< true/false
  kNull,    ///< null
  kIdent,   ///< bare identifier
  kField,   ///< kids[0] . name
  kUnary,   ///< op: "-" or "!"
  kBinary,  ///< op: + - * / % < <= > >= == != && ||
  kCall,    ///< name(args...) builtin call
};

struct AstExpr {
  AstExprKind kind;
  SrcPos pos;
  double num = 0.0;
  bool b = false;
  std::string name;  ///< ident / field / call name
  std::string op;    ///< unary/binary operator spelling
  std::vector<std::unique_ptr<AstExpr>> kids;
};

using AstExprPtr = std::unique_ptr<AstExpr>;

enum class AstStmtKind : uint8_t {
  kLet,      ///< let type name = expr;
  kAssign,   ///< lvalue <- expr;  (or <+ / <~)
  kIf,       ///< if (expr) {..} else {..}
  kAccum,    ///< accum .. with .. over .. from .. { } in { }
  kWait,     ///< waitNextTick;
  kAtomic,   ///< atomic "label" require(..)* { txn writes }
  kRestart,  ///< restart [Script];
};

struct AstStmt {
  AstStmtKind kind;
  SrcPos pos;

  // kLet: type name = expr. kAssign: value in expr.
  AstType type;
  std::string name;        ///< let var / assign field / atomic label /
                           ///< restart target
  AstExprPtr expr;         ///< let value / assign value / if condition
  AstExprPtr target_base;  ///< kAssign: object expression (null = self)
  std::string assign_op;   ///< "<-", "<+", "<~"

  std::vector<std::unique_ptr<AstStmt>> block1;  ///< then / accum B1 / atomic
  std::vector<std::unique_ptr<AstStmt>> block2;  ///< else / accum B2

  // kAccum extras.
  std::string comb;        ///< combinator name
  AstType accum_type;      ///< accumulated value type
  std::string iter_class;  ///< declared class of the iteration variable
  std::string iter_name;   ///< iteration variable name
  std::string from_name;   ///< class extent or set-field identifier

  // kAtomic extras.
  std::vector<AstExprPtr> constraints;
};

using AstStmtPtr = std::unique_ptr<AstStmt>;

struct AstStateField {
  AstType type;
  std::string name;
  AstExprPtr init;  ///< literal initializer; null = type default
  SrcPos pos;
};

struct AstEffectField {
  AstType type;
  std::string name;
  std::string comb;
  SrcPos pos;
};

struct AstUpdateRule {
  std::string field;
  AstExprPtr value;
  SrcPos pos;
};

struct AstClass {
  std::string name;
  std::vector<AstStateField> state;
  std::vector<AstEffectField> effects;
  std::vector<AstUpdateRule> updates;
  SrcPos pos;
};

struct AstScript {
  std::string name;
  std::string cls;
  std::vector<AstStmtPtr> body;
  SrcPos pos;
};

struct AstHandler {
  std::string name;  ///< optional; empty = auto-named
  std::string cls;
  AstExprPtr cond;
  std::vector<AstStmtPtr> body;
  SrcPos pos;
};

struct AstProgram {
  std::vector<AstClass> classes;
  std::vector<AstScript> scripts;
  std::vector<AstHandler> handlers;
};

}  // namespace sgl

#endif  // SGL_LANG_AST_H_
