// Recursive-descent parser: SGL source -> AstProgram.

#ifndef SGL_LANG_PARSER_H_
#define SGL_LANG_PARSER_H_

#include <string>

#include "src/common/status.h"
#include "src/lang/ast.h"

namespace sgl {

/// Parses a complete SGL program (class/script/handler declarations).
/// Returns ParseError with line:col on malformed input.
StatusOr<AstProgram> ParseProgram(const std::string& source);

}  // namespace sgl

#endif  // SGL_LANG_PARSER_H_
