#include "src/lang/lexer.h"

#include <cctype>
#include <cstdlib>

namespace sgl {

const char* TokKindName(TokKind k) {
  switch (k) {
    case TokKind::kEof: return "<eof>";
    case TokKind::kIdent: return "identifier";
    case TokKind::kNumber: return "number";
    case TokKind::kString: return "string";
    case TokKind::kLParen: return "'('";
    case TokKind::kRParen: return "')'";
    case TokKind::kLBrace: return "'{'";
    case TokKind::kRBrace: return "'}'";
    case TokKind::kComma: return "','";
    case TokKind::kSemi: return "';'";
    case TokKind::kColon: return "':'";
    case TokKind::kDot: return "'.'";
    case TokKind::kPlus: return "'+'";
    case TokKind::kMinus: return "'-'";
    case TokKind::kStar: return "'*'";
    case TokKind::kSlash: return "'/'";
    case TokKind::kPercent: return "'%'";
    case TokKind::kLt: return "'<'";
    case TokKind::kLe: return "'<='";
    case TokKind::kGt: return "'>'";
    case TokKind::kGe: return "'>='";
    case TokKind::kEqEq: return "'=='";
    case TokKind::kNe: return "'!='";
    case TokKind::kAssign: return "'='";
    case TokKind::kAndAnd: return "'&&'";
    case TokKind::kOrOr: return "'||'";
    case TokKind::kBang: return "'!'";
    case TokKind::kArrow: return "'<-'";
    case TokKind::kArrowPlus: return "'<+'";
    case TokKind::kArrowTilde: return "'<~'";
  }
  return "?";
}

StatusOr<std::vector<Token>> Lex(const std::string& source) {
  std::vector<Token> out;
  size_t i = 0;
  int line = 1, col = 1;
  const size_t n = source.size();

  auto peek = [&](size_t off = 0) -> char {
    return i + off < n ? source[i + off] : '\0';
  };
  auto advance = [&]() {
    if (source[i] == '\n') {
      ++line;
      col = 1;
    } else {
      ++col;
    }
    ++i;
  };
  auto error = [&](const std::string& msg) {
    return Status::ParseError(msg + " at line " + std::to_string(line) +
                              ":" + std::to_string(col));
  };
  auto push = [&](TokKind kind, std::string text = "") {
    Token t;
    t.kind = kind;
    t.text = std::move(text);
    t.line = line;
    t.col = col;
    out.push_back(std::move(t));
  };

  while (i < n) {
    char c = peek();
    if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
      advance();
      continue;
    }
    if (c == '/' && peek(1) == '/') {
      while (i < n && peek() != '\n') advance();
      continue;
    }
    if (c == '/' && peek(1) == '*') {
      advance();
      advance();
      while (i < n && !(peek() == '*' && peek(1) == '/')) advance();
      if (i >= n) return error("unterminated block comment");
      advance();
      advance();
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      Token t;
      t.kind = TokKind::kIdent;
      t.line = line;
      t.col = col;
      while (i < n && (std::isalnum(static_cast<unsigned char>(peek())) ||
                       peek() == '_')) {
        t.text += peek();
        advance();
      }
      out.push_back(std::move(t));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && std::isdigit(static_cast<unsigned char>(peek(1))))) {
      Token t;
      t.kind = TokKind::kNumber;
      t.line = line;
      t.col = col;
      while (i < n && (std::isdigit(static_cast<unsigned char>(peek())) ||
                       peek() == '.' || peek() == 'e' || peek() == 'E' ||
                       ((peek() == '+' || peek() == '-') &&
                        (t.text.back() == 'e' || t.text.back() == 'E')))) {
        t.text += peek();
        advance();
      }
      t.num = std::strtod(t.text.c_str(), nullptr);
      out.push_back(std::move(t));
      continue;
    }
    if (c == '"') {
      Token t;
      t.kind = TokKind::kString;
      t.line = line;
      t.col = col;
      advance();
      while (i < n && peek() != '"') {
        t.text += peek();
        advance();
      }
      if (i >= n) return error("unterminated string literal");
      advance();
      out.push_back(std::move(t));
      continue;
    }
    switch (c) {
      case '(': push(TokKind::kLParen); advance(); continue;
      case ')': push(TokKind::kRParen); advance(); continue;
      case '{': push(TokKind::kLBrace); advance(); continue;
      case '}': push(TokKind::kRBrace); advance(); continue;
      case ',': push(TokKind::kComma); advance(); continue;
      case ';': push(TokKind::kSemi); advance(); continue;
      case ':': push(TokKind::kColon); advance(); continue;
      case '.': push(TokKind::kDot); advance(); continue;
      case '+': push(TokKind::kPlus); advance(); continue;
      case '-': push(TokKind::kMinus); advance(); continue;
      case '*': push(TokKind::kStar); advance(); continue;
      case '/': push(TokKind::kSlash); advance(); continue;
      case '%': push(TokKind::kPercent); advance(); continue;
      case '<':
        if (peek(1) == '=') {
          push(TokKind::kLe);
          advance();
          advance();
        } else if (peek(1) == '-') {
          push(TokKind::kArrow);
          advance();
          advance();
        } else if (peek(1) == '+') {
          push(TokKind::kArrowPlus);
          advance();
          advance();
        } else if (peek(1) == '~') {
          push(TokKind::kArrowTilde);
          advance();
          advance();
        } else {
          push(TokKind::kLt);
          advance();
        }
        continue;
      case '>':
        if (peek(1) == '=') {
          push(TokKind::kGe);
          advance();
          advance();
        } else {
          push(TokKind::kGt);
          advance();
        }
        continue;
      case '=':
        if (peek(1) == '=') {
          push(TokKind::kEqEq);
          advance();
          advance();
        } else {
          push(TokKind::kAssign);
          advance();
        }
        continue;
      case '!':
        if (peek(1) == '=') {
          push(TokKind::kNe);
          advance();
          advance();
        } else {
          push(TokKind::kBang);
          advance();
        }
        continue;
      case '&':
        if (peek(1) == '&') {
          push(TokKind::kAndAnd);
          advance();
          advance();
          continue;
        }
        return error("stray '&' (did you mean '&&'?)");
      case '|':
        if (peek(1) == '|') {
          push(TokKind::kOrOr);
          advance();
          advance();
          continue;
        }
        return error("stray '|' (did you mean '||'?)");
      default:
        return error(std::string("unexpected character '") + c + "'");
    }
  }
  push(TokKind::kEof);
  return out;
}

}  // namespace sgl
