#include "src/lang/compiler.h"

#include <map>
#include <set>

#include "src/lang/parser.h"

namespace sgl {

namespace {

// --- Scope ----------------------------------------------------------------

struct Binding {
  enum class K { kLocal, kIter, kAccum };
  K k = K::kLocal;
  int slot = -1;          // kLocal / kAccum
  SglType type;
  ClassId iter_cls = kInvalidClass;  // kIter
  std::string iter_cls_name;
  bool readable = true;   // accum var is write-only in BLOCK1
  bool writable = false;  // accum var in BLOCK1
};

// Per-script (or per-handler / per-update-rule) compilation context.
struct Ctx {
  ClassId cls = kInvalidClass;
  const ClassDef* def = nullptr;
  std::string unit_name;              // script/handler name for messages
  std::vector<SglType>* local_types = nullptr;
  std::vector<std::pair<std::string, Binding>> scope;

  bool in_accum1 = false;             // inside accum BLOCK1
  std::string accum_name;
  AccumOp* cur_accum = nullptr;

  bool in_update_rule = false;        // effect reads / assigned() legal
  bool in_constraint = false;         // atomic require(): no locals/iter
  bool in_handler = false;            // restart must name a script

  // Enclosing script's PC effect (restart target default); only set for
  // multi-phase scripts.
  FieldIdx self_pc_effect = kInvalidField;
};

std::string At(const SrcPos& pos) { return " at " + pos.ToString(); }

// --- The compiler ----------------------------------------------------------

class ProgramCompiler {
 public:
  Status Run(const AstProgram& ast, CompiledProgram* out) {
    ast_ = &ast;
    out_ = out;
    out->catalog = std::make_unique<Catalog>();
    catalog_ = out->catalog.get();
    SGL_RETURN_IF_ERROR(BuildClasses());
    SGL_RETURN_IF_ERROR(InjectImplicitFields());
    SGL_RETURN_IF_ERROR(catalog_->Finalize());
    out->txn_owned.assign(static_cast<size_t>(catalog_->num_classes()), {});
    SGL_RETURN_IF_ERROR(CompileScripts());
    SGL_RETURN_IF_ERROR(CompileHandlers());
    SGL_RETURN_IF_ERROR(CompileUpdateRules());
    SGL_RETURN_IF_ERROR(CheckOwnershipConflicts());
    ComputeAffinity();
    out->num_sites = next_site_;
    return Status::OK();
  }

 private:
  // --- Pass 1: classes --------------------------------------------------

  static StatusOr<SglType> ResolveType(const AstType& t, const SrcPos& pos) {
    if (t.base == "number") return SglType::Number();
    if (t.base == "bool") return SglType::Bool();
    if (t.base == "ref") return SglType::Ref(t.param);
    if (t.base == "set") return SglType::Set(t.param);
    return Status::SemanticError("unknown type '" + t.base + "'" + At(pos));
  }

  static StatusOr<Value> LiteralValue(const AstExpr& e, const SglType& type) {
    switch (e.kind) {
      case AstExprKind::kNum:
        if (type.is_number()) return Value::Number(e.num);
        break;
      case AstExprKind::kBool:
        if (type.is_bool()) return Value::Bool(e.b);
        break;
      case AstExprKind::kNull:
        if (type.is_ref()) return Value::Ref(kNullEntity);
        break;
      case AstExprKind::kUnary:
        if (e.op == "-" && e.kids[0]->kind == AstExprKind::kNum &&
            type.is_number()) {
          return Value::Number(-e.kids[0]->num);
        }
        break;
      default:
        break;
    }
    return Status::SemanticError(
        "state defaults must be literals matching the field type" +
        At(e.pos));
  }

  Status BuildClasses() {
    for (const AstClass& ac : ast_->classes) {
      ClassDef def(ac.name);
      for (const AstStateField& f : ac.state) {
        SGL_ASSIGN_OR_RETURN(SglType type, ResolveType(f.type, f.pos));
        Value init = type.DefaultValue();
        if (f.init != nullptr) {
          SGL_ASSIGN_OR_RETURN(init, LiteralValue(*f.init, type));
        }
        SGL_RETURN_IF_ERROR(def.AddState(f.name, type, init));
      }
      for (const AstEffectField& f : ac.effects) {
        SGL_ASSIGN_OR_RETURN(SglType type, ResolveType(f.type, f.pos));
        auto comb = CombinatorFromName(f.comb);
        if (!comb.has_value()) {
          return Status::SemanticError("unknown combinator '" + f.comb + "'" +
                                       At(f.pos));
        }
        SGL_RETURN_IF_ERROR(def.AddEffect(f.name, type, *comb));
      }
      SGL_ASSIGN_OR_RETURN(ClassId id, catalog_->Register(std::move(def)));
      (void)id;
    }
    return Status::OK();
  }

  // --- Pass 2: implicit fields -------------------------------------------

  static void CollectAtomics(const std::vector<AstStmtPtr>& stmts,
                             std::vector<AstStmt*>* out) {
    for (const auto& s : stmts) {
      if (s->kind == AstStmtKind::kAtomic) out->push_back(s.get());
      CollectAtomics(s->block1, out);
      CollectAtomics(s->block2, out);
    }
  }

  static int CountTopLevelWaits(const std::vector<AstStmtPtr>& stmts) {
    int waits = 0;
    for (const auto& s : stmts) {
      if (s->kind == AstStmtKind::kWait) ++waits;
    }
    return waits;
  }

  Status InjectImplicitFields() {
    int anon_txn = 0;
    auto add_status_fields =
        [&](const std::string& cls_name, const std::vector<AstStmtPtr>& body,
            const SrcPos& pos) -> Status {
      ClassId cls = catalog_->Find(cls_name);
      if (cls == kInvalidClass) {
        return Status::NotFound("class '" + cls_name + "' not declared" +
                                At(pos));
      }
      std::vector<AstStmt*> atomics;
      CollectAtomics(body, &atomics);
      for (AstStmt* a : atomics) {
        std::string label = a->name.empty()
                                ? "__txn" + std::to_string(anon_txn++)
                                : a->name;
        a->name = label;  // canonicalize for pass 4
        std::string status = label + "_status";
        ClassDef* def = catalog_->GetMutable(cls);
        if (def->FindState(status) != kInvalidField) {
          return Status::SemanticError("duplicate atomic label '" + label +
                                       "' in class '" + cls_name + "'" +
                                       At(a->pos));
        }
        SGL_RETURN_IF_ERROR(
            def->AddState(status, SglType::Number(), Value::Number(-1)));
      }
      return Status::OK();
    };

    for (const AstScript& s : ast_->scripts) {
      ClassId cls = catalog_->Find(s.cls);
      if (cls == kInvalidClass) {
        return Status::NotFound("class '" + s.cls + "' for script '" +
                                s.name + "' not declared" + At(s.pos));
      }
      if (CountTopLevelWaits(s.body) > 0) {
        ClassDef* def = catalog_->GetMutable(cls);
        SGL_RETURN_IF_ERROR(def->AddState("__pc_" + s.name,
                                          SglType::Number(),
                                          Value::Number(0)));
        SGL_RETURN_IF_ERROR(def->AddEffect("__pcn_" + s.name,
                                           SglType::Number(),
                                           Combinator::kLast));
      }
      SGL_RETURN_IF_ERROR(add_status_fields(s.cls, s.body, s.pos));
    }
    for (const AstHandler& h : ast_->handlers) {
      SGL_RETURN_IF_ERROR(add_status_fields(h.cls, h.body, h.pos));
    }
    return Status::OK();
  }

  // --- Expression compilation --------------------------------------------

  const Binding* LookupBinding(const Ctx& ctx, const std::string& name) {
    for (auto it = ctx.scope.rbegin(); it != ctx.scope.rend(); ++it) {
      if (it->first == name) return &it->second;
    }
    return nullptr;
  }

  StatusOr<ExprPtr> CompileExpr(const AstExpr& e, Ctx& ctx) {
    switch (e.kind) {
      case AstExprKind::kNum:
        return NumLit(e.num);
      case AstExprKind::kBool:
        return BoolLit(e.b);
      case AstExprKind::kNull:
        return sgl::NullRef();
      case AstExprKind::kIdent:
        return CompileIdent(e, ctx);
      case AstExprKind::kField:
        return CompileFieldAccess(e, ctx);
      case AstExprKind::kUnary:
        return CompileUnary(e, ctx);
      case AstExprKind::kBinary:
        return CompileBinary(e, ctx);
      case AstExprKind::kCall:
        return CompileCall(e, ctx);
    }
    return Status::Internal("unreachable expr kind");
  }

  StatusOr<ExprPtr> CompileIdent(const AstExpr& e, Ctx& ctx) {
    if (e.name == "self") {
      ExprPtr r = RowIdRead(0, ctx.cls);
      r->type = SglType::Ref(ctx.def->name());
      r->type.target = ctx.cls;
      return r;
    }
    const Binding* b = LookupBinding(ctx, e.name);
    if (b != nullptr) {
      if (ctx.in_constraint && b->k != Binding::K::kIter) {
        return Status::SemanticError(
            "require() may only reference state fields" + At(e.pos));
      }
      switch (b->k) {
        case Binding::K::kLocal:
          return LocalRead(b->slot, b->type);
        case Binding::K::kIter: {
          ExprPtr r = RowIdRead(1, b->iter_cls);
          r->type = SglType::Ref(b->iter_cls_name);
          r->type.target = b->iter_cls;
          return r;
        }
        case Binding::K::kAccum:
          if (!b->readable) {
            return Status::SemanticError(
                "accum variable '" + e.name +
                "' is write-only inside the first block" + At(e.pos));
          }
          return LocalRead(b->slot, b->type);
      }
    }
    FieldIdx sf = ctx.def->FindState(e.name);
    if (sf != kInvalidField) {
      return StateRead(0, ctx.cls, sf, ctx.def->state_field(sf).type);
    }
    FieldIdx ef = ctx.def->FindEffect(e.name);
    if (ef != kInvalidField) {
      if (ctx.in_update_rule) {
        return EffectRead(ctx.cls, ef, ctx.def->effect_field(ef).type);
      }
      return Status::SemanticError(
          "effect '" + e.name +
          "' is write-only during a tick (readable only in update rules)" +
          At(e.pos));
    }
    return Status::SemanticError("unknown identifier '" + e.name + "'" +
                                 At(e.pos));
  }

  StatusOr<ExprPtr> CompileFieldAccess(const AstExpr& e, Ctx& ctx) {
    SGL_ASSIGN_OR_RETURN(ExprPtr base, CompileExpr(*e.kids[0], ctx));
    if (!base->type.is_ref()) {
      return Status::SemanticError("'." + e.name +
                                   "' requires a ref<> expression" +
                                   At(e.pos));
    }
    ClassId target = base->type.target;
    if (target == kInvalidClass) {
      return Status::SemanticError("cannot access fields of 'null'" +
                                   At(e.pos));
    }
    const ClassDef& tdef = catalog_->Get(target);
    FieldIdx sf = tdef.FindState(e.name);
    if (sf == kInvalidField) {
      if (tdef.FindEffect(e.name) != kInvalidField) {
        return Status::SemanticError(
            "effect '" + tdef.name() + "." + e.name +
            "' is write-only; it cannot be read" + At(e.pos));
      }
      return Status::SemanticError("class '" + tdef.name() +
                                   "' has no state field '" + e.name + "'" +
                                   At(e.pos));
    }
    // Direct iteration-variable access compiles to a side-1 column read;
    // anything else is a gather through the directory.
    if (base->kind == ExprKind::kRowId) {
      return StateRead(base->side, target, sf, tdef.state_field(sf).type);
    }
    auto out = std::make_unique<Expr>();
    out->kind = ExprKind::kRefState;
    out->type = tdef.state_field(sf).type;
    out->cls = target;
    out->field = sf;
    out->kids.push_back(std::move(base));
    return out;
  }

  StatusOr<ExprPtr> CompileUnary(const AstExpr& e, Ctx& ctx) {
    SGL_ASSIGN_OR_RETURN(ExprPtr kid, CompileExpr(*e.kids[0], ctx));
    if (e.op == "-") {
      if (!kid->type.is_number()) {
        return Status::SemanticError("'-' requires a number" + At(e.pos));
      }
      auto out = std::make_unique<Expr>();
      out->kind = ExprKind::kUnaryMinus;
      out->type = SglType::Number();
      out->kids.push_back(std::move(kid));
      return out;
    }
    if (!kid->type.is_bool()) {
      return Status::SemanticError("'!' requires a bool" + At(e.pos));
    }
    return NotB(std::move(kid));
  }

  StatusOr<ExprPtr> CompileBinary(const AstExpr& e, Ctx& ctx) {
    SGL_ASSIGN_OR_RETURN(ExprPtr a, CompileExpr(*e.kids[0], ctx));
    SGL_ASSIGN_OR_RETURN(ExprPtr b, CompileExpr(*e.kids[1], ctx));
    const std::string& op = e.op;
    auto need_nums = [&]() -> Status {
      if (!a->type.is_number() || !b->type.is_number()) {
        return Status::SemanticError("'" + op + "' requires numbers" +
                                     At(e.pos));
      }
      return Status::OK();
    };
    if (op == "+" || op == "-" || op == "*" || op == "/" || op == "%") {
      SGL_RETURN_IF_ERROR(need_nums());
      ArithOp ao = op == "+"   ? ArithOp::kAdd
                   : op == "-" ? ArithOp::kSub
                   : op == "*" ? ArithOp::kMul
                   : op == "/" ? ArithOp::kDiv
                               : ArithOp::kMod;
      return Arith(ao, std::move(a), std::move(b));
    }
    if (op == "&&" || op == "||") {
      if (!a->type.is_bool() || !b->type.is_bool()) {
        return Status::SemanticError("'" + op + "' requires bools" +
                                     At(e.pos));
      }
      return op == "&&" ? AndB(std::move(a), std::move(b))
                        : OrB(std::move(a), std::move(b));
    }
    CmpOp co = op == "<"    ? CmpOp::kLt
               : op == "<=" ? CmpOp::kLe
               : op == ">"  ? CmpOp::kGt
               : op == ">=" ? CmpOp::kGe
               : op == "==" ? CmpOp::kEq
                            : CmpOp::kNe;
    if (a->type.is_number() && b->type.is_number()) {
      return CmpNum(co, std::move(a), std::move(b));
    }
    if (a->type.is_ref() && b->type.is_ref()) {
      if (co != CmpOp::kEq && co != CmpOp::kNe) {
        return Status::SemanticError("refs support only == and !=" +
                                     At(e.pos));
      }
      auto out = std::make_unique<Expr>();
      out->kind = ExprKind::kCmpRef;
      out->type = SglType::Bool();
      out->cmp = co;
      out->kids.push_back(std::move(a));
      out->kids.push_back(std::move(b));
      return out;
    }
    if (a->type.is_bool() && b->type.is_bool() &&
        (co == CmpOp::kEq || co == CmpOp::kNe)) {
      auto out = std::make_unique<Expr>();
      out->kind = ExprKind::kCmpBool;
      out->type = SglType::Bool();
      out->cmp = co;
      out->kids.push_back(std::move(a));
      out->kids.push_back(std::move(b));
      return out;
    }
    return Status::SemanticError("type mismatch for '" + op + "'" + At(e.pos));
  }

  StatusOr<ExprPtr> CompileCall(const AstExpr& e, Ctx& ctx) {
    const std::string& name = e.name;
    auto arity = [&](size_t n) -> Status {
      if (e.kids.size() != n) {
        return Status::SemanticError(name + "() takes " + std::to_string(n) +
                                     " argument(s)" + At(e.pos));
      }
      return Status::OK();
    };
    auto num_arg = [&](size_t i) -> StatusOr<ExprPtr> {
      SGL_ASSIGN_OR_RETURN(ExprPtr a, CompileExpr(*e.kids[i], ctx));
      if (!a->type.is_number()) {
        return Status::SemanticError(name + "() argument " +
                                     std::to_string(i + 1) +
                                     " must be a number" + At(e.pos));
      }
      return a;
    };

    if (name == "abs" || name == "sqrt" || name == "floor" || name == "ceil") {
      SGL_RETURN_IF_ERROR(arity(1));
      SGL_ASSIGN_OR_RETURN(ExprPtr a, num_arg(0));
      Call1Op op = name == "abs"     ? Call1Op::kAbs
                   : name == "sqrt"  ? Call1Op::kSqrt
                   : name == "floor" ? Call1Op::kFloor
                                     : Call1Op::kCeil;
      return Call1(op, std::move(a));
    }
    if (name == "min" || name == "max" || name == "pow") {
      SGL_RETURN_IF_ERROR(arity(2));
      SGL_ASSIGN_OR_RETURN(ExprPtr a, num_arg(0));
      SGL_ASSIGN_OR_RETURN(ExprPtr b, num_arg(1));
      ArithOp op = name == "min"   ? ArithOp::kMin
                   : name == "max" ? ArithOp::kMax
                                   : ArithOp::kPow;
      return Arith(op, std::move(a), std::move(b));
    }
    if (name == "clamp") {
      SGL_RETURN_IF_ERROR(arity(3));
      SGL_ASSIGN_OR_RETURN(ExprPtr v, num_arg(0));
      SGL_ASSIGN_OR_RETURN(ExprPtr lo, num_arg(1));
      SGL_ASSIGN_OR_RETURN(ExprPtr hi, num_arg(2));
      auto out = std::make_unique<Expr>();
      out->kind = ExprKind::kClamp;
      out->type = SglType::Number();
      out->kids.push_back(std::move(v));
      out->kids.push_back(std::move(lo));
      out->kids.push_back(std::move(hi));
      return out;
    }
    if (name == "dist") {
      // dist(x1,y1,x2,y2) = sqrt((x1-x2)^2 + (y1-y2)^2), desugared.
      SGL_RETURN_IF_ERROR(arity(4));
      SGL_ASSIGN_OR_RETURN(ExprPtr x1, num_arg(0));
      SGL_ASSIGN_OR_RETURN(ExprPtr y1, num_arg(1));
      SGL_ASSIGN_OR_RETURN(ExprPtr x2, num_arg(2));
      SGL_ASSIGN_OR_RETURN(ExprPtr y2, num_arg(3));
      ExprPtr dx = Arith(ArithOp::kSub, std::move(x1), std::move(x2));
      ExprPtr dy = Arith(ArithOp::kSub, std::move(y1), std::move(y2));
      ExprPtr dx_copy = dx->Clone();
      ExprPtr dy_copy = dy->Clone();
      ExprPtr dx2 = Arith(ArithOp::kMul, std::move(dx_copy), std::move(dx));
      ExprPtr dy2 = Arith(ArithOp::kMul, std::move(dy_copy), std::move(dy));
      return Call1(Call1Op::kSqrt,
                   Arith(ArithOp::kAdd, std::move(dx2), std::move(dy2)));
    }
    if (name == "if") {
      SGL_RETURN_IF_ERROR(arity(3));
      SGL_ASSIGN_OR_RETURN(ExprPtr c, CompileExpr(*e.kids[0], ctx));
      if (!c->type.is_bool()) {
        return Status::SemanticError("if() condition must be bool" +
                                     At(e.pos));
      }
      SGL_ASSIGN_OR_RETURN(ExprPtr t, CompileExpr(*e.kids[1], ctx));
      SGL_ASSIGN_OR_RETURN(ExprPtr f, CompileExpr(*e.kids[2], ctx));
      if (!t->type.Same(f->type)) {
        // Allow null to adopt the other branch's ref type.
        if (t->type.is_ref() && f->kind == ExprKind::kNullRef) {
          f->type = t->type;
        } else if (f->type.is_ref() && t->kind == ExprKind::kNullRef) {
          t->type = f->type;
        } else {
          return Status::SemanticError("if() branches have different types" +
                                       At(e.pos));
        }
      }
      return IfExpr(std::move(c), std::move(t), std::move(f));
    }
    if (name == "contains") {
      SGL_RETURN_IF_ERROR(arity(2));
      SGL_ASSIGN_OR_RETURN(ExprPtr s, CompileExpr(*e.kids[0], ctx));
      SGL_ASSIGN_OR_RETURN(ExprPtr r, CompileExpr(*e.kids[1], ctx));
      if (!s->type.is_set() || !r->type.is_ref()) {
        return Status::SemanticError(
            "contains() takes a set<> and a ref<>" + At(e.pos));
      }
      auto out = std::make_unique<Expr>();
      out->kind = ExprKind::kSetContains;
      out->type = SglType::Bool();
      out->kids.push_back(std::move(s));
      out->kids.push_back(std::move(r));
      return out;
    }
    if (name == "size") {
      SGL_RETURN_IF_ERROR(arity(1));
      SGL_ASSIGN_OR_RETURN(ExprPtr s, CompileExpr(*e.kids[0], ctx));
      if (!s->type.is_set()) {
        return Status::SemanticError("size() takes a set<>" + At(e.pos));
      }
      auto out = std::make_unique<Expr>();
      out->kind = ExprKind::kSetSize;
      out->type = SglType::Number();
      out->kids.push_back(std::move(s));
      return out;
    }
    if (name == "assigned") {
      if (!ctx.in_update_rule) {
        return Status::SemanticError(
            "assigned() is only available in update rules" + At(e.pos));
      }
      SGL_RETURN_IF_ERROR(arity(1));
      if (e.kids[0]->kind != AstExprKind::kIdent) {
        return Status::SemanticError(
            "assigned() takes an effect field name" + At(e.pos));
      }
      FieldIdx ef = ctx.def->FindEffect(e.kids[0]->name);
      if (ef == kInvalidField) {
        return Status::SemanticError("unknown effect '" + e.kids[0]->name +
                                     "'" + At(e.pos));
      }
      return AssignedRead(ctx.cls, ef);
    }
    return Status::SemanticError("unknown function '" + name + "'" +
                                 At(e.pos));
  }

  // --- Statement compilation ---------------------------------------------

  ExprPtr CloneGuard(const Expr* guard) {
    return guard == nullptr ? nullptr : guard->Clone();
  }
  ExprPtr AndGuards(const Expr* guard, ExprPtr extra) {
    if (guard == nullptr) return extra;
    return AndB(guard->Clone(), std::move(extra));
  }

  EffectsOp* TrailingEffectsOp(std::vector<std::unique_ptr<PlanOp>>* ops) {
    if (!ops->empty() && ops->back()->kind == PlanOp::Kind::kEffects) {
      return static_cast<EffectsOp*>(ops->back().get());
    }
    auto op = std::make_unique<EffectsOp>();
    EffectsOp* raw = op.get();
    ops->push_back(std::move(op));
    return raw;
  }

  Status CompileBlock(const std::vector<AstStmtPtr>& stmts, const Expr* guard,
                      Ctx& ctx, std::vector<std::unique_ptr<PlanOp>>* ops) {
    size_t scope_mark = ctx.scope.size();
    for (const auto& s : stmts) {
      SGL_RETURN_IF_ERROR(CompileStmt(*s, guard, ctx, ops));
    }
    ctx.scope.resize(scope_mark);
    return Status::OK();
  }

  Status CompileStmt(const AstStmt& s, const Expr* guard, Ctx& ctx,
                     std::vector<std::unique_ptr<PlanOp>>* ops) {
    switch (s.kind) {
      case AstStmtKind::kLet:
        return CompileLet(s, ctx, ops);
      case AstStmtKind::kAssign:
        return CompileAssign(s, guard, ctx, ops);
      case AstStmtKind::kIf:
        return CompileIf(s, guard, ctx, ops);
      case AstStmtKind::kAccum:
        return CompileAccum(s, guard, ctx, ops);
      case AstStmtKind::kWait:
        return Status::SemanticError(
            "waitNextTick is only allowed at the top level of a script body" +
            At(s.pos));
      case AstStmtKind::kAtomic:
        return CompileAtomic(s, guard, ctx, ops);
      case AstStmtKind::kRestart:
        return CompileRestart(s, guard, ctx, ops);
    }
    return Status::Internal("unreachable stmt kind");
  }

  Status CompileLet(const AstStmt& s, Ctx& ctx,
                    std::vector<std::unique_ptr<PlanOp>>* ops) {
    if (ctx.in_accum1) {
      return Status::SemanticError(
          "let is not allowed inside the first block of an accum loop" +
          At(s.pos));
    }
    SGL_ASSIGN_OR_RETURN(SglType type, ResolveType(s.type, s.pos));
    if (type.is_set()) {
      return Status::SemanticError("set-typed locals are not supported" +
                                   At(s.pos));
    }
    if (type.is_ref()) {
      type.target = catalog_->Find(type.target_name);
      if (type.target == kInvalidClass) {
        return Status::NotFound("class '" + type.target_name + "' not found" +
                                At(s.pos));
      }
    }
    SGL_ASSIGN_OR_RETURN(ExprPtr value, CompileExpr(*s.expr, ctx));
    if (!value->type.Same(type) &&
        !(type.is_ref() && value->kind == ExprKind::kNullRef)) {
      return Status::SemanticError("let initializer type mismatch for '" +
                                   s.name + "'" + At(s.pos));
    }
    int slot = static_cast<int>(ctx.local_types->size());
    ctx.local_types->push_back(type);
    auto op = std::make_unique<ComputeLocalsOp>();
    LocalDef def;
    def.slot = slot;
    def.type = type;
    def.value = std::move(value);
    op->defs.push_back(std::move(def));
    ops->push_back(std::move(op));
    Binding b;
    b.k = Binding::K::kLocal;
    b.slot = slot;
    b.type = type;
    ctx.scope.emplace_back(s.name, b);
    return Status::OK();
  }

  // Resolves an assignment target to an EffectWrite skeleton (guard/value
  // left empty). `is_accum_assign` is set when the target is the in-scope
  // accum variable.
  Status ResolveEffectTarget(const AstStmt& s, Ctx& ctx, EffectWrite* w,
                             bool* is_accum_assign) {
    *is_accum_assign = false;
    if (s.target_base == nullptr) {
      // Bare identifier: accum variable or an effect of self.
      const Binding* b = LookupBinding(ctx, s.name);
      if (b != nullptr && b->k == Binding::K::kAccum) {
        if (!b->writable) {
          return Status::SemanticError(
              "accum variable '" + s.name +
              "' is read-only in the second block" + At(s.pos));
        }
        *is_accum_assign = true;
        return Status::OK();
      }
      if (ctx.def->FindState(s.name) != kInvalidField) {
        return Status::SemanticError(
            "state field '" + s.name +
            "' is read-only during a tick (use an update rule or an atomic "
            "block)" +
            At(s.pos));
      }
      FieldIdx ef = ctx.def->FindEffect(s.name);
      if (ef == kInvalidField) {
        return Status::SemanticError("unknown effect '" + s.name + "'" +
                                     At(s.pos));
      }
      w->target_kind = TargetKind::kSelf;
      w->target_cls = ctx.cls;
      w->field = ef;
      return Status::OK();
    }
    // Object-qualified: iteration variable or a ref expression.
    SGL_ASSIGN_OR_RETURN(ExprPtr base, CompileExpr(*s.target_base, ctx));
    if (!base->type.is_ref()) {
      return Status::SemanticError("assignment target must be a ref<>" +
                                   At(s.pos));
    }
    ClassId target = base->type.target;
    const ClassDef& tdef = catalog_->Get(target);
    FieldIdx ef = tdef.FindEffect(s.name);
    if (ef == kInvalidField) {
      if (tdef.FindState(s.name) != kInvalidField) {
        return Status::SemanticError("state field '" + tdef.name() + "." +
                                     s.name + "' is read-only during a tick" +
                                     At(s.pos));
      }
      return Status::SemanticError("class '" + tdef.name() +
                                   "' has no effect '" + s.name + "'" +
                                   At(s.pos));
    }
    w->target_cls = target;
    w->field = ef;
    if (base->kind == ExprKind::kRowId && base->side == 1) {
      w->target_kind = TargetKind::kIter;
    } else if (base->kind == ExprKind::kRowId && base->side == 0) {
      w->target_kind = TargetKind::kSelf;
    } else {
      w->target_kind = TargetKind::kRef;
      w->target_ref = std::move(base);
    }
    return Status::OK();
  }

  Status CompileAssign(const AstStmt& s, const Expr* guard, Ctx& ctx,
                       std::vector<std::unique_ptr<PlanOp>>* ops) {
    if (s.assign_op != "<-") {
      return Status::SemanticError(
          "'" + s.assign_op + "' is only allowed inside atomic blocks" +
          At(s.pos));
    }
    EffectWrite w;
    bool is_accum = false;
    SGL_RETURN_IF_ERROR(ResolveEffectTarget(s, ctx, &w, &is_accum));
    SGL_ASSIGN_OR_RETURN(ExprPtr value, CompileExpr(*s.expr, ctx));

    if (is_accum) {
      SGL_CHECK(ctx.cur_accum != nullptr);
      const Binding* b = LookupBinding(ctx, s.name);
      if (!value->type.Same(b->type) &&
          !(b->type.is_ref() && value->kind == ExprKind::kNullRef)) {
        return Status::SemanticError("accum assignment type mismatch" +
                                     At(s.pos));
      }
      AccumAssign a;
      a.guard = CloneGuard(guard);
      a.value = std::move(value);
      ctx.cur_accum->accum_assigns.push_back(std::move(a));
      return Status::OK();
    }

    if (w.target_kind == TargetKind::kIter && !ctx.in_accum1) {
      return Status::SemanticError(
          "iteration variable is only in scope inside the accum loop" +
          At(s.pos));
    }
    const FieldDef& f = catalog_->Get(w.target_cls).effect_field(w.field);
    if (f.type.is_set()) {
      if (!value->type.is_ref()) {
        return Status::SemanticError(
            "set effects take a ref<> to insert; got " +
            value->type.ToString() + At(s.pos));
      }
      w.set_insert = true;
    } else if (!value->type.Same(f.type) &&
               !(f.type.is_ref() && value->kind == ExprKind::kNullRef)) {
      return Status::SemanticError("effect '" + f.name + "' has type " +
                                   f.type.ToString() + At(s.pos));
    }
    w.guard = CloneGuard(guard);
    w.value = std::move(value);
    w.assign_id = next_assign_id_++;
    if (ctx.in_accum1) {
      ctx.cur_accum->pair_writes.push_back(std::move(w));
    } else {
      TrailingEffectsOp(ops)->writes.push_back(std::move(w));
    }
    return Status::OK();
  }

  Status CompileIf(const AstStmt& s, const Expr* guard, Ctx& ctx,
                   std::vector<std::unique_ptr<PlanOp>>* ops) {
    SGL_ASSIGN_OR_RETURN(ExprPtr cond, CompileExpr(*s.expr, ctx));
    if (!cond->type.is_bool()) {
      return Status::SemanticError("if condition must be bool" + At(s.pos));
    }
    ExprPtr then_guard = AndGuards(guard, cond->Clone());
    SGL_RETURN_IF_ERROR(CompileBlock(s.block1, then_guard.get(), ctx, ops));
    if (!s.block2.empty()) {
      ExprPtr else_guard = AndGuards(guard, NotB(std::move(cond)));
      SGL_RETURN_IF_ERROR(CompileBlock(s.block2, else_guard.get(), ctx, ops));
    }
    return Status::OK();
  }

  Status CompileRestart(const AstStmt& s, const Expr* guard, Ctx& ctx,
                        std::vector<std::unique_ptr<PlanOp>>* ops) {
    FieldIdx pc_effect = kInvalidField;
    if (s.name.empty()) {
      if (ctx.in_handler) {
        return Status::SemanticError(
            "restart in a handler must name a script" + At(s.pos));
      }
      pc_effect = ctx.self_pc_effect;
      if (pc_effect == kInvalidField) {
        return Status::SemanticError(
            "restart requires a multi-tick script (no waitNextTick here)" +
            At(s.pos));
      }
    } else {
      FieldIdx ef = ctx.def->FindEffect("__pcn_" + s.name);
      if (ef == kInvalidField) {
        return Status::SemanticError(
            "no multi-tick script named '" + s.name + "' for class '" +
            ctx.def->name() + "'" + At(s.pos));
      }
      pc_effect = ef;
    }
    EffectWrite w;
    w.target_kind = TargetKind::kSelf;
    w.target_cls = ctx.cls;
    w.field = pc_effect;
    w.guard = CloneGuard(guard);
    w.value = NumLit(0);
    w.assign_id = next_assign_id_++;
    TrailingEffectsOp(ops)->writes.push_back(std::move(w));
    return Status::OK();
  }

  // --- accum loops ---------------------------------------------------------

  static void FlattenConjuncts(ExprPtr e, std::vector<ExprPtr>* out) {
    if (e == nullptr) return;
    if (e->kind == ExprKind::kAndB) {
      FlattenConjuncts(std::move(e->kids[0]), out);
      FlattenConjuncts(std::move(e->kids[1]), out);
      return;
    }
    out->push_back(std::move(e));
  }

  static ExprPtr AndChain(std::vector<ExprPtr> conjuncts) {
    ExprPtr out;
    for (auto& c : conjuncts) {
      out = out == nullptr ? std::move(c) : AndB(std::move(out), std::move(c));
    }
    return out;
  }

  // Tries to interpret `c` as a single-sided range bound on an inner numeric
  // field: it.f OP outer-expr (or reversed). On success, merges the bound
  // into `op`'s range_dims and returns true.
  static bool TryExtractRange(const Expr& c, AccumOp* op) {
    if (c.kind != ExprKind::kCmpNum) return false;
    if (c.cmp != CmpOp::kLe && c.cmp != CmpOp::kGe && c.cmp != CmpOp::kEq) {
      return false;
    }
    const Expr* inner_side = nullptr;
    const Expr* outer_side = nullptr;
    bool inner_on_left = false;
    const Expr* a = c.kids[0].get();
    const Expr* b = c.kids[1].get();
    auto is_inner_field = [](const Expr* e) {
      return e->kind == ExprKind::kStateRead && e->side == 1 &&
             e->type.is_number();
    };
    if (is_inner_field(a) && !b->UsesInner()) {
      inner_side = a;
      outer_side = b;
      inner_on_left = true;
    } else if (is_inner_field(b) && !a->UsesInner()) {
      inner_side = b;
      outer_side = a;
    } else {
      return false;
    }
    // Normalize to it.f <= hi or it.f >= lo.
    bool is_upper;
    if (c.cmp == CmpOp::kEq) {
      // it.f == e: both bounds.
      RangeDim* dim = nullptr;
      for (RangeDim& d : op->range_dims) {
        if (d.inner_field == inner_side->field) dim = &d;
      }
      if (dim == nullptr) {
        op->range_dims.push_back(RangeDim{inner_side->field, nullptr, nullptr});
        dim = &op->range_dims.back();
      }
      if (dim->lo != nullptr || dim->hi != nullptr) return false;
      dim->lo = outer_side->Clone();
      dim->hi = outer_side->Clone();
      return true;
    }
    is_upper = inner_on_left ? (c.cmp == CmpOp::kLe) : (c.cmp == CmpOp::kGe);
    RangeDim* dim = nullptr;
    for (RangeDim& d : op->range_dims) {
      if (d.inner_field == inner_side->field) dim = &d;
    }
    if (dim == nullptr) {
      op->range_dims.push_back(RangeDim{inner_side->field, nullptr, nullptr});
      dim = &op->range_dims.back();
    }
    if (is_upper) {
      if (dim->hi != nullptr) return false;  // duplicate bound -> residual
      dim->hi = outer_side->Clone();
    } else {
      if (dim->lo != nullptr) return false;
      dim->lo = outer_side->Clone();
    }
    return true;
  }

  // it != self (either order), where both sides iterate the same class.
  static bool IsExcludeSelf(const Expr& c) {
    if (c.kind != ExprKind::kCmpRef || c.cmp != CmpOp::kNe) return false;
    const Expr* a = c.kids[0].get();
    const Expr* b = c.kids[1].get();
    auto is_row = [](const Expr* e, uint8_t side) {
      return e->kind == ExprKind::kRowId && e->side == side;
    };
    return (is_row(a, 1) && is_row(b, 0)) || (is_row(a, 0) && is_row(b, 1));
  }

  // it == outer-ref-expr: an id-equality (directory lookup) join key.
  static bool TryExtractIdHash(const Expr& c, AccumOp* op) {
    if (c.kind != ExprKind::kCmpRef || c.cmp != CmpOp::kEq) return false;
    const Expr* a = c.kids[0].get();
    const Expr* b = c.kids[1].get();
    const Expr* inner = nullptr;
    const Expr* outer = nullptr;
    if (a->kind == ExprKind::kRowId && a->side == 1 && !b->UsesInner()) {
      inner = a;
      outer = b;
    } else if (b->kind == ExprKind::kRowId && b->side == 1 &&
               !a->UsesInner()) {
      inner = b;
      outer = a;
    } else {
      return false;
    }
    (void)inner;
    op->hash_dims.push_back(HashDim{kInvalidField, outer->Clone()});
    return true;
  }

  Status CompileAccum(const AstStmt& s, const Expr* guard, Ctx& ctx,
                      std::vector<std::unique_ptr<PlanOp>>* ops) {
    if (ctx.in_accum1) {
      return Status::SemanticError("accum loops cannot be nested" + At(s.pos));
    }
    SGL_ASSIGN_OR_RETURN(SglType accum_type,
                         ResolveType(s.accum_type, s.pos));
    auto comb = CombinatorFromName(s.comb);
    if (!comb.has_value()) {
      return Status::SemanticError("unknown combinator '" + s.comb + "'" +
                                   At(s.pos));
    }
    if (*comb == Combinator::kFirst || *comb == Combinator::kLast) {
      return Status::SemanticError(
          "accum loops are unordered; first/last are not valid accum "
          "combinators" +
          At(s.pos));
    }
    if (!CombinatorValidFor(*comb, accum_type)) {
      return Status::SemanticError(
          "combinator '" + s.comb + "' is invalid for accum type " +
          accum_type.ToString() + At(s.pos));
    }
    if (accum_type.is_set()) {
      return Status::SemanticError("set-typed accum variables are not "
                                   "supported; accumulate refs or numbers" +
                                   At(s.pos));
    }
    if (accum_type.is_ref()) {
      accum_type.target = catalog_->Find(accum_type.target_name);
      if (accum_type.target == kInvalidClass) {
        return Status::NotFound("class '" + accum_type.target_name +
                                "' not found" + At(s.pos));
      }
    }

    auto op = std::make_unique<AccumOp>();
    AccumOp* accum = op.get();
    accum->outer_guard = CloneGuard(guard);
    accum->accum_type = accum_type;
    accum->accum_comb = *comb;
    accum->site_id = next_site_++;

    // Iteration domain: class extent, or a set<> state field of self.
    ClassId iter_cls = catalog_->Find(s.iter_class);
    if (iter_cls == kInvalidClass) {
      return Status::NotFound("class '" + s.iter_class +
                              "' (iteration variable type) not found" +
                              At(s.pos));
    }
    ClassId from_cls = catalog_->Find(s.from_name);
    if (from_cls != kInvalidClass) {
      if (from_cls != iter_cls) {
        return Status::SemanticError(
            "iteration variable type '" + s.iter_class +
            "' does not match extent '" + s.from_name + "'" + At(s.pos));
      }
      accum->inner_cls = from_cls;
    } else {
      FieldIdx sf = ctx.def->FindState(s.from_name);
      if (sf == kInvalidField ||
          !ctx.def->state_field(sf).type.is_set()) {
        return Status::SemanticError(
            "'from " + s.from_name +
            "' must name a class or a set<> state field" + At(s.pos));
      }
      if (ctx.def->state_field(sf).type.target != iter_cls) {
        return Status::SemanticError(
            "iteration variable type does not match the set's element "
            "class" +
            At(s.pos));
      }
      accum->inner_cls = iter_cls;
      accum->inner_set_field = sf;
    }

    // Allocate the accum result slot.
    int slot = static_cast<int>(ctx.local_types->size());
    ctx.local_types->push_back(accum_type);
    accum->accum_slot = slot;

    // BLOCK1: pair context; accum var write-only, iteration var in scope.
    size_t scope_mark = ctx.scope.size();
    {
      Binding iter;
      iter.k = Binding::K::kIter;
      iter.iter_cls = accum->inner_cls;
      iter.iter_cls_name = s.iter_class;
      ctx.scope.emplace_back(s.iter_name, iter);
      Binding av;
      av.k = Binding::K::kAccum;
      av.slot = slot;
      av.type = accum_type;
      av.readable = false;
      av.writable = true;
      ctx.scope.emplace_back(s.name, av);
    }
    ctx.in_accum1 = true;
    ctx.cur_accum = accum;
    std::vector<std::unique_ptr<PlanOp>> dummy_ops;
    Status block1 = CompileBlock(s.block1, /*guard=*/nullptr, ctx, &dummy_ops);
    ctx.in_accum1 = false;
    ctx.cur_accum = nullptr;
    ctx.scope.resize(scope_mark);
    SGL_RETURN_IF_ERROR(block1);
    if (!dummy_ops.empty()) {
      return Status::SemanticError(
          "only effect and accum assignments (under conditionals) are "
          "allowed in the first block of an accum loop" +
          At(s.pos));
    }

    ExtractJoinPredicates(accum);

    ops->push_back(std::move(op));

    // BLOCK2: accum var becomes readable.
    {
      Binding av;
      av.k = Binding::K::kAccum;
      av.slot = slot;
      av.type = accum_type;
      av.readable = true;
      av.writable = false;
      ctx.scope.emplace_back(s.name, av);
    }
    SGL_RETURN_IF_ERROR(CompileBlock(s.block2, guard, ctx, ops));
    ctx.scope.resize(scope_mark);
    return Status::OK();
  }

  // Pulls conjuncts common to every BLOCK1 assignment's guard out into the
  // join predicate (range dims / id-hash dims / exclude-self / residual /
  // hoisted outer guard), leaving only per-assignment residual guards.
  void ExtractJoinPredicates(AccumOp* accum) {
    // Gather flattened guard conjunct lists for every assignment.
    std::vector<std::vector<ExprPtr>> lists;
    bool any_unguarded = false;
    auto collect = [&](ExprPtr guard) {
      std::vector<ExprPtr> list;
      if (guard == nullptr) {
        any_unguarded = true;
      } else {
        FlattenConjuncts(std::move(guard), &list);
      }
      lists.push_back(std::move(list));
    };
    for (auto& a : accum->accum_assigns) collect(std::move(a.guard));
    for (auto& w : accum->pair_writes) collect(std::move(w.guard));
    if (lists.empty()) return;

    std::vector<ExprPtr> common;
    if (!any_unguarded) {
      // Conjuncts of the first list present in all others.
      for (ExprPtr& cand : lists[0]) {
        bool everywhere = true;
        for (size_t i = 1; i < lists.size(); ++i) {
          bool found = false;
          for (const ExprPtr& c : lists[i]) {
            if (c != nullptr && c->Equals(*cand)) {
              found = true;
              break;
            }
          }
          if (!found) {
            everywhere = false;
            break;
          }
        }
        if (everywhere) {
          // Null out one matching conjunct in every other list.
          for (size_t i = 1; i < lists.size(); ++i) {
            for (ExprPtr& c : lists[i]) {
              if (c != nullptr && c->Equals(*cand)) {
                c.reset();
                break;
              }
            }
          }
          common.push_back(std::move(cand));
        }
      }
    }

    // Classify common conjuncts.
    std::vector<ExprPtr> residual;
    std::vector<ExprPtr> hoisted;  // outer-only: AND into outer_guard
    for (ExprPtr& c : common) {
      if (c == nullptr) continue;
      if (!c->UsesInner()) {
        hoisted.push_back(std::move(c));
        continue;
      }
      if (IsExcludeSelf(*c)) {
        accum->exclude_self = true;
        continue;
      }
      if (TryExtractRange(*c, accum)) continue;
      if (TryExtractIdHash(*c, accum)) continue;
      residual.push_back(std::move(c));
    }
    accum->residual = AndChain(std::move(residual));
    if (!hoisted.empty()) {
      ExprPtr h = AndChain(std::move(hoisted));
      accum->outer_guard = accum->outer_guard == nullptr
                               ? std::move(h)
                               : AndB(std::move(accum->outer_guard),
                                      std::move(h));
    }

    // Rebuild per-assignment guards from the surviving conjuncts.
    size_t li = 0;
    auto rebuild = [&](ExprPtr* guard) {
      std::vector<ExprPtr> kept;
      for (ExprPtr& c : lists[li]) {
        if (c != nullptr) kept.push_back(std::move(c));
      }
      *guard = AndChain(std::move(kept));
      ++li;
    };
    for (auto& a : accum->accum_assigns) rebuild(&a.guard);
    for (auto& w : accum->pair_writes) rebuild(&w.guard);
  }

  // --- atomic blocks -------------------------------------------------------

  Status CompileAtomic(const AstStmt& s, const Expr* guard, Ctx& ctx,
                       std::vector<std::unique_ptr<PlanOp>>* ops) {
    if (ctx.in_accum1) {
      return Status::SemanticError(
          "atomic blocks are not allowed inside accum loops" + At(s.pos));
    }
    auto op = std::make_unique<TxnEmitOp>();
    op->guard = CloneGuard(guard);
    op->label = s.name;
    op->site_id = next_site_++;
    op->status_field = ctx.def->FindState(s.name + "_status");
    SGL_CHECK(op->status_field != kInvalidField);
    MarkTxnOwned(ctx.cls, op->status_field);

    for (const AstExprPtr& c : s.constraints) {
      ctx.in_constraint = true;
      auto compiled = CompileExpr(*c, ctx);
      ctx.in_constraint = false;
      if (!compiled.ok()) return compiled.status();
      if (!(*compiled)->type.is_bool()) {
        return Status::SemanticError("require() expects a bool" + At(c->pos));
      }
      op->constraints.push_back(std::move(*compiled));
    }

    for (const AstStmtPtr& w : s.block1) {
      if (w->kind != AstStmtKind::kAssign) {
        return Status::SemanticError(
            "atomic blocks may contain only state writes" + At(w->pos));
      }
      TxnWrite tw;
      // Resolve the target STATE field (unlike effects elsewhere).
      ClassId target_cls = ctx.cls;
      if (w->target_base != nullptr) {
        SGL_ASSIGN_OR_RETURN(ExprPtr base, CompileExpr(*w->target_base, ctx));
        if (!base->type.is_ref()) {
          return Status::SemanticError("atomic write target must be a ref<>" +
                                       At(w->pos));
        }
        target_cls = base->type.target;
        if (base->kind == ExprKind::kRowId && base->side == 0) {
          tw.target_kind = TargetKind::kSelf;
        } else {
          tw.target_kind = TargetKind::kRef;
          tw.target_ref = std::move(base);
        }
      } else {
        tw.target_kind = TargetKind::kSelf;
      }
      const ClassDef& tdef = catalog_->Get(target_cls);
      FieldIdx sf = tdef.FindState(w->name);
      if (sf == kInvalidField) {
        return Status::SemanticError(
            "atomic blocks write state fields; '" + w->name +
            "' is not a state field of '" + tdef.name() + "'" + At(w->pos));
      }
      const FieldDef& fdef = tdef.state_field(sf);
      tw.target_cls = target_cls;
      tw.state_field = sf;
      SGL_ASSIGN_OR_RETURN(ExprPtr value, CompileExpr(*w->expr, ctx));
      if (w->assign_op == "<-") {
        if (fdef.type.is_number() && value->type.is_number()) {
          tw.op = TxnWriteOp::kAddDelta;
        } else if (fdef.type.is_ref() &&
                   (value->type.is_ref() ||
                    value->kind == ExprKind::kNullRef)) {
          tw.op = TxnWriteOp::kSetRef;
        } else {
          return Status::SemanticError(
              "'<-' in atomic blocks adds a numeric delta or overwrites a "
              "ref<> state field" +
              At(w->pos));
        }
      } else {
        if (!fdef.type.is_set() || !value->type.is_ref()) {
          return Status::SemanticError(
              "'" + w->assign_op +
              "' in atomic blocks inserts/removes a ref<> on a set<> state "
              "field" +
              At(w->pos));
        }
        tw.op = w->assign_op == "<+" ? TxnWriteOp::kSetInsert
                                     : TxnWriteOp::kSetRemove;
      }
      tw.value = std::move(value);
      MarkTxnOwned(target_cls, sf);
      op->writes.push_back(std::move(tw));
    }
    ops->push_back(std::move(op));
    return Status::OK();
  }

  void MarkTxnOwned(ClassId cls, FieldIdx field) {
    auto& owned = out_->txn_owned[static_cast<size_t>(cls)];
    for (FieldIdx f : owned) {
      if (f == field) return;
    }
    owned.push_back(field);
  }

  // --- Pass 4 drivers ------------------------------------------------------

  Status CompileScripts() {
    for (const AstScript& as : ast_->scripts) {
      CompiledScript cs;
      cs.name = as.name;
      cs.cls = catalog_->Find(as.cls);
      Ctx ctx;
      ctx.cls = cs.cls;
      ctx.def = &catalog_->Get(cs.cls);
      ctx.unit_name = as.name;
      ctx.local_types = &cs.local_types;

      // Split the body into phases at top-level waitNextTick (§3.2).
      std::vector<std::vector<const AstStmt*>> phases(1);
      for (const auto& stmt : as.body) {
        if (stmt->kind == AstStmtKind::kWait) {
          phases.emplace_back();
        } else {
          phases.back().push_back(stmt.get());
        }
      }
      const bool multi = phases.size() > 1;
      if (multi) {
        cs.pc_state = ctx.def->FindState("__pc_" + as.name);
        cs.pc_effect = ctx.def->FindEffect("__pcn_" + as.name);
        ctx.self_pc_effect = cs.pc_effect;
      }

      for (size_t k = 0; k < phases.size(); ++k) {
        std::vector<std::unique_ptr<PlanOp>> ops;
        int pc_write_id = -1;
        if (multi) {
          // Allocate the phase-advance write's id BEFORE the body so that a
          // restart inside the body (larger id) overrides it under kLast.
          pc_write_id = next_assign_id_++;
        }
        size_t scope_mark = ctx.scope.size();
        for (const AstStmt* stmt : phases[k]) {
          SGL_RETURN_IF_ERROR(CompileStmt(*stmt, /*guard=*/nullptr, ctx,
                                          &ops));
        }
        ctx.scope.resize(scope_mark);
        if (multi) {
          EffectWrite w;
          w.target_kind = TargetKind::kSelf;
          w.target_cls = cs.cls;
          w.field = cs.pc_effect;
          double next_pc =
              k + 1 < phases.size() ? static_cast<double>(k + 1) : 0.0;
          w.value = NumLit(next_pc);
          w.assign_id = pc_write_id;
          TrailingEffectsOp(&ops)->writes.push_back(std::move(w));
        }
        cs.phases.push_back(std::move(ops));
      }
      out_->scripts.push_back(std::move(cs));
    }
    // Auto update rules for PCs: pc = assigned(pcn) ? pcn : 0.
    for (const CompiledScript& cs : out_->scripts) {
      if (cs.pc_state == kInvalidField) continue;
      UpdateRule rule;
      rule.cls = cs.cls;
      rule.state_field = cs.pc_state;
      rule.value = IfExpr(AssignedRead(cs.cls, cs.pc_effect),
                          EffectRead(cs.cls, cs.pc_effect, SglType::Number()),
                          NumLit(0));
      out_->update_rules.push_back(std::move(rule));
    }
    return Status::OK();
  }

  Status CompileHandlers() {
    int anon = 0;
    for (const AstHandler& ah : ast_->handlers) {
      CompiledHandler ch;
      ch.name = ah.name.empty() ? "__when" + std::to_string(anon++) : ah.name;
      ch.cls = catalog_->Find(ah.cls);
      if (ch.cls == kInvalidClass) {
        return Status::NotFound("class '" + ah.cls + "' for handler not "
                                "declared" + At(ah.pos));
      }
      Ctx ctx;
      ctx.cls = ch.cls;
      ctx.def = &catalog_->Get(ch.cls);
      ctx.unit_name = ch.name;
      ctx.local_types = &ch.local_types;
      ctx.in_handler = true;
      SGL_ASSIGN_OR_RETURN(ch.cond, CompileExpr(*ah.cond, ctx));
      if (!ch.cond->type.is_bool()) {
        return Status::SemanticError("handler condition must be bool" +
                                     At(ah.pos));
      }
      SGL_RETURN_IF_ERROR(
          CompileBlock(ah.body, /*guard=*/nullptr, ctx, &ch.ops));
      out_->handlers.push_back(std::move(ch));
    }
    return Status::OK();
  }

  Status CompileUpdateRules() {
    for (const AstClass& ac : ast_->classes) {
      ClassId cls = catalog_->Find(ac.name);
      const ClassDef& def = catalog_->Get(cls);
      for (const AstUpdateRule& ar : ac.updates) {
        FieldIdx sf = def.FindState(ar.field);
        if (sf == kInvalidField) {
          return Status::SemanticError("update rule targets unknown state "
                                       "field '" + ar.field + "'" +
                                       At(ar.pos));
        }
        Ctx ctx;
        ctx.cls = cls;
        ctx.def = &def;
        ctx.unit_name = ac.name + ".update";
        static std::vector<SglType> no_locals;
        ctx.local_types = &no_locals;
        ctx.in_update_rule = true;
        SGL_ASSIGN_OR_RETURN(ExprPtr value, CompileExpr(*ar.value, ctx));
        if (!value->type.Same(def.state_field(sf).type) &&
            !(def.state_field(sf).type.is_ref() &&
              value->kind == ExprKind::kNullRef)) {
          return Status::SemanticError("update rule for '" + ar.field +
                                       "' has mismatched type" + At(ar.pos));
        }
        UpdateRule rule;
        rule.cls = cls;
        rule.state_field = sf;
        rule.value = std::move(value);
        out_->update_rules.push_back(std::move(rule));
      }
    }
    return Status::OK();
  }

  Status CheckOwnershipConflicts() {
    // A state field may be updated by at most one component (§2.2): the
    // transaction engine and the expression updater must not share fields.
    for (const UpdateRule& r : out_->update_rules) {
      for (FieldIdx f : out_->txn_owned[static_cast<size_t>(r.cls)]) {
        if (f == r.state_field) {
          const ClassDef& def = catalog_->Get(r.cls);
          return Status::SemanticError(
              "state field '" + def.name() + "." +
              def.state_field(f).name +
              "' is written by atomic blocks AND an update rule; state must "
              "be partitioned among update components");
        }
      }
    }
    return Status::OK();
  }

  // --- Pass 5: affinity ----------------------------------------------------

  void VisitExpr(const Expr& e, ClassId cls, std::set<FieldIdx>* fields) {
    if (e.kind == ExprKind::kStateRead && e.side == 0 && e.cls == cls &&
        e.type.is_number()) {
      fields->insert(e.field);
    }
    for (const auto& k : e.kids) VisitExpr(*k, cls, fields);
  }

  void TallyExpr(const Expr* e, ClassId cls, AffinityMatrix* m) {
    if (e == nullptr) return;
    std::set<FieldIdx> fields;
    VisitExpr(*e, cls, &fields);
    for (FieldIdx a : fields) {
      for (FieldIdx b : fields) {
        m->counts[static_cast<size_t>(a)][static_cast<size_t>(b)] += 1.0;
      }
    }
  }

  void TallyOps(const std::vector<std::unique_ptr<PlanOp>>& ops, ClassId cls,
                AffinityMatrix* m) {
    for (const auto& op : ops) {
      switch (op->kind) {
        case PlanOp::Kind::kComputeLocals: {
          auto* o = static_cast<const ComputeLocalsOp*>(op.get());
          for (const LocalDef& d : o->defs) TallyExpr(d.value.get(), cls, m);
          break;
        }
        case PlanOp::Kind::kEffects: {
          auto* o = static_cast<const EffectsOp*>(op.get());
          for (const EffectWrite& w : o->writes) {
            TallyExpr(w.guard.get(), cls, m);
            TallyExpr(w.value.get(), cls, m);
            TallyExpr(w.target_ref.get(), cls, m);
          }
          break;
        }
        case PlanOp::Kind::kAccum: {
          auto* o = static_cast<const AccumOp*>(op.get());
          TallyExpr(o->outer_guard.get(), cls, m);
          TallyExpr(o->residual.get(), cls, m);
          for (const RangeDim& d : o->range_dims) {
            TallyExpr(d.lo.get(), cls, m);
            TallyExpr(d.hi.get(), cls, m);
          }
          for (const HashDim& d : o->hash_dims) TallyExpr(d.key.get(), cls, m);
          for (const AccumAssign& a : o->accum_assigns) {
            TallyExpr(a.guard.get(), cls, m);
            TallyExpr(a.value.get(), cls, m);
          }
          for (const EffectWrite& w : o->pair_writes) {
            TallyExpr(w.guard.get(), cls, m);
            TallyExpr(w.value.get(), cls, m);
            TallyExpr(w.target_ref.get(), cls, m);
          }
          break;
        }
        case PlanOp::Kind::kTxnEmit: {
          auto* o = static_cast<const TxnEmitOp*>(op.get());
          TallyExpr(o->guard.get(), cls, m);
          for (const ExprPtr& c : o->constraints) TallyExpr(c.get(), cls, m);
          for (const TxnWrite& w : o->writes) {
            TallyExpr(w.value.get(), cls, m);
            TallyExpr(w.target_ref.get(), cls, m);
          }
          break;
        }
      }
    }
  }

  void ComputeAffinity() {
    out_->affinity.resize(static_cast<size_t>(catalog_->num_classes()));
    for (ClassId c = 0; c < catalog_->num_classes(); ++c) {
      size_t nfields = catalog_->Get(c).state_fields().size();
      out_->affinity[static_cast<size_t>(c)].counts.assign(
          nfields, std::vector<double>(nfields, 0.0));
    }
    for (const CompiledScript& cs : out_->scripts) {
      AffinityMatrix* m = &out_->affinity[static_cast<size_t>(cs.cls)];
      for (const auto& phase : cs.phases) TallyOps(phase, cs.cls, m);
    }
    for (const CompiledHandler& ch : out_->handlers) {
      AffinityMatrix* m = &out_->affinity[static_cast<size_t>(ch.cls)];
      TallyExpr(ch.cond.get(), ch.cls, m);
      TallyOps(ch.ops, ch.cls, m);
    }
    for (const UpdateRule& r : out_->update_rules) {
      TallyExpr(r.value.get(), r.cls,
                &out_->affinity[static_cast<size_t>(r.cls)]);
    }
  }

  const AstProgram* ast_ = nullptr;
  CompiledProgram* out_ = nullptr;
  Catalog* catalog_ = nullptr;
  int next_assign_id_ = 1;
  int next_site_ = 0;
};

}  // namespace

std::string CompiledProgram::Explain() const {
  std::string out;
  for (const CompiledScript& s : scripts) {
    out += "script " + s.name + " for " + catalog->Get(s.cls).name() + ":\n";
    for (size_t k = 0; k < s.phases.size(); ++k) {
      if (s.phases.size() > 1) {
        out += " phase " + std::to_string(k) + ":\n";
      }
      out += ExplainOps(s.phases[k]);
    }
  }
  for (const CompiledHandler& h : handlers) {
    out += "when " + catalog->Get(h.cls).name() + " " + h.name + " (" +
           h.cond->ToString() + "):\n";
    out += ExplainOps(h.ops);
  }
  for (const UpdateRule& r : update_rules) {
    const ClassDef& def = catalog->Get(r.cls);
    out += "update " + def.name() + "." +
           def.state_field(r.state_field).name + " = " +
           r.value->ToString() + "\n";
  }
  return out;
}

int CompiledProgram::FindScript(const std::string& name) const {
  for (size_t i = 0; i < scripts.size(); ++i) {
    if (scripts[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

StatusOr<std::unique_ptr<CompiledProgram>> Compile(const AstProgram& ast) {
  auto out = std::make_unique<CompiledProgram>();
  ProgramCompiler compiler;
  SGL_RETURN_IF_ERROR(compiler.Run(ast, out.get()));
  return out;
}

StatusOr<std::unique_ptr<CompiledProgram>> CompileSource(
    const std::string& source) {
  SGL_ASSIGN_OR_RETURN(AstProgram ast, ParseProgram(source));
  return Compile(ast);
}

}  // namespace sgl
