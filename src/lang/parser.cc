#include "src/lang/parser.h"

#include "src/lang/lexer.h"

namespace sgl {

namespace {

/// Token-stream parser. All Parse* methods return Status and write results
/// through out-params so SGL_RETURN_IF_ERROR composes.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : toks_(std::move(tokens)) {}

  Status Run(AstProgram* out) {
    while (!At(TokKind::kEof)) {
      if (AtIdent("class")) {
        AstClass cls;
        SGL_RETURN_IF_ERROR(ParseClass(&cls));
        out->classes.push_back(std::move(cls));
      } else if (AtIdent("script")) {
        AstScript script;
        SGL_RETURN_IF_ERROR(ParseScript(&script));
        out->scripts.push_back(std::move(script));
      } else if (AtIdent("when")) {
        AstHandler handler;
        SGL_RETURN_IF_ERROR(ParseHandler(&handler));
        out->handlers.push_back(std::move(handler));
      } else {
        return Err("expected 'class', 'script', or 'when'");
      }
    }
    return Status::OK();
  }

 private:
  const Token& Cur() const { return toks_[pos_]; }
  const Token& Peek(size_t off = 1) const {
    size_t i = pos_ + off;
    return i < toks_.size() ? toks_[i] : toks_.back();
  }
  bool At(TokKind k) const { return Cur().kind == k; }
  bool AtIdent(const char* text) const {
    return Cur().kind == TokKind::kIdent && Cur().text == text;
  }
  void Advance() {
    if (pos_ + 1 < toks_.size()) ++pos_;
  }
  bool Eat(TokKind k) {
    if (!At(k)) return false;
    Advance();
    return true;
  }
  bool EatIdent(const char* text) {
    if (!AtIdent(text)) return false;
    Advance();
    return true;
  }
  SrcPos Pos() const { return SrcPos{Cur().line, Cur().col}; }
  Status Err(const std::string& msg) const {
    return Status::ParseError(msg + " at " +
                              std::to_string(Cur().line) + ":" +
                              std::to_string(Cur().col) + " (found " +
                              std::string(TokKindName(Cur().kind)) +
                              (Cur().kind == TokKind::kIdent
                                   ? " '" + Cur().text + "'"
                                   : "") +
                              ")");
  }
  Status Expect(TokKind k) {
    if (!Eat(k)) return Err(std::string("expected ") + TokKindName(k));
    return Status::OK();
  }
  Status ExpectIdent(const char* text) {
    if (!EatIdent(text)) return Err(std::string("expected '") + text + "'");
    return Status::OK();
  }
  Status ExpectAnyIdent(std::string* out) {
    if (!At(TokKind::kIdent)) return Err("expected identifier");
    *out = Cur().text;
    Advance();
    return Status::OK();
  }

  // --- Types ----------------------------------------------------------

  Status ParseType(AstType* out) {
    if (!At(TokKind::kIdent)) return Err("expected type");
    out->base = Cur().text;
    Advance();
    if (out->base == "ref" || out->base == "set") {
      SGL_RETURN_IF_ERROR(Expect(TokKind::kLt));
      SGL_RETURN_IF_ERROR(ExpectAnyIdent(&out->param));
      SGL_RETURN_IF_ERROR(Expect(TokKind::kGt));
    } else if (out->base != "number" && out->base != "bool") {
      return Err("unknown type '" + out->base + "'");
    }
    return Status::OK();
  }

  // --- Declarations ----------------------------------------------------

  Status ParseClass(AstClass* out) {
    out->pos = Pos();
    SGL_RETURN_IF_ERROR(ExpectIdent("class"));
    SGL_RETURN_IF_ERROR(ExpectAnyIdent(&out->name));
    SGL_RETURN_IF_ERROR(Expect(TokKind::kLBrace));
    enum Section { kNone, kState, kEffects, kUpdate } section = kNone;
    while (!At(TokKind::kRBrace)) {
      if (AtIdent("state") && Peek().kind == TokKind::kColon) {
        Advance();
        Advance();
        section = kState;
        continue;
      }
      if (AtIdent("effects") && Peek().kind == TokKind::kColon) {
        Advance();
        Advance();
        section = kEffects;
        continue;
      }
      if (AtIdent("update") && Peek().kind == TokKind::kColon) {
        Advance();
        Advance();
        section = kUpdate;
        continue;
      }
      switch (section) {
        case kNone:
          return Err("expected 'state:', 'effects:', or 'update:'");
        case kState: {
          AstStateField f;
          f.pos = Pos();
          SGL_RETURN_IF_ERROR(ParseType(&f.type));
          SGL_RETURN_IF_ERROR(ExpectAnyIdent(&f.name));
          if (Eat(TokKind::kAssign)) {
            SGL_RETURN_IF_ERROR(ParseExpr(&f.init));
          }
          SGL_RETURN_IF_ERROR(Expect(TokKind::kSemi));
          out->state.push_back(std::move(f));
          break;
        }
        case kEffects: {
          AstEffectField f;
          f.pos = Pos();
          SGL_RETURN_IF_ERROR(ParseType(&f.type));
          SGL_RETURN_IF_ERROR(ExpectAnyIdent(&f.name));
          SGL_RETURN_IF_ERROR(Expect(TokKind::kColon));
          SGL_RETURN_IF_ERROR(ExpectAnyIdent(&f.comb));
          SGL_RETURN_IF_ERROR(Expect(TokKind::kSemi));
          out->effects.push_back(std::move(f));
          break;
        }
        case kUpdate: {
          AstUpdateRule r;
          r.pos = Pos();
          SGL_RETURN_IF_ERROR(ExpectAnyIdent(&r.field));
          SGL_RETURN_IF_ERROR(Expect(TokKind::kAssign));
          SGL_RETURN_IF_ERROR(ParseExpr(&r.value));
          SGL_RETURN_IF_ERROR(Expect(TokKind::kSemi));
          out->updates.push_back(std::move(r));
          break;
        }
      }
    }
    return Expect(TokKind::kRBrace);
  }

  Status ParseScript(AstScript* out) {
    out->pos = Pos();
    SGL_RETURN_IF_ERROR(ExpectIdent("script"));
    SGL_RETURN_IF_ERROR(ExpectAnyIdent(&out->name));
    SGL_RETURN_IF_ERROR(ExpectIdent("for"));
    SGL_RETURN_IF_ERROR(ExpectAnyIdent(&out->cls));
    SGL_RETURN_IF_ERROR(Expect(TokKind::kLBrace));
    SGL_RETURN_IF_ERROR(ParseBlockBody(&out->body));
    return Expect(TokKind::kRBrace);
  }

  Status ParseHandler(AstHandler* out) {
    out->pos = Pos();
    SGL_RETURN_IF_ERROR(ExpectIdent("when"));
    SGL_RETURN_IF_ERROR(ExpectAnyIdent(&out->cls));
    if (At(TokKind::kIdent)) {  // optional handler name
      out->name = Cur().text;
      Advance();
    }
    SGL_RETURN_IF_ERROR(Expect(TokKind::kLParen));
    SGL_RETURN_IF_ERROR(ParseExpr(&out->cond));
    SGL_RETURN_IF_ERROR(Expect(TokKind::kRParen));
    SGL_RETURN_IF_ERROR(Expect(TokKind::kLBrace));
    SGL_RETURN_IF_ERROR(ParseBlockBody(&out->body));
    return Expect(TokKind::kRBrace);
  }

  // --- Statements -------------------------------------------------------

  Status ParseBlockBody(std::vector<AstStmtPtr>* out) {
    while (!At(TokKind::kRBrace) && !At(TokKind::kEof)) {
      AstStmtPtr stmt;
      SGL_RETURN_IF_ERROR(ParseStmt(&stmt));
      out->push_back(std::move(stmt));
    }
    return Status::OK();
  }

  Status ParseBracedBlock(std::vector<AstStmtPtr>* out) {
    SGL_RETURN_IF_ERROR(Expect(TokKind::kLBrace));
    SGL_RETURN_IF_ERROR(ParseBlockBody(out));
    return Expect(TokKind::kRBrace);
  }

  Status ParseStmt(AstStmtPtr* out) {
    auto stmt = std::make_unique<AstStmt>();
    stmt->pos = Pos();
    if (AtIdent("let")) {
      Advance();
      stmt->kind = AstStmtKind::kLet;
      SGL_RETURN_IF_ERROR(ParseType(&stmt->type));
      SGL_RETURN_IF_ERROR(ExpectAnyIdent(&stmt->name));
      SGL_RETURN_IF_ERROR(Expect(TokKind::kAssign));
      SGL_RETURN_IF_ERROR(ParseExpr(&stmt->expr));
      SGL_RETURN_IF_ERROR(Expect(TokKind::kSemi));
      *out = std::move(stmt);
      return Status::OK();
    }
    if (AtIdent("if")) {
      SGL_RETURN_IF_ERROR(ParseIf(stmt.get()));
      *out = std::move(stmt);
      return Status::OK();
    }
    if (AtIdent("waitNextTick")) {
      Advance();
      stmt->kind = AstStmtKind::kWait;
      SGL_RETURN_IF_ERROR(Expect(TokKind::kSemi));
      *out = std::move(stmt);
      return Status::OK();
    }
    if (AtIdent("restart")) {
      Advance();
      stmt->kind = AstStmtKind::kRestart;
      if (At(TokKind::kIdent)) {
        stmt->name = Cur().text;
        Advance();
      }
      SGL_RETURN_IF_ERROR(Expect(TokKind::kSemi));
      *out = std::move(stmt);
      return Status::OK();
    }
    if (AtIdent("accum")) {
      SGL_RETURN_IF_ERROR(ParseAccum(stmt.get()));
      *out = std::move(stmt);
      return Status::OK();
    }
    if (AtIdent("atomic")) {
      SGL_RETURN_IF_ERROR(ParseAtomic(stmt.get()));
      *out = std::move(stmt);
      return Status::OK();
    }
    // Effect assignment: lvalue (<-|<+|<~) expr ;
    stmt->kind = AstStmtKind::kAssign;
    AstExprPtr lvalue;
    SGL_RETURN_IF_ERROR(ParsePostfix(&lvalue));
    if (lvalue->kind == AstExprKind::kIdent) {
      stmt->name = lvalue->name;
      stmt->target_base = nullptr;
    } else if (lvalue->kind == AstExprKind::kField) {
      stmt->name = lvalue->name;
      stmt->target_base = std::move(lvalue->kids[0]);
    } else {
      return Err("expected an assignable field before '<-'");
    }
    if (Eat(TokKind::kArrow)) {
      stmt->assign_op = "<-";
    } else if (Eat(TokKind::kArrowPlus)) {
      stmt->assign_op = "<+";
    } else if (Eat(TokKind::kArrowTilde)) {
      stmt->assign_op = "<~";
    } else {
      return Err("expected '<-', '<+', or '<~'");
    }
    SGL_RETURN_IF_ERROR(ParseExpr(&stmt->expr));
    SGL_RETURN_IF_ERROR(Expect(TokKind::kSemi));
    *out = std::move(stmt);
    return Status::OK();
  }

  Status ParseIf(AstStmt* stmt) {
    SGL_RETURN_IF_ERROR(ExpectIdent("if"));
    stmt->kind = AstStmtKind::kIf;
    SGL_RETURN_IF_ERROR(Expect(TokKind::kLParen));
    SGL_RETURN_IF_ERROR(ParseExpr(&stmt->expr));
    SGL_RETURN_IF_ERROR(Expect(TokKind::kRParen));
    SGL_RETURN_IF_ERROR(ParseBracedBlock(&stmt->block1));
    if (EatIdent("else")) {
      if (AtIdent("if")) {
        auto nested = std::make_unique<AstStmt>();
        nested->pos = Pos();
        SGL_RETURN_IF_ERROR(ParseIf(nested.get()));
        stmt->block2.push_back(std::move(nested));
      } else {
        SGL_RETURN_IF_ERROR(ParseBracedBlock(&stmt->block2));
      }
    }
    return Status::OK();
  }

  Status ParseAccum(AstStmt* stmt) {
    SGL_RETURN_IF_ERROR(ExpectIdent("accum"));
    stmt->kind = AstStmtKind::kAccum;
    SGL_RETURN_IF_ERROR(ParseType(&stmt->accum_type));
    SGL_RETURN_IF_ERROR(ExpectAnyIdent(&stmt->name));
    SGL_RETURN_IF_ERROR(ExpectIdent("with"));
    SGL_RETURN_IF_ERROR(ExpectAnyIdent(&stmt->comb));
    SGL_RETURN_IF_ERROR(ExpectIdent("over"));
    SGL_RETURN_IF_ERROR(ExpectAnyIdent(&stmt->iter_class));
    SGL_RETURN_IF_ERROR(ExpectAnyIdent(&stmt->iter_name));
    SGL_RETURN_IF_ERROR(ExpectIdent("from"));
    SGL_RETURN_IF_ERROR(ExpectAnyIdent(&stmt->from_name));
    SGL_RETURN_IF_ERROR(ParseBracedBlock(&stmt->block1));
    SGL_RETURN_IF_ERROR(ExpectIdent("in"));
    SGL_RETURN_IF_ERROR(ParseBracedBlock(&stmt->block2));
    return Status::OK();
  }

  Status ParseAtomic(AstStmt* stmt) {
    SGL_RETURN_IF_ERROR(ExpectIdent("atomic"));
    stmt->kind = AstStmtKind::kAtomic;
    if (At(TokKind::kString)) {
      stmt->name = Cur().text;
      Advance();
    }
    while (AtIdent("require")) {
      Advance();
      SGL_RETURN_IF_ERROR(Expect(TokKind::kLParen));
      AstExprPtr c;
      SGL_RETURN_IF_ERROR(ParseExpr(&c));
      SGL_RETURN_IF_ERROR(Expect(TokKind::kRParen));
      stmt->constraints.push_back(std::move(c));
    }
    SGL_RETURN_IF_ERROR(ParseBracedBlock(&stmt->block1));
    return Status::OK();
  }

  // --- Expressions ------------------------------------------------------

  AstExprPtr MakeBinary(std::string op, AstExprPtr a, AstExprPtr b,
                        SrcPos pos) {
    auto e = std::make_unique<AstExpr>();
    e->kind = AstExprKind::kBinary;
    e->op = std::move(op);
    e->pos = pos;
    e->kids.push_back(std::move(a));
    e->kids.push_back(std::move(b));
    return e;
  }

  Status ParseExpr(AstExprPtr* out) { return ParseOr(out); }

  Status ParseOr(AstExprPtr* out) {
    SGL_RETURN_IF_ERROR(ParseAnd(out));
    while (At(TokKind::kOrOr)) {
      SrcPos pos = Pos();
      Advance();
      AstExprPtr rhs;
      SGL_RETURN_IF_ERROR(ParseAnd(&rhs));
      *out = MakeBinary("||", std::move(*out), std::move(rhs), pos);
    }
    return Status::OK();
  }

  Status ParseAnd(AstExprPtr* out) {
    SGL_RETURN_IF_ERROR(ParseCmp(out));
    while (At(TokKind::kAndAnd)) {
      SrcPos pos = Pos();
      Advance();
      AstExprPtr rhs;
      SGL_RETURN_IF_ERROR(ParseCmp(&rhs));
      *out = MakeBinary("&&", std::move(*out), std::move(rhs), pos);
    }
    return Status::OK();
  }

  Status ParseCmp(AstExprPtr* out) {
    SGL_RETURN_IF_ERROR(ParseAdd(out));
    std::string op;
    switch (Cur().kind) {
      case TokKind::kLt: op = "<"; break;
      case TokKind::kLe: op = "<="; break;
      case TokKind::kGt: op = ">"; break;
      case TokKind::kGe: op = ">="; break;
      case TokKind::kEqEq: op = "=="; break;
      case TokKind::kNe: op = "!="; break;
      case TokKind::kArrow:
        // "a <-b" in expression position is "a < -b": the lexer cannot
        // distinguish this from the assignment arrow, so the parser does.
        {
          SrcPos pos = Pos();
          Advance();
          AstExprPtr rhs;
          SGL_RETURN_IF_ERROR(ParseUnary(&rhs));
          auto neg = std::make_unique<AstExpr>();
          neg->kind = AstExprKind::kUnary;
          neg->op = "-";
          neg->pos = pos;
          neg->kids.push_back(std::move(rhs));
          // Continue the additive tail after the negated operand.
          AstExprPtr full = std::move(neg);
          SGL_RETURN_IF_ERROR(ParseAddTail(&full));
          *out = MakeBinary("<", std::move(*out), std::move(full), pos);
          return Status::OK();
        }
      default:
        return Status::OK();
    }
    SrcPos pos = Pos();
    Advance();
    AstExprPtr rhs;
    SGL_RETURN_IF_ERROR(ParseAdd(&rhs));
    *out = MakeBinary(op, std::move(*out), std::move(rhs), pos);
    return Status::OK();
  }

  Status ParseAdd(AstExprPtr* out) {
    SGL_RETURN_IF_ERROR(ParseMul(out));
    return ParseAddTail(out);
  }

  Status ParseAddTail(AstExprPtr* out) {
    while (At(TokKind::kPlus) || At(TokKind::kMinus)) {
      std::string op = At(TokKind::kPlus) ? "+" : "-";
      SrcPos pos = Pos();
      Advance();
      AstExprPtr rhs;
      SGL_RETURN_IF_ERROR(ParseMul(&rhs));
      *out = MakeBinary(op, std::move(*out), std::move(rhs), pos);
    }
    return Status::OK();
  }

  Status ParseMul(AstExprPtr* out) {
    SGL_RETURN_IF_ERROR(ParseUnary(out));
    while (At(TokKind::kStar) || At(TokKind::kSlash) ||
           At(TokKind::kPercent)) {
      std::string op = At(TokKind::kStar)    ? "*"
                       : At(TokKind::kSlash) ? "/"
                                             : "%";
      SrcPos pos = Pos();
      Advance();
      AstExprPtr rhs;
      SGL_RETURN_IF_ERROR(ParseUnary(&rhs));
      *out = MakeBinary(op, std::move(*out), std::move(rhs), pos);
    }
    return Status::OK();
  }

  Status ParseUnary(AstExprPtr* out) {
    if (At(TokKind::kMinus) || At(TokKind::kBang)) {
      auto e = std::make_unique<AstExpr>();
      e->kind = AstExprKind::kUnary;
      e->op = At(TokKind::kMinus) ? "-" : "!";
      e->pos = Pos();
      Advance();
      AstExprPtr kid;
      SGL_RETURN_IF_ERROR(ParseUnary(&kid));
      e->kids.push_back(std::move(kid));
      *out = std::move(e);
      return Status::OK();
    }
    return ParsePostfix(out);
  }

  Status ParsePostfix(AstExprPtr* out) {
    SGL_RETURN_IF_ERROR(ParsePrimary(out));
    while (At(TokKind::kDot)) {
      SrcPos pos = Pos();
      Advance();
      auto e = std::make_unique<AstExpr>();
      e->kind = AstExprKind::kField;
      e->pos = pos;
      SGL_RETURN_IF_ERROR(ExpectAnyIdent(&e->name));
      e->kids.push_back(std::move(*out));
      *out = std::move(e);
    }
    return Status::OK();
  }

  Status ParsePrimary(AstExprPtr* out) {
    auto e = std::make_unique<AstExpr>();
    e->pos = Pos();
    if (At(TokKind::kNumber)) {
      e->kind = AstExprKind::kNum;
      e->num = Cur().num;
      Advance();
      *out = std::move(e);
      return Status::OK();
    }
    if (AtIdent("true") || AtIdent("false")) {
      e->kind = AstExprKind::kBool;
      e->b = AtIdent("true");
      Advance();
      *out = std::move(e);
      return Status::OK();
    }
    if (AtIdent("null")) {
      e->kind = AstExprKind::kNull;
      Advance();
      *out = std::move(e);
      return Status::OK();
    }
    if (At(TokKind::kLParen)) {
      Advance();
      SGL_RETURN_IF_ERROR(ParseExpr(out));
      return Expect(TokKind::kRParen);
    }
    if (At(TokKind::kIdent)) {
      std::string name = Cur().text;
      Advance();
      if (At(TokKind::kLParen)) {
        Advance();
        e->kind = AstExprKind::kCall;
        e->name = name;
        if (!At(TokKind::kRParen)) {
          for (;;) {
            AstExprPtr arg;
            SGL_RETURN_IF_ERROR(ParseExpr(&arg));
            e->kids.push_back(std::move(arg));
            if (!Eat(TokKind::kComma)) break;
          }
        }
        SGL_RETURN_IF_ERROR(Expect(TokKind::kRParen));
        *out = std::move(e);
        return Status::OK();
      }
      e->kind = AstExprKind::kIdent;
      e->name = name;
      *out = std::move(e);
      return Status::OK();
    }
    return Err("expected an expression");
  }

  std::vector<Token> toks_;
  size_t pos_ = 0;
};

}  // namespace

StatusOr<AstProgram> ParseProgram(const std::string& source) {
  SGL_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(source));
  AstProgram program;
  Parser parser(std::move(tokens));
  SGL_RETURN_IF_ERROR(parser.Run(&program));
  return program;
}

}  // namespace sgl
