#include "src/update/pathfind.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <queue>

namespace sgl {

std::vector<std::pair<int, int>> AStar(const GridMap& map, int sx, int sy,
                                       int gx, int gy) {
  if (map.Blocked(sx, sy) || map.Blocked(gx, gy)) return {};
  const int w = map.width();
  const int h = map.height();
  auto idx = [w](int x, int y) { return y * w + x; };
  const int n = w * h;
  std::vector<int32_t> g(static_cast<size_t>(n), -1);
  std::vector<int32_t> parent(static_cast<size_t>(n), -1);
  auto heuristic = [&](int x, int y) {
    return std::abs(x - gx) + std::abs(y - gy);
  };
  using Entry = std::pair<int32_t, int32_t>;  // (f, cell) — min-heap
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> open;
  g[static_cast<size_t>(idx(sx, sy))] = 0;
  open.emplace(heuristic(sx, sy), idx(sx, sy));
  const int dx[4] = {1, -1, 0, 0};
  const int dy[4] = {0, 0, 1, -1};
  while (!open.empty()) {
    auto [f, cell] = open.top();
    open.pop();
    int cx = cell % w;
    int cy = cell / w;
    int32_t gc = g[static_cast<size_t>(cell)];
    if (f > gc + heuristic(cx, cy)) continue;  // stale entry
    if (cx == gx && cy == gy) {
      std::vector<std::pair<int, int>> path;
      for (int c = cell; c != -1; c = parent[static_cast<size_t>(c)]) {
        path.emplace_back(c % w, c / w);
      }
      std::reverse(path.begin(), path.end());
      return path;
    }
    for (int k = 0; k < 4; ++k) {
      int nx = cx + dx[k];
      int ny = cy + dy[k];
      if (map.Blocked(nx, ny)) continue;
      int ncell = idx(nx, ny);
      int32_t ng = gc + 1;
      if (g[static_cast<size_t>(ncell)] < 0 ||
          ng < g[static_cast<size_t>(ncell)]) {
        g[static_cast<size_t>(ncell)] = ng;
        parent[static_cast<size_t>(ncell)] = cell;
        open.emplace(ng + heuristic(nx, ny), ncell);
      }
    }
  }
  return {};
}

StatusOr<std::unique_ptr<PathfinderComponent>> PathfinderComponent::Create(
    const Catalog& catalog, const PathfinderConfig& config, GridMap map) {
  auto comp = std::unique_ptr<PathfinderComponent>(new PathfinderComponent());
  comp->config_ = config;
  comp->map_ = std::move(map);
  comp->cls_ = catalog.Find(config.cls);
  if (comp->cls_ == kInvalidClass) {
    return Status::NotFound("pathfinder: class '" + config.cls +
                            "' not found");
  }
  const ClassDef& def = catalog.Get(comp->cls_);
  auto state_num = [&](const std::string& field, FieldIdx* out) -> Status {
    *out = def.FindState(field);
    if (*out == kInvalidField || !def.state_field(*out).type.is_number()) {
      return Status::NotFound("pathfinder: numeric state field '" +
                              config.cls + "." + field + "' not found");
    }
    return Status::OK();
  };
  auto effect_num = [&](const std::string& field, FieldIdx* out) -> Status {
    *out = def.FindEffect(field);
    if (*out == kInvalidField || !def.effect_field(*out).type.is_number()) {
      return Status::NotFound("pathfinder: numeric effect field '" +
                              config.cls + "." + field + "' not found");
    }
    return Status::OK();
  };
  SGL_RETURN_IF_ERROR(state_num(config.x, &comp->x_));
  SGL_RETURN_IF_ERROR(state_num(config.y, &comp->y_));
  SGL_RETURN_IF_ERROR(effect_num(config.goal_x, &comp->goal_x_));
  SGL_RETURN_IF_ERROR(effect_num(config.goal_y, &comp->goal_y_));
  SGL_RETURN_IF_ERROR(state_num(config.waypoint_x, &comp->wx_));
  SGL_RETURN_IF_ERROR(state_num(config.waypoint_y, &comp->wy_));
  return comp;
}

std::vector<std::pair<ClassId, FieldIdx>> PathfinderComponent::OwnedFields()
    const {
  return {{cls_, wx_}, {cls_, wy_}};
}

void PathfinderComponent::Update(World* world, Tick tick) {
  (void)tick;
  EntityTable& table = world->table(cls_);
  const EffectBuffer& effects = world->effects(cls_);
  const size_t n = table.size();
  if (n == 0) return;
  ConstNumberColumn x = table.Num(x_);
  ConstNumberColumn y = table.Num(y_);
  NumberColumn wx = table.Num(wx_);
  NumberColumn wy = table.Num(wy_);

  // Per-tick memo: (start cell, goal cell) -> next waypoint cell.
  std::map<std::tuple<int, int, int, int>, std::pair<int, int>> memo;

  for (size_t i = 0; i < n; ++i) {
    RowIdx r = static_cast<RowIdx>(i);
    if (!effects.Assigned(goal_x_, r) || !effects.Assigned(goal_y_, r)) {
      continue;  // no intent: waypoint untouched
    }
    double gx_pos = effects.FinalNumber(goal_x_, r);
    double gy_pos = effects.FinalNumber(goal_y_, r);
    int sx = map_.CellX(x[i]);
    int sy = map_.CellY(y[i]);
    int gx = map_.CellX(gx_pos);
    int gy = map_.CellY(gy_pos);
    auto key = std::make_tuple(sx, sy, gx, gy);
    auto it = memo.find(key);
    std::pair<int, int> next;
    if (it != memo.end()) {
      next = it->second;
      ++total_.cache_hits;
    } else {
      auto path = AStar(map_, sx, sy, gx, gy);
      ++total_.searches;
      if (path.empty()) {
        ++total_.unreachable;
        next = {sx, sy};  // stay put
      } else {
        next = path.size() > 1 ? path[1] : path[0];
      }
      memo[key] = next;
    }
    if (next.first == gx && next.second == gy) {
      // Final cell: head to the exact goal position, not the cell center.
      wx.at(i) = gx_pos;
      wy.at(i) = gy_pos;
    } else {
      wx.at(i) = map_.CenterX(next.first);
      wy.at(i) = map_.CenterY(next.second);
    }
  }
}

}  // namespace sgl
