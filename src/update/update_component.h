// Update components (§2.2): each state attribute is owned by exactly one
// component (expression updater, physics, pathfinding, transaction engine),
// which updates it once per tick. The registry enforces the paper's "state
// variables strictly partitioned among these components" invariant at
// registration time, which is what removes ordering constraints between
// components.

#ifndef SGL_UPDATE_UPDATE_COMPONENT_H_
#define SGL_UPDATE_UPDATE_COMPONENT_H_

#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/common/status.h"
#include "src/storage/world.h"

namespace sgl {

/// A subsystem that updates the state fields it owns at the end of a tick,
/// reading the (read-only) previous state and the merged effects.
class UpdateComponent {
 public:
  virtual ~UpdateComponent() = default;

  virtual const std::string& name() const = 0;

  /// The state fields this component updates. Claimed exclusively.
  virtual std::vector<std::pair<ClassId, FieldIdx>> OwnedFields() const = 0;

  /// Runs the component's update for `tick`. May read any state and any
  /// merged effect, but may write only its owned fields.
  virtual void Update(World* world, Tick tick) = 0;

  /// Called after a checkpoint restore replaced the world behind the
  /// component's back. Components holding cross-tick caches keyed on the
  /// pre-restore run (async job results, request dedup tables) must drop
  /// them here; in-flight JobService work is cancelled by the engine
  /// before this hook runs.
  ///
  /// Components that instead implement SaveState/LoadState get their caches
  /// restored from the checkpoint and are NOT sent OnRestore for that
  /// restore — only components whose serialized state is absent from (or
  /// rejected by) the checkpoint fall back to this cache-drop path.
  virtual void OnRestore() {}

  /// Appends this component's cross-tick private state (caches, dedup
  /// tables — anything not derivable from world columns) to `out` for a
  /// checkpoint. Default: append nothing, meaning "no state worth saving";
  /// such components get OnRestore() at restore time instead.
  virtual void SaveState(std::string* out) const { (void)out; }

  /// Restores state produced by SaveState. Must fully replace any current
  /// cross-tick state (it is the restore-time counterpart of OnRestore).
  /// Returning non-OK rejects the blob; the registry then falls back to
  /// OnRestore() for this component.
  virtual Status LoadState(const char* data, size_t size) {
    (void)data;
    (void)size;
    return Status::OK();
  }
};

/// Owns the components and enforces disjoint field ownership.
class ComponentRegistry {
 public:
  /// Registers a component; fails (and rejects the component) if any of its
  /// owned fields is already claimed. Ownership is recorded in the field's
  /// FieldDef::owner for introspection.
  Status Register(Catalog* catalog, std::unique_ptr<UpdateComponent> comp);

  /// Runs every component in registration order. Disjoint ownership makes
  /// the order immaterial for state results.
  void RunAll(World* world, Tick tick);

  /// Fans OnRestore() out to every component (checkpoint restore).
  void NotifyRestore();

  /// Serializes every component's private cross-tick state (name-tagged
  /// SaveState blobs; components that save nothing are skipped). Empty
  /// output when no component has state — the legacy checkpoint shape.
  void SerializeState(std::string* out) const;

  /// Restores state captured by SerializeState: components with a matching
  /// blob get LoadState, every other component gets OnRestore() (its caches
  /// are from the wrong timeline). InvalidArgument on an unknown component
  /// name or a truncated blob — callers treat that as "checkpoint does not
  /// match this engine" and fall back to NotifyRestore() recovery.
  Status RestoreState(const std::string& data);

  /// Component owning (cls, field), or empty string.
  std::string OwnerOf(ClassId cls, FieldIdx field) const;

  int num_components() const { return static_cast<int>(components_.size()); }
  UpdateComponent* component(int i) {
    return components_[static_cast<size_t>(i)].get();
  }

 private:
  std::vector<std::unique_ptr<UpdateComponent>> components_;
  std::map<std::pair<ClassId, FieldIdx>, std::string> ownership_;
};

}  // namespace sgl

#endif  // SGL_UPDATE_UPDATE_COMPONENT_H_
