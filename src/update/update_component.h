// Update components (§2.2): each state attribute is owned by exactly one
// component (expression updater, physics, pathfinding, transaction engine),
// which updates it once per tick. The registry enforces the paper's "state
// variables strictly partitioned among these components" invariant at
// registration time, which is what removes ordering constraints between
// components.

#ifndef SGL_UPDATE_UPDATE_COMPONENT_H_
#define SGL_UPDATE_UPDATE_COMPONENT_H_

#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/common/status.h"
#include "src/storage/world.h"

namespace sgl {

/// A subsystem that updates the state fields it owns at the end of a tick,
/// reading the (read-only) previous state and the merged effects.
class UpdateComponent {
 public:
  virtual ~UpdateComponent() = default;

  virtual const std::string& name() const = 0;

  /// The state fields this component updates. Claimed exclusively.
  virtual std::vector<std::pair<ClassId, FieldIdx>> OwnedFields() const = 0;

  /// Runs the component's update for `tick`. May read any state and any
  /// merged effect, but may write only its owned fields.
  virtual void Update(World* world, Tick tick) = 0;

  /// Called after a checkpoint restore replaced the world behind the
  /// component's back. Components holding cross-tick caches keyed on the
  /// pre-restore run (async job results, request dedup tables) must drop
  /// them here; in-flight JobService work is cancelled by the engine
  /// before this hook runs.
  virtual void OnRestore() {}
};

/// Owns the components and enforces disjoint field ownership.
class ComponentRegistry {
 public:
  /// Registers a component; fails (and rejects the component) if any of its
  /// owned fields is already claimed. Ownership is recorded in the field's
  /// FieldDef::owner for introspection.
  Status Register(Catalog* catalog, std::unique_ptr<UpdateComponent> comp);

  /// Runs every component in registration order. Disjoint ownership makes
  /// the order immaterial for state results.
  void RunAll(World* world, Tick tick);

  /// Fans OnRestore() out to every component (checkpoint restore).
  void NotifyRestore();

  /// Component owning (cls, field), or empty string.
  std::string OwnerOf(ClassId cls, FieldIdx field) const;

  int num_components() const { return static_cast<int>(components_.size()); }
  UpdateComponent* component(int i) {
    return components_[static_cast<size_t>(i)].get();
  }

 private:
  std::vector<std::unique_ptr<UpdateComponent>> components_;
  std::map<std::pair<ClassId, FieldIdx>, std::string> ownership_;
};

}  // namespace sgl

#endif  // SGL_UPDATE_UPDATE_COMPONENT_H_
