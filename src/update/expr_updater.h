// The default update component: evaluates the class-declared update rules
// (`health = health - damage;`, §2.2) set-at-a-time. All rules of a class
// read the same pre-update state snapshot: new values are computed into
// buffers first and written back after, so rule order never matters.

#ifndef SGL_UPDATE_EXPR_UPDATER_H_
#define SGL_UPDATE_EXPR_UPDATER_H_

#include <string>
#include <vector>

#include "src/lang/compiler.h"
#include "src/ra/eval.h"
#include "src/update/update_component.h"

namespace sgl {

/// Applies UpdateRules; owns exactly the fields the rules target.
class ExprUpdater : public UpdateComponent {
 public:
  /// Borrows the rules from `program` (must outlive this component).
  explicit ExprUpdater(const CompiledProgram* program);

  const std::string& name() const override { return name_; }
  std::vector<std::pair<ClassId, FieldIdx>> OwnedFields() const override;
  void Update(World* world, Tick tick) override;

 private:
  /// Snapshot buffers for one rule's new values (only the storage matching
  /// the rule's type is used). Reused across rules, classes, and ticks.
  /// Set rules stage into one flat CSR buffer (set_elems sliced by
  /// set_offsets, one slice per row) instead of per-row EntitySet copies;
  /// commit copy-assigns each slice into the row's existing set buffer.
  struct RuleBufs {
    std::vector<double> nums;
    std::vector<uint8_t> bools;
    std::vector<EntityId> refs;
    std::vector<EntityId> set_elems;
    std::vector<uint32_t> set_offsets;  ///< size rows + 1
  };

  std::string name_ = "expr-updater";
  const CompiledProgram* program_;
  // Steady-state scratch (high-water reuse).
  std::vector<RowIdx> all_rows_;
  std::vector<const UpdateRule*> class_rules_;
  std::vector<RuleBufs> bufs_;
  EvalScratch scratch_;
};

}  // namespace sgl

#endif  // SGL_UPDATE_EXPR_UPDATER_H_
