#include "src/update/physics.h"

#include <algorithm>
#include <cmath>

namespace sgl {

StatusOr<std::unique_ptr<PhysicsComponent>> PhysicsComponent::Create(
    const Catalog& catalog, const PhysicsConfig& config) {
  auto comp = std::unique_ptr<PhysicsComponent>(new PhysicsComponent());
  comp->config_ = config;
  comp->cls_ = catalog.Find(config.cls);
  if (comp->cls_ == kInvalidClass) {
    return Status::NotFound("physics: class '" + config.cls + "' not found");
  }
  const ClassDef& def = catalog.Get(comp->cls_);
  auto state_num = [&](const std::string& name, FieldIdx* out) -> Status {
    *out = def.FindState(name);
    if (*out == kInvalidField || !def.state_field(*out).type.is_number()) {
      return Status::NotFound("physics: numeric state field '" + config.cls +
                              "." + name + "' not found");
    }
    return Status::OK();
  };
  SGL_RETURN_IF_ERROR(state_num(config.x, &comp->x_));
  SGL_RETURN_IF_ERROR(state_num(config.y, &comp->y_));
  SGL_RETURN_IF_ERROR(state_num(config.vx, &comp->vx_));
  SGL_RETURN_IF_ERROR(state_num(config.vy, &comp->vy_));
  auto effect_num = [&](const std::string& name, FieldIdx* out) -> Status {
    *out = def.FindEffect(name);
    if (*out == kInvalidField || !def.effect_field(*out).type.is_number()) {
      return Status::NotFound("physics: numeric effect field '" + config.cls +
                              "." + name + "' not found");
    }
    return Status::OK();
  };
  SGL_RETURN_IF_ERROR(effect_num(config.fx, &comp->fx_));
  SGL_RETURN_IF_ERROR(effect_num(config.fy, &comp->fy_));
  if (!config.radius.empty()) {
    SGL_RETURN_IF_ERROR(state_num(config.radius, &comp->radius_));
  }
  return comp;
}

std::vector<std::pair<ClassId, FieldIdx>> PhysicsComponent::OwnedFields()
    const {
  return {{cls_, x_}, {cls_, y_}, {cls_, vx_}, {cls_, vy_}};
}

void PhysicsComponent::Update(World* world, Tick tick) {
  (void)tick;
  last_tick_ = PhysicsStats();
  EntityTable& table = world->table(cls_);
  const EffectBuffer& effects = world->effects(cls_);
  const size_t n = table.size();
  if (n == 0) return;

  NumberColumn x = table.Num(x_);
  NumberColumn y = table.Num(y_);
  NumberColumn vx = table.Num(vx_);
  NumberColumn vy = table.Num(vy_);

  // 1. Integrate: v += f (script intent), clamp speed, x += v.
  std::vector<double> nx(n), ny(n);
  for (size_t i = 0; i < n; ++i) {
    RowIdx r = static_cast<RowIdx>(i);
    double ax = effects.Assigned(fx_, r) ? effects.FinalNumber(fx_, r) : 0.0;
    double ay = effects.Assigned(fy_, r) ? effects.FinalNumber(fy_, r) : 0.0;
    double nvx = (vx[i] + ax) * config_.damping;
    double nvy = (vy[i] + ay) * config_.damping;
    double speed = std::sqrt(nvx * nvx + nvy * nvy);
    if (speed > config_.max_speed && speed > 0) {
      double scale = config_.max_speed / speed;
      nvx *= scale;
      nvy *= scale;
    }
    vx.at(i) = nvx;
    vy.at(i) = nvy;
    nx[i] = x[i] + nvx;
    ny[i] = y[i] + nvy;
  }

  std::vector<uint8_t> overridden(n, 0);

  // 2. Collision resolution: uniform-grid broad phase over tentative
  // positions, symmetric separation of overlapping circles. Deterministic:
  // pairs are processed in (row, row) order.
  if (config_.resolve_collisions) {
    auto radius_of = [&](size_t i) {
      return radius_ != kInvalidField ? table.Num(radius_)[i]
                                      : config_.default_radius;
    };
    double max_r = config_.default_radius;
    if (radius_ != kInvalidField) {
      for (size_t i = 0; i < n; ++i) max_r = std::max(max_r, radius_of(i));
    }
    const double cell = std::max(1e-6, 2.0 * max_r);
    for (int pass = 0; pass < config_.solver_iterations; ++pass) {
      // Hash rows into cells.
      const int64_t grid_w = static_cast<int64_t>(
          std::max(1.0, std::ceil((config_.max_x - config_.min_x) / cell)));
      auto cell_of = [&](double px, double py) {
        int64_t cx = static_cast<int64_t>((px - config_.min_x) / cell);
        int64_t cy = static_cast<int64_t>((py - config_.min_y) / cell);
        return cy * grid_w + cx;
      };
      std::vector<std::pair<int64_t, RowIdx>> cells(n);
      for (size_t i = 0; i < n; ++i) {
        cells[i] = {cell_of(nx[i], ny[i]), static_cast<RowIdx>(i)};
      }
      std::sort(cells.begin(), cells.end());
      // For each row, check neighbors in the 3x3 cell block with larger row
      // id (each pair once).
      auto find_cell = [&](int64_t key) {
        return std::lower_bound(
            cells.begin(), cells.end(), std::make_pair(key, RowIdx{0}));
      };
      bool any = false;
      for (size_t i = 0; i < n; ++i) {
        int64_t cx = static_cast<int64_t>((nx[i] - config_.min_x) / cell);
        int64_t cy = static_cast<int64_t>((ny[i] - config_.min_y) / cell);
        for (int64_t dy = -1; dy <= 1; ++dy) {
          for (int64_t dx = -1; dx <= 1; ++dx) {
            int64_t key = (cy + dy) * grid_w + (cx + dx);
            for (auto it = find_cell(key);
                 it != cells.end() && it->first == key; ++it) {
              size_t j = it->second;
              if (j <= i) continue;
              double rr = radius_of(i) + radius_of(j);
              double ddx = nx[j] - nx[i];
              double ddy = ny[j] - ny[i];
              double d2 = ddx * ddx + ddy * ddy;
              if (d2 >= rr * rr) continue;
              double d = std::sqrt(d2);
              // Degenerate overlap: separate along a deterministic axis.
              double ux = d > 1e-9 ? ddx / d : 1.0;
              double uy = d > 1e-9 ? ddy / d : 0.0;
              double push = 0.5 * (rr - d);
              nx[i] -= ux * push;
              ny[i] -= uy * push;
              nx[j] += ux * push;
              ny[j] += uy * push;
              overridden[i] = overridden[j] = 1;
              ++last_tick_.collision_pairs;
              any = true;
            }
          }
        }
      }
      if (!any) break;
    }
  }

  // 3. Bounds: clamp and bounce.
  for (size_t i = 0; i < n; ++i) {
    bool hit = false;
    if (nx[i] < config_.min_x) {
      nx[i] = config_.min_x;
      vx.at(i) = -vx[i] * config_.restitution;
      hit = true;
    } else if (nx[i] > config_.max_x) {
      nx[i] = config_.max_x;
      vx.at(i) = -vx[i] * config_.restitution;
      hit = true;
    }
    if (ny[i] < config_.min_y) {
      ny[i] = config_.min_y;
      vy.at(i) = -vy[i] * config_.restitution;
      hit = true;
    } else if (ny[i] > config_.max_y) {
      ny[i] = config_.max_y;
      vy.at(i) = -vy[i] * config_.restitution;
      hit = true;
    }
    if (hit) overridden[i] = 1;
    x.at(i) = nx[i];
    y.at(i) = ny[i];
  }

  for (size_t i = 0; i < n; ++i) {
    if (overridden[i]) ++last_tick_.position_overrides;
  }
  total_.collision_pairs += last_tick_.collision_pairs;
  total_.position_overrides += last_tick_.position_overrides;
}

}  // namespace sgl
