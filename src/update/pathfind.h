// A* grid pathfinding update component (§2.2: "AI planning, such as
// pathfinding" is an update component like the physics engine).
//
// Scripts express *intent* by assigning goal coordinates to two effect
// fields; the pathfinder owns two waypoint state fields and writes the next
// step toward each goal along a shortest obstacle-avoiding path. Per-tick
// (start-cell, goal-cell) memoization exploits the set-at-a-time batch: many
// NPCs heading to the same place share one search.

#ifndef SGL_UPDATE_PATHFIND_H_
#define SGL_UPDATE_PATHFIND_H_

#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "src/update/update_component.h"

namespace sgl {

/// Occupancy grid over the world rectangle.
class GridMap {
 public:
  GridMap(int width, int height, double cell_size)
      : width_(width), height_(height), cell_(cell_size),
        blocked_(static_cast<size_t>(width * height), 0) {}

  int width() const { return width_; }
  int height() const { return height_; }
  double cell_size() const { return cell_; }

  void SetBlocked(int cx, int cy, bool blocked) {
    blocked_[Index(cx, cy)] = blocked ? 1 : 0;
  }
  bool Blocked(int cx, int cy) const {
    if (cx < 0 || cy < 0 || cx >= width_ || cy >= height_) return true;
    return blocked_[Index(cx, cy)] != 0;
  }

  /// Flooring, not truncation: a coordinate just left of / below the map
  /// must land in cell -1 (out of bounds, Blocked), not be folded into
  /// cell 0.
  int CellX(double x) const {
    return static_cast<int>(std::floor(x / cell_));
  }
  int CellY(double y) const {
    return static_cast<int>(std::floor(y / cell_));
  }
  double CenterX(int cx) const { return (cx + 0.5) * cell_; }
  double CenterY(int cy) const { return (cy + 0.5) * cell_; }

 private:
  size_t Index(int cx, int cy) const {
    return static_cast<size_t>(cy) * static_cast<size_t>(width_) +
           static_cast<size_t>(cx);
  }
  int width_;
  int height_;
  double cell_;
  std::vector<uint8_t> blocked_;
};

/// 4-connected A* over a GridMap. Returns the cell path including start and
/// goal; empty if unreachable. Exposed for direct use and tests.
std::vector<std::pair<int, int>> AStar(const GridMap& map, int sx, int sy,
                                       int gx, int gy);

struct PathfinderConfig {
  std::string cls;
  std::string x = "x", y = "y";          ///< read-only position state
  std::string goal_x = "goal_x";         ///< effect: intended destination
  std::string goal_y = "goal_y";
  std::string waypoint_x = "waypoint_x"; ///< owned: next step to take
  std::string waypoint_y = "waypoint_y";
};

struct PathfinderStats {
  int64_t searches = 0;       ///< A* invocations
  int64_t cache_hits = 0;     ///< per-tick memo hits
  int64_t unreachable = 0;    ///< goals with no path
};

class PathfinderComponent : public UpdateComponent {
 public:
  static StatusOr<std::unique_ptr<PathfinderComponent>> Create(
      const Catalog& catalog, const PathfinderConfig& config, GridMap map);

  const std::string& name() const override { return name_; }
  std::vector<std::pair<ClassId, FieldIdx>> OwnedFields() const override;
  void Update(World* world, Tick tick) override;

  const GridMap& map() const { return map_; }
  const PathfinderStats& total() const { return total_; }

 private:
  PathfinderComponent() : map_(1, 1, 1.0) {}

  std::string name_ = "pathfinder";
  PathfinderConfig config_;
  GridMap map_;
  ClassId cls_ = kInvalidClass;
  FieldIdx x_ = kInvalidField, y_ = kInvalidField;
  FieldIdx goal_x_ = kInvalidField, goal_y_ = kInvalidField;
  FieldIdx wx_ = kInvalidField, wy_ = kInvalidField;
  PathfinderStats total_;
};

}  // namespace sgl

#endif  // SGL_UPDATE_PATHFIND_H_
