#include "src/update/expr_updater.h"

#include "src/ra/eval.h"

namespace sgl {

ExprUpdater::ExprUpdater(const CompiledProgram* program)
    : program_(program) {}

std::vector<std::pair<ClassId, FieldIdx>> ExprUpdater::OwnedFields() const {
  std::vector<std::pair<ClassId, FieldIdx>> out;
  for (const UpdateRule& r : program_->update_rules) {
    out.emplace_back(r.cls, r.state_field);
  }
  return out;
}

void ExprUpdater::Update(World* world, Tick tick) {
  (void)tick;
  // Group rules per class so each class gets one consistent snapshot pass.
  for (ClassId c = 0; c < world->catalog().num_classes(); ++c) {
    EntityTable& table = world->table(c);
    if (table.empty()) continue;
    all_rows_.resize(table.size());
    for (size_t i = 0; i < table.size(); ++i) {
      all_rows_[i] = static_cast<RowIdx>(i);
    }
    VecContext ctx;
    ctx.world = world;
    ctx.outer = &table;
    ctx.outer_rows = &all_rows_;
    ctx.effects = &world->effects(c);
    ctx.scratch = &scratch_;

    class_rules_.clear();
    for (const UpdateRule& r : program_->update_rules) {
      if (r.cls == c) class_rules_.push_back(&r);
    }
    if (class_rules_.empty()) continue;
    if (bufs_.size() < class_rules_.size()) {
      bufs_.resize(class_rules_.size());
    }

    // Compute all new values against the pre-update snapshot...
    for (size_t ri = 0; ri < class_rules_.size(); ++ri) {
      const UpdateRule& r = *class_rules_[ri];
      RuleBufs& p = bufs_[ri];
      const SglType& type =
          world->catalog().Get(c).state_field(r.state_field).type;
      if (type.is_number()) {
        EvalNum(*r.value, ctx, &p.nums);
      } else if (type.is_bool()) {
        EvalBool(*r.value, ctx, &p.bools);
      } else if (type.is_ref()) {
        EvalRef(*r.value, ctx, &p.refs);
      } else {
        // Set rules evaluate row-at-a-time into one flat CSR snapshot (the
        // evaluated sets alias table or effect storage, so they must be
        // staged before any write-back).
        ScalarContext sc;
        sc.world = world;
        sc.outer_cls = c;
        sc.effects = ctx.effects;
        p.set_elems.clear();
        p.set_offsets.clear();
        p.set_offsets.reserve(all_rows_.size() + 1);
        p.set_offsets.push_back(0);
        for (RowIdx row : all_rows_) {
          sc.outer_row = row;
          const EntitySet& v = EvalScalarSet(*r.value, sc);
          p.set_elems.insert(p.set_elems.end(), v.begin(), v.end());
          p.set_offsets.push_back(static_cast<uint32_t>(p.set_elems.size()));
        }
      }
    }
    // ... then commit them.
    for (size_t ri = 0; ri < class_rules_.size(); ++ri) {
      const UpdateRule& r = *class_rules_[ri];
      RuleBufs& p = bufs_[ri];
      const SglType& type =
          world->catalog().Get(c).state_field(r.state_field).type;
      if (type.is_number()) {
        NumberColumn col = table.Num(r.state_field);
        for (size_t i = 0; i < all_rows_.size(); ++i) {
          col.at(all_rows_[i]) = p.nums[i];
        }
      } else if (type.is_bool()) {
        uint8_t* col = table.BoolCol(r.state_field);
        for (size_t i = 0; i < all_rows_.size(); ++i) {
          col[all_rows_[i]] = p.bools[i];
        }
      } else if (type.is_ref()) {
        EntityId* col = table.RefCol(r.state_field);
        for (size_t i = 0; i < all_rows_.size(); ++i) {
          col[all_rows_[i]] = p.refs[i];
        }
      } else {
        EntitySet* col = table.SetCol(r.state_field);
        for (size_t i = 0; i < all_rows_.size(); ++i) {
          // Slices are sorted-unique (they came from EntitySets); assigning
          // reuses the destination row's buffer when it fits.
          col[all_rows_[i]].AssignSorted(
              p.set_elems.data() + p.set_offsets[i],
              p.set_offsets[i + 1] - p.set_offsets[i]);
        }
      }
    }
  }
}

}  // namespace sgl
