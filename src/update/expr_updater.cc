#include "src/update/expr_updater.h"

#include "src/ra/eval.h"

namespace sgl {

ExprUpdater::ExprUpdater(const CompiledProgram* program)
    : program_(program) {}

std::vector<std::pair<ClassId, FieldIdx>> ExprUpdater::OwnedFields() const {
  std::vector<std::pair<ClassId, FieldIdx>> out;
  for (const UpdateRule& r : program_->update_rules) {
    out.emplace_back(r.cls, r.state_field);
  }
  return out;
}

void ExprUpdater::Update(World* world, Tick tick) {
  (void)tick;
  // Group rules per class so each class gets one consistent snapshot pass.
  for (ClassId c = 0; c < world->catalog().num_classes(); ++c) {
    EntityTable& table = world->table(c);
    if (table.empty()) continue;
    std::vector<RowIdx> all_rows(table.size());
    for (size_t i = 0; i < table.size(); ++i) {
      all_rows[i] = static_cast<RowIdx>(i);
    }
    VecContext ctx;
    ctx.world = world;
    ctx.outer = &table;
    ctx.outer_rows = &all_rows;
    ctx.effects = &world->effects(c);

    // Compute all new values against the pre-update snapshot...
    struct Pending {
      const UpdateRule* rule;
      std::vector<double> nums;
      std::vector<uint8_t> bools;
      std::vector<EntityId> refs;
      std::vector<EntitySet> sets;
    };
    std::vector<Pending> pending;
    for (const UpdateRule& r : program_->update_rules) {
      if (r.cls != c) continue;
      Pending p;
      p.rule = &r;
      const SglType& type =
          world->catalog().Get(c).state_field(r.state_field).type;
      if (type.is_number()) {
        EvalNum(*r.value, ctx, &p.nums);
      } else if (type.is_bool()) {
        EvalBool(*r.value, ctx, &p.bools);
      } else if (type.is_ref()) {
        EvalRef(*r.value, ctx, &p.refs);
      } else {
        // Set rules evaluate row-at-a-time (sets are heavyweight values).
        ScalarContext sc;
        sc.world = world;
        sc.outer_cls = c;
        sc.effects = ctx.effects;
        p.sets.reserve(all_rows.size());
        for (RowIdx row : all_rows) {
          sc.outer_row = row;
          p.sets.push_back(EvalScalarSet(*r.value, sc));
        }
      }
      pending.push_back(std::move(p));
    }
    // ... then commit them.
    for (Pending& p : pending) {
      const SglType& type =
          world->catalog().Get(c).state_field(p.rule->state_field).type;
      if (type.is_number()) {
        NumberColumn col = table.Num(p.rule->state_field);
        for (size_t i = 0; i < all_rows.size(); ++i) {
          col.at(all_rows[i]) = p.nums[i];
        }
      } else if (type.is_bool()) {
        uint8_t* col = table.BoolCol(p.rule->state_field);
        for (size_t i = 0; i < all_rows.size(); ++i) {
          col[all_rows[i]] = p.bools[i];
        }
      } else if (type.is_ref()) {
        EntityId* col = table.RefCol(p.rule->state_field);
        for (size_t i = 0; i < all_rows.size(); ++i) {
          col[all_rows[i]] = p.refs[i];
        }
      } else {
        EntitySet* col = table.SetCol(p.rule->state_field);
        for (size_t i = 0; i < all_rows.size(); ++i) {
          col[all_rows[i]] = std::move(p.sets[i]);
        }
      }
    }
  }
}

}  // namespace sgl
