#include "src/update/update_component.h"

#include "src/common/bin_io.h"

namespace sgl {

Status ComponentRegistry::Register(Catalog* catalog,
                                   std::unique_ptr<UpdateComponent> comp) {
  for (const auto& [cls, field] : comp->OwnedFields()) {
    auto it = ownership_.find({cls, field});
    if (it != ownership_.end()) {
      const ClassDef& def = catalog->Get(cls);
      return Status::AlreadyExists(
          "state field '" + def.name() + "." + def.state_field(field).name +
          "' is already owned by component '" + it->second +
          "'; state must be strictly partitioned among update components");
    }
  }
  for (const auto& [cls, field] : comp->OwnedFields()) {
    ownership_[{cls, field}] = comp->name();
    catalog->GetMutable(cls)->mutable_state_field(field)->owner = comp->name();
  }
  components_.push_back(std::move(comp));
  return Status::OK();
}

void ComponentRegistry::RunAll(World* world, Tick tick) {
  for (auto& comp : components_) comp->Update(world, tick);
}

void ComponentRegistry::NotifyRestore() {
  for (auto& comp : components_) comp->OnRestore();
}

void ComponentRegistry::SerializeState(std::string* out) const {
  out->clear();
  std::string blob;
  for (const auto& comp : components_) {
    blob.clear();
    comp->SaveState(&blob);
    if (blob.empty()) continue;
    binio::AppendString(out, comp->name());
    binio::AppendString(out, blob);
  }
}

Status ComponentRegistry::RestoreState(const std::string& data) {
  const char* cur = data.data();
  const char* end = cur + data.size();
  // Parse the whole section before touching any component, so a corrupt
  // blob rejects cleanly with every cache still intact.
  std::vector<std::pair<std::string, std::string>> blobs;
  std::string name, blob;
  while (cur != end) {
    if (!binio::ReadString(&cur, end, &name) ||
        !binio::ReadString(&cur, end, &blob)) {
      return Status::InvalidArgument("component state: truncated section");
    }
    blobs.emplace_back(name, blob);
  }
  for (const auto& [comp_name, _] : blobs) {
    bool known = false;
    for (const auto& comp : components_) {
      if (comp->name() == comp_name) {
        known = true;
        break;
      }
    }
    if (!known) {
      return Status::InvalidArgument(
          "component state: unknown component '" + comp_name + "'");
    }
  }
  for (auto& comp : components_) {
    const std::string* saved = nullptr;
    for (const auto& [comp_name, comp_blob] : blobs) {
      if (comp->name() == comp_name) {
        saved = &comp_blob;
        break;
      }
    }
    if (saved == nullptr) {
      comp->OnRestore();  // no saved state: caches are from the wrong run
      continue;
    }
    Status status = comp->LoadState(saved->data(), saved->size());
    if (!status.ok()) comp->OnRestore();  // rejected blob: drop caches
  }
  return Status::OK();
}

std::string ComponentRegistry::OwnerOf(ClassId cls, FieldIdx field) const {
  auto it = ownership_.find({cls, field});
  return it == ownership_.end() ? "" : it->second;
}

}  // namespace sgl
