#include "src/update/update_component.h"

namespace sgl {

Status ComponentRegistry::Register(Catalog* catalog,
                                   std::unique_ptr<UpdateComponent> comp) {
  for (const auto& [cls, field] : comp->OwnedFields()) {
    auto it = ownership_.find({cls, field});
    if (it != ownership_.end()) {
      const ClassDef& def = catalog->Get(cls);
      return Status::AlreadyExists(
          "state field '" + def.name() + "." + def.state_field(field).name +
          "' is already owned by component '" + it->second +
          "'; state must be strictly partitioned among update components");
    }
  }
  for (const auto& [cls, field] : comp->OwnedFields()) {
    ownership_[{cls, field}] = comp->name();
    catalog->GetMutable(cls)->mutable_state_field(field)->owner = comp->name();
  }
  components_.push_back(std::move(comp));
  return Status::OK();
}

void ComponentRegistry::RunAll(World* world, Tick tick) {
  for (auto& comp : components_) comp->Update(world, tick);
}

void ComponentRegistry::NotifyRestore() {
  for (auto& comp : components_) comp->OnRestore();
}

std::string ComponentRegistry::OwnerOf(ClassId cls, FieldIdx field) const {
  auto it = ownership_.find({cls, field});
  return it == ownership_.end() ? "" : it->second;
}

}  // namespace sgl
