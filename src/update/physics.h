// Deterministic 2-D physics update component (§2.2).
//
// The paper's motivating example of a non-scriptable update component:
// "most games include a dedicated physics engine ... the output of the
// physics engine often does not correspond exactly to the effect assignments
// of any individual script." This component owns a class's x/y/vx/vy,
// integrates script force intents (effect fields), detects collisions with a
// uniform-grid broad phase, and separates overlapping circles — so the
// final position can legitimately differ from what any script intended.
// The override counter quantifies exactly that divergence (bench E9).

#ifndef SGL_UPDATE_PHYSICS_H_
#define SGL_UPDATE_PHYSICS_H_

#include <memory>
#include <string>
#include <vector>

#include "src/update/update_component.h"

namespace sgl {

/// Field bindings and world parameters for one PhysicsComponent.
struct PhysicsConfig {
  std::string cls;             ///< class to simulate
  std::string x = "x", y = "y";
  std::string vx = "vx", vy = "vy";
  /// Effect fields carrying per-tick force/acceleration intents. Unassigned
  /// entities coast.
  std::string fx = "fx", fy = "fy";
  /// Optional numeric state field giving per-entity radius; empty uses
  /// `default_radius`.
  std::string radius;
  double default_radius = 0.5;
  double max_speed = 10.0;
  double damping = 1.0;        ///< velocity retained per tick (1 = none lost)
  double min_x = 0, min_y = 0, max_x = 1000, max_y = 1000;
  double restitution = 0.5;    ///< velocity bounce factor at walls
  bool resolve_collisions = true;
  int solver_iterations = 2;   ///< separation passes per tick
};

/// Counters exposed for tests and bench E9.
struct PhysicsStats {
  int64_t collision_pairs = 0;   ///< overlapping pairs separated
  int64_t position_overrides = 0;  ///< entities whose integrated position
                                   ///< was changed by collision/bounds
};

class PhysicsComponent : public UpdateComponent {
 public:
  /// Validates field names/types against the catalog.
  static StatusOr<std::unique_ptr<PhysicsComponent>> Create(
      const Catalog& catalog, const PhysicsConfig& config);

  const std::string& name() const override { return name_; }
  std::vector<std::pair<ClassId, FieldIdx>> OwnedFields() const override;
  void Update(World* world, Tick tick) override;

  const PhysicsStats& total() const { return total_; }
  const PhysicsStats& last_tick() const { return last_tick_; }

 private:
  PhysicsComponent() = default;

  std::string name_ = "physics";
  PhysicsConfig config_;
  ClassId cls_ = kInvalidClass;
  FieldIdx x_ = kInvalidField, y_ = kInvalidField;
  FieldIdx vx_ = kInvalidField, vy_ = kInvalidField;
  FieldIdx fx_ = kInvalidField, fy_ = kInvalidField;  // effect fields
  FieldIdx radius_ = kInvalidField;
  PhysicsStats total_;
  PhysicsStats last_tick_;
};

}  // namespace sgl

#endif  // SGL_UPDATE_PHYSICS_H_
