// Bytecode execution over column spans.
//
// Programs run against the same VecContext the tree-walking evaluator uses,
// so both backends read identical columns and produce bit-identical lanes.
// Differences are purely mechanical:
//
//   * Registers are per-worker column buffers with high-water reuse
//     (VmRegisters lives in ExecScratch) — steady-state execution performs
//     zero heap allocations.
//   * A selection vector of span positions restricts evaluation to active
//     lanes. Value-mode callers may pass one (e.g. guard survivors); filter
//     programs build and shrink one as kFilter* conjuncts apply, so each
//     conjunct after the first touches only surviving lanes.
//   * Uniform tracking: with `uniform_outer` set (join chunks where every
//     lane shares one outer row), outer-side loads produce a scalar, and
//     arithmetic over uniform operands stays scalar. A filter comparing a
//     gathered inner column against a uniform bound is a single fused
//     compare-compact pass. Lanes are materialized lazily only when a
//     kernel mixes uniform and per-lane operands.
//
// FP parity with the tree walker holds because every kernel is elementwise
// over the same lanes with the same guarded semantics (src/ra/numeric.h),
// selection restriction only removes lanes whose values are never consumed,
// and uniform evaluation computes the identical expression once instead of
// n times.

#ifndef SGL_VM_VM_H_
#define SGL_VM_VM_H_

#include <vector>

#include "src/ra/eval.h"
#include "src/vm/bytecode.h"

namespace sgl {

/// Per-worker register files. Column storage keeps its high-water capacity
/// across programs and ticks; sizing for a program is amortized resizes
/// only. Not thread-safe — one per ExecScratch.
struct VmRegisters {
  std::vector<std::vector<double>> num;
  std::vector<std::vector<uint8_t>> bools;
  std::vector<std::vector<EntityId>> refs;
  // Per-run pointer tables and uniform bookkeeping (see vm.cc).
  std::vector<double*> num_ptr;
  std::vector<uint8_t*> bool_ptr;
  std::vector<EntityId*> ref_ptr;
  std::vector<uint8_t> num_uni, bool_uni, ref_uni;
  std::vector<double> num_val;
  std::vector<uint8_t> bool_val;
  std::vector<EntityId> ref_val;
  /// Longest span this register file has ever run. Columns are sized to the
  /// high-water span, not the current one: the same file serves programs on
  /// different spans (full extents, growing survivor selections), and sizing
  /// each column only to the spans *it* happens to see would keep paying
  /// amortized growth long after the worker's widest span stabilized.
  size_t span_high = 0;
};

// Value-mode execution: evaluates `p` over ctx's span and leaves the result
// in `out` (resized to the span length). When `sel` is non-null, only the
// `cnt` listed span positions are computed — other lanes of `out` are
// unspecified. `p.result_kind` must match the overload.
void VmEvalNum(const VmProgram& p, const VecContext& ctx, VmRegisters* regs,
               const RowIdx* sel, size_t cnt, std::vector<double>* out);
void VmEvalBool(const VmProgram& p, const VecContext& ctx, VmRegisters* regs,
                const RowIdx* sel, size_t cnt, std::vector<uint8_t>* out);
void VmEvalRef(const VmProgram& p, const VecContext& ctx, VmRegisters* regs,
               const RowIdx* sel, size_t cnt, std::vector<EntityId>* out);

/// Filter-mode execution: runs `p`'s fused conjunct chain over ctx's span
/// and fills `sel` with the surviving span positions, ascending. Returns
/// the survivor count (sel's leading entries; its size is amortized, not
/// trimmed). With `uniform_outer` set the caller asserts every lane shares
/// outer row (*ctx.outer_rows)[0]; outer-side loads then read only that
/// element (the rest of the outer-row vector may be garbage) and evaluate
/// once instead of per lane.
size_t VmRunFilter(const VmProgram& p, const VecContext& ctx,
                   VmRegisters* regs, bool uniform_outer,
                   std::vector<RowIdx>* sel);

}  // namespace sgl

#endif  // SGL_VM_VM_H_
