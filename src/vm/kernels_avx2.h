// AVX2 implementations of the VM kernel table.
//
// Every function carries __attribute__((target("avx2"))) so the file
// compiles without a global -mavx2 and the binary still boots on older
// x86-64; GetVmKernels() only hands this table out when the CPU reports
// AVX2 (src/common/cpu_features.h).
//
// Bit-exactness contract (differentially pinned by tests/kernels_test.cc
// against kernels_scalar.h, including NaN / ±inf / ±0 / denormal lanes):
//
//   * GuardedDiv  b==0 ? 0 : a/b    -> andnot(cmp(b,0,EQ_OQ), div(a,b))
//   * GuardedSqrt a<=0 ? 0 : sqrt(a)-> andnot(cmp(a,0,LE_OQ), sqrt(a));
//     NaN input: LE_OQ is false on unordered, so the lane keeps sqrt(NaN)
//     = NaN, exactly like the scalar guard.
//   * kMin a<b?a:b == MINPD(a,b), kMax a>b?a:b == MAXPD(a,b): the x86
//     min/max "return SRC2 on NaN or equal" rule is literally the ternary.
//   * ApplyClamp min(max(v,lo),hi) -> min_pd(hi, max_pd(lo, v)) — operand
//     order matters: std::max(v,lo) returns v on ties (incl. ±0), which is
//     MAXPD's SRC2, hence max_pd(lo, v); likewise min_pd(hi, x).
//   * != uses _CMP_NEQ_UQ (true on unordered) to match C++ !=; all other
//     predicates use ordered-quiet (_CMP_*_OQ), false on NaN.
//   * fmod / pow stay scalar libm in BOTH tables (kernels.cc wires the
//     scalar functions into this table), so there is nothing to match.
//   * No FMA, no reassociation: each lane executes the same single-rounded
//     IEEE ops as the scalar loop, just four lanes at a time.
//
// Filter kernels compact with movemask + a 16-entry byte-shuffle LUT:
// compare 4 lanes, movemask_pd gives a 4-bit keep mask, _mm_shuffle_epi8
// packs the surviving 32-bit row indices to the front, popcount advances
// the output cursor. 16-byte stores past the logical end are safe: the
// caller's buffers hold >= n entries and out+m+3 < n always (m <= i).
// Sel-shaped kernels gather lanes with vgatherdps-style i32gather and may
// compact in place (indices are loaded before the store, m <= k).
//
// Included only by kernels.cc, and only when SGL_KERNELS_AVX2.

#ifndef SGL_VM_KERNELS_AVX2_H_
#define SGL_VM_KERNELS_AVX2_H_

#include <immintrin.h>

#include <cmath>
#include <cstddef>
#include <cstdint>

#include "src/common/types.h"
#include "src/ra/numeric.h"
#include "src/vm/kernels.h"

#define SGL_AVX2 __attribute__((target("avx2"))) inline

namespace sgl {
namespace vmka {

// Shuffle controls: entry m packs the 4-byte groups of the set bits of m
// to the front; unused output bytes are 0x80 (shuffle writes zero).
struct CompactLut {
  alignas(16) uint8_t b[16][16];
  constexpr CompactLut() : b() {
    for (int m = 0; m < 16; ++m) {
      int o = 0;
      for (int j = 0; j < 4; ++j) {
        if ((m >> j) & 1) {
          for (int t = 0; t < 4; ++t)
            b[m][o * 4 + t] = static_cast<uint8_t>(j * 4 + t);
          ++o;
        }
      }
      for (; o < 4; ++o)
        for (int t = 0; t < 4; ++t) b[m][o * 4 + t] = 0x80;
    }
  }
};
inline constexpr CompactLut kCompactLut{};

// Byte-mask expansion: nibble mask -> 4 bytes of 0/1, little-endian.
struct BoolLut {
  uint32_t v[16];
  constexpr BoolLut() : v() {
    for (int m = 0; m < 16; ++m)
      v[m] = static_cast<uint32_t>(((m >> 0) & 1) | (((m >> 1) & 1) << 8) |
                                   (((m >> 2) & 1) << 16) |
                                   (((m >> 3) & 1) << 24));
  }
};
inline constexpr BoolLut kBoolLut{};

SGL_AVX2 void Fill(double* d, double v, size_t n) {
  const __m256d s = _mm256_set1_pd(v);
  size_t i = 0;
  const size_t n4 = n & ~size_t(3);
  for (; i < n4; i += 4) _mm256_storeu_pd(d + i, s);
  if (n4) AddSimdLanes(n4);
  for (; i < n; ++i) d[i] = v;
}

// VEXPR sees __m256d a, b; SEXPR sees doubles av, bv (the scalar tail must
// be the exact scalar-table expression).
#define SGL_AX_BIN(NAME, VEXPR, SEXPR)                                      \
  SGL_AVX2 void NAME(const double* pa, const double* pb, double* d,         \
                     size_t n) {                                            \
    size_t i = 0;                                                           \
    const size_t n4 = n & ~size_t(3);                                       \
    for (; i < n4; i += 4) {                                                \
      const __m256d a = _mm256_loadu_pd(pa + i);                            \
      const __m256d b = _mm256_loadu_pd(pb + i);                            \
      _mm256_storeu_pd(d + i, (VEXPR));                                     \
    }                                                                       \
    if (n4) AddSimdLanes(n4);                                               \
    for (; i < n; ++i) {                                                    \
      const double av = pa[i], bv = pb[i];                                  \
      d[i] = (SEXPR);                                                       \
    }                                                                       \
  }                                                                         \
  SGL_AVX2 void NAME##Sel(const double* pa, const double* pb, double* d,    \
                          const RowIdx* sel, size_t cnt) {                  \
    size_t k = 0;                                                           \
    const size_t c4 = cnt & ~size_t(3);                                     \
    double tmp[4];                                                          \
    for (; k < c4; k += 4) {                                                \
      const __m128i idx =                                                   \
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(sel + k));       \
      const __m256d a = _mm256_i32gather_pd(pa, idx, 8);                    \
      const __m256d b = _mm256_i32gather_pd(pb, idx, 8);                    \
      _mm256_storeu_pd(tmp, (VEXPR));                                       \
      d[sel[k]] = tmp[0];                                                   \
      d[sel[k + 1]] = tmp[1];                                               \
      d[sel[k + 2]] = tmp[2];                                               \
      d[sel[k + 3]] = tmp[3];                                               \
    }                                                                       \
    if (c4) AddSimdLanes(c4);                                               \
    for (; k < cnt; ++k) {                                                  \
      const size_t i = sel[k];                                              \
      const double av = pa[i], bv = pb[i];                                  \
      d[i] = (SEXPR);                                                       \
    }                                                                       \
  }

SGL_AX_BIN(Add, _mm256_add_pd(a, b), av + bv)
SGL_AX_BIN(Sub, _mm256_sub_pd(a, b), av - bv)
SGL_AX_BIN(Mul, _mm256_mul_pd(a, b), av * bv)
SGL_AX_BIN(Div,
           _mm256_andnot_pd(
               _mm256_cmp_pd(b, _mm256_setzero_pd(), _CMP_EQ_OQ),
               _mm256_div_pd(a, b)),
           GuardedDiv(av, bv))
SGL_AX_BIN(Min, _mm256_min_pd(a, b), av < bv ? av : bv)
SGL_AX_BIN(Max, _mm256_max_pd(a, b), av > bv ? av : bv)
#undef SGL_AX_BIN

#define SGL_AX_UN(NAME, VEXPR, SEXPR)                                       \
  SGL_AVX2 void NAME(const double* pa, double* d, size_t n) {               \
    size_t i = 0;                                                           \
    const size_t n4 = n & ~size_t(3);                                       \
    for (; i < n4; i += 4) {                                                \
      const __m256d a = _mm256_loadu_pd(pa + i);                            \
      _mm256_storeu_pd(d + i, (VEXPR));                                     \
    }                                                                       \
    if (n4) AddSimdLanes(n4);                                               \
    for (; i < n; ++i) {                                                    \
      const double av = pa[i];                                              \
      d[i] = (SEXPR);                                                       \
    }                                                                       \
  }                                                                         \
  SGL_AVX2 void NAME##Sel(const double* pa, double* d, const RowIdx* sel,   \
                          size_t cnt) {                                     \
    size_t k = 0;                                                           \
    const size_t c4 = cnt & ~size_t(3);                                     \
    double tmp[4];                                                          \
    for (; k < c4; k += 4) {                                                \
      const __m128i idx =                                                   \
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(sel + k));       \
      const __m256d a = _mm256_i32gather_pd(pa, idx, 8);                    \
      _mm256_storeu_pd(tmp, (VEXPR));                                       \
      d[sel[k]] = tmp[0];                                                   \
      d[sel[k + 1]] = tmp[1];                                               \
      d[sel[k + 2]] = tmp[2];                                               \
      d[sel[k + 3]] = tmp[3];                                               \
    }                                                                       \
    if (c4) AddSimdLanes(c4);                                               \
    for (; k < cnt; ++k) {                                                  \
      const double av = pa[sel[k]];                                         \
      d[sel[k]] = (SEXPR);                                                  \
    }                                                                       \
  }

SGL_AX_UN(Neg, _mm256_xor_pd(a, _mm256_set1_pd(-0.0)), -av)
SGL_AX_UN(Abs, _mm256_andnot_pd(_mm256_set1_pd(-0.0), a), std::fabs(av))
SGL_AX_UN(Sqrt,
          _mm256_andnot_pd(
              _mm256_cmp_pd(a, _mm256_setzero_pd(), _CMP_LE_OQ),
              _mm256_sqrt_pd(a)),
          GuardedSqrt(av))
SGL_AX_UN(Floor, _mm256_round_pd(a, _MM_FROUND_TO_NEG_INF | _MM_FROUND_NO_EXC),
          std::floor(av))
SGL_AX_UN(Ceil, _mm256_round_pd(a, _MM_FROUND_TO_POS_INF | _MM_FROUND_NO_EXC),
          std::ceil(av))
#undef SGL_AX_UN

SGL_AVX2 void Clamp(const double* v, const double* lo, const double* hi,
                    double* d, size_t n) {
  size_t i = 0;
  const size_t n4 = n & ~size_t(3);
  for (; i < n4; i += 4) {
    const __m256d vv = _mm256_loadu_pd(v + i);
    const __m256d vl = _mm256_loadu_pd(lo + i);
    const __m256d vh = _mm256_loadu_pd(hi + i);
    _mm256_storeu_pd(d + i, _mm256_min_pd(vh, _mm256_max_pd(vl, vv)));
  }
  if (n4) AddSimdLanes(n4);
  for (; i < n; ++i) d[i] = ApplyClamp(v[i], lo[i], hi[i]);
}

SGL_AVX2 void ClampSel(const double* v, const double* lo, const double* hi,
                       double* d, const RowIdx* sel, size_t cnt) {
  size_t k = 0;
  const size_t c4 = cnt & ~size_t(3);
  double tmp[4];
  for (; k < c4; k += 4) {
    const __m128i idx =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(sel + k));
    const __m256d vv = _mm256_i32gather_pd(v, idx, 8);
    const __m256d vl = _mm256_i32gather_pd(lo, idx, 8);
    const __m256d vh = _mm256_i32gather_pd(hi, idx, 8);
    _mm256_storeu_pd(tmp, _mm256_min_pd(vh, _mm256_max_pd(vl, vv)));
    d[sel[k]] = tmp[0];
    d[sel[k + 1]] = tmp[1];
    d[sel[k + 2]] = tmp[2];
    d[sel[k + 3]] = tmp[3];
  }
  if (c4) AddSimdLanes(c4);
  for (; k < cnt; ++k) {
    const size_t i = sel[k];
    d[i] = ApplyClamp(v[i], lo[i], hi[i]);
  }
}

// IMM is the AVX comparison predicate immediate, OP the C++ operator for
// tails. One macro stamps the byte-mask compares and all six fused filter
// shapes for a predicate.
#define SGL_AX_CMP(NAME, IMM, OP)                                           \
  SGL_AVX2 void Cmp##NAME(const double* pa, const double* pb, uint8_t* d,   \
                          size_t n) {                                       \
    size_t i = 0;                                                           \
    const size_t n4 = n & ~size_t(3);                                       \
    for (; i < n4; i += 4) {                                                \
      const __m256d a = _mm256_loadu_pd(pa + i);                            \
      const __m256d b = _mm256_loadu_pd(pb + i);                            \
      const int mask = _mm256_movemask_pd(_mm256_cmp_pd(a, b, IMM));        \
      const uint32_t bytes = kBoolLut.v[mask];                              \
      __builtin_memcpy(d + i, &bytes, 4);                                   \
    }                                                                       \
    if (n4) AddSimdLanes(n4);                                               \
    for (; i < n; ++i) d[i] = (pa[i] OP pb[i]) ? 1 : 0;                     \
  }                                                                         \
  SGL_AVX2 void Cmp##NAME##Sel(const double* pa, const double* pb,          \
                               uint8_t* d, const RowIdx* sel, size_t cnt) { \
    for (size_t k = 0; k < cnt; ++k) {                                      \
      const size_t i = sel[k];                                              \
      d[i] = (pa[i] OP pb[i]) ? 1 : 0;                                      \
    }                                                                       \
  }                                                                         \
  SGL_AVX2 size_t Filter##NAME##IotaVV(const double* pa, const double* pb,  \
                                       RowIdx* out, size_t n) {             \
    size_t m = 0, i = 0;                                                    \
    const size_t n4 = n & ~size_t(3);                                       \
    const __m128i iota = _mm_set_epi32(3, 2, 1, 0);                         \
    for (; i < n4; i += 4) {                                                \
      const __m256d a = _mm256_loadu_pd(pa + i);                            \
      const __m256d b = _mm256_loadu_pd(pb + i);                            \
      const int mask = _mm256_movemask_pd(_mm256_cmp_pd(a, b, IMM));        \
      const __m128i base =                                                  \
          _mm_add_epi32(_mm_set1_epi32(static_cast<int>(i)), iota);         \
      const __m128i ctrl = _mm_load_si128(                                  \
          reinterpret_cast<const __m128i*>(kCompactLut.b[mask]));           \
      _mm_storeu_si128(reinterpret_cast<__m128i*>(out + m),                 \
                       _mm_shuffle_epi8(base, ctrl));                       \
      m += static_cast<size_t>(__builtin_popcount(                          \
          static_cast<unsigned>(mask)));                                    \
    }                                                                       \
    if (n4) AddSimdLanes(n4);                                               \
    for (; i < n; ++i) {                                                    \
      out[m] = static_cast<RowIdx>(i);                                      \
      m += (pa[i] OP pb[i]) ? 1 : 0;                                        \
    }                                                                       \
    return m;                                                               \
  }                                                                         \
  SGL_AVX2 size_t Filter##NAME##IotaVS(const double* pa, double vb,         \
                                       RowIdx* out, size_t n) {             \
    size_t m = 0, i = 0;                                                    \
    const size_t n4 = n & ~size_t(3);                                       \
    const __m128i iota = _mm_set_epi32(3, 2, 1, 0);                         \
    const __m256d b = _mm256_set1_pd(vb);                                   \
    for (; i < n4; i += 4) {                                                \
      const __m256d a = _mm256_loadu_pd(pa + i);                            \
      const int mask = _mm256_movemask_pd(_mm256_cmp_pd(a, b, IMM));        \
      const __m128i base =                                                  \
          _mm_add_epi32(_mm_set1_epi32(static_cast<int>(i)), iota);         \
      const __m128i ctrl = _mm_load_si128(                                  \
          reinterpret_cast<const __m128i*>(kCompactLut.b[mask]));           \
      _mm_storeu_si128(reinterpret_cast<__m128i*>(out + m),                 \
                       _mm_shuffle_epi8(base, ctrl));                       \
      m += static_cast<size_t>(__builtin_popcount(                          \
          static_cast<unsigned>(mask)));                                    \
    }                                                                       \
    if (n4) AddSimdLanes(n4);                                               \
    for (; i < n; ++i) {                                                    \
      out[m] = static_cast<RowIdx>(i);                                      \
      m += (pa[i] OP vb) ? 1 : 0;                                           \
    }                                                                       \
    return m;                                                               \
  }                                                                         \
  SGL_AVX2 size_t Filter##NAME##IotaSV(double va, const double* pb,         \
                                       RowIdx* out, size_t n) {             \
    size_t m = 0, i = 0;                                                    \
    const size_t n4 = n & ~size_t(3);                                       \
    const __m128i iota = _mm_set_epi32(3, 2, 1, 0);                         \
    const __m256d a = _mm256_set1_pd(va);                                   \
    for (; i < n4; i += 4) {                                                \
      const __m256d b = _mm256_loadu_pd(pb + i);                            \
      const int mask = _mm256_movemask_pd(_mm256_cmp_pd(a, b, IMM));        \
      const __m128i base =                                                  \
          _mm_add_epi32(_mm_set1_epi32(static_cast<int>(i)), iota);         \
      const __m128i ctrl = _mm_load_si128(                                  \
          reinterpret_cast<const __m128i*>(kCompactLut.b[mask]));           \
      _mm_storeu_si128(reinterpret_cast<__m128i*>(out + m),                 \
                       _mm_shuffle_epi8(base, ctrl));                       \
      m += static_cast<size_t>(__builtin_popcount(                          \
          static_cast<unsigned>(mask)));                                    \
    }                                                                       \
    if (n4) AddSimdLanes(n4);                                               \
    for (; i < n; ++i) {                                                    \
      out[m] = static_cast<RowIdx>(i);                                      \
      m += (va OP pb[i]) ? 1 : 0;                                           \
    }                                                                       \
    return m;                                                               \
  }                                                                         \
  SGL_AVX2 size_t Filter##NAME##SelVV(const double* pa, const double* pb,   \
                                      const RowIdx* sel, size_t cnt,        \
                                      RowIdx* out) {                        \
    size_t m = 0, k = 0;                                                    \
    const size_t c4 = cnt & ~size_t(3);                                     \
    for (; k < c4; k += 4) {                                                \
      const __m128i idx =                                                   \
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(sel + k));       \
      const __m256d a = _mm256_i32gather_pd(pa, idx, 8);                    \
      const __m256d b = _mm256_i32gather_pd(pb, idx, 8);                    \
      const int mask = _mm256_movemask_pd(_mm256_cmp_pd(a, b, IMM));        \
      const __m128i ctrl = _mm_load_si128(                                  \
          reinterpret_cast<const __m128i*>(kCompactLut.b[mask]));           \
      _mm_storeu_si128(reinterpret_cast<__m128i*>(out + m),                 \
                       _mm_shuffle_epi8(idx, ctrl));                        \
      m += static_cast<size_t>(__builtin_popcount(                          \
          static_cast<unsigned>(mask)));                                    \
    }                                                                       \
    if (c4) AddSimdLanes(c4);                                               \
    for (; k < cnt; ++k) {                                                  \
      const RowIdx i = sel[k];                                              \
      out[m] = i;                                                           \
      m += (pa[i] OP pb[i]) ? 1 : 0;                                        \
    }                                                                       \
    return m;                                                               \
  }                                                                         \
  SGL_AVX2 size_t Filter##NAME##SelVS(const double* pa, double vb,          \
                                      const RowIdx* sel, size_t cnt,        \
                                      RowIdx* out) {                        \
    size_t m = 0, k = 0;                                                    \
    const size_t c4 = cnt & ~size_t(3);                                     \
    const __m256d b = _mm256_set1_pd(vb);                                   \
    for (; k < c4; k += 4) {                                                \
      const __m128i idx =                                                   \
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(sel + k));       \
      const __m256d a = _mm256_i32gather_pd(pa, idx, 8);                    \
      const int mask = _mm256_movemask_pd(_mm256_cmp_pd(a, b, IMM));        \
      const __m128i ctrl = _mm_load_si128(                                  \
          reinterpret_cast<const __m128i*>(kCompactLut.b[mask]));           \
      _mm_storeu_si128(reinterpret_cast<__m128i*>(out + m),                 \
                       _mm_shuffle_epi8(idx, ctrl));                        \
      m += static_cast<size_t>(__builtin_popcount(                          \
          static_cast<unsigned>(mask)));                                    \
    }                                                                       \
    if (c4) AddSimdLanes(c4);                                               \
    for (; k < cnt; ++k) {                                                  \
      const RowIdx i = sel[k];                                              \
      out[m] = i;                                                           \
      m += (pa[i] OP vb) ? 1 : 0;                                           \
    }                                                                       \
    return m;                                                               \
  }                                                                         \
  SGL_AVX2 size_t Filter##NAME##SelSV(double va, const double* pb,          \
                                      const RowIdx* sel, size_t cnt,        \
                                      RowIdx* out) {                        \
    size_t m = 0, k = 0;                                                    \
    const size_t c4 = cnt & ~size_t(3);                                     \
    const __m256d a = _mm256_set1_pd(va);                                   \
    for (; k < c4; k += 4) {                                                \
      const __m128i idx =                                                   \
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(sel + k));       \
      const __m256d b = _mm256_i32gather_pd(pb, idx, 8);                    \
      const int mask = _mm256_movemask_pd(_mm256_cmp_pd(a, b, IMM));        \
      const __m128i ctrl = _mm_load_si128(                                  \
          reinterpret_cast<const __m128i*>(kCompactLut.b[mask]));           \
      _mm_storeu_si128(reinterpret_cast<__m128i*>(out + m),                 \
                       _mm_shuffle_epi8(idx, ctrl));                        \
      m += static_cast<size_t>(__builtin_popcount(                          \
          static_cast<unsigned>(mask)));                                    \
    }                                                                       \
    if (c4) AddSimdLanes(c4);                                               \
    for (; k < cnt; ++k) {                                                  \
      const RowIdx i = sel[k];                                              \
      out[m] = i;                                                           \
      m += (va OP pb[i]) ? 1 : 0;                                           \
    }                                                                       \
    return m;                                                               \
  }

SGL_AX_CMP(Lt, _CMP_LT_OQ, <)
SGL_AX_CMP(Le, _CMP_LE_OQ, <=)
SGL_AX_CMP(Gt, _CMP_GT_OQ, >)
SGL_AX_CMP(Ge, _CMP_GE_OQ, >=)
SGL_AX_CMP(Eq, _CMP_EQ_OQ, ==)
SGL_AX_CMP(Ne, _CMP_NEQ_UQ, !=)
#undef SGL_AX_CMP

// Batched probe filter. keep = ~(v < lo | v > hi) per dim — the negated
// form keeps NaN coordinates, matching GridIndex::Query exactly.
SGL_AVX2 size_t RangeFilter(const RowIdx* items, size_t n,
                            const double* const* coords, int dims,
                            const double* lo, const double* hi, RowIdx* out) {
  size_t m = 0, t = 0;
  const size_t n4 = n & ~size_t(3);
  for (; t < n4; t += 4) {
    const __m128i idx =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(items + t));
    __m256d keep = _mm256_castsi256_pd(_mm256_set1_epi64x(-1));
    for (int k = 0; k < dims; ++k) {
      const __m256d v = _mm256_i32gather_pd(coords[k], idx, 8);
      const __m256d excl = _mm256_or_pd(
          _mm256_cmp_pd(v, _mm256_set1_pd(lo[k]), _CMP_LT_OQ),
          _mm256_cmp_pd(v, _mm256_set1_pd(hi[k]), _CMP_GT_OQ));
      keep = _mm256_andnot_pd(excl, keep);
    }
    const int mask = _mm256_movemask_pd(keep);
    const __m128i ctrl =
        _mm_load_si128(reinterpret_cast<const __m128i*>(kCompactLut.b[mask]));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + m),
                     _mm_shuffle_epi8(idx, ctrl));
    m += static_cast<size_t>(__builtin_popcount(static_cast<unsigned>(mask)));
  }
  if (n4) AddSimdLanes(n4);
  for (; t < n; ++t) {
    const RowIdx p = items[t];
    bool inside = true;
    for (int k = 0; k < dims; ++k) {
      const double v = coords[k][p];
      if (v < lo[k] || v > hi[k]) {
        inside = false;
        break;
      }
    }
    out[m] = p;
    m += inside ? 1 : 0;
  }
  return m;
}

}  // namespace vmka
}  // namespace sgl

#undef SGL_AVX2

#endif  // SGL_VM_KERNELS_AVX2_H_
