#include "src/vm/kernels.h"

#include "src/vm/kernels_scalar.h"
#if SGL_KERNELS_AVX2
#include "src/vm/kernels_avx2.h"
#endif

namespace sgl {

namespace vm_internal {
std::atomic<int64_t> g_simd_lanes{0};
}  // namespace vm_internal

namespace {

// Fills one table from a kernel namespace. fmod/pow have no vector form, so
// the AVX2 table reuses the scalar libm loops for those two slots — both
// tables call the identical function, trivially bit-identical.
#define SGL_FILL_TABLE(t, NS)                       \
  do {                                              \
    (t).fill = NS::Fill;                            \
    (t).bin[kKerAdd] = NS::Add;                     \
    (t).bin[kKerSub] = NS::Sub;                     \
    (t).bin[kKerMul] = NS::Mul;                     \
    (t).bin[kKerDiv] = NS::Div;                     \
    (t).bin[kKerMod] = vmks::Mod;                   \
    (t).bin[kKerMin] = NS::Min;                     \
    (t).bin[kKerMax] = NS::Max;                     \
    (t).bin[kKerPow] = vmks::Pow;                   \
    (t).bin_sel[kKerAdd] = NS::AddSel;              \
    (t).bin_sel[kKerSub] = NS::SubSel;              \
    (t).bin_sel[kKerMul] = NS::MulSel;              \
    (t).bin_sel[kKerDiv] = NS::DivSel;              \
    (t).bin_sel[kKerMod] = vmks::ModSel;            \
    (t).bin_sel[kKerMin] = NS::MinSel;              \
    (t).bin_sel[kKerMax] = NS::MaxSel;              \
    (t).bin_sel[kKerPow] = vmks::PowSel;            \
    (t).un[kKerNeg] = NS::Neg;                      \
    (t).un[kKerAbs] = NS::Abs;                      \
    (t).un[kKerSqrt] = NS::Sqrt;                    \
    (t).un[kKerFloor] = NS::Floor;                  \
    (t).un[kKerCeil] = NS::Ceil;                    \
    (t).un_sel[kKerNeg] = NS::NegSel;               \
    (t).un_sel[kKerAbs] = NS::AbsSel;               \
    (t).un_sel[kKerSqrt] = NS::SqrtSel;             \
    (t).un_sel[kKerFloor] = NS::FloorSel;           \
    (t).un_sel[kKerCeil] = NS::CeilSel;             \
    (t).clamp = NS::Clamp;                          \
    (t).clamp_sel = NS::ClampSel;                   \
    (t).cmp[kKerLt] = NS::CmpLt;                    \
    (t).cmp[kKerLe] = NS::CmpLe;                    \
    (t).cmp[kKerGt] = NS::CmpGt;                    \
    (t).cmp[kKerGe] = NS::CmpGe;                    \
    (t).cmp[kKerEq] = NS::CmpEq;                    \
    (t).cmp[kKerNe] = NS::CmpNe;                    \
    (t).cmp_sel[kKerLt] = NS::CmpLtSel;             \
    (t).cmp_sel[kKerLe] = NS::CmpLeSel;             \
    (t).cmp_sel[kKerGt] = NS::CmpGtSel;             \
    (t).cmp_sel[kKerGe] = NS::CmpGeSel;             \
    (t).cmp_sel[kKerEq] = NS::CmpEqSel;             \
    (t).cmp_sel[kKerNe] = NS::CmpNeSel;             \
    (t).f_iota_vv[kKerLt] = NS::FilterLtIotaVV;     \
    (t).f_iota_vv[kKerLe] = NS::FilterLeIotaVV;     \
    (t).f_iota_vv[kKerGt] = NS::FilterGtIotaVV;     \
    (t).f_iota_vv[kKerGe] = NS::FilterGeIotaVV;     \
    (t).f_iota_vv[kKerEq] = NS::FilterEqIotaVV;     \
    (t).f_iota_vv[kKerNe] = NS::FilterNeIotaVV;     \
    (t).f_iota_vs[kKerLt] = NS::FilterLtIotaVS;     \
    (t).f_iota_vs[kKerLe] = NS::FilterLeIotaVS;     \
    (t).f_iota_vs[kKerGt] = NS::FilterGtIotaVS;     \
    (t).f_iota_vs[kKerGe] = NS::FilterGeIotaVS;     \
    (t).f_iota_vs[kKerEq] = NS::FilterEqIotaVS;     \
    (t).f_iota_vs[kKerNe] = NS::FilterNeIotaVS;     \
    (t).f_iota_sv[kKerLt] = NS::FilterLtIotaSV;     \
    (t).f_iota_sv[kKerLe] = NS::FilterLeIotaSV;     \
    (t).f_iota_sv[kKerGt] = NS::FilterGtIotaSV;     \
    (t).f_iota_sv[kKerGe] = NS::FilterGeIotaSV;     \
    (t).f_iota_sv[kKerEq] = NS::FilterEqIotaSV;     \
    (t).f_iota_sv[kKerNe] = NS::FilterNeIotaSV;     \
    (t).f_sel_vv[kKerLt] = NS::FilterLtSelVV;       \
    (t).f_sel_vv[kKerLe] = NS::FilterLeSelVV;       \
    (t).f_sel_vv[kKerGt] = NS::FilterGtSelVV;       \
    (t).f_sel_vv[kKerGe] = NS::FilterGeSelVV;       \
    (t).f_sel_vv[kKerEq] = NS::FilterEqSelVV;       \
    (t).f_sel_vv[kKerNe] = NS::FilterNeSelVV;       \
    (t).f_sel_vs[kKerLt] = NS::FilterLtSelVS;       \
    (t).f_sel_vs[kKerLe] = NS::FilterLeSelVS;       \
    (t).f_sel_vs[kKerGt] = NS::FilterGtSelVS;       \
    (t).f_sel_vs[kKerGe] = NS::FilterGeSelVS;       \
    (t).f_sel_vs[kKerEq] = NS::FilterEqSelVS;       \
    (t).f_sel_vs[kKerNe] = NS::FilterNeSelVS;       \
    (t).f_sel_sv[kKerLt] = NS::FilterLtSelSV;       \
    (t).f_sel_sv[kKerLe] = NS::FilterLeSelSV;       \
    (t).f_sel_sv[kKerGt] = NS::FilterGtSelSV;       \
    (t).f_sel_sv[kKerGe] = NS::FilterGeSelSV;       \
    (t).f_sel_sv[kKerEq] = NS::FilterEqSelSV;       \
    (t).f_sel_sv[kKerNe] = NS::FilterNeSelSV;       \
    (t).range_filter = NS::RangeFilter;             \
  } while (0)

VmKernels MakeScalarTable() {
  VmKernels t{};
  SGL_FILL_TABLE(t, vmks);
  return t;
}

#if SGL_KERNELS_AVX2
VmKernels MakeAvx2Table() {
  VmKernels t{};
  SGL_FILL_TABLE(t, vmka);
  return t;
}
#endif

#undef SGL_FILL_TABLE

}  // namespace

const VmKernels& GetScalarKernels() {
  static const VmKernels t = MakeScalarTable();
  return t;
}

#if SGL_KERNELS_AVX2
const VmKernels& GetAvx2Kernels() {
  static const VmKernels t = MakeAvx2Table();
  return t;
}
#endif

const VmKernels& GetVmKernels() {
#if SGL_KERNELS_AVX2
  // SetKernelDispatch refuses kAvx2 on non-AVX2 CPUs, so reaching the AVX2
  // table here implies the CPU can run it.
  if (ActiveKernelDispatch() == KernelDispatch::kAvx2) return GetAvx2Kernels();
#endif
  return GetScalarKernels();
}

}  // namespace sgl
