// Portable scalar implementations of the VM kernel table — the semantic
// reference every other table must match bit-for-bit per lane.
//
// These are the exact loops the VM interpreter ran before the kernel layer
// existed: same guarded numeric forms (src/ra/numeric.h), same branchless
// compaction (`out[m] = i; m += keep ? 1 : 0`), same evaluation order.
// The vectorize pragma only *hints*; it never licenses reassociation, so
// -O3 + ivdep keeps IEEE lane semantics intact.
//
// Included only by kernels.cc.

#ifndef SGL_VM_KERNELS_SCALAR_H_
#define SGL_VM_KERNELS_SCALAR_H_

#include <cmath>
#include <cstddef>
#include <cstdint>

#include "src/common/types.h"
#include "src/ra/numeric.h"

#if defined(__GNUC__) && !defined(__clang__)
#define SGL_KERN_VEC _Pragma("GCC ivdep")
#else
#define SGL_KERN_VEC
#endif

namespace sgl {
namespace vmks {

inline void Fill(double* d, double v, size_t n) {
  SGL_KERN_VEC
  for (size_t i = 0; i < n; ++i) d[i] = v;
}

// EXPR sees the lane operands as `av` / `bv`.
#define SGL_SC_BIN(NAME, EXPR)                                              \
  inline void NAME(const double* pa, const double* pb, double* d,           \
                   size_t n) {                                              \
    SGL_KERN_VEC                                                            \
    for (size_t i = 0; i < n; ++i) {                                        \
      const double av = pa[i], bv = pb[i];                                  \
      d[i] = (EXPR);                                                        \
    }                                                                       \
  }                                                                         \
  inline void NAME##Sel(const double* pa, const double* pb, double* d,      \
                        const RowIdx* sel, size_t cnt) {                    \
    for (size_t k = 0; k < cnt; ++k) {                                      \
      const size_t i = sel[k];                                              \
      const double av = pa[i], bv = pb[i];                                  \
      d[i] = (EXPR);                                                        \
    }                                                                       \
  }

SGL_SC_BIN(Add, av + bv)
SGL_SC_BIN(Sub, av - bv)
SGL_SC_BIN(Mul, av * bv)
SGL_SC_BIN(Div, GuardedDiv(av, bv))
SGL_SC_BIN(Mod, GuardedMod(av, bv))
SGL_SC_BIN(Min, av < bv ? av : bv)
SGL_SC_BIN(Max, av > bv ? av : bv)
SGL_SC_BIN(Pow, std::pow(av, bv))
#undef SGL_SC_BIN

#define SGL_SC_UN(NAME, EXPR)                                               \
  inline void NAME(const double* pa, double* d, size_t n) {                 \
    SGL_KERN_VEC                                                            \
    for (size_t i = 0; i < n; ++i) {                                        \
      const double av = pa[i];                                              \
      d[i] = (EXPR);                                                        \
    }                                                                       \
  }                                                                         \
  inline void NAME##Sel(const double* pa, double* d, const RowIdx* sel,     \
                        size_t cnt) {                                       \
    for (size_t k = 0; k < cnt; ++k) {                                      \
      const size_t i = sel[k];                                              \
      const double av = pa[i];                                              \
      d[i] = (EXPR);                                                        \
    }                                                                       \
  }

SGL_SC_UN(Neg, -av)
SGL_SC_UN(Abs, std::fabs(av))
SGL_SC_UN(Sqrt, GuardedSqrt(av))
SGL_SC_UN(Floor, std::floor(av))
SGL_SC_UN(Ceil, std::ceil(av))
#undef SGL_SC_UN

inline void Clamp(const double* v, const double* lo, const double* hi,
                  double* d, size_t n) {
  SGL_KERN_VEC
  for (size_t i = 0; i < n; ++i) d[i] = ApplyClamp(v[i], lo[i], hi[i]);
}

inline void ClampSel(const double* v, const double* lo, const double* hi,
                     double* d, const RowIdx* sel, size_t cnt) {
  for (size_t k = 0; k < cnt; ++k) {
    const size_t i = sel[k];
    d[i] = ApplyClamp(v[i], lo[i], hi[i]);
  }
}

// One macro stamps the whole predicate family: byte-mask compares plus the
// six fused filter shapes ({iota, sel} x {vv, vs, sv}). Sel-shape filters
// may run in place (out == sel): out[m] with m <= k is always at or behind
// the read cursor.
#define SGL_SC_CMP(NAME, OP)                                                \
  inline void Cmp##NAME(const double* pa, const double* pb, uint8_t* d,     \
                        size_t n) {                                         \
    SGL_KERN_VEC                                                            \
    for (size_t i = 0; i < n; ++i) d[i] = (pa[i] OP pb[i]) ? 1 : 0;         \
  }                                                                         \
  inline void Cmp##NAME##Sel(const double* pa, const double* pb,            \
                             uint8_t* d, const RowIdx* sel, size_t cnt) {   \
    for (size_t k = 0; k < cnt; ++k) {                                      \
      const size_t i = sel[k];                                              \
      d[i] = (pa[i] OP pb[i]) ? 1 : 0;                                      \
    }                                                                       \
  }                                                                         \
  inline size_t Filter##NAME##IotaVV(const double* pa, const double* pb,    \
                                     RowIdx* out, size_t n) {               \
    size_t m = 0;                                                           \
    for (size_t i = 0; i < n; ++i) {                                        \
      out[m] = static_cast<RowIdx>(i);                                      \
      m += (pa[i] OP pb[i]) ? 1 : 0;                                        \
    }                                                                       \
    return m;                                                               \
  }                                                                         \
  inline size_t Filter##NAME##IotaVS(const double* pa, double vb,           \
                                     RowIdx* out, size_t n) {               \
    size_t m = 0;                                                           \
    for (size_t i = 0; i < n; ++i) {                                        \
      out[m] = static_cast<RowIdx>(i);                                      \
      m += (pa[i] OP vb) ? 1 : 0;                                           \
    }                                                                       \
    return m;                                                               \
  }                                                                         \
  inline size_t Filter##NAME##IotaSV(double va, const double* pb,           \
                                     RowIdx* out, size_t n) {               \
    size_t m = 0;                                                           \
    for (size_t i = 0; i < n; ++i) {                                        \
      out[m] = static_cast<RowIdx>(i);                                      \
      m += (va OP pb[i]) ? 1 : 0;                                           \
    }                                                                       \
    return m;                                                               \
  }                                                                         \
  inline size_t Filter##NAME##SelVV(const double* pa, const double* pb,     \
                                    const RowIdx* sel, size_t cnt,          \
                                    RowIdx* out) {                          \
    size_t m = 0;                                                           \
    for (size_t k = 0; k < cnt; ++k) {                                      \
      const RowIdx i = sel[k];                                              \
      out[m] = i;                                                           \
      m += (pa[i] OP pb[i]) ? 1 : 0;                                        \
    }                                                                       \
    return m;                                                               \
  }                                                                         \
  inline size_t Filter##NAME##SelVS(const double* pa, double vb,            \
                                    const RowIdx* sel, size_t cnt,          \
                                    RowIdx* out) {                          \
    size_t m = 0;                                                           \
    for (size_t k = 0; k < cnt; ++k) {                                      \
      const RowIdx i = sel[k];                                              \
      out[m] = i;                                                           \
      m += (pa[i] OP vb) ? 1 : 0;                                           \
    }                                                                       \
    return m;                                                               \
  }                                                                         \
  inline size_t Filter##NAME##SelSV(double va, const double* pb,            \
                                    const RowIdx* sel, size_t cnt,          \
                                    RowIdx* out) {                          \
    size_t m = 0;                                                           \
    for (size_t k = 0; k < cnt; ++k) {                                      \
      const RowIdx i = sel[k];                                              \
      out[m] = i;                                                           \
      m += (va OP pb[i]) ? 1 : 0;                                           \
    }                                                                       \
    return m;                                                               \
  }

SGL_SC_CMP(Lt, <)
SGL_SC_CMP(Le, <=)
SGL_SC_CMP(Gt, >)
SGL_SC_CMP(Ge, >=)
SGL_SC_CMP(Eq, ==)
SGL_SC_CMP(Ne, !=)
#undef SGL_SC_CMP

// Mirrors GridIndex::Query's exact per-item bounds test: exclusion via
// `v < lo || v > hi`, so NaN coordinates are kept.
inline size_t RangeFilter(const RowIdx* items, size_t n,
                          const double* const* coords, int dims,
                          const double* lo, const double* hi, RowIdx* out) {
  size_t m = 0;
  for (size_t t = 0; t < n; ++t) {
    const RowIdx p = items[t];
    bool inside = true;
    for (int k = 0; k < dims; ++k) {
      const double v = coords[k][p];
      if (v < lo[k] || v > hi[k]) {
        inside = false;
        break;
      }
    }
    out[m] = p;
    m += inside ? 1 : 0;
  }
  return m;
}

}  // namespace vmks
}  // namespace sgl

#endif  // SGL_VM_KERNELS_SCALAR_H_
