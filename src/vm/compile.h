// Lowering from the Expr IR to register bytecode (bytecode.h), plus the
// executor-facing program cache.
//
// Lowering is partial by design: expressions the VM does not execute
// (effect reads / kAssigned, which exist only in the update phase, and
// set-valued conditionals) simply fail to compile, the cache returns
// nullptr, and call sites fall back to the tree walker. The fallback is
// per-expression, so one uncompilable guard never forces a whole site back
// to interpretation.
//
// All compilation happens single-threaded — once in the executor
// constructor (every plan expression reachable from the CompiledProgram)
// and in PrepareSite for the composed per-site pair filters (which only
// recompose on a strategy switch). Workers share the resulting read-only
// programs; per-run state lives entirely in their VmRegisters.

#ifndef SGL_VM_COMPILE_H_
#define SGL_VM_COMPILE_H_

#include <unordered_map>
#include <vector>

#include "src/lang/compiler.h"
#include "src/ra/plan.h"
#include "src/vm/bytecode.h"

namespace sgl {

class Telemetry;

/// Lowers `e` (whose result kind is `kind`) into a value-mode program.
/// Returns false when the tree contains a construct the VM does not
/// execute; `*out` is unspecified then.
bool CompileValue(const Expr& e, TypeKind kind, VmProgram* out);

/// Lowers a boolean predicate into a filter-mode program: the top-level
/// AND-chain becomes fused compare-compact conjuncts, left to right (the
/// tree walker's evaluation order, so survivor sets are identical).
bool CompileFilter(const Expr& e, VmProgram* out);

/// Executor-owned cache of compiled programs, keyed by Expr node address
/// (plan expressions are owned by the CompiledProgram and never move).
/// unordered_map's reference stability keeps the VmProgram addresses valid
/// for the lifetime of the cache.
class VmProgramCache {
 public:
  /// Lowers every compilable plan expression reachable from `prog`:
  /// handler conditions, local defs, effect-write guards/targets/values,
  /// accum guards/bounds/keys/assignments, and txn-emit guards. Update
  /// rules are skipped — they read merged effects, which the VM leaves to
  /// the tree walker.
  void CompileProgram(const CompiledProgram& prog);

  /// Value-mode program for `e`, or nullptr (tree-walker fallback).
  const VmProgram* Value(const Expr* e) const {
    auto it = values_.find(e);
    return it == values_.end() ? nullptr : &it->second;
  }
  /// Filter-mode program for `e`, or nullptr.
  const VmProgram* Filter(const Expr* e) const {
    auto it = filters_.find(e);
    return it == filters_.end() ? nullptr : &it->second;
  }

  int programs_compiled() const { return programs_compiled_; }
  int fallbacks() const { return fallbacks_; }
  int64_t compile_micros() const { return compile_micros_; }

  /// Telemetry sink for vm.compile spans (borrowed, may be null). Set by
  /// the owning executor before CompileProgram.
  void set_telemetry(Telemetry* tel) { telemetry_ = tel; }

 private:
  void AddValue(const Expr* e, TypeKind kind);
  void AddFilter(const Expr* e);
  void AddWrites(const std::vector<EffectWrite>& writes, const Catalog& cat);
  void AddOps(const std::vector<std::unique_ptr<PlanOp>>& ops,
              const Catalog& cat);

  std::unordered_map<const Expr*, VmProgram> values_;
  std::unordered_map<const Expr*, VmProgram> filters_;
  int programs_compiled_ = 0;
  int fallbacks_ = 0;
  int64_t compile_micros_ = 0;
  Telemetry* telemetry_ = nullptr;
};

}  // namespace sgl

#endif  // SGL_VM_COMPILE_H_
