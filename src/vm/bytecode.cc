#include "src/vm/bytecode.h"

#include <sstream>

namespace sgl {

const char* VmOpName(VmOp op) {
  switch (op) {
    case VmOp::kConstNum: return "const.num";
    case VmOp::kConstBool: return "const.bool";
    case VmOp::kConstRef: return "const.ref";
    case VmOp::kLoadStateNum: return "load.state.num";
    case VmOp::kLoadStateBool: return "load.state.bool";
    case VmOp::kLoadStateRef: return "load.state.ref";
    case VmOp::kLoadLocalNum: return "load.local.num";
    case VmOp::kLoadLocalBool: return "load.local.bool";
    case VmOp::kLoadLocalRef: return "load.local.ref";
    case VmOp::kLoadRowId: return "load.rowid";
    case VmOp::kGatherNum: return "gather.num";
    case VmOp::kGatherBool: return "gather.bool";
    case VmOp::kGatherRef: return "gather.ref";
    case VmOp::kAdd: return "add";
    case VmOp::kSub: return "sub";
    case VmOp::kMul: return "mul";
    case VmOp::kDiv: return "div";
    case VmOp::kMod: return "mod";
    case VmOp::kMin: return "min";
    case VmOp::kMax: return "max";
    case VmOp::kPow: return "pow";
    case VmOp::kNeg: return "neg";
    case VmOp::kAbs: return "abs";
    case VmOp::kSqrt: return "sqrt";
    case VmOp::kFloor: return "floor";
    case VmOp::kCeil: return "ceil";
    case VmOp::kClampOp: return "clamp";
    case VmOp::kCmpLt: return "cmp.lt";
    case VmOp::kCmpLe: return "cmp.le";
    case VmOp::kCmpGt: return "cmp.gt";
    case VmOp::kCmpGe: return "cmp.ge";
    case VmOp::kCmpEq: return "cmp.eq";
    case VmOp::kCmpNe: return "cmp.ne";
    case VmOp::kCmpRefEq: return "cmp.ref.eq";
    case VmOp::kCmpRefNe: return "cmp.ref.ne";
    case VmOp::kCmpBoolEq: return "cmp.bool.eq";
    case VmOp::kCmpBoolNe: return "cmp.bool.ne";
    case VmOp::kAnd: return "and";
    case VmOp::kOr: return "or";
    case VmOp::kNot: return "not";
    case VmOp::kSelectNum: return "select.num";
    case VmOp::kSelectBool: return "select.bool";
    case VmOp::kSelectRef: return "select.ref";
    case VmOp::kSetSizeState: return "set.size.state";
    case VmOp::kSetSizeRef: return "set.size.ref";
    case VmOp::kSetContainsState: return "set.contains.state";
    case VmOp::kSetContainsRef: return "set.contains.ref";
    case VmOp::kFilterBool: return "filter.bool";
    case VmOp::kFilterLt: return "filter.lt";
    case VmOp::kFilterLe: return "filter.le";
    case VmOp::kFilterGt: return "filter.gt";
    case VmOp::kFilterGe: return "filter.ge";
    case VmOp::kFilterEq: return "filter.eq";
    case VmOp::kFilterNe: return "filter.ne";
  }
  return "?";
}

std::string VmProgram::Disassemble() const {
  std::ostringstream os;
  os << (filter_mode ? "filter" : "value") << " program: " << code.size()
     << " instrs, regs n" << num_regs << "/b" << bool_regs << "/r"
     << ref_regs;
  if (!filter_mode) os << ", result r" << result;
  os << "\n";
  for (size_t pc = 0; pc < code.size(); ++pc) {
    const VmInstr& in = code[pc];
    os << "  " << pc << ": " << VmOpName(in.op) << " dst=" << in.dst
       << " a=" << in.a << " b=" << in.b << " c=" << in.c
       << " side=" << static_cast<int>(in.side) << " field=" << in.field;
    if (in.op == VmOp::kConstNum) {
      os << " (" << const_pool[in.field] << ")";
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace sgl
