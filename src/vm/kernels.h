// Explicit-SIMD kernel layer for the bytecode VM's fold loops and the
// index layer's batched range filters.
//
// A `VmKernels` is a flat table of function pointers — one entry per
// (operation, shape) pair the VM's hot loops need: contiguous [0,n) and
// selection-vector variants of every numeric fold, plus fused
// compare-and-filter kernels that write a compacted selection directly.
// Two tables exist, bit-identical per lane:
//
//   * scalar  (kernels_scalar.h) — portable loops, the semantic reference;
//   * avx2    (kernels_avx2.h)   — intrinsics with per-function
//     target("avx2") attributes and scalar tails, compiled on x86-64 only.
//
// GetVmKernels() re-reads the process dispatch (src/common/cpu_features.h)
// on every call, so tests can flip tables between ticks. The lane-semantics
// contract (why results are bit-identical, why no FMA/reassociation) is
// documented in src/vm/README.md.

#ifndef SGL_VM_KERNELS_H_
#define SGL_VM_KERNELS_H_

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "src/common/cpu_features.h"
#include "src/common/types.h"

namespace sgl {

// Kernel indices within a family. Order is load-bearing: vm.cc maps VmOp
// cases onto these, and both tables are filled positionally.
enum NumBinKernel : int {
  kKerAdd,
  kKerSub,
  kKerMul,
  kKerDiv,   // GuardedDiv: b == 0 ? 0 : a / b
  kKerMod,   // GuardedMod: b == 0 ? 0 : fmod(a, b)   (scalar libm both tables)
  kKerMin,   // a < b ? a : b
  kKerMax,   // a > b ? a : b
  kKerPow,   // std::pow                               (scalar libm both tables)
  kNumBinKernels
};

enum NumUnKernel : int {
  kKerNeg,
  kKerAbs,
  kKerSqrt,  // GuardedSqrt: a <= 0 ? 0 : sqrt(a)
  kKerFloor,
  kKerCeil,
  kNumUnKernels
};

enum CmpKernel : int {
  kKerLt,
  kKerLe,
  kKerGt,
  kKerGe,
  kKerEq,
  kKerNe,
  kNumCmpKernels
};

struct VmKernels {
  // d[i] = v for i in [0, n)
  using FillFn = void (*)(double* d, double v, size_t n);
  // d[i] = op(a[i], b[i]) — contiguous / under a selection vector.
  using BinFn = void (*)(const double* a, const double* b, double* d,
                         size_t n);
  using BinSelFn = void (*)(const double* a, const double* b, double* d,
                            const RowIdx* sel, size_t cnt);
  using UnFn = void (*)(const double* a, double* d, size_t n);
  using UnSelFn = void (*)(const double* a, double* d, const RowIdx* sel,
                           size_t cnt);
  // d[i] = min(max(v[i], lo[i]), hi[i]) with std::min/std::max tie rules.
  using ClampFn = void (*)(const double* v, const double* lo,
                           const double* hi, double* d, size_t n);
  using ClampSelFn = void (*)(const double* v, const double* lo,
                              const double* hi, double* d, const RowIdx* sel,
                              size_t cnt);
  // d[i] = (a[i] op b[i]) ? 1 : 0  (byte-mask output)
  using CmpFn = void (*)(const double* a, const double* b, uint8_t* d,
                         size_t n);
  using CmpSelFn = void (*)(const double* a, const double* b, uint8_t* d,
                            const RowIdx* sel, size_t cnt);
  // Fused compare-and-compact: writes surviving row indices to `out` in
  // ascending input order, returns survivor count. Iota variants scan
  // [0, n); sel variants scan an existing selection and may compact
  // in place (out == sel). vs / sv fix one side to a uniform value.
  using FilterIotaVVFn = size_t (*)(const double* a, const double* b,
                                    RowIdx* out, size_t n);
  using FilterIotaVSFn = size_t (*)(const double* a, double b, RowIdx* out,
                                    size_t n);
  using FilterIotaSVFn = size_t (*)(double a, const double* b, RowIdx* out,
                                    size_t n);
  using FilterSelVVFn = size_t (*)(const double* a, const double* b,
                                   const RowIdx* sel, size_t cnt, RowIdx* out);
  using FilterSelVSFn = size_t (*)(const double* a, double b,
                                   const RowIdx* sel, size_t cnt, RowIdx* out);
  using FilterSelSVFn = size_t (*)(double a, const double* b,
                                   const RowIdx* sel, size_t cnt, RowIdx* out);
  // Batched index probe filter: keeps items whose point lies inside
  // [lo[k], hi[k]] on every dim, writing survivors to `out` (capacity >= n)
  // in input order; returns the kept count. Matches GridIndex::Query's
  // exclusion test `v < lo || v > hi` exactly — a NaN coordinate is KEPT
  // (both comparisons false), so the SIMD form must be ~(lt | gt), not
  // (ge & le).
  using RangeFilterFn = size_t (*)(const RowIdx* items, size_t n,
                                   const double* const* coords, int dims,
                                   const double* lo, const double* hi,
                                   RowIdx* out);

  FillFn fill;
  BinFn bin[kNumBinKernels];
  BinSelFn bin_sel[kNumBinKernels];
  UnFn un[kNumUnKernels];
  UnSelFn un_sel[kNumUnKernels];
  ClampFn clamp;
  ClampSelFn clamp_sel;
  CmpFn cmp[kNumCmpKernels];
  CmpSelFn cmp_sel[kNumCmpKernels];
  FilterIotaVVFn f_iota_vv[kNumCmpKernels];
  FilterIotaVSFn f_iota_vs[kNumCmpKernels];
  FilterIotaSVFn f_iota_sv[kNumCmpKernels];
  FilterSelVVFn f_sel_vv[kNumCmpKernels];
  FilterSelVSFn f_sel_vs[kNumCmpKernels];
  FilterSelSVFn f_sel_sv[kNumCmpKernels];
  RangeFilterFn range_filter;
};

/// Table for the currently active dispatch (cheap: one relaxed atomic read).
const VmKernels& GetVmKernels();

/// The two concrete tables, for differential tests.
const VmKernels& GetScalarKernels();
#if SGL_KERNELS_AVX2
/// Only safe to *execute* when CpuHasAvx2(); fetching the table is always ok.
const VmKernels& GetAvx2Kernels();
#endif

namespace vm_internal {
// Process-wide count of lanes processed by SIMD (AVX2) kernel bodies.
// Relaxed: it is a monotonic perf counter, never synchronizes anything.
extern std::atomic<int64_t> g_simd_lanes;
}  // namespace vm_internal

inline void AddSimdLanes(size_t lanes) {
  vm_internal::g_simd_lanes.fetch_add(static_cast<int64_t>(lanes),
                                      std::memory_order_relaxed);
}

/// Snapshot of the cumulative SIMD-lane counter; executors diff it around a
/// tick to report TickStats::simd_lanes_used.
inline int64_t SimdLanesNow() {
  return vm_internal::g_simd_lanes.load(std::memory_order_relaxed);
}

}  // namespace sgl

#endif  // SGL_VM_KERNELS_H_
