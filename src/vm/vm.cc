// Bytecode interpreter: one dispatch per instruction, one kernel call per
// dispatch. See bytecode.h for the execution model and vm.h for parity
// invariants. Numeric folds, comparisons, and fused compare-and-compact
// filters route through the explicit-SIMD kernel table (kernels.h, scalar
// or AVX2 picked at runtime — bit-identical per lane either way); the
// remaining loops (ref/bool logic, gathers, set reads) stay plain
// pragma-hinted index loops. Guarded arithmetic comes from
// src/ra/numeric.h, shared with the tree walker.

#include "src/vm/vm.h"

#include <algorithm>
#include <cmath>

#include "src/ra/numeric.h"
#include "src/vm/kernels.h"

namespace sgl {
namespace {

// Vectorization hint for contiguous elementwise loops. The register
// allocator may reuse an operand register as the destination, but only with
// same-index access (d[i] from pa[i]/pb[i]), so asserting independence
// across iterations is sound.
#if defined(__clang__)
#define SGL_VEC_LOOP _Pragma("clang loop vectorize(enable) interleave(enable)")
#elif defined(__GNUC__)
#define SGL_VEC_LOOP _Pragma("GCC ivdep")
#else
#define SGL_VEC_LOOP
#endif

const EntitySet kEmptySet;

/// Everything one program execution needs. `sel == nullptr` means all lanes
/// [0, n) are active and contiguous (the fast, vectorizable state); once a
/// filter compacts, `sel/cnt` list the active span positions ascending.
struct ExecState {
  const VmProgram* p = nullptr;
  const VecContext* ctx = nullptr;
  VmRegisters* r = nullptr;
  const VmKernels* k = nullptr;  // active kernel table (scalar or AVX2)
  const RowIdx* sel = nullptr;
  size_t cnt = 0;
  size_t n = 0;
  bool uniform_outer = false;
  std::vector<RowIdx>* filter_sel = nullptr;  // filter-mode compaction buffer
};

/// Sizes register files and resets per-run bookkeeping. All growth is
/// amortized: steady state touches capacities only.
void SizeRegs(const VmProgram& p, size_t n, VmRegisters* r) {
  if (n > r->span_high) r->span_high = n;
  n = r->span_high;  // columns hold the high-water span (see vm.h)
  if (r->num.size() < p.num_regs) r->num.resize(p.num_regs);
  if (r->bools.size() < p.bool_regs) r->bools.resize(p.bool_regs);
  if (r->refs.size() < p.ref_regs) r->refs.resize(p.ref_regs);
  ResizeAmortized(&r->num_ptr, p.num_regs);
  ResizeAmortized(&r->bool_ptr, p.bool_regs);
  ResizeAmortized(&r->ref_ptr, p.ref_regs);
  ResizeAmortized(&r->num_uni, p.num_regs);
  ResizeAmortized(&r->bool_uni, p.bool_regs);
  ResizeAmortized(&r->ref_uni, p.ref_regs);
  ResizeAmortized(&r->num_val, p.num_regs);
  ResizeAmortized(&r->bool_val, p.bool_regs);
  ResizeAmortized(&r->ref_val, p.ref_regs);
  for (uint16_t i = 0; i < p.num_regs; ++i) {
    ResizeAmortized(&r->num[i], n);
    r->num_ptr[i] = r->num[i].data();
    r->num_uni[i] = 0;
  }
  for (uint16_t i = 0; i < p.bool_regs; ++i) {
    ResizeAmortized(&r->bools[i], n);
    r->bool_ptr[i] = r->bools[i].data();
    r->bool_uni[i] = 0;
  }
  for (uint16_t i = 0; i < p.ref_regs; ++i) {
    ResizeAmortized(&r->refs[i], n);
    r->ref_ptr[i] = r->refs[i].data();
    r->ref_uni[i] = 0;
  }
}

inline void SetNumU(ExecState& s, uint16_t reg, double v) {
  s.r->num_uni[reg] = 1;
  s.r->num_val[reg] = v;
}
inline void SetBoolU(ExecState& s, uint16_t reg, uint8_t v) {
  s.r->bool_uni[reg] = 1;
  s.r->bool_val[reg] = v;
}
inline void SetRefU(ExecState& s, uint16_t reg, EntityId v) {
  s.r->ref_uni[reg] = 1;
  s.r->ref_val[reg] = v;
}

// Lazy materialization: splats a uniform register over the active lanes so
// a mixed uniform/per-lane kernel can run one homogeneous loop.
double* MatNum(ExecState& s, uint16_t reg) {
  double* d = s.r->num_ptr[reg];
  if (s.r->num_uni[reg]) {
    const double v = s.r->num_val[reg];
    if (s.sel == nullptr) {
      s.k->fill(d, v, s.n);
    } else {
      for (size_t k = 0; k < s.cnt; ++k) d[s.sel[k]] = v;
    }
    s.r->num_uni[reg] = 0;
  }
  return d;
}
uint8_t* MatBool(ExecState& s, uint16_t reg) {
  uint8_t* d = s.r->bool_ptr[reg];
  if (s.r->bool_uni[reg]) {
    const uint8_t v = s.r->bool_val[reg];
    if (s.sel == nullptr) {
      SGL_VEC_LOOP
      for (size_t i = 0; i < s.n; ++i) d[i] = v;
    } else {
      for (size_t k = 0; k < s.cnt; ++k) d[s.sel[k]] = v;
    }
    s.r->bool_uni[reg] = 0;
  }
  return d;
}
EntityId* MatRef(ExecState& s, uint16_t reg) {
  EntityId* d = s.r->ref_ptr[reg];
  if (s.r->ref_uni[reg]) {
    const EntityId v = s.r->ref_val[reg];
    if (s.sel == nullptr) {
      SGL_VEC_LOOP
      for (size_t i = 0; i < s.n; ++i) d[i] = v;
    } else {
      for (size_t k = 0; k < s.cnt; ++k) d[s.sel[k]] = v;
    }
    s.r->ref_uni[reg] = 0;
  }
  return d;
}

// Runs BODY once per active lane with `i` bound to the span position.
// Contiguous (no selection) iterations get the vectorization hint.
#define SGL_VM_LANES(...)                               \
  do {                                                  \
    if (s.sel == nullptr) {                             \
      SGL_VEC_LOOP                                      \
      for (size_t i = 0; i < s.n; ++i) { __VA_ARGS__; } \
    } else {                                            \
      for (size_t k = 0; k < s.cnt; ++k) {              \
        const size_t i = s.sel[k];                      \
        __VA_ARGS__;                                    \
      }                                                 \
    }                                                   \
  } while (0)

// dst = kernel KID (av, bv) over doubles; all-uniform operands stay scalar
// via EXPR — the kernel tables implement the identical lane expression.
#define SGL_VM_NUM_BIN(KID, EXPR)                       \
  do {                                                  \
    if (s.r->num_uni[in.a] && s.r->num_uni[in.b]) {     \
      const double av = s.r->num_val[in.a];             \
      const double bv = s.r->num_val[in.b];             \
      SetNumU(s, in.dst, (EXPR));                       \
    } else {                                            \
      const double* pa = MatNum(s, in.a);               \
      const double* pb = MatNum(s, in.b);               \
      double* d = s.r->num_ptr[in.dst];                 \
      s.r->num_uni[in.dst] = 0;                         \
      if (s.sel == nullptr) {                           \
        s.k->bin[KID](pa, pb, d, s.n);                  \
      } else {                                          \
        s.k->bin_sel[KID](pa, pb, d, s.sel, s.cnt);     \
      }                                                 \
    }                                                   \
  } while (0)

// dst = kernel KID (av) over doubles.
#define SGL_VM_NUM_UN(KID, EXPR)               \
  do {                                         \
    if (s.r->num_uni[in.a]) {                  \
      const double av = s.r->num_val[in.a];    \
      SetNumU(s, in.dst, (EXPR));              \
    } else {                                   \
      const double* pa = s.r->num_ptr[in.a];   \
      double* d = s.r->num_ptr[in.dst];        \
      s.r->num_uni[in.dst] = 0;                \
      if (s.sel == nullptr) {                  \
        s.k->un[KID](pa, d, s.n);              \
      } else {                                 \
        s.k->un_sel[KID](pa, d, s.sel, s.cnt); \
      }                                        \
    }                                          \
  } while (0)

// bool dst = num a OP num b (plain C++ operator, matching ApplyCmp).
#define SGL_VM_NUM_CMP(KID, OP)                                     \
  do {                                                              \
    if (s.r->num_uni[in.a] && s.r->num_uni[in.b]) {                 \
      SetBoolU(s, in.dst,                                           \
               (s.r->num_val[in.a] OP s.r->num_val[in.b]) ? 1 : 0); \
    } else {                                                        \
      const double* pa = MatNum(s, in.a);                           \
      const double* pb = MatNum(s, in.b);                           \
      uint8_t* d = s.r->bool_ptr[in.dst];                           \
      s.r->bool_uni[in.dst] = 0;                                    \
      if (s.sel == nullptr) {                                       \
        s.k->cmp[KID](pa, pb, d, s.n);                              \
      } else {                                                      \
        s.k->cmp_sel[KID](pa, pb, d, s.sel, s.cnt);                 \
      }                                                             \
    }                                                               \
  } while (0)

#define SGL_VM_REF_CMP(OP)                                          \
  do {                                                              \
    if (s.r->ref_uni[in.a] && s.r->ref_uni[in.b]) {                 \
      SetBoolU(s, in.dst,                                           \
               (s.r->ref_val[in.a] OP s.r->ref_val[in.b]) ? 1 : 0); \
    } else {                                                        \
      const EntityId* pa = MatRef(s, in.a);                         \
      const EntityId* pb = MatRef(s, in.b);                         \
      uint8_t* d = s.r->bool_ptr[in.dst];                           \
      s.r->bool_uni[in.dst] = 0;                                    \
      SGL_VM_LANES(d[i] = (pa[i] OP pb[i]) ? 1 : 0);                \
    }                                                               \
  } while (0)

#define SGL_VM_BOOL_CMP(OP)                                           \
  do {                                                                \
    if (s.r->bool_uni[in.a] && s.r->bool_uni[in.b]) {                 \
      SetBoolU(s, in.dst,                                             \
               ((s.r->bool_val[in.a] != 0) OP(s.r->bool_val[in.b] !=  \
                                              0))                     \
                   ? 1                                                \
                   : 0);                                              \
    } else {                                                          \
      const uint8_t* pa = MatBool(s, in.a);                           \
      const uint8_t* pb = MatBool(s, in.b);                           \
      uint8_t* d = s.r->bool_ptr[in.dst];                             \
      s.r->bool_uni[in.dst] = 0;                                      \
      SGL_VM_LANES(d[i] = ((pa[i] != 0) OP(pb[i] != 0)) ? 1 : 0);     \
    }                                                                 \
  } while (0)

// Bitwise and/or over 0/1 bytes, matching the tree walker's &= / |=.
#define SGL_VM_BOOL_BIN(OP)                                          \
  do {                                                               \
    if (s.r->bool_uni[in.a] && s.r->bool_uni[in.b]) {                \
      SetBoolU(s, in.dst,                                            \
               static_cast<uint8_t>(s.r->bool_val[in.a] OP s.r      \
                                        ->bool_val[in.b]));          \
    } else {                                                         \
      const uint8_t* pa = MatBool(s, in.a);                          \
      const uint8_t* pb = MatBool(s, in.b);                          \
      uint8_t* d = s.r->bool_ptr[in.dst];                            \
      s.r->bool_uni[in.dst] = 0;                                     \
      SGL_VM_LANES(d[i] = static_cast<uint8_t>(pa[i] OP pb[i]));     \
    }                                                                \
  } while (0)

// Branchless select with a uniform-condition fast path that just forwards
// the chosen operand register.
#define SGL_VM_SELECT(PTR, UNI, VAL, MAT, TY)                      \
  do {                                                             \
    if (s.r->bool_uni[in.a]) {                                     \
      const uint16_t src = s.r->bool_val[in.a] != 0 ? in.b : in.c; \
      if (s.r->UNI[src]) {                                         \
        s.r->UNI[in.dst] = 1;                                      \
        s.r->VAL[in.dst] = s.r->VAL[src];                          \
      } else {                                                     \
        const TY* p = s.r->PTR[src];                               \
        TY* d = s.r->PTR[in.dst];                                  \
        s.r->UNI[in.dst] = 0;                                      \
        if (d != p) SGL_VM_LANES(d[i] = p[i]);                     \
      }                                                            \
    } else {                                                       \
      const uint8_t* cnd = MatBool(s, in.a);                       \
      const TY* tv = MAT(s, in.b);                                 \
      const TY* ev = MAT(s, in.c);                                 \
      TY* d = s.r->PTR[in.dst];                                    \
      s.r->UNI[in.dst] = 0;                                        \
      SGL_VM_LANES(d[i] = cnd[i] != 0 ? tv[i] : ev[i]);            \
    }                                                              \
  } while (0)

// Compacts the active selection to lanes where KEEP holds. The first
// compaction runs over the implicit contiguous iota (branchlessly); later
// ones compact sel in place — out_n <= k always, and lane index i is read
// before the slot is overwritten, so aliasing is safe.
#define SGL_VM_FILTER(KEEP)                    \
  do {                                         \
    RowIdx* fs = s.filter_sel->data();         \
    size_t out_n = 0;                          \
    if (s.sel == nullptr) {                    \
      for (size_t i = 0; i < s.n; ++i) {       \
        fs[out_n] = static_cast<RowIdx>(i);    \
        out_n += (KEEP) ? 1 : 0;               \
      }                                        \
    } else {                                   \
      for (size_t k = 0; k < s.cnt; ++k) {     \
        const size_t i = s.sel[k];             \
        fs[out_n] = static_cast<RowIdx>(i);    \
        out_n += (KEEP) ? 1 : 0;               \
      }                                        \
    }                                          \
    s.sel = fs;                                \
    s.cnt = out_n;                             \
  } while (0)

// Fused compare-and-compact through the kernel table, with scalar-vs-column
// specializations: when one side is uniform (the common "gathered column
// against a bound" shape) the kernel reads a single array. Sel-shaped
// kernels compact s.sel into filter_sel in place when they alias — the
// kernels' write cursor never passes their read cursor.
#define SGL_VM_FILTER_CMP(KID, OP)                              \
  do {                                                          \
    const bool ua = s.r->num_uni[in.a] != 0;                    \
    const bool ub = s.r->num_uni[in.b] != 0;                    \
    const double va = s.r->num_val[in.a];                       \
    const double vb = s.r->num_val[in.b];                       \
    const double* pa = s.r->num_ptr[in.a];                      \
    const double* pb = s.r->num_ptr[in.b];                      \
    RowIdx* fs = s.filter_sel->data();                          \
    if (ua && ub) {                                             \
      if (!(va OP vb)) {                                        \
        s.sel = fs;                                             \
        s.cnt = 0;                                              \
      }                                                         \
    } else if (s.sel == nullptr) {                              \
      size_t m;                                                 \
      if (ua) {                                                 \
        m = s.k->f_iota_sv[KID](va, pb, fs, s.n);               \
      } else if (ub) {                                          \
        m = s.k->f_iota_vs[KID](pa, vb, fs, s.n);               \
      } else {                                                  \
        m = s.k->f_iota_vv[KID](pa, pb, fs, s.n);               \
      }                                                         \
      s.sel = fs;                                               \
      s.cnt = m;                                                \
    } else {                                                    \
      size_t m;                                                 \
      if (ua) {                                                 \
        m = s.k->f_sel_sv[KID](va, pb, s.sel, s.cnt, fs);       \
      } else if (ub) {                                          \
        m = s.k->f_sel_vs[KID](pa, vb, s.sel, s.cnt, fs);       \
      } else {                                                  \
        m = s.k->f_sel_vv[KID](pa, pb, s.sel, s.cnt, fs);       \
      }                                                         \
      s.sel = fs;                                               \
      s.cnt = m;                                                \
    }                                                           \
  } while (0)

void RunProgram(ExecState& s) {
  const VecContext& ctx = *s.ctx;
  for (const VmInstr& in : s.p->code) {
    if (s.sel != nullptr && s.cnt == 0) return;  // selection ran dry
    switch (in.op) {
      // ----- Loads -----------------------------------------------------
      case VmOp::kConstNum:
        SetNumU(s, in.dst, s.p->const_pool[in.field]);
        break;
      case VmOp::kConstBool:
        SetBoolU(s, in.dst, in.field != 0 ? 1 : 0);
        break;
      case VmOp::kConstRef:
        SetRefU(s, in.dst, kNullEntity);
        break;
      case VmOp::kLoadStateNum: {
        const EntityTable* t = in.side == 0 ? ctx.outer : ctx.inner;
        const RowIdx* rows =
            (in.side == 0 ? ctx.outer_rows : ctx.inner_rows)->data();
        const ConstNumberColumn col =
            t->Num(static_cast<FieldIdx>(in.field));
        if (in.side == 0 && s.uniform_outer) {
          SetNumU(s, in.dst, col[rows[0]]);
        } else {
          double* d = s.r->num_ptr[in.dst];
          s.r->num_uni[in.dst] = 0;
          SGL_VM_LANES(d[i] = col[rows[i]]);
        }
        break;
      }
      case VmOp::kLoadStateBool: {
        const EntityTable* t = in.side == 0 ? ctx.outer : ctx.inner;
        const RowIdx* rows =
            (in.side == 0 ? ctx.outer_rows : ctx.inner_rows)->data();
        const uint8_t* col = t->BoolCol(static_cast<FieldIdx>(in.field));
        if (in.side == 0 && s.uniform_outer) {
          SetBoolU(s, in.dst, col[rows[0]]);
        } else {
          uint8_t* d = s.r->bool_ptr[in.dst];
          s.r->bool_uni[in.dst] = 0;
          SGL_VM_LANES(d[i] = col[rows[i]]);
        }
        break;
      }
      case VmOp::kLoadStateRef: {
        const EntityTable* t = in.side == 0 ? ctx.outer : ctx.inner;
        const RowIdx* rows =
            (in.side == 0 ? ctx.outer_rows : ctx.inner_rows)->data();
        const EntityId* col = t->RefCol(static_cast<FieldIdx>(in.field));
        if (in.side == 0 && s.uniform_outer) {
          SetRefU(s, in.dst, col[rows[0]]);
        } else {
          EntityId* d = s.r->ref_ptr[in.dst];
          s.r->ref_uni[in.dst] = 0;
          SGL_VM_LANES(d[i] = col[rows[i]]);
        }
        break;
      }
      case VmOp::kLoadLocalNum: {
        const double* col = ctx.locals->num[in.field].data();
        const RowIdx* rows = ctx.outer_rows->data();
        if (s.uniform_outer) {
          SetNumU(s, in.dst, col[rows[0]]);
        } else {
          double* d = s.r->num_ptr[in.dst];
          s.r->num_uni[in.dst] = 0;
          SGL_VM_LANES(d[i] = col[rows[i]]);
        }
        break;
      }
      case VmOp::kLoadLocalBool: {
        const uint8_t* col = ctx.locals->bools[in.field].data();
        const RowIdx* rows = ctx.outer_rows->data();
        if (s.uniform_outer) {
          SetBoolU(s, in.dst, col[rows[0]]);
        } else {
          uint8_t* d = s.r->bool_ptr[in.dst];
          s.r->bool_uni[in.dst] = 0;
          SGL_VM_LANES(d[i] = col[rows[i]]);
        }
        break;
      }
      case VmOp::kLoadLocalRef: {
        const EntityId* col = ctx.locals->refs[in.field].data();
        const RowIdx* rows = ctx.outer_rows->data();
        if (s.uniform_outer) {
          SetRefU(s, in.dst, col[rows[0]]);
        } else {
          EntityId* d = s.r->ref_ptr[in.dst];
          s.r->ref_uni[in.dst] = 0;
          SGL_VM_LANES(d[i] = col[rows[i]]);
        }
        break;
      }
      case VmOp::kLoadRowId: {
        const EntityTable* t = in.side == 0 ? ctx.outer : ctx.inner;
        const RowIdx* rows =
            (in.side == 0 ? ctx.outer_rows : ctx.inner_rows)->data();
        const EntityId* ids = t->ids().data();
        if (in.side == 0 && s.uniform_outer) {
          SetRefU(s, in.dst, ids[rows[0]]);
        } else {
          EntityId* d = s.r->ref_ptr[in.dst];
          s.r->ref_uni[in.dst] = 0;
          SGL_VM_LANES(d[i] = ids[rows[i]]);
        }
        break;
      }
      case VmOp::kGatherNum: {
        const FieldIdx f = static_cast<FieldIdx>(in.field);
        if (s.r->ref_uni[in.a]) {
          const World::Locator* loc = ctx.world->Find(s.r->ref_val[in.a]);
          SetNumU(s, in.dst,
                  loc == nullptr
                      ? 0.0
                      : ctx.world->table(loc->cls).Num(f)[loc->row]);
        } else {
          const EntityId* ids = s.r->ref_ptr[in.a];
          double* d = s.r->num_ptr[in.dst];
          s.r->num_uni[in.dst] = 0;
          SGL_VM_LANES(
              const World::Locator* loc = ctx.world->Find(ids[i]);
              d[i] = loc == nullptr
                         ? 0.0
                         : ctx.world->table(loc->cls).Num(f)[loc->row]);
        }
        break;
      }
      case VmOp::kGatherBool: {
        const FieldIdx f = static_cast<FieldIdx>(in.field);
        if (s.r->ref_uni[in.a]) {
          const World::Locator* loc = ctx.world->Find(s.r->ref_val[in.a]);
          SetBoolU(s, in.dst,
                   loc == nullptr
                       ? 0
                       : ctx.world->table(loc->cls).BoolCol(f)[loc->row]);
        } else {
          const EntityId* ids = s.r->ref_ptr[in.a];
          uint8_t* d = s.r->bool_ptr[in.dst];
          s.r->bool_uni[in.dst] = 0;
          SGL_VM_LANES(
              const World::Locator* loc = ctx.world->Find(ids[i]);
              d[i] = loc == nullptr
                         ? 0
                         : ctx.world->table(loc->cls).BoolCol(f)[loc->row]);
        }
        break;
      }
      case VmOp::kGatherRef: {
        const FieldIdx f = static_cast<FieldIdx>(in.field);
        if (s.r->ref_uni[in.a]) {
          const World::Locator* loc = ctx.world->Find(s.r->ref_val[in.a]);
          SetRefU(s, in.dst,
                  loc == nullptr
                      ? kNullEntity
                      : ctx.world->table(loc->cls).RefCol(f)[loc->row]);
        } else {
          const EntityId* ids = s.r->ref_ptr[in.a];
          EntityId* d = s.r->ref_ptr[in.dst];
          s.r->ref_uni[in.dst] = 0;
          SGL_VM_LANES(
              const World::Locator* loc = ctx.world->Find(ids[i]);
              d[i] = loc == nullptr
                         ? kNullEntity
                         : ctx.world->table(loc->cls).RefCol(f)[loc->row]);
        }
        break;
      }

      // ----- Numeric kernels (semantics: src/ra/numeric.h) -------------
      case VmOp::kAdd: SGL_VM_NUM_BIN(kKerAdd, av + bv); break;
      case VmOp::kSub: SGL_VM_NUM_BIN(kKerSub, av - bv); break;
      case VmOp::kMul: SGL_VM_NUM_BIN(kKerMul, av * bv); break;
      case VmOp::kDiv: SGL_VM_NUM_BIN(kKerDiv, GuardedDiv(av, bv)); break;
      case VmOp::kMod: SGL_VM_NUM_BIN(kKerMod, GuardedMod(av, bv)); break;
      case VmOp::kMin: SGL_VM_NUM_BIN(kKerMin, av < bv ? av : bv); break;
      case VmOp::kMax: SGL_VM_NUM_BIN(kKerMax, av > bv ? av : bv); break;
      case VmOp::kPow: SGL_VM_NUM_BIN(kKerPow, std::pow(av, bv)); break;
      case VmOp::kNeg: SGL_VM_NUM_UN(kKerNeg, -av); break;
      case VmOp::kAbs: SGL_VM_NUM_UN(kKerAbs, std::fabs(av)); break;
      case VmOp::kSqrt: SGL_VM_NUM_UN(kKerSqrt, GuardedSqrt(av)); break;
      case VmOp::kFloor: SGL_VM_NUM_UN(kKerFloor, std::floor(av)); break;
      case VmOp::kCeil: SGL_VM_NUM_UN(kKerCeil, std::ceil(av)); break;
      case VmOp::kClampOp: {
        if (s.r->num_uni[in.a] && s.r->num_uni[in.b] &&
            s.r->num_uni[in.c]) {
          SetNumU(s, in.dst,
                  ApplyClamp(s.r->num_val[in.a], s.r->num_val[in.b],
                             s.r->num_val[in.c]));
        } else {
          const double* pv = MatNum(s, in.a);
          const double* pl = MatNum(s, in.b);
          const double* ph = MatNum(s, in.c);
          double* d = s.r->num_ptr[in.dst];
          s.r->num_uni[in.dst] = 0;
          if (s.sel == nullptr) {
            s.k->clamp(pv, pl, ph, d, s.n);
          } else {
            s.k->clamp_sel(pv, pl, ph, d, s.sel, s.cnt);
          }
        }
        break;
      }

      // ----- Comparisons / logic ---------------------------------------
      case VmOp::kCmpLt: SGL_VM_NUM_CMP(kKerLt, <); break;
      case VmOp::kCmpLe: SGL_VM_NUM_CMP(kKerLe, <=); break;
      case VmOp::kCmpGt: SGL_VM_NUM_CMP(kKerGt, >); break;
      case VmOp::kCmpGe: SGL_VM_NUM_CMP(kKerGe, >=); break;
      case VmOp::kCmpEq: SGL_VM_NUM_CMP(kKerEq, ==); break;
      case VmOp::kCmpNe: SGL_VM_NUM_CMP(kKerNe, !=); break;
      case VmOp::kCmpRefEq: SGL_VM_REF_CMP(==); break;
      case VmOp::kCmpRefNe: SGL_VM_REF_CMP(!=); break;
      case VmOp::kCmpBoolEq: SGL_VM_BOOL_CMP(==); break;
      case VmOp::kCmpBoolNe: SGL_VM_BOOL_CMP(!=); break;
      case VmOp::kAnd: SGL_VM_BOOL_BIN(&); break;
      case VmOp::kOr: SGL_VM_BOOL_BIN(|); break;
      case VmOp::kNot: {
        if (s.r->bool_uni[in.a]) {
          SetBoolU(s, in.dst, s.r->bool_val[in.a] != 0 ? 0 : 1);
        } else {
          const uint8_t* pa = s.r->bool_ptr[in.a];
          uint8_t* d = s.r->bool_ptr[in.dst];
          s.r->bool_uni[in.dst] = 0;
          SGL_VM_LANES(d[i] = pa[i] != 0 ? 0 : 1);
        }
        break;
      }

      // ----- Selects ----------------------------------------------------
      case VmOp::kSelectNum:
        SGL_VM_SELECT(num_ptr, num_uni, num_val, MatNum, double);
        break;
      case VmOp::kSelectBool:
        SGL_VM_SELECT(bool_ptr, bool_uni, bool_val, MatBool, uint8_t);
        break;
      case VmOp::kSelectRef:
        SGL_VM_SELECT(ref_ptr, ref_uni, ref_val, MatRef, EntityId);
        break;

      // ----- Set reads --------------------------------------------------
      case VmOp::kSetSizeState: {
        const EntityTable* t = in.side == 0 ? ctx.outer : ctx.inner;
        const RowIdx* rows =
            (in.side == 0 ? ctx.outer_rows : ctx.inner_rows)->data();
        const EntitySet* col = t->SetCol(static_cast<FieldIdx>(in.field));
        if (in.side == 0 && s.uniform_outer) {
          SetNumU(s, in.dst, static_cast<double>(col[rows[0]].size()));
        } else {
          double* d = s.r->num_ptr[in.dst];
          s.r->num_uni[in.dst] = 0;
          SGL_VM_LANES(d[i] = static_cast<double>(col[rows[i]].size()));
        }
        break;
      }
      case VmOp::kSetSizeRef: {
        const FieldIdx f = static_cast<FieldIdx>(in.field);
        if (s.r->ref_uni[in.a]) {
          const World::Locator* loc = ctx.world->Find(s.r->ref_val[in.a]);
          SetNumU(s, in.dst,
                  loc == nullptr
                      ? 0.0
                      : static_cast<double>(ctx.world->table(loc->cls)
                                                .SetCol(f)[loc->row]
                                                .size()));
        } else {
          const EntityId* ids = s.r->ref_ptr[in.a];
          double* d = s.r->num_ptr[in.dst];
          s.r->num_uni[in.dst] = 0;
          SGL_VM_LANES(
              const World::Locator* loc = ctx.world->Find(ids[i]);
              d[i] = loc == nullptr
                         ? 0.0
                         : static_cast<double>(ctx.world->table(loc->cls)
                                                   .SetCol(f)[loc->row]
                                                   .size()));
        }
        break;
      }
      case VmOp::kSetContainsState: {
        const EntityTable* t = in.side == 0 ? ctx.outer : ctx.inner;
        const RowIdx* rows =
            (in.side == 0 ? ctx.outer_rows : ctx.inner_rows)->data();
        const EntitySet* col = t->SetCol(static_cast<FieldIdx>(in.field));
        if (in.side == 0 && s.uniform_outer) {
          const EntitySet& set = col[rows[0]];
          if (s.r->ref_uni[in.a]) {
            SetBoolU(s, in.dst, set.Contains(s.r->ref_val[in.a]) ? 1 : 0);
          } else {
            const EntityId* probe = s.r->ref_ptr[in.a];
            uint8_t* d = s.r->bool_ptr[in.dst];
            s.r->bool_uni[in.dst] = 0;
            SGL_VM_LANES(d[i] = set.Contains(probe[i]) ? 1 : 0);
          }
        } else {
          const EntityId* probe = MatRef(s, in.a);
          uint8_t* d = s.r->bool_ptr[in.dst];
          s.r->bool_uni[in.dst] = 0;
          SGL_VM_LANES(d[i] = col[rows[i]].Contains(probe[i]) ? 1 : 0);
        }
        break;
      }
      case VmOp::kSetContainsRef: {
        const FieldIdx f = static_cast<FieldIdx>(in.field);
        if (s.r->ref_uni[in.b]) {
          // Uniform owner: resolve the set once (null reads as empty).
          const World::Locator* loc = ctx.world->Find(s.r->ref_val[in.b]);
          const EntitySet& set =
              loc == nullptr
                  ? kEmptySet
                  : ctx.world->table(loc->cls).SetCol(f)[loc->row];
          if (s.r->ref_uni[in.a]) {
            SetBoolU(s, in.dst, set.Contains(s.r->ref_val[in.a]) ? 1 : 0);
          } else {
            const EntityId* probe = s.r->ref_ptr[in.a];
            uint8_t* d = s.r->bool_ptr[in.dst];
            s.r->bool_uni[in.dst] = 0;
            SGL_VM_LANES(d[i] = set.Contains(probe[i]) ? 1 : 0);
          }
        } else {
          const EntityId* owner = s.r->ref_ptr[in.b];
          const EntityId* probe = MatRef(s, in.a);
          uint8_t* d = s.r->bool_ptr[in.dst];
          s.r->bool_uni[in.dst] = 0;
          SGL_VM_LANES(
              const World::Locator* loc = ctx.world->Find(owner[i]);
              d[i] = loc != nullptr && ctx.world->table(loc->cls)
                                           .SetCol(f)[loc->row]
                                           .Contains(probe[i])
                         ? 1
                         : 0);
        }
        break;
      }

      // ----- Filter mode ------------------------------------------------
      case VmOp::kFilterBool: {
        if (s.r->bool_uni[in.a]) {
          if (s.r->bool_val[in.a] == 0) {
            s.sel = s.filter_sel->data();
            s.cnt = 0;
          }
        } else {
          const uint8_t* c = s.r->bool_ptr[in.a];
          SGL_VM_FILTER(c[i] != 0);
        }
        break;
      }
      case VmOp::kFilterLt: SGL_VM_FILTER_CMP(kKerLt, <); break;
      case VmOp::kFilterLe: SGL_VM_FILTER_CMP(kKerLe, <=); break;
      case VmOp::kFilterGt: SGL_VM_FILTER_CMP(kKerGt, >); break;
      case VmOp::kFilterGe: SGL_VM_FILTER_CMP(kKerGe, >=); break;
      case VmOp::kFilterEq: SGL_VM_FILTER_CMP(kKerEq, ==); break;
      case VmOp::kFilterNe: SGL_VM_FILTER_CMP(kKerNe, !=); break;
    }
  }
}

}  // namespace

void VmEvalNum(const VmProgram& p, const VecContext& ctx, VmRegisters* regs,
               const RowIdx* sel, size_t cnt, std::vector<double>* out) {
  SGL_DCHECK(!p.filter_mode && p.result_kind == TypeKind::kNumber);
  const size_t n = ctx.count();
  ResizeAmortized(out, n);
  if (n == 0 || (sel != nullptr && cnt == 0)) return;
  SizeRegs(p, n, regs);
  regs->num_ptr[p.result] = out->data();  // result writes land in out
  ExecState s;
  s.p = &p;
  s.ctx = &ctx;
  s.r = regs;
  s.k = &GetVmKernels();
  s.sel = sel;
  s.cnt = cnt;
  s.n = n;
  RunProgram(s);
  MatNum(s, p.result);  // splat a uniform result over the active lanes
}

void VmEvalBool(const VmProgram& p, const VecContext& ctx, VmRegisters* regs,
                const RowIdx* sel, size_t cnt, std::vector<uint8_t>* out) {
  SGL_DCHECK(!p.filter_mode && p.result_kind == TypeKind::kBool);
  const size_t n = ctx.count();
  ResizeAmortized(out, n);
  if (n == 0 || (sel != nullptr && cnt == 0)) return;
  SizeRegs(p, n, regs);
  regs->bool_ptr[p.result] = out->data();
  ExecState s;
  s.p = &p;
  s.ctx = &ctx;
  s.r = regs;
  s.k = &GetVmKernels();
  s.sel = sel;
  s.cnt = cnt;
  s.n = n;
  RunProgram(s);
  MatBool(s, p.result);
}

void VmEvalRef(const VmProgram& p, const VecContext& ctx, VmRegisters* regs,
               const RowIdx* sel, size_t cnt, std::vector<EntityId>* out) {
  SGL_DCHECK(!p.filter_mode && p.result_kind == TypeKind::kRef);
  const size_t n = ctx.count();
  ResizeAmortized(out, n);
  if (n == 0 || (sel != nullptr && cnt == 0)) return;
  SizeRegs(p, n, regs);
  regs->ref_ptr[p.result] = out->data();
  ExecState s;
  s.p = &p;
  s.ctx = &ctx;
  s.r = regs;
  s.k = &GetVmKernels();
  s.sel = sel;
  s.cnt = cnt;
  s.n = n;
  RunProgram(s);
  MatRef(s, p.result);
}

size_t VmRunFilter(const VmProgram& p, const VecContext& ctx,
                   VmRegisters* regs, bool uniform_outer,
                   std::vector<RowIdx>* sel) {
  SGL_DCHECK(p.filter_mode);
  const size_t n = ctx.count();
  ResizeAmortized(sel, n);
  if (n == 0) return 0;
  SizeRegs(p, n, regs);
  ExecState s;
  s.p = &p;
  s.ctx = &ctx;
  s.r = regs;
  s.k = &GetVmKernels();
  s.n = n;
  s.uniform_outer = uniform_outer;
  s.filter_sel = sel;
  RunProgram(s);
  if (s.sel == nullptr) {
    // Every conjunct was a uniform keep-all: all lanes survive.
    RowIdx* fs = sel->data();
    for (size_t i = 0; i < n; ++i) fs[i] = static_cast<RowIdx>(i);
    return n;
  }
  return s.cnt;
}

}  // namespace sgl
