// The register bytecode the tick compiles to ("compile the tick", ROADMAP).
//
// Expr trees are lowered once per prepared site / plan expression into a
// flat, contiguous instruction array over *column registers*: each register
// names a span-length column of doubles, bools (uint8), or entity refs.
// One instruction performs one elementwise kernel over the whole active
// span, so execution is a loop over instructions of loops over lanes —
// no per-row tree recursion, no per-node virtual dispatch, and every lane
// loop is a plain contiguous loop the autovectorizer can chew.
//
// Two program shapes:
//   * value mode  — computes `result` (a register of the program's result
//     type) over every active lane; used for projections, effect values,
//     accum assignments, bounds, and keys.
//   * filter mode — the program carries kFilter* instructions that compact
//     the active-lane selection in place (Vectorwise-style selection
//     vectors). A filter program is an AND-chain of conjuncts; after each
//     conjunct only surviving lanes are evaluated by later instructions,
//     which is where the fused filter beats the tree walker (it evaluates
//     every conjunct over the full span).
//
// Column operands are resolved at compile time: state reads carry their
// FieldIdx and side, locals their slot, constants their pool index. At run
// time an instruction therefore touches only raw column pointers.
//
// See README.md in this directory for the full ISA table and fusion rules.

#ifndef SGL_VM_BYTECODE_H_
#define SGL_VM_BYTECODE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/types.h"
#include "src/schema/type.h"

namespace sgl {

enum class VmOp : uint8_t {
  // --- Loads (dst <- source, per active lane) --------------------------
  kConstNum,       ///< dst = const_pool[field] (uniform)
  kConstBool,      ///< dst = field != 0 (uniform)
  kConstRef,       ///< dst = null entity (uniform)
  kLoadStateNum,   ///< dst = side.num_col(field)[row]
  kLoadStateBool,  ///< dst = side.bool_col(field)[row]
  kLoadStateRef,   ///< dst = side.ref_col(field)[row]
  kLoadLocalNum,   ///< dst = locals.num[field][outer_row]
  kLoadLocalBool,  ///< dst = locals.bool[field][outer_row]
  kLoadLocalRef,   ///< dst = locals.ref[field][outer_row]
  kLoadRowId,      ///< dst = side.id_at(row)
  kGatherNum,      ///< dst = world[find(ref[a])].num(field); 0 if null
  kGatherBool,     ///< dst = world[find(ref[a])].bool(field); false if null
  kGatherRef,      ///< dst = world[find(ref[a])].ref(field); null if null

  // --- Numeric kernels (guarded semantics from src/ra/numeric.h) -------
  kAdd, kSub, kMul, kDiv, kMod, kMin, kMax, kPow,  ///< dst = a (op) b
  kNeg, kAbs, kSqrt, kFloor, kCeil,                ///< dst = (op) a
  kClampOp,                                        ///< dst = clamp(a, b, c)

  // --- Comparisons / logic (bool dst) ----------------------------------
  kCmpLt, kCmpLe, kCmpGt, kCmpGe, kCmpEq, kCmpNe,  ///< num a, num b
  kCmpRefEq, kCmpRefNe,                            ///< ref a, ref b
  kCmpBoolEq, kCmpBoolNe,                          ///< bool a, bool b
  kAnd, kOr,                                       ///< dst = a & b / a | b
  kNot,                                            ///< dst = !a

  // --- Branchless selects (a = bool cond, b = then, c = else) ----------
  kSelectNum, kSelectBool, kSelectRef,

  // --- Set reads --------------------------------------------------------
  kSetSizeState,      ///< num dst = |side.set_col(field)[row]|
  kSetSizeRef,        ///< num dst = |set(field) of find(ref[a])|; 0 if null
  kSetContainsState,  ///< bool dst = side.set_col(field)[row].contains(ref[a])
  kSetContainsRef,    ///< bool dst = set(field) of find(ref[b]) ∋ ref[a];
                      ///< a null owner reads as the empty set

  // --- Filter mode: compact the active-lane selection -------------------
  kFilterBool,                                            ///< keep bool[a]
  kFilterLt, kFilterLe, kFilterGt, kFilterGe, kFilterEq,  ///< keep cmp(num a,
  kFilterNe,                                              ///<          num b)
};

const char* VmOpName(VmOp op);

/// One 16-byte instruction. Register operands index the per-type register
/// files; `field` doubles as FieldIdx (loads), local slot, or constant-pool
/// index depending on the opcode.
struct VmInstr {
  VmOp op = VmOp::kConstNum;
  uint8_t side = 0;      ///< loads: 0 = outer tuple, 1 = inner tuple
  uint16_t dst = 0;
  uint16_t a = 0;
  uint16_t b = 0;
  uint16_t c = 0;
  uint32_t field = 0;
};
static_assert(sizeof(VmInstr) <= 16, "instructions should stay compact");

/// A compiled expression (value mode) or predicate AND-chain (filter mode).
struct VmProgram {
  std::vector<VmInstr> code;
  std::vector<double> const_pool;
  uint16_t num_regs = 0;   ///< double register-file size
  uint16_t bool_regs = 0;  ///< uint8 register-file size
  uint16_t ref_regs = 0;   ///< EntityId register-file size
  uint16_t result = 0;     ///< value mode: register holding the result
  TypeKind result_kind = TypeKind::kNumber;
  bool filter_mode = false;

  /// Readable listing (tests, EXPLAIN-style debugging).
  std::string Disassemble() const;
};

}  // namespace sgl

#endif  // SGL_VM_BYTECODE_H_
