#include "src/vm/compile.h"

#include <cmath>

#include "src/common/stopwatch.h"
#include "src/telemetry/telemetry.h"

namespace sgl {
namespace {

// Well above any real expression; a tree deep enough to hit this is a
// compiler bug, and failing (-> tree-walker fallback) beats overflowing
// the uint16 operand fields.
constexpr uint16_t kMaxRegs = 4096;

/// Single-expression lowering with free-list register allocation. Operand
/// registers are freed before the destination is allocated, so elementwise
/// ops run in place and a left-associated chain uses O(1) registers.
class ExprCompiler {
 public:
  explicit ExprCompiler(VmProgram* out) : p_(out) {}

  bool ok() const { return ok_; }

  uint16_t EmitNum(const Expr& e);
  uint16_t EmitBool(const Expr& e);
  uint16_t EmitRef(const Expr& e);
  void EmitFilterChain(const Expr& e);

  void Finish(TypeKind kind, uint16_t result, bool filter_mode) {
    p_->num_regs = next_num_;
    p_->bool_regs = next_bool_;
    p_->ref_regs = next_ref_;
    p_->result = result;
    p_->result_kind = kind;
    p_->filter_mode = filter_mode;
  }

 private:
  uint16_t Alloc(std::vector<uint16_t>* free_list, uint16_t* next) {
    if (!free_list->empty()) {
      uint16_t r = free_list->back();
      free_list->pop_back();
      return r;
    }
    if (*next >= kMaxRegs) {
      Fail();
      return 0;
    }
    return (*next)++;
  }
  uint16_t AllocNum() { return Alloc(&free_num_, &next_num_); }
  uint16_t AllocBool() { return Alloc(&free_bool_, &next_bool_); }
  uint16_t AllocRef() { return Alloc(&free_ref_, &next_ref_); }
  void FreeNum(uint16_t r) { free_num_.push_back(r); }
  void FreeBool(uint16_t r) { free_bool_.push_back(r); }
  void FreeRef(uint16_t r) { free_ref_.push_back(r); }

  uint32_t ConstIdx(double v) {
    for (size_t i = 0; i < p_->const_pool.size(); ++i) {
      if (p_->const_pool[i] == v && std::signbit(p_->const_pool[i]) ==
                                        std::signbit(v)) {
        return static_cast<uint32_t>(i);
      }
    }
    p_->const_pool.push_back(v);
    return static_cast<uint32_t>(p_->const_pool.size() - 1);
  }

  void Push(VmOp op, uint16_t dst, uint16_t a = 0, uint16_t b = 0,
            uint16_t c = 0, uint8_t side = 0, uint32_t field = 0) {
    VmInstr in;
    in.op = op;
    in.side = side;
    in.dst = dst;
    in.a = a;
    in.b = b;
    in.c = c;
    in.field = field;
    p_->code.push_back(in);
  }

  void Fail() { ok_ = false; }

  VmProgram* p_;
  bool ok_ = true;
  uint16_t next_num_ = 0, next_bool_ = 0, next_ref_ = 0;
  std::vector<uint16_t> free_num_, free_bool_, free_ref_;
};

VmOp ArithOpc(ArithOp op) {
  switch (op) {
    case ArithOp::kAdd: return VmOp::kAdd;
    case ArithOp::kSub: return VmOp::kSub;
    case ArithOp::kMul: return VmOp::kMul;
    case ArithOp::kDiv: return VmOp::kDiv;
    case ArithOp::kMod: return VmOp::kMod;
    case ArithOp::kMin: return VmOp::kMin;
    case ArithOp::kMax: return VmOp::kMax;
    case ArithOp::kPow: return VmOp::kPow;
  }
  return VmOp::kAdd;
}

VmOp Call1Opc(Call1Op op) {
  switch (op) {
    case Call1Op::kAbs: return VmOp::kAbs;
    case Call1Op::kSqrt: return VmOp::kSqrt;
    case Call1Op::kFloor: return VmOp::kFloor;
    case Call1Op::kCeil: return VmOp::kCeil;
  }
  return VmOp::kAbs;
}

VmOp CmpOpc(CmpOp op) {
  switch (op) {
    case CmpOp::kLt: return VmOp::kCmpLt;
    case CmpOp::kLe: return VmOp::kCmpLe;
    case CmpOp::kGt: return VmOp::kCmpGt;
    case CmpOp::kGe: return VmOp::kCmpGe;
    case CmpOp::kEq: return VmOp::kCmpEq;
    case CmpOp::kNe: return VmOp::kCmpNe;
  }
  return VmOp::kCmpLt;
}

VmOp FilterOpc(CmpOp op) {
  switch (op) {
    case CmpOp::kLt: return VmOp::kFilterLt;
    case CmpOp::kLe: return VmOp::kFilterLe;
    case CmpOp::kGt: return VmOp::kFilterGt;
    case CmpOp::kGe: return VmOp::kFilterGe;
    case CmpOp::kEq: return VmOp::kFilterEq;
    case CmpOp::kNe: return VmOp::kFilterNe;
  }
  return VmOp::kFilterLt;
}

uint16_t ExprCompiler::EmitNum(const Expr& e) {
  if (!ok_) return 0;
  switch (e.kind) {
    case ExprKind::kNumLit: {
      uint16_t r = AllocNum();
      Push(VmOp::kConstNum, r, 0, 0, 0, 0, ConstIdx(e.num));
      return r;
    }
    case ExprKind::kStateRead: {
      uint16_t r = AllocNum();
      Push(VmOp::kLoadStateNum, r, 0, 0, 0, e.side,
           static_cast<uint32_t>(e.field));
      return r;
    }
    case ExprKind::kLocal: {
      uint16_t r = AllocNum();
      Push(VmOp::kLoadLocalNum, r, 0, 0, 0, 0,
           static_cast<uint32_t>(e.slot));
      return r;
    }
    case ExprKind::kRefState: {
      uint16_t a = EmitRef(*e.kids[0]);
      FreeRef(a);
      uint16_t r = AllocNum();
      Push(VmOp::kGatherNum, r, a, 0, 0, 0, static_cast<uint32_t>(e.field));
      return r;
    }
    case ExprKind::kUnaryMinus: {
      uint16_t a = EmitNum(*e.kids[0]);
      FreeNum(a);
      uint16_t r = AllocNum();
      Push(VmOp::kNeg, r, a);
      return r;
    }
    case ExprKind::kArith: {
      uint16_t a = EmitNum(*e.kids[0]);
      uint16_t b = EmitNum(*e.kids[1]);
      FreeNum(a);
      FreeNum(b);
      uint16_t r = AllocNum();
      Push(ArithOpc(e.arith), r, a, b);
      return r;
    }
    case ExprKind::kCall1: {
      uint16_t a = EmitNum(*e.kids[0]);
      FreeNum(a);
      uint16_t r = AllocNum();
      Push(Call1Opc(e.call1), r, a);
      return r;
    }
    case ExprKind::kIf: {
      uint16_t c = EmitBool(*e.kids[0]);
      uint16_t t = EmitNum(*e.kids[1]);
      uint16_t f = EmitNum(*e.kids[2]);
      FreeBool(c);
      FreeNum(t);
      FreeNum(f);
      uint16_t r = AllocNum();
      Push(VmOp::kSelectNum, r, c, t, f);
      return r;
    }
    case ExprKind::kClamp: {
      uint16_t v = EmitNum(*e.kids[0]);
      uint16_t lo = EmitNum(*e.kids[1]);
      uint16_t hi = EmitNum(*e.kids[2]);
      FreeNum(v);
      FreeNum(lo);
      FreeNum(hi);
      uint16_t r = AllocNum();
      Push(VmOp::kClampOp, r, v, lo, hi);
      return r;
    }
    case ExprKind::kSetSize: {
      const Expr& set = *e.kids[0];
      if (set.kind == ExprKind::kStateRead) {
        uint16_t r = AllocNum();
        Push(VmOp::kSetSizeState, r, 0, 0, 0, set.side,
             static_cast<uint32_t>(set.field));
        return r;
      }
      if (set.kind == ExprKind::kRefState) {
        uint16_t a = EmitRef(*set.kids[0]);
        FreeRef(a);
        uint16_t r = AllocNum();
        Push(VmOp::kSetSizeRef, r, a, 0, 0, 0,
             static_cast<uint32_t>(set.field));
        return r;
      }
      Fail();
      return 0;
    }
    default:
      // kEffectRead and anything else: tree-walker territory.
      Fail();
      return 0;
  }
}

uint16_t ExprCompiler::EmitBool(const Expr& e) {
  if (!ok_) return 0;
  switch (e.kind) {
    case ExprKind::kBoolLit: {
      uint16_t r = AllocBool();
      Push(VmOp::kConstBool, r, 0, 0, 0, 0, e.b ? 1u : 0u);
      return r;
    }
    case ExprKind::kStateRead: {
      uint16_t r = AllocBool();
      Push(VmOp::kLoadStateBool, r, 0, 0, 0, e.side,
           static_cast<uint32_t>(e.field));
      return r;
    }
    case ExprKind::kLocal: {
      uint16_t r = AllocBool();
      Push(VmOp::kLoadLocalBool, r, 0, 0, 0, 0,
           static_cast<uint32_t>(e.slot));
      return r;
    }
    case ExprKind::kRefState: {
      uint16_t a = EmitRef(*e.kids[0]);
      FreeRef(a);
      uint16_t r = AllocBool();
      Push(VmOp::kGatherBool, r, a, 0, 0, 0,
           static_cast<uint32_t>(e.field));
      return r;
    }
    case ExprKind::kNot: {
      uint16_t a = EmitBool(*e.kids[0]);
      FreeBool(a);
      uint16_t r = AllocBool();
      Push(VmOp::kNot, r, a);
      return r;
    }
    case ExprKind::kCmpNum: {
      uint16_t a = EmitNum(*e.kids[0]);
      uint16_t b = EmitNum(*e.kids[1]);
      FreeNum(a);
      FreeNum(b);
      uint16_t r = AllocBool();
      Push(CmpOpc(e.cmp), r, a, b);
      return r;
    }
    case ExprKind::kCmpRef: {
      uint16_t a = EmitRef(*e.kids[0]);
      uint16_t b = EmitRef(*e.kids[1]);
      FreeRef(a);
      FreeRef(b);
      uint16_t r = AllocBool();
      Push(e.cmp == CmpOp::kEq ? VmOp::kCmpRefEq : VmOp::kCmpRefNe, r, a, b);
      return r;
    }
    case ExprKind::kCmpBool: {
      uint16_t a = EmitBool(*e.kids[0]);
      uint16_t b = EmitBool(*e.kids[1]);
      FreeBool(a);
      FreeBool(b);
      uint16_t r = AllocBool();
      Push(e.cmp == CmpOp::kEq ? VmOp::kCmpBoolEq : VmOp::kCmpBoolNe, r, a,
           b);
      return r;
    }
    case ExprKind::kAndB:
    case ExprKind::kOrB: {
      uint16_t a = EmitBool(*e.kids[0]);
      uint16_t b = EmitBool(*e.kids[1]);
      FreeBool(a);
      FreeBool(b);
      uint16_t r = AllocBool();
      Push(e.kind == ExprKind::kAndB ? VmOp::kAnd : VmOp::kOr, r, a, b);
      return r;
    }
    case ExprKind::kIf: {
      uint16_t c = EmitBool(*e.kids[0]);
      uint16_t t = EmitBool(*e.kids[1]);
      uint16_t f = EmitBool(*e.kids[2]);
      FreeBool(c);
      FreeBool(t);
      FreeBool(f);
      uint16_t r = AllocBool();
      Push(VmOp::kSelectBool, r, c, t, f);
      return r;
    }
    case ExprKind::kSetContains: {
      const Expr& set = *e.kids[0];
      if (set.kind == ExprKind::kStateRead) {
        uint16_t probe = EmitRef(*e.kids[1]);
        FreeRef(probe);
        uint16_t r = AllocBool();
        Push(VmOp::kSetContainsState, r, probe, 0, 0, set.side,
             static_cast<uint32_t>(set.field));
        return r;
      }
      if (set.kind == ExprKind::kRefState) {
        uint16_t owner = EmitRef(*set.kids[0]);
        uint16_t probe = EmitRef(*e.kids[1]);
        FreeRef(owner);
        FreeRef(probe);
        uint16_t r = AllocBool();
        Push(VmOp::kSetContainsRef, r, probe, owner, 0, 0,
             static_cast<uint32_t>(set.field));
        return r;
      }
      Fail();  // set-valued kIf operand: scalar fallback
      return 0;
    }
    default:
      // kEffectRead / kAssigned are update-phase constructs.
      Fail();
      return 0;
  }
}

uint16_t ExprCompiler::EmitRef(const Expr& e) {
  if (!ok_) return 0;
  switch (e.kind) {
    case ExprKind::kNullRef: {
      uint16_t r = AllocRef();
      Push(VmOp::kConstRef, r);
      return r;
    }
    case ExprKind::kStateRead: {
      uint16_t r = AllocRef();
      Push(VmOp::kLoadStateRef, r, 0, 0, 0, e.side,
           static_cast<uint32_t>(e.field));
      return r;
    }
    case ExprKind::kLocal: {
      uint16_t r = AllocRef();
      Push(VmOp::kLoadLocalRef, r, 0, 0, 0, 0,
           static_cast<uint32_t>(e.slot));
      return r;
    }
    case ExprKind::kRowId: {
      uint16_t r = AllocRef();
      Push(VmOp::kLoadRowId, r, 0, 0, 0, e.side);
      return r;
    }
    case ExprKind::kRefState: {
      uint16_t a = EmitRef(*e.kids[0]);
      FreeRef(a);
      uint16_t r = AllocRef();
      Push(VmOp::kGatherRef, r, a, 0, 0, 0, static_cast<uint32_t>(e.field));
      return r;
    }
    case ExprKind::kIf: {
      uint16_t c = EmitBool(*e.kids[0]);
      uint16_t t = EmitRef(*e.kids[1]);
      uint16_t f = EmitRef(*e.kids[2]);
      FreeBool(c);
      FreeRef(t);
      FreeRef(f);
      uint16_t r = AllocRef();
      Push(VmOp::kSelectRef, r, c, t, f);
      return r;
    }
    default:
      Fail();
      return 0;
  }
}

void ExprCompiler::EmitFilterChain(const Expr& e) {
  if (!ok_) return;
  if (e.kind == ExprKind::kAndB) {
    // Left-to-right, matching the tree walker's conjunct order; each
    // conjunct's operands evaluate over the survivors of the previous one.
    EmitFilterChain(*e.kids[0]);
    EmitFilterChain(*e.kids[1]);
    return;
  }
  if (e.kind == ExprKind::kCmpNum) {
    // Fused compare-and-compact.
    uint16_t a = EmitNum(*e.kids[0]);
    uint16_t b = EmitNum(*e.kids[1]);
    FreeNum(a);
    FreeNum(b);
    Push(FilterOpc(e.cmp), 0, a, b);
    return;
  }
  // Any other conjunct (ref equality, boolean field, OR, ...): evaluate to
  // a bool column and compact on it.
  uint16_t c = EmitBool(e);
  FreeBool(c);
  Push(VmOp::kFilterBool, 0, c);
}

}  // namespace

bool CompileValue(const Expr& e, TypeKind kind, VmProgram* out) {
  *out = VmProgram();
  ExprCompiler c(out);
  uint16_t result = 0;
  switch (kind) {
    case TypeKind::kNumber: result = c.EmitNum(e); break;
    case TypeKind::kBool: result = c.EmitBool(e); break;
    case TypeKind::kRef: result = c.EmitRef(e); break;
    case TypeKind::kSet: return false;  // sets never materialize as columns
  }
  if (!c.ok()) return false;
  c.Finish(kind, result, /*filter_mode=*/false);
  return true;
}

bool CompileFilter(const Expr& e, VmProgram* out) {
  *out = VmProgram();
  ExprCompiler c(out);
  c.EmitFilterChain(e);
  if (!c.ok()) return false;
  c.Finish(TypeKind::kBool, 0, /*filter_mode=*/true);
  return true;
}

void VmProgramCache::AddValue(const Expr* e, TypeKind kind) {
  if (e == nullptr || values_.count(e) != 0) return;
  VmProgram p;
  if (CompileValue(*e, kind, &p)) {
    values_.emplace(e, std::move(p));
    ++programs_compiled_;
  } else {
    ++fallbacks_;
  }
}

void VmProgramCache::AddFilter(const Expr* e) {
  if (e == nullptr || filters_.count(e) != 0) return;
  VmProgram p;
  if (CompileFilter(*e, &p)) {
    filters_.emplace(e, std::move(p));
    ++programs_compiled_;
  } else {
    ++fallbacks_;
  }
}

void VmProgramCache::AddWrites(const std::vector<EffectWrite>& writes,
                               const Catalog& cat) {
  for (const EffectWrite& w : writes) {
    AddFilter(w.guard.get());
    if (w.target_kind == TargetKind::kRef) {
      AddValue(w.target_ref.get(), TypeKind::kRef);
    }
    if (w.set_insert) {
      AddValue(w.value.get(), TypeKind::kRef);
    } else {
      AddValue(w.value.get(),
               cat.Get(w.target_cls).effect_field(w.field).type.kind);
    }
  }
}

void VmProgramCache::AddOps(const std::vector<std::unique_ptr<PlanOp>>& ops,
                            const Catalog& cat) {
  for (const auto& op : ops) {
    switch (op->kind) {
      case PlanOp::Kind::kComputeLocals: {
        auto* o = static_cast<const ComputeLocalsOp*>(op.get());
        for (const LocalDef& def : o->defs) {
          AddValue(def.value.get(), def.type.kind);
        }
        break;
      }
      case PlanOp::Kind::kEffects:
        AddWrites(static_cast<const EffectsOp*>(op.get())->writes, cat);
        break;
      case PlanOp::Kind::kAccum: {
        auto* o = static_cast<const AccumOp*>(op.get());
        AddFilter(o->outer_guard.get());
        for (const RangeDim& d : o->range_dims) {
          AddValue(d.lo.get(), TypeKind::kNumber);
          AddValue(d.hi.get(), TypeKind::kNumber);
        }
        for (const HashDim& d : o->hash_dims) {
          AddValue(d.key.get(), d.inner_field == kInvalidField
                                    ? TypeKind::kRef
                                    : TypeKind::kNumber);
        }
        for (const AccumAssign& a : o->accum_assigns) {
          // Assign guards are consumed as columns by the fold loop, not as
          // selection compaction — value mode.
          AddValue(a.guard.get(), TypeKind::kBool);
          AddValue(a.value.get(), o->accum_type.kind);
        }
        AddWrites(o->pair_writes, cat);
        break;
      }
      case PlanOp::Kind::kTxnEmit: {
        auto* o = static_cast<const TxnEmitOp*>(op.get());
        AddFilter(o->guard.get());
        // Intent targets/values are evaluated per emitted row; compile them
        // as value programs too.
        for (const TxnWrite& w : o->writes) {
          if (w.target_kind == TargetKind::kRef) {
            AddValue(w.target_ref.get(), TypeKind::kRef);
          }
          AddValue(w.value.get(), w.op == TxnWriteOp::kAddDelta
                                      ? TypeKind::kNumber
                                      : TypeKind::kRef);
        }
        break;
      }
    }
  }
}

void VmProgramCache::CompileProgram(const CompiledProgram& prog) {
  Stopwatch timer;
  // Tick 0: compilation happens once, at executor construction.
  SGL_TRACE_SPAN(telemetry_, kSpanVmCompile, 0, 0, 0);
  const Catalog& cat = *prog.catalog;
  for (const CompiledScript& script : prog.scripts) {
    for (const auto& phase : script.phases) AddOps(phase, cat);
  }
  for (const CompiledHandler& h : prog.handlers) {
    AddValue(h.cond.get(), TypeKind::kBool);
    AddOps(h.ops, cat);
  }
  // Update rules read merged effects (kEffectRead) — tree-walker only.
  compile_micros_ += timer.ElapsedMicros();
}

}  // namespace sgl
