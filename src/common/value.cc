#include "src/common/value.h"

#include <cstdio>

namespace sgl {

void EntitySet::Normalize() {
  std::sort(ids_.begin(), ids_.end());
  ids_.erase(std::unique(ids_.begin(), ids_.end()), ids_.end());
}

bool EntitySet::Insert(EntityId id) {
  auto it = std::lower_bound(ids_.begin(), ids_.end(), id);
  if (it != ids_.end() && *it == id) return false;
  ids_.insert(it, id);
  return true;
}

bool EntitySet::Erase(EntityId id) {
  auto it = std::lower_bound(ids_.begin(), ids_.end(), id);
  if (it == ids_.end() || *it != id) return false;
  ids_.erase(it);
  return true;
}

void EntitySet::UnionWith(const EntitySet& other) {
  std::vector<EntityId> merged;
  merged.reserve(ids_.size() + other.ids_.size());
  std::set_union(ids_.begin(), ids_.end(), other.ids_.begin(),
                 other.ids_.end(), std::back_inserter(merged));
  ids_ = std::move(merged);
}

void EntitySet::IntersectWith(const EntitySet& other) {
  std::vector<EntityId> merged;
  std::set_intersection(ids_.begin(), ids_.end(), other.ids_.begin(),
                        other.ids_.end(), std::back_inserter(merged));
  ids_ = std::move(merged);
}

std::string Value::ToString() const {
  switch (kind()) {
    case ValueKind::kNumber: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%g", AsNumber());
      return buf;
    }
    case ValueKind::kBool:
      return AsBool() ? "true" : "false";
    case ValueKind::kRef: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "@%lld",
                    static_cast<long long>(AsRef()));
      return buf;
    }
    case ValueKind::kSet: {
      std::string out = "{";
      bool first = true;
      for (EntityId id : AsSet()) {
        if (!first) out += ",";
        first = false;
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(id));
        out += buf;
      }
      out += "}";
      return out;
    }
  }
  return "?";
}

bool Value::operator==(const Value& other) const { return v_ == other.v_; }

}  // namespace sgl
