#include "src/common/value.h"

#include <cstdio>

namespace sgl {

void EntitySet::Grow(size_t need) {
  // Double from the current capacity so repeated one-element inserts touch
  // the allocator only O(log n) times; once heap, capacity never shrinks.
  size_t new_cap = cap_;
  while (new_cap < need) new_cap *= 2;
  EntityId* fresh = new EntityId[new_cap];
  std::memcpy(fresh, data(), size_ * sizeof(EntityId));
  FreeHeap();
  heap_ = fresh;
  cap_ = static_cast<uint32_t>(new_cap);
}

void EntitySet::AssignNormalized(const EntityId* src, size_t n) {
  if (n == 0) {
    size_ = 0;
    return;
  }
  if (n > cap_) Grow(n);
  EntityId* dst = MutableData();
  std::memcpy(dst, src, n * sizeof(EntityId));
  std::sort(dst, dst + n);
  size_ = static_cast<uint32_t>(std::unique(dst, dst + n) - dst);
}

bool EntitySet::Insert(EntityId id) {
  EntityId* d = MutableData();
  EntityId* it = std::lower_bound(d, d + size_, id);
  if (it != d + size_ && *it == id) return false;
  const size_t pos = static_cast<size_t>(it - d);
  if (size_ == cap_) {
    Grow(size_ + 1);
    d = MutableData();
  }
  std::memmove(d + pos + 1, d + pos, (size_ - pos) * sizeof(EntityId));
  d[pos] = id;
  ++size_;
  return true;
}

bool EntitySet::Erase(EntityId id) {
  EntityId* d = MutableData();
  EntityId* it = std::lower_bound(d, d + size_, id);
  if (it == d + size_ || *it != id) return false;
  std::memmove(it, it + 1,
               static_cast<size_t>(d + size_ - it - 1) * sizeof(EntityId));
  --size_;
  return true;
}

void EntitySet::UnionWith(const EntitySet& other,
                          std::vector<EntityId>* scratch) {
  if (other.empty()) return;
  scratch->clear();
  if (scratch->capacity() < size_ + other.size_) {
    scratch->reserve(size_ + other.size_);
  }
  std::set_union(begin(), end(), other.begin(), other.end(),
                 std::back_inserter(*scratch));
  AssignSorted(scratch->data(), scratch->size());
}

void EntitySet::IntersectWith(const EntitySet& other) {
  EntityId* d = MutableData();
  const EntityId* a = d;
  const EntityId* a_end = d + size_;
  const EntityId* b = other.begin();
  const EntityId* b_end = other.end();
  EntityId* out = d;
  while (a != a_end && b != b_end) {
    if (*a < *b) {
      ++a;
    } else if (*b < *a) {
      ++b;
    } else {
      *out++ = *a++;
      ++b;
    }
  }
  size_ = static_cast<uint32_t>(out - d);
}

std::string Value::ToString() const {
  switch (kind()) {
    case ValueKind::kNumber: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%g", AsNumber());
      return buf;
    }
    case ValueKind::kBool:
      return AsBool() ? "true" : "false";
    case ValueKind::kRef: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "@%lld",
                    static_cast<long long>(AsRef()));
      return buf;
    }
    case ValueKind::kSet: {
      std::string out = "{";
      bool first = true;
      for (EntityId id : AsSet()) {
        if (!first) out += ",";
        first = false;
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(id));
        out += buf;
      }
      out += "}";
      return out;
    }
  }
  return "?";
}

bool Value::operator==(const Value& other) const { return v_ == other.v_; }

}  // namespace sgl
