// Deterministic pseudo-random number generation (splitmix64 / xoshiro256**).
//
// All stochastic behaviour in SGL workload generators flows through Rng so
// that runs are bit-reproducible given a seed — a prerequisite for the
// checkpoint/replay debugger (§3.3) and for parallel-determinism tests.

#ifndef SGL_COMMON_RNG_H_
#define SGL_COMMON_RNG_H_

#include <cstdint>

#include "src/common/types.h"

namespace sgl {

/// One splitmix64 finalization step as a stateless 64-bit avalanche hash:
/// deterministic, seedable by xor-ing into the argument. Used for job
/// ordering keys (src/async/) and flat open-addressing probes.
inline uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Fast, seedable, deterministic PRNG (xoshiro256** seeded via splitmix64).
/// Not cryptographic. Copyable: copies continue the same stream independently.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x5eed5eedULL) { Seed(seed); }

  /// Re-seeds the generator deterministically from one 64-bit value.
  void Seed(uint64_t seed) {
    uint64_t x = seed;
    for (int i = 0; i < 4; ++i) s_[i] = SplitMix64(&x);
  }

  /// Uniform 64-bit value.
  uint64_t Next() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) {
    return lo + (hi - lo) * NextDouble();
  }

  /// Uniform integer in [0, n). Requires n > 0.
  uint64_t NextBelow(uint64_t n) {
    SGL_DCHECK(n > 0);
    // Lemire's multiply-shift rejection-free approximation is fine here.
    return static_cast<uint64_t>(
        (static_cast<__uint128_t>(Next()) * n) >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    SGL_DCHECK(lo <= hi);
    return lo + static_cast<int64_t>(
                    NextBelow(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// True with probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  static uint64_t SplitMix64(uint64_t* state) {
    uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  uint64_t s_[4];
};

}  // namespace sgl

#endif  // SGL_COMMON_RNG_H_
