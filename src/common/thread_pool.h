// Fixed-size worker pool used by the parallel executor (§4.2).
//
// The executor submits batches of independent closures (one per morsel) and
// waits for the whole batch; there is no cross-task synchronization because
// the query and effect phases are read-only over state (the paper's core
// parallelism argument).
//
// ParallelFor is allocation-free: the callable is broadcast to the resident
// workers by pointer (a generation counter wakes them), so the per-tick
// fan-out costs no std::function boxing and no queue nodes.

#ifndef SGL_COMMON_THREAD_POOL_H_
#define SGL_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace sgl {

/// A simple fixed-size thread pool with a blocking batch-wait primitive.
class ThreadPool {
 public:
  /// Creates a pool with `num_threads` workers (>= 1).
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Enqueues one task. Thread-safe.
  void Submit(std::function<void()> task);

  /// Blocks until every task submitted via Submit() so far has finished
  /// executing. Covers Submit work only — an in-flight ParallelFor (which
  /// blocks its own caller until completion) is not waited on.
  void WaitIdle();

  /// Runs `fn(i)` for i in [0, n) across the pool and waits for completion.
  /// Work is pre-partitioned: task i is a fixed unit, so the decomposition
  /// (and therefore any order-keyed merge) is independent of thread count.
  /// The callable is invoked by reference — nothing is copied or boxed.
  /// At most one ParallelFor may be in flight per pool (the broadcast state
  /// is shared); overlapping calls are a checked error. Submit/WaitIdle
  /// remain independently thread-safe.
  template <typename Fn>
  void ParallelFor(int n, Fn&& fn) {
    using Decayed =
        std::remove_const_t<std::remove_reference_t<Fn>>;
    ParallelForImpl(n, &Invoke<Decayed>,
                    const_cast<Decayed*>(std::addressof(fn)));
  }

 private:
  template <typename Fn>
  static void Invoke(void* ctx, int i) {
    (*static_cast<Fn*>(ctx))(i);
  }

  void ParallelForImpl(int n, void (*invoke)(void*, int), void* ctx);
  /// Claims and runs parallel-for indices until the range is exhausted,
  /// then deregisters as a sharer (last one out signals completion).
  void RunParallelShare(void (*invoke)(void*, int), void* ctx, int n);
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable work_cv_;   // signals workers
  std::condition_variable idle_cv_;   // signals WaitIdle / ParallelFor
  int active_ = 0;
  bool stop_ = false;

  // Broadcast state for the current ParallelFor. pf_gen_/pf_invoke_/
  // pf_ctx_/pf_n_/pf_sharers_ are guarded by mu_; the counters are atomic.
  uint64_t pf_gen_ = 0;  // bumped per call; wakes workers
  void (*pf_invoke_)(void*, int) = nullptr;
  void* pf_ctx_ = nullptr;
  int pf_n_ = 0;
  int pf_sharers_ = 0;              // participants inside the share
  std::atomic<int> pf_next_{0};     // next unclaimed index
  std::atomic<int> pf_pending_{0};  // indices not yet completed
};

}  // namespace sgl

#endif  // SGL_COMMON_THREAD_POOL_H_
