// Fixed-size worker pool used by the parallel executor (§4.2).
//
// The executor submits batches of independent closures (one per morsel) and
// waits for the whole batch; there is no cross-task synchronization because
// the query and effect phases are read-only over state (the paper's core
// parallelism argument).

#ifndef SGL_COMMON_THREAD_POOL_H_
#define SGL_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace sgl {

/// A simple fixed-size thread pool with a blocking batch-wait primitive.
class ThreadPool {
 public:
  /// Creates a pool with `num_threads` workers (>= 1).
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Enqueues one task. Thread-safe.
  void Submit(std::function<void()> task);

  /// Blocks until every task submitted so far has finished executing.
  void WaitIdle();

  /// Runs `fn(i)` for i in [0, n) across the pool and waits for completion.
  /// Work is pre-partitioned: task i is a fixed unit, so the decomposition
  /// (and therefore any order-keyed merge) is independent of thread count.
  void ParallelFor(int n, const std::function<void(int)>& fn);

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable work_cv_;   // signals workers
  std::condition_variable idle_cv_;   // signals WaitIdle
  int active_ = 0;
  bool stop_ = false;
};

}  // namespace sgl

#endif  // SGL_COMMON_THREAD_POOL_H_
