#include "src/common/alloc_hook.h"

#include <atomic>
#include <cstdlib>
#include <new>

namespace sgl {
namespace {

std::atomic<int64_t> g_alloc_count{0};
std::atomic<int64_t> g_alloc_bytes{0};
/// < 0: disarmed. Reaching exactly 0 on the decrement fails that call.
std::atomic<int64_t> g_alloc_fail_countdown{-1};

#ifdef SGL_COUNT_ALLOCS
inline void Note(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  g_alloc_bytes.fetch_add(static_cast<int64_t>(size),
                          std::memory_order_relaxed);
}

/// Injected-failure check for the throwing operator-new paths. The armed
/// case is rare (fault tests only); the disarmed cost is one relaxed load.
inline void MaybeFail() {
  if (g_alloc_fail_countdown.load(std::memory_order_relaxed) < 0) return;
  if (g_alloc_fail_countdown.fetch_sub(1, std::memory_order_relaxed) == 0) {
    throw std::bad_alloc();
  }
}

void* CountedAlloc(std::size_t size) {
  MaybeFail();
  void* p = std::malloc(size != 0 ? size : 1);
  if (p == nullptr) throw std::bad_alloc();
  Note(size);
  return p;
}

void* CountedAlignedAlloc(std::size_t size, std::size_t align) {
  MaybeFail();
#if defined(_WIN32)
  void* p = _aligned_malloc(size != 0 ? size : align, align);
#else
  // aligned_alloc requires size to be a multiple of the alignment.
  std::size_t rounded = (size + align - 1) / align * align;
  void* p = std::aligned_alloc(align, rounded != 0 ? rounded : align);
#endif
  if (p == nullptr) throw std::bad_alloc();
  Note(size);
  return p;
}

// On Windows _aligned_malloc memory must go back through _aligned_free;
// everywhere else aligned_alloc pairs with free.
inline void AlignedFree(void* p) {
#if defined(_WIN32)
  _aligned_free(p);
#else
  std::free(p);
#endif
}
#endif  // SGL_COUNT_ALLOCS

}  // namespace

AllocCounts AllocCountersNow() {
  AllocCounts c;
  c.count = g_alloc_count.load(std::memory_order_relaxed);
  c.bytes = g_alloc_bytes.load(std::memory_order_relaxed);
  return c;
}

bool AllocCountingEnabled() {
#ifdef SGL_COUNT_ALLOCS
  return true;
#else
  return false;
#endif
}

void ArmAllocFailure(int64_t after) {
  g_alloc_fail_countdown.store(after >= 0 ? after : 0,
                               std::memory_order_relaxed);
}

void DisarmAllocFailure() {
  g_alloc_fail_countdown.store(-1, std::memory_order_relaxed);
}

bool AllocFailureSupported() { return AllocCountingEnabled(); }

}  // namespace sgl

#ifdef SGL_COUNT_ALLOCS

void* operator new(std::size_t size) { return sgl::CountedAlloc(size); }
void* operator new[](std::size_t size) { return sgl::CountedAlloc(size); }

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  void* p = std::malloc(size != 0 ? size : 1);
  if (p != nullptr) sgl::Note(size);
  return p;
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return operator new(size, std::nothrow);
}

void* operator new(std::size_t size, std::align_val_t align) {
  return sgl::CountedAlignedAlloc(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return sgl::CountedAlignedAlloc(size, static_cast<std::size_t>(align));
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept {
  sgl::AlignedFree(p);
}
void operator delete[](void* p, std::align_val_t) noexcept {
  sgl::AlignedFree(p);
}
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  sgl::AlignedFree(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  sgl::AlignedFree(p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

#endif  // SGL_COUNT_ALLOCS
