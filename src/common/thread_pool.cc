#include "src/common/thread_pool.h"

#include <atomic>

#include "src/common/types.h"

namespace sgl {

ThreadPool::ThreadPool(int num_threads) {
  SGL_CHECK(num_threads >= 1);
  workers_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

void ThreadPool::WaitIdle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::ParallelFor(int n, const std::function<void(int)>& fn) {
  if (n <= 0) return;
  if (n == 1 || num_threads() == 1) {
    for (int i = 0; i < n; ++i) fn(i);
    return;
  }
  std::atomic<int> next{0};
  std::atomic<int> done{0};
  std::mutex done_mu;
  std::condition_variable done_cv;
  const int tasks = std::min(n, num_threads());
  for (int t = 0; t < tasks; ++t) {
    Submit([&, n] {
      for (int i = next.fetch_add(1); i < n; i = next.fetch_add(1)) fn(i);
      {
        std::unique_lock<std::mutex> lock(done_mu);
        ++done;
      }
      done_cv.notify_one();
    });
  }
  std::unique_lock<std::mutex> lock(done_mu);
  done_cv.wait(lock, [&] { return done.load() == tasks; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace sgl
