#include "src/common/thread_pool.h"

#include "src/common/types.h"

namespace sgl {

ThreadPool::ThreadPool(int num_threads) {
  SGL_CHECK(num_threads >= 1);
  workers_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

void ThreadPool::WaitIdle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::RunParallelShare(void (*invoke)(void*, int), void* ctx,
                                  int n) {
  for (int i = pf_next_.fetch_add(1); i < n; i = pf_next_.fetch_add(1)) {
    invoke(ctx, i);
    pf_pending_.fetch_sub(1);
  }
  std::unique_lock<std::mutex> lock(mu_);
  --pf_sharers_;
  if (pf_sharers_ == 0 && pf_pending_.load() == 0) idle_cv_.notify_all();
}

void ThreadPool::ParallelForImpl(int n, void (*invoke)(void*, int),
                                 void* ctx) {
  if (n <= 0) return;
  if (n == 1 || num_threads() == 1) {
    for (int i = 0; i < n; ++i) invoke(ctx, i);
    return;
  }
  {
    std::unique_lock<std::mutex> lock(mu_);
    // Single-flight: the broadcast state is shared, so a second concurrent
    // ParallelFor would corrupt the one in progress.
    SGL_CHECK(pf_sharers_ == 0 && pf_pending_.load() == 0);
    pf_invoke_ = invoke;
    pf_ctx_ = ctx;
    pf_n_ = n;
    pf_next_.store(0, std::memory_order_relaxed);
    pf_pending_.store(n, std::memory_order_relaxed);
    pf_sharers_ = 1;  // the caller participates too
    ++pf_gen_;
  }
  work_cv_.notify_all();
  RunParallelShare(invoke, ctx, n);
  // Completion requires both every index done AND every participant out of
  // the share — a straggler holding last tick's snapshot can then never
  // claim indices of a future call.
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] {
    return pf_sharers_ == 0 && pf_pending_.load() == 0;
  });
}

void ThreadPool::WorkerLoop() {
  uint64_t seen_gen = 0;
  for (;;) {
    std::unique_lock<std::mutex> lock(mu_);
    work_cv_.wait(lock, [&] {
      return stop_ || !queue_.empty() || pf_gen_ != seen_gen;
    });
    if (stop_ && queue_.empty()) return;
    if (pf_gen_ != seen_gen) {
      seen_gen = pf_gen_;
      if (pf_pending_.load() > 0) {
        // Snapshot the call under the lock; registration as a sharer keeps
        // the snapshot valid until we exit the share.
        ++pf_sharers_;
        auto invoke = pf_invoke_;
        void* ctx = pf_ctx_;
        int n = pf_n_;
        lock.unlock();
        RunParallelShare(invoke, ctx, n);
      }
      continue;
    }
    std::function<void()> task = std::move(queue_.front());
    queue_.pop_front();
    ++active_;
    lock.unlock();
    task();
    lock.lock();
    --active_;
    if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
  }
}

}  // namespace sgl
