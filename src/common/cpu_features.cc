#include "src/common/cpu_features.h"

#include <atomic>
#include <cstdlib>

namespace sgl {
namespace {

// -1 = no override installed; otherwise a KernelDispatch value.
std::atomic<int> g_dispatch_override{-1};

bool ForceScalarEnv() {
  const char* v = std::getenv("SGL_FORCE_SCALAR");
  return v != nullptr && v[0] != '\0' && !(v[0] == '0' && v[1] == '\0');
}

KernelDispatch DefaultDispatch() {
  // Env + cpuid never change mid-process; compute once.
  static const KernelDispatch d = (!ForceScalarEnv() && CpuHasAvx2())
                                      ? KernelDispatch::kAvx2
                                      : KernelDispatch::kScalar;
  return d;
}

}  // namespace

const char* KernelDispatchName(KernelDispatch d) {
  switch (d) {
    case KernelDispatch::kScalar:
      return "scalar";
    case KernelDispatch::kAvx2:
      return "avx2";
  }
  return "?";
}

bool CpuHasAvx2() {
#if SGL_KERNELS_AVX2
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

KernelDispatch ActiveKernelDispatch() {
  const int ov = g_dispatch_override.load(std::memory_order_relaxed);
  if (ov >= 0) return static_cast<KernelDispatch>(ov);
  return DefaultDispatch();
}

void SetKernelDispatch(KernelDispatch d) {
  if (d == KernelDispatch::kAvx2 && !CpuHasAvx2()) d = KernelDispatch::kScalar;
  g_dispatch_override.store(static_cast<int>(d), std::memory_order_relaxed);
}

void ResetKernelDispatch() {
  g_dispatch_override.store(-1, std::memory_order_relaxed);
}

std::string CpuFeatureString() {
  std::string s;
#if SGL_KERNELS_AVX2
  const auto add = [&s](bool has, const char* name) {
    if (!has) return;
    if (!s.empty()) s += ',';
    s += name;
  };
  add(__builtin_cpu_supports("sse4.2") != 0, "sse4.2");
  add(__builtin_cpu_supports("avx") != 0, "avx");
  add(__builtin_cpu_supports("avx2") != 0, "avx2");
  add(__builtin_cpu_supports("fma") != 0, "fma");
  add(__builtin_cpu_supports("avx512f") != 0, "avx512f");
#endif
  if (s.empty()) s = "none";
  return s;
}

}  // namespace sgl
