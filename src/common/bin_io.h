// Little-endian POD append/read helpers for checkpoint-style blobs.
//
// Every serialized artifact in the engine (World::Serialize, shard
// partitions, and now checkpoint files, in-flight job submissions, and
// component state) is a flat byte string of trivially-copyable records.
// These helpers centralize the memcpy-based append and the bounds-checked
// cursor read so every format validates truncation the same way instead of
// hand-rolling pointer arithmetic.

#ifndef SGL_COMMON_BIN_IO_H_
#define SGL_COMMON_BIN_IO_H_

#include <cstring>
#include <string>
#include <type_traits>

namespace sgl {
namespace binio {

template <typename T>
inline void Append(std::string* out, const T& v) {
  static_assert(std::is_trivially_copyable<T>::value,
                "binio::Append requires a trivially copyable type");
  out->append(reinterpret_cast<const char*>(&v), sizeof(T));
}

inline void AppendBytes(std::string* out, const void* data, size_t n) {
  out->append(static_cast<const char*>(data), n);
}

/// u64 length prefix + raw bytes.
inline void AppendString(std::string* out, const std::string& s) {
  Append<uint64_t>(out, static_cast<uint64_t>(s.size()));
  out->append(s);
}

/// Bounds-checked read; advances `*cur` on success, leaves it untouched and
/// returns false on truncation.
template <typename T>
inline bool Read(const char** cur, const char* end, T* v) {
  static_assert(std::is_trivially_copyable<T>::value,
                "binio::Read requires a trivially copyable type");
  if (static_cast<size_t>(end - *cur) < sizeof(T)) return false;
  std::memcpy(v, *cur, sizeof(T));
  *cur += sizeof(T);
  return true;
}

inline bool ReadBytes(const char** cur, const char* end, void* dst,
                      size_t n) {
  if (static_cast<size_t>(end - *cur) < n) return false;
  std::memcpy(dst, *cur, n);
  *cur += n;
  return true;
}

inline bool ReadString(const char** cur, const char* end, std::string* s) {
  uint64_t n = 0;
  if (!Read(cur, end, &n)) return false;
  if (static_cast<uint64_t>(end - *cur) < n) return false;
  s->assign(*cur, static_cast<size_t>(n));
  *cur += n;
  return true;
}

}  // namespace binio
}  // namespace sgl

#endif  // SGL_COMMON_BIN_IO_H_
