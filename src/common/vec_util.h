// Small vector utilities shared by the pooled-buffer code paths.

#ifndef SGL_COMMON_VEC_UTIL_H_
#define SGL_COMMON_VEC_UTIL_H_

#include <algorithm>
#include <vector>

namespace sgl {

/// resize(n) with geometric capacity growth. A cleared (size-0) vector
/// resized to a slowly-rising n re-allocates on every call (libstdc++ grows
/// it to exactly n); reserving max(n, 2*capacity) first restores amortized
/// growth so pooled buffers stop allocating once past the workload's
/// high-water mark.
template <typename T>
inline void ResizeAmortized(std::vector<T>* v, size_t n) {
  if (n > v->capacity()) v->reserve(std::max(n, v->capacity() * 2));
  v->resize(n);
}

}  // namespace sgl

#endif  // SGL_COMMON_VEC_UTIL_H_
