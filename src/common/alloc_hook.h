// Global allocation accounting for the zero-allocation steady-state goal.
//
// When built with SGL_COUNT_ALLOCS (the default), alloc_hook.cc replaces the
// global operator new/delete with malloc-backed versions that bump two
// process-wide relaxed atomics per allocation. TickExecutor snapshots them
// around each tick to expose TickStats::allocs_per_tick / bytes_per_tick —
// the counters the steady-state regression test and the benchmarks assert
// on. Cost is one relaxed fetch_add per allocation, which is noise next to
// the allocation itself; an embedding engine can compile the hook out with
// -DSGL_COUNT_ALLOCS=OFF, in which case the counters read as zero.

#ifndef SGL_COMMON_ALLOC_HOOK_H_
#define SGL_COMMON_ALLOC_HOOK_H_

#include <cstdint>

namespace sgl {

/// Monotonic process-wide allocation totals (all threads).
struct AllocCounts {
  int64_t count = 0;  ///< operator-new calls since process start
  int64_t bytes = 0;  ///< bytes requested since process start
};

/// Current totals. Two snapshots bracket a region; their difference is the
/// region's allocation traffic. Always zero when the hook is compiled out.
AllocCounts AllocCountersNow();

/// True when the counting hook is linked in (SGL_COUNT_ALLOCS builds).
bool AllocCountingEnabled();

/// Arms a one-shot allocation failure (fault injection, src/fault/): the
/// (after + 1)-th subsequent throwing operator-new call raises
/// std::bad_alloc, exactly as a real exhausted heap would. Arm around a
/// single-threaded region — the countdown is process-global, so a
/// concurrent allocator on another thread could absorb the failure.
/// No-op when the hook is compiled out (see AllocFailureSupported).
void ArmAllocFailure(int64_t after);

/// Disarms a pending ArmAllocFailure (idempotent).
void DisarmAllocFailure();

/// True when ArmAllocFailure can actually fail an allocation
/// (SGL_COUNT_ALLOCS builds; sanitizer builds compile the hook out).
bool AllocFailureSupported();

}  // namespace sgl

#endif  // SGL_COMMON_ALLOC_HOOK_H_
