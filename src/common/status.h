// Status / StatusOr: exception-free error propagation in the RocksDB style.
//
// All fallible public APIs in SGL (parsing, semantic analysis, compilation,
// engine configuration) return Status or StatusOr<T>. Internal invariant
// violations use SGL_CHECK / SGL_DCHECK instead.

#ifndef SGL_COMMON_STATUS_H_
#define SGL_COMMON_STATUS_H_

#include <cstdint>
#include <optional>
#include <ostream>
#include <string>
#include <utility>

namespace sgl {

/// Error category for a failed operation.
enum class StatusCode : uint8_t {
  kOk = 0,
  kInvalidArgument,   ///< Caller passed a value outside the legal domain.
  kNotFound,          ///< Named entity (class, field, script, plan) missing.
  kAlreadyExists,     ///< Duplicate registration (class, component, ...).
  kParseError,        ///< Lexical or syntactic error in SGL source.
  kSemanticError,     ///< Type error or access-rule violation in SGL source.
  kConstraintViolation,  ///< Transaction constraint can never be satisfied.
  kUnsupported,       ///< Feature combination the engine does not implement.
  kInternal,          ///< Invariant breakage that is not the caller's fault.
};

/// Human-readable name for a StatusCode ("OK", "ParseError", ...).
const char* StatusCodeName(StatusCode code);

/// Result of an operation: OK, or an error code plus message.
///
/// Cheap to copy in the OK case (no allocation); error carries a string.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status SemanticError(std::string msg) {
    return Status(StatusCode::kSemanticError, std::move(msg));
  }
  static Status ConstraintViolation(std::string msg) {
    return Status(StatusCode::kConstraintViolation, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(StatusCode::kUnsupported, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// A Status or a value of type T. Dereference only when ok().
template <typename T>
class StatusOr {
 public:
  StatusOr(Status status) : status_(std::move(status)) {}  // NOLINT: implicit
  StatusOr(T value)                                        // NOLINT: implicit
      : status_(Status::OK()), value_(std::move(value)) {}

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& { return *value_; }
  T& value() & { return *value_; }
  T&& value() && { return *std::move(value_); }

  const T& operator*() const& { return *value_; }
  T& operator*() & { return *value_; }
  const T* operator->() const { return &*value_; }
  T* operator->() { return &*value_; }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace sgl

/// Propagates a non-OK Status to the caller.
#define SGL_RETURN_IF_ERROR(expr)                \
  do {                                           \
    ::sgl::Status _st = (expr);                  \
    if (!_st.ok()) return _st;                   \
  } while (0)

/// Evaluates a StatusOr expression, assigning the value or propagating error.
#define SGL_ASSIGN_OR_RETURN(lhs, expr)          \
  SGL_ASSIGN_OR_RETURN_IMPL_(                    \
      SGL_STATUS_CONCAT_(_sor, __LINE__), lhs, expr)

#define SGL_STATUS_CONCAT_INNER_(a, b) a##b
#define SGL_STATUS_CONCAT_(a, b) SGL_STATUS_CONCAT_INNER_(a, b)
#define SGL_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                               \
  if (!tmp.ok()) return tmp.status();              \
  lhs = std::move(tmp).value()

#endif  // SGL_COMMON_STATUS_H_
