// Runtime Value: the boxed representation used at API boundaries
// (Engine::Get/Set, spawning, debugger output). The execution engine itself
// operates on unboxed columns; Value is only for the edges.

#ifndef SGL_COMMON_VALUE_H_
#define SGL_COMMON_VALUE_H_

#include <algorithm>
#include <string>
#include <variant>
#include <vector>

#include "src/common/types.h"

namespace sgl {

/// A sorted, duplicate-free set of entity ids. The canonical runtime
/// representation of SGL's `set<C>` type.
class EntitySet {
 public:
  EntitySet() = default;
  explicit EntitySet(std::vector<EntityId> ids) : ids_(std::move(ids)) {
    Normalize();
  }

  /// Inserts id; returns true if it was not already present.
  bool Insert(EntityId id);
  /// Removes id; returns true if it was present.
  bool Erase(EntityId id);
  bool Contains(EntityId id) const {
    return std::binary_search(ids_.begin(), ids_.end(), id);
  }
  size_t size() const { return ids_.size(); }
  bool empty() const { return ids_.empty(); }
  void clear() { ids_.clear(); }

  /// Set union with other, in place.
  void UnionWith(const EntitySet& other);
  /// Set intersection with other, in place.
  void IntersectWith(const EntitySet& other);

  const std::vector<EntityId>& ids() const { return ids_; }
  auto begin() const { return ids_.begin(); }
  auto end() const { return ids_.end(); }

  bool operator==(const EntitySet& other) const { return ids_ == other.ids_; }

 private:
  void Normalize();
  std::vector<EntityId> ids_;  // Always sorted, unique.
};

/// Tag for the dynamic type held by a Value.
enum class ValueKind : uint8_t { kNumber, kBool, kRef, kSet };

/// Boxed SGL runtime value. `number` is IEEE double, `bool` is bool,
/// `ref<C>` is an EntityId (kNullEntity when null), `set<C>` is an EntitySet.
class Value {
 public:
  Value() : v_(0.0) {}
  explicit Value(double d) : v_(d) {}
  explicit Value(bool b) : v_(b) {}
  static Value Number(double d) { return Value(d); }
  static Value Bool(bool b) { return Value(b); }
  static Value Ref(EntityId id) {
    Value v;
    v.v_ = RefBox{id};
    return v;
  }
  static Value Set(EntitySet s) {
    Value v;
    v.v_ = std::move(s);
    return v;
  }

  ValueKind kind() const {
    switch (v_.index()) {
      case 0: return ValueKind::kNumber;
      case 1: return ValueKind::kBool;
      case 2: return ValueKind::kRef;
      default: return ValueKind::kSet;
    }
  }

  bool is_number() const { return kind() == ValueKind::kNumber; }
  bool is_bool() const { return kind() == ValueKind::kBool; }
  bool is_ref() const { return kind() == ValueKind::kRef; }
  bool is_set() const { return kind() == ValueKind::kSet; }

  double AsNumber() const {
    SGL_CHECK(is_number());
    return std::get<double>(v_);
  }
  bool AsBool() const {
    SGL_CHECK(is_bool());
    return std::get<bool>(v_);
  }
  EntityId AsRef() const {
    SGL_CHECK(is_ref());
    return std::get<RefBox>(v_).id;
  }
  const EntitySet& AsSet() const {
    SGL_CHECK(is_set());
    return std::get<EntitySet>(v_);
  }

  /// Renders the value for debugging ("3.5", "true", "@42", "{1,2,3}").
  std::string ToString() const;

  bool operator==(const Value& other) const;

 private:
  struct RefBox {
    EntityId id;
    bool operator==(const RefBox& o) const { return id == o.id; }
  };
  std::variant<double, bool, RefBox, EntitySet> v_;
};

}  // namespace sgl

#endif  // SGL_COMMON_VALUE_H_
