// Runtime Value: the boxed representation used at API boundaries
// (Engine::Get/Set, spawning, debugger output). The execution engine itself
// operates on unboxed columns; Value is only for the edges.

#ifndef SGL_COMMON_VALUE_H_
#define SGL_COMMON_VALUE_H_

#include <algorithm>
#include <cstring>
#include <string>
#include <variant>
#include <vector>

#include "src/common/types.h"

namespace sgl {

/// A sorted, duplicate-free set of entity ids. The canonical runtime
/// representation of SGL's `set<C>` type.
///
/// Representation invariants (the write-path arenas rely on these):
///   - Elements are always sorted ascending and unique; `data()[0..size())`
///     is directly binary-searchable.
///   - Small-size optimization: up to kInlineCapacity elements live inline
///     (no heap block). Once a set grows past that, it switches to a heap
///     buffer and *never returns to the inline representation* — capacity is
///     a high-water mark, so steady-state mutation cycles
///     (insert/erase/copy-assign of similarly sized sets) are
///     allocation-free.
///   - Copy assignment reuses the destination's existing buffer whenever the
///     source fits (it never shrinks); this is what lets effect write-back
///     and the transaction overlay copy sets through pooled slots without
///     heap traffic after warmup.
///   - Move steals the heap buffer when there is one and leaves the source
///     empty-inline.
class EntitySet {
 public:
  /// Elements stored inline before the first heap spill. Sized so the whole
  /// set object stays within one cache line (4+4 bytes of size/capacity plus
  /// a 4*8-byte union = 40 bytes).
  static constexpr size_t kInlineCapacity = 4;

  EntitySet() = default;
  /// Takes arbitrary ids; sorts and dedups.
  explicit EntitySet(const std::vector<EntityId>& ids) {
    AssignNormalized(ids.data(), ids.size());
  }
  EntitySet(std::initializer_list<EntityId> ids) {
    AssignNormalized(ids.begin(), ids.size());
  }
  EntitySet(const EntitySet& other) { *this = other; }
  EntitySet(EntitySet&& other) noexcept { MoveFrom(&other); }
  EntitySet& operator=(const EntitySet& other) {
    if (this != &other) AssignSorted(other.data(), other.size());
    return *this;
  }
  EntitySet& operator=(EntitySet&& other) noexcept {
    if (this != &other) {
      FreeHeap();
      MoveFrom(&other);
    }
    return *this;
  }
  ~EntitySet() { FreeHeap(); }

  /// Inserts id; returns true if it was not already present.
  bool Insert(EntityId id);
  /// Removes id; returns true if it was present.
  bool Erase(EntityId id);
  bool Contains(EntityId id) const {
    return std::binary_search(begin(), end(), id);
  }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  void clear() { size_ = 0; }  // keeps capacity (high-water reuse)

  /// Grows capacity to at least n elements (never shrinks).
  void Reserve(size_t n) {
    if (n > cap_) Grow(n);
  }
  size_t capacity() const { return cap_; }

  /// Replaces the contents with `src[0..n)`, which must already be sorted
  /// and duplicate-free. Reuses the existing buffer when it fits.
  void AssignSorted(const EntityId* src, size_t n) {
    if (n > cap_) Grow(n);
    if (n > 0) std::memmove(MutableData(), src, n * sizeof(EntityId));
    size_ = static_cast<uint32_t>(n);
  }

  /// Set union with other, in place. `scratch` is caller-provided merge
  /// space (cleared and reused; keeps its high-water capacity) so
  /// steady-state unions perform no allocation.
  void UnionWith(const EntitySet& other, std::vector<EntityId>* scratch);
  /// Set intersection with other, in place (no scratch needed: the write
  /// cursor never overtakes the read cursor).
  void IntersectWith(const EntitySet& other);

  const EntityId* data() const {
    return is_inline() ? inline_ : heap_;
  }
  const EntityId* begin() const { return data(); }
  const EntityId* end() const { return data() + size_; }

  /// Heap bytes held by this set (0 while inline). For memory accounting.
  size_t HeapBytes() const {
    return is_inline() ? 0 : cap_ * sizeof(EntityId);
  }

  bool operator==(const EntitySet& other) const {
    return size_ == other.size_ &&
           (size_ == 0 || std::memcmp(data(), other.data(),
                                      size_ * sizeof(EntityId)) == 0);
  }
  bool operator!=(const EntitySet& other) const { return !(*this == other); }

 private:
  bool is_inline() const { return cap_ == kInlineCapacity; }
  EntityId* MutableData() { return is_inline() ? inline_ : heap_; }
  void Grow(size_t need);
  void FreeHeap() {
    if (!is_inline()) {
      delete[] heap_;
      cap_ = kInlineCapacity;
    }
  }
  void MoveFrom(EntitySet* other) noexcept {
    if (other->is_inline()) {
      size_ = other->size_;
      cap_ = kInlineCapacity;
      std::memcpy(inline_, other->inline_, size_ * sizeof(EntityId));
    } else {
      heap_ = other->heap_;
      cap_ = other->cap_;
      size_ = other->size_;
      other->cap_ = kInlineCapacity;
    }
    other->size_ = 0;
  }
  void AssignNormalized(const EntityId* src, size_t n);

  uint32_t size_ = 0;
  uint32_t cap_ = kInlineCapacity;
  union {
    EntityId inline_[kInlineCapacity];
    EntityId* heap_;
  };
};

/// Tag for the dynamic type held by a Value.
enum class ValueKind : uint8_t { kNumber, kBool, kRef, kSet };

/// Boxed SGL runtime value. `number` is IEEE double, `bool` is bool,
/// `ref<C>` is an EntityId (kNullEntity when null), `set<C>` is an EntitySet.
class Value {
 public:
  Value() : v_(0.0) {}
  explicit Value(double d) : v_(d) {}
  explicit Value(bool b) : v_(b) {}
  static Value Number(double d) { return Value(d); }
  static Value Bool(bool b) { return Value(b); }
  static Value Ref(EntityId id) {
    Value v;
    v.v_ = RefBox{id};
    return v;
  }
  static Value Set(EntitySet s) {
    Value v;
    v.v_ = std::move(s);
    return v;
  }

  ValueKind kind() const {
    switch (v_.index()) {
      case 0: return ValueKind::kNumber;
      case 1: return ValueKind::kBool;
      case 2: return ValueKind::kRef;
      default: return ValueKind::kSet;
    }
  }

  bool is_number() const { return kind() == ValueKind::kNumber; }
  bool is_bool() const { return kind() == ValueKind::kBool; }
  bool is_ref() const { return kind() == ValueKind::kRef; }
  bool is_set() const { return kind() == ValueKind::kSet; }

  double AsNumber() const {
    SGL_CHECK(is_number());
    return std::get<double>(v_);
  }
  bool AsBool() const {
    SGL_CHECK(is_bool());
    return std::get<bool>(v_);
  }
  EntityId AsRef() const {
    SGL_CHECK(is_ref());
    return std::get<RefBox>(v_).id;
  }
  const EntitySet& AsSet() const {
    SGL_CHECK(is_set());
    return std::get<EntitySet>(v_);
  }

  /// Renders the value for debugging ("3.5", "true", "@42", "{1,2,3}").
  std::string ToString() const;

  bool operator==(const Value& other) const;

 private:
  struct RefBox {
    EntityId id;
    bool operator==(const RefBox& o) const { return id == o.id; }
  };
  std::variant<double, bool, RefBox, EntitySet> v_;
};

}  // namespace sgl

#endif  // SGL_COMMON_VALUE_H_
