// Fundamental identifier and scalar typedefs shared by all SGL modules.

#ifndef SGL_COMMON_TYPES_H_
#define SGL_COMMON_TYPES_H_

#include <cstdint>
#include <cstdio>
#include <cstdlib>

namespace sgl {

/// Stable identifier for a game entity (NPC, vehicle, item, ...).
/// Ids are unique across classes for the lifetime of a World; 0 is "null".
using EntityId = int64_t;

/// The null entity reference.
inline constexpr EntityId kNullEntity = 0;

/// Discrete simulation timestep counter. Tick 0 is the state before any step.
using Tick = int64_t;

/// Dense row position inside one class's entity table. Invalidated by
/// compaction; never stored across ticks (use EntityId for that).
using RowIdx = uint32_t;

/// Sentinel for "no row".
inline constexpr RowIdx kInvalidRow = static_cast<RowIdx>(-1);

/// Index of a class in the catalog.
using ClassId = int32_t;
inline constexpr ClassId kInvalidClass = -1;

/// Index of a field (state or effect variable) inside its class.
using FieldIdx = int32_t;
inline constexpr FieldIdx kInvalidField = -1;

/// Upper bound on spatial-index dimensionality, small enough that query
/// bounds live in stack arrays instead of per-query heap vectors.
inline constexpr int kMaxIndexDims = 8;

namespace internal {
[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr) {
  std::fprintf(stderr, "SGL_CHECK failed at %s:%d: %s\n", file, line, expr);
  std::abort();
}
}  // namespace internal

}  // namespace sgl

/// Fatal invariant check, enabled in all build modes.
#define SGL_CHECK(expr)                                        \
  do {                                                         \
    if (!(expr)) ::sgl::internal::CheckFailed(__FILE__, __LINE__, #expr); \
  } while (0)

/// Debug-only invariant check.
#ifdef NDEBUG
#define SGL_DCHECK(expr) \
  do {                   \
  } while (0)
#else
#define SGL_DCHECK(expr) SGL_CHECK(expr)
#endif

#endif  // SGL_COMMON_TYPES_H_
