// Runtime CPU-feature detection and kernel-dispatch selection for the
// explicit-SIMD kernel layer (src/vm/kernels.h).
//
// The engine ships two implementations of every hot fold loop — portable
// scalar and AVX2 intrinsics — built into the same binary (the AVX2 bodies
// carry per-function target attributes, so no global -mavx2 is needed and
// the binary still runs on pre-AVX2 machines). Which table executes is a
// process-wide runtime decision:
//
//   1. SetKernelDispatch() override, if a test/tool installed one;
//   2. else SGL_FORCE_SCALAR=1 in the environment pins scalar;
//   3. else AVX2 when the CPU reports it, scalar otherwise.
//
// Both tables are bit-identical per lane (see src/vm/README.md), so the
// dispatch choice can never change world checksums — only tick time.

#ifndef SGL_COMMON_CPU_FEATURES_H_
#define SGL_COMMON_CPU_FEATURES_H_

#include <cstdint>
#include <string>

// Whether the AVX2 kernel table is compiled into this binary at all
// (x86-64 with a GCC-compatible compiler). Selection still happens at run
// time; on other targets only the scalar table exists.
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define SGL_KERNELS_AVX2 1
#else
#define SGL_KERNELS_AVX2 0
#endif

namespace sgl {

/// Which kernel table executes the VM fold loops and index range filters.
enum class KernelDispatch : uint8_t { kScalar, kAvx2 };

const char* KernelDispatchName(KernelDispatch d);

/// True when the running CPU supports AVX2 (false on non-x86 builds).
bool CpuHasAvx2();

/// The dispatch currently in effect (override > env > CPU detection).
KernelDispatch ActiveKernelDispatch();

/// Installs a process-wide dispatch override (test sweeps / tools). Asking
/// for kAvx2 on a CPU without it silently stays scalar, so a sweep written
/// for an AVX2 box degrades instead of faulting elsewhere.
void SetKernelDispatch(KernelDispatch d);

/// Drops the override; ActiveKernelDispatch() returns to env/CPU selection.
void ResetKernelDispatch();

/// Comma-separated feature list of the running CPU relevant to the kernel
/// layer (e.g. "sse4.2,avx,avx2,fma"), for bench/context reporting.
std::string CpuFeatureString();

}  // namespace sgl

#endif  // SGL_COMMON_CPU_FEATURES_H_
