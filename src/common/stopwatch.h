// Monotonic wall-clock timing helpers used by the executor's per-phase
// statistics and by the benchmark harnesses.

#ifndef SGL_COMMON_STOPWATCH_H_
#define SGL_COMMON_STOPWATCH_H_

#include <chrono>
#include <cstdint>

namespace sgl {

/// Monotonic stopwatch with microsecond resolution.
class Stopwatch {
 public:
  Stopwatch() { Restart(); }

  void Restart() { start_ = Clock::now(); }

  /// Microseconds since construction or last Restart().
  int64_t ElapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                                 start_)
        .count();
  }

  /// Seconds since construction or last Restart().
  double ElapsedSeconds() const {
    return static_cast<double>(ElapsedMicros()) * 1e-6;
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace sgl

#endif  // SGL_COMMON_STOPWATCH_H_
