#include "src/exec/op_exec.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/common/stopwatch.h"
#include "src/telemetry/telemetry.h"
#include "src/vm/compile.h"

namespace sgl {

namespace {

constexpr size_t kNlChunk = 4096;

// Deterministic ⊕ order key: canonical serial execution order is
// (statement, outer row, inner row) — identical for every join strategy,
// thread count, and for the object-at-a-time path.
inline uint64_t OrderKey(int assign_id, RowIdx outer, RowIdx inner) {
  return (static_cast<uint64_t>(assign_id) << 44) |
         (static_cast<uint64_t>(outer) << 22) | static_cast<uint64_t>(inner);
}

// --- Write application ------------------------------------------------

/// The effect destination of one write batch: the shard router when the
/// world is partitioned, the target class's dense buffer otherwise. Keeps
/// the local-vs-routed dispatch in one place instead of at every Add* call
/// site; the per-element branch predicts perfectly (fixed per batch).
struct EffectDest {
  EffectRouter* router;
  EffectBuffer* direct;
  ClassId cls;

  EffectDest(const ExecEnv& env, ClassId target_cls)
      : router(env.router),
        direct(env.router != nullptr
                   ? nullptr
                   : env.effect_sinks[static_cast<size_t>(target_cls)]),
        cls(target_cls) {}

  void AddNumber(FieldIdx f, RowIdx row, double v, uint64_t key) const {
    if (router != nullptr) {
      router->AddNumber(cls, f, row, v, key);
    } else {
      direct->AddNumber(f, row, v, key);
    }
  }
  void AddBool(FieldIdx f, RowIdx row, bool v, uint64_t key) const {
    if (router != nullptr) {
      router->AddBool(cls, f, row, v, key);
    } else {
      direct->AddBool(f, row, v, key);
    }
  }
  void AddRef(FieldIdx f, RowIdx row, EntityId v, uint64_t key) const {
    if (router != nullptr) {
      router->AddRef(cls, f, row, v, key);
    } else {
      direct->AddRef(f, row, v, key);
    }
  }
  void AddSetInsert(FieldIdx f, RowIdx row, EntityId v) const {
    if (router != nullptr) {
      router->AddSetInsert(cls, f, row, v);
    } else {
      direct->AddSetInsert(f, row, v);
    }
  }
};

struct PairRows {
  const std::vector<RowIdx>* outer;
  const std::vector<RowIdx>* inner;  // null outside pair contexts
};

VecContext MakeCtx(const ExecEnv& env, const EntityTable* inner_table,
                   const PairRows& rows) {
  VecContext ctx;
  ctx.world = env.world;
  ctx.outer = env.outer;
  ctx.outer_rows = rows.outer;
  ctx.inner = inner_table;
  ctx.inner_rows = rows.inner;
  ctx.locals = env.locals;
  ctx.scratch = env.scratch;
  return ctx;
}

// --- Bytecode dispatch --------------------------------------------------
// Runs the compiled twin of an expression when `vm` carries a program cache
// and the expression lowered; the tree-walking interpreter otherwise. `vm`
// is passed explicitly (not read off env) so accum sites under
// EvalMode::kAuto can flip the backend per site per tick by passing null.
// Both produce bit-identical columns, so call sites stay oblivious.

void EvalNumAuto(const Expr& e, const VecContext& ctx, const ExecEnv& env,
                 const VmProgramCache* vm, std::vector<double>* out) {
  const VmProgram* p = vm != nullptr ? vm->Value(&e) : nullptr;
  if (p != nullptr) {
    VmEvalNum(*p, ctx, &env.scratch->vm, nullptr, 0, out);
  } else {
    EvalNum(e, ctx, out);
  }
}

void EvalBoolAuto(const Expr& e, const VecContext& ctx, const ExecEnv& env,
                  const VmProgramCache* vm, std::vector<uint8_t>* out) {
  const VmProgram* p = vm != nullptr ? vm->Value(&e) : nullptr;
  if (p != nullptr) {
    VmEvalBool(*p, ctx, &env.scratch->vm, nullptr, 0, out);
  } else {
    EvalBool(e, ctx, out);
  }
}

void EvalRefAuto(const Expr& e, const VecContext& ctx, const ExecEnv& env,
                 const VmProgramCache* vm, std::vector<EntityId>* out) {
  const VmProgram* p = vm != nullptr ? vm->Value(&e) : nullptr;
  if (p != nullptr) {
    VmEvalRef(*p, ctx, &env.scratch->vm, nullptr, 0, out);
  } else {
    EvalRef(e, ctx, out);
  }
}

// Guard filter over a row span: fills `pos` with the surviving span
// positions (ascending) and returns the count. Fused compare-compact
// bytecode when the guard lowered; EvalBool + compact otherwise.
size_t RunGuardFilter(const Expr& guard, const VecContext& ctx,
                      const ExecEnv& env, const VmProgramCache* vm,
                      std::vector<uint8_t>* keep, std::vector<RowIdx>* pos) {
  const VmProgram* p = vm != nullptr ? vm->Filter(&guard) : nullptr;
  if (p != nullptr) {
    return VmRunFilter(*p, ctx, &env.scratch->vm, false, pos);
  }
  EvalBool(guard, ctx, keep);
  const size_t n = ctx.count();
  ResizeAmortized(pos, n);
  size_t out_n = 0;
  for (size_t i = 0; i < n; ++i) {
    if ((*keep)[i]) (*pos)[out_n++] = static_cast<RowIdx>(i);
  }
  return out_n;
}

// Applies one batch of effect writes over a (possibly pair) row vector.
// Returns how many writes landed (post guard / target resolution) — the
// per-site `effects` attribution.
// The emitting worker's shard for provenance attribution: tel_track 0 is
// the unsharded world / barrier thread, s + 1 is world shard s.
inline int32_t ProvShard(const ExecEnv& env) {
  return env.tel_track == 0 ? 0 : static_cast<int32_t>(env.tel_track) - 1;
}

int64_t ApplyWrites(const std::vector<EffectWrite>& writes,
                    const EntityTable* inner_table, const PairRows& rows,
                    ExecEnv& env, const VmProgramCache* vm, int site) {
  const size_t n = rows.outer->size();
  if (n == 0) return 0;
  int64_t applied = 0;
  EvalScratch* sc = env.scratch;
  ScopedVec<RowIdx> sub_outer(sc), sub_inner(sc), pos(sc);
  ScopedVec<uint8_t> keep(sc);
  ScopedVec<double> nums(sc);
  ScopedVec<uint8_t> bools(sc);
  ScopedVec<EntityId> refs(sc), target_ids(sc);

  for (const EffectWrite& w : writes) {
    // 1. Guard filter.
    const std::vector<RowIdx>* outer_rows = rows.outer;
    const std::vector<RowIdx>* inner_rows = rows.inner;
    if (w.guard != nullptr) {
      VecContext ctx = MakeCtx(env, inner_table, rows);
      const size_t m = RunGuardFilter(*w.guard, ctx, env, vm, keep.get(),
                                      pos.get());
      sub_outer->clear();
      sub_inner->clear();
      // Reserve the full span, not the survivor count: the span is a
      // stable per-role high-water mark, a slowly-rising survivor count
      // would re-reserve (exactly) every tick it grows.
      sub_outer->reserve(n);
      if (rows.inner != nullptr) sub_inner->reserve(n);
      for (size_t k = 0; k < m; ++k) {
        const size_t i = (*pos)[k];
        sub_outer->push_back((*rows.outer)[i]);
        if (rows.inner != nullptr) sub_inner->push_back((*rows.inner)[i]);
      }
      outer_rows = sub_outer.get();
      inner_rows = rows.inner != nullptr ? sub_inner.get() : nullptr;
    }
    const size_t m = outer_rows->size();
    if (m == 0) continue;
    PairRows sub{outer_rows, inner_rows};
    VecContext ctx = MakeCtx(env, inner_table, sub);

    // 2. Resolve target rows.
    const EffectDest sink(env, w.target_cls);
    const EntityTable& target_table = env.world->table(w.target_cls);
    auto target_row = [&](size_t i) -> RowIdx {
      switch (w.target_kind) {
        case TargetKind::kSelf:
          return (*outer_rows)[i];
        case TargetKind::kIter:
          return (*inner_rows)[i];
        case TargetKind::kRef: {
          const World::Locator* loc = env.world->Find((*target_ids)[i]);
          if (loc == nullptr || loc->cls != w.target_cls) return kInvalidRow;
          return loc->row;
        }
      }
      return kInvalidRow;
    };
    if (w.target_kind == TargetKind::kRef) {
      EvalRefAuto(*w.target_ref, ctx, env, vm, target_ids.get());
    }

    // 3. Evaluate values and scatter-accumulate.
    const FieldDef& field =
        env.world->catalog().Get(w.target_cls).effect_field(w.field);
    auto key_at = [&](size_t i) {
      RowIdx inner = inner_rows != nullptr ? (*inner_rows)[i] : 0;
      return OrderKey(w.assign_id, (*outer_rows)[i], inner);
    };
    auto trace = [&](size_t i, RowIdx row, const Value& v) {
      ++applied;  // invoked exactly once per landed write, in all branches
      if (env.trace != nullptr || env.recorder_sink != nullptr) {
        EffectProv prov;
        prov.site = site;
        prov.src_shard = ProvShard(env);
        prov.src_outer = env.outer->id_at((*outer_rows)[i]);
        if (inner_rows != nullptr && inner_table != nullptr) {
          prov.src_inner = inner_table->id_at((*inner_rows)[i]);
        }
        const EntityId target_id = target_table.id_at(row);
        const uint64_t key = key_at(i);
        if (env.trace != nullptr) {
          env.trace->OnEffectAssign(env.tick, target_id, w.target_cls,
                                    w.field, v, w.assign_id, key, prov);
        }
        if (env.recorder_sink != nullptr) {
          env.recorder_sink->OnEffectAssign(env.tick, target_id, w.target_cls,
                                            w.field, v, w.assign_id, key,
                                            prov);
        }
      }
    };
    if (w.set_insert) {
      EvalRefAuto(*w.value, ctx, env, vm, refs.get());
      for (size_t i = 0; i < m; ++i) {
        RowIdx row = target_row(i);
        if (row == kInvalidRow) continue;
        sink.AddSetInsert(w.field, row, (*refs)[i]);
        trace(i, row, Value::Ref((*refs)[i]));
      }
    } else if (field.type.is_number()) {
      EvalNumAuto(*w.value, ctx, env, vm, nums.get());
      for (size_t i = 0; i < m; ++i) {
        RowIdx row = target_row(i);
        if (row == kInvalidRow) continue;
        sink.AddNumber(w.field, row, (*nums)[i], key_at(i));
        trace(i, row, Value::Number((*nums)[i]));
      }
    } else if (field.type.is_bool()) {
      EvalBoolAuto(*w.value, ctx, env, vm, bools.get());
      for (size_t i = 0; i < m; ++i) {
        RowIdx row = target_row(i);
        if (row == kInvalidRow) continue;
        sink.AddBool(w.field, row, (*bools)[i] != 0, key_at(i));
        trace(i, row, Value::Bool((*bools)[i] != 0));
      }
    } else if (field.type.is_ref()) {
      EvalRefAuto(*w.value, ctx, env, vm, refs.get());
      for (size_t i = 0; i < m; ++i) {
        RowIdx row = target_row(i);
        if (row == kInvalidRow) continue;
        sink.AddRef(w.field, row, (*refs)[i], key_at(i));
        trace(i, row, Value::Ref((*refs)[i]));
      }
    }
  }
  return applied;
}

// --- Accum fold --------------------------------------------------------

// Running ⊕ accumulator for one outer row's accum variable.
struct Fold {
  double num = 0;
  double sum = 0;
  uint64_t cnt = 0;
  bool b = false;
  EntityId ref = kNullEntity;

  void Reset() { *this = Fold(); }

  void AddNum(Combinator comb, double v) {
    switch (comb) {
      case Combinator::kSum:
      case Combinator::kAvg:
        sum += v;
        break;
      case Combinator::kMin:
        num = cnt == 0 ? v : std::min(num, v);
        break;
      case Combinator::kMax:
        num = cnt == 0 ? v : std::max(num, v);
        break;
      case Combinator::kCount:
        break;
      case Combinator::kFirst:
        if (cnt == 0) num = v;
        break;
      case Combinator::kLast:
        num = v;
        break;
      default:
        break;
    }
    ++cnt;
  }
  void AddBool(Combinator comb, bool v) {
    switch (comb) {
      case Combinator::kOr:
        b = cnt == 0 ? v : (b || v);
        break;
      case Combinator::kAnd:
        b = cnt == 0 ? v : (b && v);
        break;
      case Combinator::kFirst:
        if (cnt == 0) b = v;
        break;
      case Combinator::kLast:
        b = v;
        break;
      default:
        break;
    }
    ++cnt;
  }
  void AddRef(Combinator comb, EntityId v) {
    if (comb == Combinator::kFirst) {
      if (cnt == 0) ref = v;
    } else {  // kLast
      ref = v;
    }
    ++cnt;
  }

  double FinalNum(Combinator comb) const {
    if (cnt == 0) return 0.0;
    switch (comb) {
      case Combinator::kSum:
      case Combinator::kAvg:
        return comb == Combinator::kAvg ? sum / static_cast<double>(cnt) : sum;
      case Combinator::kCount:
        return static_cast<double>(cnt);
      default:
        return num;
    }
  }
};

// Writes the folded value into the accum local slot for `row`.
void FlushFold(const AccumOp& op, const Fold& fold, RowIdx row,
               LocalColumns* locals) {
  const size_t slot = static_cast<size_t>(op.accum_slot);
  if (op.accum_type.is_number()) {
    locals->num[slot][row] = fold.FinalNum(op.accum_comb);
  } else if (op.accum_type.is_bool()) {
    locals->bools[slot][row] = fold.cnt > 0 && fold.b ? 1 : 0;
  } else {
    locals->refs[slot][row] = fold.cnt == 0 ? kNullEntity : fold.ref;
  }
}

void PrefillSlot(const AccumOp& op, const std::vector<RowIdx>& rows,
                 LocalColumns* locals) {
  const size_t slot = static_cast<size_t>(op.accum_slot);
  if (op.accum_type.is_number()) {
    for (RowIdx r : rows) locals->num[slot][r] = 0.0;
  } else if (op.accum_type.is_bool()) {
    for (RowIdx r : rows) locals->bools[slot][r] = 0;
  } else {
    for (RowIdx r : rows) locals->refs[slot][r] = kNullEntity;
  }
}

// RAII lease over one pool: counts acquisitions and releases them all at
// scope exit, so early returns or future edits cannot desync the pool's
// stack discipline.
template <typename T>
class PoolLease {
 public:
  explicit PoolLease(VecPool<T>* pool) : pool_(pool) {}
  ~PoolLease() {
    for (; count_ > 0; --count_) pool_->Release();
  }
  PoolLease(const PoolLease&) = delete;
  PoolLease& operator=(const PoolLease&) = delete;
  std::vector<T>* Acquire() {
    ++count_;
    return pool_->Acquire();
  }

 private:
  VecPool<T>* pool_;
  size_t count_ = 0;
};

// RAII block of `n` pooled double vectors (per-dimension bound columns).
class PooledNumCols {
 public:
  PooledNumCols(EvalScratch* sc, size_t n) : sc_(sc), n_(n) {
    SGL_CHECK(n <= kMaxIndexDims);
    for (size_t i = 0; i < n_; ++i) cols_[i] = sc_->num.Acquire();
  }
  ~PooledNumCols() {
    for (size_t i = n_; i > 0; --i) sc_->num.Release();
  }
  PooledNumCols(const PooledNumCols&) = delete;
  PooledNumCols& operator=(const PooledNumCols&) = delete;
  std::vector<double>* operator[](size_t i) { return cols_[i]; }
  const std::vector<double>* operator[](size_t i) const { return cols_[i]; }

 private:
  EvalScratch* sc_;
  size_t n_;
  std::vector<double>* cols_[kMaxIndexDims];
};

// Enumerates the candidate inner rows for one outer row under the prepared
// access path (without the residual filter). Candidates are ascending.
void Candidates(const AccumOp& op, const PreparedSite& site,
                const ExecEnv& env, RowIdx outer_row,
                const PooledNumCols& lo_cols, const PooledNumCols& hi_cols,
                const std::vector<double>& hash_keys,
                const std::vector<EntityId>& id_keys, size_t outer_pos,
                std::vector<RowIdx>* out) {
  out->clear();

  if (op.inner_set_field != kInvalidField) {
    // Set-valued domain: members in id order (matches the scalar path).
    const EntitySet& set =
        env.outer->SetCol(op.inner_set_field)[outer_row];
    for (EntityId id : set) {
      const World::Locator* loc = env.world->Find(id);
      if (loc != nullptr && loc->cls == op.inner_cls) {
        out->push_back(loc->row);
      }
    }
    return;
  }

  switch (site.strategy) {
    case JoinStrategy::kNestedLoop:
      // Caller streams all rows in chunks; nothing to enumerate here.
      break;
    case JoinStrategy::kRangeTree:
    case JoinStrategy::kGrid: {
      double lo[kMaxIndexDims];
      double hi[kMaxIndexDims];
      for (size_t k = 0; k < op.range_dims.size(); ++k) {
        lo[k] = op.range_dims[k].lo != nullptr
                    ? (*lo_cols[k])[outer_pos]
                    : -std::numeric_limits<double>::infinity();
        hi[k] = op.range_dims[k].hi != nullptr
                    ? (*hi_cols[k])[outer_pos]
                    : std::numeric_limits<double>::infinity();
      }
      site.index->Query(lo, hi, out);
      std::sort(out->begin(), out->end());
      break;
    }
    case JoinStrategy::kHash: {
      if (site.hash_field == kInvalidField) {
        // Entity-id key: a directory lookup.
        const World::Locator* loc = env.world->Find(id_keys[outer_pos]);
        if (loc != nullptr && loc->cls == op.inner_cls) {
          out->push_back(loc->row);
        }
      } else {
        // Flat hash emits rows ascending already.
        site.hash->Lookup(hash_keys[outer_pos], out);
      }
      break;
    }
  }
}

void RunAccumVectorized(const AccumOp& op,
                        const std::vector<RowIdx>& selection, ExecEnv& env) {
  Stopwatch timer;
  SGL_TRACE_SPAN(env.telemetry, kSpanSiteQuery, env.tick, env.tel_track,
                 static_cast<uint16_t>(op.site_id));
  const PreparedSite& site = (*env.prepared)[static_cast<size_t>(op.site_id)];
  const EntityTable& inner = env.world->table(op.inner_cls);
  ExecScratch* sc = env.scratch;
  // Per-site backend decision (EvalMode::kAuto): a null cache here routes
  // every expression of this site through the interpreter.
  const VmProgramCache* vm = site.use_vm ? env.vm : nullptr;

  // Outer guard. Guard-free units run straight off `selection` — no copy.
  ScopedVec<RowIdx> s_holder(sc);
  const std::vector<RowIdx>* S = &selection;
  if (op.outer_guard != nullptr) {
    PairRows rows{&selection, nullptr};
    VecContext ctx = MakeCtx(env, nullptr, rows);
    ScopedVec<uint8_t> keep(sc);
    ScopedVec<RowIdx> pos(sc);
    const size_t m =
        RunGuardFilter(*op.outer_guard, ctx, env, vm, keep.get(), pos.get());
    s_holder->reserve(selection.size());  // stable high-water; see ApplyWrites
    for (size_t k = 0; k < m; ++k) {
      s_holder->push_back(selection[(*pos)[k]]);
    }
    S = s_holder.get();
  }
  PrefillSlot(op, *S, env.locals);
  if (S->empty()) return;

  // Precompute per-outer bounds / keys. Bound columns exist only for the
  // indexed range strategies (other strategies never read them, and must
  // not be constrained by the kMaxIndexDims stack-array limit).
  PairRows s_rows{S, nullptr};
  VecContext s_ctx = MakeCtx(env, nullptr, s_rows);
  const bool range_indexed = site.strategy == JoinStrategy::kRangeTree ||
                             site.strategy == JoinStrategy::kGrid;
  // Batched probing answers all of this morsel's boxes with one QueryBatch
  // call instead of |S| virtual Query calls (contract: probe_batch.h).
  const bool batched = range_indexed && site.probe_batched &&
                       site.index != nullptr &&
                       op.inner_set_field == kInvalidField;
  PooledNumCols lo_cols(sc, range_indexed ? op.range_dims.size() : 0);
  PooledNumCols hi_cols(sc, range_indexed ? op.range_dims.size() : 0);
  if (range_indexed) {
    for (size_t k = 0; k < op.range_dims.size(); ++k) {
      if (op.range_dims[k].lo != nullptr) {
        EvalNumAuto(*op.range_dims[k].lo, s_ctx, env, vm, lo_cols[k]);
      } else if (batched) {
        // QueryBatch takes full bound columns; unconstrained dims become
        // ±inf columns (same value the per-row path passes as a scalar).
        ResizeAmortized(lo_cols[k], S->size());
        std::fill(lo_cols[k]->begin(), lo_cols[k]->end(),
                  -std::numeric_limits<double>::infinity());
      }
      if (op.range_dims[k].hi != nullptr) {
        EvalNumAuto(*op.range_dims[k].hi, s_ctx, env, vm, hi_cols[k]);
      } else if (batched) {
        ResizeAmortized(hi_cols[k], S->size());
        std::fill(hi_cols[k]->begin(), hi_cols[k]->end(),
                  std::numeric_limits<double>::infinity());
      }
    }
  }
  ScopedVec<double> hash_keys(sc);
  ScopedVec<EntityId> id_keys(sc);
  if (site.strategy == JoinStrategy::kHash) {
    if (site.hash_field == kInvalidField) {
      EvalRefAuto(*op.hash_dims[0].key, s_ctx, env, vm, id_keys.get());
    } else {
      EvalNumAuto(*op.hash_dims[0].key, s_ctx, env, vm, hash_keys.get());
    }
  }

  // One devirtualized batch probe for the whole morsel.
  int64_t probe_micros = 0;
  if (batched) {
    const double* blo[kMaxIndexDims];
    const double* bhi[kMaxIndexDims];
    for (size_t k = 0; k < op.range_dims.size(); ++k) {
      blo[k] = lo_cols[k]->data();
      bhi[k] = hi_cols[k]->data();
    }
    Stopwatch probe_timer;
    SGL_TRACE_SPAN(env.telemetry, kSpanSiteProbe, env.tick, env.tel_track,
                   static_cast<uint16_t>(op.site_id));
    site.index->QueryBatch(blo, bhi, S->size(), &sc->probe);
    probe_micros = probe_timer.ElapsedMicros();
  }

  const Expr* filter = site.strategy == JoinStrategy::kNestedLoop
                           ? site.nl_filter
                           : site.post_index_filter;
  const VmProgram* filter_vm = site.strategy == JoinStrategy::kNestedLoop
                                   ? site.nl_filter_vm
                                   : site.post_filter_vm;
  const bool same_table = op.inner_cls == env.outer_cls &&
                          op.inner_set_field == kInvalidField;

  // Build the (outer, inner) pair list, outer-major, inner ascending.
  ScopedVec<RowIdx> pair_outer(sc), pair_inner(sc);
  ScopedVec<RowIdx> cand(sc), chunk_outer(sc), chunk_inner(sc), fsel(sc);
  ScopedVec<uint8_t> keep(sc);
  pair_outer->reserve(S->size());
  pair_inner->reserve(S->size());
  chunk_inner->reserve(kNlChunk);
  int64_t candidates = 0;

  auto filter_chunk = [&](RowIdx o) {
    // chunk_inner holds candidates for outer row o; applies `filter` and
    // appends survivors to the pair list.
    if (chunk_inner->empty()) return;
    ResizeAmortized(chunk_outer.get(), chunk_inner->size());
    if (filter_vm != nullptr) {
      // Fused compare-compact bytecode. Every lane shares outer row o, so
      // only lane 0 of the outer-row vector need be real (uniform_outer)
      // and the O(chunk) outer-row fill is skipped entirely.
      (*chunk_outer)[0] = o;
      PairRows rows{chunk_outer.get(), chunk_inner.get()};
      VecContext ctx = MakeCtx(env, &inner, rows);
      const size_t m = VmRunFilter(*filter_vm, ctx, &sc->vm,
                                   /*uniform_outer=*/true, fsel.get());
      for (size_t k = 0; k < m; ++k) {
        pair_outer->push_back(o);
        pair_inner->push_back((*chunk_inner)[(*fsel)[k]]);
      }
      return;
    }
    std::fill(chunk_outer->begin(), chunk_outer->end(), o);
    if (filter != nullptr) {
      PairRows rows{chunk_outer.get(), chunk_inner.get()};
      VecContext ctx = MakeCtx(env, &inner, rows);
      EvalBool(*filter, ctx, keep.get());
      for (size_t i = 0; i < chunk_inner->size(); ++i) {
        if ((*keep)[i]) {
          pair_outer->push_back(o);
          pair_inner->push_back((*chunk_inner)[i]);
        }
      }
    } else {
      pair_outer->insert(pair_outer->end(), chunk_inner->size(), o);
      pair_inner->insert(pair_inner->end(), chunk_inner->begin(),
                         chunk_inner->end());
    }
  };

  for (size_t pos = 0; pos < S->size(); ++pos) {
    RowIdx o = (*S)[pos];
    if (site.strategy == JoinStrategy::kNestedLoop &&
        op.inner_set_field == kInvalidField) {
      // Stream the whole inner extent in chunks.
      const size_t m = inner.size();
      for (size_t base = 0; base < m; base += kNlChunk) {
        size_t end = std::min(m, base + kNlChunk);
        chunk_inner->clear();
        for (size_t j = base; j < end; ++j) {
          if (op.exclude_self && same_table && j == o) continue;
          chunk_inner->push_back(static_cast<RowIdx>(j));
        }
        candidates += static_cast<int64_t>(chunk_inner->size());
        filter_chunk(o);
      }
    } else if (batched) {
      // Consume this probe's CSR slice; slices are already ascending, so
      // pair order matches the per-row Query + sort path bit for bit.
      const ProbeBatch& pb = sc->probe;
      chunk_inner->clear();
      const uint32_t slice_end = pb.offsets[pos + 1];
      chunk_inner->reserve(slice_end - pb.offsets[pos]);
      for (uint32_t t = pb.offsets[pos]; t < slice_end; ++t) {
        const RowIdx j = pb.items[t];
        if (op.exclude_self && same_table && j == o) continue;
        chunk_inner->push_back(j);
      }
      candidates += static_cast<int64_t>(chunk_inner->size());
      filter_chunk(o);
    } else {
      Candidates(op, site, env, o, lo_cols, hi_cols, *hash_keys, *id_keys,
                 pos, cand.get());
      chunk_inner->clear();
      chunk_inner->reserve(cand->size());
      for (RowIdx j : *cand) {
        if (op.exclude_self && same_table && j == o) continue;
        chunk_inner->push_back(j);
      }
      candidates += static_cast<int64_t>(chunk_inner->size());
      filter_chunk(o);
    }
  }

  // Evaluate accum assignments over all pairs, then fold in pair order.
  const size_t npairs = pair_outer->size();
  int64_t effects_applied = 0;
  if (npairs > 0) {
    PairRows pairs{pair_outer.get(), pair_inner.get()};
    VecContext pctx = MakeCtx(env, &inner, pairs);
    auto& evaled = sc->assign_bufs;
    if (evaled.size() < op.accum_assigns.size()) {
      evaled.resize(op.accum_assigns.size());
    }
    PoolLease<uint8_t> bool_lease(&sc->bools);
    PoolLease<double> num_lease(&sc->num);
    PoolLease<EntityId> ref_lease(&sc->refs);
    for (size_t a = 0; a < op.accum_assigns.size(); ++a) {
      const AccumAssign& assign = op.accum_assigns[a];
      evaled[a] = ExecScratch::AssignBufs();
      if (assign.guard != nullptr) {
        // Value-mode (not fused-filter) bytecode: the fold consumes guards
        // as columns indexed by pair position, so no compaction here.
        evaled[a].guard = bool_lease.Acquire();
        EvalBoolAuto(*assign.guard, pctx, env, vm, evaled[a].guard);
      }
      if (op.accum_type.is_number()) {
        evaled[a].nums = num_lease.Acquire();
        EvalNumAuto(*assign.value, pctx, env, vm, evaled[a].nums);
      } else if (op.accum_type.is_bool()) {
        evaled[a].bools = bool_lease.Acquire();
        EvalBoolAuto(*assign.value, pctx, env, vm, evaled[a].bools);
      } else {
        evaled[a].refs = ref_lease.Acquire();
        EvalRefAuto(*assign.value, pctx, env, vm, evaled[a].refs);
      }
    }
    Fold fold;
    RowIdx cur = (*pair_outer)[0];
    for (size_t p = 0; p < npairs; ++p) {
      if ((*pair_outer)[p] != cur) {
        FlushFold(op, fold, cur, env.locals);
        fold.Reset();
        cur = (*pair_outer)[p];
      }
      for (size_t a = 0; a < op.accum_assigns.size(); ++a) {
        if (evaled[a].guard != nullptr && !(*evaled[a].guard)[p]) continue;
        if (op.accum_type.is_number()) {
          fold.AddNum(op.accum_comb, (*evaled[a].nums)[p]);
        } else if (op.accum_type.is_bool()) {
          fold.AddBool(op.accum_comb, (*evaled[a].bools)[p] != 0);
        } else {
          fold.AddRef(op.accum_comb, (*evaled[a].refs)[p]);
        }
      }
    }
    FlushFold(op, fold, cur, env.locals);

    // Pair-level effect writes. The leases stay live through this call;
    // ApplyWrites' own acquisitions nest above them (LIFO holds).
    effects_applied =
        ApplyWrites(op.pair_writes, &inner, pairs, env, vm, op.site_id);
  }

  if (env.feedback != nullptr) {
    SiteFeedback& fb = (*env.feedback)[static_cast<size_t>(op.site_id)];
    fb.site = op.site_id;
    fb.strategy = site.strategy;
    fb.outer_rows += static_cast<int64_t>(S->size());
    fb.candidates += candidates;
    fb.matches += static_cast<int64_t>(npairs);
    fb.micros += timer.ElapsedMicros();
    fb.probe_micros += probe_micros;
    fb.effects += effects_applied;
  }
}

void RunTxnEmitVectorized(const TxnEmitOp& op,
                          const std::vector<RowIdx>& selection,
                          ExecEnv& env) {
  ExecScratch* sc = env.scratch;
  ScopedVec<RowIdx> r_holder(sc);
  const std::vector<RowIdx>* R = &selection;
  if (op.guard != nullptr) {
    PairRows rows{&selection, nullptr};
    VecContext ctx = MakeCtx(env, nullptr, rows);
    ScopedVec<uint8_t> keep(sc);
    ScopedVec<RowIdx> pos(sc);
    const size_t m =
        RunGuardFilter(*op.guard, ctx, env, env.vm, keep.get(), pos.get());
    r_holder->reserve(selection.size());  // stable high-water; see ApplyWrites
    for (size_t k = 0; k < m; ++k) {
      r_holder->push_back(selection[(*pos)[k]]);
    }
    R = r_holder.get();
  }
  if (R->empty()) return;

  PairRows rows{R, nullptr};
  VecContext ctx = MakeCtx(env, nullptr, rows);
  auto& evaled = sc->assign_bufs;
  if (evaled.size() < op.writes.size()) evaled.resize(op.writes.size());
  PoolLease<double> num_lease(&sc->num);
  PoolLease<EntityId> ref_lease(&sc->refs);
  for (size_t wi = 0; wi < op.writes.size(); ++wi) {
    const TxnWrite& w = op.writes[wi];
    evaled[wi] = ExecScratch::AssignBufs();
    if (w.target_kind == TargetKind::kRef) {
      evaled[wi].targets = ref_lease.Acquire();
      EvalRefAuto(*w.target_ref, ctx, env, env.vm, evaled[wi].targets);
    }
    if (w.op == TxnWriteOp::kAddDelta) {
      evaled[wi].nums = num_lease.Acquire();
      EvalNumAuto(*w.value, ctx, env, env.vm, evaled[wi].nums);
    } else {
      evaled[wi].refs = ref_lease.Acquire();
      EvalRefAuto(*w.value, ctx, env, env.vm, evaled[wi].refs);
    }
  }
  for (size_t i = 0; i < R->size(); ++i) {
    const EntityId issuer = env.outer->id_at((*R)[i]);
    env.txn_sink->StartIntent((static_cast<uint64_t>(op.site_id) << 32) |
                                  static_cast<uint64_t>((*R)[i]),
                              issuer, env.outer_cls, (*R)[i], &op);
    for (size_t wi = 0; wi < op.writes.size(); ++wi) {
      const TxnWrite& w = op.writes[wi];
      TxnResolvedWrite rw;
      rw.target = w.target_kind == TargetKind::kSelf
                      ? issuer
                      : (*evaled[wi].targets)[i];
      rw.cls = w.target_cls;
      rw.field = w.state_field;
      rw.op = w.op;
      if (w.op == TxnWriteOp::kAddDelta) {
        rw.num = (*evaled[wi].nums)[i];
      } else {
        rw.ref = (*evaled[wi].refs)[i];
      }
      env.txn_sink->AddWrite(rw);
    }
  }
}

}  // namespace

// --- Flat hash -----------------------------------------------------------

namespace {

// Total order over (key, row) pairs that is a strict weak ordering even for
// NaN keys (std::sort on raw double operator< would be UB): NaN sorts after
// every number, tied NaNs by row.
struct FlatHashLess {
  bool operator()(const std::pair<double, RowIdx>& a,
                  const std::pair<double, RowIdx>& b) const {
    const bool a_nan = std::isnan(a.first);
    const bool b_nan = std::isnan(b.first);
    if (a_nan || b_nan) {
      if (a_nan != b_nan) return b_nan;  // numbers before NaNs
      return a.second < b.second;
    }
    if (a.first != b.first) return a.first < b.first;
    return a.second < b.second;
  }
};

}  // namespace

void FlatNumHash::Build(ConstNumberColumn col, size_t n) {
  entries_.clear();
  entries_.reserve(n);
  for (size_t j = 0; j < n; ++j) {
    entries_.emplace_back(col[j], static_cast<RowIdx>(j));
  }
  std::sort(entries_.begin(), entries_.end(), FlatHashLess());
}

void FlatNumHash::Lookup(double key, std::vector<RowIdx>* out) const {
  // NaN never equals anything — same semantics as the hash probe it
  // replaced.
  if (std::isnan(key)) return;
  auto it = std::lower_bound(entries_.begin(), entries_.end(),
                             std::make_pair(key, RowIdx{0}), FlatHashLess());
  for (; it != entries_.end() && it->first == key; ++it) {
    out->push_back(it->second);
  }
}

// --- Site preparation ---------------------------------------------------

void PrepareSite(const AccumOp& op, JoinStrategy strategy, const World& world,
                 IndexManager* indexes, Tick tick, bool compile_vm,
                 bool use_vm, bool probe_batched, SiteCache* cache,
                 PreparedSite* out) {
  out->strategy = strategy;
  out->index = nullptr;
  out->hash = nullptr;
  out->hash_field = kInvalidField;
  out->nl_filter_vm = nullptr;
  out->post_filter_vm = nullptr;
  out->use_vm = compile_vm && use_vm;
  out->probe_batched = probe_batched;

  // Compose the pair filters from the op's predicate decomposition. The
  // compositions are pure functions of (op, strategy); they are cloned into
  // the cache once and only recomposed when the strategy switches.
  auto range_pred = [&](bool include) -> ExprPtr {
    if (!include) return nullptr;
    ExprPtr composed;
    const ClassDef& inner_def = world.catalog().Get(op.inner_cls);
    for (const RangeDim& d : op.range_dims) {
      const SglType& t = inner_def.state_field(d.inner_field).type;
      if (d.lo != nullptr) {
        ExprPtr c = CmpNum(CmpOp::kGe, StateRead(1, op.inner_cls,
                                                 d.inner_field, t),
                           d.lo->Clone());
        composed = composed == nullptr ? std::move(c)
                                       : AndB(std::move(composed),
                                              std::move(c));
      }
      if (d.hi != nullptr) {
        ExprPtr c = CmpNum(CmpOp::kLe, StateRead(1, op.inner_cls,
                                                 d.inner_field, t),
                           d.hi->Clone());
        composed = composed == nullptr ? std::move(c)
                                       : AndB(std::move(composed),
                                              std::move(c));
      }
    }
    return composed;
  };
  auto hash_pred = [&](size_t skip_dim) -> ExprPtr {
    ExprPtr composed;
    const ClassDef& inner_def = world.catalog().Get(op.inner_cls);
    for (size_t k = 0; k < op.hash_dims.size(); ++k) {
      if (k == skip_dim) continue;
      const HashDim& d = op.hash_dims[k];
      ExprPtr c;
      if (d.inner_field == kInvalidField) {
        auto cmp = std::make_unique<Expr>();
        cmp->kind = ExprKind::kCmpRef;
        cmp->type = SglType::Bool();
        cmp->cmp = CmpOp::kEq;
        cmp->kids.push_back(RowIdRead(1, op.inner_cls));
        cmp->kids.push_back(d.key->Clone());
        c = std::move(cmp);
      } else {
        const SglType& t = inner_def.state_field(d.inner_field).type;
        c = CmpNum(CmpOp::kEq,
                   StateRead(1, op.inner_cls, d.inner_field, t),
                   d.key->Clone());
      }
      composed = composed == nullptr ? std::move(c)
                                     : AndB(std::move(composed),
                                            std::move(c));
    }
    return composed;
  };
  auto compose = [](ExprPtr a, ExprPtr b) {
    if (a == nullptr) return b;
    if (b == nullptr) return a;
    return AndB(std::move(a), std::move(b));
  };
  auto residual = [&]() -> ExprPtr {
    return op.residual != nullptr ? op.residual->Clone() : nullptr;
  };

  if (!cache->nl_built) {
    cache->nl_filter =
        compose(compose(range_pred(true), hash_pred(static_cast<size_t>(-1))),
                residual());
    cache->nl_built = true;
  }
  out->nl_filter = cache->nl_filter.get();
  if (compile_vm && !cache->nl_vm_built) {
    cache->nl_vm_ok = cache->nl_filter != nullptr &&
                      CompileFilter(*cache->nl_filter, &cache->nl_filter_vm);
    cache->nl_vm_built = true;
  }
  if (out->use_vm && cache->nl_vm_ok) {
    out->nl_filter_vm = &cache->nl_filter_vm;
  }

  if (!cache->post_built || cache->post_strategy != strategy) {
    switch (strategy) {
      case JoinStrategy::kNestedLoop:
        cache->post_index_filter = nullptr;
        break;
      case JoinStrategy::kRangeTree:
      case JoinStrategy::kGrid:
        cache->post_index_filter =
            compose(hash_pred(static_cast<size_t>(-1)), residual());
        break;
      case JoinStrategy::kHash:
        cache->post_index_filter =
            compose(compose(range_pred(true), hash_pred(0)), residual());
        break;
    }
    cache->post_strategy = strategy;
    cache->post_built = true;
    cache->post_vm_built = false;  // Expr recomposed; bytecode is stale.
  }
  out->post_index_filter = cache->post_index_filter.get();
  if (compile_vm && !cache->post_vm_built) {
    cache->post_vm_ok =
        cache->post_index_filter != nullptr &&
        CompileFilter(*cache->post_index_filter, &cache->post_filter_vm);
    cache->post_vm_built = true;
  }
  if (out->use_vm && cache->post_vm_ok) {
    out->post_filter_vm = &cache->post_filter_vm;
  }

  switch (strategy) {
    case JoinStrategy::kNestedLoop:
      break;
    case JoinStrategy::kRangeTree:
    case JoinStrategy::kGrid: {
      if (!cache->spec_built) {
        cache->spec.cls = op.inner_cls;
        for (const RangeDim& d : op.range_dims) {
          cache->spec.fields.push_back(d.inner_field);
        }
        cache->spec_built = true;
      }
      cache->spec.kind = strategy == JoinStrategy::kRangeTree
                             ? IndexKind::kRangeTree
                             : IndexKind::kGrid;
      out->index = indexes->GetOrBuild(world, cache->spec, tick);
      break;
    }
    case JoinStrategy::kHash: {
      out->hash_field = op.hash_dims[0].inner_field;
      if (out->hash_field != kInvalidField) {
        const EntityTable& inner = world.table(op.inner_cls);
        cache->hash.Build(inner.Num(out->hash_field), inner.size());
        out->hash = &cache->hash;
      }
      break;
    }
  }
}

// --- Vectorized driver ----------------------------------------------------

void RunOpsVectorized(const std::vector<std::unique_ptr<PlanOp>>& ops,
                      const std::vector<RowIdx>& selection, ExecEnv& env) {
  if (selection.empty()) return;
  SGL_CHECK(env.scratch != nullptr);
  for (const auto& op : ops) {
    switch (op->kind) {
      case PlanOp::Kind::kComputeLocals: {
        auto* o = static_cast<const ComputeLocalsOp*>(op.get());
        PairRows rows{&selection, nullptr};
        VecContext ctx = MakeCtx(env, nullptr, rows);
        for (const LocalDef& def : o->defs) {
          const size_t slot = static_cast<size_t>(def.slot);
          if (def.type.is_number()) {
            ScopedVec<double> vals(env.scratch);
            EvalNumAuto(*def.value, ctx, env, env.vm, vals.get());
            for (size_t i = 0; i < selection.size(); ++i) {
              env.locals->num[slot][selection[i]] = (*vals)[i];
            }
          } else if (def.type.is_bool()) {
            ScopedVec<uint8_t> vals(env.scratch);
            EvalBoolAuto(*def.value, ctx, env, env.vm, vals.get());
            for (size_t i = 0; i < selection.size(); ++i) {
              env.locals->bools[slot][selection[i]] = (*vals)[i];
            }
          } else {
            ScopedVec<EntityId> vals(env.scratch);
            EvalRefAuto(*def.value, ctx, env, env.vm, vals.get());
            for (size_t i = 0; i < selection.size(); ++i) {
              env.locals->refs[slot][selection[i]] = (*vals)[i];
            }
          }
        }
        break;
      }
      case PlanOp::Kind::kEffects: {
        auto* o = static_cast<const EffectsOp*>(op.get());
        PairRows rows{&selection, nullptr};
        ApplyWrites(o->writes, nullptr, rows, env, env.vm, /*site=*/-1);
        break;
      }
      case PlanOp::Kind::kAccum:
        RunAccumVectorized(*static_cast<const AccumOp*>(op.get()), selection,
                           env);
        break;
      case PlanOp::Kind::kTxnEmit:
        RunTxnEmitVectorized(*static_cast<const TxnEmitOp*>(op.get()),
                             selection, env);
        break;
    }
  }
}

// --- Scalar (object-at-a-time) driver --------------------------------------

namespace {

ScalarContext MakeScalarCtx(const ExecEnv& env, RowIdx row) {
  ScalarContext ctx;
  ctx.world = env.world;
  ctx.outer_cls = env.outer_cls;
  ctx.outer_row = row;
  ctx.locals = env.locals;
  return ctx;
}

void ApplyWriteScalar(const EffectWrite& w, RowIdx row, ClassId inner_cls,
                      RowIdx inner_row, ExecEnv& env, int site) {
  ScalarContext ctx = MakeScalarCtx(env, row);
  ctx.inner_cls = inner_cls;
  ctx.inner_row = inner_row;
  if (w.guard != nullptr && !EvalScalarBool(*w.guard, ctx)) return;
  RowIdx target_row = kInvalidRow;
  switch (w.target_kind) {
    case TargetKind::kSelf:
      target_row = row;
      break;
    case TargetKind::kIter:
      target_row = inner_row;
      break;
    case TargetKind::kRef: {
      EntityId id = EvalScalarRef(*w.target_ref, ctx);
      const World::Locator* loc = env.world->Find(id);
      if (loc == nullptr || loc->cls != w.target_cls) return;
      target_row = loc->row;
      break;
    }
  }
  if (target_row == kInvalidRow) return;
  const EffectDest sink(env, w.target_cls);
  uint64_t key = OrderKey(w.assign_id, row,
                          inner_row == kInvalidRow ? 0 : inner_row);
  const FieldDef& field =
      env.world->catalog().Get(w.target_cls).effect_field(w.field);
  Value traced;
  if (w.set_insert) {
    EntityId v = EvalScalarRef(*w.value, ctx);
    sink.AddSetInsert(w.field, target_row, v);
    traced = Value::Ref(v);
  } else if (field.type.is_number()) {
    double v = EvalScalarNum(*w.value, ctx);
    sink.AddNumber(w.field, target_row, v, key);
    traced = Value::Number(v);
  } else if (field.type.is_bool()) {
    bool v = EvalScalarBool(*w.value, ctx);
    sink.AddBool(w.field, target_row, v, key);
    traced = Value::Bool(v);
  } else {
    EntityId v = EvalScalarRef(*w.value, ctx);
    sink.AddRef(w.field, target_row, v, key);
    traced = Value::Ref(v);
  }
  if (env.trace != nullptr || env.recorder_sink != nullptr) {
    EffectProv prov;
    prov.site = site;
    prov.src_shard = ProvShard(env);
    prov.src_outer = env.outer->id_at(row);
    if (inner_row != kInvalidRow && inner_cls != kInvalidClass) {
      prov.src_inner = env.world->table(inner_cls).id_at(inner_row);
    }
    const EntityId target_id =
        env.world->table(w.target_cls).id_at(target_row);
    if (env.trace != nullptr) {
      env.trace->OnEffectAssign(env.tick, target_id, w.target_cls, w.field,
                                traced, w.assign_id, key, prov);
    }
    if (env.recorder_sink != nullptr) {
      env.recorder_sink->OnEffectAssign(env.tick, target_id, w.target_cls,
                                        w.field, traced, w.assign_id, key,
                                        prov);
    }
  }
}

void RunAccumScalarBatch(const AccumOp& op,
                         const std::vector<RowIdx>& selection, ExecEnv& env) {
  const PreparedSite& site = (*env.prepared)[static_cast<size_t>(op.site_id)];
  const EntityTable& inner = env.world->table(op.inner_cls);
  const bool same_table = op.inner_cls == env.outer_cls &&
                          op.inner_set_field == kInvalidField;

  // Enumerate matches per entity (the object-at-a-time engine scans the
  // whole domain per entity — that is the point of the baseline) and fold
  // the accum variable as pairs are found. Pair-level effect writes are
  // collected and applied statement-major afterwards so that ⊕ fold order
  // over shared targets is the canonical (statement, outer, inner) order of
  // the compiled engine — semantically identical, FP-identical.
  std::vector<std::pair<RowIdx, RowIdx>> pairs;
  for (RowIdx row : selection) {
    ScalarContext octx = MakeScalarCtx(env, row);
    Fold fold;
    FlushFold(op, fold, row, env.locals);  // default the slot
    if (op.outer_guard != nullptr &&
        !EvalScalarBool(*op.outer_guard, octx)) {
      continue;
    }
    std::vector<RowIdx> domain;
    if (op.inner_set_field != kInvalidField) {
      const EntitySet& set = env.outer->SetCol(op.inner_set_field)[row];
      for (EntityId id : set) {
        const World::Locator* loc = env.world->Find(id);
        if (loc != nullptr && loc->cls == op.inner_cls) {
          domain.push_back(loc->row);
        }
      }
    } else {
      domain.resize(inner.size());
      for (size_t j = 0; j < inner.size(); ++j) {
        domain[j] = static_cast<RowIdx>(j);
      }
    }
    for (RowIdx j : domain) {
      if (op.exclude_self && same_table && j == row) continue;
      ScalarContext pctx = MakeScalarCtx(env, row);
      pctx.inner_cls = op.inner_cls;
      pctx.inner_row = j;
      if (site.nl_filter != nullptr &&
          !EvalScalarBool(*site.nl_filter, pctx)) {
        continue;
      }
      for (const AccumAssign& assign : op.accum_assigns) {
        if (assign.guard != nullptr &&
            !EvalScalarBool(*assign.guard, pctx)) {
          continue;
        }
        if (op.accum_type.is_number()) {
          fold.AddNum(op.accum_comb, EvalScalarNum(*assign.value, pctx));
        } else if (op.accum_type.is_bool()) {
          fold.AddBool(op.accum_comb, EvalScalarBool(*assign.value, pctx));
        } else {
          fold.AddRef(op.accum_comb, EvalScalarRef(*assign.value, pctx));
        }
      }
      if (!op.pair_writes.empty()) pairs.emplace_back(row, j);
    }
    FlushFold(op, fold, row, env.locals);
  }
  for (const EffectWrite& w : op.pair_writes) {
    for (const auto& [row, j] : pairs) {
      ApplyWriteScalar(w, row, op.inner_cls, j, env, op.site_id);
    }
  }
}

void RunTxnEmitScalar(const TxnEmitOp& op, RowIdx row, ExecEnv& env) {
  ScalarContext ctx = MakeScalarCtx(env, row);
  if (op.guard != nullptr && !EvalScalarBool(*op.guard, ctx)) return;
  const EntityId issuer = env.outer->id_at(row);
  env.txn_sink->StartIntent((static_cast<uint64_t>(op.site_id) << 32) |
                                static_cast<uint64_t>(row),
                            issuer, env.outer_cls, row, &op);
  for (const TxnWrite& w : op.writes) {
    TxnResolvedWrite rw;
    rw.target = w.target_kind == TargetKind::kSelf
                    ? issuer
                    : EvalScalarRef(*w.target_ref, ctx);
    rw.cls = w.target_cls;
    rw.field = w.state_field;
    rw.op = w.op;
    if (w.op == TxnWriteOp::kAddDelta) {
      rw.num = EvalScalarNum(*w.value, ctx);
    } else {
      rw.ref = EvalScalarRef(*w.value, ctx);
    }
    env.txn_sink->AddWrite(rw);
  }
}

}  // namespace

void RunOpsScalar(const std::vector<std::unique_ptr<PlanOp>>& ops,
                  const std::vector<RowIdx>& selection, ExecEnv& env) {
  // Statement-major iteration: for each op (and each write within it), all
  // rows are processed with per-row scalar evaluation. This keeps the
  // object-at-a-time cost profile (scalar predicates, full accum scans)
  // while making ⊕ accumulation order identical to the compiled engine.
  for (const auto& op : ops) {
    switch (op->kind) {
      case PlanOp::Kind::kComputeLocals: {
        auto* o = static_cast<const ComputeLocalsOp*>(op.get());
        for (const LocalDef& def : o->defs) {
          const size_t slot = static_cast<size_t>(def.slot);
          for (RowIdx row : selection) {
            ScalarContext ctx = MakeScalarCtx(env, row);
            if (def.type.is_number()) {
              env.locals->num[slot][row] = EvalScalarNum(*def.value, ctx);
            } else if (def.type.is_bool()) {
              env.locals->bools[slot][row] =
                  EvalScalarBool(*def.value, ctx) ? 1 : 0;
            } else {
              env.locals->refs[slot][row] = EvalScalarRef(*def.value, ctx);
            }
          }
        }
        break;
      }
      case PlanOp::Kind::kEffects: {
        auto* o = static_cast<const EffectsOp*>(op.get());
        for (const EffectWrite& w : o->writes) {
          for (RowIdx row : selection) {
            ApplyWriteScalar(w, row, kInvalidClass, kInvalidRow, env,
                             /*site=*/-1);
          }
        }
        break;
      }
      case PlanOp::Kind::kAccum:
        RunAccumScalarBatch(*static_cast<const AccumOp*>(op.get()),
                            selection, env);
        break;
      case PlanOp::Kind::kTxnEmit:
        for (RowIdx row : selection) {
          RunTxnEmitScalar(*static_cast<const TxnEmitOp*>(op.get()), row,
                           env);
        }
        break;
    }
  }
}

}  // namespace sgl
