#include "src/exec/tick_executor.h"

#include <algorithm>

#include "src/common/alloc_hook.h"
#include "src/common/stopwatch.h"
#include "src/fault/fault_injector.h"
#include "src/telemetry/flight_recorder.h"
#include "src/telemetry/telemetry.h"
#include "src/update/expr_updater.h"
#include "src/vm/compile.h"
#include "src/vm/kernels.h"

namespace sgl {

void TickStats::Reset(Tick now) {
  // Field-wise so `sites` keeps its capacity across ticks.
  tick = now;
  query_effect_micros = 0;
  merge_micros = 0;
  update_micros = 0;
  index_build_micros = 0;
  index_memory_bytes = 0;
  total_micros = 0;
  allocs_per_tick = 0;
  bytes_per_tick = 0;
  vm_programs = 0;
  vm_fallbacks = 0;
  vm_compile_micros = 0;
  probe_micros = 0;
  simd_lanes_used = 0;
  sites_bytecode = 0;
  sites_interpreted = 0;
  sites_probe_batched = 0;
  sites_probe_single = 0;
  jobs_submitted = 0;
  jobs_installed = 0;
  jobs_in_flight = 0;
  job_wait_micros = 0;
  txn = TxnStats();
}

TickExecutor::TickExecutor(World* world, const CompiledProgram* program,
                           ExecOptions options)
    : world_(world),
      program_(program),
      options_(options),
      controller_(options.planner, program->num_sites),
      txn_(program) {
  txn_.set_fault(options_.fault);
  if (options_.telemetry != nullptr) {
    options_.telemetry->EnsureSites(program_->num_sites);
  }
  if (options_.eval_mode != EvalMode::kInterpret && !options_.interpreted) {
    vm_cache_ = std::make_unique<VmProgramCache>();
    vm_cache_->set_telemetry(options_.telemetry);
    vm_cache_->CompileProgram(*program_);
  }
  if (options_.num_threads > 1) {
    pool_ = std::make_unique<ThreadPool>(options_.num_threads);
  }
  site_cache_.resize(static_cast<size_t>(program_->num_sites));
  prepared_.resize(static_cast<size_t>(program_->num_sites));
  script_locals_.resize(program_->scripts.size());
  script_selections_.resize(program_->scripts.size());
  handler_locals_.resize(program_->handlers.size());
}

TickExecutor::~TickExecutor() = default;

Status TickExecutor::Init() {
  SGL_CHECK(!initialized_);
  Catalog* catalog = program_->catalog.get();
  SGL_RETURN_IF_ERROR(
      components_.Register(catalog, MakeTxnComponent(&txn_, program_)));
  SGL_RETURN_IF_ERROR(components_.Register(
      catalog, std::make_unique<ExprUpdater>(program_)));
  initialized_ = true;
  return Status::OK();
}

Status TickExecutor::RegisterComponent(
    std::unique_ptr<UpdateComponent> component) {
  SGL_CHECK(initialized_ && "call Init() first");
  return components_.Register(program_->catalog.get(), std::move(component));
}

void TickExecutor::EnsureWorkers(int shards) {
  const int num_classes = world_->catalog().num_classes();
  if (shards > 1 && shard_effects_.size() != static_cast<size_t>(shards)) {
    shard_effects_.clear();
    shard_effects_.resize(static_cast<size_t>(shards));
    for (auto& per_class : shard_effects_) {
      for (ClassId c = 0; c < num_classes; ++c) {
        per_class.push_back(
            std::make_unique<EffectBuffer>(&world_->catalog().Get(c)));
      }
    }
    workers_.clear();  // sink tables must be rebuilt
  }
  if (workers_.size() == static_cast<size_t>(shards)) return;
  workers_.clear();
  for (int s = 0; s < shards; ++s) {
    auto w = std::make_unique<WorkerState>();
    ExecEnv& env = w->env;
    env.world = world_;
    env.effect_sinks.resize(static_cast<size_t>(num_classes));
    for (ClassId c = 0; c < num_classes; ++c) {
      env.effect_sinks[static_cast<size_t>(c)] =
          shards == 1 ? &world_->effects(c)
                      : shard_effects_[static_cast<size_t>(s)]
                                      [static_cast<size_t>(c)].get();
    }
    env.scratch = &w->scratch;
    env.vm = vm_cache_.get();
    env.telemetry = options_.telemetry;
    env.tel_track = 0;  // unsharded: every span renders under pid "world"
    workers_.push_back(std::move(w));
  }
}

void TickExecutor::PrepareSites(
    const std::vector<std::unique_ptr<PlanOp>>& ops, size_t outer_rows) {
  for (const auto& op : ops) {
    if (op->kind != PlanOp::Kind::kAccum) continue;
    const auto* accum = static_cast<const AccumOp*>(op.get());
    JoinStrategy strategy;
    if (options_.interpreted) {
      strategy = JoinStrategy::kNestedLoop;
    } else {
      const TableStats* inner_stats =
          stats_mgr_.has_stats() ? &stats_mgr_.Get(accum->inner_cls) : nullptr;
      strategy = controller_.Choose(*accum, tick_, inner_stats, outer_rows);
    }
    // Backend axes (orthogonal to the join strategy): per-site bytecode
    // and batched-probe decisions, resolved here once per tick so every
    // worker thread sees the same PreparedSite.
    bool use_vm = false;
    bool probe_batched = false;
    if (!options_.interpreted) {
      use_vm = options_.eval_mode == EvalMode::kBytecode ||
               (options_.eval_mode == EvalMode::kAuto &&
                controller_.ChooseEvalBytecode(accum->site_id, tick_));
      probe_batched = options_.probe_mode == ProbeMode::kBatched ||
                      (options_.probe_mode == ProbeMode::kAuto &&
                       controller_.ChooseProbeBatched(accum->site_id, tick_));
    }
    if (use_vm) ++last_.sites_bytecode; else ++last_.sites_interpreted;
    if (probe_batched) {
      ++last_.sites_probe_batched;
    } else {
      ++last_.sites_probe_single;
    }
    if (options_.telemetry != nullptr && options_.telemetry->armed()) {
      options_.telemetry->RecordSiteDecision(accum->site_id, tick_,
                                             JoinStrategyName(strategy),
                                             use_vm, probe_batched);
    }
    PrepareSite(*accum, strategy, *world_, &indexes_, tick_,
                /*compile_vm=*/vm_cache_ != nullptr, use_vm, probe_batched,
                &site_cache_[static_cast<size_t>(accum->site_id)],
                &prepared_[static_cast<size_t>(accum->site_id)]);
  }
}

void TickExecutor::RunUnit(
    const std::vector<std::unique_ptr<PlanOp>>& ops, ClassId cls,
    const std::vector<RowIdx>& selection, LocalColumns* locals) {
  auto configure = [&](int shard) -> ExecEnv& {
    ExecEnv& env = workers_[static_cast<size_t>(shard)]->env;
    env.tick = tick_;
    env.outer_cls = cls;
    env.outer = &world_->table(cls);
    env.txn_sink = txn_.shard(shard);
    env.locals = locals;
    env.prepared = &prepared_;
    env.feedback = &feedback_shards_[static_cast<size_t>(shard)];
    env.trace = trace_;
    env.recorder_sink = recorder_sink_;
    return env;
  };

  if (options_.interpreted) {
    RunOpsScalar(ops, selection, configure(0));
    return;
  }
  if (options_.num_threads <= 1) {
    RunOpsVectorized(ops, selection, configure(0));
    return;
  }
  // Static morsel -> shard assignment: morsel m runs on shard m % T,
  // each shard's morsels in increasing order — deterministic for a fixed
  // thread count regardless of scheduling.
  const size_t morsel = options_.morsel_size;
  const int T = options_.num_threads;
  const size_t num_morsels = (selection.size() + morsel - 1) / morsel;
  pool_->ParallelFor(T, [&](int t) {
    ExecEnv& env = configure(t);
    std::vector<RowIdx>& slice = workers_[static_cast<size_t>(t)]->slice;
    for (size_t m = static_cast<size_t>(t); m < num_morsels;
         m += static_cast<size_t>(T)) {
      size_t begin = m * morsel;
      size_t end = std::min(selection.size(), begin + morsel);
      slice.assign(selection.begin() + static_cast<ptrdiff_t>(begin),
                   selection.begin() + static_cast<ptrdiff_t>(end));
      RunOpsVectorized(ops, slice, env);
    }
  });
}

Status TickExecutor::RunTick() {
  SGL_CHECK(initialized_ && "call Init() first");
  const AllocCounts alloc_before = AllocCountersNow();
  Stopwatch total;
  Telemetry* const tel = options_.telemetry;
  SGL_TRACE_SPAN(tel, kSpanTickTotal, tick_, 0, 0);
  last_.Reset(tick_);
  const int num_classes = world_->catalog().num_classes();
  const int shards = options_.num_threads > 1 ? options_.num_threads : 1;
  const int64_t index_micros_before = indexes_.build_micros();
  const int64_t simd_lanes_before = SimdLanesNow();

  // --- Setup -----------------------------------------------------------
  world_->ResetEffects();
  if (!options_.interpreted) stats_mgr_.MaybeRefresh(*world_, tick_);
  recorder_sink_ = options_.recorder != nullptr
                       ? options_.recorder->capture_sink()
                       : nullptr;
  txn_.set_fault_tick(tick_);
  txn_.set_prov_sink(recorder_sink_);
  txn_.BeginTick(shards);
  EnsureWorkers(shards);
  if (shards > 1) {
    for (auto& per_class : shard_effects_) {
      for (ClassId c = 0; c < num_classes; ++c) {
        per_class[static_cast<size_t>(c)]->Reset(world_->table(c).size());
      }
    }
  }
  if (feedback_shards_.size() != static_cast<size_t>(shards)) {
    feedback_shards_.resize(static_cast<size_t>(shards));
  }
  for (auto& shard : feedback_shards_) {
    shard.assign(static_cast<size_t>(program_->num_sites), SiteFeedback());
  }

  // --- 1. Query + effect phase ------------------------------------------
  Stopwatch query_timer;
  for (size_t si = 0; si < program_->scripts.size(); ++si) {
    const CompiledScript& script = program_->scripts[si];
    EntityTable& table = world_->table(script.cls);
    if (table.empty()) continue;
    LocalColumns& locals = script_locals_[si];
    AllocateLocalColumns(script.local_types, table.size(), &locals);

    // Phase dispatch on the PC column (§3.2).
    auto& selections = script_selections_[si];
    if (selections.size() != static_cast<size_t>(script.num_phases())) {
      selections.resize(static_cast<size_t>(script.num_phases()));
    }
    {
      SGL_TRACE_SPAN(tel, kSpanTickSelect, tick_, 0,
                     static_cast<uint16_t>(si));
      if (script.num_phases() == 1) {
        // The whole-extent selection is a pure function of the table size
        // (iota); rebuild it only when spawns/despawns resized the class.
        auto& all = selections[0];
        if (all.size() != table.size()) {
          all.resize(table.size());
          for (size_t i = 0; i < table.size(); ++i) {
            all[i] = static_cast<RowIdx>(i);
          }
        }
      } else {
        for (auto& sel : selections) sel.clear();
        ConstNumberColumn pc = table.Num(script.pc_state);
        for (size_t i = 0; i < table.size(); ++i) {
          int phase = static_cast<int>(pc[i]);
          if (phase < 0 || phase >= script.num_phases()) phase = 0;
          selections[static_cast<size_t>(phase)].push_back(
              static_cast<RowIdx>(i));
        }
      }
    }
    for (int k = 0; k < script.num_phases(); ++k) {
      const auto& selection = selections[static_cast<size_t>(k)];
      if (selection.empty()) continue;
      {
        SGL_TRACE_SPAN(tel, kSpanTickSitePrep, tick_, 0,
                       static_cast<uint16_t>(si));
        PrepareSites(script.phases[static_cast<size_t>(k)], selection.size());
      }
      SGL_TRACE_SPAN(tel, kSpanTickQuery, tick_, 0,
                     static_cast<uint16_t>(si));
      RunUnit(script.phases[static_cast<size_t>(k)], script.cls, selection,
              &locals);
    }
  }

  // Reactive handlers (§3.2): conditions over current state, set-at-a-time.
  for (size_t hi = 0; hi < program_->handlers.size(); ++hi) {
    const CompiledHandler& handler = program_->handlers[hi];
    EntityTable& table = world_->table(handler.cls);
    if (table.empty()) continue;
    if (handler_all_.size() != table.size()) {  // iota; see script selections
      handler_all_.resize(table.size());
      for (size_t i = 0; i < table.size(); ++i) {
        handler_all_[i] = static_cast<RowIdx>(i);
      }
    }
    LocalColumns& locals = handler_locals_[hi];
    AllocateLocalColumns(handler.local_types, table.size(), &locals);
    handler_selection_.clear();
    {
      SGL_TRACE_SPAN(tel, kSpanTickSelect, tick_, 0,
                     static_cast<uint16_t>(hi));
      if (options_.interpreted) {
        ScalarContext ctx;
        ctx.world = world_;
        ctx.outer_cls = handler.cls;
        ctx.locals = &locals;
        for (RowIdx row : handler_all_) {
          ctx.outer_row = row;
          if (EvalScalarBool(*handler.cond, ctx)) {
            handler_selection_.push_back(row);
          }
        }
      } else {
        VecContext ctx;
        ctx.world = world_;
        ctx.outer = &table;
        ctx.outer_rows = &handler_all_;
        ctx.locals = &locals;
        ctx.scratch = &workers_[0]->scratch;
        const VmProgram* cond_vm =
            vm_cache_ != nullptr ? vm_cache_->Value(handler.cond.get())
                                 : nullptr;
        if (cond_vm != nullptr) {
          VmEvalBool(*cond_vm, ctx, &workers_[0]->scratch.vm, nullptr, 0,
                     &handler_keep_);
        } else {
          EvalBool(*handler.cond, ctx, &handler_keep_);
        }
        for (size_t i = 0; i < handler_all_.size(); ++i) {
          if (handler_keep_[i]) handler_selection_.push_back(handler_all_[i]);
        }
      }
    }
    if (handler_selection_.empty()) continue;
    {
      SGL_TRACE_SPAN(tel, kSpanTickSitePrep, tick_, 0,
                     static_cast<uint16_t>(hi));
      PrepareSites(handler.ops, handler_selection_.size());
    }
    SGL_TRACE_SPAN(tel, kSpanTickQuery, tick_, 0, static_cast<uint16_t>(hi));
    RunUnit(handler.ops, handler.cls, handler_selection_, &locals);
  }
  last_.query_effect_micros = query_timer.ElapsedMicros();
  if (options_.fault != nullptr) {
    // Crash between query and merge: issued effects/intents die with the
    // process, state columns are still pre-tick. Recovery restores the
    // last checkpoint and replays.
    SGL_RETURN_IF_ERROR(
        options_.fault->MaybeCrash(kFaultExecCrashPostQuery, tick_));
  }

  // --- 2. Merge ---------------------------------------------------------
  Stopwatch merge_timer;
  {
    SGL_TRACE_SPAN(tel, kSpanTickMerge, tick_, 0, 0);
    if (shards > 1) {
      for (int s = 0; s < shards; ++s) {
        for (ClassId c = 0; c < num_classes; ++c) {
          world_->effects(c).MergeFrom(
              *shard_effects_[static_cast<size_t>(s)][static_cast<size_t>(c)]);
        }
      }
    }
    // Canonicalize set-effect logs (sort + dedup + pooled materialization)
    // now that the last shard has merged; update-phase reads require it.
    {
      SGL_TRACE_SPAN(tel, kSpanTickFinalize, tick_, 0, 0);
      for (ClassId c = 0; c < num_classes; ++c) {
        world_->effects(c).FinalizeSets();
      }
    }
    // Aggregate per-site feedback across shards and inform the controller.
    last_.sites.assign(static_cast<size_t>(program_->num_sites),
                       SiteFeedback());
    for (const auto& shard : feedback_shards_) {
      for (size_t i = 0; i < shard.size(); ++i) {
        if (shard[i].site < 0) continue;
        SiteFeedback& agg = last_.sites[i];
        agg.site = shard[i].site;
        agg.strategy = shard[i].strategy;
        agg.outer_rows += shard[i].outer_rows;
        agg.candidates += shard[i].candidates;
        agg.matches += shard[i].matches;
        agg.micros += shard[i].micros;
        agg.probe_micros += shard[i].probe_micros;
        agg.effects += shard[i].effects;
        last_.probe_micros += shard[i].probe_micros;
      }
    }
    for (const SiteFeedback& fb : last_.sites) {
      if (fb.site >= 0) controller_.Feedback(fb);
    }
  }
  last_.merge_micros = merge_timer.ElapsedMicros();

  // --- 3. Update phase ----------------------------------------------------
  Stopwatch update_timer;
  // Out-of-band completions ride the barrier: results whose declared
  // latency elapses this tick install now, in deterministic order, so the
  // components below read them no matter which tick a worker finished on.
  if (jobs_ != nullptr) {
    SGL_TRACE_SPAN(tel, kSpanTickInstall, tick_, 0, 0);
    jobs_->InstallDue(tick_);
  }
  {
    SGL_TRACE_SPAN(tel, kSpanTickUpdate, tick_, 0, 0);
    components_.RunAll(world_, tick_);
  }
  last_.update_micros = update_timer.ElapsedMicros();
  if (txn_.ConsumeInjectedCrash()) {
    // Mid-admission crash left a torn update phase (partial commits
    // written back, later issuers unprocessed). Surface it as the crash
    // it models — the tick counter does NOT advance past a torn tick.
    return Status::Internal(std::string(kFaultCrashPrefix) +
                            " at txn.admit.crash tick " +
                            std::to_string(tick_));
  }
  if (options_.fault != nullptr) {
    // Crash after the update phase but before the tick commits (counter
    // bump): the classic torn-tick window a checkpoint must mend.
    SGL_RETURN_IF_ERROR(
        options_.fault->MaybeCrash(kFaultExecCrashPostUpdate, tick_));
  }

  // --- 4. Bookkeeping ----------------------------------------------------
  if (jobs_ != nullptr) {
    JobTickStats js;
    jobs_->SampleTick(&js);
    last_.jobs_submitted = js.submitted;
    last_.jobs_installed = js.installed;
    last_.jobs_in_flight = js.in_flight;
    last_.job_wait_micros = js.wait_micros;
  }
  last_.txn = txn_.last_tick();
  if (vm_cache_ != nullptr) {
    last_.vm_programs = vm_cache_->programs_compiled();
    last_.vm_fallbacks = vm_cache_->fallbacks();
    last_.vm_compile_micros = vm_cache_->compile_micros();
  }
  last_.index_build_micros = indexes_.build_micros() - index_micros_before;
  last_.index_memory_bytes = static_cast<int64_t>(indexes_.MemoryBytes());
  last_.simd_lanes_used = SimdLanesNow() - simd_lanes_before;
  last_.total_micros = total.ElapsedMicros();
  if (options_.recorder != nullptr) {
    // Before the alloc-count capture below, so the recorder's own frame
    // assembly is held to the same allocs_per_tick == 0 contract.
    FlightRecorder::FrameInput fin;
    fin.tick = tick_;
    fin.stats = &last_;
    fin.world = world_;
    options_.recorder->CaptureTick(fin);
  }
  const AllocCounts alloc_after = AllocCountersNow();
  last_.allocs_per_tick = alloc_after.count - alloc_before.count;
  last_.bytes_per_tick = alloc_after.bytes - alloc_before.bytes;
  if (tel != nullptr && tel->armed()) {
    for (const SiteFeedback& fb : last_.sites) {
      if (fb.site < 0) continue;
      tel->RecordSiteTick(fb.site, fb.micros, fb.probe_micros, fb.outer_rows,
                          fb.candidates, fb.matches, fb.effects);
      const AdaptiveController::BackendBeliefs b =
          controller_.Beliefs(fb.site);
      tel->RecordSiteBeliefs(fb.site, b.eval_us_per_outer[0],
                             b.eval_us_per_outer[1], b.probe_us_per_outer[0],
                             b.probe_us_per_outer[1]);
    }
    Telemetry::TickSample s;
    s.total_us = last_.total_micros;
    s.query_us = last_.query_effect_micros;
    s.merge_us = last_.merge_micros;
    s.update_us = last_.update_micros;
    s.probe_us = last_.probe_micros;
    s.job_wait_us = jobs_ != nullptr ? last_.job_wait_micros : -1;
    s.barrier_stall_us = -1;  // no shard barrier in the unsharded pipeline
    s.jobs_submitted = last_.jobs_submitted;
    s.jobs_installed = last_.jobs_installed;
    s.jobs_in_flight = last_.jobs_in_flight;
    s.vm_programs = last_.vm_programs;
    tel->RecordTick(s);
  }
  ++tick_;
  return Status::OK();
}

void TickExecutor::ResetStatsAfterRestore() {
  last_.jobs_submitted = 0;
  last_.jobs_installed = 0;
  last_.job_wait_micros = 0;
  last_.jobs_in_flight =
      jobs_ != nullptr ? static_cast<int64_t>(jobs_->in_flight()) : 0;
  if (jobs_ != nullptr) jobs_->ResetStatsWindow();
}

}  // namespace sgl
