#include "src/exec/tick_executor.h"

#include <algorithm>

#include "src/common/stopwatch.h"
#include "src/update/expr_updater.h"

namespace sgl {

namespace {

/// Adapts TxnEngine to the update-component interface: it owns every state
/// field written by atomic blocks plus the status fields (§3.1).
class TxnComponent : public UpdateComponent {
 public:
  TxnComponent(TxnEngine* engine, const CompiledProgram* program)
      : engine_(engine), program_(program) {}

  const std::string& name() const override { return name_; }

  std::vector<std::pair<ClassId, FieldIdx>> OwnedFields() const override {
    std::vector<std::pair<ClassId, FieldIdx>> out;
    for (size_t c = 0; c < program_->txn_owned.size(); ++c) {
      for (FieldIdx f : program_->txn_owned[c]) {
        out.emplace_back(static_cast<ClassId>(c), f);
      }
    }
    return out;
  }

  void Update(World* world, Tick tick) override {
    (void)tick;
    engine_->ApplyUpdate(world);
  }

 private:
  std::string name_ = "txn-engine";
  TxnEngine* engine_;
  const CompiledProgram* program_;
};

}  // namespace

TickExecutor::TickExecutor(World* world, const CompiledProgram* program,
                           ExecOptions options)
    : world_(world),
      program_(program),
      options_(options),
      controller_(options.planner, program->num_sites),
      txn_(program) {
  if (options_.num_threads > 1) {
    pool_ = std::make_unique<ThreadPool>(options_.num_threads);
  }
}

TickExecutor::~TickExecutor() = default;

Status TickExecutor::Init() {
  SGL_CHECK(!initialized_);
  Catalog* catalog = program_->catalog.get();
  SGL_RETURN_IF_ERROR(components_.Register(
      catalog, std::make_unique<TxnComponent>(&txn_, program_)));
  SGL_RETURN_IF_ERROR(components_.Register(
      catalog, std::make_unique<ExprUpdater>(program_)));
  initialized_ = true;
  return Status::OK();
}

Status TickExecutor::RegisterComponent(
    std::unique_ptr<UpdateComponent> component) {
  SGL_CHECK(initialized_ && "call Init() first");
  return components_.Register(program_->catalog.get(), std::move(component));
}

void TickExecutor::AllocateLocals(const std::vector<SglType>& types,
                                  size_t rows, LocalColumns* locals) {
  locals->EnsureSlots(types.size());
  for (size_t slot = 0; slot < types.size(); ++slot) {
    if (types[slot].is_number()) {
      locals->num[slot].assign(rows, 0.0);
    } else if (types[slot].is_bool()) {
      locals->bools[slot].assign(rows, 0);
    } else {
      locals->refs[slot].assign(rows, kNullEntity);
    }
  }
}

void TickExecutor::PrepareSites(
    const std::vector<std::unique_ptr<PlanOp>>& ops, size_t outer_rows,
    std::map<int, PreparedSite>* out) {
  for (const auto& op : ops) {
    if (op->kind != PlanOp::Kind::kAccum) continue;
    const auto* accum = static_cast<const AccumOp*>(op.get());
    JoinStrategy strategy;
    if (options_.interpreted) {
      strategy = JoinStrategy::kNestedLoop;
    } else {
      const TableStats* inner_stats =
          stats_mgr_.has_stats() ? &stats_mgr_.Get(accum->inner_cls) : nullptr;
      strategy = controller_.Choose(*accum, tick_, inner_stats, outer_rows);
    }
    (*out)[accum->site_id] =
        PrepareSite(*accum, strategy, *world_, &indexes_, tick_);
  }
}

void TickExecutor::RunUnit(
    const std::vector<std::unique_ptr<PlanOp>>& ops, ClassId cls,
    const std::vector<RowIdx>& selection, LocalColumns* locals,
    const std::map<int, PreparedSite>& sites,
    std::vector<std::vector<SiteFeedback>>* feedback_shards) {
  const int num_classes = world_->catalog().num_classes();
  auto make_env = [&](int shard) {
    ExecEnv env;
    env.world = world_;
    env.tick = tick_;
    env.outer_cls = cls;
    env.outer = &world_->table(cls);
    env.effect_sinks.resize(static_cast<size_t>(num_classes));
    for (ClassId c = 0; c < num_classes; ++c) {
      env.effect_sinks[static_cast<size_t>(c)] =
          shard == 0 && options_.num_threads <= 1
              ? &world_->effects(c)
              : shard_effects_[static_cast<size_t>(shard)]
                              [static_cast<size_t>(c)].get();
    }
    env.txn_sink = txn_.shard(shard);
    env.locals = locals;
    env.prepared = &sites;
    env.feedback = &(*feedback_shards)[static_cast<size_t>(shard)];
    env.trace = trace_;
    return env;
  };

  if (options_.interpreted) {
    ExecEnv env = make_env(0);
    RunOpsScalar(ops, selection, env);
    return;
  }
  if (options_.num_threads <= 1) {
    ExecEnv env = make_env(0);
    RunOpsVectorized(ops, selection, env);
    return;
  }
  // Static morsel -> shard assignment: morsel m runs on shard m % T,
  // each shard's morsels in increasing order — deterministic for a fixed
  // thread count regardless of scheduling.
  const size_t morsel = options_.morsel_size;
  const int T = options_.num_threads;
  const size_t num_morsels = (selection.size() + morsel - 1) / morsel;
  pool_->ParallelFor(T, [&](int t) {
    ExecEnv env = make_env(t);
    std::vector<RowIdx> slice;
    for (size_t m = static_cast<size_t>(t); m < num_morsels;
         m += static_cast<size_t>(T)) {
      size_t begin = m * morsel;
      size_t end = std::min(selection.size(), begin + morsel);
      slice.assign(selection.begin() + static_cast<ptrdiff_t>(begin),
                   selection.begin() + static_cast<ptrdiff_t>(end));
      RunOpsVectorized(ops, slice, env);
    }
  });
}

Status TickExecutor::RunTick() {
  SGL_CHECK(initialized_ && "call Init() first");
  Stopwatch total;
  last_ = TickStats();
  last_.tick = tick_;
  const int num_classes = world_->catalog().num_classes();
  const int shards = options_.num_threads > 1 ? options_.num_threads : 1;
  const int64_t index_micros_before = indexes_.build_micros();

  // --- Setup -----------------------------------------------------------
  world_->ResetEffects();
  if (!options_.interpreted) stats_mgr_.MaybeRefresh(*world_, tick_);
  txn_.BeginTick(shards);
  if (shards > 1) {
    if (shard_effects_.size() != static_cast<size_t>(shards)) {
      shard_effects_.clear();
      shard_effects_.resize(static_cast<size_t>(shards));
      for (auto& per_class : shard_effects_) {
        for (ClassId c = 0; c < num_classes; ++c) {
          per_class.push_back(
              std::make_unique<EffectBuffer>(&world_->catalog().Get(c)));
        }
      }
    }
    for (auto& per_class : shard_effects_) {
      for (ClassId c = 0; c < num_classes; ++c) {
        per_class[static_cast<size_t>(c)]->Reset(world_->table(c).size());
      }
    }
  }
  std::vector<std::vector<SiteFeedback>> feedback_shards(
      static_cast<size_t>(shards),
      std::vector<SiteFeedback>(
          static_cast<size_t>(program_->num_sites)));

  // --- 1. Query + effect phase ------------------------------------------
  Stopwatch query_timer;
  for (const CompiledScript& script : program_->scripts) {
    EntityTable& table = world_->table(script.cls);
    if (table.empty()) continue;
    LocalColumns locals;
    AllocateLocals(script.local_types, table.size(), &locals);

    // Phase dispatch on the PC column (§3.2).
    std::vector<std::vector<RowIdx>> selections(
        static_cast<size_t>(script.num_phases()));
    if (script.num_phases() == 1) {
      auto& all = selections[0];
      all.resize(table.size());
      for (size_t i = 0; i < table.size(); ++i) {
        all[i] = static_cast<RowIdx>(i);
      }
    } else {
      ConstNumberColumn pc = table.Num(script.pc_state);
      for (size_t i = 0; i < table.size(); ++i) {
        int phase = static_cast<int>(pc[i]);
        if (phase < 0 || phase >= script.num_phases()) phase = 0;
        selections[static_cast<size_t>(phase)].push_back(
            static_cast<RowIdx>(i));
      }
    }
    for (int k = 0; k < script.num_phases(); ++k) {
      const auto& selection = selections[static_cast<size_t>(k)];
      if (selection.empty()) continue;
      std::map<int, PreparedSite> sites;
      PrepareSites(script.phases[static_cast<size_t>(k)], selection.size(),
                   &sites);
      RunUnit(script.phases[static_cast<size_t>(k)], script.cls, selection,
              &locals, sites, &feedback_shards);
    }
  }

  // Reactive handlers (§3.2): conditions over current state, set-at-a-time.
  for (const CompiledHandler& handler : program_->handlers) {
    EntityTable& table = world_->table(handler.cls);
    if (table.empty()) continue;
    std::vector<RowIdx> all(table.size());
    for (size_t i = 0; i < table.size(); ++i) all[i] = static_cast<RowIdx>(i);
    LocalColumns locals;
    AllocateLocals(handler.local_types, table.size(), &locals);
    std::vector<RowIdx> selection;
    if (options_.interpreted) {
      ScalarContext ctx;
      ctx.world = world_;
      ctx.outer_cls = handler.cls;
      ctx.locals = &locals;
      for (RowIdx row : all) {
        ctx.outer_row = row;
        if (EvalScalarBool(*handler.cond, ctx)) selection.push_back(row);
      }
    } else {
      VecContext ctx;
      ctx.world = world_;
      ctx.outer = &table;
      ctx.outer_rows = &all;
      ctx.locals = &locals;
      std::vector<uint8_t> keep;
      EvalBool(*handler.cond, ctx, &keep);
      for (size_t i = 0; i < all.size(); ++i) {
        if (keep[i]) selection.push_back(all[i]);
      }
    }
    if (selection.empty()) continue;
    std::map<int, PreparedSite> sites;
    PrepareSites(handler.ops, selection.size(), &sites);
    RunUnit(handler.ops, handler.cls, selection, &locals, sites,
            &feedback_shards);
  }
  last_.query_effect_micros = query_timer.ElapsedMicros();

  // --- 2. Merge ---------------------------------------------------------
  Stopwatch merge_timer;
  if (shards > 1) {
    for (int s = 0; s < shards; ++s) {
      for (ClassId c = 0; c < num_classes; ++c) {
        world_->effects(c).MergeFrom(
            *shard_effects_[static_cast<size_t>(s)][static_cast<size_t>(c)]);
      }
    }
  }
  // Aggregate per-site feedback across shards and inform the controller.
  last_.sites.assign(static_cast<size_t>(program_->num_sites),
                     SiteFeedback());
  for (const auto& shard : feedback_shards) {
    for (size_t i = 0; i < shard.size(); ++i) {
      if (shard[i].site < 0) continue;
      SiteFeedback& agg = last_.sites[i];
      agg.site = shard[i].site;
      agg.strategy = shard[i].strategy;
      agg.outer_rows += shard[i].outer_rows;
      agg.candidates += shard[i].candidates;
      agg.matches += shard[i].matches;
      agg.micros += shard[i].micros;
    }
  }
  for (const SiteFeedback& fb : last_.sites) {
    if (fb.site >= 0) controller_.Feedback(fb);
  }
  last_.merge_micros = merge_timer.ElapsedMicros();

  // --- 3. Update phase ----------------------------------------------------
  Stopwatch update_timer;
  components_.RunAll(world_, tick_);
  last_.update_micros = update_timer.ElapsedMicros();

  // --- 4. Bookkeeping ----------------------------------------------------
  last_.txn = txn_.last_tick();
  last_.index_build_micros = indexes_.build_micros() - index_micros_before;
  last_.total_micros = total.ElapsedMicros();
  ++tick_;
  return Status::OK();
}

}  // namespace sgl
