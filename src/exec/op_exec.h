// Plan-operator execution: the vectorized set-at-a-time path (§2, §4) and
// the scalar object-at-a-time path (the baseline a traditional engine would
// use, and the comparator of bench E1). Both consume the same CompiledScript
// ops over the same storage, so they are semantically interchangeable —
// property tests assert equal end states.

#ifndef SGL_EXEC_OP_EXEC_H_
#define SGL_EXEC_OP_EXEC_H_

#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/debug/trace.h"
#include "src/index/index_manager.h"
#include "src/opt/adaptive.h"
#include "src/ra/eval.h"
#include "src/ra/plan.h"
#include "src/txn/txn_engine.h"
#include "src/vm/vm.h"

namespace sgl {

class Telemetry;
class VmProgramCache;

/// Flat multimap from a numeric inner field to its rows: a sorted
/// (key, row) array rebuilt per tick into the same buffer (no node
/// allocation, unlike unordered_multimap). Lookups append rows ascending,
/// matching the canonical candidate order.
class FlatNumHash {
 public:
  /// Rebuilds over `col[0..n)`, reusing the entry buffer's capacity.
  void Build(ConstNumberColumn col, size_t n);
  /// Appends every row whose key equals `key`, in ascending row order.
  void Lookup(double key, std::vector<RowIdx>* out) const;

 private:
  std::vector<std::pair<double, RowIdx>> entries_;  // sorted by (key, row)
};

/// Per-tick prepared access path for one AccumOp site. All pointers borrow
/// from the executor-owned SiteCache / IndexManager; PreparedSite itself is
/// a plain value refreshed in place each tick.
struct PreparedSite {
  JoinStrategy strategy = JoinStrategy::kNestedLoop;
  const SpatialIndex* index = nullptr;  ///< tree/grid strategies
  const FlatNumHash* hash = nullptr;    ///< numeric-field hash strategy
  FieldIdx hash_field = kInvalidField;  ///< kInvalidField = entity-id probe
  /// Pair filters, composed from the op's predicate pieces:
  /// `nl_filter` re-checks everything (range + hash + residual + self);
  /// `post_index_filter` omits what the access path already guarantees.
  const Expr* nl_filter = nullptr;
  const Expr* post_index_filter = nullptr;
  /// Bytecode twins of the pair filters; null means interpret — bytecode
  /// is off for this site this tick, or the filter didn't lower.
  const VmProgram* nl_filter_vm = nullptr;
  const VmProgram* post_filter_vm = nullptr;
  /// Per-site backend decisions for this tick, resolved by the executor
  /// from EvalMode / ProbeMode (kAuto consults the cost controller):
  /// run this site's expressions on the bytecode VM, and answer its index
  /// probes with one QueryBatch per morsel instead of per-row Query calls.
  bool use_vm = false;
  bool probe_batched = false;
};

/// Executor-owned per-site cache backing PreparedSite across ticks: the
/// composed filter expressions (rebuilt only when the strategy switches,
/// not every tick), the index spec, and the reused hash-table buffer.
struct SiteCache {
  ExprPtr nl_filter;  ///< strategy-independent; composed once
  bool nl_built = false;
  ExprPtr post_index_filter;  ///< for `post_strategy`
  JoinStrategy post_strategy = JoinStrategy::kNestedLoop;
  bool post_built = false;
  IndexSpec spec;  ///< tree/grid strategies; fields filled once
  bool spec_built = false;
  FlatNumHash hash;  ///< kHash strategy; rebuilt per tick in place
  /// Compiled twins of the composed filters (bytecode mode). Built when
  /// the corresponding Expr is composed; `*_vm_ok` false = fallback.
  VmProgram nl_filter_vm;
  bool nl_vm_built = false, nl_vm_ok = false;
  VmProgram post_filter_vm;
  bool post_vm_built = false, post_vm_ok = false;
};

/// Per-worker execution scratch: the eval pools plus operator-level reusable
/// buffers. Owned by the executor, one per shard; everything keeps its
/// high-water capacity so steady-state ticks allocate nothing.
struct ExecScratch : EvalScratch {
  /// Reused holders for per-assign evaluated columns (accum folds and
  /// transaction emission). The pointed-to vectors come from the pools.
  struct AssignBufs {
    std::vector<uint8_t>* guard = nullptr;
    std::vector<double>* nums = nullptr;
    std::vector<uint8_t>* bools = nullptr;
    std::vector<EntityId>* refs = nullptr;
    std::vector<EntityId>* targets = nullptr;
  };
  std::vector<AssignBufs> assign_bufs;
  /// Bytecode register files (EvalMode::kBytecode); high-water like the
  /// pools, so steady-state VM execution allocates nothing.
  VmRegisters vm;
  /// Pooled CSR output of batched index probes (ProbeMode::kBatched);
  /// every buffer keeps its high-water capacity across ticks.
  ProbeBatch probe;
};

/// Refreshes the prepared access path for `op` under `strategy`: builds or
/// fetches the index / hash table and composes the residual filters (cached
/// in `cache`; recomposed only on a strategy switch). With `compile_vm`
/// set, the composed filters are additionally lowered to bytecode (also
/// cached; recompiled only when the Expr itself is recomposed) — but the
/// compiled twins are only *exposed* on the PreparedSite when `use_vm` is
/// also set, so EvalMode::kAuto can flip a site per tick without paying
/// recompilation. `probe_batched` is recorded for the accum executor.
void PrepareSite(const AccumOp& op, JoinStrategy strategy, const World& world,
                 IndexManager* indexes, Tick tick, bool compile_vm,
                 bool use_vm, bool probe_batched, SiteCache* cache,
                 PreparedSite* out);

/// Routes effect writes by target row when the world is partitioned into
/// shards (src/shard/): writes whose target row lies in the emitting
/// shard's own partition land in its dense local buffer, remote writes are
/// appended to the (src, dst) mailbox lane and replayed at the tick
/// barrier. The single-world executor leaves ExecEnv::router null and pays
/// nothing; the virtual dispatch only sits on the sharded path.
class EffectRouter {
 public:
  virtual ~EffectRouter() = default;
  virtual void AddNumber(ClassId cls, FieldIdx f, RowIdx row, double v,
                         uint64_t order_key) = 0;
  virtual void AddBool(ClassId cls, FieldIdx f, RowIdx row, bool v,
                       uint64_t order_key) = 0;
  virtual void AddRef(ClassId cls, FieldIdx f, RowIdx row, EntityId v,
                      uint64_t order_key) = 0;
  virtual void AddSetInsert(ClassId cls, FieldIdx f, RowIdx row,
                            EntityId v) = 0;
};

/// Everything one worker needs while running ops over a morsel.
struct ExecEnv {
  World* world = nullptr;
  Tick tick = 0;
  ClassId outer_cls = kInvalidClass;
  const EntityTable* outer = nullptr;

  /// Effect sinks, one per class (worker shard or the world's own buffers).
  /// Ignored when `router` is set.
  std::vector<EffectBuffer*> effect_sinks;
  /// Shard-mode effect routing; null on the single-world path.
  EffectRouter* router = nullptr;
  /// Transaction-intent sink (worker shard's flat intent log).
  TxnIntentLog* txn_sink = nullptr;
  /// Local columns of the running script/handler (full table size; morsels
  /// write disjoint rows).
  LocalColumns* locals = nullptr;
  /// Prepared access paths, indexed by site id (size = program num_sites).
  const std::vector<PreparedSite>* prepared = nullptr;
  /// This worker's scratch pools. Required on the vectorized path.
  ExecScratch* scratch = nullptr;
  /// Compiled bytecode programs (EvalMode::kBytecode); null = interpret.
  /// Expressions the cache could not lower fall back per expression.
  const VmProgramCache* vm = nullptr;
  /// Per-site runtime feedback accumulator (size = program's num_sites).
  std::vector<SiteFeedback>* feedback = nullptr;
  /// Optional tracing sink (§3.3). Null = off.
  EffectTraceSink* trace = nullptr;
  /// Second tracing sink: the flight recorder's armed watch-all capture
  /// (src/telemetry/flight_recorder.h). Null = off; independent of
  /// `trace` so a user tracer and the recorder can coexist.
  EffectTraceSink* recorder_sink = nullptr;
  /// Telemetry span sink (src/telemetry/); null = disarmed (one branch
  /// per instrumented point). Borrowed, set by the owning executor.
  Telemetry* telemetry = nullptr;
  /// Chrome-trace pid for this worker's spans: 0 = world (unsharded /
  /// barrier thread), s + 1 = world shard s.
  uint8_t tel_track = 0;
};

/// Runs `ops` set-at-a-time over `selection` (rows of env.outer).
void RunOpsVectorized(const std::vector<std::unique_ptr<PlanOp>>& ops,
                      const std::vector<RowIdx>& selection, ExecEnv& env);

/// Runs `ops` with per-row scalar evaluation and full accum scans (the
/// object-at-a-time baseline). Iteration is statement-major so ⊕
/// accumulation order — including FP reassociation in sums — is identical
/// to the vectorized path.
void RunOpsScalar(const std::vector<std::unique_ptr<PlanOp>>& ops,
                  const std::vector<RowIdx>& selection, ExecEnv& env);

}  // namespace sgl

#endif  // SGL_EXEC_OP_EXEC_H_
