// Plan-operator execution: the vectorized set-at-a-time path (§2, §4) and
// the scalar object-at-a-time path (the baseline a traditional engine would
// use, and the comparator of bench E1). Both consume the same CompiledScript
// ops over the same storage, so they are semantically interchangeable —
// property tests assert equal end states.

#ifndef SGL_EXEC_OP_EXEC_H_
#define SGL_EXEC_OP_EXEC_H_

#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/debug/trace.h"
#include "src/index/index_manager.h"
#include "src/opt/adaptive.h"
#include "src/ra/eval.h"
#include "src/ra/plan.h"
#include "src/txn/txn_engine.h"

namespace sgl {

/// Per-tick prepared access path for one AccumOp site.
struct PreparedSite {
  JoinStrategy strategy = JoinStrategy::kNestedLoop;
  const SpatialIndex* index = nullptr;  ///< tree/grid strategies
  /// Numeric-field hash strategy: inner field value -> rows.
  std::shared_ptr<const std::unordered_multimap<double, RowIdx>> hash;
  FieldIdx hash_field = kInvalidField;  ///< kInvalidField = entity-id probe
  /// Pair filters, composed once per tick from the op's predicate pieces:
  /// `nl_filter` re-checks everything (range + hash + residual + self);
  /// `post_index_filter` omits what the access path already guarantees.
  ExprPtr nl_filter;
  ExprPtr post_index_filter;
};

/// Builds the prepared access path for `op` under `strategy` (builds or
/// fetches the index / hash table; composes the residual filters).
PreparedSite PrepareSite(const AccumOp& op, JoinStrategy strategy,
                         const World& world, IndexManager* indexes,
                         Tick tick);

/// Everything one worker needs while running ops over a morsel.
struct ExecEnv {
  World* world = nullptr;
  Tick tick = 0;
  ClassId outer_cls = kInvalidClass;
  const EntityTable* outer = nullptr;

  /// Effect sinks, one per class (worker shard or the world's own buffers).
  std::vector<EffectBuffer*> effect_sinks;
  /// Transaction-intent sink (worker shard).
  std::vector<TxnIntent>* txn_sink = nullptr;
  /// Local columns of the running script/handler (full table size; morsels
  /// write disjoint rows).
  LocalColumns* locals = nullptr;
  /// Prepared access paths by site id.
  const std::map<int, PreparedSite>* prepared = nullptr;
  /// Per-site runtime feedback accumulator (size = program's num_sites).
  std::vector<SiteFeedback>* feedback = nullptr;
  /// Optional tracing sink (§3.3). Null = off.
  EffectTraceSink* trace = nullptr;
};

/// Runs `ops` set-at-a-time over `selection` (rows of env.outer).
void RunOpsVectorized(const std::vector<std::unique_ptr<PlanOp>>& ops,
                      const std::vector<RowIdx>& selection, ExecEnv& env);

/// Runs `ops` with per-row scalar evaluation and full accum scans (the
/// object-at-a-time baseline). Iteration is statement-major so ⊕
/// accumulation order — including FP reassociation in sums — is identical
/// to the vectorized path.
void RunOpsScalar(const std::vector<std::unique_ptr<PlanOp>>& ops,
                  const std::vector<RowIdx>& selection, ExecEnv& env);

}  // namespace sgl

#endif  // SGL_EXEC_OP_EXEC_H_
