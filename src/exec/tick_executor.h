// TickExecutor: drives the state-effect pattern (§2) each tick.
//
//   1 QUERY+EFFECT  compiled plans run set-at-a-time over each script's
//                   class extent (multi-phase scripts dispatch on their PC
//                   column), then reactive handlers; parallel mode splits
//                   selections into fixed morsels with static morsel->thread
//                   assignment and per-thread effect/intent shards — the
//                   phases only read state, so no synchronization (§4.2)
//   2 MERGE         shard buffers fold into the world's effect buffers in
//                   shard order (⊕ combinators are order-insensitive;
//                   first/last carry explicit keys)
//   3 UPDATE        update components run over their disjoint state
//                   partitions: transaction admission, declared update
//                   rules, then any registered engine components (§2.2)
//   4 BOOKKEEPING   statistics refresh, adaptive feedback, tick++
//
// Setting ExecOptions::interpreted runs the identical program object-at-a-
// time (per-entity scalar evaluation, full scans in accum loops) — the
// baseline that traditional game engines implement and bench E1 compares
// against.
//
// Steady-state ticks are allocation-free on both halves of the tick: every
// selection vector, local column, prepared site, effect shard, and
// evaluation temporary lives in executor-owned scratch with high-water
// reuse (reads), and the write path — per-worker flat intent logs, the
// dense epoch StateOverlay, CSR-pooled set effects — never boxes per row
// (see txn/txn_engine.h, storage/effect_buffer.h). TickStats reports the
// residual via allocs_per_tick / bytes_per_tick (see common/alloc_hook.h).

#ifndef SGL_EXEC_TICK_EXECUTOR_H_
#define SGL_EXEC_TICK_EXECUTOR_H_

#include <memory>
#include <vector>

#include "src/async/job_service.h"
#include "src/common/thread_pool.h"
#include "src/exec/op_exec.h"
#include "src/update/update_component.h"

namespace sgl {

class FaultInjector;
class FlightRecorder;
class Telemetry;

/// Executor configuration.
struct ExecOptions {
  int num_threads = 1;
  /// > 1 partitions the world into that many row-range shards with
  /// cross-shard effect routing; the engine then drives the sharded
  /// pipeline (src/shard/shard_executor.h) instead of TickExecutor, reusing
  /// the remaining fields (threads, morsels, planner, interpreted).
  int num_shards = 1;
  size_t morsel_size = 2048;
  AdaptiveController::Options planner;
  bool interpreted = false;  ///< object-at-a-time baseline mode
  /// Expression backend of the vectorized path: tree-walking interpreter
  /// or register bytecode with fused filter pipelines (src/vm/). Programs
  /// are compiled once at executor construction and per prepared site;
  /// both modes produce bit-identical world state. Ignored when
  /// `interpreted` is set (the scalar baseline has no vectorized spans).
  /// kAuto compiles everything up front and asks the cost controller per
  /// site per tick which backend to run.
  EvalMode eval_mode = EvalMode::kInterpret;
  /// Index-probe style of range-indexed accum sites: one virtual Query per
  /// outer row (kSingle), one QueryBatch per morsel (kBatched, default), or
  /// a per-site measured choice (kAuto). All bit-identical.
  ProbeMode probe_mode = ProbeMode::kBatched;
  /// Out-of-band job execution (src/async/): worker count, ordering-key
  /// seed. The JobService is created lazily, when a component first asks
  /// for it (Engine::AddAsyncPathfinder / executor jobs()).
  JobServiceOptions jobs;
  /// Armed fault plan (src/fault/): threaded into the executor's crash
  /// sites, the transaction admission path, and the lazily-created
  /// JobService. Null = all sites disarmed. Must outlive the executor —
  /// deliberately so, since crash-recovery rebuilds the executor while the
  /// injector's fire counts carry across (max_fires crash-once semantics).
  FaultInjector* fault = nullptr;
  /// Observability sink (src/telemetry/): span tracing across every tick
  /// phase, the standard latency histograms (p50/p95/p99 via Snapshot()),
  /// and per-site attribution. Null = disarmed, one branch per span — the
  /// same borrowed-pointer lifetime contract as `fault`; must outlive the
  /// executor. Shared with the lazily-created JobService and the VM
  /// program cache.
  Telemetry* telemetry = nullptr;
  /// Flight recorder (src/telemetry/flight_recorder.h): a pooled ring of
  /// the last K ticks' provenance-tagged effect records, stats, and
  /// per-site rows, with black-box dump triggers. Null or disarmed = no
  /// capture (one branch per tick plus one null check per effect write).
  /// Same borrowed-pointer lifetime contract as `fault` / `telemetry`:
  /// must outlive the executor.
  FlightRecorder* recorder = nullptr;
};

/// Timings and counters for the last tick.
struct TickStats {
  Tick tick = 0;
  int64_t query_effect_micros = 0;
  int64_t merge_micros = 0;
  int64_t update_micros = 0;
  int64_t index_build_micros = 0;  ///< portion of query phase spent building
  /// Heap bytes resident in the spatial indices after the tick. The flat
  /// index layouts make this an O(#indices) capacity sum, cheap enough to
  /// sample every tick.
  int64_t index_memory_bytes = 0;
  int64_t total_micros = 0;
  /// Heap traffic during the tick, across all threads (0 when the counting
  /// hook is compiled out). Steady-state ticks should report ~0.
  int64_t allocs_per_tick = 0;
  int64_t bytes_per_tick = 0;
  /// Bytecode backend (0 when eval_mode == kInterpret): programs resident
  /// in the executor's cache, expressions that fell back to the tree
  /// walker, and one-time lowering cost (paid at construction, not per
  /// tick).
  int64_t vm_programs = 0;
  int64_t vm_fallbacks = 0;
  int64_t vm_compile_micros = 0;
  /// Time inside batched QueryBatch calls, summed over sites and shards
  /// (0 when no site probed batched this tick).
  int64_t probe_micros = 0;
  /// Double lanes processed by AVX2 kernel bodies this tick (0 under
  /// scalar dispatch — see common/cpu_features.h).
  int64_t simd_lanes_used = 0;
  /// Per-tick backend decisions across prepared accum sites: how many ran
  /// their expressions on the VM vs the tree walker, and how many probed
  /// their index batched vs per row (kAuto makes these vary tick to tick).
  int64_t sites_bytecode = 0;
  int64_t sites_interpreted = 0;
  int64_t sites_probe_batched = 0;
  int64_t sites_probe_single = 0;
  /// Out-of-band job activity (src/async/; all 0 with no JobService).
  int64_t jobs_submitted = 0;
  int64_t jobs_installed = 0;
  int64_t jobs_in_flight = 0;
  /// Barrier time spent blocked on jobs whose declared latency elapsed
  /// before their worker finished (the async pipeline's only stall).
  int64_t job_wait_micros = 0;
  std::vector<SiteFeedback> sites;  ///< per accum site, aggregated
  TxnStats txn;

  /// Zeroes every scalar field for a new tick, keeping `sites`' capacity.
  /// Shared by TickExecutor and ShardExecutor so a new field can't be
  /// reset in one pipeline and silently reported stale by the other.
  void Reset(Tick now);
};

class TickExecutor {
 public:
  /// `world` and `program` must outlive the executor.
  TickExecutor(World* world, const CompiledProgram* program,
               ExecOptions options);
  ~TickExecutor();

  /// Registers the built-in components (transaction engine + expression
  /// updater). Must run before the first tick; additional components
  /// (physics, pathfinding) may be registered after.
  Status Init();

  /// Registers an engine update component (ownership checked, §2.2).
  Status RegisterComponent(std::unique_ptr<UpdateComponent> component);

  /// Executes one tick.
  Status RunTick();

  Tick tick() const { return tick_; }
  /// Repositions the tick counter (checkpoint restore, §3.3).
  void set_tick(Tick tick) { tick_ = tick; }
  /// Zeroes the job counters of last_stats() after a checkpoint restore
  /// (jobs_in_flight re-reads the service) so the pre-restore tick's
  /// numbers never leak into the restored timeline.
  void ResetStatsAfterRestore();
  const TickStats& last_stats() const { return last_; }
  const ExecOptions& options() const { return options_; }

  AdaptiveController& controller() { return controller_; }
  IndexManager& indexes() { return indexes_; }
  TxnEngine& txn() { return txn_; }
  StatsManager& table_stats() { return stats_mgr_; }
  ComponentRegistry& components() { return components_; }

  /// The out-of-band JobService (created on first use from
  /// options().jobs). Completions install at the tick barrier, before the
  /// update components run.
  JobService& jobs() {
    if (jobs_ == nullptr) {
      JobServiceOptions jo = options_.jobs;
      jo.fault = options_.fault;  // worker stall/death sites share the plan
      jo.telemetry = options_.telemetry;  // worker-run spans, same lifetime
      jobs_ = std::make_unique<JobService>(jo);
    }
    return *jobs_;
  }
  /// Null if no component ever asked for the service.
  JobService* jobs_or_null() { return jobs_.get(); }

  /// Attaches / detaches the effect tracer (§3.3). Null = off.
  void set_trace(EffectTraceSink* sink) { trace_ = sink; }

 private:
  /// Everything one worker shard reuses across morsels and ticks: its
  /// ExecEnv (with the per-class effect-sink table), its scratch pools,
  /// and its morsel slice buffer.
  struct WorkerState {
    ExecEnv env;
    ExecScratch scratch;
    std::vector<RowIdx> slice;
  };

  void EnsureWorkers(int shards);
  void RunUnit(const std::vector<std::unique_ptr<PlanOp>>& ops,
               ClassId cls, const std::vector<RowIdx>& selection,
               LocalColumns* locals);
  void PrepareSites(const std::vector<std::unique_ptr<PlanOp>>& ops,
                    size_t outer_rows);

  World* world_;
  const CompiledProgram* program_;
  ExecOptions options_;
  std::unique_ptr<ThreadPool> pool_;
  IndexManager indexes_;
  StatsManager stats_mgr_;
  AdaptiveController controller_;
  TxnEngine txn_;
  ComponentRegistry components_;
  /// Compiled bytecode programs (eval_mode == kBytecode); null otherwise.
  /// Built once in the constructor; prepared-site filters compile into
  /// SiteCache separately (they are composed, not program-owned, Exprs).
  std::unique_ptr<VmProgramCache> vm_cache_;
  std::unique_ptr<JobService> jobs_;  ///< lazily created, see jobs()
  EffectTraceSink* trace_ = nullptr;
  /// The flight recorder's capture sink for this tick; refreshed at tick
  /// start (null when no recorder is attached or it is disarmed).
  EffectTraceSink* recorder_sink_ = nullptr;
  Tick tick_ = 0;
  TickStats last_;
  bool initialized_ = false;
  /// Per-worker effect shards, [shard][class]; allocated when threads > 1.
  std::vector<std::vector<std::unique_ptr<EffectBuffer>>> shard_effects_;

  // --- Steady-state scratch (high-water reuse, see header comment) ------
  std::vector<std::unique_ptr<WorkerState>> workers_;  ///< one per shard
  std::vector<SiteCache> site_cache_;    ///< by site id
  std::vector<PreparedSite> prepared_;   ///< by site id, refreshed per unit
  std::vector<LocalColumns> script_locals_;   ///< by script index
  std::vector<LocalColumns> handler_locals_;  ///< by handler index
  /// Per script: per-phase selections, reused across ticks.
  std::vector<std::vector<std::vector<RowIdx>>> script_selections_;
  std::vector<RowIdx> handler_all_;
  std::vector<RowIdx> handler_selection_;
  std::vector<uint8_t> handler_keep_;
  std::vector<std::vector<SiteFeedback>> feedback_shards_;
};

}  // namespace sgl

#endif  // SGL_EXEC_TICK_EXECUTOR_H_
