// Engine: the public facade of the SGL system.
//
// Typical use (see examples/quickstart.cpp):
//
//   auto engine = sgl::Engine::Create(source_text).value();
//   auto id = engine->Spawn("Unit", {{"x", sgl::Value::Number(3)}}).value();
//   engine->RunTicks(100);
//   double hp = engine->Get(id, "health")->AsNumber();
//
// Create() parses + compiles the program (schema generation, §2.1), builds
// the World with the chosen storage layout, and wires the executor with the
// built-in update components (transaction engine + expression updater).
// Physics / pathfinding components attach via AddPhysics / AddPathfinder
// (§2.2). Debugging (§3.3) is exposed through inspector/tracer/checkpoint
// accessors.

#ifndef SGL_ENGINE_ENGINE_H_
#define SGL_ENGINE_ENGINE_H_

#include <memory>
#include <string>
#include <vector>

#include "src/async/async_pathfind.h"
#include "src/debug/checkpoint.h"
#include "src/debug/inspector.h"
#include "src/debug/tracer.h"
#include "src/exec/tick_executor.h"
#include "src/lang/compiler.h"
#include "src/shard/shard_executor.h"
#include "src/update/pathfind.h"
#include "src/update/physics.h"

namespace sgl {

/// Engine construction options.
struct EngineOptions {
  /// exec.num_shards > 1 partitions the world into row-range shards with
  /// cross-shard effect routing and drives the sharded pipeline
  /// (src/shard/) instead of TickExecutor; the remaining exec fields keep
  /// their meaning.
  ExecOptions exec;
  /// Storage layout for numeric state columns (§2.1). kAffinity uses the
  /// attribute co-occurrence mined by the compiler.
  LayoutStrategy layout = LayoutStrategy::kUnified;
};

class Engine {
 public:
  /// Compiles `source` and builds a ready-to-tick engine.
  static StatusOr<std::unique_ptr<Engine>> Create(
      const std::string& source, const EngineOptions& options = {});

  World& world() { return *world_; }
  const Catalog& catalog() const { return *program_->catalog; }
  const CompiledProgram& program() const { return *program_; }
  /// The single-world executor. Only valid when exec.num_shards <= 1.
  TickExecutor& executor() {
    SGL_CHECK(executor_ != nullptr && "engine is sharded; use sharded_*");
    return *executor_;
  }
  /// Sharded mode only (exec.num_shards > 1).
  bool sharded() const { return shard_exec_ != nullptr; }
  ShardedWorld& sharded_world() {
    SGL_CHECK(sharded_world_ != nullptr && "engine is not sharded");
    return *sharded_world_;
  }
  ShardExecutor& shard_executor() {
    SGL_CHECK(shard_exec_ != nullptr && "engine is not sharded");
    return *shard_exec_;
  }

  /// Attaches a physics component (§2.2). Call before the first tick.
  Status AddPhysics(const PhysicsConfig& config);
  /// Attaches an A* pathfinding component (§2.2).
  Status AddPathfinder(const PathfinderConfig& config, GridMap map);
  /// Attaches the asynchronous (tick-spanning) pathfinder: searches run on
  /// the executor's JobService workers (options.exec.jobs) and results
  /// install deterministically at submit + latency ticks (src/async/).
  Status AddAsyncPathfinder(const AsyncPathfinderConfig& config, GridMap map);
  /// Attaches any custom update component.
  Status AddComponent(std::unique_ptr<UpdateComponent> component);

  // --- Update-component ordering vs async completions ---------------------
  //
  // Update components run in registration order (transaction engine, then
  // the expression updater, then everything added through the Add*
  // methods). Field ownership is disjoint, but components *read* each
  // other's freshly-written state within the same update phase — e.g. the
  // canonical `x = waypoint_x` update rule runs before a pathfinder
  // updates the waypoint, so movement follows the waypoint computed the
  // previous tick. Register order is therefore part of a program's
  // semantics and must be kept stable across runs being compared.
  //
  // Asynchronous results do NOT change this picture: JobService
  // completions install at the tick barrier *before any* component runs
  // (TickExecutor / ShardExecutor call InstallDue first), in an order
  // fixed at submission time. A component observes a job's result at
  // exactly tick `submit + latency`, regardless of worker count, shard
  // count, thread count, or registration order — async completion is a
  // scheduled event in the deterministic tick timeline, not a racy
  // callback.

  /// Entity management (tick-boundary operations).
  StatusOr<EntityId> Spawn(
      const std::string& cls,
      const std::vector<std::pair<std::string, Value>>& init = {});
  Status Despawn(EntityId id);

  StatusOr<Value> Get(EntityId id, const std::string& field) const;
  Status Set(EntityId id, const std::string& field, const Value& v);

  /// Runs one tick / n ticks.
  Status Tick();
  Status RunTicks(int n);
  sgl::Tick tick() const {
    return shard_exec_ != nullptr ? shard_exec_->tick() : executor_->tick();
  }

  const TickStats& last_stats() const {
    return shard_exec_ != nullptr ? shard_exec_->last_stats()
                                  : executor_->last_stats();
  }

  // --- Debugging (§3.3) ---------------------------------------------------

  /// EXPLAIN: the compiled relational plans of every script/handler.
  std::string ExplainPlans() const { return program_->Explain(); }
  Inspector inspector() const { return Inspector(world_.get()); }
  /// Attaches a tracer (null detaches).
  void SetTracer(EffectTracer* tracer) {
    if (shard_exec_ != nullptr) {
      shard_exec_->set_trace(tracer);
    } else {
      executor_->set_trace(tracer);
    }
  }
  /// Snapshot / resume. Sharded engines also capture the shard partition,
  /// so Restore resumes the exact post-migration ranges. Checkpoints are
  /// tick-boundary snapshots that also capture async jobs still in flight
  /// (with their snapshots and contracted install ticks) and every
  /// component's private cross-tick state: Restore re-creates the jobs so
  /// each installs at its original tick and reloads the component caches,
  /// making the restored run bit-identical to one that never stopped. A
  /// checkpoint missing those sections (or failing to match this engine's
  /// configuration) falls back to the legacy recovery — cancel in-flight
  /// work, drop caches, re-request — which is deterministic going forward
  /// but may briefly re-stall on results the original run already had.
  Checkpoint TakeCheckpoint() const;
  Status Restore(const Checkpoint& cp);

 private:
  Engine() = default;

  std::unique_ptr<CompiledProgram> program_;
  std::unique_ptr<World> world_;
  std::unique_ptr<TickExecutor> executor_;      ///< exec.num_shards <= 1
  std::unique_ptr<ShardedWorld> sharded_world_; ///< exec.num_shards > 1
  std::unique_ptr<ShardExecutor> shard_exec_;
};

}  // namespace sgl

#endif  // SGL_ENGINE_ENGINE_H_
