#include "src/engine/engine.h"

#include "src/telemetry/flight_recorder.h"

namespace sgl {

StatusOr<std::unique_ptr<Engine>> Engine::Create(
    const std::string& source, const EngineOptions& options) {
  auto engine = std::unique_ptr<Engine>(new Engine());
  SGL_ASSIGN_OR_RETURN(engine->program_, CompileSource(source));
  engine->world_ = std::make_unique<World>(engine->program_->catalog.get());
  if (options.layout != LayoutStrategy::kUnified) {
    for (ClassId c = 0; c < engine->program_->catalog->num_classes(); ++c) {
      const AffinityMatrix* affinity =
          options.layout == LayoutStrategy::kAffinity
              ? &engine->program_->affinity[static_cast<size_t>(c)]
              : nullptr;
      SGL_RETURN_IF_ERROR(
          engine->world_->SetLayout(c, options.layout, affinity));
    }
  }
  if (options.exec.num_shards > 1) {
    engine->sharded_world_ = std::make_unique<ShardedWorld>(
        engine->world_.get(), options.exec.num_shards);
    engine->shard_exec_ = std::make_unique<ShardExecutor>(
        engine->world_.get(), engine->sharded_world_.get(),
        engine->program_.get(), options.exec);
    SGL_RETURN_IF_ERROR(engine->shard_exec_->Init());
  } else {
    engine->executor_ = std::make_unique<TickExecutor>(
        engine->world_.get(), engine->program_.get(), options.exec);
    SGL_RETURN_IF_ERROR(engine->executor_->Init());
  }
  return engine;
}

Status Engine::AddPhysics(const PhysicsConfig& config) {
  SGL_ASSIGN_OR_RETURN(auto comp,
                       PhysicsComponent::Create(catalog(), config));
  return AddComponent(std::move(comp));
}

Status Engine::AddPathfinder(const PathfinderConfig& config, GridMap map) {
  SGL_ASSIGN_OR_RETURN(
      auto comp, PathfinderComponent::Create(catalog(), config,
                                             std::move(map)));
  return AddComponent(std::move(comp));
}

Status Engine::AddAsyncPathfinder(const AsyncPathfinderConfig& config,
                                  GridMap map) {
  JobService& jobs =
      shard_exec_ != nullptr ? shard_exec_->jobs() : executor_->jobs();
  SGL_ASSIGN_OR_RETURN(
      auto comp,
      AsyncPathfindComponent::Create(catalog(), config, std::move(map),
                                     &jobs, sharded_world_.get()));
  return AddComponent(std::move(comp));
}

Status Engine::AddComponent(std::unique_ptr<UpdateComponent> component) {
  if (shard_exec_ != nullptr) {
    return shard_exec_->RegisterComponent(std::move(component));
  }
  return executor_->RegisterComponent(std::move(component));
}

StatusOr<EntityId> Engine::Spawn(
    const std::string& cls,
    const std::vector<std::pair<std::string, Value>>& init) {
  if (sharded_world_ != nullptr) return sharded_world_->Spawn(cls, init);
  return world_->Spawn(cls, init);
}

Status Engine::Despawn(EntityId id) {
  // The sharded path must not swap-remove: ranges stay contiguous.
  if (sharded_world_ != nullptr) return sharded_world_->Despawn(id);
  return world_->Despawn(id);
}

StatusOr<Value> Engine::Get(EntityId id, const std::string& field) const {
  return world_->Get(id, field);
}

Status Engine::Set(EntityId id, const std::string& field, const Value& v) {
  return world_->Set(id, field, v);
}

Status Engine::Tick() {
  if (shard_exec_ != nullptr) return shard_exec_->RunTick();
  return executor_->RunTick();
}

Status Engine::RunTicks(int n) {
  for (int i = 0; i < n; ++i) {
    SGL_RETURN_IF_ERROR(Tick());
  }
  return Status::OK();
}

Checkpoint Engine::TakeCheckpoint() const {
  Checkpoint cp = sgl::TakeCheckpoint(*world_, tick());
  if (sharded_world_ != nullptr) {
    sharded_world_->SerializePartition(&cp.shard_partition);
  }
  JobService* jobs = shard_exec_ != nullptr ? shard_exec_->jobs_or_null()
                                            : executor_->jobs_or_null();
  if (jobs != nullptr) jobs->SerializeInFlight(&cp.jobs);
  if (shard_exec_ != nullptr) {
    shard_exec_->components().SerializeState(&cp.components);
  } else {
    executor_->components().SerializeState(&cp.components);
  }
  return cp;
}

Status Engine::Restore(const Checkpoint& cp) {
  // In-flight jobs belong to the pre-restore trajectory: cancel them
  // before the world changes underneath their submissions. Whether they
  // come back depends on the checkpoint's fidelity sections below.
  JobService* jobs = shard_exec_ != nullptr ? shard_exec_->jobs_or_null()
                                            : executor_->jobs_or_null();
  if (jobs != nullptr) jobs->CancelAll();
  SGL_RETURN_IF_ERROR(RestoreCheckpoint(cp, world_.get()));
  if (shard_exec_ != nullptr) {
    // Moves queued against the pre-restore world must not replay here.
    sharded_world_->ClearPendingMigrations();
    if (!cp.shard_partition.empty()) {
      // Resume the exact partition the checkpoint was taken under
      // (including migration history). Only a shard-count mismatch
      // (InvalidArgument) legitimately falls back to fresh block ranges;
      // a corrupt blob must surface, not silently re-block.
      Status st = sharded_world_->RestorePartition(cp.shard_partition);
      if (!st.ok()) {
        if (st.code() != StatusCode::kInvalidArgument) return st;
        sharded_world_->PartitionBlock();
      }
    } else {
      sharded_world_->PartitionBlock();
    }
    shard_exec_->set_tick(cp.tick);
  } else {
    executor_->set_tick(cp.tick);
  }
  ComponentRegistry& components = shard_exec_ != nullptr
                                      ? shard_exec_->components()
                                      : executor_->components();
  // Fidelity path: re-create in-flight jobs at their contracted install
  // ticks and reload the components' cross-tick caches — the restored run
  // then replays bit-identically to one that never stopped. Any section
  // that is absent or does not match this engine degrades to the legacy
  // path: cancelled jobs, dropped caches, components re-request.
  bool fidelity = true;
  if (!cp.jobs.empty()) {
    if (jobs == nullptr) {
      fidelity = false;
    } else {
      Status st = jobs->RestoreInFlight(cp.jobs, cp.tick);
      if (!st.ok()) fidelity = false;
    }
  }
  if (fidelity && !cp.components.empty()) {
    Status st = components.RestoreState(cp.components);
    if (!st.ok()) fidelity = false;
  }
  if (!fidelity) {
    // The jobs may have been restored before the component section was
    // rejected; the two travel together or not at all.
    if (jobs != nullptr) jobs->CancelAll();
    components.NotifyRestore();
  } else if (cp.components.empty()) {
    // Legacy checkpoint with no component section: caches still refer to
    // the pre-restore trajectory and must drop.
    components.NotifyRestore();
  }
  if (shard_exec_ != nullptr) {
    shard_exec_->ResetStatsAfterRestore();
  } else {
    executor_->ResetStatsAfterRestore();
  }
  // The flight recorder's ring describes the abandoned timeline: give it a
  // chance to dump the pre-crash window ("crash.restore"), then clear it
  // so the recovered run's frames never mix with stale ones.
  FlightRecorder* recorder = shard_exec_ != nullptr
                                 ? shard_exec_->options().recorder
                                 : executor_->options().recorder;
  if (recorder != nullptr) recorder->NotifyRestore(cp.tick, world_.get());
  return Status::OK();
}

}  // namespace sgl
