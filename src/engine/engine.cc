#include "src/engine/engine.h"

namespace sgl {

StatusOr<std::unique_ptr<Engine>> Engine::Create(
    const std::string& source, const EngineOptions& options) {
  auto engine = std::unique_ptr<Engine>(new Engine());
  SGL_ASSIGN_OR_RETURN(engine->program_, CompileSource(source));
  engine->world_ = std::make_unique<World>(engine->program_->catalog.get());
  if (options.layout != LayoutStrategy::kUnified) {
    for (ClassId c = 0; c < engine->program_->catalog->num_classes(); ++c) {
      const AffinityMatrix* affinity =
          options.layout == LayoutStrategy::kAffinity
              ? &engine->program_->affinity[static_cast<size_t>(c)]
              : nullptr;
      SGL_RETURN_IF_ERROR(
          engine->world_->SetLayout(c, options.layout, affinity));
    }
  }
  engine->executor_ = std::make_unique<TickExecutor>(
      engine->world_.get(), engine->program_.get(), options.exec);
  SGL_RETURN_IF_ERROR(engine->executor_->Init());
  return engine;
}

Status Engine::AddPhysics(const PhysicsConfig& config) {
  SGL_ASSIGN_OR_RETURN(auto comp,
                       PhysicsComponent::Create(catalog(), config));
  return executor_->RegisterComponent(std::move(comp));
}

Status Engine::AddPathfinder(const PathfinderConfig& config, GridMap map) {
  SGL_ASSIGN_OR_RETURN(
      auto comp, PathfinderComponent::Create(catalog(), config,
                                             std::move(map)));
  return executor_->RegisterComponent(std::move(comp));
}

Status Engine::AddComponent(std::unique_ptr<UpdateComponent> component) {
  return executor_->RegisterComponent(std::move(component));
}

StatusOr<EntityId> Engine::Spawn(
    const std::string& cls,
    const std::vector<std::pair<std::string, Value>>& init) {
  return world_->Spawn(cls, init);
}

Status Engine::Despawn(EntityId id) { return world_->Despawn(id); }

StatusOr<Value> Engine::Get(EntityId id, const std::string& field) const {
  return world_->Get(id, field);
}

Status Engine::Set(EntityId id, const std::string& field, const Value& v) {
  return world_->Set(id, field, v);
}

Status Engine::Tick() { return executor_->RunTick(); }

Status Engine::RunTicks(int n) {
  for (int i = 0; i < n; ++i) {
    SGL_RETURN_IF_ERROR(executor_->RunTick());
  }
  return Status::OK();
}

Status Engine::Restore(const Checkpoint& cp) {
  SGL_RETURN_IF_ERROR(RestoreCheckpoint(cp, world_.get()));
  executor_->set_tick(cp.tick);
  return Status::OK();
}

}  // namespace sgl
