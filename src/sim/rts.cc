#include "src/sim/rts.h"

namespace sgl {

std::string RtsWorkload::Source() {
  return R"sgl(
class Unit {
  state:
    number player = 0;
    number x = 0;
    number y = 0;
    number health = 100;
    number range = 15;
    number speed = 2;
    number attack = 4;
    number engaged = 0;     // owned by expr updater: 1 if fighting last tick
  effects:
    number vx : avg;
    number vy : avg;
    number damage : sum;
    number foes_seen : last;
  update:
    x = clamp(x + vx, 0, 1000);
    y = clamp(y + vy, 0, 1000);
    health = max(health - damage, 0);
    engaged = if(assigned(foes_seen), min(foes_seen, 1), 0);
}

script Combat for Unit {
  accum number foes with sum over Unit w from Unit {
    if (w.x >= x - range && w.x <= x + range &&
        w.y >= y - range && w.y <= y + range &&
        w.player != player && w.health > 0) {
      foes <- 1;
      w.damage <- attack / 8;
    }
  } in {
    foes_seen <- foes;
    if (foes == 0) {
      // Explore: drift toward the arena centre.
      if (x < 500) { vx <- speed; } else { vx <- -speed; }
      if (y < 500) { vy <- speed; } else { vy <- -speed; }
    }
  }
}

// Reactive retreat (§3.2): badly hurt units run for their home edge.
when Unit Flee (health > 0 && health < 25 && engaged > 0) {
  if (player == 0) { vx <- -3; } else { vx <- 3; }
}
)sgl";
}

StatusOr<std::unique_ptr<Engine>> RtsWorkload::Build(
    const RtsConfig& config, const EngineOptions& options) {
  SGL_ASSIGN_OR_RETURN(std::unique_ptr<Engine> engine,
                       Engine::Create(Source(), options));
  Rng rng(config.seed);
  for (int i = 0; i < config.num_units; ++i) {
    double player = i % 2 == 0 ? 0.0 : 1.0;
    double x, y;
    if (config.clustered) {
      int c = static_cast<int>(rng.NextBelow(
          static_cast<uint64_t>(config.num_clusters)));
      double cx = config.world_size * (0.2 + 0.6 * c /
                                       std::max(1, config.num_clusters - 1));
      double cy = config.world_size * 0.5;
      x = cx + rng.Uniform(-config.cluster_radius, config.cluster_radius);
      y = cy + rng.Uniform(-config.cluster_radius, config.cluster_radius);
    } else {
      x = rng.Uniform(0, config.world_size);
      y = rng.Uniform(0, config.world_size);
    }
    SGL_ASSIGN_OR_RETURN(
        EntityId id,
        engine->Spawn("Unit", {{"player", Value::Number(player)},
                               {"x", Value::Number(x)},
                               {"y", Value::Number(y)},
                               {"range", Value::Number(config.attack_range)}}));
    (void)id;
  }
  return engine;
}

void RtsWorkload::RepositionMode(Engine* engine, const RtsConfig& config,
                                 bool clustered, uint64_t seed) {
  Rng rng(seed);
  World& world = engine->world();
  ClassId cls = engine->catalog().Find("Unit");
  EntityTable& table = world.table(cls);
  const ClassDef& def = engine->catalog().Get(cls);
  NumberColumn x = table.Num(def.FindState("x"));
  NumberColumn y = table.Num(def.FindState("y"));
  for (size_t i = 0; i < table.size(); ++i) {
    if (clustered) {
      int c = static_cast<int>(
          rng.NextBelow(static_cast<uint64_t>(config.num_clusters)));
      double cx = config.world_size * (0.2 + 0.6 * c /
                                       std::max(1, config.num_clusters - 1));
      double cy = config.world_size * 0.5;
      x.at(i) =
          cx + rng.Uniform(-config.cluster_radius, config.cluster_radius);
      y.at(i) =
          cy + rng.Uniform(-config.cluster_radius, config.cluster_radius);
    } else {
      x.at(i) = rng.Uniform(0, config.world_size);
      y.at(i) = rng.Uniform(0, config.world_size);
    }
  }
}

double RtsWorkload::TotalHealth(Engine* engine) {
  World& world = engine->world();
  ClassId cls = engine->catalog().Find("Unit");
  const EntityTable& table = world.table(cls);
  ConstNumberColumn health =
      table.Num(engine->catalog().Get(cls).FindState("health"));
  double total = 0;
  for (size_t i = 0; i < table.size(); ++i) total += health[i];
  return total;
}

int RtsWorkload::AliveUnits(Engine* engine) {
  World& world = engine->world();
  ClassId cls = engine->catalog().Find("Unit");
  const EntityTable& table = world.table(cls);
  ConstNumberColumn health =
      table.Num(engine->catalog().Get(cls).FindState("health"));
  int alive = 0;
  for (size_t i = 0; i < table.size(); ++i) {
    if (health[i] > 0) ++alive;
  }
  return alive;
}

}  // namespace sgl
