// Traffic simulation workload (§4.2: "we are currently working on a project
// to simulate traffic networks with millions of vehicles").
//
// A synthetic multi-lane ring road network. Each vehicle runs a
// car-following script: an accum-loop finds the nearest leader in its lane
// within a look-ahead horizon (a 1-D range join with a lane equality key —
// so the plan space includes the range tree, the grid, AND the hash join)
// and accelerates or brakes to keep a safe gap. Positions wrap modulo the
// road length, so the fleet circulates forever.

#ifndef SGL_SIM_TRAFFIC_H_
#define SGL_SIM_TRAFFIC_H_

#include <memory>
#include <string>

#include "src/engine/engine.h"

namespace sgl {

struct TrafficConfig {
  int num_vehicles = 10000;
  int num_lanes = 16;
  double road_length = 10000.0;
  double horizon = 40.0;    ///< car-following look-ahead distance
  uint64_t seed = 7;
};

class TrafficWorkload {
 public:
  static std::string Source();

  static StatusOr<std::unique_ptr<Engine>> Build(
      const TrafficConfig& config, const EngineOptions& options);

  /// Mean vehicle speed (flow probe for tests/benches).
  static double MeanSpeed(Engine* engine);

  /// True if every vehicle position is inside [0, road_length).
  static bool PositionsInBounds(Engine* engine, double road_length);
};

}  // namespace sgl

#endif  // SGL_SIM_TRAFFIC_H_
