// Armies workload (E12): large-map pathfinding under goal churn — the
// async-job stress scenario.
//
// N soldiers, grouped into armies, march across a walled grid map toward
// per-army rally points; a host-side Retarget step periodically reassigns
// the rally points (the "orders changed" churn that forces repathing).
// Every soldier requests a path every tick (goal effects with `last`
// combinators), so the pathfinder — synchronous (src/update/pathfind.h) or
// asynchronous (src/async/async_pathfind.h) — is the dominant update-phase
// cost: exactly the workload where moving A* off the tick's critical path
// pays.

#ifndef SGL_SIM_ARMIES_H_
#define SGL_SIM_ARMIES_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/engine/engine.h"

namespace sgl {

struct ArmiesConfig {
  int num_units = 4096;
  int num_armies = 8;
  int map_w = 96;
  int map_h = 96;
  double cell = 1.0;
  double wall_density = 0.06;  ///< random blocked cells
  int num_rally = 8;           ///< rally points armies rotate through
  uint64_t seed = 42;

  /// false: synchronous PathfinderComponent (the per-tick blocking A*).
  /// true: AsyncPathfindComponent over the executor's JobService
  /// (options.exec.jobs selects the worker count).
  bool async_pathfind = true;
  /// Async-only tuning (cls/field names are filled in by Build).
  AsyncPathfinderConfig async;
};

class ArmiesWorkload {
 public:
  /// The SGL program: Soldier class + March script; movement follows the
  /// pathfinder-owned waypoint.
  static std::string Source();

  /// The deterministic walled map for `config` (also used by tests to
  /// place probes).
  static GridMap BuildMap(const ArmiesConfig& config);

  /// Rally cells (unblocked, deterministic from the seed).
  static std::vector<std::pair<int, int>> RallyCells(
      const ArmiesConfig& config);

  /// Compiles the program, builds the map, spawns the armies, attaches
  /// the configured pathfinder.
  static StatusOr<std::unique_ptr<Engine>> Build(const ArmiesConfig& config,
                                                 const EngineOptions& options);

  /// Goal churn: rotates every army to its round-`round` rally point
  /// (direct column writes — allocation-free, usable mid-measurement).
  static void Retarget(Engine* engine, const ArmiesConfig& config, int round);

  /// Mean manhattan distance from soldiers to their targets (a progress
  /// probe: marching armies drive it down).
  static double MeanGoalDistance(Engine* engine);
};

}  // namespace sgl

#endif  // SGL_SIM_ARMIES_H_
