#include "src/sim/traffic.h"

#include "src/common/rng.h"

namespace sgl {

std::string TrafficWorkload::Source() {
  return R"sgl(
class Vehicle {
  state:
    number lane = 0;
    number x = 0;
    number v = 0;
    number vmax = 3;
    number horizon = 40;
  effects:
    number accel : sum;
    number gap_seen : last;
  update:
    v = clamp(v + accel, 0, vmax);
    x = (x + v) % 10000;
}

script Follow for Vehicle {
  // Distance to the nearest leader in my lane within the horizon.
  accum number gap with min over Vehicle w from Vehicle {
    if (w.lane == lane && w.x >= x + 0.001 && w.x <= x + horizon) {
      gap <- w.x - x;
    }
  } in {
    gap_seen <- gap;
    if (gap > 0 && gap < 10) {
      accel <- -1;              // brake hard: leader close
    } else {
      if (gap > 0 && gap < 20) {
        accel <- -0.2;          // ease off
      } else {
        accel <- 0.5;           // open road (gap==0 means nobody ahead)
      }
    }
  }
}
)sgl";
}

StatusOr<std::unique_ptr<Engine>> TrafficWorkload::Build(
    const TrafficConfig& config, const EngineOptions& options) {
  SGL_ASSIGN_OR_RETURN(std::unique_ptr<Engine> engine,
                       Engine::Create(Source(), options));
  Rng rng(config.seed);
  for (int i = 0; i < config.num_vehicles; ++i) {
    double lane = static_cast<double>(
        rng.NextBelow(static_cast<uint64_t>(config.num_lanes)));
    SGL_ASSIGN_OR_RETURN(
        EntityId id,
        engine->Spawn("Vehicle",
                      {{"lane", Value::Number(lane)},
                       {"x", Value::Number(rng.Uniform(0,
                                                       config.road_length))},
                       {"v", Value::Number(rng.Uniform(0, 2))},
                       {"horizon", Value::Number(config.horizon)}}));
    (void)id;
  }
  return engine;
}

double TrafficWorkload::MeanSpeed(Engine* engine) {
  World& world = engine->world();
  ClassId cls = engine->catalog().Find("Vehicle");
  const EntityTable& table = world.table(cls);
  if (table.empty()) return 0;
  ConstNumberColumn v = table.Num(engine->catalog().Get(cls).FindState("v"));
  double total = 0;
  for (size_t i = 0; i < table.size(); ++i) total += v[i];
  return total / static_cast<double>(table.size());
}

bool TrafficWorkload::PositionsInBounds(Engine* engine, double road_length) {
  World& world = engine->world();
  ClassId cls = engine->catalog().Find("Vehicle");
  const EntityTable& table = world.table(cls);
  ConstNumberColumn x = table.Num(engine->catalog().Get(cls).FindState("x"));
  for (size_t i = 0; i < table.size(); ++i) {
    if (!(x[i] >= 0 && x[i] < road_length)) return false;
  }
  return true;
}

}  // namespace sgl
