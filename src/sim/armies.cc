#include "src/sim/armies.h"

#include <algorithm>
#include <cmath>

#include "src/common/rng.h"

namespace sgl {

std::string ArmiesWorkload::Source() {
  return R"sgl(
class Soldier {
  state:
    number army = 0;
    number x = 0;
    number y = 0;
    number waypoint_x = 0;
    number waypoint_y = 0;
    number tx = 0;
    number ty = 0;
  effects:
    number goal_x : last;
    number goal_y : last;
  update:
    x = waypoint_x;
    y = waypoint_y;
}

script March for Soldier {
  goal_x <- tx;
  goal_y <- ty;
}
)sgl";
}

GridMap ArmiesWorkload::BuildMap(const ArmiesConfig& config) {
  GridMap map(config.map_w, config.map_h, config.cell);
  Rng rng(config.seed ^ 0x6d617000ULL);  // independent wall stream
  for (int y = 0; y < config.map_h; ++y) {
    for (int x = 0; x < config.map_w; ++x) {
      if (rng.Bernoulli(config.wall_density)) map.SetBlocked(x, y, true);
    }
  }
  // Rally cells stay open (same stream as RallyCells).
  for (const auto& [rx, ry] : RallyCells(config)) {
    map.SetBlocked(rx, ry, false);
  }
  return map;
}

std::vector<std::pair<int, int>> ArmiesWorkload::RallyCells(
    const ArmiesConfig& config) {
  std::vector<std::pair<int, int>> rallies;
  Rng rng(config.seed ^ 0x72616c79ULL);  // "raly"
  while (static_cast<int>(rallies.size()) < config.num_rally) {
    int rx = static_cast<int>(rng.NextBelow(
        static_cast<uint64_t>(config.map_w)));
    int ry = static_cast<int>(rng.NextBelow(
        static_cast<uint64_t>(config.map_h)));
    rallies.emplace_back(rx, ry);
  }
  return rallies;
}

StatusOr<std::unique_ptr<Engine>> ArmiesWorkload::Build(
    const ArmiesConfig& config, const EngineOptions& options) {
  SGL_ASSIGN_OR_RETURN(std::unique_ptr<Engine> engine,
                       Engine::Create(Source(), options));
  GridMap map = BuildMap(config);
  const auto rallies = RallyCells(config);
  Rng rng(config.seed);
  for (int i = 0; i < config.num_units; ++i) {
    const int army = i % config.num_armies;
    // Spawn on an unblocked cell (rejection sampling off the same stream).
    int cx, cy;
    do {
      cx = static_cast<int>(rng.NextBelow(
          static_cast<uint64_t>(config.map_w)));
      cy = static_cast<int>(rng.NextBelow(
          static_cast<uint64_t>(config.map_h)));
    } while (map.Blocked(cx, cy));
    const double x = map.CenterX(cx);
    const double y = map.CenterY(cy);
    const auto& rally =
        rallies[static_cast<size_t>(army % config.num_rally)];
    const double tx = map.CenterX(rally.first);
    const double ty = map.CenterY(rally.second);
    SGL_RETURN_IF_ERROR(
        engine
            ->Spawn("Soldier",
                    {{"army", Value::Number(army)},
                     {"x", Value::Number(x)},
                     {"y", Value::Number(y)},
                     {"waypoint_x", Value::Number(x)},
                     {"waypoint_y", Value::Number(y)},
                     {"tx", Value::Number(tx)},
                     {"ty", Value::Number(ty)}})
            .status());
  }
  if (config.async_pathfind) {
    AsyncPathfinderConfig async = config.async;
    async.cls = "Soldier";
    SGL_RETURN_IF_ERROR(engine->AddAsyncPathfinder(async, std::move(map)));
  } else {
    PathfinderConfig sync;
    sync.cls = "Soldier";
    SGL_RETURN_IF_ERROR(engine->AddPathfinder(sync, std::move(map)));
  }
  return engine;
}

void ArmiesWorkload::Retarget(Engine* engine, const ArmiesConfig& config,
                              int round) {
  const auto rallies = RallyCells(config);
  World& world = engine->world();
  const ClassId cls = engine->catalog().Find("Soldier");
  EntityTable& table = world.table(cls);
  const ClassDef& def = engine->catalog().Get(cls);
  ConstNumberColumn army = table.Num(def.FindState("army"));
  NumberColumn tx = table.Num(def.FindState("tx"));
  NumberColumn ty = table.Num(def.FindState("ty"));
  for (size_t i = 0; i < table.size(); ++i) {
    const int a = static_cast<int>(army[i]);
    const auto& rally = rallies[static_cast<size_t>(
        (a + round) % config.num_rally)];
    tx.at(i) = (rally.first + 0.5) * config.cell;
    ty.at(i) = (rally.second + 0.5) * config.cell;
  }
}

double ArmiesWorkload::MeanGoalDistance(Engine* engine) {
  World& world = engine->world();
  const ClassId cls = engine->catalog().Find("Soldier");
  const EntityTable& table = world.table(cls);
  const ClassDef& def = engine->catalog().Get(cls);
  ConstNumberColumn x = table.Num(def.FindState("x"));
  ConstNumberColumn y = table.Num(def.FindState("y"));
  ConstNumberColumn tx = table.Num(def.FindState("tx"));
  ConstNumberColumn ty = table.Num(def.FindState("ty"));
  if (table.empty()) return 0;
  double total = 0;
  for (size_t i = 0; i < table.size(); ++i) {
    total += std::abs(x[i] - tx[i]) + std::abs(y[i] - ty[i]);
  }
  return total / static_cast<double>(table.size());
}

}  // namespace sgl
