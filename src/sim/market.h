// Marketplace workload (§3.1): financial exchanges of gold for items via
// atomic regions with constraints.
//
// Traders hold gold and a set<Item>; each Item carries a ref<Trader> owner.
// A purchase is one atomic region: pay the owner, transfer set membership,
// flip the owner ref — guarded by `require(gold >= 0)` plus the engine's
// structural rule that a set removal must find its element. When several
// buyers contest one item in the same tick (the paper's "duping" scenario),
// exactly one transaction commits; invariant helpers below verify gold
// conservation and single ownership, which the tests assert after every
// tick.

#ifndef SGL_SIM_MARKET_H_
#define SGL_SIM_MARKET_H_

#include <memory>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/engine/engine.h"

namespace sgl {

struct MarketConfig {
  int num_traders = 64;
  int num_items = 128;
  double initial_gold = 100.0;
  double item_value = 10.0;
  /// Buyers assigned to the same contested item each tick.
  int contention = 4;
  /// Fraction of items contested each tick.
  double active_fraction = 0.25;
  uint64_t seed = 11;
  /// Per-trader inventory capacity provisioned at build time (the standard
  /// zero-allocation game-server pattern: size pools to the worst case up
  /// front). 0 = auto (num_items, the hard bound on any one inventory);
  /// < 0 disables pre-sizing. With pre-sizing, steady-state market ticks
  /// perform no heap allocation — inventory churn reuses provisioned
  /// buffers in the tables and the transaction overlay alike.
  int inventory_capacity = 0;
};

class MarketWorkload {
 public:
  static std::string Source();

  /// Builds the engine, spawns traders and items, distributes ownership
  /// round-robin.
  static StatusOr<std::unique_ptr<Engine>> Build(
      const MarketConfig& config, const EngineOptions& options);

  /// Sets each active item's contending buyers' `want` fields for this tick
  /// (and clears everyone else's). Call between ticks.
  static void AssignWants(Engine* engine, const MarketConfig& config,
                          Rng* rng);

  /// Sum of all trader gold.
  static double TotalGold(Engine* engine);

  /// True iff every item with an owner is in exactly that owner's set, no
  /// item is in two sets, and ownerless items are in no set.
  static bool OwnershipConsistent(Engine* engine);

  /// True iff no trader has negative gold.
  static bool NoNegativeGold(Engine* engine);
};

}  // namespace sgl

#endif  // SGL_SIM_MARKET_H_
