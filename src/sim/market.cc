#include "src/sim/market.h"

#include <map>

namespace sgl {

std::string MarketWorkload::Source() {
  return R"sgl(
class Item {
  state:
    number value = 10;
    ref<Trader> owner = null;
}

class Trader {
  state:
    number gold = 100;
    set<Item> items;
    ref<Item> want = null;
}

script Buy for Trader {
  if (want != null && want.owner != null && want.owner != self) {
    atomic "buy"
      require(gold >= 0)
    {
      gold <- -want.value;
      want.owner.gold <- want.value;
      want.owner.items <~ want;
      items <+ want;
      want.owner <- self;
    }
  }
}
)sgl";
}

StatusOr<std::unique_ptr<Engine>> MarketWorkload::Build(
    const MarketConfig& config, const EngineOptions& options) {
  SGL_ASSIGN_OR_RETURN(std::unique_ptr<Engine> engine,
                       Engine::Create(Source(), options));
  std::vector<EntityId> traders;
  for (int i = 0; i < config.num_traders; ++i) {
    SGL_ASSIGN_OR_RETURN(
        EntityId id,
        engine->Spawn("Trader",
                      {{"gold", Value::Number(config.initial_gold)}}));
    traders.push_back(id);
  }
  for (int i = 0; i < config.num_items; ++i) {
    EntityId owner = traders[static_cast<size_t>(i) % traders.size()];
    SGL_ASSIGN_OR_RETURN(
        EntityId item,
        engine->Spawn("Item", {{"value", Value::Number(config.item_value)},
                               {"owner", Value::Ref(owner)}}));
    auto items = engine->Get(owner, "items");
    EntitySet set = items->AsSet();
    set.Reserve(set.size() + 1);
    set.Insert(item);
    SGL_RETURN_IF_ERROR(
        engine->Set(owner, "items", Value::Set(std::move(set))));
  }
  if (config.inventory_capacity >= 0) {
    // Provision every inventory's buffer up front (see MarketConfig); the
    // transaction overlay mirrors row capacity when it seeds tentative
    // copies, so trading never outgrows provisioned storage.
    const size_t cap = config.inventory_capacity > 0
                           ? static_cast<size_t>(config.inventory_capacity)
                           : static_cast<size_t>(config.num_items);
    World& world = engine->world();
    ClassId trader_cls = engine->catalog().Find("Trader");
    FieldIdx items_field =
        engine->catalog().Get(trader_cls).FindState("items");
    EntitySet* col = world.table(trader_cls).SetCol(items_field);
    for (size_t t = 0; t < world.table(trader_cls).size(); ++t) {
      col[t].Reserve(cap);
    }
  }
  return engine;
}

void MarketWorkload::AssignWants(Engine* engine, const MarketConfig& config,
                                 Rng* rng) {
  World& world = engine->world();
  ClassId trader_cls = engine->catalog().Find("Trader");
  ClassId item_cls = engine->catalog().Find("Item");
  EntityTable& traders = world.table(trader_cls);
  const EntityTable& items = world.table(item_cls);
  FieldIdx want =
      engine->catalog().Get(trader_cls).FindState("want");
  EntityId* want_col = traders.RefCol(want);
  for (size_t i = 0; i < traders.size(); ++i) want_col[i] = kNullEntity;
  if (items.empty() || traders.empty()) return;

  const int active = std::max(
      1, static_cast<int>(config.active_fraction *
                          static_cast<double>(items.size())));
  for (int a = 0; a < active; ++a) {
    RowIdx item_row = static_cast<RowIdx>(rng->NextBelow(items.size()));
    EntityId item = items.id_at(item_row);
    for (int b = 0; b < config.contention; ++b) {
      RowIdx buyer = static_cast<RowIdx>(rng->NextBelow(traders.size()));
      want_col[buyer] = item;  // later assignments may overwrite: fine
    }
  }
}

double MarketWorkload::TotalGold(Engine* engine) {
  World& world = engine->world();
  ClassId cls = engine->catalog().Find("Trader");
  const EntityTable& table = world.table(cls);
  ConstNumberColumn gold =
      table.Num(engine->catalog().Get(cls).FindState("gold"));
  double total = 0;
  for (size_t i = 0; i < table.size(); ++i) total += gold[i];
  return total;
}

bool MarketWorkload::OwnershipConsistent(Engine* engine) {
  World& world = engine->world();
  ClassId trader_cls = engine->catalog().Find("Trader");
  ClassId item_cls = engine->catalog().Find("Item");
  const EntityTable& traders = world.table(trader_cls);
  const EntityTable& items = world.table(item_cls);
  FieldIdx items_field = engine->catalog().Get(trader_cls).FindState("items");
  FieldIdx owner_field = engine->catalog().Get(item_cls).FindState("owner");

  // Count which sets contain each item.
  std::map<EntityId, std::vector<EntityId>> holders;
  for (size_t t = 0; t < traders.size(); ++t) {
    const EntitySet& set = traders.SetCol(items_field)[t];
    for (EntityId item : set) {
      holders[item].push_back(traders.id_at(static_cast<RowIdx>(t)));
    }
  }
  for (size_t i = 0; i < items.size(); ++i) {
    EntityId item = items.id_at(static_cast<RowIdx>(i));
    EntityId owner = items.RefCol(owner_field)[i];
    auto it = holders.find(item);
    if (owner == kNullEntity) {
      if (it != holders.end()) return false;  // in a set but unowned
      continue;
    }
    if (it == holders.end() || it->second.size() != 1 ||
        it->second[0] != owner) {
      return false;  // duped, missing, or held by the wrong trader
    }
  }
  return true;
}

bool MarketWorkload::NoNegativeGold(Engine* engine) {
  World& world = engine->world();
  ClassId cls = engine->catalog().Find("Trader");
  const EntityTable& table = world.table(cls);
  ConstNumberColumn gold =
      table.Num(engine->catalog().Get(cls).FindState("gold"));
  for (size_t i = 0; i < table.size(); ++i) {
    if (gold[i] < 0) return false;
  }
  return true;
}

}  // namespace sgl
