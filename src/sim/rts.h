// RTS battle workload — the Warcraft III-style scenario the paper's
// predecessor evaluated ([17]) and this paper's running example (Figs. 1–2).
//
// Two factions of units; each unit counts enemies within its attack range
// via an accum-loop (a 2-D range self-join), spreads damage to them, and
// drifts toward the fight or explores. The workload has two *modes* (§4.1):
// exploration (units spread uniformly — sparse joins) and battle (units
// clumped around hotspots — dense joins); RepositionMode teleports units
// between the two, driving the adaptive-optimizer experiments.

#ifndef SGL_SIM_RTS_H_
#define SGL_SIM_RTS_H_

#include <memory>
#include <string>

#include "src/common/rng.h"
#include "src/engine/engine.h"

namespace sgl {

struct RtsConfig {
  int num_units = 1024;
  uint64_t seed = 42;
  double world_size = 1000.0;
  double attack_range = 15.0;
  bool clustered = false;  ///< start in battle mode (hotspot clusters)
  int num_clusters = 4;
  double cluster_radius = 30.0;
};

class RtsWorkload {
 public:
  /// The SGL program: Unit class + Combat script + a flee handler.
  static std::string Source();

  /// Compiles the program, spawns units per `config`.
  static StatusOr<std::unique_ptr<Engine>> Build(const RtsConfig& config,
                                                 const EngineOptions& options);

  /// Teleports all units into exploration (uniform) or battle (clustered)
  /// positions — the workload-mode transitions of §4.1.
  static void RepositionMode(Engine* engine, const RtsConfig& config,
                             bool clustered, uint64_t seed);

  /// Sum of all unit health (a conservation-style probe for tests).
  static double TotalHealth(Engine* engine);

  /// Number of units with health > 0.
  static int AliveUnits(Engine* engine);
};

}  // namespace sgl

#endif  // SGL_SIM_RTS_H_
