// JobService: asynchronous, out-of-band jobs with deterministic result
// installation (src/async/).
//
// The paper treats expensive AI — pathfinding above all — as an update
// component (§2.2), but a long A* search run synchronously stalls the whole
// QUERY→MERGE→UPDATE tick. Declarative processing is exactly the license to
// move that work off the critical path: a component *submits* a read-only
// job against an epoch-stamped SnapshotView of the columns it declares,
// background workers execute it across tick boundaries, and the result is
// installed only at a tick barrier.
//
// Determinism contract (the whole point):
//
//   * A job submitted at tick T with declared latency L installs at tick
//     T + L — never earlier (even if a worker finishes in microseconds) and
//     never later (the barrier blocks on stragglers). Completion time is a
//     declared property of the submission, not an accident of OS
//     scheduling.
//   * Within one install tick, jobs install in ascending seeded ordering
//     key (splitmix64 of the service seed, submit tick, and submission
//     sequence) with (submit tick, sequence) as the final tiebreak — a
//     total order fixed at submit time.
//   * Job execution must be a pure function of (SnapshotView, args,
//     immutable client config). Under that contract, world state is
//     bit-identical for any worker count — including 0, the inline
//     reference mode where jobs run on the barrier thread at install time.
//
// Mechanics mirror the PR 4 shard mailboxes: job slots live in a flat
// pooled arena (stable addresses, free-list recycling), each worker
// appends finished slots to its own double-buffered completion lane
// (flipped and drained at the barrier), and per-worker scratch
// (client-defined, e.g. A* open lists) reaches a high-water mark — after
// warmup, steady-state ticks with jobs in flight allocate nothing on any
// thread.
//
// Threading shape: Submit / InstallDue / CancelAll / SampleTick run on the
// barrier thread only (the update phase is single-threaded in both
// executors). Workers touch a slot only between claiming it from the
// pending queue and releasing its `done` flag; the slot arena, snapshot
// pool, and client registry are barrier-owned, and everything a worker
// dereferences is address-stable. Clients must register before the first
// Submit.

#ifndef SGL_ASYNC_JOB_SERVICE_H_
#define SGL_ASYNC_JOB_SERVICE_H_

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "src/async/snapshot_view.h"
#include "src/common/status.h"

namespace sgl {

class FaultInjector;
class Telemetry;

/// Redelivery policy for jobs whose worker dies before claiming them (the
/// fault-injected "worker death"). A dropped job re-enters the pending
/// queue until its attempt budget is spent; after that it simply stays
/// unclaimed and the barrier's deadline fallback runs it inline at its
/// contracted install tick — so results never change, only where the work
/// happened.
struct JobRetryPolicy {
  int max_attempts = 3;
};

struct JobServiceOptions {
  /// Background workers. 0 = inline reference mode: jobs execute on the
  /// barrier thread at their install tick (bit-identical to any worker
  /// count by the purity contract).
  int num_workers = 0;
  /// Seed for the deterministic job-ordering keys.
  uint64_t seed = 0x0b5eeded5eedULL;
  /// Upper bound (exclusive) on a submission's declared latency; sizes the
  /// install ring.
  int max_latency = 64;
  /// Test hook: busy-delay spun by workers before running each job
  /// (forced-slow-job stress — results spanning many ticks). 0 = off.
  int64_t test_delay_micros = 0;
  /// Redelivery budget for fault-dropped jobs.
  JobRetryPolicy retry;
  /// Armed fault plan (worker stall / worker death sites); null = off.
  /// Must outlive the service.
  FaultInjector* fault = nullptr;
  /// Telemetry sink for async.worker.run spans; null = disarmed. Same
  /// borrowed-pointer lifetime contract as `fault`.
  Telemetry* telemetry = nullptr;
};

/// Client-opaque per-worker scratch (A* arrays, heaps, ...). One instance
/// per (worker, client) plus one for the inline path; created on demand and
/// reused for every subsequent job, so per-job execution allocates nothing
/// once the scratch reaches its high-water size.
class JobScratch {
 public:
  virtual ~JobScratch() = default;
};

/// One pooled job record. Everything before `result` is written at Submit
/// and immutable afterwards; `result` is written by exactly one worker
/// (or the inline path) before `done` is released.
struct JobSlot {
  uint64_t order_key = 0;  ///< seeded deterministic install ordering
  uint64_t user_key = 0;   ///< client dedup key, echoed at install
  uint64_t args[4] = {0, 0, 0, 0};
  Tick submit_tick = 0;
  Tick install_tick = 0;
  uint32_t seq = 0;            ///< submission sequence within its tick
  int client = 0;
  int shard = 0;               ///< submitting shard (stats; 0 unsharded)
  SnapshotView* snap = nullptr;
  uint64_t result[4] = {0, 0, 0, 0};
  /// Variable-length result payload (e.g. the full path). Cleared by the
  /// runner, capacity kept across slot reuses.
  std::vector<uint64_t> blob;
  std::atomic<uint32_t> done{0};
  /// Execution claim: 0 = unclaimed, 1 = claimed. Exactly one executor —
  /// a worker (after its pre-claim delays) or the barrier's deadline
  /// fallback — wins the CAS and runs the job; every loser drops it. Reset
  /// by Submit after the slot's fields are filled, so a stale worker still
  /// holding a recycled slot's pointer can never claim a half-written job.
  std::atomic<uint32_t> claim{0};
};

/// The component side of a job. Run() executes on a background worker (or
/// inline); Install() is called at the barrier in deterministic order.
class JobClient {
 public:
  virtual ~JobClient() = default;
  /// Not `name()`: clients are often also UpdateComponents, whose name()
  /// returns a different type.
  virtual const char* client_name() const = 0;
  /// Must read only `snap` (null if the submission carried no snapshot),
  /// `job->args`, and immutable client state; must write results only into
  /// `job->result`. Purity is what makes worker count invisible.
  virtual void Run(const SnapshotView* snap, JobSlot* job,
                   JobScratch* scratch) = 0;
  virtual std::unique_ptr<JobScratch> MakeScratch() = 0;
  /// Deterministic-order result installation (barrier thread).
  virtual void Install(const JobSlot& job) = 0;
};

/// Per-tick job counters (sampled into TickStats by the executors).
struct JobTickStats {
  int64_t submitted = 0;   ///< since the previous sample
  int64_t installed = 0;   ///< at the last barrier
  int64_t in_flight = 0;   ///< submitted, not yet installed
  int64_t wait_micros = 0; ///< barrier time blocked on unfinished jobs
};

class JobService {
 public:
  explicit JobService(const JobServiceOptions& options);
  ~JobService();

  JobService(const JobService&) = delete;
  JobService& operator=(const JobService&) = delete;

  const JobServiceOptions& options() const { return options_; }
  int num_workers() const { return static_cast<int>(workers_.size()); }

  /// Registers a client (must outlive the service). Returns its id.
  int RegisterClient(JobClient* client);

  /// A pooled snapshot slot for this tick's submissions. The caller
  /// captures into it and passes it to Submit (shared by any number of
  /// jobs); it returns to the pool when the last referencing job installs.
  /// A snapshot acquired but never submitted with must be handed back via
  /// ReleaseUnused.
  SnapshotView* AcquireSnapshot();
  void ReleaseUnused(SnapshotView* snap);

  /// Submits a job: install at `now + latency` (latency clamped to
  /// [1, max_latency - 1]). Barrier thread only. `snap` may be null for
  /// jobs that read nothing but their args.
  void Submit(int client, uint64_t user_key, const uint64_t args[4],
              SnapshotView* snap, int latency, Tick now, int shard = 0);

  /// Installs every job due at `tick` in deterministic order, blocking on
  /// workers that have not finished yet. Executors call this at the tick
  /// barrier, before update components run. Must run every tick.
  void InstallDue(Tick tick);

  /// Drops every pending and in-flight job without installing (checkpoint
  /// restore). Blocks until running workers finish their current job.
  void CancelAll();

  /// Serializes every in-flight submission — args, contracted install
  /// tick, seeded order key, and the distinct SnapshotViews they read —
  /// into a checkpoint section (barrier thread; workers may still be
  /// executing, only submit-immutable fields are read). Empty output when
  /// nothing is in flight.
  void SerializeInFlight(std::string* out) const;

  /// Re-creates serialized submissions so each installs at its original
  /// contracted tick, in its original seeded order, with its original
  /// snapshot — checkpoint restore without cancel + re-request. Requires
  /// an empty service (CancelAll first); `now` is the restored tick
  /// counter. InvalidArgument (service left empty) when the blob does not
  /// match this service's configuration or clients.
  Status RestoreInFlight(const std::string& data, Tick now);

  /// Zeroes the per-tick stats windows (submitted / installed / wait) so
  /// the first SampleTick after a checkpoint restore reports a clean
  /// slate instead of the pre-restore tick's counters.
  void ResetStatsWindow();

  /// Copies the per-tick counters and resets the `submitted` window.
  void SampleTick(JobTickStats* out);

  size_t in_flight() const { return in_flight_; }
  int64_t total_submitted() const { return total_submitted_; }
  int64_t total_installed() const { return total_installed_; }
  /// Jobs the barrier ran inline because no worker had claimed them by
  /// their contracted install tick (deadline-miss fallback).
  int64_t total_fallback_runs() const { return total_fallback_; }
  /// Jobs harvested from worker `w`'s completion lane so far.
  int64_t worker_completions(int w) const {
    return worker_completions_[static_cast<size_t>(w)];
  }

 private:
  /// Single-producer (its worker) flat log of finished slots, flipped and
  /// drained at the barrier — the mailbox-lane shape of
  /// src/shard/shard_router.h with the producer on another thread, so
  /// appends and flips synchronize on a tiny per-lane mutex (never on the
  /// query-phase critical path).
  struct CompletionLane {
    std::mutex mu;
    std::vector<JobSlot*> bufs[2];
    int cur = 0;
  };

  void WorkerLoop(int worker_index);
  void RunJob(JobSlot* slot, int scratch_index);
  JobScratch* ScratchFor(int scratch_index, int client);
  void DrainLanes();
  void RecycleJob(JobSlot* slot);
  JobSlot* AcquireJobSlot();

  JobServiceOptions options_;
  std::vector<JobClient*> clients_;

  /// Flat pooled job arena: stable addresses, free-list recycling.
  std::vector<std::unique_ptr<JobSlot>> jobs_;
  std::vector<JobSlot*> free_jobs_;

  /// Pooled snapshots (refcounted by referencing jobs; barrier-owned).
  std::vector<std::unique_ptr<SnapshotView>> snapshots_;
  std::vector<SnapshotView*> free_snaps_;

  /// Per-latency FIFO of submitted slots. Submissions with one latency
  /// have monotone install ticks, so the slots due at tick T are exactly
  /// each queue's front run with install_tick == T — and each queue's
  /// high-water capacity tracks the largest burst at that latency (a
  /// tick-indexed ring would keep warming fresh buckets forever).
  struct DueQueue {
    std::vector<JobSlot*> items;
    size_t head = 0;
  };
  std::vector<DueQueue> due_;        ///< indexed by clamped latency
  std::vector<JobSlot*> due_sorted_;  ///< per-barrier scratch

  /// Per (scratch slot, client) worker scratch; the last slot is the
  /// inline path.
  std::vector<std::vector<std::unique_ptr<JobScratch>>> scratch_;

  // --- worker plumbing --------------------------------------------------
  std::vector<std::thread> workers_;
  std::vector<std::unique_ptr<CompletionLane>> lanes_;
  std::mutex mu_;
  std::condition_variable work_cv_;  ///< wakes workers (pending / stop)
  std::condition_variable done_cv_;  ///< wakes the barrier (job finished)
  /// One queued delivery. Carries its own copies of the submit-time fields
  /// the worker needs *before* claiming the slot (fault rolls): a stolen
  /// slot may be recycled and refilled while its stale delivery is still
  /// queued, so pre-claim reads must never touch the slot itself — only
  /// the claim CAS decides whether the pointed-to job is still this one.
  struct PendingEntry {
    JobSlot* slot;
    Tick submit_tick;
    uint64_t order_key;
    uint32_t attempt;  ///< deliveries already consumed by injected deaths
  };
  std::vector<PendingEntry> pending_;  ///< FIFO of deliveries
  size_t pending_head_ = 0;
  int running_ = 0;                  ///< jobs currently executing
  bool stop_ = false;

  // --- bookkeeping (barrier thread only) --------------------------------
  uint32_t seq_in_tick_ = 0;
  Tick seq_tick_ = -1;
  size_t in_flight_ = 0;
  int64_t total_submitted_ = 0;
  int64_t total_installed_ = 0;
  int64_t total_fallback_ = 0;
  int64_t submitted_window_ = 0;
  int64_t last_installed_ = 0;
  int64_t last_wait_micros_ = 0;
  std::vector<int64_t> worker_completions_;
};

}  // namespace sgl

#endif  // SGL_ASYNC_JOB_SERVICE_H_
