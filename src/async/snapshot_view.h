// SnapshotView: an epoch-stamped, copy-on-submit read view for
// out-of-band jobs (src/async/).
//
// A job that runs across tick boundaries cannot read live columns: the
// update phase rewrites them every tick while the worker is still
// searching. Instead, the submitting component *declares* the columns its
// jobs read and captures them into a SnapshotView at submit time — one
// contiguous copy per declared numeric column plus the id column, stamped
// with the tick epoch it was taken at. Workers then read a frozen,
// consistent image no matter how many ticks the job spans.
//
// Views are pooled by the JobService (acquire/release with refcounts — all
// jobs submitted on one tick share one capture) and every buffer keeps its
// high-water capacity, so steady-state capture performs zero heap
// allocations.

#ifndef SGL_ASYNC_SNAPSHOT_VIEW_H_
#define SGL_ASYNC_SNAPSHOT_VIEW_H_

#include <atomic>
#include <mutex>
#include <vector>

#include "src/storage/world.h"

namespace sgl {

class SnapshotView {
 public:
  SnapshotView() = default;
  SnapshotView(const SnapshotView&) = delete;
  SnapshotView& operator=(const SnapshotView&) = delete;

  /// Copies `num_fields` numeric state columns of `cls` out of `world` —
  /// plus the id column iff `capture_ids` (skip it when jobs only read
  /// values; it is a full-column memcpy per capture). `epoch` identifies
  /// the tick the snapshot belongs to. Reuses all internal buffers
  /// (capacity kept across captures).
  void Capture(const World& world, ClassId cls, const FieldIdx* fields,
               int num_fields, uint64_t epoch, bool capture_ids = false);

  uint64_t epoch() const { return epoch_; }
  ClassId cls() const { return cls_; }
  size_t rows() const { return rows_; }
  /// Empty unless captured with `capture_ids`.
  const std::vector<EntityId>& ids() const { return ids_; }
  /// Captured column by *capture position* (the order fields were declared
  /// in Capture), not by FieldIdx.
  const std::vector<double>& num(int i) const {
    return nums_[static_cast<size_t>(i)];
  }

  /// Appends this snapshot's captured image (epoch, class, ids, columns)
  /// to `out` — the checkpoint path for in-flight job submissions
  /// (src/debug/). The lazily-built Derived buffer is deliberately not
  /// serialized: it is a pure function of the captured columns and is
  /// rebuilt on first use after restore.
  void Serialize(std::string* out) const;

  /// Restores a serialized image from a bounds-checked cursor. Returns
  /// false (snapshot contents unspecified) on truncation. Buffers keep
  /// their high-water capacity, like Capture.
  bool DeserializeFrom(const char** cur, const char* end);

  /// A client-derived buffer (e.g. a rasterized occupancy grid) built
  /// lazily by whichever worker touches it first. `fn(&buf)` must be a
  /// pure function of this snapshot's captured columns, so the content is
  /// deterministic regardless of which thread builds it. Thread-safe;
  /// later callers block until the first build finishes. The buffer keeps
  /// its capacity across snapshot reuses.
  template <typename BuildFn>
  const std::vector<uint8_t>& Derived(BuildFn&& fn) const {
    if (derived_ready_.load(std::memory_order_acquire)) return derived_;
    std::lock_guard<std::mutex> lock(derived_mu_);
    if (!derived_ready_.load(std::memory_order_relaxed)) {
      fn(&derived_);
      derived_ready_.store(true, std::memory_order_release);
    }
    return derived_;
  }

 private:
  friend class JobService;  // pool bookkeeping

  uint64_t epoch_ = 0;
  ClassId cls_ = kInvalidClass;
  size_t rows_ = 0;
  std::vector<EntityId> ids_;
  std::vector<std::vector<double>> nums_;

  mutable std::vector<uint8_t> derived_;
  mutable std::atomic<bool> derived_ready_{false};
  mutable std::mutex derived_mu_;

  int refs_ = 0;  ///< JobService-managed (mutated only at the barrier)
};

}  // namespace sgl

#endif  // SGL_ASYNC_SNAPSHOT_VIEW_H_
