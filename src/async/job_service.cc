#include "src/async/job_service.h"

#include <algorithm>

#include "src/common/rng.h"
#include "src/common/stopwatch.h"

namespace sgl {

JobService::JobService(const JobServiceOptions& options) : options_(options) {
  SGL_CHECK(options_.num_workers >= 0);
  SGL_CHECK(options_.max_latency >= 2);
  due_.resize(static_cast<size_t>(options_.max_latency));
  scratch_.resize(static_cast<size_t>(options_.num_workers) + 1);
  worker_completions_.assign(static_cast<size_t>(options_.num_workers), 0);
  for (int w = 0; w < options_.num_workers; ++w) {
    lanes_.push_back(std::make_unique<CompletionLane>());
  }
  for (int w = 0; w < options_.num_workers; ++w) {
    workers_.emplace_back([this, w] { WorkerLoop(w); });
  }
}

JobService::~JobService() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

int JobService::RegisterClient(JobClient* client) {
  SGL_CHECK(in_flight_ == 0 && "register clients before submitting");
  clients_.push_back(client);
  for (auto& per_slot : scratch_) per_slot.push_back(nullptr);
  return static_cast<int>(clients_.size()) - 1;
}

SnapshotView* JobService::AcquireSnapshot() {
  SnapshotView* snap;
  if (!free_snaps_.empty()) {
    snap = free_snaps_.back();
    free_snaps_.pop_back();
  } else {
    snapshots_.push_back(std::make_unique<SnapshotView>());
    snap = snapshots_.back().get();
  }
  SGL_CHECK(snap->refs_ == 0);
  return snap;
}

void JobService::ReleaseUnused(SnapshotView* snap) {
  if (snap == nullptr || snap->refs_ != 0) return;
  free_snaps_.push_back(snap);
}

JobSlot* JobService::AcquireJobSlot() {
  if (!free_jobs_.empty()) {
    JobSlot* slot = free_jobs_.back();
    free_jobs_.pop_back();
    return slot;
  }
  jobs_.push_back(std::make_unique<JobSlot>());
  return jobs_.back().get();
}

void JobService::RecycleJob(JobSlot* slot) {
  if (slot->snap != nullptr) {
    if (--slot->snap->refs_ == 0) free_snaps_.push_back(slot->snap);
    slot->snap = nullptr;
  }
  slot->done.store(0, std::memory_order_relaxed);
  free_jobs_.push_back(slot);
}

void JobService::Submit(int client, uint64_t user_key, const uint64_t args[4],
                        SnapshotView* snap, int latency, Tick now,
                        int shard) {
  SGL_CHECK(client >= 0 && client < static_cast<int>(clients_.size()));
  latency = std::max(1, std::min(latency, options_.max_latency - 1));
  if (now != seq_tick_) {
    seq_tick_ = now;
    seq_in_tick_ = 0;
  }
  JobSlot* slot = AcquireJobSlot();
  slot->user_key = user_key;
  for (int i = 0; i < 4; ++i) slot->args[i] = args[i];
  slot->submit_tick = now;
  slot->install_tick = now + latency;
  slot->seq = seq_in_tick_++;
  slot->client = client;
  slot->shard = shard;
  slot->order_key = Mix64(options_.seed ^
                          (static_cast<uint64_t>(now) << 20) ^ slot->seq);
  slot->snap = snap;
  if (snap != nullptr) ++snap->refs_;
  due_[static_cast<size_t>(latency)].items.push_back(slot);
  ++in_flight_;
  ++total_submitted_;
  ++submitted_window_;
  if (!workers_.empty()) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      pending_.push_back(slot);
    }
    work_cv_.notify_one();
  }
}

JobScratch* JobService::ScratchFor(int scratch_index, int client) {
  std::unique_ptr<JobScratch>& slot =
      scratch_[static_cast<size_t>(scratch_index)]
              [static_cast<size_t>(client)];
  if (slot == nullptr) {
    slot = clients_[static_cast<size_t>(client)]->MakeScratch();
  }
  return slot.get();
}

void JobService::RunJob(JobSlot* slot, int scratch_index) {
  JobClient* client = clients_[static_cast<size_t>(slot->client)];
  client->Run(slot->snap, slot, ScratchFor(scratch_index, slot->client));
}

void JobService::WorkerLoop(int worker_index) {
  CompletionLane& lane = *lanes_[static_cast<size_t>(worker_index)];
  for (;;) {
    JobSlot* slot;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] {
        return stop_ || pending_head_ < pending_.size();
      });
      if (stop_) return;
      slot = pending_[pending_head_++];
      if (pending_head_ == pending_.size()) {
        pending_.clear();
        pending_head_ = 0;
      }
      ++running_;
    }
    if (options_.test_delay_micros > 0) {
      // Forced-slow-job stress: simulate searches far slower than a tick.
      Stopwatch delay;
      while (delay.ElapsedMicros() < options_.test_delay_micros) {
        std::this_thread::yield();
      }
    }
    RunJob(slot, worker_index);
    {
      std::lock_guard<std::mutex> lane_lock(lane.mu);
      lane.bufs[lane.cur].push_back(slot);
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      slot->done.store(1, std::memory_order_release);
      --running_;
    }
    done_cv_.notify_all();
  }
}

void JobService::DrainLanes() {
  // Mailbox-shaped harvest (stats only; `done` flags carry correctness):
  // flip each lane and count the side the worker finished writing.
  for (size_t w = 0; w < lanes_.size(); ++w) {
    CompletionLane& lane = *lanes_[w];
    std::lock_guard<std::mutex> lock(lane.mu);
    lane.cur ^= 1;
    lane.bufs[lane.cur].clear();
    worker_completions_[w] +=
        static_cast<int64_t>(lane.bufs[lane.cur ^ 1].size());
  }
}

void JobService::InstallDue(Tick tick) {
  DrainLanes();
  last_installed_ = 0;
  last_wait_micros_ = 0;
  due_sorted_.clear();
  for (DueQueue& queue : due_) {
    while (queue.head < queue.items.size()) {
      JobSlot* slot = queue.items[queue.head];
      SGL_CHECK(slot->install_tick >= tick &&
                "missed barrier — InstallDue must run every tick");
      if (slot->install_tick != tick) break;
      due_sorted_.push_back(slot);
      ++queue.head;
    }
    if (queue.head == queue.items.size()) {
      queue.items.clear();
      queue.head = 0;
    } else if (queue.head > 0 && queue.head * 2 >= queue.items.size()) {
      // Compact the drained prefix in place (no allocation) so a queue
      // under continuous traffic stays bounded by its in-flight window.
      queue.items.erase(queue.items.begin(),
                        queue.items.begin() +
                            static_cast<ptrdiff_t>(queue.head));
      queue.head = 0;
    }
  }
  if (due_sorted_.empty()) return;
  std::sort(due_sorted_.begin(), due_sorted_.end(),
            [](const JobSlot* a, const JobSlot* b) {
              if (a->order_key != b->order_key) {
                return a->order_key < b->order_key;
              }
              if (a->submit_tick != b->submit_tick) {
                return a->submit_tick < b->submit_tick;
              }
              return a->seq < b->seq;
            });
  for (JobSlot* slot : due_sorted_) {
    if (workers_.empty()) {
      // Inline reference mode: the job runs now, on the barrier thread.
      RunJob(slot, static_cast<int>(scratch_.size()) - 1);
    } else if (slot->done.load(std::memory_order_acquire) == 0) {
      // The declared latency has elapsed but the worker is still running:
      // the barrier waits. This is the only place async execution can
      // stall a tick, and only by as much as the job actually overran.
      Stopwatch wait;
      std::unique_lock<std::mutex> lock(mu_);
      done_cv_.wait(lock, [slot] {
        return slot->done.load(std::memory_order_acquire) != 0;
      });
      last_wait_micros_ += wait.ElapsedMicros();
    }
    clients_[static_cast<size_t>(slot->client)]->Install(*slot);
    RecycleJob(slot);
    --in_flight_;
    ++total_installed_;
    ++last_installed_;
  }
  due_sorted_.clear();
}

void JobService::CancelAll() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    pending_.clear();
    pending_head_ = 0;
    done_cv_.wait(lock, [this] { return running_ == 0; });
  }
  DrainLanes();
  DrainLanes();  // both sides (a flip only exposes one)
  for (DueQueue& queue : due_) {
    for (size_t i = queue.head; i < queue.items.size(); ++i) {
      RecycleJob(queue.items[i]);
      --in_flight_;
    }
    queue.items.clear();
    queue.head = 0;
  }
  SGL_CHECK(in_flight_ == 0);
  // A restore may replay the submit tick: sequence numbers (and with them
  // the seeded order keys) must restart exactly as a fresh run would
  // assign them.
  seq_tick_ = -1;
  seq_in_tick_ = 0;
}

void JobService::SampleTick(JobTickStats* out) {
  out->submitted = submitted_window_;
  out->installed = last_installed_;
  out->in_flight = static_cast<int64_t>(in_flight_);
  out->wait_micros = last_wait_micros_;
  submitted_window_ = 0;
}

}  // namespace sgl
