#include "src/async/job_service.h"

#include <algorithm>

#include "src/common/bin_io.h"
#include "src/common/rng.h"
#include "src/common/stopwatch.h"
#include "src/fault/fault_injector.h"
#include "src/telemetry/telemetry.h"

namespace sgl {

namespace {

constexpr uint32_t kJobsBlobMagic = 0x534a4f42u;  // "BOJS"
constexpr uint32_t kJobsBlobVersion = 1;

void BusyDelayMicros(int64_t micros) {
  Stopwatch delay;
  while (delay.ElapsedMicros() < micros) {
    std::this_thread::yield();
  }
}

}  // namespace

JobService::JobService(const JobServiceOptions& options) : options_(options) {
  SGL_CHECK(options_.num_workers >= 0);
  SGL_CHECK(options_.max_latency >= 2);
  due_.resize(static_cast<size_t>(options_.max_latency));
  scratch_.resize(static_cast<size_t>(options_.num_workers) + 1);
  worker_completions_.assign(static_cast<size_t>(options_.num_workers), 0);
  for (int w = 0; w < options_.num_workers; ++w) {
    lanes_.push_back(std::make_unique<CompletionLane>());
  }
  for (int w = 0; w < options_.num_workers; ++w) {
    workers_.emplace_back([this, w] { WorkerLoop(w); });
  }
}

JobService::~JobService() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

int JobService::RegisterClient(JobClient* client) {
  SGL_CHECK(in_flight_ == 0 && "register clients before submitting");
  clients_.push_back(client);
  for (auto& per_slot : scratch_) per_slot.push_back(nullptr);
  return static_cast<int>(clients_.size()) - 1;
}

SnapshotView* JobService::AcquireSnapshot() {
  SnapshotView* snap;
  if (!free_snaps_.empty()) {
    snap = free_snaps_.back();
    free_snaps_.pop_back();
  } else {
    snapshots_.push_back(std::make_unique<SnapshotView>());
    snap = snapshots_.back().get();
  }
  SGL_CHECK(snap->refs_ == 0);
  return snap;
}

void JobService::ReleaseUnused(SnapshotView* snap) {
  if (snap == nullptr || snap->refs_ != 0) return;
  free_snaps_.push_back(snap);
}

JobSlot* JobService::AcquireJobSlot() {
  if (!free_jobs_.empty()) {
    JobSlot* slot = free_jobs_.back();
    free_jobs_.pop_back();
    return slot;
  }
  jobs_.push_back(std::make_unique<JobSlot>());
  return jobs_.back().get();
}

void JobService::RecycleJob(JobSlot* slot) {
  if (slot->snap != nullptr) {
    if (--slot->snap->refs_ == 0) free_snaps_.push_back(slot->snap);
    slot->snap = nullptr;
  }
  // `done` and `claim` are NOT reset here: a stale worker may still hold
  // this slot's pointer (it was stolen from it by the deadline fallback
  // while it was stalled pre-claim). Submit resets both only after the
  // slot's next job is fully written, which is what keeps that worker's
  // late CAS from claiming a half-filled slot.
  free_jobs_.push_back(slot);
}

void JobService::Submit(int client, uint64_t user_key, const uint64_t args[4],
                        SnapshotView* snap, int latency, Tick now,
                        int shard) {
  SGL_CHECK(client >= 0 && client < static_cast<int>(clients_.size()));
  latency = std::max(1, std::min(latency, options_.max_latency - 1));
  if (now != seq_tick_) {
    seq_tick_ = now;
    seq_in_tick_ = 0;
  }
  JobSlot* slot = AcquireJobSlot();
  slot->user_key = user_key;
  for (int i = 0; i < 4; ++i) slot->args[i] = args[i];
  slot->submit_tick = now;
  slot->install_tick = now + latency;
  slot->seq = seq_in_tick_++;
  slot->client = client;
  slot->shard = shard;
  slot->order_key = Mix64(options_.seed ^
                          (static_cast<uint64_t>(now) << 20) ^ slot->seq);
  slot->snap = snap;
  if (snap != nullptr) ++snap->refs_;
  // Field writes above happen-before the claim release: a stale worker
  // that CASes this recycled slot from here on runs a complete job.
  slot->done.store(0, std::memory_order_relaxed);
  slot->claim.store(0, std::memory_order_release);
  due_[static_cast<size_t>(latency)].items.push_back(slot);
  ++in_flight_;
  ++total_submitted_;
  ++submitted_window_;
  if (!workers_.empty()) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      pending_.push_back({slot, now, slot->order_key, 0});
    }
    work_cv_.notify_one();
  }
}

JobScratch* JobService::ScratchFor(int scratch_index, int client) {
  std::unique_ptr<JobScratch>& slot =
      scratch_[static_cast<size_t>(scratch_index)]
              [static_cast<size_t>(client)];
  if (slot == nullptr) {
    slot = clients_[static_cast<size_t>(client)]->MakeScratch();
  }
  return slot.get();
}

void JobService::RunJob(JobSlot* slot, int scratch_index) {
  // tick = the submit tick; arg = client id. Worker threads bind their own
  // span lanes, so Perfetto shows job execution on its own tid rows.
  SGL_TRACE_SPAN(options_.telemetry, kSpanJobRun, slot->submit_tick, 0,
                 static_cast<uint16_t>(slot->client));
  JobClient* client = clients_[static_cast<size_t>(slot->client)];
  client->Run(slot->snap, slot, ScratchFor(scratch_index, slot->client));
}

void JobService::WorkerLoop(int worker_index) {
  CompletionLane& lane = *lanes_[static_cast<size_t>(worker_index)];
  for (;;) {
    PendingEntry entry;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] {
        return stop_ || pending_head_ < pending_.size();
      });
      if (stop_) return;
      entry = pending_[pending_head_++];
      if (pending_head_ == pending_.size()) {
        pending_.clear();
        pending_head_ = 0;
      }
      ++running_;
    }
    JobSlot* slot = entry.slot;
    uint64_t payload = 0;
    if (SGL_FAULT_POINT(options_.fault, kFaultAsyncWorkerDeath,
                        entry.submit_tick, entry.order_key ^ entry.attempt,
                        &payload)) {
      // Simulated worker death: the job is dropped before execution and
      // redelivered to the back of the queue (bounded by the retry
      // policy). Past the budget it stays unclaimed — the barrier's
      // deadline fallback runs it inline at its contracted install tick,
      // so the declared schedule holds either way.
      bool redeliver =
          entry.attempt + 1 <
          static_cast<uint32_t>(options_.retry.max_attempts);
      {
        std::lock_guard<std::mutex> lock(mu_);
        if (redeliver) {
          pending_.push_back(
              {slot, entry.submit_tick, entry.order_key, entry.attempt + 1});
        }
        --running_;
      }
      if (redeliver) work_cv_.notify_one();
      done_cv_.notify_all();
      continue;
    }
    if (SGL_FAULT_POINT(options_.fault, kFaultAsyncWorkerStall,
                        entry.submit_tick, entry.order_key, &payload)) {
      // Simulated stall, long enough to blow the job's deadline when the
      // payload says so. Runs before the claim, so a stalled worker can
      // lose its job to the barrier instead of stalling the tick.
      BusyDelayMicros(payload != 0 ? static_cast<int64_t>(payload) : 1000);
    }
    if (options_.test_delay_micros > 0) {
      // Forced-slow-job stress: simulate searches far slower than a tick.
      BusyDelayMicros(options_.test_delay_micros);
    }
    uint32_t expected = 0;
    if (!slot->claim.compare_exchange_strong(expected, 1,
                                             std::memory_order_acq_rel)) {
      // Lost the claim: the barrier's deadline fallback already ran this
      // job (or this is a stale pointer to a since-recycled slot).
      {
        std::lock_guard<std::mutex> lock(mu_);
        --running_;
      }
      done_cv_.notify_all();
      continue;
    }
    RunJob(slot, worker_index);
    {
      std::lock_guard<std::mutex> lane_lock(lane.mu);
      lane.bufs[lane.cur].push_back(slot);
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      slot->done.store(1, std::memory_order_release);
      --running_;
    }
    done_cv_.notify_all();
  }
}

void JobService::DrainLanes() {
  // Mailbox-shaped harvest (stats only; `done` flags carry correctness):
  // flip each lane and count the side the worker finished writing.
  for (size_t w = 0; w < lanes_.size(); ++w) {
    CompletionLane& lane = *lanes_[w];
    std::lock_guard<std::mutex> lock(lane.mu);
    lane.cur ^= 1;
    lane.bufs[lane.cur].clear();
    worker_completions_[w] +=
        static_cast<int64_t>(lane.bufs[lane.cur ^ 1].size());
  }
}

void JobService::InstallDue(Tick tick) {
  DrainLanes();
  last_installed_ = 0;
  last_wait_micros_ = 0;
  due_sorted_.clear();
  for (DueQueue& queue : due_) {
    while (queue.head < queue.items.size()) {
      JobSlot* slot = queue.items[queue.head];
      SGL_CHECK(slot->install_tick >= tick &&
                "missed barrier — InstallDue must run every tick");
      if (slot->install_tick != tick) break;
      due_sorted_.push_back(slot);
      ++queue.head;
    }
    if (queue.head == queue.items.size()) {
      queue.items.clear();
      queue.head = 0;
    } else if (queue.head > 0 && queue.head * 2 >= queue.items.size()) {
      // Compact the drained prefix in place (no allocation) so a queue
      // under continuous traffic stays bounded by its in-flight window.
      queue.items.erase(queue.items.begin(),
                        queue.items.begin() +
                            static_cast<ptrdiff_t>(queue.head));
      queue.head = 0;
    }
  }
  if (due_sorted_.empty()) return;
  std::sort(due_sorted_.begin(), due_sorted_.end(),
            [](const JobSlot* a, const JobSlot* b) {
              if (a->order_key != b->order_key) {
                return a->order_key < b->order_key;
              }
              if (a->submit_tick != b->submit_tick) {
                return a->submit_tick < b->submit_tick;
              }
              return a->seq < b->seq;
            });
  for (JobSlot* slot : due_sorted_) {
    if (workers_.empty()) {
      // Inline reference mode: the job runs now, on the barrier thread.
      RunJob(slot, static_cast<int>(scratch_.size()) - 1);
    } else if (slot->done.load(std::memory_order_acquire) == 0) {
      uint32_t expected = 0;
      if (slot->claim.compare_exchange_strong(expected, 1,
                                              std::memory_order_acq_rel)) {
        // Deadline miss, deterministic fallback: no worker claimed the
        // job by its contracted install tick (stalled pre-claim, or
        // dropped past its redelivery budget), so the barrier runs it
        // inline right now — the same tick, the same install order, the
        // same pure function, so state is bit-identical to the no-fault
        // run. The stalled worker's late CAS loses and drops the slot.
        RunJob(slot, static_cast<int>(scratch_.size()) - 1);
        ++total_fallback_;
      } else {
        // A worker claimed it and is still running: the barrier waits.
        // This is the only place async execution can stall a tick, and
        // only by as much as the job actually overran.
        Stopwatch wait;
        std::unique_lock<std::mutex> lock(mu_);
        done_cv_.wait(lock, [slot] {
          return slot->done.load(std::memory_order_acquire) != 0;
        });
        last_wait_micros_ += wait.ElapsedMicros();
      }
    }
    clients_[static_cast<size_t>(slot->client)]->Install(*slot);
    RecycleJob(slot);
    --in_flight_;
    ++total_installed_;
    ++last_installed_;
  }
  due_sorted_.clear();
}

void JobService::CancelAll() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    pending_.clear();
    pending_head_ = 0;
    done_cv_.wait(lock, [this] { return running_ == 0; });
  }
  DrainLanes();
  DrainLanes();  // both sides (a flip only exposes one)
  for (DueQueue& queue : due_) {
    for (size_t i = queue.head; i < queue.items.size(); ++i) {
      RecycleJob(queue.items[i]);
      --in_flight_;
    }
    queue.items.clear();
    queue.head = 0;
  }
  SGL_CHECK(in_flight_ == 0);
  // A restore may replay the submit tick: sequence numbers (and with them
  // the seeded order keys) must restart exactly as a fresh run would
  // assign them.
  seq_tick_ = -1;
  seq_in_tick_ = 0;
}

void JobService::SerializeInFlight(std::string* out) const {
  out->clear();
  if (in_flight_ == 0) return;
  binio::Append<uint32_t>(out, kJobsBlobMagic);
  binio::Append<uint32_t>(out, kJobsBlobVersion);
  // Jobs are walked in due-queue order (latency ascending, FIFO within a
  // queue) so a restore rebuilding the queues in blob order re-creates the
  // exact monotone-install-tick invariant InstallDue depends on. Snapshots
  // are emitted in first-reference order; jobs point into that table by
  // index. Only submit-immutable fields are read here — workers may still
  // be executing these very jobs.
  std::vector<const SnapshotView*> snaps;
  std::string jobs_buf;
  uint64_t num_jobs = 0;
  for (const DueQueue& queue : due_) {
    for (size_t i = queue.head; i < queue.items.size(); ++i) {
      const JobSlot* slot = queue.items[i];
      int64_t snap_index = -1;
      if (slot->snap != nullptr) {
        for (size_t s = 0; s < snaps.size(); ++s) {
          if (snaps[s] == slot->snap) {
            snap_index = static_cast<int64_t>(s);
            break;
          }
        }
        if (snap_index < 0) {
          snap_index = static_cast<int64_t>(snaps.size());
          snaps.push_back(slot->snap);
        }
      }
      binio::Append<int32_t>(&jobs_buf, slot->client);
      binio::AppendString(
          &jobs_buf,
          clients_[static_cast<size_t>(slot->client)]->client_name());
      binio::Append<uint64_t>(&jobs_buf, slot->user_key);
      for (int a = 0; a < 4; ++a) {
        binio::Append<uint64_t>(&jobs_buf, slot->args[a]);
      }
      binio::Append<int64_t>(&jobs_buf, slot->submit_tick);
      binio::Append<int64_t>(&jobs_buf, slot->install_tick);
      binio::Append<uint32_t>(&jobs_buf, slot->seq);
      binio::Append<int32_t>(&jobs_buf, slot->shard);
      binio::Append<uint64_t>(&jobs_buf, slot->order_key);
      binio::Append<int64_t>(&jobs_buf, snap_index);
      ++num_jobs;
    }
  }
  binio::Append<uint64_t>(out, static_cast<uint64_t>(snaps.size()));
  for (const SnapshotView* snap : snaps) snap->Serialize(out);
  binio::Append<uint64_t>(out, num_jobs);
  out->append(jobs_buf);
  // The per-tick sequence counters are deliberately NOT serialized:
  // checkpoints are taken at a tick boundary, so every in-flight job has
  // submit_tick < the restored tick counter, and the first post-restore
  // Submit resets seq_tick_/seq_in_tick_ exactly as the uninterrupted run
  // would have.
}

Status JobService::RestoreInFlight(const std::string& data, Tick now) {
  SGL_CHECK(in_flight_ == 0 && "CancelAll before RestoreInFlight");
  if (data.empty()) return Status::OK();
  const char* cur = data.data();
  const char* end = cur + data.size();
  uint32_t magic = 0, version = 0;
  if (!binio::Read(&cur, end, &magic) || magic != kJobsBlobMagic) {
    return Status::InvalidArgument("job blob: bad magic");
  }
  if (!binio::Read(&cur, end, &version) || version != kJobsBlobVersion) {
    return Status::InvalidArgument("job blob: unsupported version");
  }
  // Phase 1: parse and validate everything before mutating any queue, so a
  // mismatched or corrupt blob leaves the service exactly as empty as it
  // found it (the caller then falls back to cancel + re-request recovery).
  uint64_t num_snaps = 0;
  if (!binio::Read(&cur, end, &num_snaps) ||
      num_snaps > static_cast<uint64_t>(end - cur)) {
    return Status::InvalidArgument("job blob: truncated snapshot table");
  }
  std::vector<SnapshotView*> snaps;
  snaps.reserve(static_cast<size_t>(num_snaps));
  auto release_snaps = [this, &snaps]() {
    for (SnapshotView* snap : snaps) ReleaseUnused(snap);
  };
  for (uint64_t s = 0; s < num_snaps; ++s) {
    SnapshotView* snap = AcquireSnapshot();
    snaps.push_back(snap);
    if (!snap->DeserializeFrom(&cur, end)) {
      release_snaps();
      return Status::InvalidArgument("job blob: corrupt snapshot");
    }
  }
  struct ParsedJob {
    int32_t client;
    uint64_t user_key;
    uint64_t args[4];
    Tick submit_tick;
    Tick install_tick;
    uint32_t seq;
    int32_t shard;
    uint64_t order_key;
    int64_t snap_index;
  };
  uint64_t num_jobs = 0;
  if (!binio::Read(&cur, end, &num_jobs) ||
      num_jobs > static_cast<uint64_t>(end - cur)) {
    release_snaps();
    return Status::InvalidArgument("job blob: truncated job table");
  }
  std::vector<ParsedJob> parsed;
  parsed.reserve(static_cast<size_t>(num_jobs));
  std::string name;
  for (uint64_t j = 0; j < num_jobs; ++j) {
    ParsedJob job;
    int64_t submit = 0, install = 0;
    bool ok = binio::Read(&cur, end, &job.client) &&
              binio::ReadString(&cur, end, &name) &&
              binio::Read(&cur, end, &job.user_key);
    for (int a = 0; ok && a < 4; ++a) {
      ok = binio::Read(&cur, end, &job.args[a]);
    }
    ok = ok && binio::Read(&cur, end, &submit) &&
         binio::Read(&cur, end, &install) &&
         binio::Read(&cur, end, &job.seq) &&
         binio::Read(&cur, end, &job.shard) &&
         binio::Read(&cur, end, &job.order_key) &&
         binio::Read(&cur, end, &job.snap_index);
    if (!ok) {
      release_snaps();
      return Status::InvalidArgument("job blob: truncated job record");
    }
    job.submit_tick = static_cast<Tick>(submit);
    job.install_tick = static_cast<Tick>(install);
    if (job.client < 0 ||
        job.client >= static_cast<int32_t>(clients_.size()) ||
        name != clients_[static_cast<size_t>(job.client)]->client_name()) {
      release_snaps();
      return Status::InvalidArgument("job blob: client mismatch: " + name);
    }
    const Tick latency = job.install_tick - job.submit_tick;
    if (latency < 1 || latency >= options_.max_latency ||
        job.install_tick < now) {
      release_snaps();
      return Status::InvalidArgument("job blob: install tick out of range");
    }
    if (job.snap_index >= static_cast<int64_t>(snaps.size())) {
      release_snaps();
      return Status::InvalidArgument("job blob: bad snapshot index");
    }
    parsed.push_back(job);
  }
  // Phase 2: commit. Each submission re-enters the service with its
  // original contracted install tick, seeded order key, and sequence — not
  // re-derived — so the post-restore install stream is bit-identical to
  // the uninterrupted run's.
  for (const ParsedJob& job : parsed) {
    JobSlot* slot = AcquireJobSlot();
    slot->user_key = job.user_key;
    for (int a = 0; a < 4; ++a) slot->args[a] = job.args[a];
    slot->submit_tick = job.submit_tick;
    slot->install_tick = job.install_tick;
    slot->seq = job.seq;
    slot->client = job.client;
    slot->shard = job.shard;
    slot->order_key = job.order_key;
    slot->snap =
        job.snap_index < 0 ? nullptr
                           : snaps[static_cast<size_t>(job.snap_index)];
    if (slot->snap != nullptr) ++slot->snap->refs_;
    slot->done.store(0, std::memory_order_relaxed);
    slot->claim.store(0, std::memory_order_release);
    due_[static_cast<size_t>(job.install_tick - job.submit_tick)]
        .items.push_back(slot);
    ++in_flight_;
    if (!workers_.empty()) {
      std::lock_guard<std::mutex> lock(mu_);
      pending_.push_back({slot, slot->submit_tick, slot->order_key, 0});
    }
  }
  if (!workers_.empty()) work_cv_.notify_all();
  release_snaps();  // no-op for any snapshot a committed job references
  return Status::OK();
}

void JobService::ResetStatsWindow() {
  submitted_window_ = 0;
  last_installed_ = 0;
  last_wait_micros_ = 0;
}

void JobService::SampleTick(JobTickStats* out) {
  out->submitted = submitted_window_;
  out->installed = last_installed_;
  out->in_flight = static_cast<int64_t>(in_flight_);
  out->wait_micros = last_wait_micros_;
  submitted_window_ = 0;
}

}  // namespace sgl
