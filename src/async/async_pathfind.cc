#include "src/async/async_pathfind.h"

#include <algorithm>
#include <cmath>
#include <functional>

#include "src/common/bin_io.h"
#include "src/common/rng.h"

namespace sgl {

namespace {

// Fixed-point step cost: admissible manhattan heuristic scales by the base
// step, crowd occupancy only ever adds on top.
constexpr int32_t kStepCost = 16;

inline uint64_t PackKey(int sx, int sy, int gx, int gy) {
  return (static_cast<uint64_t>(sx + 1) << 48) |
         (static_cast<uint64_t>(sy + 1) << 32) |
         (static_cast<uint64_t>(gx + 1) << 16) |
         static_cast<uint64_t>(gy + 1);
}

inline void UnpackKey(uint64_t key, int* sx, int* sy, int* gx, int* gy) {
  *sx = static_cast<int>((key >> 48) & 0xffff) - 1;
  *sy = static_cast<int>((key >> 32) & 0xffff) - 1;
  *gx = static_cast<int>((key >> 16) & 0xffff) - 1;
  *gy = static_cast<int>(key & 0xffff) - 1;
}

inline uint32_t PackCell(int x, int y) {
  return (static_cast<uint32_t>(y) << 16) | static_cast<uint32_t>(x);
}

/// Per-worker A* state: epoch-stamped g/parent arrays (no per-search
/// memset) and a manual binary heap over pooled storage. Everything keeps
/// its high-water capacity, so steady-state searches allocate nothing.
struct PathfindScratch : JobScratch {
  std::vector<int32_t> g;
  std::vector<int32_t> parent;
  std::vector<uint32_t> stamp;
  std::vector<uint64_t> heap;  ///< (f << 32) | cell, min-heap
  uint32_t epoch = 0;
};

/// 4-connected A* with an optional per-cell additive occupancy cost.
/// Deterministic: the heap orders by the full (f, cell) word and stale
/// entries are skipped, so expansion order is a pure function of the
/// inputs. Appends the packed cells of the path (start through goal,
/// inclusive) to `path`; returns false (path untouched) if unreachable.
bool CrowdAStar(const GridMap& map, const uint8_t* occ, int penalty_units,
                int sx, int sy, int gx, int gy, PathfindScratch* s,
                std::vector<uint64_t>* path) {
  if (map.Blocked(sx, sy) || map.Blocked(gx, gy)) return false;
  const int w = map.width();
  const int h = map.height();
  const size_t n = static_cast<size_t>(w) * static_cast<size_t>(h);
  if (s->g.size() < n) {
    s->g.resize(n);
    s->parent.resize(n);
    s->stamp.assign(n, 0);
    s->epoch = 0;
    // Pre-size the open list so per-search frontiers never ratchet its
    // capacity (a cell re-enters at most once per improving neighbor).
    s->heap.reserve(std::min<size_t>(4 * n, size_t{1} << 16));
  }
  ++s->epoch;
  if (s->epoch == 0) {  // stamp wrap: one full clear per 2^32 searches
    std::fill(s->stamp.begin(), s->stamp.end(), 0);
    s->epoch = 1;
  }
  const uint32_t ep = s->epoch;
  auto idx = [w](int x, int y) { return y * w + x; };
  auto heuristic = [&](int x, int y) {
    return kStepCost * (std::abs(x - gx) + std::abs(y - gy));
  };
  s->heap.clear();
  const int start = idx(sx, sy);
  s->g[static_cast<size_t>(start)] = 0;
  s->parent[static_cast<size_t>(start)] = -1;
  s->stamp[static_cast<size_t>(start)] = ep;
  s->heap.push_back((static_cast<uint64_t>(heuristic(sx, sy)) << 32) |
                    static_cast<uint32_t>(start));
  const int dx[4] = {1, -1, 0, 0};
  const int dy[4] = {0, 0, 1, -1};
  while (!s->heap.empty()) {
    std::pop_heap(s->heap.begin(), s->heap.end(), std::greater<>());
    const uint64_t top = s->heap.back();
    s->heap.pop_back();
    const int cell = static_cast<int>(top & 0xffffffffu);
    const int32_t f = static_cast<int32_t>(top >> 32);
    const int cx = cell % w;
    const int cy = cell / w;
    const int32_t gc = s->g[static_cast<size_t>(cell)];
    if (f > gc + heuristic(cx, cy)) continue;  // stale entry
    if (cx == gx && cy == gy) {
      const size_t first = path->size();
      for (int step = cell; step != -1;
           step = s->parent[static_cast<size_t>(step)]) {
        path->push_back(PackCell(step % w, step / w));
      }
      std::reverse(path->begin() + static_cast<ptrdiff_t>(first),
                   path->end());
      return true;
    }
    for (int k = 0; k < 4; ++k) {
      const int nx = cx + dx[k];
      const int ny = cy + dy[k];
      if (map.Blocked(nx, ny)) continue;
      const int ncell = idx(nx, ny);
      int32_t step_cost = kStepCost;
      if (occ != nullptr) {
        step_cost += penalty_units * occ[static_cast<size_t>(ncell)];
      }
      const int32_t ng = gc + step_cost;
      const size_t nc = static_cast<size_t>(ncell);
      if (s->stamp[nc] != ep || ng < s->g[nc]) {
        s->stamp[nc] = ep;
        s->g[nc] = ng;
        s->parent[nc] = cell;
        s->heap.push_back(
            (static_cast<uint64_t>(ng + heuristic(nx, ny)) << 32) |
            static_cast<uint32_t>(ncell));
        std::push_heap(s->heap.begin(), s->heap.end(), std::greater<>());
      }
    }
  }
  return false;
}

}  // namespace

StatusOr<std::unique_ptr<AsyncPathfindComponent>>
AsyncPathfindComponent::Create(const Catalog& catalog,
                               const AsyncPathfinderConfig& config,
                               GridMap map, JobService* service,
                               const ShardedWorld* sharded) {
  SGL_CHECK(service != nullptr);
  if (map.width() >= 0xfffe || map.height() >= 0xfffe) {
    return Status::InvalidArgument(
        "async_pathfind: grid maps are limited to 65533 cells per axis "
        "(request keys pack cells into 16 bits)");
  }
  auto comp =
      std::unique_ptr<AsyncPathfindComponent>(new AsyncPathfindComponent());
  comp->config_ = config;
  comp->map_ = std::move(map);
  comp->service_ = service;
  comp->sharded_ = sharded;
  // Any positive penalty must survive fixed-point quantization, or
  // sub-1/16 values would silently disable the crowd-aware path.
  comp->penalty_units_ =
      config.crowd_penalty > 0
          ? std::max(1, static_cast<int>(
                            std::lround(config.crowd_penalty * kStepCost)))
          : 0;
  comp->blob_quantum_ = std::min<size_t>(
      static_cast<size_t>(comp->map_.width()) *
              static_cast<size_t>(comp->map_.height()) +
          1,
      4096);
  comp->cls_ = catalog.Find(config.cls);
  if (comp->cls_ == kInvalidClass) {
    return Status::NotFound("async_pathfind: class '" + config.cls +
                            "' not found");
  }
  const ClassDef& def = catalog.Get(comp->cls_);
  auto state_num = [&](const std::string& field, FieldIdx* out) -> Status {
    *out = def.FindState(field);
    if (*out == kInvalidField || !def.state_field(*out).type.is_number()) {
      return Status::NotFound("async_pathfind: numeric state field '" +
                              config.cls + "." + field + "' not found");
    }
    return Status::OK();
  };
  auto effect_num = [&](const std::string& field, FieldIdx* out) -> Status {
    *out = def.FindEffect(field);
    if (*out == kInvalidField || !def.effect_field(*out).type.is_number()) {
      return Status::NotFound("async_pathfind: numeric effect field '" +
                              config.cls + "." + field + "' not found");
    }
    return Status::OK();
  };
  SGL_RETURN_IF_ERROR(state_num(config.x, &comp->x_));
  SGL_RETURN_IF_ERROR(state_num(config.y, &comp->y_));
  SGL_RETURN_IF_ERROR(effect_num(config.goal_x, &comp->goal_x_));
  SGL_RETURN_IF_ERROR(effect_num(config.goal_y, &comp->goal_y_));
  SGL_RETURN_IF_ERROR(state_num(config.waypoint_x, &comp->wx_));
  SGL_RETURN_IF_ERROR(state_num(config.waypoint_y, &comp->wy_));

  size_t cap = 16;
  while (cap < config.cache_reserve) cap <<= 1;
  comp->cache_.assign(cap, Entry());
  comp->alt_cache_.assign(cap, Entry());
  comp->client_id_ = service->RegisterClient(comp.get());
  return comp;
}

std::vector<std::pair<ClassId, FieldIdx>>
AsyncPathfindComponent::OwnedFields() const {
  return {{cls_, wx_}, {cls_, wy_}};
}

AsyncPathfindComponent::Entry* AsyncPathfindComponent::Find(uint64_t key) {
  const size_t mask = cache_.size() - 1;
  size_t i = static_cast<size_t>(Mix64(key)) & mask;
  while (cache_[i].key != 0) {
    if (cache_[i].key == key) return &cache_[i];
    i = (i + 1) & mask;
  }
  return nullptr;
}

void AsyncPathfindComponent::InsertRehash(std::vector<Entry>* table,
                                          const Entry& e) const {
  const size_t mask = table->size() - 1;
  size_t i = static_cast<size_t>(Mix64(e.key)) & mask;
  while ((*table)[i].key != 0) i = (i + 1) & mask;
  (*table)[i] = e;
}

void AsyncPathfindComponent::Grow() {
  const size_t cap = cache_.size() * 2;
  alt_cache_.assign(cap, Entry());
  for (const Entry& e : cache_) {
    if (e.key != 0) InsertRehash(&alt_cache_, e);
  }
  cache_.swap(alt_cache_);
  alt_cache_.assign(cap, Entry());
}

AsyncPathfindComponent::Entry* AsyncPathfindComponent::FindOrInsert(
    uint64_t key, bool* inserted) {
  if ((cache_size_ + 1) * 4 > cache_.size() * 3) Grow();
  const size_t mask = cache_.size() - 1;
  size_t i = static_cast<size_t>(Mix64(key)) & mask;
  while (cache_[i].key != 0) {
    if (cache_[i].key == key) {
      *inserted = false;
      return &cache_[i];
    }
    i = (i + 1) & mask;
  }
  cache_[i] = Entry();
  cache_[i].key = key;
  ++cache_size_;
  *inserted = true;
  return &cache_[i];
}

void AsyncPathfindComponent::MaybeSweep(Tick tick) {
  if (config_.result_ttl_ticks <= 0) return;
  const Tick period = std::max(1, config_.result_ttl_ticks / 2);
  if (tick - last_sweep_ < period) return;
  last_sweep_ = tick;
  // Ping-pong rebuild: in-flight keys must survive (their job will try to
  // install), ready keys survive while recently used.
  for (Entry& e : alt_cache_) e = Entry();
  size_t kept = 0;
  for (const Entry& e : cache_) {
    if (e.key == 0) continue;
    if ((e.flags & kInFlight) != 0 ||
        tick - e.last_used <= config_.result_ttl_ticks) {
      InsertRehash(&alt_cache_, e);
      ++kept;
    } else {
      ++total_.evicted;
    }
  }
  cache_.swap(alt_cache_);
  cache_size_ = kept;
}

void AsyncPathfindComponent::SubmitSearch(World* world, uint64_t key,
                                          Tick tick, int shard,
                                          SnapshotView** snap) {
  if (penalty_units_ > 0 && *snap == nullptr) {
    // One capture shared by every job submitted this tick.
    *snap = service_->AcquireSnapshot();
    const FieldIdx fields[2] = {x_, y_};
    (*snap)->Capture(*world, cls_, fields, 2,
                     static_cast<uint64_t>(tick));
  }
  const uint64_t args[4] = {key, 0, 0, 0};
  service_->Submit(client_id_, key, args, *snap, config_.latency_ticks,
                   tick, shard);
  ++total_.submitted;
}

void AsyncPathfindComponent::Update(World* world, Tick tick) {
  EntityTable& table = world->table(cls_);
  const EffectBuffer& effects = world->effects(cls_);
  const size_t n = table.size();
  if (n == 0) {
    MaybeSweep(tick);
    return;
  }
  ConstNumberColumn x = table.Num(x_);
  ConstNumberColumn y = table.Num(y_);
  NumberColumn wx = table.Num(wx_);
  NumberColumn wy = table.Num(wy_);
  const int w = map_.width();
  const int h = map_.height();
  SnapshotView* snap = nullptr;

  for (size_t i = 0; i < n; ++i) {
    const RowIdx r = static_cast<RowIdx>(i);
    if (!effects.Assigned(goal_x_, r) || !effects.Assigned(goal_y_, r)) {
      continue;  // no intent: waypoint untouched
    }
    const double gx_pos = effects.FinalNumber(goal_x_, r);
    const double gy_pos = effects.FinalNumber(goal_y_, r);
    const int sx = map_.CellX(x[i]);
    const int sy = map_.CellY(y[i]);
    const int gx = map_.CellX(gx_pos);
    const int gy = map_.CellY(gy_pos);
    if (sx < 0 || sy < 0 || sx >= w || sy >= h || gx < 0 || gy < 0 ||
        gx >= w || gy >= h) {
      // Off-map request: hold position (the sync component's Blocked()
      // lookup treats out-of-range as unreachable too).
      ++total_.unreachable;
      wx.at(i) = x[i];
      wy.at(i) = y[i];
      continue;
    }
    if (sx == gx && sy == gy) {
      // Final cell: head to the exact goal position, no search needed.
      wx.at(i) = gx_pos;
      wy.at(i) = gy_pos;
      continue;
    }
    const int shard =
        sharded_ != nullptr ? sharded_->ShardOfRow(cls_, r) : 0;
    const uint64_t key = PackKey(sx, sy, gx, gy);
    bool inserted = false;
    Entry* e = FindOrInsert(key, &inserted);
    e->last_used = tick;
    if (inserted) {
      e->flags = kInFlight;
      SubmitSearch(world, key, tick, shard, &snap);
      ++total_.stalls;
      wx.at(i) = x[i];  // hold position while the search is out
      wy.at(i) = y[i];
      continue;
    }
    if ((e->flags & kReady) == 0) {
      ++total_.stalls;
      wx.at(i) = x[i];
      wy.at(i) = y[i];
      continue;
    }
    const int nx = static_cast<int>(e->next_cell & 0xffff);
    const int ny = static_cast<int>(e->next_cell >> 16);
    if (config_.refresh_after_ticks > 0 && (e->flags & kInFlight) == 0 &&
        tick - e->installed >= config_.refresh_after_ticks) {
      // Background revalidation: keep following the old answer, but get a
      // fresh search (new crowd snapshot) in flight.
      e->flags |= kInFlight;
      SubmitSearch(world, key, tick, shard, &snap);
      ++total_.refreshes;
    }
    if (nx == sx && ny == sy) {
      // Installed as unreachable (or degenerate): hold position. A later
      // refresh may find a path if the map opened up.
      ++total_.cache_hits;
      wx.at(i) = x[i];
      wy.at(i) = y[i];
      continue;
    }
    if (map_.Blocked(nx, ny)) {
      // Stale result: the map changed under the cached answer. Drop it
      // and re-search; the requester holds position meanwhile.
      ++total_.dropped_stale;
      if ((e->flags & kInFlight) == 0) {
        SubmitSearch(world, key, tick, shard, &snap);
      }
      e->flags = kInFlight;
      ++total_.stalls;
      wx.at(i) = x[i];
      wy.at(i) = y[i];
      continue;
    }
    ++total_.cache_hits;
    if (nx == gx && ny == gy) {
      wx.at(i) = gx_pos;  // final step: exact goal position
      wy.at(i) = gy_pos;
    } else {
      wx.at(i) = map_.CenterX(nx);
      wy.at(i) = map_.CenterY(ny);
    }
  }
  service_->ReleaseUnused(snap);
  MaybeSweep(tick);
}

void AsyncPathfindComponent::Run(const SnapshotView* snap, JobSlot* job,
                                 JobScratch* scratch) {
  auto* s = static_cast<PathfindScratch*>(scratch);
  int sx, sy, gx, gy;
  UnpackKey(job->args[0], &sx, &sy, &gx, &gy);
  const uint8_t* occ = nullptr;
  if (snap != nullptr && penalty_units_ > 0) {
    const int w = map_.width();
    const int h = map_.height();
    // Built once per snapshot by whichever worker gets here first; a pure
    // function of the captured columns, so the content is deterministic.
    const std::vector<uint8_t>& grid =
        const_cast<SnapshotView*>(snap)->Derived(
            [&](std::vector<uint8_t>* out) {
              out->assign(static_cast<size_t>(w) * static_cast<size_t>(h),
                          0);
              const std::vector<double>& xs = snap->num(0);
              const std::vector<double>& ys = snap->num(1);
              for (size_t i = 0; i < snap->rows(); ++i) {
                const int cx = map_.CellX(xs[i]);
                const int cy = map_.CellY(ys[i]);
                if (cx < 0 || cy < 0 || cx >= w || cy >= h) continue;
                uint8_t& cell =
                    (*out)[static_cast<size_t>(cy) * w + cx];
                if (cell != 0xff) ++cell;
              }
            });
    occ = grid.data();
  }
  job->blob.clear();
  if (job->blob.capacity() < blob_quantum_) job->blob.reserve(blob_quantum_);
  const bool reached =
      CrowdAStar(map_, occ, penalty_units_, sx, sy, gx, gy, s, &job->blob);
  job->result[0] = job->blob.size() >= 2 ? static_cast<uint64_t>(job->blob[1])
                                         : PackCell(sx, sy);
  job->result[1] = reached ? 1 : 0;
  job->result[2] = job->blob.empty()
                       ? 0
                       : static_cast<uint64_t>(job->blob.size() - 1);
}

std::unique_ptr<JobScratch> AsyncPathfindComponent::MakeScratch() {
  return std::make_unique<PathfindScratch>();
}

void AsyncPathfindComponent::Install(const JobSlot& job) {
  ++total_.installed;
  total_.path_cells += static_cast<int64_t>(job.result[2]);
  if (job.result[1] == 0 || job.blob.size() < 2) {
    // Unreachable (or degenerate): record "hold position" for the
    // requested key so its entities stop stalling.
    ++total_.unreachable;
    Entry* e = Find(job.user_key);
    if (e == nullptr) return;  // cache cleared since submission (restore)
    e->next_cell = static_cast<uint32_t>(job.result[0]);
    e->flags = kReady;
    e->installed = job.install_tick;
    return;
  }
  // Seed the cache along the whole computed route: every cell on the path
  // maps to its successor (toward the same goal), so entities marching the
  // route find a ready answer at every subsequent step instead of
  // re-requesting after each move — one search serves the march. A
  // pending in-flight bit on a seeded key survives (its own job still
  // installs later, overwriting with an equivalent, fresher answer).
  int sx, sy, gx, gy;
  UnpackKey(job.user_key, &sx, &sy, &gx, &gy);
  for (size_t i = 0; i + 1 < job.blob.size(); ++i) {
    const uint32_t cell = static_cast<uint32_t>(job.blob[i]);
    const int cx = static_cast<int>(cell & 0xffff);
    const int cy = static_cast<int>(cell >> 16);
    bool inserted = false;
    Entry* e = FindOrInsert(PackKey(cx, cy, gx, gy), &inserted);
    if (inserted) e->last_used = job.install_tick;
    e->next_cell = static_cast<uint32_t>(job.blob[i + 1]);
    e->flags = (e->flags & kInFlight) | kReady;
    e->installed = job.install_tick;
    total_.seeded += inserted ? 1 : 0;
  }
  // The submitted key itself: clear its in-flight bit (this was its job).
  Entry* e = Find(job.user_key);
  if (e != nullptr) e->flags = kReady;
}

void AsyncPathfindComponent::OnRestore() {
  for (Entry& e : cache_) e = Entry();
  cache_size_ = 0;
  // Re-phase the TTL sweep as a fresh component would run it, so an
  // in-place restore evicts on the same ticks as a fresh-engine restore.
  last_sweep_ = 0;
}

namespace {
constexpr uint32_t kPathCacheMagic = 0x50464348u;  // "HCFP"
constexpr uint32_t kPathCacheVersion = 1;
}  // namespace

void AsyncPathfindComponent::SaveState(std::string* out) const {
  // Always emits at least the header: an empty cache is real state too
  // (restoring it must not fall back to the OnRestore cache drop).
  binio::Append<uint32_t>(out, kPathCacheMagic);
  binio::Append<uint32_t>(out, kPathCacheVersion);
  binio::Append<int64_t>(out, static_cast<int64_t>(last_sweep_));
  // Capacity is saved so post-restore Grow() triggers on the same tick as
  // the uninterrupted run's.
  binio::Append<uint64_t>(out, static_cast<uint64_t>(cache_.size()));
  binio::Append<uint64_t>(out, static_cast<uint64_t>(cache_size_));
  for (const Entry& e : cache_) {
    if (e.key == 0) continue;
    binio::Append<uint64_t>(out, e.key);
    binio::Append<uint32_t>(out, e.next_cell);
    binio::Append<uint32_t>(out, e.flags);
    binio::Append<int64_t>(out, static_cast<int64_t>(e.last_used));
    binio::Append<int64_t>(out, static_cast<int64_t>(e.installed));
  }
}

Status AsyncPathfindComponent::LoadState(const char* data, size_t size) {
  const char* cur = data;
  const char* end = data + size;
  uint32_t magic = 0, version = 0;
  int64_t sweep = 0;
  uint64_t cap = 0, count = 0;
  if (!binio::Read(&cur, end, &magic) || magic != kPathCacheMagic ||
      !binio::Read(&cur, end, &version) || version != kPathCacheVersion ||
      !binio::Read(&cur, end, &sweep) || !binio::Read(&cur, end, &cap) ||
      !binio::Read(&cur, end, &count)) {
    return Status::InvalidArgument("pathfind cache: bad header");
  }
  constexpr size_t kEntryBytes = 8 + 4 + 4 + 8 + 8;
  if (cap < 16 || (cap & (cap - 1)) != 0 || count * 4 > cap * 3 ||
      count * kEntryBytes != static_cast<uint64_t>(end - cur)) {
    return Status::InvalidArgument("pathfind cache: bad shape");
  }
  alt_cache_.assign(static_cast<size_t>(cap), Entry());
  for (uint64_t i = 0; i < count; ++i) {
    Entry e;
    int64_t last_used = 0, installed = 0;
    binio::Read(&cur, end, &e.key);
    binio::Read(&cur, end, &e.next_cell);
    binio::Read(&cur, end, &e.flags);
    binio::Read(&cur, end, &last_used);
    binio::Read(&cur, end, &installed);
    e.last_used = static_cast<Tick>(last_used);
    e.installed = static_cast<Tick>(installed);
    if (e.key == 0) {
      return Status::InvalidArgument("pathfind cache: empty key");
    }
    InsertRehash(&alt_cache_, e);
  }
  cache_.swap(alt_cache_);
  alt_cache_.assign(static_cast<size_t>(cap), Entry());
  cache_size_ = static_cast<size_t>(count);
  last_sweep_ = static_cast<Tick>(sweep);
  return Status::OK();
}

}  // namespace sgl
