// AsyncPathfindComponent: tick-spanning A* pathfinding over the JobService.
//
// The synchronous PathfinderComponent (src/update/pathfind.h) runs every A*
// search inside the update phase — one long search over a large map stalls
// the whole tick. This component replaces the blocking search with
// submit/poll:
//
//   * Each requested (start cell, goal cell) pair becomes at most one job,
//     deduplicated across entities *and* across ticks by a flat
//     open-addressing request cache (the cross-tick generalization of the
//     sync component's per-tick memo).
//   * Jobs execute on JobService workers against an epoch-stamped
//     SnapshotView of the declared position columns (used to rasterize a
//     crowd-occupancy cost layer when `crowd_penalty > 0`); results
//     install at the deterministic tick `submit + latency_ticks`, in
//     seeded job-order. Installation seeds the cache along the *whole*
//     computed path — every on-route cell maps to its successor — so one
//     search serves an army's entire march down that route; entities only
//     wait on genuinely novel (start, goal) requests.
//   * While a request is in flight its entities hold position (waypoint =
//     current position); once the result installs, every entity at that
//     (start, goal) pair steps identically. World state is therefore
//     bit-identical for any worker count, shard count, and thread count.
//
// Staleness: cached results are revalidated on use — a next cell that the
// (mutable) GridMap has since blocked is dropped and re-searched, and
// entries older than `refresh_after_ticks` re-submit in the background
// while entities keep following the old answer until the fresh one
// installs. Entries unused for `result_ttl_ticks` are evicted by a
// ping-pong sweep (capacity kept; steady-state ticks allocate nothing).

#ifndef SGL_ASYNC_ASYNC_PATHFIND_H_
#define SGL_ASYNC_ASYNC_PATHFIND_H_

#include <memory>
#include <string>
#include <vector>

#include "src/async/job_service.h"
#include "src/shard/sharded_world.h"
#include "src/update/pathfind.h"
#include "src/update/update_component.h"

namespace sgl {

struct AsyncPathfinderConfig {
  std::string cls;
  std::string x = "x", y = "y";          ///< read-only position state
  std::string goal_x = "goal_x";         ///< effect: intended destination
  std::string goal_y = "goal_y";
  std::string waypoint_x = "waypoint_x"; ///< owned: next step to take
  std::string waypoint_y = "waypoint_y";
  /// Result installation happens exactly this many ticks after submission
  /// (the declared deterministic completion latency). >= 1.
  int latency_ticks = 2;
  /// Evict cached results unused for this many ticks (<= 0: never evict).
  int result_ttl_ticks = 16;
  /// Re-search results older than this in the background (0: never; for
  /// static maps with no crowd penalty the first answer stays correct).
  int refresh_after_ticks = 0;
  /// > 0: each entity occupying a cell (in the submit-time snapshot) adds
  /// this much to the cell's step cost — congestion-aware paths. This is
  /// what makes jobs read the SnapshotView.
  double crowd_penalty = 0.0;
  /// Initial request-cache capacity (rounded up to a power of two).
  /// Size for the steady-state working set to keep growth out of ticks.
  size_t cache_reserve = 1u << 12;
};

struct AsyncPathfinderStats {
  int64_t submitted = 0;      ///< jobs handed to the service
  int64_t installed = 0;      ///< results installed at barriers
  int64_t cache_hits = 0;     ///< entity-requests served from the cache
  int64_t stalls = 0;         ///< entity-requests held while in flight
  int64_t unreachable = 0;    ///< installed results with no path
  int64_t refreshes = 0;      ///< background re-searches
  int64_t dropped_stale = 0;  ///< cached next cells invalidated by the map
  int64_t evicted = 0;        ///< TTL sweep evictions
  int64_t seeded = 0;         ///< path-seeded cache entries (new keys)
  int64_t path_cells = 0;     ///< total installed path length (cells)
};

class AsyncPathfindComponent : public UpdateComponent, public JobClient {
 public:
  /// `service` must outlive the component. `sharded` may be null; when set,
  /// submissions are tagged with the requesting entity's shard (stats /
  /// distribution groundwork — placement does not affect results).
  static StatusOr<std::unique_ptr<AsyncPathfindComponent>> Create(
      const Catalog& catalog, const AsyncPathfinderConfig& config,
      GridMap map, JobService* service,
      const ShardedWorld* sharded = nullptr);

  // --- UpdateComponent --------------------------------------------------
  const std::string& name() const override { return name_; }
  std::vector<std::pair<ClassId, FieldIdx>> OwnedFields() const override;
  void Update(World* world, Tick tick) override;
  /// Drops the request cache: in-flight keys refer to jobs the engine just
  /// cancelled, and ready results belong to the pre-restore trajectory.
  void OnRestore() override;
  /// Full request-cache image (keys, ready next-cells, in-flight bits,
  /// sweep phase). With the in-flight job section of the same checkpoint
  /// restored alongside it, every kInFlight key's job is re-created too —
  /// post-restore ticks replay bit-identically to the uninterrupted run
  /// instead of re-searching from a cold cache.
  void SaveState(std::string* out) const override;
  Status LoadState(const char* data, size_t size) override;

  // --- JobClient --------------------------------------------------------
  const char* client_name() const override { return "async_pathfind"; }
  void Run(const SnapshotView* snap, JobSlot* job,
           JobScratch* scratch) override;
  std::unique_ptr<JobScratch> MakeScratch() override;
  void Install(const JobSlot& job) override;

  const GridMap& map() const { return map_; }
  /// Workers read the map concurrently while jobs are in flight: mutate
  /// (SetBlocked) only at a tick boundary with no jobs outstanding
  /// (service in_flight() == 0, e.g. after CancelAll).
  GridMap& mutable_map() { return map_; }
  const AsyncPathfinderStats& total() const { return total_; }
  size_t cache_entries() const { return cache_size_; }

 private:
  /// One (start cell, goal cell) request. key 0 = empty slot.
  struct Entry {
    uint64_t key = 0;
    uint32_t next_cell = 0;  ///< (ny << 16) | nx, valid when kReady
    uint32_t flags = 0;
    Tick last_used = 0;
    Tick installed = 0;
  };
  static constexpr uint32_t kInFlight = 1;  ///< a job is out for this key
  static constexpr uint32_t kReady = 2;     ///< next_cell is usable

  AsyncPathfindComponent() : map_(1, 1, 1.0) {}

  Entry* Find(uint64_t key);
  Entry* FindOrInsert(uint64_t key, bool* inserted);
  void InsertRehash(std::vector<Entry>* table, const Entry& e) const;
  void Grow();
  void MaybeSweep(Tick tick);
  void SubmitSearch(World* world, uint64_t key, Tick tick, int shard,
                    SnapshotView** snap);

  std::string name_ = "async_pathfind";
  AsyncPathfinderConfig config_;
  GridMap map_;
  JobService* service_ = nullptr;
  const ShardedWorld* sharded_ = nullptr;
  int client_id_ = -1;
  int penalty_units_ = 0;  ///< fixed-point crowd penalty per occupant
  /// Fixed capacity every result blob is reserved to (min(w*h+1, 4096)):
  /// identical capacities mean a recycled slot never re-allocates for a
  /// longer-than-before path, keeping steady-state ticks allocation-free.
  /// Paths beyond the quantum (pathological mazes) still work — the blob
  /// just grows.
  size_t blob_quantum_ = 0;

  ClassId cls_ = kInvalidClass;
  FieldIdx x_ = kInvalidField, y_ = kInvalidField;
  FieldIdx goal_x_ = kInvalidField, goal_y_ = kInvalidField;
  FieldIdx wx_ = kInvalidField, wy_ = kInvalidField;

  /// Open-addressing request cache + ping-pong sweep partner (same
  /// capacity; swap on sweep, so steady-state eviction allocates nothing).
  std::vector<Entry> cache_;
  std::vector<Entry> alt_cache_;
  size_t cache_size_ = 0;
  Tick last_sweep_ = 0;

  AsyncPathfinderStats total_;
};

}  // namespace sgl

#endif  // SGL_ASYNC_ASYNC_PATHFIND_H_
