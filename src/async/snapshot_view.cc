#include "src/async/snapshot_view.h"

#include <cstring>

#include "src/common/bin_io.h"

namespace sgl {

void SnapshotView::Capture(const World& world, ClassId cls,
                           const FieldIdx* fields, int num_fields,
                           uint64_t epoch, bool capture_ids) {
  epoch_ = epoch;
  cls_ = cls;
  derived_.clear();
  derived_ready_.store(false, std::memory_order_relaxed);

  const EntityTable& table = world.table(cls);
  const size_t n = table.size();
  rows_ = n;
  if (capture_ids) {
    ids_.assign(table.ids().begin(), table.ids().end());
  } else {
    ids_.clear();
  }
  if (nums_.size() < static_cast<size_t>(num_fields)) {
    nums_.resize(static_cast<size_t>(num_fields));
  }
  for (int i = 0; i < num_fields; ++i) {
    std::vector<double>& dst = nums_[static_cast<size_t>(i)];
    dst.resize(n);
    ConstNumberColumn col = table.Num(fields[i]);
    if (col.stride == 1) {
      if (n > 0) std::memcpy(dst.data(), col.base, n * sizeof(double));
    } else {
      for (size_t r = 0; r < n; ++r) dst[r] = col[r];
    }
  }
}

void SnapshotView::Serialize(std::string* out) const {
  binio::Append<uint64_t>(out, epoch_);
  binio::Append<int32_t>(out, static_cast<int32_t>(cls_));
  binio::Append<uint64_t>(out, static_cast<uint64_t>(rows_));
  binio::Append<uint64_t>(out, static_cast<uint64_t>(ids_.size()));
  if (!ids_.empty()) {
    binio::AppendBytes(out, ids_.data(), ids_.size() * sizeof(EntityId));
  }
  binio::Append<uint32_t>(out, static_cast<uint32_t>(nums_.size()));
  for (const std::vector<double>& col : nums_) {
    binio::Append<uint64_t>(out, static_cast<uint64_t>(col.size()));
    if (!col.empty()) {
      binio::AppendBytes(out, col.data(), col.size() * sizeof(double));
    }
  }
}

bool SnapshotView::DeserializeFrom(const char** cur, const char* end) {
  uint64_t rows = 0, nids = 0;
  int32_t cls = 0;
  uint32_t ncols = 0;
  if (!binio::Read(cur, end, &epoch_)) return false;
  if (!binio::Read(cur, end, &cls)) return false;
  if (!binio::Read(cur, end, &rows)) return false;
  if (!binio::Read(cur, end, &nids)) return false;
  cls_ = static_cast<ClassId>(cls);
  rows_ = static_cast<size_t>(rows);
  // Guard before resizing: a corrupt length must fail, not try to allocate.
  if (nids * sizeof(EntityId) > static_cast<uint64_t>(end - *cur)) {
    return false;
  }
  ids_.resize(static_cast<size_t>(nids));
  if (nids != 0 && !binio::ReadBytes(cur, end, ids_.data(),
                                     ids_.size() * sizeof(EntityId))) {
    return false;
  }
  if (!binio::Read(cur, end, &ncols)) return false;
  if (nums_.size() < ncols) nums_.resize(ncols);
  for (uint32_t i = 0; i < ncols; ++i) {
    uint64_t n = 0;
    if (!binio::Read(cur, end, &n)) return false;
    if (n * sizeof(double) > static_cast<uint64_t>(end - *cur)) return false;
    std::vector<double>& col = nums_[i];
    col.resize(static_cast<size_t>(n));
    if (n != 0 && !binio::ReadBytes(cur, end, col.data(),
                                    col.size() * sizeof(double))) {
      return false;
    }
  }
  derived_.clear();
  derived_ready_.store(false, std::memory_order_relaxed);
  return true;
}

}  // namespace sgl
