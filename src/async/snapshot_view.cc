#include "src/async/snapshot_view.h"

#include <cstring>

namespace sgl {

void SnapshotView::Capture(const World& world, ClassId cls,
                           const FieldIdx* fields, int num_fields,
                           uint64_t epoch, bool capture_ids) {
  epoch_ = epoch;
  cls_ = cls;
  derived_.clear();
  derived_ready_.store(false, std::memory_order_relaxed);

  const EntityTable& table = world.table(cls);
  const size_t n = table.size();
  rows_ = n;
  if (capture_ids) {
    ids_.assign(table.ids().begin(), table.ids().end());
  } else {
    ids_.clear();
  }
  if (nums_.size() < static_cast<size_t>(num_fields)) {
    nums_.resize(static_cast<size_t>(num_fields));
  }
  for (int i = 0; i < num_fields; ++i) {
    std::vector<double>& dst = nums_[static_cast<size_t>(i)];
    dst.resize(n);
    ConstNumberColumn col = table.Num(fields[i]);
    if (col.stride == 1) {
      if (n > 0) std::memcpy(dst.data(), col.base, n * sizeof(double));
    } else {
      for (size_t r = 0; r < n; ++r) dst[r] = col[r];
    }
  }
}

}  // namespace sgl
