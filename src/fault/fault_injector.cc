#include "src/fault/fault_injector.h"

#include <cmath>
#include <cstring>
#include <thread>

#include "src/common/rng.h"
#include "src/common/stopwatch.h"

namespace sgl {

FaultInjector::FaultInjector(FaultPlan plan) : plan_(std::move(plan)) {
  rules_.reserve(plan_.rules.size());
  for (const FaultRule& r : plan_.rules) {
    auto compiled = std::make_unique<CompiledRule>();
    compiled->site_id = FaultSiteHash(r.site.c_str());
    compiled->name = &r.site;
    compiled->begin = r.begin;
    compiled->end = r.end;
    if (r.rate >= 1.0) {
      compiled->threshold = std::numeric_limits<uint64_t>::max();
    } else if (r.rate <= 0.0) {
      compiled->threshold = 0;
    } else {
      compiled->threshold = static_cast<uint64_t>(
          r.rate * static_cast<double>(std::numeric_limits<uint64_t>::max()));
    }
    compiled->payload = r.payload;
    compiled->max_fires = r.max_fires;
    rules_.push_back(std::move(compiled));
  }
}

bool FaultInjector::Fires(const FaultSite& site, Tick tick, uint64_t key,
                          uint64_t* payload) {
  for (const auto& r : rules_) {
    if (r->site_id != site.id) continue;
    if (tick < r->begin || tick >= r->end) continue;
    if (r->max_fires >= 0 &&
        r->fires.load(std::memory_order_relaxed) >= r->max_fires) {
      continue;
    }
    if (r->threshold != std::numeric_limits<uint64_t>::max()) {
      // The roll is a pure function of (seed, site, tick, key): no rng
      // state, so evaluation order and thread count cannot change it.
      const uint64_t roll =
          Mix64(plan_.seed ^ Mix64(site.id ^ static_cast<uint64_t>(tick)) ^
                Mix64(key + 0x9e3779b97f4a7c15ULL));
      if (r->threshold == 0 || roll > r->threshold) continue;
    }
    if (r->max_fires >= 0 &&
        r->fires.fetch_add(1, std::memory_order_relaxed) >= r->max_fires) {
      continue;  // lost a concurrent race for the last allowed fire
    }
    if (r->max_fires < 0) r->fires.fetch_add(1, std::memory_order_relaxed);
    if (payload != nullptr) *payload = r->payload;
    total_fires_.fetch_add(1, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lock(log_mu_);
      log_.push_back(FaultEvent{site.name, tick, key});
    }
    return true;
  }
  return false;
}

Status FaultInjector::MaybeCrash(const FaultSite& site, Tick tick,
                                 uint64_t key) {
  uint64_t payload = 0;
  if (!Fires(site, tick, key, &payload)) return Status::OK();
  return Status::Internal(std::string(kFaultCrashPrefix) + " at " +
                          site.name + " tick " + std::to_string(tick));
}

void FaultInjector::MaybeStall(const FaultSite& site, Tick tick,
                               uint64_t key) {
  uint64_t payload = 0;
  if (!Fires(site, tick, key, &payload)) return;
  const int64_t micros =
      payload != 0 ? static_cast<int64_t>(payload) : 100;
  Stopwatch delay;
  while (delay.ElapsedMicros() < micros) std::this_thread::yield();
}

int64_t FaultInjector::fires_at(const FaultSite& site) const {
  int64_t n = 0;
  for (const auto& r : rules_) {
    if (r->site_id == site.id) {
      n += r->fires.load(std::memory_order_relaxed);
    }
  }
  return n;
}

std::vector<FaultEvent> FaultInjector::Log() const {
  std::lock_guard<std::mutex> lock(log_mu_);
  return log_;
}

std::string FaultInjector::Describe() const {
  std::string out = "FaultPlan seed=" + std::to_string(plan_.seed) + "\n";
  std::lock_guard<std::mutex> lock(log_mu_);
  for (const FaultEvent& e : log_) {
    out += "  fired site=" + std::string(e.site) +
           " tick=" + std::to_string(e.tick) +
           " key=" + std::to_string(e.key) + "\n";
  }
  return out;
}

bool IsInjectedCrash(const Status& status) {
  return status.code() == StatusCode::kInternal &&
         status.message().rfind(kFaultCrashPrefix, 0) == 0;
}

}  // namespace sgl
