// Deterministic fault injection (src/fault/).
//
// Production robustness is only testable if failures are *schedulable*: a
// worker stall, a crash between the query and update phases, a torn
// checkpoint file must be reproducible on demand, at a chosen tick, from a
// seed. The FaultInjector is that scheduler. Subsystems declare named
// injection points (`SGL_FAULT_POINT`), a FaultPlan arms a set of rules
// (site × tick window × rate × payload), and whether a given evaluation
// fires is a pure function of `(plan seed, site, tick, key)` — no RNG
// state, no call-order dependence, no thread-count dependence. The same
// plan against the same run fires the same faults, which is what turns
// every fuzz-found failure into a pinned regression test (see README.md).
//
// Sites are named `layer.object.effect` ("async.worker.stall",
// "ckpt.write.bitflip", "exec.crash.postupdate"); the site id is the
// constexpr FNV-1a hash of the name, so call sites carry no strings and a
// disarmed check is a null-pointer test. The miss path is lock-free and
// allocation-free — an armed-but-idle plan keeps steady-state ticks at
// allocs_per_tick == 0.
//
// Firing semantics:
//   * A rule matches when the site id equals, `begin <= tick < end`, and
//     (for rate < 1) the seeded hash of (seed, site, tick, key) falls
//     under the rate threshold. `key` is the caller's per-evaluation
//     discriminator (job order key, intent index, ...), so two jobs at the
//     same tick roll independently — but each rolls the same way in every
//     run.
//   * `max_fires` caps total fires across the injector's lifetime. Crash
//     rules use max_fires = 1: the injector outlives the engine it crashed,
//     so the post-restore replay passes the crash tick without re-firing —
//     exactly a real crash-once trace.
//   * Every fire is recorded (site, tick, key) under a mutex; misses touch
//     no lock. Describe() renders the log as a reproducibility report.

#ifndef SGL_FAULT_FAULT_INJECTOR_H_
#define SGL_FAULT_FAULT_INJECTOR_H_

#include <atomic>
#include <cstdint>
#include <limits>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/common/types.h"

namespace sgl {

/// Compile-time FNV-1a 64 over a site name.
constexpr uint64_t FaultSiteHash(const char* s,
                                 uint64_t h = 0xcbf29ce484222325ULL) {
  return *s == '\0'
             ? h
             : FaultSiteHash(
                   s + 1,
                   (h ^ static_cast<uint64_t>(
                            static_cast<unsigned char>(*s))) *
                       0x100000001b3ULL);
}

/// A named injection point: the id is the hash callers compare against,
/// the name is kept for rule matching, logs, and crash messages.
struct FaultSite {
  uint64_t id;
  const char* name;
};

constexpr FaultSite MakeFaultSite(const char* name) {
  return FaultSite{FaultSiteHash(name), name};
}

// --- The injection points wired into the engine -------------------------
// async: JobService worker faults (src/async/job_service.cc).
inline constexpr FaultSite kFaultAsyncWorkerStall =
    MakeFaultSite("async.worker.stall");
inline constexpr FaultSite kFaultAsyncWorkerDeath =
    MakeFaultSite("async.worker.death");
// exec: crashes inside the single-world tick (src/exec/tick_executor.cc).
inline constexpr FaultSite kFaultExecCrashPostQuery =
    MakeFaultSite("exec.crash.postquery");
inline constexpr FaultSite kFaultExecCrashPostUpdate =
    MakeFaultSite("exec.crash.postupdate");
// shard: barrier faults in the sharded pipeline (src/shard/).
inline constexpr FaultSite kFaultShardBarrierStall =
    MakeFaultSite("shard.barrier.stall");
inline constexpr FaultSite kFaultShardCrashPremerge =
    MakeFaultSite("shard.crash.premerge");
inline constexpr FaultSite kFaultShardCrashPostUpdate =
    MakeFaultSite("shard.crash.postupdate");
// txn: crash mid-admission, leaving a torn update phase (src/txn/).
inline constexpr FaultSite kFaultTxnAdmitCrash =
    MakeFaultSite("txn.admit.crash");
// ckpt: checkpoint file I/O faults (src/debug/checkpoint_file.cc).
inline constexpr FaultSite kFaultCkptWriteShort =
    MakeFaultSite("ckpt.write.short");
inline constexpr FaultSite kFaultCkptWriteTorn =
    MakeFaultSite("ckpt.write.torn");
inline constexpr FaultSite kFaultCkptWriteBitflip =
    MakeFaultSite("ckpt.write.bitflip");
inline constexpr FaultSite kFaultCkptReadBitflip =
    MakeFaultSite("ckpt.read.bitflip");
// alloc: fail an allocation during checkpoint serialization (via
// src/common/alloc_hook.h's armed countdown).
inline constexpr FaultSite kFaultCkptSerializeAllocFail =
    MakeFaultSite("ckpt.serialize.allocfail");

/// One armed fault: fire at `site` while `begin <= tick < end`, with
/// deterministic per-(tick, key) probability `rate`, at most `max_fires`
/// times (-1 = unlimited). `payload` parameterizes the effect (stall
/// micros, corrupted byte offset, truncated length, ...).
struct FaultRule {
  std::string site;
  Tick begin = 0;
  Tick end = std::numeric_limits<Tick>::max();
  double rate = 1.0;
  uint64_t payload = 0;
  int max_fires = -1;
};

/// A seeded schedule of faults. Reproducibility contract: the fire set is a
/// pure function of (seed, rules) and the (site, tick, key) evaluations the
/// run performs — identical runs see identical faults.
struct FaultPlan {
  uint64_t seed = 0;
  std::vector<FaultRule> rules;
};

/// One recorded fire.
struct FaultEvent {
  const char* site;  ///< static site name
  Tick tick;
  uint64_t key;
};

class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan);

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  const FaultPlan& plan() const { return plan_; }

  /// True if any rule could ever fire. A null injector pointer is the
  /// common disarmed fast path; this covers an injector with no rules.
  bool armed() const { return !rules_.empty(); }

  /// Evaluates `site` at `(tick, key)`. Returns true — and writes the
  /// matched rule's payload, if requested — when a rule fires. Thread-safe;
  /// the miss path takes no lock and allocates nothing.
  bool Fires(const FaultSite& site, Tick tick, uint64_t key,
             uint64_t* payload = nullptr);

  /// Crash-site helper: OK, or an injected-crash Internal Status carrying
  /// the site name (recognizable via IsInjectedCrash).
  Status MaybeCrash(const FaultSite& site, Tick tick, uint64_t key = 0);

  /// Stall-site helper: busy-waits the rule payload (micros; 0 = 100) when
  /// the site fires. State-neutral — a latency fault, not a state fault.
  void MaybeStall(const FaultSite& site, Tick tick, uint64_t key = 0);

  int64_t total_fires() const {
    return total_fires_.load(std::memory_order_relaxed);
  }
  int64_t fires_at(const FaultSite& site) const;

  /// Copy of the fire log (ordered by fire time within each thread).
  std::vector<FaultEvent> Log() const;

  /// Human-readable reproducibility report: seed + every (site, tick, key)
  /// fired, i.e. everything needed to pin the failure as a regression.
  std::string Describe() const;

 private:
  struct CompiledRule {
    uint64_t site_id;
    const std::string* name;  ///< points into plan_.rules
    Tick begin;
    Tick end;
    uint64_t threshold;  ///< rate mapped onto [0, 2^64)
    uint64_t payload;
    int32_t max_fires;
    std::atomic<int32_t> fires{0};
  };

  FaultPlan plan_;
  std::vector<std::unique_ptr<CompiledRule>> rules_;
  std::atomic<int64_t> total_fires_{0};
  mutable std::mutex log_mu_;
  std::vector<FaultEvent> log_;
};

/// True when `status` is an injected crash (FaultInjector::MaybeCrash or a
/// torn-write checkpoint fault) rather than a genuine engine error.
bool IsInjectedCrash(const Status& status);

/// The message prefix injected crashes carry.
inline constexpr const char* kFaultCrashPrefix = "fault: injected crash";

/// The documented guard idiom for inline injection points:
///   uint64_t payload = 0;
///   if (SGL_FAULT_POINT(fault_, kFaultAsyncWorkerStall, tick, key,
///                       &payload)) { ... }
/// Compiles to a null test when disarmed.
#define SGL_FAULT_POINT(injector, site, tick, key, payload_out) \
  ((injector) != nullptr &&                                     \
   (injector)->Fires((site), (tick), (key), (payload_out)))

}  // namespace sgl

#endif  // SGL_FAULT_FAULT_INJECTOR_H_
