#include "src/txn/txn_engine.h"

#include <algorithm>

namespace sgl {

void TxnEngine::BeginTick(int num_shards) {
  // resize + clear (not assign) keeps each shard's intent capacity.
  if (shards_.size() != static_cast<size_t>(num_shards)) {
    shards_.resize(static_cast<size_t>(num_shards));
  }
  for (auto& shard : shards_) shard.clear();
}

void TxnEngine::ApplyUpdate(World* world) {
  last_tick_ = TxnStats();

  // 1. Reset every status field to -1 ("no transaction this tick").
  for (ClassId c = 0; c < world->catalog().num_classes(); ++c) {
    const ClassDef& def = world->catalog().Get(c);
    EntityTable& table = world->table(c);
    for (const FieldDef& f : def.state_fields()) {
      // Status fields are the numeric txn-owned fields named *_status.
      if (!f.type.is_number()) continue;
      bool is_status = f.name.size() > 7 &&
                       f.name.rfind("_status") == f.name.size() - 7;
      if (!is_status) continue;
      bool owned = false;
      for (FieldIdx tf : program_->txn_owned[static_cast<size_t>(c)]) {
        if (tf == f.index) owned = true;
      }
      if (!owned) continue;
      NumberColumn col = table.Num(f.index);
      for (size_t r = 0; r < table.size(); ++r) col.at(r) = -1.0;
    }
  }

  // 2. Gather intents in deterministic priority order (reused buffer).
  std::vector<TxnIntent*>& intents = intents_;
  intents.clear();
  for (auto& shard : shards_) {
    for (TxnIntent& intent : shard) intents.push_back(&intent);
  }
  std::stable_sort(intents.begin(), intents.end(),
                   [](const TxnIntent* a, const TxnIntent* b) {
                     return a->order_key < b->order_key;
                   });
  last_tick_.issued = static_cast<int64_t>(intents.size());

  // 3. Greedy admission against the tentative-state overlay.
  overlay_.Clear();
  struct NumUndo {
    EntityId id;
    FieldIdx field;
    bool had;
    double old_value;
  };
  struct SetUndo {
    EntityId id;
    FieldIdx field;
    bool had;
    EntitySet old_value;
  };
  struct RefUndo {
    EntityId id;
    FieldIdx field;
    bool had;
    EntityId old_value;
  };
  std::vector<NumUndo> num_undo;
  std::vector<SetUndo> set_undo;
  std::vector<RefUndo> ref_undo;

  for (TxnIntent* intent : intents) {
    num_undo.clear();
    set_undo.clear();
    ref_undo.clear();
    bool applicable = true;

    // Tentatively apply writes.
    for (const TxnResolvedWrite& w : intent->writes) {
      const World::Locator* loc = world->Find(w.target);
      if (loc == nullptr || loc->cls != w.cls) {
        applicable = false;  // dangling target: abort
        break;
      }
      if (w.op == TxnWriteOp::kAddDelta) {
        auto prior = overlay_.GetNum(w.target, w.field);
        num_undo.push_back(
            NumUndo{w.target, w.field, prior.has_value(),
                    prior.has_value() ? *prior : 0.0});
        double base = prior.has_value()
                          ? *prior
                          : world->table(loc->cls).Num(w.field)[loc->row];
        overlay_.SetNum(w.target, w.field, base + w.num);
      } else if (w.op == TxnWriteOp::kSetRef) {
        auto prior = overlay_.GetRef(w.target, w.field);
        ref_undo.push_back(
            RefUndo{w.target, w.field, prior.has_value(),
                    prior.has_value() ? *prior : kNullEntity});
        overlay_.SetRef(w.target, w.field, w.ref);
      } else {
        const EntitySet* prior = overlay_.GetSet(w.target, w.field);
        set_undo.push_back(SetUndo{w.target, w.field, prior != nullptr,
                                   prior != nullptr ? *prior : EntitySet()});
        EntitySet base = prior != nullptr
                             ? *prior
                             : world->table(loc->cls).SetCol(w.field)[loc->row];
        if (w.op == TxnWriteOp::kSetInsert) {
          base.Insert(w.ref);
        } else {
          // Structural rule: removing an element that is not (tentatively)
          // present aborts the transaction — double-spends of the same item
          // in one tick die here (§3.1's "duping" prevention).
          if (!base.Erase(w.ref)) {
            applicable = false;
            overlay_.SetSet(w.target, w.field, std::move(base));
            break;
          }
        }
        overlay_.SetSet(w.target, w.field, std::move(base));
      }
    }

    // Evaluate constraints on the tentative state.
    bool ok = applicable;
    if (ok) {
      ScalarContext ctx;
      ctx.world = world;
      ctx.outer_cls = intent->issuer_cls;
      ctx.outer_row = intent->issuer_row;
      ctx.overlay = &overlay_;
      for (const ExprPtr& c : intent->op->constraints) {
        if (!EvalScalarBool(*c, ctx)) {
          ok = false;
          break;
        }
      }
    }

    if (!ok) {
      // Roll the tentative writes back (reverse order restores precisely).
      for (auto it = num_undo.rbegin(); it != num_undo.rend(); ++it) {
        if (it->had) {
          overlay_.SetNum(it->id, it->field, it->old_value);
        } else {
          overlay_.EraseNum(it->id, it->field);
        }
      }
      for (auto it = set_undo.rbegin(); it != set_undo.rend(); ++it) {
        if (it->had) {
          overlay_.SetSet(it->id, it->field, std::move(it->old_value));
        } else {
          overlay_.EraseSet(it->id, it->field);
        }
      }
      for (auto it = ref_undo.rbegin(); it != ref_undo.rend(); ++it) {
        if (it->had) {
          overlay_.SetRef(it->id, it->field, it->old_value);
        } else {
          overlay_.EraseRef(it->id, it->field);
        }
      }
      ++last_tick_.aborted;
    } else {
      ++last_tick_.committed;
    }

    // Report status to the issuer (1 committed / 0 aborted).
    const World::Locator* issuer = world->Find(intent->issuer);
    if (issuer != nullptr && intent->op->status_field != kInvalidField) {
      world->table(issuer->cls).Num(intent->op->status_field).at(issuer->row) =
          ok ? 1.0 : 0.0;
    }
  }

  // 4. Write committed state back to the tables.
  overlay_.ForEach(
      [&](EntityId id, FieldIdx field, double v) {
        const World::Locator* loc = world->Find(id);
        if (loc != nullptr) world->table(loc->cls).Num(field).at(loc->row) = v;
      },
      [&](EntityId id, FieldIdx field, const EntitySet& v) {
        const World::Locator* loc = world->Find(id);
        if (loc != nullptr) {
          world->table(loc->cls).SetCol(field)[loc->row] = v;
        }
      },
      [&](EntityId id, FieldIdx field, EntityId v) {
        const World::Locator* loc = world->Find(id);
        if (loc != nullptr) {
          world->table(loc->cls).RefCol(field)[loc->row] = v;
        }
      });
  overlay_.Clear();

  total_.issued += last_tick_.issued;
  total_.committed += last_tick_.committed;
  total_.aborted += last_tick_.aborted;
}

}  // namespace sgl
