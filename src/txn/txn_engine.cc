#include "src/txn/txn_engine.h"

#include <algorithm>

#include "src/fault/fault_injector.h"

namespace sgl {

void TxnEngine::BeginTick(int num_shards) {
  // resize + Clear (not assign) keeps each shard's log capacity.
  if (shards_.size() != static_cast<size_t>(num_shards)) {
    shards_.resize(static_cast<size_t>(num_shards));
  }
  for (TxnIntentLog& shard : shards_) shard.Clear();
}

void TxnEngine::ApplyUpdate(World* world) {
  last_tick_ = TxnStats();

  // 1. Reset every status field to -1 ("no transaction this tick").
  for (ClassId c = 0; c < world->catalog().num_classes(); ++c) {
    const ClassDef& def = world->catalog().Get(c);
    EntityTable& table = world->table(c);
    for (const FieldDef& f : def.state_fields()) {
      // Status fields are the numeric txn-owned fields named *_status.
      if (!f.type.is_number()) continue;
      bool is_status = f.name.size() > 7 &&
                       f.name.rfind("_status") == f.name.size() - 7;
      if (!is_status) continue;
      bool owned = false;
      for (FieldIdx tf : program_->txn_owned[static_cast<size_t>(c)]) {
        if (tf == f.index) owned = true;
      }
      if (!owned) continue;
      NumberColumn col = table.Num(f.index);
      for (size_t r = 0; r < table.size(); ++r) col.at(r) = -1.0;
    }
  }

  // 2. Admission order: index handles into the shard logs, sorted by order
  // key. Keys are unique per (site, issuing row), so the (shard, index)
  // tie-break never influences results for a well-formed tick — admission
  // is independent of how intents were partitioned across workers.
  order_.clear();
  for (size_t s = 0; s < shards_.size(); ++s) {
    for (size_t i = 0; i < shards_[s].num_intents(); ++i) {
      order_.push_back(IntentRef{shards_[s].intent(i).order_key,
                                 static_cast<uint32_t>(s),
                                 static_cast<uint32_t>(i)});
    }
  }
  std::sort(order_.begin(), order_.end(),
            [](const IntentRef& a, const IntentRef& b) {
              if (a.order_key != b.order_key) return a.order_key < b.order_key;
              if (a.shard != b.shard) return a.shard < b.shard;
              return a.index < b.index;
            });
  last_tick_.issued = static_cast<int64_t>(order_.size());

  // 3. Greedy admission against the tentative-state overlay.
  overlay_.BeginTick(*world, program_->txn_owned);
  overlay_.Clear();

  uint64_t fault_payload = 0;
  uint64_t admit_index = 0;
  for (const IntentRef& ref : order_) {
    // Injected mid-admission crash: stop processing intents here. The
    // partial overlay still writes back below and later issuers keep
    // status -1 — a deliberately torn update phase that only checkpoint
    // recovery (not forward execution) is allowed to repair.
    if (SGL_FAULT_POINT(fault_, kFaultTxnAdmitCrash, fault_tick_,
                        admit_index, &fault_payload)) {
      injected_crash_ = true;
      break;
    }
    ++admit_index;
    const TxnIntentLog& log = shards_[ref.shard];
    const TxnIntent& intent = log.intent(ref.index);
    const TxnResolvedWrite* writes = log.writes(intent);
    undo_.clear();
    bool applicable = true;

    // Tentatively apply the intent's write slice.
    for (uint32_t wi = 0; wi < intent.num_writes; ++wi) {
      const TxnResolvedWrite& w = writes[wi];
      const World::Locator* loc = world->Find(w.target);
      if (loc == nullptr || loc->cls != w.cls) {
        applicable = false;  // dangling target: abort
        break;
      }
      if (w.op == TxnWriteOp::kAddDelta) {
        bool fresh;
        double* slot = overlay_.MutableNum(loc->cls, loc->row, w.field,
                                           &fresh);
        Undo u;
        u.kind = Undo::kNum;
        u.had = !fresh;
        u.cls = loc->cls;
        u.row = loc->row;
        u.field = w.field;
        u.old_num = fresh ? 0.0 : *slot;
        undo_.push_back(u);
        const double base =
            fresh ? world->table(loc->cls).Num(w.field)[loc->row] : *slot;
        *slot = base + w.num;
      } else if (w.op == TxnWriteOp::kSetRef) {
        bool fresh;
        EntityId* slot = overlay_.MutableRef(loc->cls, loc->row, w.field,
                                             &fresh);
        Undo u;
        u.kind = Undo::kRef;
        u.had = !fresh;
        u.cls = loc->cls;
        u.row = loc->row;
        u.field = w.field;
        u.old_ref = fresh ? kNullEntity : *slot;
        undo_.push_back(u);
        *slot = w.ref;
      } else {
        bool fresh;
        EntitySet* set = overlay_.MutableSet(loc->cls, loc->row, w.field,
                                             &fresh);
        Undo u;
        u.cls = loc->cls;
        u.row = loc->row;
        u.field = w.field;
        u.elem = w.ref;
        if (fresh) {
          // First touch this tick: seed the pooled slot from the table.
          // Mirroring the row's provisioned *capacity* (not just its size)
          // lets pre-sized workloads stay allocation-free through the
          // overlay as well.
          const EntitySet& base =
              world->table(loc->cls).SetCol(w.field)[loc->row];
          set->Reserve(base.capacity());
          *set = base;
          u.kind = Undo::kSetFresh;
          undo_.push_back(u);
        }
        if (w.op == TxnWriteOp::kSetInsert) {
          if (set->Insert(w.ref)) {
            u.kind = Undo::kSetInsert;
            undo_.push_back(u);
          }
        } else {
          // Structural rule: removing an element that is not (tentatively)
          // present aborts the transaction — double-spends of the same item
          // in one tick die here (§3.1's "duping" prevention).
          if (set->Erase(w.ref)) {
            u.kind = Undo::kSetErase;
            undo_.push_back(u);
          } else {
            applicable = false;
            break;
          }
        }
      }
    }

    // Evaluate constraints on the tentative state.
    bool ok = applicable;
    if (ok) {
      ScalarContext ctx;
      ctx.world = world;
      ctx.outer_cls = intent.issuer_cls;
      ctx.outer_row = intent.issuer_row;
      ctx.overlay = &overlay_;
      for (const ExprPtr& c : intent.op->constraints) {
        if (!EvalScalarBool(*c, ctx)) {
          ok = false;
          break;
        }
      }
    }

    if (!ok) {
      // Roll the tentative writes back (reverse order restores precisely;
      // set mutations are undone by their inverse operation, so no set
      // value is ever copied for rollback).
      for (auto it = undo_.rbegin(); it != undo_.rend(); ++it) {
        bool fresh;
        switch (it->kind) {
          case Undo::kNum:
            if (it->had) {
              *overlay_.MutableNum(it->cls, it->row, it->field, &fresh) =
                  it->old_num;
            } else {
              overlay_.Erase(it->cls, it->row, it->field);
            }
            break;
          case Undo::kRef:
            if (it->had) {
              *overlay_.MutableRef(it->cls, it->row, it->field, &fresh) =
                  it->old_ref;
            } else {
              overlay_.Erase(it->cls, it->row, it->field);
            }
            break;
          case Undo::kSetFresh:
            overlay_.Erase(it->cls, it->row, it->field);
            break;
          case Undo::kSetInsert:
            overlay_.MutableSet(it->cls, it->row, it->field, &fresh)
                ->Erase(it->elem);
            break;
          case Undo::kSetErase:
            overlay_.MutableSet(it->cls, it->row, it->field, &fresh)
                ->Insert(it->elem);
            break;
        }
      }
      ++last_tick_.aborted;
    } else {
      ++last_tick_.committed;
      if (prov_sink_ != nullptr) {
        // Provenance for the flight recorder: one event per committed
        // write, tagged with the intent's order key as the txn id. The
        // value is the write's *contribution* (delta / inserted element /
        // new ref), not the folded overlay state; field indexes are in
        // state-field space (prov.txn >= 0 marks the namespace).
        EffectProv prov;
        prov.site = static_cast<int32_t>(intent.order_key >> 32);
        prov.src_shard = static_cast<int32_t>(ref.shard);
        prov.src_outer = intent.issuer;
        prov.txn = static_cast<int64_t>(intent.order_key);
        for (uint32_t wi = 0; wi < intent.num_writes; ++wi) {
          const TxnResolvedWrite& w = writes[wi];
          const Value v = w.op == TxnWriteOp::kAddDelta
                              ? Value::Number(w.num)
                              : Value::Ref(w.ref);
          prov_sink_->OnEffectAssign(fault_tick_, w.target, w.cls, w.field,
                                     v, static_cast<int>(wi),
                                     intent.order_key, prov);
        }
      }
    }

    // Report status to the issuer (1 committed / 0 aborted).
    const World::Locator* issuer = world->Find(intent.issuer);
    if (issuer != nullptr && intent.op->status_field != kInvalidField) {
      world->table(issuer->cls).Num(intent.op->status_field).at(issuer->row) =
          ok ? 1.0 : 0.0;
    }
  }

  // 4. Write committed state back to the tables. Rows were resolved at
  // admission time and are stable within the tick, so no directory lookups;
  // set write-back copy-assigns into the row's existing buffer.
  overlay_.ForEachTouched(
      [&](ClassId cls, RowIdx row, FieldIdx field, double v) {
        world->table(cls).Num(field).at(row) = v;
      },
      [&](ClassId cls, RowIdx row, FieldIdx field, const EntitySet& v) {
        world->table(cls).SetCol(field)[row] = v;
      },
      [&](ClassId cls, RowIdx row, FieldIdx field, EntityId v) {
        world->table(cls).RefCol(field)[row] = v;
      });
  overlay_.Clear();

  total_.issued += last_tick_.issued;
  total_.committed += last_tick_.committed;
  total_.aborted += last_tick_.aborted;
}

namespace {

class TxnComponent : public UpdateComponent {
 public:
  TxnComponent(TxnEngine* engine, const CompiledProgram* program)
      : engine_(engine), program_(program) {}

  const std::string& name() const override { return name_; }

  std::vector<std::pair<ClassId, FieldIdx>> OwnedFields() const override {
    std::vector<std::pair<ClassId, FieldIdx>> out;
    for (size_t c = 0; c < program_->txn_owned.size(); ++c) {
      for (FieldIdx f : program_->txn_owned[c]) {
        out.emplace_back(static_cast<ClassId>(c), f);
      }
    }
    return out;
  }

  void Update(World* world, Tick tick) override {
    (void)tick;
    engine_->ApplyUpdate(world);
  }

 private:
  std::string name_ = "txn-engine";
  TxnEngine* engine_;
  const CompiledProgram* program_;
};

}  // namespace

std::unique_ptr<UpdateComponent> MakeTxnComponent(
    TxnEngine* engine, const CompiledProgram* program) {
  return std::make_unique<TxnComponent>(engine, program);
}

}  // namespace sgl
