// The transaction engine — an update component (§2.2) implementing the
// atomic/consistent semantics of §3.1.
//
// During the query/effect phase, atomic regions emit *intents* instead of
// effects. At update time the engine processes intents in a deterministic
// priority order (site id, then issuing row), tentatively applies each
// intent's writes on a state overlay, and evaluates the region's require()
// constraints against the tentative state. If every constraint holds, the
// intent commits (its writes fold into the overlay); otherwise it aborts and
// leaves no trace — this is exactly the paper's "engine chooses a subset of
// the transactions issued during the tick that do not violate any
// constraints; the remaining transactions abort." Committed overlay values
// are then written back to the tables, and each issuer's status field is set
// (1 committed / 0 aborted / -1 no transaction), which scripts read next
// tick (§3.2's reactive reads).

#ifndef SGL_TXN_TXN_ENGINE_H_
#define SGL_TXN_TXN_ENGINE_H_

#include <vector>

#include "src/lang/compiler.h"
#include "src/ra/eval.h"
#include "src/storage/world.h"

namespace sgl {

/// A fully resolved single write of an intent.
struct TxnResolvedWrite {
  EntityId target = kNullEntity;
  ClassId cls = kInvalidClass;
  FieldIdx field = kInvalidField;
  TxnWriteOp op = TxnWriteOp::kAddDelta;
  double num = 0.0;          ///< kAddDelta
  EntityId ref = kNullEntity;  ///< kSetInsert / kSetRemove
};

/// One atomic region instance issued by one entity in one tick.
struct TxnIntent {
  uint64_t order_key = 0;  ///< (site << 32) | issuing row: admission order
  EntityId issuer = kNullEntity;
  ClassId issuer_cls = kInvalidClass;
  RowIdx issuer_row = kInvalidRow;
  const TxnEmitOp* op = nullptr;
  std::vector<TxnResolvedWrite> writes;
};

/// Cumulative + per-tick admission statistics.
struct TxnStats {
  int64_t issued = 0;
  int64_t committed = 0;
  int64_t aborted = 0;
};

/// Collects intents (sharded for the parallel executor) and runs admission.
class TxnEngine {
 public:
  explicit TxnEngine(const CompiledProgram* program) : program_(program) {}

  /// Prepares per-worker intent shards for a tick.
  void BeginTick(int num_shards);

  /// Worker-local intent sink (no synchronization needed).
  std::vector<TxnIntent>* shard(int i) {
    return &shards_[static_cast<size_t>(i)];
  }

  /// Admission + write-back + status reporting. Runs in the update phase.
  void ApplyUpdate(World* world);

  const TxnStats& total() const { return total_; }
  const TxnStats& last_tick() const { return last_tick_; }

 private:
  const CompiledProgram* program_;
  std::vector<std::vector<TxnIntent>> shards_;
  std::vector<TxnIntent*> intents_;  ///< reused admission-order buffer
  StateOverlay overlay_;
  TxnStats total_;
  TxnStats last_tick_;
};

}  // namespace sgl

#endif  // SGL_TXN_TXN_ENGINE_H_
