// The transaction engine — an update component (§2.2) implementing the
// atomic/consistent semantics of §3.1.
//
// During the query/effect phase, atomic regions emit *intents* instead of
// effects. At update time the engine processes intents in a deterministic
// priority order (site id, then issuing row), tentatively applies each
// intent's writes on a state overlay, and evaluates the region's require()
// constraints against the tentative state. If every constraint holds, the
// intent commits (its writes fold into the overlay); otherwise it aborts and
// leaves no trace — this is exactly the paper's "engine chooses a subset of
// the transactions issued during the tick that do not violate any
// constraints; the remaining transactions abort." Committed overlay values
// are then written back to the tables, and each issuer's status field is set
// (1 committed / 0 aborted / -1 no transaction), which scripts read next
// tick (§3.2's reactive reads).
//
// Storage layout: intents live in per-worker *flat logs*. Each shard owns
// one contiguous TxnResolvedWrite pool and one contiguous TxnIntent array;
// an intent does not carry its writes, it is a (first_write, num_writes)
// slice of its shard's pool. Admission ordering is computed over (order_key,
// shard, index) triples pointing into the logs — no per-intent allocation,
// no pointer chasing, and every buffer keeps its high-water capacity, so
// steady-state transaction ticks are allocation-free.

#ifndef SGL_TXN_TXN_ENGINE_H_
#define SGL_TXN_TXN_ENGINE_H_

#include <memory>
#include <vector>

#include "src/debug/trace.h"
#include "src/lang/compiler.h"
#include "src/ra/eval.h"
#include "src/storage/world.h"
#include "src/update/update_component.h"

namespace sgl {

class FaultInjector;

/// A fully resolved single write of an intent.
struct TxnResolvedWrite {
  EntityId target = kNullEntity;
  ClassId cls = kInvalidClass;
  FieldIdx field = kInvalidField;
  TxnWriteOp op = TxnWriteOp::kAddDelta;
  double num = 0.0;          ///< kAddDelta
  EntityId ref = kNullEntity;  ///< kSetInsert / kSetRemove / kSetRef
};

/// One atomic region instance issued by one entity in one tick. Plain
/// 32-byte record; its writes are the half-open slice
/// [first_write, first_write + num_writes) of the owning shard's pool.
struct TxnIntent {
  uint64_t order_key = 0;  ///< (site << 32) | issuing row: admission order
  EntityId issuer = kNullEntity;
  ClassId issuer_cls = kInvalidClass;
  RowIdx issuer_row = kInvalidRow;
  const TxnEmitOp* op = nullptr;
  uint32_t first_write = 0;  ///< into the owning shard's write pool
  uint32_t num_writes = 0;
};

/// Per-worker intent sink: a flat intent array over a flat write pool.
/// Cleared (capacity kept) at every tick start; appends are amortized O(1)
/// with zero steady-state allocation.
class TxnIntentLog {
 public:
  /// Empties both logs, keeping their high-water capacity.
  void Clear() {
    intents_.clear();
    writes_.clear();
  }

  /// Opens a new intent slice; subsequent AddWrite calls extend it.
  void StartIntent(uint64_t order_key, EntityId issuer, ClassId issuer_cls,
                   RowIdx issuer_row, const TxnEmitOp* op) {
    TxnIntent intent;
    intent.order_key = order_key;
    intent.issuer = issuer;
    intent.issuer_cls = issuer_cls;
    intent.issuer_row = issuer_row;
    intent.op = op;
    intent.first_write = static_cast<uint32_t>(writes_.size());
    intents_.push_back(intent);
  }

  /// Appends a write to the currently open intent.
  void AddWrite(const TxnResolvedWrite& w) {
    SGL_DCHECK(!intents_.empty());
    writes_.push_back(w);
    ++intents_.back().num_writes;
  }

  size_t num_intents() const { return intents_.size(); }
  const TxnIntent& intent(size_t i) const { return intents_[i]; }
  /// First write of `intent`'s slice (valid for num_writes records).
  const TxnResolvedWrite* writes(const TxnIntent& intent) const {
    return writes_.data() + intent.first_write;
  }

 private:
  std::vector<TxnIntent> intents_;
  std::vector<TxnResolvedWrite> writes_;  ///< pooled write slices
};

/// Cumulative + per-tick admission statistics.
struct TxnStats {
  int64_t issued = 0;
  int64_t committed = 0;
  int64_t aborted = 0;
};

/// Collects intents (sharded for the parallel executor) and runs admission.
class TxnEngine {
 public:
  explicit TxnEngine(const CompiledProgram* program) : program_(program) {}

  /// Prepares per-worker intent shards for a tick.
  void BeginTick(int num_shards);

  /// Worker-local intent sink (no synchronization needed).
  TxnIntentLog* shard(int i) { return &shards_[static_cast<size_t>(i)]; }
  int num_shards() const { return static_cast<int>(shards_.size()); }

  /// Admission + write-back + status reporting. Runs in the update phase.
  /// The admission order — and therefore every status field, statistic, and
  /// committed value — depends only on the intents' order keys, not on how
  /// the intent multiset is partitioned across shards (order keys are unique
  /// per (site, issuing row); ties broken by (shard, index) can only arise
  /// from duplicate keys).
  void ApplyUpdate(World* world);

  const TxnStats& total() const { return total_; }
  const TxnStats& last_tick() const { return last_tick_; }

  /// Arms the txn.admit.crash site (null = off). Set by the executor.
  void set_fault(FaultInjector* fault) { fault_ = fault; }
  /// The tick admission rolls against (set by the executor each tick).
  void set_fault_tick(Tick tick) { fault_tick_ = tick; }
  /// Provenance sink for committed writes (the flight recorder's capture
  /// path; null = off). Each committed intent reports one event per
  /// resolved write, tagged with the intent's order key as `prov.txn` —
  /// the "which transaction wrote this state field" half of
  /// WhyDidChange. Admission is single-threaded (update phase), so the
  /// sink sees barrier-thread calls only. Set by the executor per tick.
  void set_prov_sink(EffectTraceSink* sink) { prov_sink_ = sink; }
  /// True exactly once after an injected mid-admission crash: admission
  /// stopped partway, committed overlay values were still written back
  /// (a deliberately torn update), and unprocessed issuers kept status -1.
  /// The executor turns this into an injected-crash Status so recovery —
  /// not forward execution — cleans the tear up.
  bool ConsumeInjectedCrash() {
    const bool fired = injected_crash_;
    injected_crash_ = false;
    return fired;
  }

 private:
  /// Sorted admission handle into the shard logs.
  struct IntentRef {
    uint64_t order_key;
    uint32_t shard;
    uint32_t index;
  };
  /// One rollback record; undo_ is replayed in reverse on abort.
  struct Undo {
    enum Kind : uint8_t {
      kNum,       ///< restore old_num / erase if !had
      kRef,       ///< restore old_ref / erase if !had
      kSetFresh,  ///< erase the freshly created set entry
      kSetInsert, ///< remove `elem` again
      kSetErase,  ///< re-insert `elem`
    };
    Kind kind;
    bool had;
    ClassId cls;
    RowIdx row;
    FieldIdx field;
    double old_num;
    EntityId old_ref;
    EntityId elem;
  };

  const CompiledProgram* program_;
  FaultInjector* fault_ = nullptr;
  EffectTraceSink* prov_sink_ = nullptr;
  Tick fault_tick_ = 0;
  bool injected_crash_ = false;
  std::vector<TxnIntentLog> shards_;
  std::vector<IntentRef> order_;  ///< reused admission-order buffer
  std::vector<Undo> undo_;        ///< reused per-intent rollback log
  StateOverlay overlay_;
  TxnStats total_;
  TxnStats last_tick_;
};

/// Adapts `engine` to the update-component interface: the component owns
/// every state field written by atomic blocks plus the status fields
/// (§3.1). Shared by the single-world TickExecutor and the sharded
/// pipeline (src/shard/), whose per-shard intent logs both feed the same
/// partition-independent admission.
std::unique_ptr<UpdateComponent> MakeTxnComponent(
    TxnEngine* engine, const CompiledProgram* program);

}  // namespace sgl

#endif  // SGL_TXN_TXN_ENGINE_H_
