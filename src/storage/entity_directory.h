// EntityDirectory: the id -> (class, row) map behind World::Find.
//
// Every ref dereference (accum joins over set domains, TargetKind::kRef
// effect writes, transaction target resolution) goes through this map, so it
// is engineered as a flat open-addressing table instead of an
// unordered_map: one power-of-two slot array, linear probing, no nodes, no
// per-entry allocation. Slots are *generation-stamped*: a slot is live iff
// its stamp equals the table's current generation, so Clear() (checkpoint
// restore, bulk reloads) is a counter bump instead of a scan or free, and
// erased slots recycle without tombstone decay (Knuth's backward-shift
// deletion keeps probe chains tight).
//
// The shard migrator leans on this: moving a batch of entities between
// shards rewrites one locator per moved row with a plain probe + store —
// no rehash, no allocation once the table reaches its high-water capacity.

#ifndef SGL_STORAGE_ENTITY_DIRECTORY_H_
#define SGL_STORAGE_ENTITY_DIRECTORY_H_

#include <cstddef>
#include <vector>

#include "src/common/rng.h"
#include "src/common/types.h"

namespace sgl {

/// Where an entity lives: its class and dense row position.
struct EntityLocator {
  ClassId cls = kInvalidClass;
  RowIdx row = kInvalidRow;
};

/// Open-addressing EntityId -> EntityLocator map with O(1) Clear().
class EntityDirectory {
 public:
  EntityDirectory() { Rehash(kMinCapacity); }

  /// Drops every entry (generation bump; slot array kept).
  void Clear() {
    size_ = 0;
    if (++gen_ == 0) {  // wrapped: old stamps would alias the new generation
      for (Slot& s : slots_) s.gen = 0;
      gen_ = 1;
    }
  }

  /// Grows the slot array so `n` entries fit without rehashing.
  void Reserve(size_t n);

  /// Locator for `id`, or nullptr. The pointer is valid until the next
  /// Insert/Erase/Clear (callers never store it across mutations).
  const EntityLocator* Find(EntityId id) const {
    const Slot* s = FindSlot(id);
    return s != nullptr ? &s->loc : nullptr;
  }

  /// Inserts `id` (must not be present) at (cls, row).
  void Insert(EntityId id, ClassId cls, RowIdx row);

  /// Repositions an existing entry (migration / compaction). The entry must
  /// be present; never allocates.
  void Update(EntityId id, ClassId cls, RowIdx row) {
    Slot* s = const_cast<Slot*>(FindSlot(id));
    SGL_DCHECK(s != nullptr);
    s->loc.cls = cls;
    s->loc.row = row;
  }

  /// Removes `id`; returns false if it was not present.
  bool Erase(EntityId id);

  size_t size() const { return size_; }
  size_t capacity() const { return slots_.size(); }

 private:
  struct Slot {
    EntityId id = kNullEntity;
    uint32_t gen = 0;  ///< live iff == current generation
    EntityLocator loc;
  };

  static constexpr size_t kMinCapacity = 64;

  static uint64_t Mix(EntityId id) {
    // splitmix64 finalizer: ids are sequential, so the low bits need mixing
    // before they index a power-of-two table.
    return Mix64(static_cast<uint64_t>(id));
  }

  size_t Home(EntityId id) const { return Mix(id) & (slots_.size() - 1); }
  bool Live(const Slot& s) const { return s.gen == gen_; }

  const Slot* FindSlot(EntityId id) const {
    const size_t mask = slots_.size() - 1;
    for (size_t i = Home(id);; i = (i + 1) & mask) {
      const Slot& s = slots_[i];
      if (!Live(s)) return nullptr;
      if (s.id == id) return &s;
    }
  }

  void Rehash(size_t new_capacity);

  std::vector<Slot> slots_;
  size_t size_ = 0;
  uint32_t gen_ = 1;
};

}  // namespace sgl

#endif  // SGL_STORAGE_ENTITY_DIRECTORY_H_
